//! Telemetry aggregation invariants under the parallel batch engine.
//!
//! The registry shards per worker thread and merges shards with
//! commutative, order-independent integer arithmetic, so the
//! deterministic subset of a snapshot (everything except `.ns` wall-clock
//! spans, `.local` per-thread caches, and gauges) must come out identical
//! whether a batch ran with one worker (`MILBACK_THREADS=1` equivalent)
//! or many. This file is the acceptance test for that contract.

use milback::batch::run_trials_with_threads;
use milback::{batch, Fidelity, Network};
use milback_rf::geometry::{deg_to_rad, Pose};
use milback_telemetry as telemetry;
use std::sync::{Mutex, MutexGuard};

/// Both tests mutate the process-global registry and enabled flag, so
/// they must not interleave.
fn registry_lock() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// One full-stack trial: localization, then a downlink and an uplink
/// transfer, so the snapshot covers dsp, ap, node, proto and core.
fn full_stack_trial(t: batch::Trial) -> u64 {
    let phi = deg_to_rad((t.index as f64 % 13.0) - 6.0);
    let pose = Pose::facing_ap(2.5, phi, deg_to_rad(8.0));
    let mut net = Network::new(pose, Fidelity::Fast, t.seed);
    let fix = net.localize().map(|f| f.range.to_bits()).unwrap_or(0);
    let payload: Vec<u8> = (0..6u8).map(|i| i * 37 + t.index as u8).collect();
    let dl = net.downlink(&payload, 1e6, true);
    let ul = net.uplink(&payload, 5e6, true);
    fix ^ dl.map(|r| r.bit_errors as u64).unwrap_or(u64::MAX)
        ^ ul.map(|r| r.bit_errors as u64).unwrap_or(u64::MAX)
}

/// Runs the same batch with `threads` workers and returns the
/// deterministic view of the resulting snapshot.
fn run_and_snapshot(threads: usize) -> telemetry::Snapshot {
    telemetry::reset();
    let results = run_trials_with_threads(6, 0xDECAF, threads, full_stack_trial);
    assert_eq!(results.len(), 6);
    telemetry::snapshot().deterministic_view()
}

#[test]
fn parallel_and_serial_telemetry_totals_agree() {
    let _gate = registry_lock();
    telemetry::set_enabled(true);

    let serial = run_and_snapshot(1);

    // The serial baseline must actually have seen the pipeline: every
    // instrumented layer contributes at least one counter.
    for prefix in ["dsp.", "ap.", "node.", "proto.", "core."] {
        assert!(
            serial
                .counters
                .keys()
                .chain(serial.histograms.keys())
                .any(|k| k.starts_with(prefix)),
            "serial snapshot has no metrics from the `{prefix}` layer"
        );
    }

    for threads in [2, 4] {
        let parallel = run_and_snapshot(threads);
        assert_eq!(
            serial.counters, parallel.counters,
            "counter totals differ between 1 and {threads} worker threads"
        );
        assert_eq!(
            serial.histograms, parallel.histograms,
            "histogram totals differ between 1 and {threads} worker threads"
        );
    }
}

#[test]
fn disabled_pipeline_records_nothing() {
    let _gate = registry_lock();
    telemetry::set_enabled(false);
    telemetry::reset();
    let pose = Pose::facing_ap(2.0, 0.0, 0.0);
    let mut net = Network::new(pose, Fidelity::Fast, 7);
    let _ = net.localize();
    let snap = telemetry::snapshot();
    assert!(snap.counters.is_empty(), "disabled run recorded counters");
    assert!(
        snap.histograms.is_empty(),
        "disabled run recorded histograms"
    );
    telemetry::set_enabled(true);
}
