//! End-to-end integration: the complete MilBack system — localization,
//! orientation sensing at both ends, downlink and uplink — running through
//! the cluttered indoor channel.

use milback::{Fidelity, Network};
use milback_proto::packet::{LinkMode, Packet};
use milback_rf::geometry::{deg_to_rad, rad_to_deg, Pose};

#[test]
fn complete_session_at_3m() {
    let pose = Pose::facing_ap(3.0, deg_to_rad(5.0), deg_to_rad(12.0));
    let mut net = Network::new(pose, Fidelity::Fast, 1000);

    // Localization lands within 10 cm in this regime. The angle estimate
    // is unbiased but a single trial carries σ ≈ 1.3° of phase noise at
    // 3 m (the paper pools trials before quoting ~1° median error), so a
    // lone seed must be allowed ~2.5σ: 3.5°.
    let fix = net.localize().expect("localization failed");
    assert!((fix.range - 3.0).abs() < 0.10, "range {}", fix.range);
    let angle = fix.angle.expect("no angle estimate");
    assert!(
        (rad_to_deg(angle) - 5.0).abs() < 3.5,
        "angle {}",
        rad_to_deg(angle)
    );

    // Orientation within 3° at both ends (paper §9.3 regime).
    let true_inc = net.true_orientation();
    let ap_est = net
        .sense_orientation_at_ap()
        .expect("AP orientation failed");
    assert!(rad_to_deg(ap_est - true_inc).abs() < 3.0);
    let node_est = net
        .sense_orientation_at_node()
        .expect("node orientation failed");
    assert!(rad_to_deg(node_est - true_inc).abs() < 3.0);

    // Error-free two-way data at this distance.
    let dl = net
        .downlink(b"downlink payload!", 1e6, false)
        .expect("no downlink");
    assert_eq!(dl.bit_errors, 0);
    assert_eq!(dl.payload.as_deref().unwrap(), b"downlink payload!");
    let ul = net
        .uplink(b"uplink payload!!!", 5e6, false)
        .expect("no uplink");
    assert_eq!(ul.bit_errors, 0);
    assert_eq!(ul.payload.as_deref().unwrap(), b"uplink payload!!!");
}

#[test]
fn full_packet_round_trip_both_modes() {
    let pose = Pose::facing_ap(2.5, 0.0, deg_to_rad(-10.0));
    let mut net = Network::new(pose, Fidelity::Fast, 1001);

    let down = Packet::downlink((0u8..32).collect());
    let out = net.run_packet(&down, 1e6);
    assert_eq!(out.mode_detected, Some(LinkMode::Downlink));
    assert!(out.fix.is_some(), "no localization in packet");
    assert_eq!(
        out.downlink
            .expect("downlink skipped")
            .payload
            .as_deref()
            .unwrap(),
        &(0u8..32).collect::<Vec<u8>>()[..]
    );

    let up = Packet::uplink((100u8..132).collect());
    let out = net.run_packet(&up, 5e6);
    assert_eq!(out.mode_detected, Some(LinkMode::Uplink));
    assert_eq!(
        out.uplink
            .expect("uplink skipped")
            .payload
            .as_deref()
            .unwrap(),
        &(100u8..132).collect::<Vec<u8>>()[..]
    );
}

#[test]
fn localization_works_at_every_paper_distance() {
    for d in 1..=8 {
        let pose = Pose::facing_ap(d as f64, 0.0, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, 1002 + d);
        let fix = net.localize().unwrap_or_else(|| panic!("no fix at {d} m"));
        assert!(
            (fix.range - d as f64).abs() < 0.25,
            "range {} at true {d} m",
            fix.range
        );
    }
}

#[test]
fn uplink_outranges_40mbps_with_10mbps() {
    // Fig 15 shape: at 8 m the 10 Mbps link is comfortably better than
    // the 40 Mbps link.
    let pose = Pose::facing_ap(8.0, 0.0, deg_to_rad(15.0));
    let mut net = Network::new(pose, Fidelity::Fast, 1003);
    let slow = net.uplink(&[0x55; 16], 5e6, true).expect("no uplink");
    let mut net = Network::new(pose, Fidelity::Fast, 1003);
    let fast = net.uplink(&[0x55; 16], 20e6, true).expect("no uplink");
    assert!(
        slow.snr > 2.0 * fast.snr,
        "10 Mbps SNR {} vs 40 Mbps {}",
        slow.snr,
        fast.snr
    );
}

#[test]
fn deterministic_runs() {
    let pose = Pose::facing_ap(3.0, 0.0, deg_to_rad(8.0));
    let run = || {
        let mut net = Network::new(pose, Fidelity::Fast, 12345);
        let fix = net.localize();
        let ul = net
            .uplink(&[9, 9, 9], 5e6, true)
            .map(|r| (r.bit_errors, r.snr.to_bits()));
        (fix, ul)
    };
    assert_eq!(run(), run());
}

#[test]
fn batch_engine_parallel_matches_serial() {
    // The batch engine must produce bit-identical results regardless of
    // worker count: trial seeds derive from (master, index) alone, and
    // results land in index-addressed slots. Run a real localization
    // workload serially and at several thread counts and compare.
    let trial = |t: milback::batch::Trial| {
        let phi = deg_to_rad((t.index as f64 % 13.0) - 6.0);
        let pose = Pose::facing_ap(2.5 + 0.1 * (t.index % 4) as f64, phi, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, t.seed);
        net.localize()
            .map(|fix| (fix.range.to_bits(), fix.angle.map(f64::to_bits)))
    };
    let master = 0xDEC0DE;
    let serial = milback::batch::run_trials_with_threads(12, master, 1, trial);
    for threads in [2, 3, 8] {
        let parallel = milback::batch::run_trials_with_threads(12, master, threads, trial);
        assert_eq!(serial, parallel, "diverged at {threads} threads");
    }
    // And the default entry point (machine thread count) agrees too.
    assert_eq!(serial, milback::batch::run_trials(12, master, trial));
}

#[test]
fn energy_accounting_consistent_with_paper() {
    use milback_hw::power::{NodeMode, PowerModel};
    let p = PowerModel::milback();
    assert!((p.power_mw(NodeMode::Downlink) - 18.0).abs() < 0.5);
    assert!((p.power_mw(NodeMode::Uplink { bit_rate: 40e6 }) - 32.0).abs() < 1.0);
    // MilBack strictly dominates mmTag on energy while adding downlink.
    use milback_baseline::{BackscatterSystem, MilBackSystem, MmTag};
    assert!(
        MilBackSystem.uplink_energy_nj_per_bit().unwrap()
            < MmTag::default().uplink_energy_nj_per_bit().unwrap()
    );
    assert!(MilBackSystem.capabilities().downlink);
    assert!(!MmTag::default().capabilities().downlink);
}
