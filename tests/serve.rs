//! Serving-engine pins (DESIGN.md §15): property tests over the
//! work-stealing session pool — exactly-once resolution, per-node FIFO,
//! shed-only-Field-2 — plus the soak determinism pin: the same seeded
//! schedule at 1 and 4 worker threads resolves identically, with
//! byte-identical deterministic telemetry views.
//!
//! The tests share one global lock: the telemetry registry and enable
//! flag are process-wide, so the soak test's view capture must not
//! overlap another test's sessions.

use milback::serve::roster;
use milback::{
    Outcome, Resolution, ServeConfig, ServeEngine, SessionRequest, TrafficConfig, TrafficSchedule,
    Workload,
};
use milback_telemetry as telemetry;
use proptest::prelude::*;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A permissive config: thresholds high enough that light traffic never
/// sheds, so admission outcomes are easy to reason about.
fn permissive() -> ServeConfig {
    ServeConfig {
        shed_depth: 1_000,
        reject_depth: 2_000,
        ..ServeConfig::milback()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Exactly-once: every ticketed request reaches exactly one terminal
    /// state — completed, failed, shed or rejected — never lost, never
    /// duplicated, at any thread count, with or without faults.
    #[test]
    fn every_submission_resolves_exactly_once(
        seed in any::<u64>(),
        rate_hz in 10.0f64..400.0,
        threads in 1usize..5,
        faulty in any::<bool>(),
    ) {
        let _guard = serialized();
        let cfg = TrafficConfig {
            nodes: 3,
            sessions: 12,
            rate_hz,
            fault_intensity: if faulty { 0.5 } else { 0.0 },
            ..TrafficConfig::milback()
        };
        let schedule = TrafficSchedule::generate(&cfg, seed);
        let mut engine = ServeEngine::new(&roster(cfg.nodes, seed), ServeConfig::milback());
        let report = engine.serve_schedule(&schedule, threads);
        prop_assert_eq!(report.submitted, cfg.sessions);
        prop_assert_eq!(engine.resolutions().len(), cfg.sessions);
        for (i, r) in engine.resolutions().iter().enumerate() {
            prop_assert_eq!(r.ticket, i, "ticket order broken");
            prop_assert!(r.resolved(), "ticket {} left pending", i);
        }
        // The terminal states partition the submissions exactly.
        prop_assert_eq!(
            report.completed + report.failed + report.shed + report.rejected,
            cfg.sessions
        );
    }

    /// Per-node FIFO: within a node's lane, executed sessions carry
    /// consecutive sequence numbers in ticket (= submission) order —
    /// stealing moves whole chains, never reorders within one.
    #[test]
    fn per_node_service_order_is_fifo(seed in any::<u64>(), threads in 1usize..5) {
        let _guard = serialized();
        let cfg = TrafficConfig {
            nodes: 3,
            sessions: 12,
            ..TrafficConfig::milback()
        };
        let schedule = TrafficSchedule::generate(&cfg, seed);
        let mut engine = ServeEngine::new(&roster(cfg.nodes, seed), permissive());
        engine.serve_schedule(&schedule, threads);
        for node in 0..cfg.nodes {
            let seqs: Vec<u32> = engine
                .resolutions()
                .iter()
                .filter(|r| r.node == node && r.node_seq != u32::MAX)
                .map(|r| r.node_seq)
                .collect();
            let expect: Vec<u32> = (0..seqs.len() as u32).collect();
            prop_assert_eq!(seqs, expect, "node {} served out of order", node);
        }
    }

    /// Load shedding only ever drops Field-2 work: whole-request drops
    /// are limited to the `Localize` class, and every shed exchange
    /// still delivers its payload — the ARQ stays alive under overload.
    #[test]
    fn shedding_only_drops_field2_never_payload_arq(seed in any::<u64>()) {
        let _guard = serialized();
        let cfg = TrafficConfig {
            nodes: 2,
            sessions: 16,
            rate_hz: 500.0,
            localize_fraction: 0.5,
            ..TrafficConfig::milback()
        };
        // Shed almost immediately, never reject: every exchange runs,
        // most of them shed.
        let serve = ServeConfig {
            shed_depth: 1,
            reject_depth: 1_000,
            virtual_service_s: 0.050,
            shed_service_s: 0.040,
            ..ServeConfig::milback()
        };
        let schedule = TrafficSchedule::generate(&cfg, seed);
        let mut engine = ServeEngine::new(&roster(cfg.nodes, seed), serve);
        let report = engine.serve_schedule(&schedule, 2);
        prop_assert!(report.field2_shed > 0, "saturation produced no shed exchanges");
        prop_assert_eq!(report.rejected, 0);
        for r in engine.resolutions() {
            if r.outcome == Outcome::Shed {
                prop_assert_eq!(
                    r.workload,
                    Workload::Localize,
                    "a payload exchange was dropped whole"
                );
            }
            if r.shed {
                prop_assert!(r.workload != Workload::Localize);
                prop_assert_eq!(r.outcome, Outcome::Completed);
                prop_assert!(r.delivered, "shed exchange lost its payload");
                prop_assert_eq!(r.fix_range_bits, u64::MAX, "shed exchange went on air");
            }
        }
    }

    /// The submission buffer is hard-bounded: `try_submit` hands the
    /// request back at capacity, and a drain makes room again. Nothing
    /// queues beyond `queue_capacity`.
    #[test]
    fn submission_queue_is_bounded(seed in any::<u64>(), cap in 1usize..6) {
        let _guard = serialized();
        let serve = ServeConfig {
            queue_capacity: cap,
            ..permissive()
        };
        let mut engine = ServeEngine::new(&roster(2, seed), serve);
        engine.begin_epoch(seed);
        let req = SessionRequest {
            node: 0,
            arrival_s: 0.0,
            workload: Workload::Localize,
            payload_len: 0,
            intensity: 0.0,
        };
        for _ in 0..cap {
            prop_assert!(engine.try_submit(req).is_ok());
        }
        for _ in 0..3 {
            let back = engine.try_submit(req);
            prop_assert_eq!(back, Err(req), "queue accepted past capacity");
        }
        engine.drain(1);
        prop_assert!(engine.try_submit(req).is_ok(), "drain did not make room");
        engine.drain(1);
        prop_assert_eq!(engine.resolutions().len(), cap + 1);
    }
}

/// The soak pin: a mixed, partly-faulty schedule served at 1 and at 4
/// worker threads produces identical resolution sequences (hence
/// identical multisets), identical outcome digests, and byte-identical
/// deterministic telemetry views.
#[test]
fn soak_is_thread_invariant_with_identical_telemetry_views() {
    let _guard = serialized();
    let cfg = TrafficConfig {
        nodes: 4,
        sessions: 20,
        rate_hz: 80.0,
        fault_intensity: 0.4,
        ..TrafficConfig::milback()
    };
    let schedule = TrafficSchedule::generate(&cfg, 0x50AC);
    let poses = roster(cfg.nodes, 0x50AC);

    let was = telemetry::enabled();
    telemetry::set_enabled(true);

    telemetry::reset();
    let mut serial_engine = ServeEngine::new(&poses, ServeConfig::milback());
    let serial = serial_engine.serve_schedule(&schedule, 1);
    let serial_view = telemetry::snapshot().deterministic_view().to_json(2);

    telemetry::reset();
    let mut parallel_engine = ServeEngine::new(&poses, ServeConfig::milback());
    let parallel = parallel_engine.serve_schedule(&schedule, 4);
    let parallel_view = telemetry::snapshot().deterministic_view().to_json(2);

    telemetry::set_enabled(was);

    let serial_res: &[Resolution] = serial_engine.resolutions();
    assert_eq!(
        serial_res,
        parallel_engine.resolutions(),
        "resolutions diverged across thread counts"
    );
    assert_eq!(
        serial.outcome_digest, parallel.outcome_digest,
        "outcome digests diverged"
    );
    assert_eq!(serial.submitted, parallel.submitted);
    assert_eq!(serial.completed, parallel.completed);
    assert_eq!(serial.failed, parallel.failed);
    assert_eq!(serial.shed, parallel.shed);
    assert_eq!(serial.rejected, parallel.rejected);
    assert_eq!(serial.max_depth, parallel.max_depth);
    assert_eq!(
        serial_view, parallel_view,
        "deterministic telemetry views diverged"
    );
    // The soak actually exercised the machinery it claims to pin.
    assert!(serial.completed > 0, "soak completed nothing");
}

/// Epoch repeatability on one engine: serving the same schedule twice
/// (fresh epoch each time, pooled buffers reused) resolves identically —
/// pool reuse leaks no state between epochs.
#[test]
fn repeated_epochs_resolve_identically() {
    let _guard = serialized();
    let cfg = TrafficConfig {
        nodes: 3,
        sessions: 10,
        fault_intensity: 0.3,
        ..TrafficConfig::milback()
    };
    let schedule = TrafficSchedule::generate(&cfg, 0xE90C);
    let mut engine = ServeEngine::new(&roster(cfg.nodes, 0xE90C), ServeConfig::milback());
    let first = engine.serve_schedule(&schedule, 2);
    let first_res = engine.resolutions().to_vec();
    let second = engine.serve_schedule(&schedule, 2);
    assert_eq!(first_res, engine.resolutions(), "epochs diverged");
    assert_eq!(first.outcome_digest, second.outcome_digest);
}
