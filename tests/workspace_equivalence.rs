//! Bitwise equivalence of the workspace/template fast paths against the
//! allocating reference paths, exercised at the network level
//! (DESIGN.md §12). The per-kernel equivalences live next to each
//! kernel's unit tests; this file pins the end-to-end compositions the
//! pipeline actually runs.

use milback::{Fidelity, Network};
use milback_ap::orientation::ApOrientationEstimator;
use milback_ap::{background, with_workspace};
use milback_dsp::signal::Signal;
use milback_dsp::template;
use milback_rf::fsa::Port;
use milback_rf::geometry::{deg_to_rad, Pose};

/// `Network::localize` (which routes through the thread-local workspace
/// and `Localizer::process_with`) must reproduce the allocating
/// `Localizer::process` bit for bit on identically-seeded captures.
#[test]
fn network_localize_matches_allocating_process() {
    let pose = Pose::facing_ap(3.0, deg_to_rad(6.0), 0.0);
    for seed in [1u64, 9, 42] {
        let mut reference = Network::new(pose, Fidelity::Fast, seed);
        let (tx, captures) = reference.field2_captures();
        let expect = reference.localizer().process(&tx, &captures);

        let mut fast = Network::new(pose, Fidelity::Fast, seed);
        assert_eq!(fast.localize(), expect, "seed {seed}");
        // A second network on the same thread reuses the now-warmed
        // workspace — still bitwise identical.
        let mut again = Network::new(pose, Fidelity::Fast, seed);
        assert_eq!(again.localize(), expect, "seed {seed} (warmed)");
    }
}

/// AP-side orientation sensing through the workspace must match a
/// replica of the historical allocating flow (profile diffs → detection
/// spectrum → node bin → gated estimate).
#[test]
fn sense_orientation_matches_allocating_flow() {
    let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(10.0));
    let seed = 3;
    let mut fast = Network::new(pose, Fidelity::Fast, seed);
    let got = fast.sense_orientation_at_ap();

    let mut reference = Network::new(pose, Fidelity::Fast, seed);
    let (tx, captures) = reference.field2_captures();
    let localizer = reference.localizer();
    let (d0, d1) = localizer.profile_diffs(&tx, &captures);
    let det0 = background::detection_spectrum(&d0);
    let det1 = background::detection_spectrum(&d1);
    let det: Vec<f64> = det0.iter().zip(&det1).map(|(a, b)| a + b).collect();
    let node_bin = localizer.find_node_bin(&det, tx.fs).expect("no node bin");
    let best = (0..d0.len())
        .max_by(|&i, &j| {
            let e = |k: usize| -> f64 {
                let lo = node_bin.saturating_sub(2);
                let hi = (node_bin + 3).min(d0[k].len());
                d0[k][lo..hi].iter().map(|c| c.norm_sq()).sum()
            };
            e(i).partial_cmp(&e(j)).unwrap()
        })
        .expect("no difference pairs");
    let est = ApOrientationEstimator::new(Fidelity::Fast.sawtooth());
    let half = (localizer.proc.fft_len / 100).max(16);
    let expect = est.estimate_gated(
        &d0[best],
        node_bin,
        half,
        tx.fs,
        tx.len(),
        &reference.node.fsa,
        Port::A,
    );

    assert_eq!(got, expect);
}

/// Template fetches are bitwise identical to fresh synthesis for every
/// cached waveform family (Field-2 sawtooth, Field-1 triangular, uplink
/// query tone).
#[test]
fn templates_match_fresh_synthesis_bitwise() {
    let saw_cfg = Fidelity::Fast.sawtooth();
    let fresh = saw_cfg.sawtooth();
    let cached = template::sawtooth(&saw_cfg);
    assert_eq!(fresh.samples, cached.samples);
    assert_eq!((fresh.fs, fresh.fc), (cached.fs, cached.fc));

    let tri_cfg = Fidelity::Fast.triangular();
    let fresh = tri_cfg.triangular();
    let cached = template::triangular(&tri_cfg);
    assert_eq!(fresh.samples, cached.samples);

    let (fs, fc, f_off, amp, n) = (4e9, 27.9e9, 220e6, 0.7, 10_000);
    let fresh = Signal::tone(fs, fc, f_off, amp, n);
    let cached = template::tone(fs, fc, f_off, amp, n);
    assert_eq!(fresh.samples, cached.samples);
    assert_eq!((fresh.fs, fresh.fc), (cached.fs, cached.fc));
}

/// The nested-checkout fallback of `with_workspace` stays bitwise
/// equivalent: running a localization inside an outer checkout lands on
/// a fresh temporary workspace and must produce the same fix.
#[test]
fn nested_workspace_checkout_is_equivalent() {
    let pose = Pose::facing_ap(2.5, 0.0, 0.0);
    let mut net = Network::new(pose, Fidelity::Fast, 7);
    let (tx, captures) = net.field2_captures();
    let localizer = net.localizer();
    let expect = localizer.process(&tx, &captures);
    let got = with_workspace(|_outer| {
        // `localize`-style inner checkout while the outer one is held.
        with_workspace(|ws| localizer.process_with(ws, &tx, &captures))
    });
    assert_eq!(got, expect);
}
