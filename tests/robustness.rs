//! Failure-injection and edge-case integration tests: the claims the
//! paper makes about degraded conditions, plus conditions the system must
//! fail *gracefully* under.

use milback::{Fidelity, Network};
use milback_ap::tone_select::{select_tones, ToneSelection};
use milback_rf::channel::Reflector;
use milback_rf::geometry::{deg_to_rad, Point, Pose};

/// Paper §9.3: "3-4 degree error in estimating the node's orientation
/// will not impact on the performance of communication" — communicate
/// with deliberately wrong carrier frequencies.
#[test]
fn orientation_error_tolerated_by_downlink() {
    let true_psi = 12.0;
    let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(true_psi));
    for err_deg in [-4.0, -2.0, 2.0, 4.0] {
        let net = Network::new(pose, Fidelity::Fast, (2000 + err_deg as i64) as u64);
        // Pick tones from a *wrong* orientation estimate.
        let wrong = net.true_orientation() + deg_to_rad(err_deg);
        let tones = select_tones(&net.node.fsa, wrong, 100e6).expect("no tones");
        let ToneSelection::Dual { f_a, f_b } = tones else {
            panic!("expected dual tones")
        };
        // Reuse the internal path by asking for a downlink with truth and
        // then verifying the wrong-tone link budget is still workable:
        // the node's beamwidth (~10°) covers a 4° pointing error.
        let g_right = net.scene.tone_gain_to_port(
            &net.node.pose,
            &net.node.fsa,
            milback_rf::fsa::Port::A,
            net.node
                .fsa
                .frequency_for_angle(milback_rf::fsa::Port::A, net.true_orientation())
                .unwrap(),
        );
        let g_wrong = net.scene.tone_gain_to_port(
            &net.node.pose,
            &net.node.fsa,
            milback_rf::fsa::Port::A,
            f_a,
        );
        let loss_db = 10.0 * (g_right / g_wrong).log10();
        assert!(
            loss_db < 3.5,
            "{err_deg}° orientation error costs {loss_db:.1} dB — beam too narrow"
        );
        let _ = f_b;
    }
}

/// End-to-end check of the same claim: the full pipeline (sensed
/// orientation, which carries its own error) still delivers error-free
/// frames.
#[test]
fn sensed_orientation_pipeline_delivers() {
    for seed in 0..5 {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(10.0));
        let mut net = Network::new(pose, Fidelity::Fast, 2100 + seed);
        let dl = net.downlink(&[0xAB; 16], 1e6, false).expect("no downlink");
        assert_eq!(dl.bit_errors, 0, "seed {seed}");
    }
}

/// Normal incidence: OAQFM degenerates to OOK and still works (paper
/// §6.2 last paragraph).
#[test]
fn normal_incidence_ook_fallback_works() {
    let pose = Pose::facing_ap(2.0, 0.0, 0.0);
    let mut net = Network::new(pose, Fidelity::Fast, 2200);
    let dl = net.downlink(&[0x3C; 12], 1e6, true).expect("no downlink");
    assert!(matches!(dl.tones, ToneSelection::Single { .. }));
    assert_eq!(dl.bit_errors, 0);
    assert_eq!(dl.payload.as_deref().unwrap(), &[0x3C; 12]);
}

/// A node rotated beyond the FSA's scan range cannot be served — the
/// system reports that instead of garbage.
#[test]
fn out_of_scan_range_returns_none() {
    let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(50.0));
    let mut net = Network::new(pose, Fidelity::Fast, 2300);
    assert!(net.plan_tones(true).is_none());
    assert!(net.downlink(&[1], 1e6, true).is_none());
    assert!(net.uplink(&[1], 5e6, true).is_none());
}

/// Extra-heavy clutter: localization still finds the node because the
/// clutter is static and subtracts out.
#[test]
fn survives_clutter_pileup() {
    let pose = Pose::facing_ap(3.0, 0.0, 0.0);
    let mut net = Network::new(pose, Fidelity::Fast, 2400);
    // A wall of extra reflectors, some near the node's range.
    for k in 0..10 {
        net.scene.clutter.push(Reflector {
            position: Point::new(2.0 + 0.5 * k as f64, 1.0 + 0.2 * k as f64),
            rcs: 0.5,
        });
    }
    let fix = net.localize().expect("node lost in clutter");
    assert!((fix.range - 3.0).abs() < 0.15, "range {}", fix.range);
}

/// A node that is absent (absorptive the whole time) must not produce a
/// localization fix — background subtraction leaves nothing.
#[test]
fn absent_node_yields_no_fix() {
    let pose = Pose::facing_ap(3.0, 0.0, 0.0);
    let mut net = Network::new(pose, Fidelity::Fast, 2500);
    // Kill the node's reflection entirely: infinite implementation loss.
    net.node.impl_loss_db = 200.0;
    assert!(net.localize().is_none(), "phantom node detected");
}

/// Uplink symbol rates beyond the switch's capability are rejected up
/// front (§9.5's 160 Mbps cap) with a graceful `None` — not a panic,
/// not silently mangled bytes.
#[test]
fn uplink_beyond_switch_rate_rejected_gracefully() {
    let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(10.0));
    let mut net = Network::new(pose, Fidelity::Fast, 2600);
    assert!(net.uplink(&[1, 2], 100e6, true).is_none());
    // A sane rate on the same network still works afterwards.
    let ul = net.uplink(&[1, 2], 1e6, true).expect("sane rate rejected");
    assert_eq!(ul.payload.as_deref().unwrap(), &[1, 2]);
}

/// The frame layer detects corruption: a link pushed far beyond its range
/// yields either a CRC error or no link at all — never silently wrong
/// bytes.
#[test]
fn corruption_is_detected_not_silent() {
    let pose = Pose::facing_ap(14.0, 0.0, deg_to_rad(15.0));
    let mut net = Network::new(pose, Fidelity::Fast, 2700);
    if let Some(ul) = net.uplink(&[0xEE; 16], 20e6, true) {
        if ul.bit_errors > 0 {
            assert!(ul.payload.is_err(), "CRC passed corrupted payload");
        }
    }
}

/// Parametric rooms: localization keeps working across generated indoor
/// environments (walls + random furniture), not just the hand-built
/// default scene.
#[test]
fn localization_across_generated_rooms() {
    use milback_rf::room::Room;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let room = Room::office();
    let mut found = 0;
    let total = 6;
    for k in 0..total {
        let mut rng = StdRng::seed_from_u64(2800 + k);
        let scene = room.build_scene(8, &mut rng);
        let pose = Pose::facing_ap(3.0 + 0.5 * k as f64, 0.0, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, 2900 + k);
        net.scene = scene;
        net.scene.steer_towards(&pose.position);
        if let Some(fix) = net.localize() {
            if (fix.range - net.true_range()).abs() < 0.25 {
                found += 1;
            }
        }
    }
    assert!(found >= total - 1, "only {found}/{total} rooms localized");
}

/// Blockage mid-packet (DESIGN.md §14): a deep blockage that lands on
/// part of the Field-2 burst kills chirps but not the session — the
/// supervisor triages the dead chirps, falls back to reduced-chirp
/// background subtraction, reports the degradation, and still delivers.
#[test]
fn blockage_mid_packet_degrades_gracefully() {
    use milback::session::{Degradation, Session};
    use milback_proto::packet::Packet;
    use milback_rf::faults::{FaultEvent, FaultKind, FaultPlan};

    let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
    let mut net = Network::new(pose, Fidelity::Fast, 3100);
    let pkt = net.fidelity.packet();
    // Blockage covering the middle two Field-2 chirps (the session clock
    // reaches Field 2 after the mode field and one orientation chirp).
    let f2_start = pkt.field1_duration() + pkt.field1_chirp.duration;
    net.faults = FaultPlan {
        seed: 11,
        events: vec![FaultEvent {
            start_s: f2_start + pkt.field2_chirp.duration,
            duration_s: 2.0 * pkt.field2_chirp.duration,
            kind: FaultKind::Blockage { depth_db: 80.0 },
        }],
    };
    let report = Session::default()
        .run(&mut net, &Packet::downlink((0..16).collect()))
        .expect("session should survive a partial Field-2 blockage");
    assert!(
        report
            .degradations
            .iter()
            .any(|d| matches!(d, Degradation::ReducedChirpFallback { .. })),
        "degradations: {:?}",
        report.degradations
    );
    assert!(report.chirps_used >= 2 && report.chirps_used < 5);
    let fix = report.fix.expect("fallback lost the node");
    assert!((fix.range - 2.0).abs() < 0.25, "range {}", fix.range);
    assert!(report.downlink.is_some());
}

/// Clock drift (DESIGN.md §14), sustained: an oscillator drifting for
/// the whole exchange accumulates a nanosecond-scale envelope skew by
/// the payload stage — enough to break symbol alignment. The session
/// must burn its ARQ budget and fail with a *typed* error, never a
/// panic or a silent `None`.
#[test]
fn sustained_clock_drift_fails_typed() {
    use milback::session::{FailureKind, Session, SessionConfig};
    use milback_proto::packet::Packet;
    use milback_rf::faults::{FaultEvent, FaultKind, FaultPlan};

    let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
    let mut net = Network::new(pose, Fidelity::Fast, 3200);
    net.faults = FaultPlan {
        seed: 12,
        events: vec![FaultEvent {
            start_s: 0.0,
            duration_s: 1.0,
            kind: FaultKind::ClockDrift { ppm: 20.0 },
        }],
    };
    let err = Session::default()
        .run(&mut net, &Packet::downlink((0..16).collect()))
        .expect_err("sustained drift should exhaust the payload budget");
    assert_eq!(err.kind, FailureKind::Payload);
    assert_eq!(err.attempts, SessionConfig::milback().payload_attempts);
}

/// Clock drift, transient and mild: a 2 ppm drift confined to the chirp
/// fields (over before the payload goes out) leaves the exchange
/// deliverable — the sub-nanosecond skew nudges the range estimate by
/// centimeters, not meters, and the payload sails.
#[test]
fn transient_clock_drift_is_tolerated() {
    use milback::session::Session;
    use milback_proto::packet::Packet;
    use milback_rf::faults::{FaultEvent, FaultKind, FaultPlan};

    let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
    let mut net = Network::new(pose, Fidelity::Fast, 3201);
    let pkt = net.fidelity.packet();
    // Drift covering Field 1 and Field 2 only.
    let fields_end =
        pkt.field1_duration() + pkt.field1_chirp.duration + 2.0 * pkt.field2_duration();
    net.faults = FaultPlan {
        seed: 13,
        events: vec![FaultEvent {
            start_s: 0.0,
            duration_s: fields_end,
            kind: FaultKind::ClockDrift { ppm: 2.0 },
        }],
    };
    let report = Session::default()
        .run(&mut net, &Packet::downlink((0..16).collect()))
        .expect("drift over before the payload should not kill the exchange");
    let fix = report.fix.expect("drift lost the node");
    assert!((fix.range - 2.0).abs() < 0.5, "range {}", fix.range);
    assert!(report.downlink.is_some());
    assert_eq!(report.payload_attempts, 1);
}

/// Rate adaptation never accepts a rate it then fails at.
#[test]
fn adaptive_rate_is_self_consistent() {
    for d in [2.0, 5.0, 8.0] {
        let pose = Pose::facing_ap(d, 0.0, deg_to_rad(15.0));
        let mut net = Network::new(pose, Fidelity::Fast, 3000 + d as u64);
        if let Some(r) = net.uplink_adaptive(&[0x77; 12]) {
            assert_eq!(r.report.bit_errors, 0, "accepted rate errored at {d} m");
            assert!(r.report.payload.is_ok());
        }
    }
}
