//! Chaos determinism pins (DESIGN.md §14): fault-injected sweeps are
//! thread-count-invariant down to the bit, their telemetry deterministic
//! views are byte-identical, and an *empty* fault plan is bitwise
//! indistinguishable from no fault layer at all.

use milback::chaos::{chaos_sweep, chaos_sweep_with_threads, ChaosPoint};
use milback::serve::roster;
use milback::{
    Fidelity, Network, Outcome, ServeConfig, ServeEngine, TrafficConfig, TrafficSchedule, Workload,
};
use milback_rf::faults::FaultPlan;
use milback_rf::geometry::{deg_to_rad, Pose};
use milback_telemetry as telemetry;

fn points() -> Vec<ChaosPoint> {
    vec![
        ChaosPoint {
            intensity: 0.6,
            range_m: 2.0,
        },
        ChaosPoint {
            intensity: 0.9,
            range_m: 2.5,
        },
    ]
}

/// Serial and 4-thread chaos sweeps agree outcome-for-outcome: the fault
/// plans, retries and fallbacks of every trial depend only on the
/// per-trial derived seed, never on scheduling.
#[test]
fn chaos_sweep_is_thread_count_invariant() {
    let serial = chaos_sweep(&points(), 2, 0xC4A0);
    let parallel = chaos_sweep_with_threads(&points(), 2, 0xC4A0, 4);
    assert_eq!(serial, parallel);
}

/// The telemetry deterministic views of a serial and a parallel chaos
/// run are byte-identical: fault and recovery counters depend only on
/// the injected schedule, not on thread interleaving.
#[test]
fn chaos_telemetry_views_are_byte_identical() {
    let was = telemetry::enabled();
    telemetry::set_enabled(true);

    telemetry::reset();
    let serial = chaos_sweep_with_threads(&points(), 2, 0xC4A1, 1);
    let view_serial = telemetry::snapshot().deterministic_view().to_json(2);

    telemetry::reset();
    let parallel = chaos_sweep_with_threads(&points(), 2, 0xC4A1, 4);
    let view_parallel = telemetry::snapshot().deterministic_view().to_json(2);

    telemetry::set_enabled(was);
    assert_eq!(serial, parallel, "outcomes diverged");
    assert_eq!(view_serial, view_parallel, "deterministic views diverged");
}

/// An empty fault plan is bitwise free: a network carrying
/// `FaultPlan::none()` — or an empty plan with a nonzero seed — renders,
/// localizes and communicates exactly like one whose fault field was
/// never touched. Every fault hook early-returns before consuming any
/// randomness.
#[test]
fn empty_fault_plan_is_bitwise_identical() {
    let pose = Pose::facing_ap(2.5, 0.0, deg_to_rad(10.0));

    let mut plain = Network::new(pose, Fidelity::Fast, 0xFA17);
    let mut with_empty = Network::new(pose, Fidelity::Fast, 0xFA17);
    with_empty.faults = FaultPlan {
        seed: 0xDEAD_BEEF,
        events: Vec::new(),
    };

    // Field-2 captures: the raw rendered signals must match bit for bit.
    let (tx_a, caps_a) = plain.field2_captures();
    let (tx_b, caps_b) = with_empty.field2_captures();
    assert_eq!(tx_a, tx_b);
    assert_eq!(caps_a, caps_b);

    // Localization fix, bitwise.
    assert_eq!(plain.localize(), with_empty.localize());

    // A downlink transfer: same bit errors, same payload bytes.
    let dl_a = plain
        .downlink(&[0xA5; 16], 1e6, false)
        .expect("no downlink");
    let dl_b = with_empty
        .downlink(&[0xA5; 16], 1e6, false)
        .expect("no downlink");
    assert_eq!(dl_a.bit_errors, dl_b.bit_errors);
    assert_eq!(dl_a.payload, dl_b.payload);
}

/// Chaos under load (DESIGN.md §15): sampled fault plans on every
/// session *and* a saturated serving pool at once. The engine must
/// degrade gracefully — typed sheds, typed failures, delivered payloads
/// where the ARQ can win — and stay deterministic; overload must never
/// escalate into panics, lost tickets or whole-exchange drops.
#[test]
fn chaos_under_load_degrades_gracefully() {
    let traffic = TrafficConfig {
        nodes: 3,
        sessions: 18,
        rate_hz: 400.0,       // far past the virtual server's capacity
        fault_intensity: 0.7, // and most sessions carry a fault plan
        ..TrafficConfig::milback()
    };
    let serve = ServeConfig {
        shed_depth: 2,
        reject_depth: 8,
        virtual_service_s: 0.050,
        shed_service_s: 0.030,
        ..ServeConfig::milback()
    };
    let schedule = TrafficSchedule::generate(&traffic, 0xC4A0_10AD);
    let poses = roster(traffic.nodes, 0xC4A0_10AD);

    let mut engine = ServeEngine::new(&poses, serve);
    let report = engine.serve_schedule(&schedule, 4);

    // Every request resolved exactly once, whatever the overload and
    // the faults did to it.
    assert_eq!(engine.resolutions().len(), traffic.sessions);
    assert_eq!(
        report.completed + report.failed + report.shed + report.rejected,
        traffic.sessions
    );
    // The overload policy actually engaged...
    assert!(
        report.shed + report.field2_shed + report.rejected > 0,
        "saturation engaged no overload policy"
    );
    // ...and degradation stayed typed and bounded: whole-request drops
    // only ever hit the Localize class, and fault-driven failures are
    // typed errors, not silent losses.
    for r in engine.resolutions() {
        if r.outcome == Outcome::Shed {
            assert_eq!(r.workload, Workload::Localize);
        }
        if r.shed && r.outcome == Outcome::Completed {
            assert!(r.delivered, "shed exchange lost its payload");
        }
    }

    // Determinism survives chaos + overload: a fresh engine at one
    // thread resolves the same schedule identically.
    let mut serial = ServeEngine::new(&poses, serve);
    let serial_report = serial.serve_schedule(&schedule, 1);
    assert_eq!(serial.resolutions(), engine.resolutions());
    assert_eq!(serial_report.outcome_digest, report.outcome_digest);
}
