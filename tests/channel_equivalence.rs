//! Bitwise equivalence of the cached channel-synthesis path
//! (`Scene::monostatic_rx_multi_into` + `ChannelWorkspace`, DESIGN.md
//! §13) against the uncached reference
//! (`Scene::monostatic_rx_multi_uncached`), plus the content-fingerprint
//! invalidation rules: any static-scene or node-geometry change must be
//! reflected on the very next render, with no stale cache reuse.

use milback_dsp::chirp::ChirpConfig;
use milback_dsp::num::Cpx;
use milback_dsp::signal::Signal;
use milback_rf::channel::{FreqProfile, NodeInterface, Scene, TxComponent};
use milback_rf::fsa::DualPortFsa;
use milback_rf::geometry::{deg_to_rad, Point, Pose};
use milback_rf::{wave_fingerprint, ChannelWorkspace};

/// A short Field-2-style chirp (800 samples) so each uncached reference
/// render stays cheap.
fn test_component() -> TxComponent {
    let cfg = ChirpConfig {
        f_start: 27.5e9,
        f_stop: 28.5e9,
        duration: 0.5e-6,
        fs: 1.6e9,
        amplitude: 1.0,
    };
    TxComponent {
        signal: cfg.sawtooth(),
        profile: FreqProfile::Sawtooth(cfg),
    }
}

/// Square-wave port-A modulation at `freq` with a small port-B residual,
/// offset by `t_off` — the shape of the localization Γ schedule.
fn gamma_square(freq: f64, t_off: f64) -> impl Fn(f64) -> [Cpx; 2] {
    move |t: f64| {
        let s = if ((t + t_off) * freq).fract() < 0.5 {
            0.6
        } else {
            -0.6
        };
        [Cpx::new(s, 0.0), Cpx::new(0.05, 0.0)]
    }
}

fn render_cached(
    ws: &mut ChannelWorkspace,
    scene: &Scene,
    comp: &TxComponent,
    nodes: &[NodeInterface<'_>],
    rx_idx: usize,
) -> Signal {
    let mut out = Signal::zeros(comp.signal.fs, comp.signal.fc, 0);
    scene.monostatic_rx_multi_into(ws, comp, wave_fingerprint(comp), nodes, rx_idx, &mut out);
    out
}

/// The cached path must be bitwise identical to the uncached reference on
/// every scene variant — clutter on/off, mirror on/off, self-interference
/// on/off — at both RX antennas, with two SDM nodes in the scene, both on
/// the cold first render and on the warm replay.
#[test]
fn cached_render_matches_uncached_across_scene_variants() {
    let comp = test_component();
    let fsa = DualPortFsa::milback();
    let pose_a = Pose::facing_ap(3.0, deg_to_rad(5.0), deg_to_rad(8.0));
    let pose_b = Pose::facing_ap(4.5, deg_to_rad(-10.0), 0.0);
    let gamma_a = gamma_square(40e6, 0.0);
    let gamma_b = gamma_square(25e6, 0.1e-6);
    let nodes = [
        NodeInterface {
            pose: pose_a,
            fsa: &fsa,
            gamma: &gamma_a,
        },
        NodeInterface {
            pose: pose_b,
            fsa: &fsa,
            gamma: &gamma_b,
        },
    ];

    let mut indoor = Scene::milback_indoor();
    indoor.steer_towards(&pose_a.position);
    let mut no_mirror = indoor.clone();
    no_mirror.mirror = None;
    let mut no_clutter = indoor.clone();
    no_clutter.clutter.clear();
    let mut bare = Scene::free_space();
    bare.steer_towards(&pose_a.position);

    let mut ws = ChannelWorkspace::default();
    for (name, scene) in [
        ("indoor", &indoor),
        ("no_mirror", &no_mirror),
        ("no_clutter", &no_clutter),
        ("free_space", &bare),
    ] {
        for rx_idx in 0..2 {
            let reference = scene.monostatic_rx_multi_uncached(&comp, &nodes, rx_idx);
            let cold = render_cached(&mut ws, scene, &comp, &nodes, rx_idx);
            assert_eq!(
                reference.samples, cold.samples,
                "{name} rx{rx_idx}: cold cached render diverged"
            );
            let warm = render_cached(&mut ws, scene, &comp, &nodes, rx_idx);
            assert_eq!(
                reference.samples, warm.samples,
                "{name} rx{rx_idx}: warm cached render diverged"
            );
        }
    }
}

/// Γ schedules are deliberately outside the cache keys (they are
/// evaluated per sample on every render): two chirps of the same burst
/// must reuse the hoisted tables yet produce different, each-correct
/// output.
#[test]
fn gamma_schedule_is_applied_per_render_not_cached() {
    let comp = test_component();
    let fsa = DualPortFsa::milback();
    let pose = Pose::facing_ap(3.0, 0.0, deg_to_rad(5.0));
    let mut scene = Scene::milback_indoor();
    scene.steer_towards(&pose.position);

    let mut ws = ChannelWorkspace::default();
    let mut chirps = Vec::new();
    for chirp in 0..3 {
        let gamma = gamma_square(40e6, chirp as f64 * 0.5e-6);
        let node = NodeInterface {
            pose,
            fsa: &fsa,
            gamma: &gamma,
        };
        let cached = render_cached(&mut ws, &scene, &comp, std::slice::from_ref(&node), 0);
        let reference = scene.monostatic_rx_multi_uncached(&comp, std::slice::from_ref(&node), 0);
        assert_eq!(reference.samples, cached.samples, "chirp {chirp} diverged");
        chirps.push(cached);
    }
    assert_ne!(
        chirps[0].samples, chirps[1].samples,
        "distinct gamma offsets must yield distinct renders"
    );
}

/// Moving the node or re-steering the AP mid-burst must invalidate the
/// cached tables: the next render equals a fresh uncached render of the
/// new geometry and differs from the stale one.
#[test]
fn scene_and_node_mutations_invalidate_the_cache() {
    let comp = test_component();
    let fsa = DualPortFsa::milback();
    let gamma = gamma_square(40e6, 0.0);
    let pose0 = Pose::facing_ap(3.0, 0.0, deg_to_rad(5.0));
    let mut scene = Scene::milback_indoor();
    scene.steer_towards(&pose0.position);

    let mut ws = ChannelWorkspace::default();
    let node0 = NodeInterface {
        pose: pose0,
        fsa: &fsa,
        gamma: &gamma,
    };
    let before = render_cached(&mut ws, &scene, &comp, std::slice::from_ref(&node0), 0);

    // Node moves: new pose must be re-synthesized, not replayed.
    let pose1 = Pose::facing_ap(3.4, deg_to_rad(7.0), deg_to_rad(5.0));
    let node1 = NodeInterface {
        pose: pose1,
        fsa: &fsa,
        gamma: &gamma,
    };
    let moved = render_cached(&mut ws, &scene, &comp, std::slice::from_ref(&node1), 0);
    let moved_ref = scene.monostatic_rx_multi_uncached(&comp, std::slice::from_ref(&node1), 0);
    assert_eq!(
        moved_ref.samples, moved.samples,
        "post-move render is stale"
    );
    assert_ne!(before.samples, moved.samples, "node motion had no effect");

    // AP re-steers toward the new position: static fingerprint changes,
    // so clutter response AND ray tables must both refresh.
    scene.steer_towards(&pose1.position);
    let steered = render_cached(&mut ws, &scene, &comp, std::slice::from_ref(&node1), 0);
    let steered_ref = scene.monostatic_rx_multi_uncached(&comp, std::slice::from_ref(&node1), 0);
    assert_eq!(
        steered_ref.samples, steered.samples,
        "post-steer render is stale"
    );
    assert_ne!(moved.samples, steered.samples, "re-steering had no effect");

    // Clutter mutation through the public field (no setter involved).
    scene.clutter.push(milback_rf::channel::Reflector {
        position: Point::new(5.0, 0.5),
        rcs: 0.4,
    });
    let cluttered = render_cached(&mut ws, &scene, &comp, std::slice::from_ref(&node1), 0);
    let cluttered_ref = scene.monostatic_rx_multi_uncached(&comp, std::slice::from_ref(&node1), 0);
    assert_eq!(
        cluttered_ref.samples, cluttered.samples,
        "post-clutter-mutation render is stale"
    );
    assert_ne!(
        steered.samples, cluttered.samples,
        "added reflector had no effect"
    );

    // The original geometry still verifies after all the churn (it may
    // have been evicted, but never corrupted).
    let mut scene0 = Scene::milback_indoor();
    scene0.steer_towards(&pose0.position);
    let replay = render_cached(&mut ws, &scene0, &comp, std::slice::from_ref(&node0), 0);
    assert_eq!(
        before.samples, replay.samples,
        "original geometry corrupted"
    );
}

/// The one-way downlink render (`to_node_port`) must give the same
/// signal through a warm workspace as through a cold one.
#[test]
fn to_node_port_cache_is_transparent() {
    let comp = test_component();
    let fsa = DualPortFsa::milback();
    let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
    let mut scene = Scene::milback_indoor();
    scene.steer_towards(&pose.position);
    let fp = wave_fingerprint(&comp);

    for port in [milback_rf::fsa::Port::A, milback_rf::fsa::Port::B] {
        let mut cold_ws = ChannelWorkspace::default();
        let cold = scene.to_node_port_with(&mut cold_ws, &comp, fp, &pose, &fsa, port);
        let warm = scene.to_node_port_with(&mut cold_ws, &comp, fp, &pose, &fsa, port);
        assert_eq!(cold.samples, warm.samples, "warm {port:?} render diverged");
    }
}
