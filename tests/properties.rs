//! Property-based integration tests (proptest): invariants that must hold
//! for arbitrary payloads, geometries and orientations.

use milback::{Fidelity, Network};
use milback_proto::bits::{bits_to_bytes, bits_to_symbols, bytes_to_bits, symbols_to_bits};
use milback_proto::frame::{decode_frame, encode_frame};
use milback_rf::fsa::{DualPortFsa, Port};
use milback_rf::geometry::{deg_to_rad, Pose};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Frame encode→decode is the identity for any payload.
    #[test]
    fn frame_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let symbols = encode_frame(&payload);
        let decoded = decode_frame(&symbols, payload.len()).unwrap();
        prop_assert_eq!(decoded, payload);
    }

    /// Bit/byte/symbol conversions are mutually inverse.
    #[test]
    fn bit_conversions_invertible(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let bits = bytes_to_bits(&bytes);
        prop_assert_eq!(bits_to_bytes(&bits), bytes);
        let symbols = bits_to_symbols(&bits);
        prop_assert_eq!(symbols_to_bits(&symbols), bits);
    }

    /// Any single corrupted symbol makes the CRC fail.
    #[test]
    fn single_symbol_corruption_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..32),
        idx in 0usize..1000,
        flip_a in any::<bool>(),
    ) {
        let mut symbols = encode_frame(&payload);
        let k = idx % symbols.len();
        if flip_a {
            symbols[k].a_on = !symbols[k].a_on;
        } else {
            symbols[k].b_on = !symbols[k].b_on;
        }
        prop_assert!(decode_frame(&symbols, payload.len()).is_err());
    }

    /// The FSA scan law and its inverse agree at any in-range orientation.
    #[test]
    fn fsa_scan_law_invertible(deg in -29.0f64..29.0) {
        let fsa = DualPortFsa::milback();
        for port in Port::BOTH {
            let theta = deg_to_rad(deg);
            if let Some(f) = fsa.frequency_for_angle(port, theta) {
                let back = fsa.beam_angle(port, f).unwrap();
                prop_assert!((back - theta).abs() < 1e-9);
            }
        }
    }

    /// The two OAQFM tones are always mirror images around the normal
    /// frequency and stay ordered with orientation.
    #[test]
    fn oaqfm_tone_symmetry(deg in -25.0f64..25.0) {
        let fsa = DualPortFsa::milback();
        let theta = deg_to_rad(deg);
        let fa = fsa.frequency_for_angle(Port::A, theta).unwrap();
        let fb = fsa.frequency_for_angle(Port::B, theta).unwrap();
        let f0 = fsa.normal_frequency();
        // Product symmetry: 1/fa + 1/fb == 2/f0 (harmonic mirror).
        let lhs = 1.0 / fa + 1.0 / fb;
        prop_assert!((lhs - 2.0 / f0).abs() < 1e-18, "lhs {} vs {}", lhs, 2.0 / f0);
        if deg > 0.5 {
            prop_assert!(fa > fb);
        } else if deg < -0.5 {
            prop_assert!(fb > fa);
        }
    }
}

proptest! {
    // End-to-end cases are expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Uplink delivers arbitrary payloads intact at short range.
    #[test]
    fn uplink_delivers_any_payload(
        payload in proptest::collection::vec(any::<u8>(), 1..24),
        seed in 0u64..1000,
    ) {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
        let mut net = Network::new(pose, Fidelity::Fast, seed);
        let report = net.uplink(&payload, 5e6, true).expect("no uplink");
        prop_assert_eq!(report.bit_errors, 0);
        prop_assert_eq!(report.payload.as_deref().unwrap(), &payload[..]);
    }

    /// Downlink delivers arbitrary payloads intact at short range.
    #[test]
    fn downlink_delivers_any_payload(
        payload in proptest::collection::vec(any::<u8>(), 1..24),
        seed in 0u64..1000,
    ) {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
        let mut net = Network::new(pose, Fidelity::Fast, seed);
        let report = net.downlink(&payload, 1e6, true).expect("no downlink");
        prop_assert_eq!(report.bit_errors, 0);
        prop_assert_eq!(report.payload.as_deref().unwrap(), &payload[..]);
    }

    /// Localization error is bounded at any geometry in the core region.
    #[test]
    fn localization_bounded_error(
        d in 1.5f64..6.0,
        phi_deg in -15.0f64..15.0,
        seed in 0u64..1000,
    ) {
        let pose = Pose::facing_ap(d, deg_to_rad(phi_deg), 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, seed);
        let fix = net.localize().expect("no fix");
        prop_assert!((fix.range - d).abs() < 0.3, "range {} vs {}", fix.range, d);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Trial seeds are collision-free within any sweep: distinct indices
    /// under one master seed never map to the same per-trial seed. (The
    /// derivation is a bijection of `master ^ index·odd`, so this holds
    /// for ALL pairs — the test samples the space.)
    #[test]
    fn seed_derivation_no_collisions(
        master in any::<u64>(),
        i in 0usize..100_000,
        j in 0usize..100_000,
    ) {
        let a = milback::batch::derive_seed(master, i as u64);
        let b = milback::batch::derive_seed(master, j as u64);
        prop_assert_eq!(a == b, i == j, "indices {} and {} -> {:#x}", i, j, a);
    }

    /// Seed derivation is a pure function of (master, index): evaluation
    /// order is irrelevant, so a permuted work schedule (what the
    /// parallel engine actually does) sees the same seeds.
    #[test]
    fn seed_derivation_order_invariant(
        master in any::<u64>(),
        n in 1usize..64,
        shuffle_seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let forward: Vec<u64> = (0..n).map(|i| milback::batch::derive_seed(master, i as u64)).collect();
        // Visit indices in a pseudo-random order, as a work-stealing pool would.
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(shuffle_seed);
        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..i + 1));
        }
        for &i in &order {
            prop_assert_eq!(milback::batch::derive_seed(master, i as u64), forward[i]);
        }
    }

    /// Different master seeds give unrelated trial-seed streams.
    #[test]
    fn seed_derivation_masters_diverge(
        m1 in any::<u64>(),
        m2 in any::<u64>(),
        i in 0usize..1000,
    ) {
        let m2 = if m1 == m2 { m2 ^ 1 } else { m2 }; // force distinct masters
        prop_assert_ne!(
            milback::batch::derive_seed(m1, i as u64),
            milback::batch::derive_seed(m2, i as u64)
        );
    }

    /// run_trials hands each closure the seed derived from its own index,
    /// and returns results in index order.
    #[test]
    fn run_trials_seeds_match_derivation(master in any::<u64>(), n in 0usize..32) {
        let got = milback::batch::run_trials(n, master, |t| (t.index, t.seed));
        let expect: Vec<(usize, u64)> =
            (0..n).map(|i| (i, milback::batch::derive_seed(master, i as u64))).collect();
        prop_assert_eq!(got, expect);
    }
}
