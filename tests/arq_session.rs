//! Property tests for the self-healing layers (DESIGN.md §14): the
//! stop-and-wait ARQ machine delivers exactly once, in order, under
//! arbitrary frame/ACK loss, and the session supervisor's retry counts
//! follow the injected fault schedule exactly.

use milback::session::{Degradation, Session, SessionConfig};
use milback::{Fidelity, Network};
use milback_proto::arq::{ArqReceiver, ArqSender, ArqVerdict, Backoff};
use milback_proto::packet::Packet;
use milback_rf::faults::{FaultEvent, FaultKind, FaultPlan};
use milback_rf::geometry::{deg_to_rad, Pose};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once, in-order delivery: whatever frames and ACKs the
    /// channel eats, the receiver hands each payload up exactly once and
    /// in the order sent — duplicates created by lost ACKs are re-ACKed
    /// but never re-delivered.
    #[test]
    fn arq_delivers_exactly_once_in_order(
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..16), 1..6),
        frame_loss in proptest::collection::vec(any::<bool>(), 24..25),
        ack_loss in proptest::collection::vec(any::<bool>(), 24..25),
    ) {
        // Budget large enough that delivery is guaranteed once the loss
        // patterns run out and the channel goes clean.
        let budget = frame_loss.len() + ack_loss.len() + 2;
        let mut tx = ArqSender::new(budget);
        let mut rx = ArqReceiver::new();
        let mut delivered: Vec<Vec<u8>> = Vec::new();
        let mut k = 0usize;

        for msg in &msgs {
            tx.start(msg);
            loop {
                let frame = tx.frame().expect("in-flight frame missing").to_vec();
                let eat_frame = frame_loss.get(k).copied().unwrap_or(false);
                let eat_ack = ack_loss.get(k).copied().unwrap_or(false);
                k += 1;

                let ack = if eat_frame {
                    // Corrupted/lost frame: the CRC layer never hands it
                    // to the receiver, so no ACK comes back.
                    None
                } else {
                    let resp = rx.on_frame(&frame).map(|(ack, payload)| {
                        if let Some(p) = payload {
                            delivered.push(p.to_vec());
                        }
                        ack
                    });
                    if eat_ack { None } else { resp }
                };

                match tx.on_ack_verdict(ack) {
                    ArqVerdict::Delivered => break,
                    ArqVerdict::Retry => {}
                    ArqVerdict::GiveUp => prop_assert!(false, "budget exhausted"),
                }
            }
        }
        prop_assert_eq!(delivered, msgs.clone());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The session's Field-1 retry count is determined by the injected
    /// schedule: a blockage covering exactly the first `k` attempts (on
    /// the known attempt timeline — airtime plus exponential backoff)
    /// produces exactly `k + 1` mode attempts and the matching total
    /// backoff wait.
    #[test]
    fn session_retries_match_injected_schedule(k in 1usize..4) {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
        let mut net = Network::new(pose, Fidelity::Fast, 4100 + k as u64);
        let pkt = net.fidelity.packet();
        let cfg = SessionConfig::milback();
        let backoff = Backoff::milback();

        // Attempt start times on the session clock, as Session computes
        // them: each attempt costs one Field-1 airtime, each retry adds
        // the next backoff delay.
        let f1 = pkt.field1_duration();
        let mut starts = vec![0.0f64];
        for i in 1..cfg.mode_attempts {
            starts.push(starts[i - 1] + f1 + backoff.delay_s(i));
        }

        // Blockage from t=0 to just before attempt k's start: attempts
        // 0..k die, attempt k sees a clear channel.
        net.faults = FaultPlan {
            seed: 40 + k as u64,
            events: vec![FaultEvent {
                start_s: 0.0,
                duration_s: starts[k] - 1e-4,
                kind: FaultKind::Blockage { depth_db: 80.0 },
            }],
        };

        let packet = Packet::downlink((0..16).collect());
        let report = Session::new(cfg)
            .run(&mut net, &packet)
            .expect("session should recover after the blockage lifts");
        prop_assert_eq!(report.mode_attempts, k + 1);
        prop_assert!(report
            .degradations
            .iter()
            .any(|d| matches!(d, Degradation::ModeRetries { attempts } if *attempts == k + 1)));
        let expected_wait: f64 = (1..=k).map(|i| backoff.delay_s(i)).sum();
        prop_assert!(
            (report.backoff_s - expected_wait).abs() < 1e-12,
            "backoff {} != expected {}",
            report.backoff_s,
            expected_wait
        );
    }
}
