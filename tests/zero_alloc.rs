//! Allocation-regression pin for the DSP hot paths (DESIGN.md §12).
//!
//! A counting global allocator wraps the system allocator; the single
//! test below warms the workspace/template fast paths and then asserts
//! that steady-state iterations perform **zero** heap allocations:
//!
//! * the five-chirp localization burst through
//!   `Localizer::process_with` on a warmed `DspWorkspace`,
//! * the link-side symbol loop: Field-2 waveform assembly into a reused
//!   `Signal` plus uplink query-tone fetches from the template cache,
//! * the full Field-2 render: `Network::field2_captures_into` through a
//!   warmed `ChannelWorkspace` + `Field2Burst` — channel synthesis
//!   included (static-scene response cache + hoisted ray tables,
//!   DESIGN.md §13), not just the processing half,
//! * the serving loop (DESIGN.md §15): a whole seeded epoch of
//!   `Localize` sessions through the pooled serving engine — admission,
//!   chains, steal dispatch, scratch checkout, resolutions, report.
//!
//! One test function on purpose: the allocation counter is process-wide,
//! so a second concurrently-running test would pollute the deltas.

use milback::{Fidelity, Network};
use milback_ap::waveform::{self, TxConfig};
use milback_ap::workspace::DspWorkspace;
use milback_dsp::signal::Signal;
use milback_dsp::template;
use milback_proto::packet::PacketConfig;
use milback_rf::geometry::{deg_to_rad, Pose};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Pass-through allocator that counts heap acquisitions (`alloc`,
/// `alloc_zeroed`, `realloc`); frees are not counted.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warmed_hot_paths_perform_zero_heap_allocations() {
    // ---- five-chirp localization burst ------------------------------
    let pose = Pose::facing_ap(3.0, deg_to_rad(4.0), 0.0);
    let mut net = Network::new(pose, Fidelity::Fast, 0xA110C);
    let (tx, captures) = net.field2_captures();
    let localizer = net.localizer();
    let mut ws = DspWorkspace::new();

    // Warm-up: grows the workspace buffers, builds the cached FFT plan
    // and checks the fast path against the allocating reference.
    let expect = localizer.process(&tx, &captures);
    assert!(expect.is_some(), "reference localization failed");
    for _ in 0..2 {
        assert_eq!(localizer.process_with(&mut ws, &tx, &captures), expect);
    }

    let before = allocs();
    for _ in 0..5 {
        let got = localizer.process_with(&mut ws, &tx, &captures);
        assert_eq!(got, expect);
    }
    assert_eq!(
        allocs() - before,
        0,
        "warmed localization burst allocated on the heap"
    );

    // ---- link symbol loop: waveform assembly + tone templates -------
    let tx_cfg = TxConfig::milback();
    let pkt = PacketConfig::milback();
    let mut wave = Signal::zeros(tx_cfg.fs, 0.0, 0);
    let (fs, fc, f_off, amp, n) = (4e9, 28e9, 150e6, 1.0, 4096);

    // Warm-up: grows the waveform buffer and populates the template
    // cache (chirp train + query tone).
    waveform::field2_waveform_into(&tx_cfg, &pkt, &mut wave);
    let tone_ref = template::tone(fs, fc, f_off, amp, n);
    assert_eq!(tone_ref.len(), n);

    let before = allocs();
    for _ in 0..5 {
        waveform::field2_waveform_into(&tx_cfg, &pkt, &mut wave);
        let tone = template::tone(fs, fc, f_off, amp, n);
        assert!(std::rc::Rc::ptr_eq(&tone, &tone_ref), "tone cache missed");
    }
    assert_eq!(
        allocs() - before,
        0,
        "warmed link symbol loop allocated on the heap"
    );

    // ---- full Field-2 render: channel synthesis included ------------
    // A caller-owned workspace + burst, so warm-up is explicit. The
    // scene is the clutter-rich indoor default, so this covers the
    // static-response cache, the hoisted ray tables AND the capture
    // noise/jitter loop.
    let mut cw = milback_rf::ChannelWorkspace::default();
    let mut burst = milback::network::Field2Burst::default();
    net.field2_captures_into(&mut cw, 5, &mut burst);
    net.field2_captures_into(&mut cw, 5, &mut burst);
    assert_eq!(burst.captures.len(), 5);

    let before = allocs();
    for _ in 0..3 {
        net.field2_captures_into(&mut cw, 5, &mut burst);
    }
    assert_eq!(
        allocs() - before,
        0,
        "warmed Field-2 render (channel synthesis) allocated on the heap"
    );

    // And the fully-composed trial the batch engine runs: render through
    // the thread-local burst/channel workspaces, process through the
    // thread-local DSP workspace.
    assert!(net.localize().is_some(), "warm-up localize failed");
    let before = allocs();
    for _ in 0..3 {
        assert!(net.localize().is_some(), "steady-state localize failed");
    }
    assert_eq!(
        allocs() - before,
        0,
        "warmed end-to-end localize allocated on the heap"
    );

    // ---- serving loop: pooled sessions through the engine -----------
    // The §15 serving engine's `Localize` service class end to end:
    // admission, per-node chains, the work-stealing dispatch (1 thread
    // = inline), pooled scratch checkout, fault-plan reuse, resolution
    // slots and the report. Epoch 1 grows every pool; a repeat of the
    // same seeded schedule must then allocate nothing.
    use milback::serve::roster;
    use milback::{ServeConfig, ServeEngine, TrafficConfig, TrafficSchedule, Workload};
    let traffic = TrafficConfig {
        nodes: 3,
        sessions: 12,
        rate_hz: 5.0,           // light load: nothing sheds or rejects
        localize_fraction: 1.0, // the zero-allocation service class
        ..TrafficConfig::milback()
    };
    let schedule = TrafficSchedule::generate(&traffic, 0x5E4E);
    assert!(schedule
        .requests
        .iter()
        .all(|r| r.workload == Workload::Localize));
    let mut engine = ServeEngine::new(&roster(traffic.nodes, 0x5E4E), ServeConfig::milback());
    let warm = engine.serve_schedule(&schedule, 1);
    assert_eq!(warm.completed, traffic.sessions, "warm-up epoch degraded");

    let before = allocs();
    let steady = engine.serve_schedule(&schedule, 1);
    assert_eq!(
        allocs() - before,
        0,
        "warmed serving loop allocated on the heap"
    );
    assert_eq!(
        steady.outcome_digest, warm.outcome_digest,
        "serving epochs diverged"
    );

    // ---- serving loop: all three service classes ---------------------
    // The mixed workload exercises `Downlink` and `Uplink` sessions
    // through the same pooled lanes. The link layer proper (captures,
    // modulator schedules, uplink demod scratch, ARQ state) is pooled;
    // the measured steady-state remainder per exchange session lives in
    // the Field-1 mode-signalling / orientation-sensing chain (fresh
    // video and smoothing buffers per chirp) plus the decoded payload
    // handed back in each report. Pinned per exchange so it can only
    // shrink.
    let mixed = TrafficConfig {
        nodes: 3,
        sessions: 12,
        rate_hz: 5.0,           // light load: nothing sheds or rejects
        localize_fraction: 0.4, // all three classes in the mix
        uplink_fraction: 0.5,
        ..TrafficConfig::milback()
    };
    let mixed_schedule = TrafficSchedule::generate(&mixed, 0x5E4F);
    let count = |w: Workload| {
        mixed_schedule
            .requests
            .iter()
            .filter(|r| r.workload == w)
            .count() as u64
    };
    let exchanges = count(Workload::Downlink) + count(Workload::Uplink);
    assert!(count(Workload::Localize) > 0, "mix lost its Localize class");
    assert!(count(Workload::Downlink) > 0, "mix lost its Downlink class");
    assert!(count(Workload::Uplink) > 0, "mix lost its Uplink class");
    let mut mixed_engine = ServeEngine::new(&roster(mixed.nodes, 0x5E4F), ServeConfig::milback());
    let mixed_warm = mixed_engine.serve_schedule(&mixed_schedule, 1);
    assert_eq!(
        mixed_warm.completed, mixed.sessions,
        "warm-up epoch degraded"
    );

    let before = allocs();
    let mixed_steady = mixed_engine.serve_schedule(&mixed_schedule, 1);
    let per_exchange = (allocs() - before) / exchanges;
    assert!(
        per_exchange <= 95,
        "warmed mixed serving loop allocated {per_exchange}/exchange \
         (mode/orientation sensing chain + decoded payload expected)"
    );
    assert_eq!(
        mixed_steady.outcome_digest, mixed_warm.outcome_digest,
        "mixed serving epochs diverged"
    );

    // ---- dense-network fabric round (DESIGN.md §16) ------------------
    // One scheduled polling round end to end: drift (disabled), cell
    // assignment, slot layout, per-slot reseed/clock/interferer fill and
    // the supervised session — all against pooled state. Two nodes with
    // one parked interferer each keeps the shared channel workspace
    // within its cache caps (8 ray entries, 2 statics), so a re-keyed
    // repeat of the warm round must not touch the heap.
    use milback::net::{ap_line, net_roster, Fabric, NetConfig};
    let aps = ap_line(1, 4.0);
    let roster_poses = net_roster(2, &aps, 0x2E7);
    let net_cfg = NetConfig {
        max_interferers: 1,
        localize_fraction: 1.0, // the zero-allocation service class
        ..NetConfig::milback(Fidelity::Fast)
    };
    let mut fabric = Fabric::new(&aps, &roster_poses, net_cfg);
    fabric.reseed(0xFA8);
    let warm_round = fabric.run_round(1);
    assert_eq!(warm_round.sessions, 2, "warm-up round degraded");

    let before = allocs();
    fabric.reseed(0xFA8);
    let steady_round = fabric.run_round(1);
    assert_eq!(
        allocs() - before,
        0,
        "warmed fabric round allocated on the heap"
    );
    assert_eq!(
        steady_round.digest, warm_round.digest,
        "fabric rounds diverged"
    );

    // ---- pooled link layer: downlink ---------------------------------
    // Every per-transfer buffer lives in the network's `LinkScratch`
    // (waveforms, port renders, detector videos, demod/codec scratch),
    // so a warmed downlink's only heap allocation is the decoded payload
    // `Vec<u8>` handed back in the report — exactly one acquisition per
    // transfer.
    let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
    let mut link_net = Network::new(pose, Fidelity::Fast, 0x11A8);
    let payload: Vec<u8> = (0..16).collect();
    for _ in 0..2 {
        let report = link_net.downlink(&payload, 1e6, true).expect("no tones");
        assert_eq!(report.bit_errors, 0, "warm-up downlink degraded");
    }
    let before = allocs();
    for _ in 0..3 {
        let report = link_net.downlink(&payload, 1e6, true).expect("no tones");
        assert_eq!(report.payload.as_deref().unwrap(), &payload[..]);
    }
    assert_eq!(
        allocs() - before,
        3,
        "warmed downlink allocated beyond the decoded payload"
    );

    // ---- pooled link layer: uplink -----------------------------------
    // With the receiver demodulating through the pooled `UplinkScratch`
    // (branch chains, cached anti-alias designs, symbol points,
    // projections, slices), a warmed uplink matches the downlink: the
    // only heap allocation per transfer is the decoded payload `Vec<u8>`
    // handed back in the report.
    for _ in 0..2 {
        let report = link_net.uplink(&payload, 5e6, true).expect("no tones");
        assert_eq!(report.bit_errors, 0, "warm-up uplink degraded");
    }
    let before = allocs();
    let reps = 3u64;
    for _ in 0..reps {
        let report = link_net.uplink(&payload, 5e6, true).expect("no tones");
        assert_eq!(report.payload.as_deref().unwrap(), &payload[..]);
    }
    let per_transfer = (allocs() - before) / reps;
    assert!(
        per_transfer <= 1,
        "warmed uplink allocated {per_transfer}/transfer (decoded payload only expected)"
    );
}
