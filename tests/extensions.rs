//! Integration tests for the extension features built on top of the
//! paper's core: dense OAQFM, multi-node SDM, velocity measurement,
//! reliable delivery and large-message transfer.

use milback::multinode::MultiNetwork;
use milback::{Fidelity, Network};
use milback_proto::dense::DenseConstellation;
use milback_proto::mac::PollSchedule;
use milback_proto::multiframe::{fragment, Reassembler};
use milback_rf::geometry::{deg_to_rad, Pose};

#[test]
fn dense_oaqfm_rate_range_tradeoff() {
    // The §9.4 extension end-to-end: L=4 doubles throughput at short
    // range; classic OAQFM survives farther.
    let near = Pose::facing_ap(2.0, 0.0, deg_to_rad(18.0));
    let mut net = Network::new(near, Fidelity::Fast, 5001);
    let dense = net
        .downlink_dense(&[0x3A; 16], 1e6, DenseConstellation::new(4), true)
        .expect("no dense link");
    assert_eq!(dense.bit_errors, 0);
    assert_eq!(dense.bit_rate, 4e6);

    let mut net = Network::new(near, Fidelity::Fast, 5001);
    let classic = net
        .downlink(&[0x3A; 16], 1e6, true)
        .expect("no classic link");
    assert_eq!(classic.bit_errors, 0);
    // Same symbol rate, double the bits.
    assert_eq!(dense.bit_rate, 2.0 * 1e6 * 2.0);
}

#[test]
fn multinode_round_localizes_and_delivers_all() {
    let poses = vec![
        Pose::facing_ap(2.0, deg_to_rad(-15.0), deg_to_rad(8.0)),
        Pose::facing_ap(4.0, deg_to_rad(10.0), deg_to_rad(-10.0)),
    ];
    let mut net = MultiNetwork::new(poses, Fidelity::Fast, 5002);
    let schedule = PollSchedule::round_robin_uplink(2);
    let payloads = vec![vec![0xAA; 8], vec![0x55; 8]];
    let results = net.run_round(&schedule, &payloads, 5e6);
    for (k, r) in results.iter().enumerate() {
        assert!(r.fix.is_some(), "node {k} not localized");
        let ul = r
            .uplink
            .as_ref()
            .unwrap_or_else(|| panic!("node {k} no uplink"));
        assert_eq!(ul.payload.as_deref().unwrap(), &payloads[k][..]);
    }
}

#[test]
fn velocity_and_tracking_compose() {
    // Kinematic state: position from localization, velocity from Doppler.
    let pose = Pose::facing_ap(3.0, 0.0, 0.0);
    let mut net = Network::new(pose, Fidelity::Fast, 5003);
    let fix = net.localize().expect("no fix");
    assert!((fix.range - 3.0).abs() < 0.1);
    let vel = net.measure_velocity(1.2, 64).expect("no velocity");
    assert!(vel.moving);
    assert!((vel.velocity - 1.2).abs() < 0.4, "v {}", vel.velocity);
}

#[test]
fn reliable_large_message_transfer() {
    // A 150-byte message: fragmented into fixed-size payloads, each sent
    // over the real simulated uplink, reassembled at the AP.
    let message: Vec<u8> = (0..150u8).collect();
    let frags = fragment(&message, 32);
    assert!(frags.len() > 3);

    let pose = Pose::facing_ap(2.5, 0.0, deg_to_rad(12.0));
    let mut reassembler = Reassembler::new();
    let mut delivered = None;
    for (k, frag) in frags.iter().enumerate() {
        let mut net = Network::new(pose, Fidelity::Fast, 5100 + k as u64);
        let report = net.uplink(frag, 5e6, true).expect("no uplink");
        let received = report.payload.expect("fragment corrupted");
        if let Some(m) = reassembler.feed(&received).expect("bad fragment") {
            delivered = Some(m);
        }
    }
    assert_eq!(delivered.expect("message incomplete"), message);
}

#[test]
fn arq_delivers_over_real_channel() {
    let pose = Pose::facing_ap(3.0, 0.0, deg_to_rad(12.0));
    let mut net = Network::new(pose, Fidelity::Fast, 5200);
    let attempts = net
        .uplink_reliable(&[0xF0; 12], 5e6, 4)
        .expect("ARQ gave up at 3 m");
    assert_eq!(attempts, 1, "clean link should deliver first try");
}

#[test]
fn firmware_matches_network_protocol() {
    // The node-side firmware state machine decodes the same Field-1 mode
    // the network-level protocol transmitted.
    use milback_node::firmware::{Firmware, FirmwareState};
    use milback_proto::packet::LinkMode;

    let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(10.0));
    let mut net = Network::new(pose, Fidelity::Fast, 5300);
    // Render the over-the-air Field-1 captures exactly as the node hears
    // them, then feed them sample-by-sample into the firmware.
    let mode = net.signal_mode(LinkMode::Downlink);
    assert_eq!(mode, Some(LinkMode::Downlink));

    // Firmware-level walkthrough on synthetic captures of the same shape.
    let pkt = net.fidelity.packet();
    let sigma = 2f64.sqrt() * net.node.detector.output_noise_rms();
    let fw = Firmware::new(pkt, 3.0 * sigma, sigma);
    assert_eq!(fw.state(), FirmwareState::Sleep);
}

#[test]
fn coverage_map_matches_adaptive_rates() {
    // The planning tool's per-cell best rate should agree with what the
    // full simulation actually achieves (within one rate step).
    use milback::survey::analytic_uplink_snr;
    use milback::ApParams;
    use milback_node::node::BackscatterNode;
    use milback_rf::channel::Scene;

    let scene = Scene::milback_indoor();
    let node = BackscatterNode::milback(Pose::facing_ap(2.0, 0.0, 0.0));
    let ap = ApParams::milback();
    for d in [2.0, 5.0, 8.0] {
        let pose = Pose::facing_ap(d, 0.0, deg_to_rad(15.0));
        let planned = milback::adaptation::UPLINK_RATES
            .iter()
            .copied()
            .find(|&r| {
                analytic_uplink_snr(&scene, &node, &ap, &pose, r)
                    .map(|s| s >= milback::adaptation::SNR_ACCEPT)
                    .unwrap_or(false)
            });
        let mut net = Network::new(pose, Fidelity::Fast, 5400 + d as u64);
        let achieved = net.uplink_adaptive(&[0x11; 8]).map(|r| r.bit_rate);
        // Allow one rate step of disagreement (the plan is analytic).
        match (planned, achieved) {
            (Some(p), Some(a)) => {
                let ratio = if p > a { p / a } else { a / p };
                assert!(ratio <= 2.01, "planned {p}, achieved {a} at {d} m");
            }
            (None, None) => {}
            (p, a) => panic!("plan {p:?} vs achieved {a:?} at {d} m"),
        }
    }
}

/// SDM's limit: two nodes at (nearly) the same azimuth cannot be
/// separated by beam steering — the off-slot node's residual reflections
/// share the beam. The links may still work (the parked node absorbs),
/// but localization must find the *modulating* node, not the parked one.
#[test]
fn sdm_separates_target_from_coazimuth_neighbor() {
    let poses = vec![
        Pose::facing_ap(2.5, deg_to_rad(2.0), deg_to_rad(8.0)),
        Pose::facing_ap(5.0, deg_to_rad(-2.0), deg_to_rad(-8.0)), // nearly co-azimuth
    ];
    let mut net = MultiNetwork::new(poses, Fidelity::Fast, 5500);
    // Localizing node 0 must return ~2.5 m, not the neighbor's 5 m:
    // the neighbor is parked absorptive, so background subtraction
    // removes what little it reflects.
    let fix0 = net.localize_node(0).expect("node 0 lost");
    assert!((fix0.range - 2.5).abs() < 0.3, "node 0 at {}", fix0.range);
    let fix1 = net.localize_node(1).expect("node 1 lost");
    assert!((fix1.range - 5.0).abs() < 0.3, "node 1 at {}", fix1.range);
}

/// FEC extends usable range: at a distance where the uncoded link drops
/// frames, Hamming(7,4)-protected bits get through.
#[test]
fn fec_recovers_marginal_uplink() {
    use milback_proto::bits::{bits_to_symbols, bytes_to_bits, symbols_to_bits};
    use milback_proto::fec;

    // Find a marginal regime: 20 Msym/s at 11 m produces scattered bit
    // errors in most frames.
    let pose = Pose::facing_ap(11.0, 0.0, deg_to_rad(15.0));
    let message: Vec<u8> = (0..8).collect();
    let coded_bits = fec::encode(&bytes_to_bits(&message));
    let coded_symbols = bits_to_symbols(&coded_bits);
    // Carry the coded bits as an opaque payload through the raw link
    // (bypassing the frame CRC — FEC sits below it here).
    let mut clean_runs = 0;
    let mut fec_runs = 0;
    let trials = 6;
    for seed in 0..trials {
        let mut net = Network::new(pose, Fidelity::Fast, 6000 + seed);
        // Transport the coded symbol stream in a frame-sized payload.
        let coded_bytes =
            milback_proto::bits::bits_to_bytes(&symbols_to_bits(&coded_symbols)[..112]);
        if let Some(report) = net.uplink(&coded_bytes, 10e6, true) {
            // Count raw delivery (CRC) and FEC-assisted delivery.
            if report.payload.is_ok() {
                clean_runs += 1;
                fec_runs += 1;
                continue;
            }
            // CRC failed: try FEC repair on the raw decoded bits. The
            // uplink's `payload` is unavailable on CRC failure, but the
            // bit_errors count tells us how corrupted the frame was; a
            // frame with ≤ 1 error per 7-bit block is FEC-recoverable.
            let errs = report.bit_errors;
            let blocks = 112 / 7;
            if errs <= blocks {
                // Optimistic bound: scattered single errors are fixable.
                fec_runs += 1;
            }
        }
    }
    assert!(
        fec_runs >= clean_runs,
        "FEC should never do worse: {fec_runs} vs {clean_runs}"
    );
}
