//! Closed-loop controller pins (DESIGN.md §18): the OOK fallback fires
//! under a scheduled CW comb on the dual-tone branch offsets and
//! recovers once the comb window ends; the clean scenario is bitwise
//! identical to the fixed baseline (the controller never costs anything
//! when the channel is healthy); and the adaptive-vs-fixed sweep is
//! invariant to the batch engine's worker-thread count.

use milback::adaptation::{adaptive_trial, UPLINK_RATES};
use milback::link::MIN_TONE_SEPARATION;
use milback::session::{Session, SessionConfig, SessionCtx};
use milback::{
    adaptive_sweep_with_threads, derive_seed, Fidelity, LinkPolicy, Network, PolicyFeedback,
    ScenarioKind,
};
use milback_ap::{select_tones, ToneSelection};
use milback_proto::packet::{LinkMode, Packet};
use milback_rf::faults::{FaultEvent, FaultKind, FaultPlan};
use milback_rf::geometry::{deg_to_rad, Pose};
use proptest::prelude::*;

const PAYLOAD_LEN: usize = 16;

/// Runs one policy-steered uplink exchange, mirroring the evaluation
/// harness's session loop: plan from the controller, run supervised,
/// feed the outcome back. Returns whether the payload was delivered and
/// how many payload transmissions it took (0 = died before payload).
fn run_steered_uplink(
    policy: &mut LinkPolicy,
    net: &mut Network,
    ctx: &mut SessionCtx,
    seed: u64,
    i: u64,
) -> (bool, usize) {
    let mut base = SessionConfig::milback();
    base.symbol_rate = UPLINK_RATES[0] / 2.0;
    let plan = policy.plan(&base, LinkMode::Uplink);
    let session_seed = derive_seed(seed, 100 + i);
    net.reseed(session_seed);
    net.force_single_tone = plan.force_ook;
    let payload: Vec<u8> = (0..PAYLOAD_LEN)
        .map(|j| (session_seed.rotate_left(((j % 8) * 8) as u32) as u8) ^ j as u8)
        .collect();
    let outcome = Session::new(plan.config).run_in(ctx, net, &Packet::uplink(payload), false);
    net.force_single_tone = false;
    let fb = PolicyFeedback::from_outcome(&outcome, policy.config.snr_floor);
    policy.observe(&fb);
    (fb.delivered, fb.payload_attempts)
}

/// The Field-1/Field-2 stages leave dual-tone selection to the link
/// layer; the CW comb must straddle the *selected* branch offset, so
/// derive it the same way the evaluation scenarios do.
fn branch_offset_hz(net: &Network) -> f64 {
    match select_tones(&net.node.fsa, net.true_orientation(), MIN_TONE_SEPARATION) {
        Some(ToneSelection::Dual { f_a, f_b }) => (f_a - f_b).abs() / 2.0,
        _ => panic!("expected a dual-tone selection at 2 m boresight"),
    }
}

/// A chronic CW comb straddling the dual-tone branch offset — the same
/// five-tone shape [`ScenarioKind::CwInterference`] schedules, at an
/// amplitude where dual-tone slicing breaks but collapsed OOK still has
/// margin.
fn cw_comb(seed: u64, duration_s: f64, offset_hz: f64) -> FaultPlan {
    let mut plan = FaultPlan::none();
    plan.seed = seed;
    for k in -2i32..=2 {
        plan.events.push(FaultEvent {
            start_s: 0.0,
            duration_s,
            kind: FaultKind::Interference {
                freq_offset_hz: offset_hz + k as f64 * 60e6,
                amp: 1.5e-4,
            },
        });
    }
    plan
}

/// The OOK-fallback stressor end to end: dual-tone uplinks fail under
/// the comb, the controller flips to forced OOK within its hysteresis
/// budget, forced-OOK sessions deliver through the comb, and once the
/// comb window closes the controller probes dual again and settles back
/// to the neutral plan.
#[test]
fn ook_fallback_fires_under_cw_comb_and_recovers_after_window() {
    let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
    let seed = 0x00C0_77E5;
    let mut net = Network::new(pose, Fidelity::Fast, seed);
    let offset = branch_offset_hz(&net);
    // Schedule the comb for far longer than the trouble phase needs —
    // the window is then closed at the session clock the controller
    // actually reached, keeping the test independent of backoff timing.
    net.faults = cw_comb(derive_seed(seed, 1), 1e3, offset);

    let mut policy = LinkPolicy::default();
    let mut ctx = SessionCtx::new();

    // Phase 1: dual-tone exchanges fail under the comb until the
    // low-SNR streak trips the fallback. ook_after = 2, so two failed
    // sessions suffice; cap well above that.
    let mut failed_before_fire = 0;
    let mut fired_at = None;
    for i in 0..8 {
        let (delivered, _) = run_steered_uplink(&mut policy, &mut net, &mut ctx, seed, i);
        if policy.forcing_ook() {
            fired_at = Some(i);
            break;
        }
        failed_before_fire += (!delivered) as u32;
    }
    let fired_at = fired_at.expect("OOK fallback never fired under the CW comb");
    assert!(
        failed_before_fire >= 1,
        "fallback must be evidence-driven: at least one dual-tone failure first"
    );

    // Phase 2: forced-OOK sessions ride through the comb.
    let mut ook_delivered = 0;
    for i in 0..4 {
        let (delivered, _) =
            run_steered_uplink(&mut policy, &mut net, &mut ctx, seed, 10 + fired_at + i);
        ook_delivered += delivered as u32;
    }
    assert!(
        ook_delivered >= 2,
        "forced OOK should deliver through the comb, got {ook_delivered}/4"
    );

    // Close the comb window at the current session clock: the scheduled
    // events now end in the past and the channel is clean again.
    let window_end = net.clock_s;
    for ev in &mut net.faults.events {
        ev.duration_s = window_end;
    }

    // Phase 3: clean channel. The controller probes dual again after
    // ook_recover_after clean OOK deliveries and must settle neutral.
    let mut last = (false, 0);
    for i in 0..10 {
        last = run_steered_uplink(&mut policy, &mut net, &mut ctx, seed, 40 + i);
    }
    assert!(
        !policy.forcing_ook(),
        "controller stuck in OOK after the comb window closed"
    );
    assert_eq!(
        last,
        (true, 1),
        "post-recovery dual-tone exchange should deliver first-attempt"
    );
}

/// The sweep harness is thread-count invariant (same job order, same
/// seeds, same aggregation) and its clean scenario is *bitwise* equal
/// between the fixed and adaptive variants — a neutral controller plans
/// exactly the baseline, so adaptation can never underperform the fixed
/// link on a fault-free channel.
#[test]
fn sweep_is_thread_invariant_and_clean_scenario_is_bitwise_neutral() {
    let serial = adaptive_sweep_with_threads(2, 1, 0xADA9_7E57, 1);
    let parallel = adaptive_sweep_with_threads(2, 1, 0xADA9_7E57, 4);
    assert_eq!(serial, parallel, "sweep lost thread invariance");

    let clean = serial
        .iter()
        .find(|c| c.scenario == ScenarioKind::Clean)
        .expect("clean scenario missing from sweep");
    assert_eq!(
        clean.fixed, clean.adaptive,
        "a neutral policy must be a bitwise no-op on a clean channel"
    );
    assert_eq!(clean.fixed.sessions_failed, 0);
    assert!(clean.adaptive.goodput_kbps() >= clean.fixed.goodput_kbps());
    assert!(clean.adaptive.energy_per_byte_uj() <= clean.fixed.energy_per_byte_uj());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Fault-free, the adaptive variant matches the fixed baseline
    /// bitwise for *any* seed — and both runs of the same trial are
    /// deterministic.
    #[test]
    fn clean_adaptive_never_underperforms_fixed(seed in any::<u64>()) {
        let fixed = adaptive_trial(ScenarioKind::Clean, seed, 2, false);
        let adaptive = adaptive_trial(ScenarioKind::Clean, seed, 2, true);
        prop_assert_eq!(fixed, adaptive);
        let again = adaptive_trial(ScenarioKind::Clean, seed, 2, true);
        prop_assert_eq!(adaptive, again);
    }
}
