//! Dense-network fabric pins (DESIGN.md §16): the slotted MAC never
//! double-books a cell's airtime, a single-node fabric is bitwise the
//! plain supervised session, an empty interferer list is bitwise free
//! (and a parked neighbor is not), and a multi-AP round with drift and
//! handoffs is thread-invariant with byte-identical deterministic
//! telemetry views — the same pin `tests/serve.rs` holds for the
//! serving engine.
//!
//! The tests share one global lock: the telemetry registry and enable
//! flag are process-wide, so view captures must not overlap.

use milback::net::{ap_line, net_roster, Fabric, NetConfig, RoundSchedule};
use milback::{derive_seed, Fidelity, Interferer, Network, Session, SessionConfig, SessionCtx};
use milback_node::node::BackscatterNode;
use milback_rf::geometry::{deg_to_rad, Pose};
use milback_telemetry as telemetry;
use proptest::prelude::*;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// MAC safety: for any assignment and slot geometry, two slots of
    /// the same cell never overlap (the guard trails each window), and
    /// the round span covers every slot.
    #[test]
    fn slotted_rounds_never_double_book_airtime(
        assignment in proptest::collection::vec(0usize..4, 1..48),
        slot_us in 50.0f64..500.0,
        guard_us in 0.0f64..120.0,
    ) {
        let slot_s = slot_us * 1e-6;
        let guard_s = guard_us * 1e-6;
        let sched = RoundSchedule::slotted(&assignment, 4, slot_s, guard_s);
        prop_assert_eq!(sched.slots.len(), assignment.len());
        for cell in 0..4 {
            let mut windows: Vec<(f64, f64)> = sched
                .slots
                .iter()
                .filter(|s| s.cell == cell)
                .map(|s| (s.start_s, s.start_s + s.airtime_s))
                .collect();
            windows.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in windows.windows(2) {
                prop_assert!(
                    w[0].1 <= w[1].0 + 1e-12,
                    "cell {} double-booked: {:?} overlaps {:?}",
                    cell, w[0], w[1]
                );
            }
        }
        for s in &sched.slots {
            prop_assert!(s.node < assignment.len());
            prop_assert!(s.start_s + s.airtime_s <= sched.round_s + 1e-12);
        }
    }
}

/// Fabric ≡ session: a one-node, one-AP fabric round runs exactly the
/// plain supervised localization session — same seed derivation, same
/// clock, bit-identical fix. The MAC layer adds scheduling, never
/// physics.
#[test]
fn single_node_fabric_matches_plain_session_bitwise() {
    let _guard = serialized();
    let master = 0x51_EC0DE;
    let pose = Pose::facing_ap(2.1, deg_to_rad(-3.0), deg_to_rad(11.0));
    let aps = ap_line(1, 4.0);

    let cfg = NetConfig {
        localize_fraction: 1.0,
        ..NetConfig::milback(Fidelity::Fast)
    };
    let mut fabric = Fabric::new(&aps, &[pose], cfg);
    fabric.reseed(master);
    let report = fabric.run_round(1);
    assert_eq!(report.sessions, 1);
    let outcome = fabric.outcome(0);

    // The plain path: same pose, same derived slot seed, same clock.
    let mut net = Network::new(pose, Fidelity::Fast, 0);
    net.reseed(derive_seed(derive_seed(master, 0), 0));
    net.clock_s = 0.0;
    let mut ctx = SessionCtx::new();
    let summary = Session::new(SessionConfig::milback()).localize_in(&mut ctx, &mut net);

    let expect = summary.fix.map_or(u64::MAX, |f| f.range.to_bits());
    assert_eq!(
        outcome.fix_range_bits, expect,
        "fabric slot diverged from the plain session"
    );
    assert!(outcome.completed);
    assert_eq!(outcome.delivered, summary.fix.is_some());
}

/// Interference costs nothing when absent: an interferer pushed and
/// cleared leaves the capture bit-identical (no RNG draws, no residual
/// arithmetic), while an actually-parked neighbor perturbs the fix.
#[test]
fn empty_interferer_list_is_bitwise_free_and_clutter_is_not() {
    let _guard = serialized();
    let pose = Pose::facing_ap(2.0, deg_to_rad(-4.0), deg_to_rad(10.0));
    let neighbor =
        BackscatterNode::milback(Pose::facing_ap(2.4, deg_to_rad(6.0), deg_to_rad(12.0)));
    let parked = Interferer {
        pose: neighbor.pose,
        fsa: neighbor.fsa,
        gamma: neighbor.parked_gamma(),
    };

    let mut net = Network::new(pose, Fidelity::Fast, 7);
    net.reseed(0xC0FFEE);
    let clean = net.localize().expect("clean fix");

    net.interferers.push(parked);
    net.interferers.clear();
    net.reseed(0xC0FFEE);
    let replay = net.localize().expect("replay fix");
    assert_eq!(
        clean.range.to_bits(),
        replay.range.to_bits(),
        "an empty interferer list changed the capture"
    );
    assert_eq!(clean.peak_power.to_bits(), replay.peak_power.to_bits());

    net.interferers.push(parked);
    net.reseed(0xC0FFEE);
    let cluttered = net.localize().expect("cluttered fix");
    assert_ne!(
        clean.range.to_bits(),
        cluttered.range.to_bits(),
        "a parked neighbor left the capture untouched"
    );
}

/// Disabling interference in the fabric config is bitwise identical to
/// allowing zero interferers — the flag gates work, not outcomes.
#[test]
fn interference_off_matches_zero_neighbors_bitwise() {
    let _guard = serialized();
    let aps = ap_line(1, 4.0);
    let poses = net_roster(4, &aps, 0x0FF);
    let base = NetConfig::milback(Fidelity::Fast);

    let mut off = Fabric::new(
        &aps,
        &poses,
        NetConfig {
            interference: false,
            ..base
        },
    );
    off.reseed(0xD15AB1E);
    let off_report = off.run_round(1);

    let mut zero = Fabric::new(
        &aps,
        &poses,
        NetConfig {
            interference: true,
            max_interferers: 0,
            ..base
        },
    );
    zero.reseed(0xD15AB1E);
    let zero_report = zero.run_round(1);

    assert_eq!(off_report.digest, zero_report.digest);
    assert_eq!(off_report.delivered, zero_report.delivered);

    // And interference actually on diverges (neighbors share the cell).
    let mut on = Fabric::new(&aps, &poses, base);
    on.reseed(0xD15AB1E);
    let on_report = on.run_round(1);
    assert_ne!(
        on_report.digest, zero_report.digest,
        "same-cell neighbors produced no clutter"
    );
}

/// The fabric soak pin: two rounds of a drifting, multi-AP, interfering
/// deployment at 1 and at 4 worker threads produce identical digests,
/// identical per-slot outcomes, identical assignments and handoff
/// counts, and byte-identical deterministic telemetry views.
#[test]
fn rounds_are_thread_invariant_with_identical_telemetry_views() {
    let _guard = serialized();
    let aps = ap_line(2, 4.0);
    let poses = net_roster(10, &aps, 0xFA8);
    let cfg = NetConfig {
        drift_step_m: 0.15,
        ..NetConfig::milback(Fidelity::Fast)
    };

    let was = telemetry::enabled();
    telemetry::set_enabled(true);

    telemetry::reset();
    let mut serial = Fabric::new(&aps, &poses, cfg);
    serial.reseed(0x7E57);
    let s0 = serial.run_round(1);
    let s1 = serial.run_round(1);
    let serial_view = telemetry::snapshot().deterministic_view().to_json(2);

    telemetry::reset();
    let mut parallel = Fabric::new(&aps, &poses, cfg);
    parallel.reseed(0x7E57);
    let p0 = parallel.run_round(4);
    let p1 = parallel.run_round(4);
    let parallel_view = telemetry::snapshot().deterministic_view().to_json(2);

    telemetry::set_enabled(was);

    for (s, p) in [(s0, p0), (s1, p1)] {
        assert_eq!(s.digest, p.digest, "round digests diverged");
        assert_eq!(s.delivered, p.delivered);
        assert_eq!(s.fixes, p.fixes);
        assert_eq!(s.handoffs, p.handoffs);
        assert_eq!(s.overruns, p.overruns);
        assert_eq!(s.delivered_bits, p.delivered_bits);
        assert_eq!(s.round_airtime_s.to_bits(), p.round_airtime_s.to_bits());
    }
    assert_eq!(serial.assignment(), parallel.assignment());
    assert_eq!(serial.handoffs(), parallel.handoffs());
    for node in 0..poses.len() {
        assert_eq!(
            serial.outcome(node),
            parallel.outcome(node),
            "node {node} outcome diverged across thread counts"
        );
    }
    assert_eq!(
        serial_view, parallel_view,
        "deterministic telemetry views diverged"
    );
    // The soak exercised what it pins: sessions completed and both
    // cells served nodes.
    assert!(s0.completed > 0, "soak completed nothing");
    assert!(serial.assignment().contains(&0));
    assert!(serial.assignment().contains(&1));
}
