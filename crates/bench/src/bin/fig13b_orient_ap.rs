//! Regenerates Figure 13b: orientation estimation at the AP, including
//! the mirror-reflection error bump between −6° and −2°.

use milback::experiments::fig13b_ap_orientation;
use milback_bench::{emit, f, Table};

fn main() {
    let rows = fig13b_ap_orientation(25, 1302);
    let mut table = Table::new(&["orientation_deg", "mean_err_deg", "variance_deg2", "n"]);
    for r in &rows {
        table.row(&[
            f(r.orientation_deg, 0),
            f(r.mean_err_deg, 2),
            f(r.variance_deg2, 3),
            format!("{}/25", r.n),
        ]);
    }
    emit("Figure 13b: Orientation estimation at the AP", &table);
    println!("Paper reference: mean < 1.5° generally, < 3° in the −6°…−2°");
    println!("mirror-collision region.");
}
