//! Regenerates Figure 12b: CDF of the angle estimation error.

use milback::experiments::fig12b_angle_cdf;
use milback_bench::{emit, f, Table};

fn main() {
    let cdf = fig12b_angle_cdf(8, 1202);
    let mut table = Table::new(&["error_deg", "cdf"]);
    for (e, p) in &cdf.cdf {
        table.row(&[f(*e, 3), f(*p, 4)]);
    }
    emit("Figure 12b: Angle error CDF", &table);
    println!("median = {:.2}°  (paper: 1.1°)", cdf.median_deg);
    println!("p90    = {:.2}°  (paper: 2.5°)", cdf.p90_deg);
}
