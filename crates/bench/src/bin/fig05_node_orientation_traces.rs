//! Demonstrates the paper's Figure 5 — node-side orientation sensing —
//! at signal level: the node's detector output during one triangular
//! chirp for three orientations, showing the peak separation shrink as
//! the alignment frequency approaches the sweep apex.

use milback::{Fidelity, Network};
use milback_bench::{line_chart, Series};
use milback_rf::geometry::{deg_to_rad, Pose};

fn main() {
    println!("Figure 5 concept: detector output vs time, one chart per orientation");
    for (label, odeg) in [
        ("orientation −20°", -20.0),
        ("orientation 0°", 0.0),
        ("orientation +14°", 14.0),
    ] {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(-odeg));
        let mut net = Network::new(pose, Fidelity::Fast, 501);
        // Average a few chirps for a clean display trace (the detector
        // noise is σ ≈ 2.4 mV per sample; the estimator itself works from
        // single chirps).
        let (mut cap_a, mut cap_b) = net.field1_node_captures();
        for _ in 0..7 {
            let (a, b) = net.field1_node_captures();
            for (acc, v) in cap_a.iter_mut().zip(&a) {
                *acc += v;
            }
            for (acc, v) in cap_b.iter_mut().zip(&b) {
                *acc += v;
            }
        }
        for v in cap_a.iter_mut().chain(cap_b.iter_mut()) {
            *v /= 8.0;
        }
        let to_series = |cap: &[f64], name: &str| {
            Series::new(
                name,
                cap.iter()
                    .enumerate()
                    .map(|(i, v)| (i as f64, v * 1e3))
                    .collect(),
            )
        };
        println!("-- {label} --");
        println!(
            "{}",
            line_chart(
                &[
                    to_series(&cap_a, "port A (mV)"),
                    to_series(&cap_b, "port B (mV)")
                ],
                72,
                10
            )
        );
    }
    println!("x axis: MCU ADC sample (1 MHz) over the 45 µs triangular chirp.");
    println!("Each port shows two power peaks, mirrored around the sweep apex");
    println!("(sample ~22); their separation encodes the beam-alignment");
    println!("frequency — what §5.2(b) measures. At 0° both ports align at");
    println!("the same frequency, so the peak pairs coincide (OOK fallback).");
}
