//! Demonstrates the paper's Figure 2 — the FMCW concept — at signal
//! level: transmitted vs received chirp spectrogram tracks, the constant
//! frequency difference Δf between them, and the recovered time of
//! flight.

use milback_bench::{line_chart, Series};
use milback_dsp::chirp::ChirpConfig;
use milback_dsp::num::Cpx;
use milback_dsp::stft::{stft, StftConfig};
use milback_rf::geometry::SPEED_OF_LIGHT;

fn main() {
    let cfg = ChirpConfig {
        f_start: 26.5e9,
        f_stop: 29.5e9,
        duration: 4e-6,
        fs: 3.2e9,
        amplitude: 1.0,
    };
    let d = 6.0; // a reflector 6 m away
    let tau = 2.0 * d / SPEED_OF_LIGHT;

    let tx = cfg.sawtooth();
    let mut rx = tx.delayed(tau);
    rx.rotate(Cpx::cis(-2.0 * std::f64::consts::PI * tx.fc * tau));

    let sg_tx = stft(&tx.samples, tx.fs, StftConfig::new(512));
    let sg_rx = stft(&rx.samples, rx.fs, StftConfig::new(512));

    let track = |sg: &milback_dsp::stft::Spectrogram, label: &str| {
        Series::new(
            label,
            sg.frame_times
                .iter()
                .zip(sg.peak_track())
                .skip(2) // skip the delay-transient frames
                .map(|(t, f)| (*t * 1e6, (f + cfg.center() - 26.5e9) / 1e9 + 26.5))
                .collect(),
        )
    };
    println!("Figure 2 concept: transmitted (●) and received (○) chirps");
    println!(
        "{}",
        line_chart(
            &[
                track(&sg_tx, "TX chirp (GHz)"),
                track(&sg_rx, "RX echo (GHz)")
            ],
            64,
            14
        )
    );

    // The frequency difference is constant over the overlap — that is Δf.
    let df: Vec<f64> = sg_tx
        .peak_track()
        .iter()
        .zip(sg_rx.peak_track())
        .skip(3)
        .take(sg_tx.power.len().saturating_sub(6))
        .map(|(t, r)| t - r)
        .collect();
    let df_mean = milback_dsp::stats::mean(&df);
    let tof = df_mean / cfg.slope();
    println!(
        "measured Δf ≈ {:.2} MHz (constant across the sweep)",
        df_mean / 1e6
    );
    println!(
        "ToF = Δf/slope = {:.2} ns → distance {:.2} m (truth {d} m)",
        tof * 1e9,
        tof * SPEED_OF_LIGHT / 2.0
    );
}
