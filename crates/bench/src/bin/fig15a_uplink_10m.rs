//! Regenerates Figure 15a: uplink SNR versus distance at 10 Mbps.

use milback::experiments::fig15_uplink;
use milback_bench::{ber, emit, f, Table};

fn main() {
    let rows = fig15_uplink(10e6, 10, 1501);
    let mut table = Table::new(&["distance_m", "snr_db", "ber", "frame_errors"]);
    for r in &rows {
        table.row(&[
            f(r.distance_m, 0),
            f(r.snr_db, 2),
            ber(r.ber),
            format!("{}/{}", r.measured_bit_errors, r.total_bits),
        ]);
    }
    emit("Figure 15a: Uplink SNR vs distance, 10 Mbps", &table);
    let series = milback_bench::Series::new(
        "SNR (dB) @10 Mbps",
        rows.iter().map(|r| (r.distance_m, r.snr_db)).collect(),
    );
    println!("{}", milback_bench::line_chart(&[series], 60, 12));
    println!("Paper reference: very low BER out to 8 m at 10 Mbps.");
}
