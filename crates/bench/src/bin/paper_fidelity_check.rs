//! Runs the headline experiments at **Paper fidelity** — the paper's exact
//! 18 µs / 45 µs chirps at 4 GS/s — as a cross-check that nothing in the
//! Fast preset (used everywhere for speed) changes the conclusions.
//! Slower than the other binaries (~a minute).

use milback::{Fidelity, Network};
use milback_rf::geometry::{deg_to_rad, rad_to_deg, Pose};

fn main() {
    println!("Paper-fidelity cross-check (18 µs / 45 µs chirps, 4 GS/s)");
    println!("=========================================================");

    for d in [2.0, 5.0, 8.0] {
        let pose = Pose::facing_ap(d, 0.0, 0.0);
        let mut net = Network::new(pose, Fidelity::Paper, 8001);
        match net.localize() {
            Some(fix) => println!(
                "localize @{d} m: range {:.3} m (err {:.1} cm), angle {:?}",
                fix.range,
                (fix.range - d).abs() * 100.0,
                fix.angle.map(rad_to_deg)
            ),
            None => println!("localize @{d} m: NOT FOUND"),
        }
    }

    let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(-8.0));
    let mut net = Network::new(pose, Fidelity::Paper, 8002);
    let true_inc = rad_to_deg(net.true_orientation());
    if let Some(o) = net.sense_orientation_at_ap() {
        println!(
            "AP orientation: est {:.2}° (true {true_inc:.2}°)",
            rad_to_deg(o)
        );
    }
    if let Some(o) = net.sense_orientation_at_node() {
        println!(
            "node orientation: est {:.2}° (true {true_inc:.2}°)",
            rad_to_deg(o)
        );
    }

    let pose = Pose::facing_ap(3.0, 0.0, deg_to_rad(12.0));
    let mut net = Network::new(pose, Fidelity::Paper, 8003);
    if let Some(dl) = net.downlink(&[0xAD; 16], 1e6, true) {
        println!(
            "downlink @3 m: SINR {:.1} dB, {} bit errors",
            10.0 * dl.sinr.log10(),
            dl.bit_errors
        );
    }
    let mut net = Network::new(pose, Fidelity::Paper, 8004);
    if let Some(ul) = net.uplink(&[0xDA; 16], 5e6, true) {
        println!(
            "uplink  @3 m: SNR {:.1} dB, {} bit errors",
            10.0 * ul.snr.log10(),
            ul.bit_errors
        );
    }
}
