//! Regenerates Figure 12a: ranging accuracy (mean and 90th-percentile
//! error) versus node distance, 20 trials per distance.

use milback::experiments::fig12a_ranging;
use milback_bench::{emit, f, Table};

fn main() {
    let rows = fig12a_ranging(20, 1201);
    let mut table = Table::new(&["distance_m", "mean_err_cm", "p90_err_cm", "fixes"]);
    for r in &rows {
        table.row(&[
            f(r.distance_m, 0),
            f(r.mean_cm, 2),
            f(r.p90_cm, 2),
            format!("{}/20", r.n),
        ]);
    }
    emit("Figure 12a: Ranging accuracy vs distance", &table);
    let mean = milback_bench::Series::new(
        "mean error (cm)",
        rows.iter().map(|r| (r.distance_m, r.mean_cm)).collect(),
    );
    let p90 = milback_bench::Series::new(
        "p90 error (cm)",
        rows.iter().map(|r| (r.distance_m, r.p90_cm)).collect(),
    );
    println!("{}", milback_bench::line_chart(&[mean, p90], 60, 12));
    println!("Paper reference: mean < 5 cm at 5 m, < 12 cm at 8 m.");
}
