//! Ablation: dense-OAQFM constellations (paper §9.4 extension) — rate vs
//! range.

use milback::ablations::ablation_dense_oaqfm;
use milback_bench::{emit, f, Table};

fn main() {
    let rows = ablation_dense_oaqfm(9106);
    let mut table = Table::new(&["levels", "distance_m", "mbps_per_msym", "bit_errors", "crc"]);
    for r in &rows {
        let (errs, crc) = match &r.report {
            Some(rep) => (
                format!("{}/{}", rep.bit_errors, rep.total_bits),
                if rep.payload.is_some() { "ok" } else { "FAIL" }.to_string(),
            ),
            None => ("-".to_string(), "no link".to_string()),
        };
        table.row(&[
            format!("{}", r.levels),
            f(r.distance_m, 0),
            f(r.bit_rate_mbps, 0),
            errs,
            crc,
        ]);
    }
    emit("Ablation: dense OAQFM (levels vs distance)", &table);
    println!("Doubling the levels doubles bits/symbol but shrinks the decision");
    println!("margin by 1/(L-1) — denser constellations die at shorter range.");
}
