//! Ablation: localization with vs without background subtraction — why
//! §5.1's five-chirp subtraction is load-bearing.

use milback::ablations::ablation_background_subtraction;
use milback_bench::{emit, f, Table};

fn main() {
    let rows = ablation_background_subtraction(10, 9101);
    let mut table = Table::new(&["distance_m", "with_subtraction", "without_subtraction"]);
    for r in &rows {
        table.row(&[
            f(r.distance_m, 0),
            format!("{}/{}", r.with_ok, r.trials),
            format!("{}/{}", r.without_ok, r.trials),
        ]);
    }
    emit("Ablation: background subtraction (correct fixes)", &table);
    println!("Without subtraction the raw range profile locks onto walls and");
    println!("furniture; with it, the modulated node survives the differencing.");
}
