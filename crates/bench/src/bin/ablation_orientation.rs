//! Ablation: orientation-assisted carrier selection vs a blind AP — the
//! "OA" in OAQFM.

use milback::ablations::ablation_orientation_assist;
use milback_bench::{emit, f, Table};

fn main() {
    let rows = ablation_orientation_assist(9102);
    let mut table = Table::new(&["orientation_deg", "assisted_sinr_db", "fixed_tone_sinr_db"]);
    for r in &rows {
        table.row(&[
            f(r.orientation_deg, 0),
            f(r.assisted_sinr_db, 2),
            f(r.fixed_sinr_db, 2),
        ]);
    }
    emit("Ablation: orientation-assisted tone selection", &table);
    println!("A blind AP (tones fixed for one orientation) loses the node's");
    println!("~9° beam within a few degrees of rotation; orientation sensing");
    println!("keeps the link at full SINR across the FSA's scan range.");
}
