//! Deployment planning: uplink coverage map of the default indoor scene —
//! per grid cell, the best rate the link budget supports.

use milback::survey::coverage_map;
use milback::ApParams;
use milback_bench::{emit, f, Table};
use milback_node::node::BackscatterNode;
use milback_rf::channel::Scene;
use milback_rf::geometry::Pose;

fn main() {
    let scene = Scene::milback_indoor();
    let node = BackscatterNode::milback(Pose::facing_ap(2.0, 0.0, 0.0));
    let ap = ApParams::milback();
    let cells = coverage_map(&scene, &node, &ap, 10.0, 6.0, 1.0);

    let mut table = Table::new(&["x_m", "y_m", "uplink_snr_db_10mbps", "best_rate_mbps"]);
    for c in &cells {
        table.row(&[
            f(c.position.x, 1),
            f(c.position.y, 1),
            f(c.uplink_snr_db, 1),
            c.best_rate
                .map(|r| f(r / 1e6, 0))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    emit(
        "Coverage map: uplink rate per cell (10 m × 6 m room)",
        &table,
    );

    // ASCII map: rows are y, columns are x, symbol = rate class.
    println!("Rate map (4=40M, 2=20M, 1=10M, 5=5M, ·=no link), AP at left center:");
    let mut y = 3.0f64;
    while y >= -3.0 {
        let mut line = String::from("  ");
        let mut x = 1.0f64;
        while x <= 10.0 {
            let cell = cells
                .iter()
                .find(|c| (c.position.x - x).abs() < 0.01 && (c.position.y - y).abs() < 0.01);
            line.push(match cell.and_then(|c| c.best_rate) {
                Some(r) if r >= 40e6 => '4',
                Some(r) if r >= 20e6 => '2',
                Some(r) if r >= 10e6 => '1',
                Some(_) => '5',
                None => '·',
            });
            line.push(' ');
            x += 1.0;
        }
        println!("{line}");
        y -= 1.0;
    }
}
