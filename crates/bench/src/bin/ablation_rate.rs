//! Ablation: uplink bit-rate sweep up to the switch's 160 Mbps cap
//! (paper §9.5).

use milback::ablations::ablation_uplink_rate;
use milback_bench::{emit, f, Table};

fn main() {
    let rows = ablation_uplink_rate(3.0, 9105);
    let mut table = Table::new(&["bit_rate_mbps", "supported", "snr_db", "bit_errors"]);
    for r in &rows {
        table.row(&[
            f(r.bit_rate_mbps, 0),
            if r.supported {
                "yes"
            } else {
                "NO (switch cap)"
            }
            .to_string(),
            if r.supported {
                f(r.snr_db, 2)
            } else {
                "-".into()
            },
            format!("{}", r.bit_errors),
        ]);
    }
    emit("Ablation: uplink rate sweep at 3 m", &table);
    println!("Each rate doubling costs ~3 dB of decision SNR (noise bandwidth);");
    println!("the ADRF5020-class switch tops out at 80 Msym/s = 160 Mbps.");
}
