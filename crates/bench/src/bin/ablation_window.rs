//! Ablation: range-FFT window choice under clutter.

use milback::ablations::ablation_window;
use milback_bench::{emit, f, Table};

fn main() {
    let rows = ablation_window(10, 9104);
    let mut table = Table::new(&["window", "detections", "mean_err_cm"]);
    for r in &rows {
        table.row(&[
            format!("{:?}", r.window),
            format!("{}/{}", r.detections, r.trials),
            f(r.mean_err_cm, 2),
        ]);
    }
    emit("Ablation: range-FFT window (node at 5 m)", &table);
}
