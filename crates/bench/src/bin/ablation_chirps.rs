//! Ablation: how many Field-2 chirps does localization need?

use milback::ablations::ablation_chirp_count;
use milback_bench::{emit, f, Table};

fn main() {
    let rows = ablation_chirp_count(10, 9103);
    let mut table = Table::new(&["n_chirps", "detections", "mean_err_cm"]);
    for r in &rows {
        table.row(&[
            format!("{}", r.n_chirps),
            format!("{}/{}", r.detections, r.trials),
            f(r.mean_err_cm, 2),
        ]);
    }
    emit("Ablation: Field-2 chirp count (node at 5 m)", &table);
    println!("Two chirps give a single difference — fragile when the node's");
    println!("toggle straddles it; the paper's five chirps give four chances.");
}
