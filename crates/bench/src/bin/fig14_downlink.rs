//! Regenerates Figure 14: downlink SINR versus distance.

use milback::experiments::fig14_downlink;
use milback_bench::{ber, emit, f, Table};

fn main() {
    let rows = fig14_downlink(1401);
    let mut table = Table::new(&["distance_m", "sinr_db", "ber", "frame_errors"]);
    for r in &rows {
        table.row(&[
            f(r.distance_m, 0),
            f(r.snr_db, 2),
            ber(r.ber),
            format!("{}/{}", r.measured_bit_errors, r.total_bits),
        ]);
    }
    emit("Figure 14: Downlink SINR vs distance", &table);
    let series = milback_bench::Series::new(
        "SINR (dB)",
        rows.iter().map(|r| (r.distance_m, r.snr_db)).collect(),
    );
    println!("{}", milback_bench::line_chart(&[series], 60, 12));
    println!("Paper reference: SINR > 12 dB at 10 m; BER < 1e-8 throughout.");
}
