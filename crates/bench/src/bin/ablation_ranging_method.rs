//! Ablation: FMCW dechirp vs matched-filter (pulse-compression) ranging —
//! same captures, two estimators.

use milback::{Fidelity, Network};
use milback_ap::pulse_compression::PulseCompressionRanger;
use milback_bench::{emit, f, Table};
use milback_dsp::stats;
use milback_rf::geometry::{deg_to_rad, Pose};
use rand::{Rng, SeedableRng};

fn main() {
    let mut master = rand::rngs::StdRng::seed_from_u64(9107);
    let trials = 10;
    let mut table = Table::new(&["distance_m", "dechirp_mean_cm", "matched_mean_cm"]);
    for d in [2.0, 4.0, 6.0] {
        let mut errs_de = Vec::new();
        let mut errs_mf = Vec::new();
        for _ in 0..trials {
            let seed: u64 = master.gen();
            let phi = deg_to_rad(master.gen_range(-10.0..10.0));
            let pose = Pose::facing_ap(d, phi, 0.0);
            let mut net = Network::new(pose, Fidelity::Fast, seed);
            let (tx, captures) = net.field2_captures();
            // Dechirp pipeline.
            if let Some(fix) = net.localizer().process(&tx, &captures) {
                errs_de.push((fix.range - d).abs() * 100.0);
            }
            // Matched filter on antenna 0.
            let ant0: Vec<_> = captures.iter().map(|p| p[0].clone()).collect();
            let ranger = PulseCompressionRanger::new(tx);
            if let Some(r) = ranger.process(&ant0) {
                errs_mf.push((r - d).abs() * 100.0);
            }
        }
        table.row(&[
            f(d, 0),
            f(stats::mean(&errs_de), 2),
            f(stats::mean(&errs_mf), 2),
        ]);
    }
    emit("Ablation: dechirp vs matched-filter ranging", &table);
    println!("Both reach the same c/2B-limited accuracy; FMCW dechirp wins in");
    println!("hardware because the beat signal needs only a MHz-class ADC.");
}
