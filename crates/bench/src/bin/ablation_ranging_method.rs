//! Ablation: FMCW dechirp vs matched-filter (pulse-compression) ranging —
//! same captures, two estimators.

use milback::{Fidelity, Network};
use milback_ap::pulse_compression::PulseCompressionRanger;
use milback_bench::{emit, f, Table};
use milback_dsp::stats;
use milback_rf::geometry::{deg_to_rad, Pose};
use rand::{Rng, SeedableRng};

fn main() {
    // Randomness drawn serially, trials run on the parallel batch engine.
    let mut master = rand::rngs::StdRng::seed_from_u64(9107);
    let trials = 10;
    let distances = [2.0, 4.0, 6.0];
    let inputs: Vec<(f64, u64, f64)> = distances
        .iter()
        .flat_map(|&d| {
            (0..trials)
                .map(|_| {
                    let seed: u64 = master.gen();
                    let phi = deg_to_rad(master.gen_range(-10.0..10.0));
                    (d, seed, phi)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let results = milback::batch::par_map(&inputs, |&(d, seed, phi), _| {
        let pose = Pose::facing_ap(d, phi, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, seed);
        let (tx, captures) = net.field2_captures();
        // Dechirp pipeline.
        let de = net
            .localizer()
            .process(&tx, &captures)
            .map(|fix| (fix.range - d).abs() * 100.0);
        // Matched filter on antenna 0.
        let ant0: Vec<_> = captures.iter().map(|p| p[0].clone()).collect();
        let ranger = PulseCompressionRanger::new(tx);
        let mf = ranger.process(&ant0).map(|r| (r - d).abs() * 100.0);
        (de, mf)
    });
    let mut table = Table::new(&["distance_m", "dechirp_mean_cm", "matched_mean_cm"]);
    for (chunk, &d) in results.chunks(trials).zip(&distances) {
        let errs_de: Vec<f64> = chunk.iter().filter_map(|(de, _)| *de).collect();
        let errs_mf: Vec<f64> = chunk.iter().filter_map(|(_, mf)| *mf).collect();
        table.row(&[
            f(d, 0),
            f(stats::mean(&errs_de), 2),
            f(stats::mean(&errs_mf), 2),
        ]);
    }
    emit("Ablation: dechirp vs matched-filter ranging", &table);
    println!("Both reach the same c/2B-limited accuracy; FMCW dechirp wins in");
    println!("hardware because the beat signal needs only a MHz-class ADC.");
}
