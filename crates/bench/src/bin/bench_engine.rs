//! Batch-engine, FFT-plan, per-kernel and allocation benchmark with an
//! optional telemetry snapshot: times the workspace's performance layers
//! and writes the result to the next free `BENCH_N.json`.
//!
//! Measurements:
//!
//! 1. `serial` vs `parallel` — the batch engine at one worker thread (the
//!    historical execution model) against the machine's thread count, on
//!    a representative localization workload (the Fig. 12a trial —
//!    dechirp, five range FFTs, background subtraction, peak search),
//! 2. planned vs unplanned FFT — the cached-plan transform against a
//!    rebuild-tables-every-call transform of the same 8192-point range
//!    FFT (the dominant kernel of the trial),
//! 3. per-kernel legs — each DSP hot-path kernel (dechirp, range FFT,
//!    CFAR, waveform synthesis) timed allocating vs `_into`/template
//!    form, with a bitwise-equality assert per kernel,
//! 4. the five-chirp localization burst — `Localizer::process`
//!    (allocating) against `Localizer::process_with` (workspace), with
//!    heap allocations per burst counted by this binary's global
//!    allocator (DESIGN.md §12),
//! 5. channel synthesis — the cached workspace render (static-scene
//!    response + hoisted ray tables, DESIGN.md §13) against the uncached
//!    reference, as a single monostatic render and as the full
//!    five-chirp × two-antenna Field-2 burst, with a bitwise-equality
//!    assert and allocation counts; plus the warm end-to-end
//!    localization trial (render + process through every cache),
//! 6. a short full-stack link leg — OAQFM downlink + uplink transfers
//!    through the batch engine, so the telemetry snapshot covers the
//!    node/proto/link stages too,
//! 7. the serving soak (DESIGN.md §15) — a seeded Poisson schedule
//!    through the session-serving engine's work-stealing pool, serially
//!    and in parallel, asserting identical resolutions and
//!    byte-identical deterministic telemetry views, then reporting
//!    p50/p99 session latency and sessions/sec, plus a localize-only
//!    soak whose steady-state epoch's heap allocations are counted
//!    (expected: zero).
//!
//! The engine is deterministic by construction; this binary also asserts
//! that the parallel run's outputs equal the serial run's — and that
//! every fast path is bitwise identical to its allocating twin — before
//! timings are reported.
//!
//! Output naming: without `--out`, the binary scans the working directory
//! for existing `BENCH_<n>.json` files and writes to the next free index,
//! so successive runs never clobber earlier results. `--smoke` shrinks
//! every rep count to a CI-friendly size (the asserts still run; the
//! timings are then only indicative).
//!
//! Telemetry: with `MILBACK_TELEMETRY=1` (see README §Observability), the
//! registry is reset after warm-up and the end-of-run snapshot is
//! embedded under the `"telemetry"` key of the output JSON — per-stage
//! counters and histograms from `dsp` (plan cache, workspace reuse), `ap`
//! (localization), `node`/`proto` (demod, CRC), and `core` (batch, link).
//! Without the variable the key is `null` and the instrumented code paths
//! take their no-op branches.
//!
//! Usage: `cargo run --release -p milback-bench --bin bench_engine
//! [-- --smoke] [-- --out path.json] [-- --chaos-only]
//! [-- --chaos-view path.json] [-- --serve] [-- --serve-only]
//! [-- --serve-view path.json]`.
//!
//! The chaos leg runs supervised sessions under sampled fault plans
//! (DESIGN.md §14) serially and in parallel, asserting identical
//! per-trial outcomes and byte-identical telemetry deterministic views.
//! `--chaos-only` runs just that leg (the CI determinism check);
//! `--chaos-view <path>` writes the serial run's deterministic-view
//! JSON so two invocations can be compared byte-for-byte.
//!
//! The serve leg mirrors that for the serving engine: `--serve` is an
//! explicit opt-in marker (the leg runs in every full invocation),
//! `--serve-only` runs just the serving soak, and `--serve-view <path>`
//! writes its serial deterministic view for cross-process, cross-
//! thread-count comparison (ci.sh runs it at `MILBACK_THREADS=1` and
//! `=4` and `cmp`s the files).
//!
//! The net leg (DESIGN.md §16) sweeps the dense-network fabric across
//! node densities — two APs, slotted polling rounds with drift,
//! handoffs and parked-neighbor interference — serially and in
//! parallel, asserting per-density digest equality and byte-identical
//! deterministic telemetry views, then reporting sessions/sec and
//! aggregate goodput per density. `--net` is the opt-in marker (the leg
//! runs in every full invocation), `--net-only` runs just the density
//! sweep, and `--net-view <path>` writes a deterministic per-density
//! table plus the telemetry view for cross-process comparison.

use milback::adaptation::{adaptive_sweep_with_threads, AdaptiveComparison};
use milback::batch;
use milback::chaos::{chaos_sweep_with_threads, default_points};
use milback::net::{density_sweep, NetConfig};
use milback::serve::roster;
use milback::{Fidelity, Network, ServeConfig, ServeEngine, TrafficConfig, TrafficSchedule};
use milback_ap::cfar::CfarDetector;
use milback_ap::waveform::TxConfig;
use milback_ap::workspace::DspWorkspace;
use milback_dsp::num::Cpx;
use milback_dsp::num32::Cpx32;
use milback_dsp::plan::{with_plan, FftPlan};
use milback_dsp::plan32::with_plan32;
use milback_dsp::realfft::with_real_plan;
use milback_dsp::signal::Signal;
use milback_dsp::template;
use milback_rf::channel::{FreqProfile, NodeInterface, TxComponent};
use milback_rf::geometry::{deg_to_rad, Pose};
use milback_rf::{wave_fingerprint, ChannelWorkspace};
use milback_telemetry as telemetry;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A pass-through allocator that counts heap acquisitions, so the burst
/// leg can report allocations-per-burst alongside the timings. Matches
/// the accounting in `tests/zero_alloc.rs`: `alloc`, `alloc_zeroed` and
/// `realloc` each count one; `dealloc` is free.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One Fig.-12a-style trial: localize a node at 3 m with per-trial noise.
fn trial(t: batch::Trial) -> Option<u64> {
    let phi = deg_to_rad((t.index as f64 % 19.0) - 9.0);
    let pose = Pose::facing_ap(3.0, phi, 0.0);
    let mut net = Network::new(pose, Fidelity::Fast, t.seed);
    net.localize().map(|fix| fix.range.to_bits())
}

/// One link-leg trial: a downlink and an uplink transfer end to end
/// (OAQFM waveforms, envelope demod, CRC framing). Returns the total bit
/// errors, which doubles as a determinism witness.
fn link_trial(t: batch::Trial) -> u64 {
    let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
    let mut net = Network::new(pose, Fidelity::Fast, t.seed);
    let payload: Vec<u8> = (0..8u8).map(|i| i * 31 + t.index as u8).collect();
    let dl = net.downlink(&payload, 1e6, true);
    let ul = net.uplink(&payload, 5e6, true);
    dl.map(|r| r.bit_errors as u64).unwrap_or(u64::MAX / 2)
        + ul.map(|r| r.bit_errors as u64).unwrap_or(u64::MAX / 2)
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// The chaos leg (DESIGN.md §14): a small chaos sweep run serially and
/// in parallel. Asserts per-trial outcome equality and byte-identical
/// telemetry deterministic views, optionally writing the serial view to
/// `view_path` for cross-process comparison. Returns the JSON fragment
/// for the report. Resets telemetry; callers run it outside their own
/// measured region.
fn chaos_leg(smoke: bool, threads: usize, view_path: Option<&str>) -> String {
    let points = default_points();
    let trials = if smoke { 3 } else { 12 };
    let seed = 0xC4A0_5EED;

    telemetry::reset();
    let t0 = Instant::now();
    let serial = chaos_sweep_with_threads(&points, trials, seed, 1);
    let serial_s = t0.elapsed().as_secs_f64();
    let serial_view = telemetry::snapshot().deterministic_view().to_json(2);

    telemetry::reset();
    let t0 = Instant::now();
    let parallel = chaos_sweep_with_threads(&points, trials, seed, threads);
    let parallel_s = t0.elapsed().as_secs_f64();
    let parallel_view = telemetry::snapshot().deterministic_view().to_json(2);

    assert_eq!(
        serial, parallel,
        "chaos sweep lost determinism across thread counts"
    );
    assert_eq!(
        serial_view, parallel_view,
        "chaos telemetry deterministic views diverged"
    );

    if let Some(path) = view_path {
        std::fs::write(path, &serial_view).expect("failed to write chaos deterministic view");
        println!("chaos leg: wrote deterministic view to {path}");
    }

    let flat: Vec<_> = serial.iter().flatten().collect();
    let delivered = flat.iter().filter(|o| o.delivered).count();
    let fallbacks = flat.iter().filter(|o| o.fell_back).count();
    let failures = flat.iter().filter(|o| o.failure.is_some()).count();
    println!(
        "chaos leg: {} sessions ({} points x {trials} trials), {delivered} delivered, \
         {fallbacks} reduced-chirp fallbacks, {failures} typed failures",
        flat.len(),
        points.len(),
    );
    println!("  serial: {serial_s:.3} s, parallel ({threads} threads): {parallel_s:.3} s");
    println!("  deterministic: outcomes identical, views byte-identical");

    format!(
        "{{\n    \"workload\": \"supervised sessions under sampled fault plans, intensities 0.0/0.5/0.9\",\n    \"sessions\": {},\n    \"trials_per_point\": {trials},\n    \"serial_s\": {},\n    \"parallel_s\": {},\n    \"delivered\": {delivered},\n    \"reduced_chirp_fallbacks\": {fallbacks},\n    \"typed_failures\": {failures},\n    \"outcomes_identical\": true,\n    \"views_byte_identical\": true\n  }}",
        flat.len(),
        json_f(serial_s),
        json_f(parallel_s),
    )
}

/// The serving soak (DESIGN.md §15): a seeded Poisson schedule of mixed
/// sessions — offered load past the virtual server's capacity, so the
/// shedding policy engages — served by the work-stealing pool serially
/// and at `threads` workers. Asserts identical resolution sequences,
/// identical outcome digests and byte-identical deterministic telemetry
/// views, optionally writing the serial view to `view_path` for
/// cross-process comparison, then reports p50/p99 session latency and
/// sessions/sec from the parallel epoch. A second, localize-only soak
/// measures steady-state heap allocations on a repeat epoch (expected:
/// zero). Returns the JSON fragment for the report. Resets telemetry;
/// callers run it outside their own measured region.
fn serve_leg(smoke: bool, threads: usize, view_path: Option<&str>) -> String {
    let traffic = TrafficConfig {
        nodes: 4,
        sessions: if smoke { 24 } else { 160 },
        rate_hz: 60.0, // 1.8x the virtual service rate: shedding engages
        fault_intensity: 0.25,
        ..TrafficConfig::milback()
    };
    let seed = 0x5E12_F00D;
    let schedule = TrafficSchedule::generate(&traffic, seed);
    let poses = roster(traffic.nodes, seed);
    let cfg = ServeConfig::milback();

    telemetry::reset();
    let mut serial_engine = ServeEngine::new(&poses, cfg);
    let serial = serial_engine.serve_schedule(&schedule, 1);
    let serial_view = telemetry::snapshot().deterministic_view().to_json(2);

    telemetry::reset();
    let mut parallel_engine = ServeEngine::new(&poses, cfg);
    let parallel = parallel_engine.serve_schedule(&schedule, threads);
    let parallel_view = telemetry::snapshot().deterministic_view().to_json(2);

    assert_eq!(
        serial_engine.resolutions(),
        parallel_engine.resolutions(),
        "serving soak lost determinism across thread counts"
    );
    assert_eq!(
        serial.outcome_digest, parallel.outcome_digest,
        "serving soak outcome digests diverged"
    );
    assert_eq!(
        serial_view, parallel_view,
        "serving telemetry deterministic views diverged"
    );

    if let Some(path) = view_path {
        std::fs::write(path, &serial_view).expect("failed to write serve deterministic view");
        println!("serve leg: wrote deterministic view to {path}");
    }

    println!(
        "serve leg: {} sessions, {} nodes, {:.0} Hz offered (load past capacity)",
        traffic.sessions, traffic.nodes, traffic.rate_hz
    );
    println!(
        "  serial: {:.3} s, parallel ({threads} threads): {:.3} s, {:.1} sessions/s",
        serial.wall_s, parallel.wall_s, parallel.sessions_per_s
    );
    println!(
        "  latency: p50 {:.0} µs, p99 {:.0} µs, mean {:.0} µs",
        parallel.p50_latency_us, parallel.p99_latency_us, parallel.mean_latency_us
    );
    println!(
        "  outcomes: {} completed, {} failed, {} shed, {} field2-shed, {} rejected, depth peak {}",
        parallel.completed,
        parallel.failed,
        parallel.shed,
        parallel.field2_shed,
        parallel.rejected,
        parallel.max_depth
    );
    println!("  deterministic: resolutions identical, views byte-identical");

    // Steady-state allocation count: a light localize-only schedule on a
    // warmed engine. The first epoch grows every pool; a repeat of the
    // same seeded schedule through the same engine should then touch the
    // heap zero times (pinned hard by tests/zero_alloc.rs — here we
    // measure and report).
    let soak_traffic = TrafficConfig {
        nodes: 3,
        sessions: 12,
        rate_hz: 5.0,
        localize_fraction: 1.0,
        ..TrafficConfig::milback()
    };
    let soak_schedule = TrafficSchedule::generate(&soak_traffic, seed ^ 0xA110C);
    let mut soak_engine = ServeEngine::new(&roster(soak_traffic.nodes, seed ^ 0xA110C), cfg);
    let warm = soak_engine.serve_schedule(&soak_schedule, 1);
    let a0 = alloc_count();
    let steady = soak_engine.serve_schedule(&soak_schedule, 1);
    let steady_allocs = alloc_count() - a0;
    assert_eq!(
        warm.outcome_digest, steady.outcome_digest,
        "serving soak epochs diverged"
    );
    println!(
        "  steady-state epoch ({} localize sessions): {steady_allocs} heap allocations",
        soak_traffic.sessions
    );

    format!(
        "{{\n    \"workload\": \"mixed Poisson sessions through the work-stealing serving pool, offered load 1.8x virtual capacity, fault intensity 0.25\",\n    \"sessions\": {},\n    \"nodes\": {},\n    \"rate_hz\": {},\n    \"serial_s\": {},\n    \"parallel_s\": {},\n    \"speedup\": {},\n    \"sessions_per_s\": {},\n    \"p50_latency_us\": {},\n    \"p99_latency_us\": {},\n    \"mean_latency_us\": {},\n    \"completed\": {},\n    \"failed\": {},\n    \"shed\": {},\n    \"field2_shed\": {},\n    \"rejected\": {},\n    \"depth_peak\": {},\n    \"outcome_digest\": \"{:#018x}\",\n    \"steady_state_allocs\": {steady_allocs},\n    \"resolutions_identical\": true,\n    \"views_byte_identical\": true\n  }}",
        traffic.sessions,
        traffic.nodes,
        json_f(traffic.rate_hz),
        json_f(serial.wall_s),
        json_f(parallel.wall_s),
        json_f(serial.wall_s / parallel.wall_s),
        json_f(parallel.sessions_per_s),
        json_f(parallel.p50_latency_us),
        json_f(parallel.p99_latency_us),
        json_f(parallel.mean_latency_us),
        parallel.completed,
        parallel.failed,
        parallel.shed,
        parallel.field2_shed,
        parallel.rejected,
        parallel.max_depth,
        parallel.outcome_digest,
    )
}

/// The net leg (DESIGN.md §16): the dense-network fabric swept across
/// node densities — two APs, two slotted polling rounds per density,
/// per-round drift, handoffs and parked-neighbor interference — run
/// serially and at `threads` workers. Asserts that every deterministic
/// per-density field (digest, delivery counts, goodput) is identical
/// across thread counts and that the telemetry deterministic views are
/// byte-identical, optionally writing a deterministic per-density table
/// plus the view to `view_path` for cross-process comparison. Reports
/// sessions/sec and aggregate goodput per density. Resets telemetry;
/// callers run it outside their own measured region.
fn net_leg(smoke: bool, threads: usize, view_path: Option<&str>) -> String {
    let densities: &[usize] = if smoke { &[4, 8, 16] } else { &[10, 100, 1000] };
    let (n_aps, spacing_m, rounds) = (2, 4.0, 2);
    let cfg = NetConfig {
        drift_step_m: 0.15,
        ..NetConfig::milback(Fidelity::Fast)
    };
    let seed = 0xDE4E_5EED;

    telemetry::reset();
    let serial = density_sweep(densities, n_aps, spacing_m, rounds, cfg, seed, 1);
    let serial_view = telemetry::snapshot().deterministic_view().to_json(2);

    telemetry::reset();
    let parallel = density_sweep(densities, n_aps, spacing_m, rounds, cfg, seed, threads);
    let parallel_view = telemetry::snapshot().deterministic_view().to_json(2);

    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.digest, p.digest, "density {} digest diverged", s.nodes);
        assert_eq!(s.completed, p.completed);
        assert_eq!(s.delivered, p.delivered);
        assert_eq!(s.fixes, p.fixes);
        assert_eq!(s.handoffs, p.handoffs);
        assert_eq!(s.overruns, p.overruns);
        assert_eq!(s.delivered_bits, p.delivered_bits);
        assert_eq!(s.goodput_bps.to_bits(), p.goodput_bps.to_bits());
    }
    assert_eq!(
        serial_view, parallel_view,
        "net telemetry deterministic views diverged"
    );

    // The view file holds only deterministic content: the per-density
    // table and the telemetry view, so two runs at different thread
    // counts (or in different processes) must produce identical bytes.
    if let Some(path) = view_path {
        let mut table = String::from("dense-network density sweep (deterministic view)\n");
        for p in &serial {
            table.push_str(&format!(
                "nodes={} aps={} rounds={} sessions={} completed={} delivered={} fixes={} \
                 handoffs={} overruns={} bits={} goodput_bps={} digest={:#018x}\n",
                p.nodes,
                p.aps,
                p.rounds,
                p.sessions,
                p.completed,
                p.delivered,
                p.fixes,
                p.handoffs,
                p.overruns,
                p.delivered_bits,
                json_f(p.goodput_bps),
                p.digest,
            ));
        }
        table.push_str(&serial_view);
        std::fs::write(path, &table).expect("failed to write net deterministic view");
        println!("net leg: wrote deterministic view to {path}");
    }

    println!("net leg: {n_aps} APs, {rounds} rounds/density, densities {densities:?}");
    let mut points = Vec::new();
    for p in &parallel {
        println!(
            "  {} nodes: {:.1} sessions/s, {:.0} bit/s goodput, {}/{} delivered, \
             {} fixes, {} handoffs, {} overruns",
            p.nodes,
            p.sessions_per_s,
            p.goodput_bps,
            p.delivered,
            p.sessions,
            p.fixes,
            p.handoffs,
            p.overruns
        );
        points.push(format!(
            "      {{\n        \"nodes\": {},\n        \"aps\": {},\n        \"rounds\": {},\n        \"sessions\": {},\n        \"completed\": {},\n        \"delivered\": {},\n        \"fixes\": {},\n        \"handoffs\": {},\n        \"overruns\": {},\n        \"delivered_bits\": {},\n        \"goodput_bps\": {},\n        \"sessions_per_s\": {},\n        \"wall_s\": {},\n        \"digest\": \"{:#018x}\"\n      }}",
            p.nodes,
            p.aps,
            p.rounds,
            p.sessions,
            p.completed,
            p.delivered,
            p.fixes,
            p.handoffs,
            p.overruns,
            p.delivered_bits,
            json_f(p.goodput_bps),
            json_f(p.sessions_per_s),
            json_f(p.wall_s),
            p.digest,
        ));
    }
    println!("  deterministic: digests identical, views byte-identical");

    format!(
        "{{\n    \"workload\": \"dense-network fabric: slotted polling rounds across 2 APs with drift, handoffs and 3-neighbor interference\",\n    \"densities\": {densities:?},\n    \"rounds_per_density\": {rounds},\n    \"points\": [\n{}\n    ],\n    \"digests_identical\": true,\n    \"views_byte_identical\": true\n  }}",
        points.join(",\n"),
    )
}

/// A finite float as 6-decimal JSON, `null` otherwise (the fixed arm
/// of a scenario that delivers nothing has infinite energy-per-byte,
/// and bare `inf` is not valid JSON).
fn json_f_or_null(v: f64) -> String {
    if v.is_finite() {
        json_f(v)
    } else {
        "null".to_string()
    }
}

/// One adaptive-leg CSV row (also reused for the deterministic view).
fn adaptive_csv_row(scenario: &str, variant: &str, o: &milback::AdaptiveOutcome) -> String {
    let epb = o.energy_per_byte_uj();
    format!(
        "{scenario},{variant},{},{},{},{},{},{},{},{},{},{},{}\n",
        o.sessions_ok + o.sessions_failed,
        o.delivered_bytes,
        o.offered_bytes,
        o.sessions_failed,
        json_f(o.elapsed_s),
        json_f(o.energy_uj),
        json_f(o.goodput_kbps()),
        if epb.is_finite() {
            json_f(epb)
        } else {
            "inf".to_string()
        },
        o.ook_sessions,
        o.trimmed_sessions,
        o.slowed_sessions,
    )
}

const ADAPTIVE_CSV_HEADER: &str = "scenario,variant,sessions,delivered_bytes,offered_bytes,\
     sessions_failed,elapsed_s,energy_uj,goodput_kbps,energy_per_byte_uj,ook_sessions,\
     trimmed_sessions,slowed_sessions\n";

/// Adaptive-link leg: the closed-loop [`milback::LinkPolicy`] controller
/// against the fixed configuration across the §14 fault menagerie
/// (DESIGN.md §18). Runs the paired sweep serially and at `threads`
/// workers, asserts the comparisons are identical (thread invariance),
/// and in full (non-smoke) runs writes `results/adaptive_chaos.{csv,txt}`
/// and requires adaptive to win on both metrics under >= 3 scenarios.
fn adaptive_leg(smoke: bool, threads: usize, view_path: Option<&str>) -> String {
    let (n_sessions, trials) = if smoke { (6, 1) } else { (20, 2) };
    let seed = 0xADA9_7001;

    let t0 = Instant::now();
    let serial = adaptive_sweep_with_threads(n_sessions, trials, seed, 1);
    let serial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let parallel = adaptive_sweep_with_threads(n_sessions, trials, seed, threads);
    let parallel_s = t0.elapsed().as_secs_f64();
    assert_eq!(serial, parallel, "adaptive sweep lost thread invariance");

    let mut csv = String::from(ADAPTIVE_CSV_HEADER);
    let mut table = String::from(
        "adaptive-vs-fixed chaos sweep (closed-loop LinkPolicy, DESIGN.md s18)\n\
         scenario          variant   deliv/offer  goodput_kbps  energy_uj/B  ook trim slow\n",
    );
    let mut wins = 0usize;
    for c in &serial {
        let name = c.scenario.name();
        csv.push_str(&adaptive_csv_row(name, "fixed", &c.fixed));
        csv.push_str(&adaptive_csv_row(name, "adaptive", &c.adaptive));
        for (variant, o) in [("fixed", &c.fixed), ("adaptive", &c.adaptive)] {
            table.push_str(&format!(
                "{name:<17} {variant:<9} {:>5}/{:<5}  {:>12}  {:>11}  {:>3} {:>4} {:>4}\n",
                o.delivered_bytes,
                o.offered_bytes,
                json_f(o.goodput_kbps()),
                if o.energy_per_byte_uj().is_finite() {
                    json_f(o.energy_per_byte_uj())
                } else {
                    "inf".to_string()
                },
                o.ook_sessions,
                o.trimmed_sessions,
                o.slowed_sessions,
            ));
        }
        if c.adaptive_wins() {
            wins += 1;
            table.push_str(&format!("{name:<17} -> adaptive wins on both metrics\n"));
        }
    }
    table.push_str(&format!(
        "adaptive strictly better on goodput AND energy/byte under {wins}/{} scenarios\n",
        serial.len(),
    ));
    println!("adaptive leg: {n_sessions} sessions x {trials} trials per scenario x variant");
    print!("{table}");
    println!(
        "  serial {serial_s:.2} s, parallel({threads}) {parallel_s:.2} s, comparisons identical"
    );

    if !smoke {
        assert!(
            wins >= 3,
            "adaptive controller won only {wins} scenarios (need >= 3)"
        );
        std::fs::create_dir_all("results").expect("failed to create results/");
        std::fs::write("results/adaptive_chaos.csv", &csv)
            .expect("failed to write results/adaptive_chaos.csv");
        std::fs::write("results/adaptive_chaos.txt", &table)
            .expect("failed to write results/adaptive_chaos.txt");
        println!("  wrote results/adaptive_chaos.csv, results/adaptive_chaos.txt");
    }

    // Deterministic view: CSV + table only (no wall timings), so two
    // runs at any thread counts must produce identical bytes.
    if let Some(path) = view_path {
        let view = format!("{csv}\n{table}");
        std::fs::write(path, &view).expect("failed to write adaptive deterministic view");
        println!("adaptive leg: wrote deterministic view to {path}");
    }

    let scenario_json: Vec<String> = serial
        .iter()
        .map(|c: &AdaptiveComparison| {
            let fixed = &c.fixed;
            let adaptive = &c.adaptive;
            format!(
                "      {{\n        \"scenario\": \"{}\",\n        \"fixed\": {{\n          \"delivered_bytes\": {},\n          \"offered_bytes\": {},\n          \"sessions_failed\": {},\n          \"goodput_kbps\": {},\n          \"energy_per_byte_uj\": {}\n        }},\n        \"adaptive\": {{\n          \"delivered_bytes\": {},\n          \"offered_bytes\": {},\n          \"sessions_failed\": {},\n          \"goodput_kbps\": {},\n          \"energy_per_byte_uj\": {},\n          \"ook_sessions\": {},\n          \"trimmed_sessions\": {},\n          \"slowed_sessions\": {}\n        }},\n        \"adaptive_wins\": {}\n      }}",
                c.scenario.name(),
                fixed.delivered_bytes,
                fixed.offered_bytes,
                fixed.sessions_failed,
                json_f(fixed.goodput_kbps()),
                json_f_or_null(fixed.energy_per_byte_uj()),
                adaptive.delivered_bytes,
                adaptive.offered_bytes,
                adaptive.sessions_failed,
                json_f(adaptive.goodput_kbps()),
                json_f_or_null(adaptive.energy_per_byte_uj()),
                adaptive.ook_sessions,
                adaptive.trimmed_sessions,
                adaptive.slowed_sessions,
                c.adaptive_wins(),
            )
        })
        .collect();

    format!(
        "{{\n    \"workload\": \"closed-loop LinkPolicy vs fixed configuration, paired seeds, s14 fault menagerie\",\n    \"sessions_per_trial\": {n_sessions},\n    \"trials\": {trials},\n    \"scenarios\": [\n{}\n    ],\n    \"adaptive_wins\": {wins},\n    \"thread_invariant\": true\n  }}",
        scenario_json.join(",\n"),
    )
}

/// The next free `BENCH_<n>.json` name in `dir`: one past the highest
/// existing index (starting at 1).
fn next_bench_path(dir: &std::path::Path) -> String {
    let mut max = 0u64;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("BENCH_")
                .and_then(|rest| rest.strip_suffix(".json"))
            {
                if let Ok(n) = num.parse::<u64>() {
                    max = max.max(n);
                }
            }
        }
    }
    format!("BENCH_{}.json", max + 1)
}

/// One timed A/B kernel leg: runs `alloc_f` and `fast_f` `reps` times
/// each and returns `(alloc_us, fast_us, speedup)` per call.
/// Timing passes per leg side; the fastest pass is reported. Min-of-N
/// is the standard estimator for true kernel cost on a shared host —
/// external interference only ever adds time — and it is what keeps the
/// CI regression gate (`--check-against`) from flaking on scheduler
/// noise.
const TIMING_PASSES: usize = 3;

/// Fixed pure-FP calibration workload, min-of-5 µs: a recurrence swept
/// over a 64 Ki buffer, independent of every library kernel. Its wall
/// time tracks host load and frequency scaling exactly like the gated
/// kernels do, so the CI regression gate compares kernel-to-calibration
/// *ratios* instead of absolute microseconds — shared-host interference
/// inflates both sides of the ratio and cancels, leaving only genuine
/// code slowdowns to trip the limit.
fn calibration_us() -> f64 {
    const N: usize = 1 << 16;
    const SWEEPS: usize = 16;
    let mut buf: Vec<f64> = (0..N).map(|i| (i as f64 * 0.001).sin()).collect();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..SWEEPS {
            let mut acc = 0.0f64;
            for v in buf.iter_mut() {
                *v = *v * 0.999 + 0.0007;
                acc += *v * *v;
            }
            std::hint::black_box(acc);
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(&mut buf);
    }
    best
}

fn time_pair(reps: usize, mut alloc_f: impl FnMut(), mut fast_f: impl FnMut()) -> (f64, f64, f64) {
    let mut alloc_us = f64::INFINITY;
    let mut fast_us = f64::INFINITY;
    for _ in 0..TIMING_PASSES {
        let t0 = Instant::now();
        for _ in 0..reps {
            alloc_f();
        }
        alloc_us = alloc_us.min(t0.elapsed().as_secs_f64() / reps as f64 * 1e6);
        let t0 = Instant::now();
        for _ in 0..reps {
            fast_f();
        }
        fast_us = fast_us.min(t0.elapsed().as_secs_f64() / reps as f64 * 1e6);
    }
    (alloc_us, fast_us, alloc_us / fast_us)
}

fn kernel_json(name: &str, desc: &str, reps: usize, leg: (f64, f64, f64)) -> String {
    format!(
        "    \"{name}\": {{\n      \"workload\": \"{desc}\",\n      \"reps\": {reps},\n      \"allocating_us\": {},\n      \"fast_us\": {},\n      \"speedup\": {},\n      \"bitwise_identical\": true\n    }}",
        json_f(leg.0),
        json_f(leg.1),
        json_f(leg.2),
    )
}

/// Like [`kernel_json`] for legs whose fast path is *not* bitwise equal
/// to the reference (real-input untangling, the f32 sweep tier): reports
/// the measured worst-case relative error instead.
fn kernel_json_tol(
    name: &str,
    desc: &str,
    reps: usize,
    leg: (f64, f64, f64),
    err_field: &str,
    err: f64,
) -> String {
    format!(
        "    \"{name}\": {{\n      \"workload\": \"{desc}\",\n      \"reps\": {reps},\n      \"allocating_us\": {},\n      \"fast_us\": {},\n      \"speedup\": {},\n      \"bitwise_identical\": false,\n      \"{err_field}\": {}\n    }}",
        json_f(leg.0),
        json_f(leg.1),
        json_f(leg.2),
        json_f(err),
    )
}

/// Results of the FFT-plan, per-kernel and five-chirp-burst legs — the
/// transform-core region that `--kernels-only` runs on its own (and that
/// `--check-against` gates on).
struct CoreLegs {
    plan_n: usize,
    plan_reps: usize,
    unplanned_s: f64,
    planned_s: f64,
    plan_bitwise: bool,
    kernels_json: String,
    fft_fast_us: f64,
    burst_reps: usize,
    burst_alloc_s: f64,
    burst_ws_s: f64,
    burst_alloc_allocs: u64,
    burst_ws_allocs: u64,
    burst_bitwise: bool,
    /// Host-speed reference measured in the same invocation (min of a
    /// pass before the kernel legs and one after the burst leg), µs.
    calib_us: f64,
}

/// Runs the FFT-plan comparison, the per-kernel A/B legs (including the
/// batched, real-input and f32-sweep transform legs of DESIGN.md §17)
/// and the five-chirp localization burst. Every f64 fast path is
/// asserted bitwise identical to its allocating twin before timing; the
/// two approximate legs assert their documented accuracy bounds.
fn core_legs(smoke: bool, seed: u64) -> CoreLegs {
    // FFT-plan comparison: the 8192-point range FFT. "Unplanned" rebuilds
    // the twiddle/bit-reversal tables per call — exactly what the
    // pre-plan-cache implementation did on every transform.
    let n = 8192;
    let reps = if smoke { 10 } else { 200 };
    let input: Vec<Cpx> = (0..n)
        .map(|i| Cpx::cis(i as f64 * 0.37) * (1.0 + (i as f64 * 0.01).sin()))
        .collect();

    let reference = FftPlan::new(n).forward(&input);

    let t0 = Instant::now();
    let mut unplanned_out = Vec::new();
    for _ in 0..reps {
        unplanned_out = FftPlan::new(n).forward(&input);
    }
    let unplanned_s = t0.elapsed().as_secs_f64() / reps as f64;

    let t0 = Instant::now();
    let mut planned_out = Vec::new();
    for _ in 0..reps {
        planned_out = with_plan(n, |p| p.forward(&input));
    }
    let planned_s = t0.elapsed().as_secs_f64() / reps as f64;

    let bitwise = unplanned_out == planned_out && planned_out == reference;
    assert!(bitwise, "planned and unplanned FFT disagree");
    let fft_speedup = unplanned_s / planned_s;
    println!("fft plan ({n}-point, {reps} reps):");
    println!("  unplanned: {:.1} µs/fft", unplanned_s * 1e6);
    println!("  planned:   {:.1} µs/fft", planned_s * 1e6);
    println!("  speedup: {fft_speedup:.2}x (bitwise identical: {bitwise})");

    // ------------------------------------------------------------------
    // Per-kernel legs: allocating vs `_into`/template form of each DSP
    // hot-path kernel, each guarded by a bitwise-equality assert.
    // ------------------------------------------------------------------
    let kernel_reps = if smoke { 5 } else { 100 };
    // Host-speed reference, sampled next to the kernel timings so both
    // sit in the same interference window (windows on the shared host
    // last seconds; a second sample after the burst leg takes the min).
    let mut calib_us = calibration_us();
    let chirp_cfg = Fidelity::Fast.sawtooth();
    let proc = milback_ap::RangeProcessor::new(chirp_cfg, 2);
    let tx_ref = chirp_cfg.sawtooth();
    let rx = tx_ref.delayed(20e-9);
    println!("kernels ({kernel_reps} reps each):");

    // Dechirp: fresh product vector vs reuse of one buffer.
    let dechirp_ref = proc.dechirp(&rx, &tx_ref);
    let mut dechirp_buf = Vec::new();
    proc.dechirp_into(&rx, &tx_ref, &mut dechirp_buf);
    assert_eq!(dechirp_ref.samples, dechirp_buf, "dechirp_into diverged");
    let dechirp_leg = time_pair(
        kernel_reps,
        || {
            std::hint::black_box(proc.dechirp(&rx, &tx_ref));
        },
        || {
            proc.dechirp_into(&rx, &tx_ref, &mut dechirp_buf);
            std::hint::black_box(&dechirp_buf);
        },
    );
    println!(
        "  dechirp:    {:.1} µs -> {:.1} µs ({:.2}x)",
        dechirp_leg.0, dechirp_leg.1, dechirp_leg.2
    );

    // Range FFT at the pipeline's true size (fft_len = pad × chirp len,
    // rounded up): allocating forward vs forward_into a reused buffer.
    // This leg pins the bit-reversed-gather fix: forward_into must beat
    // forward, not trail it (BENCH_3 measured it at 0.92x).
    let fft_n = proc.fft_len;
    let fft_input: Vec<Cpx> = (0..fft_n)
        .map(|i| Cpx::cis(i as f64 * 0.11) * (i as f64 * 0.003).cos())
        .collect();
    let fft_ref = with_plan(fft_n, |p| p.forward(&fft_input));
    let mut fft_buf = Vec::new();
    with_plan(fft_n, |p| p.forward_into(&fft_input, &mut fft_buf));
    assert_eq!(fft_ref, fft_buf, "forward_into diverged");
    let fft_leg = time_pair(
        kernel_reps,
        || {
            std::hint::black_box(with_plan(fft_n, |p| p.forward(&fft_input)));
        },
        || {
            with_plan(fft_n, |p| p.forward_into(&fft_input, &mut fft_buf));
            std::hint::black_box(&fft_buf);
        },
    );
    println!(
        "  range fft:  {:.1} µs -> {:.1} µs ({:.2}x, {fft_n}-point)",
        fft_leg.0, fft_leg.1, fft_leg.2
    );

    // Batched range FFTs: the five Field-2 chirps as five sequential
    // forward_into calls vs one forward_many_into plan traversal.
    let batch_inputs: Vec<Vec<Cpx>> = (0..5)
        .map(|c| {
            (0..fft_n)
                .map(|i| Cpx::cis(i as f64 * 0.11 + c as f64) * (i as f64 * 0.003).cos())
                .collect()
        })
        .collect();
    let batch_refs: Vec<&[Cpx]> = batch_inputs.iter().map(|v| v.as_slice()).collect();
    let mut seq_outs: Vec<Vec<Cpx>> = vec![Vec::new(); 5];
    let mut many_outs: Vec<Vec<Cpx>> = vec![Vec::new(); 5];
    with_plan(fft_n, |p| {
        for (inp, out) in batch_refs.iter().zip(seq_outs.iter_mut()) {
            p.forward_into(inp, out);
        }
        p.forward_many_into(&batch_refs, &mut many_outs);
    });
    assert_eq!(seq_outs, many_outs, "forward_many_into diverged");
    let batch_leg = time_pair(
        kernel_reps,
        || {
            with_plan(fft_n, |p| {
                for (inp, out) in batch_refs.iter().zip(seq_outs.iter_mut()) {
                    p.forward_into(inp, out);
                }
            });
            std::hint::black_box(&seq_outs);
        },
        || {
            with_plan(fft_n, |p| p.forward_many_into(&batch_refs, &mut many_outs));
            std::hint::black_box(&many_outs);
        },
    );
    println!(
        "  batch fft:  {:.1} µs -> {:.1} µs ({:.2}x, 5 x {fft_n}-point)",
        batch_leg.0, batch_leg.1, batch_leg.2
    );

    // Real-input FFT: an N-point real capture through the full complex
    // plan vs the packed N/2 + untangling real plan. Not bitwise (the
    // untangling reassociates); assert the documented 1e-12 bound.
    let real_input: Vec<f64> = (0..fft_n)
        .map(|i| (i as f64 * 0.11).sin() * (i as f64 * 0.003).cos())
        .collect();
    let real_as_cpx: Vec<Cpx> = real_input.iter().map(|&v| Cpx::new(v, 0.0)).collect();
    let mut real_out = Vec::new();
    with_real_plan(fft_n, |p| p.forward_full_into(&real_input, &mut real_out));
    let real_ref = with_plan(fft_n, |p| p.forward(&real_as_cpx));
    let peak = real_ref.iter().map(|c| c.abs()).fold(0.0f64, f64::max);
    let real_max_rel = real_ref
        .iter()
        .zip(&real_out)
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0f64, f64::max)
        / peak;
    assert!(
        real_max_rel <= 1e-12,
        "real FFT outside its accuracy bound: {real_max_rel:.3e}"
    );
    let mut real_cpx_buf = Vec::new();
    let real_leg = time_pair(
        kernel_reps,
        || {
            with_plan(fft_n, |p| p.forward_into(&real_as_cpx, &mut real_cpx_buf));
            std::hint::black_box(&real_cpx_buf);
        },
        || {
            with_real_plan(fft_n, |p| p.forward_full_into(&real_input, &mut real_out));
            std::hint::black_box(&real_out);
        },
    );
    println!(
        "  real fft:   {:.1} µs -> {:.1} µs ({:.2}x, {fft_n}-point, max rel err {real_max_rel:.1e})",
        real_leg.0, real_leg.1, real_leg.2
    );

    // f32 sweep tier: the same spectrum through the f64 reference plan vs
    // the opt-in Fft32Plan (narrowing on the gather). Accuracy-bounded,
    // never on the bitwise reference path.
    let mut spec32: Vec<Cpx32> = Vec::new();
    with_plan32(fft_n, |p| p.forward_narrow_into(&fft_input, &mut spec32));
    let peak32 = fft_ref.iter().map(|c| c.abs()).fold(0.0f64, f64::max);
    let sweep_max_rel = fft_ref
        .iter()
        .zip(&spec32)
        .map(|(a, b)| (*a - b.to_f64()).abs())
        .fold(0.0f64, f64::max)
        / peak32;
    assert!(
        sweep_max_rel <= 1e-4,
        "f32 sweep tier outside its accuracy bound: {sweep_max_rel:.3e}"
    );
    let sweep_leg = time_pair(
        kernel_reps,
        || {
            with_plan(fft_n, |p| p.forward_into(&fft_input, &mut fft_buf));
            std::hint::black_box(&fft_buf);
        },
        || {
            with_plan32(fft_n, |p| p.forward_narrow_into(&fft_input, &mut spec32));
            std::hint::black_box(&spec32);
        },
    );
    println!(
        "  sweep f32:  {:.1} µs -> {:.1} µs ({:.2}x, {fft_n}-point, max rel err {sweep_max_rel:.1e})",
        sweep_leg.0, sweep_leg.1, sweep_leg.2
    );

    // CFAR over a detection-spectrum-sized power vector with a few
    // planted peaks.
    let cfar = CfarDetector::range_profile();
    let power: Vec<f64> = (0..fft_n)
        .map(|i| {
            let base = 1.0 + 0.2 * (i as f64 * 0.01).sin();
            if i % 997 == 300 {
                base + 50.0
            } else {
                base
            }
        })
        .collect();
    let (cfar_lo, cfar_hi) = (16, fft_n / 2);
    let cfar_ref = cfar.detect(&power, cfar_lo, cfar_hi);
    let mut cfar_hits = Vec::new();
    cfar.detect_into(&power, cfar_lo, cfar_hi, &mut cfar_hits);
    assert_eq!(cfar_ref, cfar_hits, "detect_into diverged");
    let cfar_leg = time_pair(
        kernel_reps,
        || {
            std::hint::black_box(cfar.detect(&power, cfar_lo, cfar_hi));
        },
        || {
            cfar.detect_into(&power, cfar_lo, cfar_hi, &mut cfar_hits);
            std::hint::black_box(&cfar_hits);
        },
    );
    println!(
        "  cfar:       {:.1} µs -> {:.1} µs ({:.2}x)",
        cfar_leg.0, cfar_leg.1, cfar_leg.2
    );

    // Waveform synthesis: fresh Field-2 chirp synthesis vs a template-
    // cache fetch.
    let tx_cfg = TxConfig::milback();
    let mut synth_cfg = chirp_cfg;
    synth_cfg.fs = tx_cfg.fs;
    synth_cfg.amplitude = tx_cfg.amplitude();
    let wave_ref = synth_cfg.sawtooth();
    let wave_tmpl = template::sawtooth(&synth_cfg);
    assert_eq!(
        wave_ref.samples, wave_tmpl.samples,
        "waveform template diverged"
    );
    let wave_leg = time_pair(
        kernel_reps,
        || {
            std::hint::black_box(synth_cfg.sawtooth());
        },
        || {
            std::hint::black_box(template::sawtooth(&synth_cfg));
        },
    );
    println!(
        "  waveform:   {:.1} µs -> {:.1} µs ({:.2}x)",
        wave_leg.0, wave_leg.1, wave_leg.2
    );

    // ------------------------------------------------------------------
    // The five-chirp localization burst: the allocating pipeline against
    // the workspace pipeline on identical captures, with heap
    // allocations per burst from this binary's counting allocator.
    // ------------------------------------------------------------------
    let burst_reps = if smoke { 3 } else { 40 };
    let pose = Pose::facing_ap(3.0, deg_to_rad(5.0), 0.0);
    let mut net = Network::new(pose, Fidelity::Fast, seed ^ 0xBEEF);
    let (burst_tx, burst_caps) = net.field2_captures();
    let localizer = net.localizer();
    let mut ws = DspWorkspace::new();

    // Warm both paths (plan cache, workspace buffers) before counting.
    let burst_ref = localizer.process(&burst_tx, &burst_caps);
    let warm = localizer.process_with(&mut ws, &burst_tx, &burst_caps);
    assert_eq!(burst_ref, warm, "process_with diverged from process");

    // Min-of-N passes like `time_pair`; allocations are counted across
    // all passes (they are deterministic per burst, so the division is
    // exact).
    let a0 = alloc_count();
    let mut burst_alloc_s = f64::INFINITY;
    let mut burst_alloc_out = None;
    for _ in 0..TIMING_PASSES {
        let t0 = Instant::now();
        for _ in 0..burst_reps {
            burst_alloc_out = localizer.process(&burst_tx, &burst_caps);
        }
        burst_alloc_s = burst_alloc_s.min(t0.elapsed().as_secs_f64() / burst_reps as f64);
    }
    let burst_alloc_allocs = (alloc_count() - a0) / (TIMING_PASSES * burst_reps) as u64;

    let a0 = alloc_count();
    let mut burst_ws_s = f64::INFINITY;
    let mut burst_ws_out = None;
    for _ in 0..TIMING_PASSES {
        let t0 = Instant::now();
        for _ in 0..burst_reps {
            burst_ws_out = localizer.process_with(&mut ws, &burst_tx, &burst_caps);
        }
        burst_ws_s = burst_ws_s.min(t0.elapsed().as_secs_f64() / burst_reps as f64);
    }
    let burst_ws_allocs = (alloc_count() - a0) / (TIMING_PASSES * burst_reps) as u64;

    let burst_bitwise = burst_alloc_out == burst_ws_out && burst_ws_out == burst_ref;
    assert!(burst_bitwise, "burst outputs diverged");
    let burst_speedup = burst_alloc_s / burst_ws_s;
    println!("localization burst (5 chirps x 2 antennas, {burst_reps} reps):");
    println!(
        "  allocating: {:.2} ms/burst, {burst_alloc_allocs} allocs/burst",
        burst_alloc_s * 1e3
    );
    println!(
        "  workspace:  {:.2} ms/burst, {burst_ws_allocs} allocs/burst",
        burst_ws_s * 1e3
    );
    println!("  speedup: {burst_speedup:.2}x (bitwise identical: {burst_bitwise})");
    calib_us = calib_us.min(calibration_us());

    let kernels_json = [
        kernel_json(
            "dechirp",
            "6400-sample dechirp, fresh vec vs reused buffer",
            kernel_reps,
            dechirp_leg,
        ),
        kernel_json(
            "range_fft",
            "16384-point cached-plan FFT, forward vs forward_into",
            kernel_reps,
            fft_leg,
        ),
        kernel_json(
            "range_fft_batched",
            "5 x 16384-point FFTs, sequential forward_into vs forward_many_into",
            kernel_reps,
            batch_leg,
        ),
        kernel_json_tol(
            "real_fft",
            "16384-point real capture, complex plan vs packed half-length real plan",
            kernel_reps,
            real_leg,
            "max_rel_err_vs_complex",
            real_max_rel,
        ),
        kernel_json_tol(
            "sweep_fft32",
            "16384-point FFT, f64 reference plan vs opt-in f32 sweep tier",
            kernel_reps,
            sweep_leg,
            "max_rel_err_vs_f64",
            sweep_max_rel,
        ),
        kernel_json(
            "cfar",
            "CA-CFAR sweep over half a range spectrum, detect vs detect_into",
            kernel_reps,
            cfar_leg,
        ),
        kernel_json(
            "waveform",
            "Field-2 chirp, fresh synthesis vs template-cache fetch",
            kernel_reps,
            wave_leg,
        ),
    ]
    .join(",\n");

    CoreLegs {
        plan_n: n,
        plan_reps: reps,
        unplanned_s,
        planned_s,
        plan_bitwise: bitwise,
        kernels_json,
        fft_fast_us: fft_leg.1,
        burst_reps,
        burst_alloc_s,
        burst_ws_s,
        burst_alloc_allocs,
        burst_ws_allocs,
        burst_bitwise,
        calib_us,
    }
}

/// Extracts the first JSON number following `"field":` after the first
/// occurrence of `"section"` in `text`. Good enough for the baseline
/// files this binary writes itself; not a general JSON parser.
fn json_number_after(text: &str, section: &str, field: &str) -> Option<f64> {
    let sec = text.find(&format!("\"{section}\""))?;
    let rest = &text[sec..];
    let f = rest.find(&format!("\"{field}\""))?;
    let rest = &rest[f..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The CI regression gate: compares the range-FFT and burst legs against
/// a committed `BENCH_N.json` baseline and fails (returns false) if
/// either regressed by more than `REGRESSION_TOLERANCE`.
const REGRESSION_TOLERANCE: f64 = 0.10;

fn check_regression(baseline_path: &str, legs: &CoreLegs) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("regression check: cannot read {baseline_path}: {e}");
            return false;
        }
    };
    // When the baseline recorded a calibration time, gate on the kernel-
    // to-calibration ratio: absolute wall clocks on the shared CI host
    // swing 2x with neighbor load, but the fixed calibration workload
    // (see `calibration_us`) inflates right alongside the kernels, so
    // the ratio isolates genuine code slowdowns. Baselines without the
    // field fall back to absolute times.
    let base_calib = json_number_after(&text, "timing_calibration", "calib_us");
    let (cur_div, base_div) = match base_calib {
        Some(bc) if bc > 0.0 && legs.calib_us > 0.0 => (legs.calib_us, bc),
        _ => (1.0, 1.0),
    };
    let mut ok = true;
    let mut gate = |name: &str, baseline: Option<f64>, current: f64, unit: &str| {
        let Some(base) = baseline else {
            eprintln!("regression check: {name} missing from {baseline_path}");
            ok = false;
            return;
        };
        let cur_n = current / cur_div;
        let base_n = base / base_div;
        let limit = base_n * (1.0 + REGRESSION_TOLERANCE);
        let verdict = if cur_n <= limit { "ok" } else { "REGRESSED" };
        println!(
            "regression check: {name}: {current:.3} {unit} (normalized {cur_n:.4}) vs \
             baseline {base:.3} {unit} (normalized {base_n:.4}, limit {limit:.4}) -- {verdict}"
        );
        if cur_n > limit {
            ok = false;
        }
    };
    gate(
        "range_fft fast path",
        json_number_after(&text, "range_fft", "fast_us"),
        legs.fft_fast_us,
        "us",
    );
    gate(
        "localization burst (workspace)",
        json_number_after(&text, "localization_burst", "workspace_ms_per_burst"),
        legs.burst_ws_s * 1e3,
        "ms",
    );
    ok
}

fn main() {
    let (
        out_path,
        smoke,
        chaos_only,
        chaos_view,
        serve_only,
        serve_view,
        net_only,
        net_view,
        adaptive_only,
        adaptive_view,
        kernels_only,
        check_against,
    ) = {
        let mut args = std::env::args().skip(1);
        let mut path = None;
        let mut smoke = false;
        let mut chaos_only = false;
        let mut chaos_view = None;
        let mut serve_only = false;
        let mut serve_view = None;
        let mut net_only = false;
        let mut net_view = None;
        let mut adaptive_only = false;
        let mut adaptive_view = None;
        let mut kernels_only = false;
        let mut check_against = None;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--out" => {
                    if let Some(p) = args.next() {
                        path = Some(p);
                    }
                }
                "--smoke" => smoke = true,
                "--chaos-only" => chaos_only = true,
                "--chaos-view" => {
                    if let Some(p) = args.next() {
                        chaos_view = Some(p);
                    }
                }
                // Accepted as the documented opt-in markers; the serving
                // soak and the density sweep run in every full
                // invocation regardless.
                "--serve" | "--net" | "--adaptive" => {}
                "--serve-only" => serve_only = true,
                "--serve-view" => {
                    if let Some(p) = args.next() {
                        serve_view = Some(p);
                    }
                }
                "--net-only" => net_only = true,
                "--net-view" => {
                    if let Some(p) = args.next() {
                        net_view = Some(p);
                    }
                }
                "--adaptive-only" => adaptive_only = true,
                "--adaptive-view" => {
                    if let Some(p) = args.next() {
                        adaptive_view = Some(p);
                    }
                }
                "--kernels-only" => kernels_only = true,
                "--check-against" => {
                    if let Some(p) = args.next() {
                        check_against = Some(p);
                    }
                }
                _ => {}
            }
        }
        (
            path.unwrap_or_else(|| next_bench_path(std::path::Path::new("."))),
            smoke,
            chaos_only,
            chaos_view,
            serve_only,
            serve_view,
            net_only,
            net_view,
            adaptive_only,
            adaptive_view,
            kernels_only,
            check_against,
        )
    };

    // The transform-core region on its own: the CI regression gate runs
    // this at full rep counts (stable timings) without paying for the
    // chaos/serve/net determinism legs.
    if kernels_only {
        let legs = core_legs(smoke, 0xB16B_00B5);
        if let Some(baseline) = check_against.as_deref() {
            let mut ok = check_regression(baseline, &legs);
            // Shared-host interference windows last several seconds and
            // can inflate a whole invocation (even the normalized ratio
            // moves when a neighbor evicts the kernels' working set);
            // bounded re-measures distinguish a real regression (fails
            // every time) from a noisy window (a retry lands clean).
            for attempt in 2..=3 {
                if ok {
                    break;
                }
                println!(
                    "regression check failed; re-measuring (attempt {attempt}/3) \
                     to rule out host noise"
                );
                let legs = core_legs(smoke, 0xB16B_00B5);
                ok = check_regression(baseline, &legs);
            }
            if !ok {
                eprintln!("regression check FAILED against {baseline}");
                std::process::exit(1);
            }
            println!("regression check passed against {baseline}");
        }
        return;
    }
    let bench_name = std::path::Path::new(&out_path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "BENCH".to_string());

    let trials = if smoke { 4 } else { 24 };
    let seed = 0xB16B_00B5;
    let threads = batch::thread_count();

    // Chaos, serve and net legs first: each resets telemetry for its own
    // serial/parallel view comparison, so they have to run before (not
    // inside) the measured region below.
    let chaos_json = if serve_only || net_only || adaptive_only {
        String::new()
    } else {
        chaos_leg(smoke, threads, chaos_view.as_deref())
    };
    if chaos_only {
        return;
    }
    let serve_json = if net_only || adaptive_only {
        String::new()
    } else {
        serve_leg(smoke, threads, serve_view.as_deref())
    };
    if serve_only {
        return;
    }
    let net_json = if adaptive_only {
        String::new()
    } else {
        net_leg(smoke, threads, net_view.as_deref())
    };
    if net_only {
        return;
    }
    let adaptive_json = adaptive_leg(smoke, threads, adaptive_view.as_deref());
    if adaptive_only {
        return;
    }

    // Warm each thread's plan cache so the engine comparison measures
    // scheduling, not first-use table construction.
    let _ = batch::run_trials_with_threads(threads.max(2), seed, threads, trial);

    // The telemetry snapshot should describe the measured region only.
    telemetry::reset();

    println!("batch engine: {trials} localization trials, {threads} worker thread(s)");
    let t0 = Instant::now();
    let serial = batch::run_trials_with_threads(trials, seed, 1, trial);
    let serial_s = t0.elapsed().as_secs_f64();
    println!("  serial   (1 thread): {serial_s:.3} s");

    let t0 = Instant::now();
    let parallel = batch::run_trials_with_threads(trials, seed, threads, trial);
    let parallel_s = t0.elapsed().as_secs_f64();
    println!("  parallel ({threads} threads): {parallel_s:.3} s");

    assert_eq!(serial, parallel, "batch engine lost determinism");
    let engine_speedup = serial_s / parallel_s;
    println!("  speedup: {engine_speedup:.2}x (deterministic: outputs identical)");

    // FFT-plan comparison, per-kernel legs and the five-chirp burst.
    let legs = core_legs(smoke, seed);

    // ------------------------------------------------------------------
    // Channel synthesis: the cached workspace render (DESIGN.md §13)
    // against the uncached reference on the Fig. 12a scene — a single
    // monostatic render, then the burst-shaped workload (five chirps ×
    // two RX antennas, per-chirp Γ schedules), then the warm end-to-end
    // localization trial (render + process through every cache).
    // ------------------------------------------------------------------
    let chan_reps = if smoke { 3 } else { 40 };
    let chan_pose = Pose::facing_ap(3.0, deg_to_rad(5.0), 0.0);
    let chan_net = Network::new(chan_pose, Fidelity::Fast, seed ^ 0xC0FFEE);
    let mut chan_cfg = chan_net.fidelity.sawtooth();
    chan_cfg.amplitude = chan_net.ap.tx.amplitude();
    let chan_comp = TxComponent {
        signal: chan_cfg.sawtooth(),
        profile: FreqProfile::Sawtooth(chan_cfg),
    };
    let chan_fp = wave_fingerprint(&chan_comp);
    let mod_freq = chan_net.fidelity.localization_mod_freq();
    // Representative localization Γ schedule: port A square-wave
    // modulated, port B absorptive (the cache never keys on Γ — it is
    // evaluated per sample on every render, hit or miss).
    let gamma_at = move |t: f64| -> [Cpx; 2] {
        let state = if (t * mod_freq).fract() < 0.5 {
            0.6
        } else {
            -0.6
        };
        [Cpx::new(state, 0.0), Cpx::new(0.05, 0.0)]
    };
    let scene = &chan_net.scene;
    let mut cw = ChannelWorkspace::default();
    let mut chan_out = Signal::zeros(chan_comp.signal.fs, chan_comp.signal.fc, 0);

    // Bitwise check + warm-up for both antennas.
    let gamma0 = |t: f64| gamma_at(t);
    let node_if = NodeInterface {
        pose: chan_net.node.pose,
        fsa: &chan_net.node.fsa,
        gamma: &gamma0,
    };
    for ant in 0..2 {
        let reference =
            scene.monostatic_rx_multi_uncached(&chan_comp, std::slice::from_ref(&node_if), ant);
        scene.monostatic_rx_multi_into(
            &mut cw,
            &chan_comp,
            chan_fp,
            std::slice::from_ref(&node_if),
            ant,
            &mut chan_out,
        );
        assert_eq!(
            reference.samples, chan_out.samples,
            "cached channel render diverged from uncached (antenna {ant})"
        );
    }

    // Single render (antenna 0) A/B with allocation counts.
    let a0 = alloc_count();
    let t0 = Instant::now();
    for _ in 0..chan_reps {
        std::hint::black_box(scene.monostatic_rx_multi_uncached(
            &chan_comp,
            std::slice::from_ref(&node_if),
            0,
        ));
    }
    let chan_uncached_s = t0.elapsed().as_secs_f64() / chan_reps as f64;
    let chan_uncached_allocs = (alloc_count() - a0) / chan_reps as u64;

    let a0 = alloc_count();
    let t0 = Instant::now();
    for _ in 0..chan_reps {
        scene.monostatic_rx_multi_into(
            &mut cw,
            &chan_comp,
            chan_fp,
            std::slice::from_ref(&node_if),
            0,
            &mut chan_out,
        );
        std::hint::black_box(&chan_out);
    }
    let chan_cached_s = t0.elapsed().as_secs_f64() / chan_reps as f64;
    let chan_cached_allocs = (alloc_count() - a0) / chan_reps as u64;
    let chan_speedup = chan_uncached_s / chan_cached_s;
    println!("channel render (1 chirp, milback_indoor scene, {chan_reps} reps):");
    println!(
        "  uncached: {:.2} ms, {chan_uncached_allocs} allocs/render",
        chan_uncached_s * 1e3
    );
    println!(
        "  cached:   {:.2} ms, {chan_cached_allocs} allocs/render",
        chan_cached_s * 1e3
    );
    println!("  speedup: {chan_speedup:.2}x (bitwise identical: true)");

    // Burst-shaped workload: five chirps × two antennas with per-chirp
    // Γ offsets, exactly the renders behind one Field-2 capture.
    let chirp_t = chan_cfg.duration;
    let burst_render_cached = |cw: &mut ChannelWorkspace, out: &mut Signal| {
        for chirp in 0..5 {
            let t_off = chirp as f64 * chirp_t;
            let gamma = |t: f64| gamma_at(t_off + t);
            let node_if = NodeInterface {
                pose: chan_net.node.pose,
                fsa: &chan_net.node.fsa,
                gamma: &gamma,
            };
            for ant in 0..2 {
                scene.monostatic_rx_multi_into(
                    cw,
                    &chan_comp,
                    chan_fp,
                    std::slice::from_ref(&node_if),
                    ant,
                    out,
                );
                std::hint::black_box(&out);
            }
        }
    };
    let burst_render_uncached = || {
        for chirp in 0..5 {
            let t_off = chirp as f64 * chirp_t;
            let gamma = |t: f64| gamma_at(t_off + t);
            let node_if = NodeInterface {
                pose: chan_net.node.pose,
                fsa: &chan_net.node.fsa,
                gamma: &gamma,
            };
            for ant in 0..2 {
                std::hint::black_box(scene.monostatic_rx_multi_uncached(
                    &chan_comp,
                    std::slice::from_ref(&node_if),
                    ant,
                ));
            }
        }
    };

    let t0 = Instant::now();
    for _ in 0..chan_reps {
        burst_render_uncached();
    }
    let chan_burst_uncached_s = t0.elapsed().as_secs_f64() / chan_reps as f64;

    let a0 = alloc_count();
    let t0 = Instant::now();
    for _ in 0..chan_reps {
        burst_render_cached(&mut cw, &mut chan_out);
    }
    let chan_burst_cached_s = t0.elapsed().as_secs_f64() / chan_reps as f64;
    let chan_burst_allocs = (alloc_count() - a0) / chan_reps as u64;
    let chan_burst_speedup = chan_burst_uncached_s / chan_burst_cached_s;
    println!("channel burst (5 chirps x 2 antennas, {chan_reps} reps):");
    println!("  uncached: {:.2} ms/burst", chan_burst_uncached_s * 1e3);
    println!(
        "  cached:   {:.2} ms/burst, {chan_burst_allocs} allocs/burst",
        chan_burst_cached_s * 1e3
    );
    println!("  speedup: {chan_burst_speedup:.2}x");

    // Warm end-to-end trial: render + dechirp + FFT + subtraction + peak
    // search through every cache (the quantity a batch worker pays per
    // Fig. 12a trial once its thread-locals are warm).
    let e2e_reps = if smoke { 3 } else { 40 };
    let mut e2e_net = Network::new(chan_pose, Fidelity::Fast, seed ^ 0xE2E);
    assert!(
        e2e_net.localize().is_some(),
        "end-to-end trial found no node"
    );
    let a0 = alloc_count();
    let t0 = Instant::now();
    for _ in 0..e2e_reps {
        std::hint::black_box(e2e_net.localize());
    }
    let e2e_s = t0.elapsed().as_secs_f64() / e2e_reps as f64;
    let e2e_allocs = (alloc_count() - a0) / e2e_reps as u64;
    println!("end-to-end trial (render + process, warm, {e2e_reps} reps):");
    println!("  {:.2} ms/trial, {e2e_allocs} allocs/trial", e2e_s * 1e3);

    // Link leg: a handful of end-to-end transfers so the snapshot carries
    // node/proto/link counters alongside the localization stages.
    let link_trials = if smoke { 1 } else { 4 };
    let t0 = Instant::now();
    let link_errors = batch::run_trials(link_trials, seed ^ 0x1111, link_trial);
    let link_s = t0.elapsed().as_secs_f64();
    let total_errors: u64 = link_errors.iter().sum();
    println!("link leg: {link_trials} downlink+uplink transfers in {link_s:.3} s ({total_errors} bit errors)");

    let telemetry_json = if telemetry::enabled() {
        let snap = telemetry::snapshot();
        // Indent the snapshot to sit two levels deep in the output object.
        snap.to_json(2).replace('\n', "\n  ")
    } else {
        "null".to_string()
    };

    let calib_us_str = json_f(legs.calib_us);
    let json = format!(
        "{{\n  \"bench\": \"{bench_name}\",\n  \"description\": \"Batch-engine, FFT-plan, per-kernel and five-chirp-burst timings on a Fig. 12a localization workload, plus a short end-to-end link leg and the chaos and serving-soak determinism legs\",\n  \"host_threads\": {threads},\n  \"smoke\": {smoke},\n  \"timing_calibration\": {{\n    \"workload\": \"fixed pure-FP recurrence; host-speed reference for the CI ratio gate\",\n    \"calib_us\": {calib_us_str}\n  }},\n  \"engine\": {{\n    \"workload\": \"localization trial, node at 3 m, Fidelity::Fast\",\n    \"trials\": {trials},\n    \"serial_s\": {},\n    \"parallel_s\": {},\n    \"speedup\": {},\n    \"deterministic\": true\n  }},\n  \"fft_plan\": {{\n    \"size\": {},\n    \"reps\": {},\n    \"unplanned_us_per_fft\": {},\n    \"planned_us_per_fft\": {},\n    \"speedup\": {},\n    \"bitwise_identical\": {}\n  }},\n  \"kernels\": {{\n{}\n  }},\n  \"localization_burst\": {{\n    \"workload\": \"five-chirp Field-2 burst, 2 RX antennas, Fidelity::Fast\",\n    \"reps\": {},\n    \"allocating_ms_per_burst\": {},\n    \"workspace_ms_per_burst\": {},\n    \"speedup\": {},\n    \"allocating_allocs_per_burst\": {},\n    \"workspace_allocs_per_burst\": {},\n    \"bitwise_identical\": {},\n    \"deterministic\": true\n  }},\n  \"channel_render\": {{\n    \"workload\": \"single monostatic render, milback_indoor scene, node at 3 m\",\n    \"reps\": {chan_reps},\n    \"uncached_ms_per_render\": {},\n    \"cached_ms_per_render\": {},\n    \"speedup\": {},\n    \"uncached_allocs_per_render\": {chan_uncached_allocs},\n    \"cached_allocs_per_render\": {chan_cached_allocs},\n    \"bitwise_identical\": true\n  }},\n  \"channel_burst\": {{\n    \"workload\": \"five-chirp x two-antenna Field-2 channel render, per-chirp gamma schedules\",\n    \"reps\": {chan_reps},\n    \"uncached_ms_per_burst\": {},\n    \"cached_ms_per_burst\": {},\n    \"speedup\": {},\n    \"cached_allocs_per_burst\": {chan_burst_allocs}\n  }},\n  \"end_to_end_trial\": {{\n    \"workload\": \"warm Fig. 12a localization trial: channel render + DSP pipeline through every cache\",\n    \"reps\": {e2e_reps},\n    \"ms_per_trial\": {},\n    \"allocs_per_trial\": {e2e_allocs}\n  }},\n  \"link_leg\": {{\n    \"trials\": {link_trials},\n    \"elapsed_s\": {},\n    \"total_bit_errors\": {total_errors}\n  }},\n  \"adaptive\": {adaptive_json},\n  \"net\": {net_json},\n  \"serve\": {serve_json},\n  \"chaos\": {chaos_json},\n  \"telemetry\": {telemetry_json}\n}}\n",
        json_f(serial_s),
        json_f(parallel_s),
        json_f(engine_speedup),
        legs.plan_n,
        legs.plan_reps,
        json_f(legs.unplanned_s * 1e6),
        json_f(legs.planned_s * 1e6),
        json_f(legs.unplanned_s / legs.planned_s),
        legs.plan_bitwise,
        legs.kernels_json,
        legs.burst_reps,
        json_f(legs.burst_alloc_s * 1e3),
        json_f(legs.burst_ws_s * 1e3),
        json_f(legs.burst_alloc_s / legs.burst_ws_s),
        legs.burst_alloc_allocs,
        legs.burst_ws_allocs,
        legs.burst_bitwise,
        json_f(chan_uncached_s * 1e3),
        json_f(chan_cached_s * 1e3),
        json_f(chan_speedup),
        json_f(chan_burst_uncached_s * 1e3),
        json_f(chan_burst_cached_s * 1e3),
        json_f(chan_burst_speedup),
        json_f(e2e_s * 1e3),
        json_f(link_s),
    );
    std::fs::write(&out_path, &json).expect("failed to write benchmark JSON");
    println!("wrote {out_path}");

    if let Some(baseline) = check_against.as_deref() {
        if !check_regression(baseline, &legs) {
            eprintln!("regression check FAILED against {baseline}");
            std::process::exit(1);
        }
        println!("regression check passed against {baseline}");
    }
}
