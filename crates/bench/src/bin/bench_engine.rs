//! Batch-engine and FFT-plan benchmark with an optional telemetry
//! snapshot: times the workspace's performance layers and writes the
//! result to the next free `BENCH_N.json`.
//!
//! Measurements:
//!
//! 1. `serial` vs `parallel` — the batch engine at one worker thread (the
//!    historical execution model) against the machine's thread count, on
//!    a representative localization workload (the Fig. 12a trial —
//!    dechirp, five range FFTs, background subtraction, peak search),
//! 2. planned vs unplanned FFT — the cached-plan transform against a
//!    rebuild-tables-every-call transform of the same 8192-point range
//!    FFT (the dominant kernel of the trial),
//! 3. a short full-stack link leg — OAQFM downlink + uplink transfers
//!    through the batch engine, so the telemetry snapshot covers the
//!    node/proto/link stages too.
//!
//! The engine is deterministic by construction; this binary also asserts
//! that the parallel run's outputs equal the serial run's before timing
//! is reported.
//!
//! Output naming: without `--out`, the binary scans the working directory
//! for existing `BENCH_<n>.json` files and writes to the next free index,
//! so successive runs never clobber earlier results.
//!
//! Telemetry: with `MILBACK_TELEMETRY=1` (see README §Observability), the
//! registry is reset after warm-up and the end-of-run snapshot is
//! embedded under the `"telemetry"` key of the output JSON — per-stage
//! counters and histograms from `dsp` (plan cache), `ap` (localization),
//! `node`/`proto` (demod, CRC), and `core` (batch, link). Without the
//! variable the key is `null` and the instrumented code paths take their
//! no-op branches.
//!
//! Usage: `cargo run --release -p milback-bench --bin bench_engine
//! [-- --out path.json]`.

use milback::batch;
use milback::{Fidelity, Network};
use milback_dsp::num::Cpx;
use milback_dsp::plan::{with_plan, FftPlan};
use milback_rf::geometry::{deg_to_rad, Pose};
use milback_telemetry as telemetry;
use std::time::Instant;

/// One Fig.-12a-style trial: localize a node at 3 m with per-trial noise.
fn trial(t: batch::Trial) -> Option<u64> {
    let phi = deg_to_rad((t.index as f64 % 19.0) - 9.0);
    let pose = Pose::facing_ap(3.0, phi, 0.0);
    let mut net = Network::new(pose, Fidelity::Fast, t.seed);
    net.localize().map(|fix| fix.range.to_bits())
}

/// One link-leg trial: a downlink and an uplink transfer end to end
/// (OAQFM waveforms, envelope demod, CRC framing). Returns the total bit
/// errors, which doubles as a determinism witness.
fn link_trial(t: batch::Trial) -> u64 {
    let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
    let mut net = Network::new(pose, Fidelity::Fast, t.seed);
    let payload: Vec<u8> = (0..8u8).map(|i| i * 31 + t.index as u8).collect();
    let dl = net.downlink(&payload, 1e6, true);
    let ul = net.uplink(&payload, 5e6, true);
    dl.map(|r| r.bit_errors as u64).unwrap_or(u64::MAX / 2)
        + ul.map(|r| r.bit_errors as u64).unwrap_or(u64::MAX / 2)
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// The next free `BENCH_<n>.json` name in `dir`: one past the highest
/// existing index (starting at 1).
fn next_bench_path(dir: &std::path::Path) -> String {
    let mut max = 0u64;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("BENCH_")
                .and_then(|rest| rest.strip_suffix(".json"))
            {
                if let Ok(n) = num.parse::<u64>() {
                    max = max.max(n);
                }
            }
        }
    }
    format!("BENCH_{}.json", max + 1)
}

fn main() {
    let out_path = {
        let mut args = std::env::args().skip(1);
        let mut path = None;
        while let Some(a) = args.next() {
            if a == "--out" {
                if let Some(p) = args.next() {
                    path = Some(p);
                }
            }
        }
        path.unwrap_or_else(|| next_bench_path(std::path::Path::new(".")))
    };
    let bench_name = std::path::Path::new(&out_path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "BENCH".to_string());

    let trials = 24;
    let seed = 0xB16B_00B5;
    let threads = batch::thread_count();

    // Warm each thread's plan cache so the engine comparison measures
    // scheduling, not first-use table construction.
    let _ = batch::run_trials_with_threads(threads.max(2), seed, threads, trial);

    // The telemetry snapshot should describe the measured region only.
    telemetry::reset();

    println!("batch engine: {trials} localization trials, {threads} worker thread(s)");
    let t0 = Instant::now();
    let serial = batch::run_trials_with_threads(trials, seed, 1, trial);
    let serial_s = t0.elapsed().as_secs_f64();
    println!("  serial   (1 thread): {serial_s:.3} s");

    let t0 = Instant::now();
    let parallel = batch::run_trials_with_threads(trials, seed, threads, trial);
    let parallel_s = t0.elapsed().as_secs_f64();
    println!("  parallel ({threads} threads): {parallel_s:.3} s");

    assert_eq!(serial, parallel, "batch engine lost determinism");
    let engine_speedup = serial_s / parallel_s;
    println!("  speedup: {engine_speedup:.2}x (deterministic: outputs identical)");

    // FFT-plan comparison: the 8192-point range FFT. "Unplanned" rebuilds
    // the twiddle/bit-reversal tables per call — exactly what the
    // pre-plan-cache implementation did on every transform.
    let n = 8192;
    let reps = 200;
    let input: Vec<Cpx> = (0..n)
        .map(|i| Cpx::cis(i as f64 * 0.37) * (1.0 + (i as f64 * 0.01).sin()))
        .collect();

    let reference = FftPlan::new(n).forward(&input);

    let t0 = Instant::now();
    let mut unplanned_out = Vec::new();
    for _ in 0..reps {
        unplanned_out = FftPlan::new(n).forward(&input);
    }
    let unplanned_s = t0.elapsed().as_secs_f64() / reps as f64;

    let t0 = Instant::now();
    let mut planned_out = Vec::new();
    for _ in 0..reps {
        planned_out = with_plan(n, |p| p.forward(&input));
    }
    let planned_s = t0.elapsed().as_secs_f64() / reps as f64;

    let bitwise = unplanned_out == planned_out && planned_out == reference;
    assert!(bitwise, "planned and unplanned FFT disagree");
    let fft_speedup = unplanned_s / planned_s;
    println!("fft plan ({n}-point, {reps} reps):");
    println!("  unplanned: {:.1} µs/fft", unplanned_s * 1e6);
    println!("  planned:   {:.1} µs/fft", planned_s * 1e6);
    println!("  speedup: {fft_speedup:.2}x (bitwise identical: {bitwise})");

    // Link leg: a handful of end-to-end transfers so the snapshot carries
    // node/proto/link counters alongside the localization stages.
    let link_trials = 4;
    let t0 = Instant::now();
    let link_errors = batch::run_trials(link_trials, seed ^ 0x1111, link_trial);
    let link_s = t0.elapsed().as_secs_f64();
    let total_errors: u64 = link_errors.iter().sum();
    println!("link leg: {link_trials} downlink+uplink transfers in {link_s:.3} s ({total_errors} bit errors)");

    let telemetry_json = if telemetry::enabled() {
        let snap = telemetry::snapshot();
        // Indent the snapshot to sit two levels deep in the output object.
        snap.to_json(2).replace('\n', "\n  ")
    } else {
        "null".to_string()
    };

    let json = format!(
        "{{\n  \"bench\": \"{bench_name}\",\n  \"description\": \"Batch-engine (serial vs parallel) and FFT-plan (unplanned vs cached) timings on a Fig. 12a localization workload, plus a short end-to-end link leg\",\n  \"host_threads\": {threads},\n  \"engine\": {{\n    \"workload\": \"localization trial, node at 3 m, Fidelity::Fast\",\n    \"trials\": {trials},\n    \"serial_s\": {},\n    \"parallel_s\": {},\n    \"speedup\": {},\n    \"deterministic\": true\n  }},\n  \"fft_plan\": {{\n    \"size\": {n},\n    \"reps\": {reps},\n    \"unplanned_us_per_fft\": {},\n    \"planned_us_per_fft\": {},\n    \"speedup\": {},\n    \"bitwise_identical\": {bitwise}\n  }},\n  \"link_leg\": {{\n    \"trials\": {link_trials},\n    \"elapsed_s\": {},\n    \"total_bit_errors\": {total_errors}\n  }},\n  \"telemetry\": {telemetry_json}\n}}\n",
        json_f(serial_s),
        json_f(parallel_s),
        json_f(engine_speedup),
        json_f(unplanned_s * 1e6),
        json_f(planned_s * 1e6),
        json_f(fft_speedup),
        json_f(link_s),
    );
    std::fs::write(&out_path, &json).expect("failed to write benchmark JSON");
    println!("wrote {out_path}");
}
