//! Batch-engine and FFT-plan benchmark: times the workspace's two new
//! performance layers and writes the result to `BENCH_1.json`.
//!
//! Three measurements on a representative localization workload (the
//! Fig. 12a trial — dechirp, five range FFTs, background subtraction,
//! peak search):
//!
//! 1. `serial` — one worker thread (the historical execution model),
//! 2. `parallel` — the batch engine at the machine's thread count,
//! 3. planned vs unplanned FFT — the cached-plan transform against a
//!    rebuild-tables-every-call transform of the same 8192-point range
//!    FFT (the dominant kernel of the trial).
//!
//! The engine is deterministic by construction; this binary also asserts
//! that the parallel run's outputs equal the serial run's before timing
//! is reported. Usage: `cargo run --release -p milback-bench --bin
//! bench_engine [-- --out path.json]`.

use milback::batch;
use milback::{Fidelity, Network};
use milback_dsp::num::Cpx;
use milback_dsp::plan::{with_plan, FftPlan};
use milback_rf::geometry::{deg_to_rad, Pose};
use std::time::Instant;

/// One Fig.-12a-style trial: localize a node at 3 m with per-trial noise.
fn trial(t: batch::Trial) -> Option<u64> {
    let phi = deg_to_rad((t.index as f64 % 19.0) - 9.0);
    let pose = Pose::facing_ap(3.0, phi, 0.0);
    let mut net = Network::new(pose, Fidelity::Fast, t.seed);
    net.localize().map(|fix| fix.range.to_bits())
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let out_path = {
        let mut args = std::env::args().skip(1);
        let mut path = "BENCH_1.json".to_string();
        while let Some(a) = args.next() {
            if a == "--out" {
                if let Some(p) = args.next() {
                    path = p;
                }
            }
        }
        path
    };

    let trials = 24;
    let seed = 0xB16B_00B5;
    let threads = batch::thread_count();

    // Warm each thread's plan cache so the engine comparison measures
    // scheduling, not first-use table construction.
    let _ = batch::run_trials_with_threads(threads.max(2), seed, threads, trial);

    println!("batch engine: {trials} localization trials, {threads} worker thread(s)");
    let t0 = Instant::now();
    let serial = batch::run_trials_with_threads(trials, seed, 1, trial);
    let serial_s = t0.elapsed().as_secs_f64();
    println!("  serial   (1 thread): {serial_s:.3} s");

    let t0 = Instant::now();
    let parallel = batch::run_trials_with_threads(trials, seed, threads, trial);
    let parallel_s = t0.elapsed().as_secs_f64();
    println!("  parallel ({threads} threads): {parallel_s:.3} s");

    assert_eq!(serial, parallel, "batch engine lost determinism");
    let engine_speedup = serial_s / parallel_s;
    println!("  speedup: {engine_speedup:.2}x (deterministic: outputs identical)");

    // FFT-plan comparison: the 8192-point range FFT. "Unplanned" rebuilds
    // the twiddle/bit-reversal tables per call — exactly what the
    // pre-plan-cache implementation did on every transform.
    let n = 8192;
    let reps = 200;
    let input: Vec<Cpx> = (0..n)
        .map(|i| Cpx::cis(i as f64 * 0.37) * (1.0 + (i as f64 * 0.01).sin()))
        .collect();

    let reference = FftPlan::new(n).forward(&input);

    let t0 = Instant::now();
    let mut unplanned_out = Vec::new();
    for _ in 0..reps {
        unplanned_out = FftPlan::new(n).forward(&input);
    }
    let unplanned_s = t0.elapsed().as_secs_f64() / reps as f64;

    let t0 = Instant::now();
    let mut planned_out = Vec::new();
    for _ in 0..reps {
        planned_out = with_plan(n, |p| p.forward(&input));
    }
    let planned_s = t0.elapsed().as_secs_f64() / reps as f64;

    let bitwise = unplanned_out == planned_out && planned_out == reference;
    assert!(bitwise, "planned and unplanned FFT disagree");
    let fft_speedup = unplanned_s / planned_s;
    println!("fft plan ({n}-point, {reps} reps):");
    println!("  unplanned: {:.1} µs/fft", unplanned_s * 1e6);
    println!("  planned:   {:.1} µs/fft", planned_s * 1e6);
    println!("  speedup: {fft_speedup:.2}x (bitwise identical: {bitwise})");

    let json = format!(
        "{{\n  \"bench\": \"BENCH_1\",\n  \"description\": \"Batch-engine (serial vs parallel) and FFT-plan (unplanned vs cached) timings on a Fig. 12a localization workload\",\n  \"host_threads\": {threads},\n  \"engine\": {{\n    \"workload\": \"localization trial, node at 3 m, Fidelity::Fast\",\n    \"trials\": {trials},\n    \"serial_s\": {},\n    \"parallel_s\": {},\n    \"speedup\": {},\n    \"deterministic\": true\n  }},\n  \"fft_plan\": {{\n    \"size\": {n},\n    \"reps\": {reps},\n    \"unplanned_us_per_fft\": {},\n    \"planned_us_per_fft\": {},\n    \"speedup\": {},\n    \"bitwise_identical\": {bitwise}\n  }}\n}}\n",
        json_f(serial_s),
        json_f(parallel_s),
        json_f(engine_speedup),
        json_f(unplanned_s * 1e6),
        json_f(planned_s * 1e6),
        json_f(fft_speedup),
    );
    std::fs::write(&out_path, &json).expect("failed to write benchmark JSON");
    println!("wrote {out_path}");
}
