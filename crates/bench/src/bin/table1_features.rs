//! Regenerates Table 1: capability comparison against the state-of-the-art
//! mmWave backscatter systems, plus the §9.6 energy-efficiency column.

use milback::experiments::table1;
use milback_bench::{emit, Table};

fn main() {
    let yn = |b: bool| if b { "Yes" } else { "No" }.to_string();
    let rows = table1();
    let mut table = Table::new(&[
        "system",
        "uplink",
        "localization",
        "downlink",
        "orientation",
        "uplink_nj_per_bit",
    ]);
    for r in &rows {
        table.row(&[
            r.name.to_string(),
            yn(r.uplink),
            yn(r.localization),
            yn(r.downlink),
            yn(r.orientation),
            r.uplink_nj_per_bit
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    emit(
        "Table 1: Comparison with state-of-the-art mmWave backscatter",
        &table,
    );
}
