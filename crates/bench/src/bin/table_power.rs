//! Regenerates the §9.6 power-consumption results: 18 mW during
//! localization/downlink, 32 mW during uplink, 0.5 / 0.8 nJ per bit.

use milback::experiments::power_table;
use milback_bench::{emit, f, Table};

fn main() {
    let rows = power_table();
    let mut table = Table::new(&["mode", "power_mw", "rate_mbps", "nj_per_bit"]);
    for r in &rows {
        table.row(&[
            r.mode.to_string(),
            f(r.power_mw, 1),
            r.rate_mbps.map(|v| f(v, 0)).unwrap_or_else(|| "-".into()),
            r.nj_per_bit.map(|v| f(v, 2)).unwrap_or_else(|| "-".into()),
        ]);
    }
    emit("Section 9.6: Node power consumption", &table);
    println!("Paper reference: 18 mW localization/downlink, 32 mW uplink,");
    println!("0.5 nJ/bit downlink @36 Mbps, 0.8 nJ/bit uplink @40 Mbps");
    println!("(vs mmTag's 2.4 nJ/bit, uplink only).");
}
