//! Regenerates Figure 11: envelope-detector outputs at the node's two FSA
//! ports while the AP sends OAQFM symbols 00, 01, 10, 11.

use milback::experiments::fig11_oaqfm_micro;
use milback_bench::{emit, f, Table};

fn main() {
    let t = fig11_oaqfm_micro(42);
    println!(
        "Tones selected from orientation: f_A = {:.3} GHz, f_B = {:.3} GHz",
        t.tones_ghz.0, t.tones_ghz.1
    );
    println!("Symbols: {:?}", t.symbols);
    let mut table = Table::new(&["time_us", "port_a_mv", "port_b_mv"]);
    for i in 0..t.time_us.len() {
        table.row(&[
            f(t.time_us[i], 3),
            f(t.port_a_mv[i], 3),
            f(t.port_b_mv[i], 3),
        ]);
    }
    emit("Figure 11: OAQFM microbenchmark traces", &table);

    // Per-symbol mean levels — the quantity the plot shows at a glance.
    let mut summary = Table::new(&["symbol", "port_a_mv", "port_b_mv"]);
    for (k, (start, label)) in t.symbols.iter().enumerate() {
        let lo = start + 0.3;
        let hi = start + 0.95;
        let mean = |vs: &[f64]| -> f64 {
            let sel: Vec<f64> = t
                .time_us
                .iter()
                .zip(vs)
                .filter(|(tt, _)| **tt >= lo && **tt <= hi)
                .map(|(_, v)| *v)
                .collect();
            milback_dsp::stats::mean(&sel)
        };
        let _ = k;
        summary.row(&[
            label.to_string(),
            f(mean(&t.port_a_mv), 2),
            f(mean(&t.port_b_mv), 2),
        ]);
    }
    println!("Per-symbol steady-state levels:");
    println!("{}", summary.render());
}
