//! Regenerates Figure 13a: orientation estimation at the node (triangular
//! chirp peak separation), 25 trials per orientation at 2 m.

use milback::experiments::fig13a_node_orientation;
use milback_bench::{emit, f, Table};

fn main() {
    let rows = fig13a_node_orientation(25, 1301);
    let mut table = Table::new(&["orientation_deg", "mean_err_deg", "variance_deg2", "n"]);
    for r in &rows {
        table.row(&[
            f(r.orientation_deg, 0),
            f(r.mean_err_deg, 2),
            f(r.variance_deg2, 3),
            format!("{}/25", r.n),
        ]);
    }
    emit("Figure 13a: Orientation estimation at the node", &table);
    println!("Paper reference: mean error < 3° at every orientation.");
}
