//! Regenerates Figure 10: dual-port FSA beam pattern for seven sample
//! frequencies, plus the §9.1 gain/coverage claims.

use milback::experiments::{fig10_fsa_pattern, fsa_summary};
use milback_bench::{emit, f, Table};

fn main() {
    let rows = fig10_fsa_pattern();
    let mut table = Table::new(&["port", "freq_ghz", "theta_deg", "gain_dbi"]);
    for r in &rows {
        table.row(&[
            format!("{:?}", r.port),
            f(r.freq_ghz, 1),
            f(r.theta_deg, 1),
            f(r.gain_dbi, 2),
        ]);
    }
    emit("Figure 10: Dual-port FSA beam pattern", &table);
    // Chart: port A at three sample frequencies.
    let mut charts = Vec::new();
    for ghz in [26.5, 28.0, 29.5] {
        charts.push(milback_bench::Series::new(
            &format!("port A @ {ghz} GHz"),
            rows.iter()
                .filter(|r| matches!(r.port, milback_rf::fsa::Port::A) && r.freq_ghz == ghz)
                .map(|r| (r.theta_deg, r.gain_dbi.max(-10.0)))
                .collect(),
        ));
    }
    println!("{}", milback_bench::line_chart(&charts, 70, 14));

    let s = fsa_summary();
    println!("Section 9.1 claims:");
    println!(
        "  min peak gain over band : {:.2} dBi (paper: > 10 dB)",
        s.min_peak_gain_dbi
    );
    println!(
        "  scan coverage (3 GHz BW): {:.1}°   (paper: > 60°)",
        s.coverage_deg
    );
}
