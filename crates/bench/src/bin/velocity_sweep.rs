//! Extension experiment: radial-velocity measurement (range-Doppler) —
//! the node moves, the AP measures speed from a spaced chirp train.

use milback::{Fidelity, Network};
use milback_bench::{emit, f, Table};
use milback_rf::geometry::Pose;

fn main() {
    let mut table = Table::new(&["true_mps", "est_mps", "moving", "abs_err"]);
    for v in [-3.0, -1.5, -0.5, 0.0, 0.5, 1.0, 2.0, 3.0] {
        let pose = Pose::facing_ap(3.0, 0.0, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, 7001);
        match net.measure_velocity(v, 64) {
            Some(r) => table.row(&[
                f(v, 2),
                f(r.velocity, 2),
                if r.moving { "yes" } else { "no" }.to_string(),
                f((r.velocity - v).abs(), 2),
            ]),
            None => table.row(&[f(v, 2), "-".into(), "-".into(), "-".into()]),
        }
    }
    emit(
        "Extension: radial velocity via slow-time Doppler (node at 3 m)",
        &table,
    );
    println!("Static clutter lands in the zero-Doppler bin (MTI); a walking");
    println!("node separates by motion alone — no switch modulation needed.");
}
