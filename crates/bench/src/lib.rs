//! # milback-bench
//!
//! Benchmark/reproduction harness for the MilBack paper. Each `fig*` /
//! `table*` binary regenerates one figure or table of the evaluation
//! section and prints the series the paper reports; `cargo bench` runs
//! Criterion timings of the underlying pipelines.
//!
//! Binaries write machine-readable CSV next to the human-readable table
//! when `--csv <path>` is given.
//!
//! The `bench_engine` binary is the performance harness: it times the
//! localization and link pipelines serially and in parallel, and writes
//! an auto-numbered `BENCH_<n>.json` report. Run it with
//! `MILBACK_TELEMETRY=1` and the report additionally embeds a
//! `milback-telemetry` snapshot — per-stage counters and histograms from
//! the dsp/ap/node/proto/core layers (workflow documented in
//! EXPERIMENTS.md).

#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

pub mod plot;
pub use plot::{line_chart, Series};

/// A simple text table builder for printing figure series.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (must match the header length).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}", c, w = widths[i] + 2);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form to a file.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Parses the optional `--csv <path>` argument common to all binaries.
pub fn csv_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--csv" {
            return args.next().map(Into::into);
        }
    }
    None
}

/// Prints the table and optionally writes CSV, honoring `--csv`.
pub fn emit(title: &str, table: &Table) {
    println!("== {title} ==");
    println!("{}", table.render());
    if let Some(path) = csv_arg() {
        table.write_csv(&path).expect("failed to write CSV");
        println!("(csv written to {})", path.display());
    }
}

/// Formats a float with the given number of decimals.
pub fn f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a BER in scientific notation.
pub fn ber(value: f64) -> String {
    if value == 0.0 {
        "<1e-300".to_string()
    } else {
        format!("{value:.1e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["300".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("long_header"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_length_checked() {
        let mut t = Table::new(&["x"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(ber(0.0), "<1e-300");
        assert_eq!(ber(1.5e-8), "1.5e-8");
    }
}
