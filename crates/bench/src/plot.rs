//! Terminal plotting for the figure binaries: multi-series line charts
//! rendered as Unicode text, so `cargo run --bin fig14_downlink` shows the
//! curve's *shape* directly, not just a table.

/// One named data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points (need not be sorted).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: &str, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.to_string(),
            points,
        }
    }
}

/// Glyphs used for successive series.
const GLYPHS: [char; 6] = ['●', '○', '▲', '△', '■', '□'];

/// Renders series into a `width`×`height` character chart with axis
/// annotations. Returns the multi-line string.
pub fn line_chart(series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if pts.is_empty() {
        return "(no data)\n".to_string();
    }
    let (mut x_lo, mut x_hi) = (f64::MAX, f64::MIN);
    let (mut y_lo, mut y_hi) = (f64::MAX, f64::MIN);
    for &(x, y) in &pts {
        if x.is_finite() && y.is_finite() {
            x_lo = x_lo.min(x);
            x_hi = x_hi.max(x);
            y_lo = y_lo.min(y);
            y_hi = y_hi.max(y);
        }
    }
    if x_lo > x_hi || y_lo > y_hi {
        // No finite point updated the bounds.
        return "(no finite data)\n".to_string();
    }
    if (x_hi - x_lo).abs() < 1e-300 {
        x_hi = x_lo + 1.0;
    }
    if (y_hi - y_lo).abs() < 1e-300 {
        y_hi = y_lo + 1.0;
    }
    // 10% y headroom.
    let pad = 0.05 * (y_hi - y_lo);
    let (y_lo, y_hi) = (y_lo - pad, y_hi + pad);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            if !(x.is_finite() && y.is_finite()) {
                continue;
            }
            let col = ((x - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
            let row = ((y_hi - y) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    for (r, line) in grid.iter().enumerate() {
        let y_label = if r == 0 {
            format!("{y_hi:>9.2} ")
        } else if r == height - 1 {
            format!("{y_lo:>9.2} ")
        } else {
            " ".repeat(10)
        };
        out.push_str(&y_label);
        out.push('│');
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('└');
    out.push_str(&"─".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{}{:<12.3}{:>w$.3}\n",
        " ".repeat(11),
        x_lo,
        x_hi,
        w = width.saturating_sub(12)
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_monotone_series() {
        let s = Series::new(
            "snr",
            (1..=10).map(|i| (i as f64, 30.0 - i as f64)).collect(),
        );
        let chart = line_chart(&[s], 40, 10);
        assert!(chart.contains('●'));
        assert!(chart.contains("snr"));
        // Max y label appears on the first line.
        let first = chart.lines().next().unwrap();
        assert!(first.contains("29"), "{first}");
    }

    #[test]
    fn two_series_use_distinct_glyphs() {
        let a = Series::new("a", vec![(0.0, 0.0), (1.0, 1.0)]);
        let b = Series::new("b", vec![(0.0, 1.0), (1.0, 0.0)]);
        let chart = line_chart(&[a, b], 20, 6);
        assert!(chart.contains('●') && chart.contains('○'));
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(line_chart(&[], 20, 5), "(no data)\n");
        let flat = Series::new("flat", vec![(1.0, 2.0), (2.0, 2.0)]);
        let chart = line_chart(&[flat], 20, 5);
        assert!(chart.contains('●'));
        let nan = Series::new("nan", vec![(f64::NAN, f64::NAN)]);
        assert_eq!(line_chart(&[nan], 20, 5), "(no finite data)\n");
    }

    #[test]
    #[should_panic(expected = "chart too small")]
    fn rejects_tiny_chart() {
        line_chart(&[], 4, 2);
    }
}
