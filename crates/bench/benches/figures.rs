//! Criterion benchmarks: one group per paper figure/table, timing the
//! pipeline that regenerates it (with reduced trial counts so a bench
//! iteration stays sub-second), plus micro-benchmarks of the hot DSP
//! kernels underneath them.

use criterion::{criterion_group, criterion_main, Criterion};
use milback::experiments;
use milback::{Fidelity, Network};
use milback_dsp::chirp::ChirpConfig;
use milback_dsp::fft::fft;
use milback_dsp::num::Cpx;
use milback_rf::fsa::{DualPortFsa, Port};
use milback_rf::geometry::{deg_to_rad, Pose};
use std::hint::black_box;

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10_fsa_pattern_sweep", |b| {
        b.iter(|| black_box(experiments::fig10_fsa_pattern()))
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11_oaqfm_micro", |b| {
        b.iter(|| black_box(experiments::fig11_oaqfm_micro(7)))
    });
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_localization");
    g.sample_size(10);
    g.bench_function("one_localization_trial", |b| {
        let pose = Pose::facing_ap(3.0, 0.0, 0.0);
        b.iter(|| {
            let mut net = Network::new(pose, Fidelity::Fast, 5);
            black_box(net.localize())
        })
    });
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_orientation");
    g.sample_size(10);
    g.bench_function("node_side_estimate", |b| {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(-8.0));
        b.iter(|| {
            let mut net = Network::new(pose, Fidelity::Fast, 6);
            black_box(net.sense_orientation_at_node())
        })
    });
    g.bench_function("ap_side_estimate", |b| {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(-8.0));
        b.iter(|| {
            let mut net = Network::new(pose, Fidelity::Fast, 6);
            black_box(net.sense_orientation_at_ap())
        })
    });
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_downlink");
    g.sample_size(10);
    g.bench_function("one_downlink_frame", |b| {
        let pose = Pose::facing_ap(4.0, 0.0, deg_to_rad(15.0));
        b.iter(|| {
            let mut net = Network::new(pose, Fidelity::Fast, 8);
            black_box(net.downlink(&[0xA5; 16], 1e6, true))
        })
    });
    g.finish();
}

fn bench_fig15(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_uplink");
    g.sample_size(10);
    g.bench_function("one_uplink_frame_10mbps", |b| {
        let pose = Pose::facing_ap(4.0, 0.0, deg_to_rad(15.0));
        b.iter(|| {
            let mut net = Network::new(pose, Fidelity::Fast, 9);
            black_box(net.uplink(&[0x5A; 16], 5e6, true))
        })
    });
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    g.bench_function("velocity_measurement_32_chirps", |b| {
        let pose = Pose::facing_ap(3.0, 0.0, 0.0);
        b.iter(|| {
            let mut net = Network::new(pose, Fidelity::Fast, 12);
            black_box(net.measure_velocity(1.5, 32))
        })
    });
    g.bench_function("dense_downlink_frame", |b| {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(18.0));
        b.iter(|| {
            let mut net = Network::new(pose, Fidelity::Fast, 13);
            black_box(net.downlink_dense(
                &[0xA5; 16],
                1e6,
                milback_proto::dense::DenseConstellation::new(4),
                true,
            ))
        })
    });
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1_features", |b| {
        b.iter(|| black_box(experiments::table1()))
    });
    c.bench_function("table_power", |b| {
        b.iter(|| black_box(experiments::power_table()))
    });
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("dsp_kernels");
    let x: Vec<Cpx> = (0..8192).map(|i| Cpx::cis(i as f64 * 0.37)).collect();
    g.bench_function("fft_8192", |b| b.iter(|| black_box(fft(&x))));

    let fsa = DualPortFsa::milback();
    g.bench_function("fsa_gain_eval", |b| {
        b.iter(|| black_box(fsa.gain(Port::A, 0.2, 28e9)))
    });

    let cfg = ChirpConfig {
        f_start: 26.5e9,
        f_stop: 29.5e9,
        duration: 2e-6,
        fs: 3.2e9,
        amplitude: 1.0,
    };
    g.bench_function("chirp_synthesis_6400", |b| {
        b.iter(|| black_box(cfg.sawtooth()))
    });

    let template: Vec<Cpx> = (0..2048).map(|i| Cpx::cis(i as f64 * 0.21)).collect();
    let rx: Vec<Cpx> = (0..8192).map(|i| Cpx::cis(i as f64 * 0.13)).collect();
    g.bench_function("matched_filter_8192x2048", |b| {
        b.iter(|| black_box(milback_dsp::xcorr::matched_filter(&rx, &template)))
    });
    g.bench_function("goertzel_8192", |b| {
        b.iter(|| black_box(milback_dsp::goertzel::tone_power(&rx, 1.2e5, 1e6)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig15,
    bench_extensions,
    bench_tables,
    bench_kernels
);
criterion_main!(benches);
