//! End-to-end communication over the simulated channel: OAQFM downlink
//! (paper §6.1–6.2) and backscatter uplink (§6.3), including carrier
//! selection from the sensed orientation.
//!
//! All per-transfer working buffers live in `LinkScratch`, pooled on
//! the [`Network`]: a warmed downlink or uplink performs zero heap
//! allocations on the node/AP signal path (`tests/zero_alloc.rs` pins
//! this). The only steady-state allocations left are the decoded payload
//! `Vec<u8>` handed to the caller and the AP uplink receiver's internal
//! demodulation buffers (see [`Network::uplink`]).

use crate::network::Network;
use milback_ap::tone_select::{select_tones, ToneSelection};
use milback_ap::uplink::{UplinkReceiver, UplinkScratch, UPLINK_PILOT};
use milback_ap::waveform;
use milback_dsp::signal::Signal;
use milback_hw::power::NodeMode;
use milback_hw::switch::{SwitchSchedule, SwitchState};
use milback_node::demod::{
    demodulate_oaqfm_into, demodulate_ook_into, DemodScratch, EnvelopeSlicer,
};
use milback_node::modulator::modulate_uplink_into;
use milback_proto::bits::{bit_errors, bits_to_symbols_into, symbols_to_bits_into, OaqfmSymbol};
use milback_proto::frame::{decode_frame_with, encode_frame_into, FrameError, FrameScratch};
use milback_rf::channel::{NodeInterface, TxComponent};
use milback_rf::fsa::Port;
use milback_rf::{wave_fingerprint, with_channel_workspace};
use milback_telemetry as telemetry;

/// Minimum tone separation before falling back to single-carrier OOK:
/// the two envelope-detector branches stop being separable when the tones
/// approach the detector's video bandwidth.
pub const MIN_TONE_SEPARATION: f64 = 100e6;

/// Guard symbols (query running, node silent) before the pilot, so the
/// receiver's filter transients settle outside the payload.
pub const GUARD_SYMBOLS: usize = 6;

/// Key identifying a cached uplink query-tone pair: every parameter the
/// tone synthesis depends on, with `f64`s compared by bit pattern so the
/// cache never conflates nearly-equal plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueryKey {
    fs: u64,
    fc: u64,
    f_a: u64,
    f_b: u64,
    amp: u64,
    n: usize,
}

/// Cached uplink query tones for one carrier plan: the two rendered
/// [`TxComponent`]s plus their wave fingerprints. Repeated uplink
/// transfers on the same plan reuse these instead of cloning out of the
/// template cache and re-hashing every time.
#[derive(Debug, Clone)]
struct QueryCache {
    key: QueryKey,
    comp_a: TxComponent,
    comp_b: TxComponent,
    fp_a: u64,
    fp_b: u64,
}

/// Pooled working buffers for downlink/uplink transfers, owned by the
/// [`Network`]. Every transfer `std::mem::take`s the scratch out of the
/// network, reuses its capacity, and puts it back — so a warmed link
/// layer stops allocating.
#[derive(Debug, Clone)]
pub(crate) struct LinkScratch {
    /// Encoded frame symbols (payload + CRC).
    frame: Vec<OaqfmSymbol>,
    /// Pilot + frame, the on-air symbol stream.
    symbols: Vec<OaqfmSymbol>,
    /// Per-tone OOK bit streams (port A / port B); the OOK fallback
    /// reuses `bits_a` for its pilot+frame bit stream.
    bits_a: Vec<bool>,
    bits_b: Vec<bool>,
    /// Downlink tone waveforms (reclaimed from the `TxComponent`s after
    /// each transfer).
    wave_a: Signal,
    wave_b: Signal,
    /// Rendered signals at the node's FSA ports.
    at_a: Signal,
    at_b: Signal,
    /// Spare render target (cross-tone leakage / second query tone).
    port_tmp: Signal,
    /// Scaled-RF copy inside the node's receive path.
    rf: Signal,
    /// Detector video streams, one per port.
    det_a: Vec<f64>,
    det_b: Vec<f64>,
    /// Demodulated symbols.
    got: Vec<OaqfmSymbol>,
    /// Sent/received frame bits for the error count.
    sent_bits: Vec<bool>,
    got_bits: Vec<bool>,
    demod: DemodScratch,
    codec: FrameScratch,
    /// Uplink switch schedules (their event buffers are reclaimed by
    /// `modulate_uplink_into`).
    sched_a: SwitchSchedule,
    sched_b: SwitchSchedule,
    /// AP capture buffers, one per RX antenna.
    rx0: Signal,
    rx1: Signal,
    /// The uplink receiver's pooled demodulation buffers.
    uplink: UplinkScratch,
    query: Option<QueryCache>,
}

impl Default for LinkScratch {
    fn default() -> Self {
        // `Signal` has no Default (it insists on a positive sample rate);
        // the placeholder rate is overwritten by every producer.
        let sig = || Signal::new(1.0, 0.0, Vec::new());
        Self {
            frame: Vec::new(),
            symbols: Vec::new(),
            bits_a: Vec::new(),
            bits_b: Vec::new(),
            wave_a: sig(),
            wave_b: sig(),
            at_a: sig(),
            at_b: sig(),
            port_tmp: sig(),
            rf: sig(),
            det_a: Vec::new(),
            det_b: Vec::new(),
            got: Vec::new(),
            sent_bits: Vec::new(),
            got_bits: Vec::new(),
            demod: DemodScratch::default(),
            codec: FrameScratch::default(),
            sched_a: SwitchSchedule::Constant(SwitchState::Absorptive),
            sched_b: SwitchSchedule::Constant(SwitchState::Absorptive),
            rx0: sig(),
            rx1: sig(),
            uplink: UplinkScratch::default(),
            query: None,
        }
    }
}

/// Outcome of a downlink transfer.
#[derive(Debug, Clone)]
pub struct DownlinkReport {
    /// The carrier plan the AP chose.
    pub tones: ToneSelection,
    /// Decoded payload (if the CRC passed).
    pub payload: Result<Vec<u8>, FrameError>,
    /// Raw bit errors against the transmitted frame bits.
    pub bit_errors: usize,
    /// Total frame bits.
    pub total_bits: usize,
    /// Measured SINR of the weaker detector branch, linear power ratio.
    pub sinr: f64,
    /// Effective decision SNR after per-symbol integration, with the
    /// cross-port interference subtracted from the decision margin —
    /// the quantity BER actually depends on (linear).
    pub decision_snr: f64,
}

/// Outcome of an uplink transfer.
#[derive(Debug, Clone)]
pub struct UplinkReport {
    /// The carrier plan the AP chose.
    pub tones: ToneSelection,
    /// Decoded payload (if the CRC passed).
    pub payload: Result<Vec<u8>, FrameError>,
    /// Raw bit errors against the transmitted frame bits.
    pub bit_errors: usize,
    /// Total frame bits.
    pub total_bits: usize,
    /// Measured SNR of the decision variable (min across branches).
    pub snr: f64,
}

/// Measured SINR of a downlink detector branch: wanted level step squared
/// over (interference + noise) variance, from the known components. This
/// is the paper's Fig. 14 quantity — SINR at the detector output, before
/// symbol integration.
fn branch_sinr(v_signal: f64, v_interference: f64, noise_rms: f64) -> f64 {
    v_signal * v_signal / (v_interference * v_interference + noise_rms * noise_rms)
}

/// Decision SNR of a branch: per-symbol integration averages the white
/// detector noise down by `video_bw/symbol_rate`, while the (symbol-
/// synchronous) cross-port interference subtracts from the decision
/// margin instead.
fn branch_decision_snr(
    v_signal: f64,
    v_interference: f64,
    noise_rms: f64,
    integration_gain: f64,
) -> f64 {
    let margin = (v_signal - v_interference).max(0.0);
    let sigma2 = noise_rms * noise_rms / integration_gain.max(1.0);
    margin * margin / sigma2
}

impl Network {
    /// Renders a pair of per-tone downlink components to both FSA ports,
    /// including the cross-tone leakage each port receives from the other
    /// tone's side lobes. Returns `(at_port_a, at_port_b)`.
    pub(crate) fn render_tones_to_ports(
        &self,
        comp_a: &TxComponent,
        comp_b: &TxComponent,
    ) -> (Signal, Signal) {
        let fs = comp_a.signal.fs;
        let fc = comp_a.signal.fc;
        let mut at_a = Signal::new(fs, fc, Vec::new());
        let mut at_b = Signal::new(fs, fc, Vec::new());
        let mut tmp = Signal::new(fs, fc, Vec::new());
        self.render_tones_to_ports_into(comp_a, comp_b, &mut at_a, &mut at_b, &mut tmp);
        (at_a, at_b)
    }

    /// Allocation-free [`Network::render_tones_to_ports`] into pooled
    /// output signals (`tmp` holds the cross-tone render between adds).
    ///
    /// The four port renders share one [`ChannelWorkspace`] borrow and
    /// each component's [`wave_fingerprint`] is computed once, so the
    /// hoisted port tables are reused across ports and transfers.
    ///
    /// [`ChannelWorkspace`]: milback_rf::ChannelWorkspace
    pub(crate) fn render_tones_to_ports_into(
        &self,
        comp_a: &TxComponent,
        comp_b: &TxComponent,
        at_a: &mut Signal,
        at_b: &mut Signal,
        tmp: &mut Signal,
    ) {
        let fp_a = wave_fingerprint(comp_a);
        let fp_b = wave_fingerprint(comp_b);
        let pose = &self.node.pose;
        let fsa = &self.node.fsa;
        with_channel_workspace(|ws| {
            self.scene
                .to_node_port_into(ws, comp_a, fp_a, pose, fsa, Port::A, at_a);
            self.scene
                .to_node_port_into(ws, comp_b, fp_b, pose, fsa, Port::A, tmp);
            at_a.add(tmp);
            self.scene
                .to_node_port_into(ws, comp_b, fp_b, pose, fsa, Port::B, at_b);
            self.scene
                .to_node_port_into(ws, comp_a, fp_a, pose, fsa, Port::B, tmp);
            at_b.add(tmp);
        });
    }

    /// Chooses OAQFM carriers for the node's current (AP-estimated)
    /// orientation. Uses the true orientation when `use_truth` — handy in
    /// microbenchmarks — otherwise runs AP-side orientation sensing first.
    ///
    /// When [`Network::force_single_tone`] is set (the adaptive
    /// controller's CW-interference fallback) the dual-tone plan is
    /// collapsed to single-carrier OOK *after* selection, so the RNG
    /// draw order of the sensing path is untouched.
    pub fn plan_tones(&mut self, use_truth: bool) -> Option<ToneSelection> {
        let orientation = if use_truth {
            self.true_orientation()
        } else {
            self.sense_orientation_at_ap()?
        };
        let sel = select_tones(&self.node.fsa, orientation, MIN_TONE_SEPARATION)?;
        Some(if self.force_single_tone {
            sel.collapsed()
        } else {
            sel
        })
    }

    /// Runs a full downlink transfer of `payload` at `symbol_rate`
    /// symbols/s. `use_truth` short-circuits orientation sensing (for
    /// microbenchmarks); the end-to-end path senses first.
    ///
    /// Steady-state allocations: only the decoded payload `Vec<u8>` in
    /// the report — all working buffers are pooled in the network's
    /// `LinkScratch`.
    pub fn downlink(
        &mut self,
        payload: &[u8],
        symbol_rate: f64,
        use_truth: bool,
    ) -> Option<DownlinkReport> {
        let _span = telemetry::span("core.link.downlink.ns");
        let tones = self.plan_tones(use_truth)?;
        let mut scr = std::mem::take(&mut self.link_scratch);
        encode_frame_into(payload, &mut scr.codec, &mut scr.frame);
        let report = match tones {
            ToneSelection::Dual { f_a, f_b } => {
                self.downlink_dual(&mut scr, payload, f_a, f_b, symbol_rate, tones)
            }
            ToneSelection::Single { f } => {
                self.downlink_ook(&mut scr, payload, f, symbol_rate, tones)
            }
        };
        self.link_scratch = scr;
        telemetry::counter_add("core.link.downlink.frames", 1);
        telemetry::counter_add("core.link.downlink.bits", report.total_bits as u64);
        telemetry::counter_add("core.link.downlink.bit_errors", report.bit_errors as u64);
        // Node energy over the transfer, from the hw power model: OAQFM
        // carries 2 bits/symbol, OOK 1 — either way `total_bits` symbols'
        // worth of airtime bounds the draw at the downlink power level.
        let duration_s = report.total_bits as f64 / (2.0 * symbol_rate);
        let energy_nj = self.node.power.power_mw(NodeMode::Downlink) * duration_s * 1e6;
        telemetry::observe("node.energy.downlink_nj", energy_nj as u64);
        Some(report)
    }

    fn downlink_dual(
        &mut self,
        scr: &mut LinkScratch,
        payload: &[u8],
        f_a: f64,
        f_b: f64,
        symbol_rate: f64,
        tones: ToneSelection,
    ) -> DownlinkReport {
        // Pilot + frame, so the node's threshold sees both levels early.
        scr.symbols.clear();
        scr.symbols.extend_from_slice(&UPLINK_PILOT);
        scr.symbols.extend_from_slice(&scr.frame);

        // Simulation bandwidth needs to cover both tones comfortably; the
        // waveform is generated per tone so each FSA port sees its own
        // frequency-dependent gain.
        let fs = self.downlink_fs(f_a, f_b);
        let fc = 0.5 * (f_a + f_b);
        let mut tx = self.ap.tx;
        tx.fs = fs;
        let n_symbols = scr.symbols.len();
        scr.bits_a.clear();
        scr.bits_a.extend(scr.symbols.iter().map(|s| s.a_on));
        scr.bits_b.clear();
        scr.bits_b.extend(scr.symbols.iter().map(|s| s.b_on));
        // Each tone at half the total power (√2 amplitude split).
        waveform::ook_waveform_into(&tx, fc, f_a, &scr.bits_a, symbol_rate, &mut scr.wave_a);
        waveform::ook_waveform_into(&tx, fc, f_b, &scr.bits_b, symbol_rate, &mut scr.wave_b);
        scr.wave_a.scale(1.0 / 2f64.sqrt());
        scr.wave_b.scale(1.0 / 2f64.sqrt());
        // The components take the waveforms by value; the buffers come
        // back out of them at the end of the transfer.
        let placeholder = || Signal::new(1.0, 0.0, Vec::new());
        let comp_a = TxComponent::tone(std::mem::replace(&mut scr.wave_a, placeholder()), f_a);
        let comp_b = TxComponent::tone(std::mem::replace(&mut scr.wave_b, placeholder()), f_b);

        // Signal at each FSA port = wanted tone + cross-tone leakage.
        self.render_tones_to_ports_into(
            &comp_a,
            &comp_b,
            &mut scr.at_a,
            &mut scr.at_b,
            &mut scr.port_tmp,
        );

        // SINR bookkeeping from the known components (steady-state levels).
        let p_tx_tone = self.ap.tx.amplitude().powi(2) / 2.0;
        let chain = self.node_chain_gain();
        let g = |port: Port, f: f64| {
            self.scene
                .tone_gain_to_port(&self.node.pose, &self.node.fsa, port, f)
                * chain
        };
        let v = |p: f64| self.node.detector.ideal_output(p);
        let noise = self.node.detector.output_noise_rms();
        let sinr_a = branch_sinr(
            v(p_tx_tone * g(Port::A, f_a)),
            v(p_tx_tone * g(Port::A, f_b)),
            noise,
        );
        let sinr_b = branch_sinr(
            v(p_tx_tone * g(Port::B, f_b)),
            v(p_tx_tone * g(Port::B, f_a)),
            noise,
        );
        let integration = self.node.detector.video_bandwidth / symbol_rate;
        let dec_a = branch_decision_snr(
            v(p_tx_tone * g(Port::A, f_a)),
            v(p_tx_tone * g(Port::A, f_b)),
            noise,
            integration,
        );
        let dec_b = branch_decision_snr(
            v(p_tx_tone * g(Port::B, f_b)),
            v(p_tx_tone * g(Port::B, f_a)),
            noise,
            integration,
        );

        // Node receive + demodulate.
        self.node_video_into(&scr.at_a, &mut scr.rf, &mut scr.det_a);
        self.node_video_into(&scr.at_b, &mut scr.rf, &mut scr.det_b);
        let slicer = EnvelopeSlicer::new(fs, symbol_rate);
        demodulate_oaqfm_into(
            &slicer,
            &scr.det_a,
            &scr.det_b,
            0.0,
            n_symbols,
            &mut scr.demod,
            &mut scr.got,
        );
        let got_frame = &scr.got[UPLINK_PILOT.len()..];

        symbols_to_bits_into(&scr.frame, &mut scr.sent_bits);
        symbols_to_bits_into(got_frame, &mut scr.got_bits);
        let errors = bit_errors(&scr.sent_bits, &scr.got_bits);
        let decoded = decode_frame_with(
            &mut scr.codec,
            &scr.got[UPLINK_PILOT.len()..],
            payload.len(),
        );
        // Reclaim the waveform buffers from the components.
        scr.wave_a = comp_a.signal;
        scr.wave_b = comp_b.signal;
        DownlinkReport {
            tones,
            payload: decoded,
            bit_errors: errors,
            total_bits: scr.sent_bits.len(),
            sinr: sinr_a.min(sinr_b),
            decision_snr: dec_a.min(dec_b),
        }
    }

    fn downlink_ook(
        &mut self,
        scr: &mut LinkScratch,
        payload: &[u8],
        f: f64,
        symbol_rate: f64,
        tones: ToneSelection,
    ) -> DownlinkReport {
        // OOK fallback: 1 bit per symbol on a single carrier.
        symbols_to_bits_into(&scr.frame, &mut scr.sent_bits);
        scr.bits_a.clear();
        scr.bits_a.extend_from_slice(&[true, false, true, false]); // pilot
        scr.bits_a.extend_from_slice(&scr.sent_bits);

        let fs = 16.0 * symbol_rate;
        let mut tx = self.ap.tx;
        tx.fs = fs;
        waveform::ook_waveform_into(&tx, f, f, &scr.bits_a, symbol_rate, &mut scr.wave_a);
        let comp = TxComponent::tone(
            std::mem::replace(&mut scr.wave_a, Signal::new(1.0, 0.0, Vec::new())),
            f,
        );
        let fp = wave_fingerprint(&comp);
        let pose = &self.node.pose;
        let fsa = &self.node.fsa;
        with_channel_workspace(|ws| {
            self.scene
                .to_node_port_into(ws, &comp, fp, pose, fsa, Port::A, &mut scr.at_a);
            self.scene
                .to_node_port_into(ws, &comp, fp, pose, fsa, Port::B, &mut scr.at_b);
        });

        let p_tx = self.ap.tx.amplitude().powi(2);
        let chain = self.node_chain_gain();
        let g_a = self
            .scene
            .tone_gain_to_port(&self.node.pose, &self.node.fsa, Port::A, f);
        let v_sig = self.node.detector.ideal_output(p_tx * g_a * chain);
        let noise = self.node.detector.output_noise_rms();
        let sinr = branch_sinr(v_sig, 0.0, noise);
        let integration = self.node.detector.video_bandwidth / symbol_rate;
        let decision_snr = branch_decision_snr(v_sig, 0.0, noise, integration);

        self.node_video_into(&scr.at_a, &mut scr.rf, &mut scr.det_a);
        self.node_video_into(&scr.at_b, &mut scr.rf, &mut scr.det_b);
        let slicer = EnvelopeSlicer::new(fs, symbol_rate);
        let n_bits = scr.bits_a.len();
        demodulate_ook_into(
            &slicer,
            &scr.det_a,
            &scr.det_b,
            0.0,
            n_bits,
            &mut scr.demod,
            &mut scr.got_bits,
        );
        let got_bits = &scr.got_bits[4..];
        let errors = bit_errors(&scr.sent_bits, got_bits);
        bits_to_symbols_into(got_bits, &mut scr.got);
        let decoded = decode_frame_with(&mut scr.codec, &scr.got, payload.len());
        scr.wave_a = comp.signal;
        DownlinkReport {
            tones,
            payload: decoded,
            bit_errors: errors,
            total_bits: scr.sent_bits.len(),
            sinr,
            decision_snr,
        }
    }

    /// Runs a full uplink transfer of `payload` at `symbol_rate`
    /// symbols/s.
    ///
    /// Steady-state allocations: the decoded payload `Vec<u8>` plus the
    /// AP receiver's internal demodulation buffers
    /// ([`UplinkReceiver::demodulate`] mixes, decimates and projects per
    /// branch into fresh vectors) — everything node-side and channel-side
    /// is pooled in `LinkScratch`. `tests/zero_alloc.rs` pins the
    /// total with an upper bound.
    pub fn uplink(
        &mut self,
        payload: &[u8],
        symbol_rate: f64,
        use_truth: bool,
    ) -> Option<UplinkReport> {
        let _span = telemetry::span("core.link.uplink.ns");
        let tones = self.plan_tones(use_truth)?;
        let mut scr = std::mem::take(&mut self.link_scratch);
        let report = self.uplink_transfer(&mut scr, payload, symbol_rate, tones);
        self.link_scratch = scr;
        report
    }

    fn uplink_transfer(
        &mut self,
        scr: &mut LinkScratch,
        payload: &[u8],
        symbol_rate: f64,
        tones: ToneSelection,
    ) -> Option<UplinkReport> {
        let (f_a, f_b) = match tones {
            ToneSelection::Dual { f_a, f_b } => (f_a, f_b),
            // Normal incidence: both ports reflect the same tone; the AP
            // still decodes two branches but they carry the same bit —
            // handled by using the same frequency on both branches.
            ToneSelection::Single { f } => (f, f),
        };

        let single = matches!(tones, ToneSelection::Single { .. });
        encode_frame_into(payload, &mut scr.codec, &mut scr.frame);
        symbols_to_bits_into(&scr.frame, &mut scr.sent_bits);
        scr.symbols.clear();
        scr.symbols.extend_from_slice(&UPLINK_PILOT);
        if single {
            // OOK: both ports key the same bit each symbol (like the
            // pilot), so the two reflections add coherently and either
            // antenna branch alone recovers the stream — 1 bit/symbol at
            // twice the symbol count instead of 2 separable bits.
            scr.symbols.extend(
                scr.sent_bits
                    .iter()
                    .map(|&b| OaqfmSymbol { a_on: b, b_on: b }),
            );
        } else {
            scr.symbols.extend_from_slice(&scr.frame);
        }
        let n_symbols = scr.symbols.len();

        // Query waveform: guard before and after the modulated payload.
        let fs = self.downlink_fs(f_a, f_b);
        let fc = 0.5 * (f_a + f_b);
        let t0 = GUARD_SYMBOLS as f64 / symbol_rate;
        let total_t = (n_symbols + 2 * GUARD_SYMBOLS) as f64 / symbol_rate;
        let mut tx = self.ap.tx;
        tx.fs = fs;
        let n = (total_t * fs).round() as usize;
        let amp = tx.amplitude() / 2f64.sqrt();
        // Each query tone is rendered as its own channel component so the
        // node's FSA gain is evaluated at that tone's frequency (the whole
        // point of OAQFM: each tone talks to one port's beam). Query tones
        // only depend on the carrier plan, so repeated transfers pull them
        // from the per-network cache (itself fed once from the template
        // cache) instead of re-synthesizing and re-fingerprinting.
        let key = QueryKey {
            fs: fs.to_bits(),
            fc: fc.to_bits(),
            f_a: f_a.to_bits(),
            f_b: f_b.to_bits(),
            amp: amp.to_bits(),
            n,
        };
        if scr.query.as_ref().is_none_or(|q| q.key != key) {
            let tone_a = milback_dsp::template::tone(fs, fc, f_a - fc, amp, n)
                .as_ref()
                .clone();
            let tone_b = milback_dsp::template::tone(fs, fc, f_b - fc, amp, n)
                .as_ref()
                .clone();
            let comp_a = TxComponent::tone(tone_a, f_a);
            let comp_b = TxComponent::tone(tone_b, f_b);
            let fp_a = wave_fingerprint(&comp_a);
            let fp_b = wave_fingerprint(&comp_b);
            scr.query = Some(QueryCache {
                key,
                comp_a,
                comp_b,
                fp_a,
                fp_b,
            });
        }
        let q = scr.query.as_ref().expect("query cache just filled");

        // The node modulates its ports per symbol. A symbol rate beyond
        // the switch's capability is a planning error, not a physics
        // outcome — reject the transfer gracefully instead of panicking.
        if modulate_uplink_into(
            &self.node.switch,
            &scr.symbols,
            t0,
            symbol_rate,
            &mut scr.sched_a,
            &mut scr.sched_b,
        )
        .is_err()
        {
            telemetry::counter_add("core.link.uplink.rejected", 1);
            return None;
        }
        // Four monostatic renders (two tones × two RX antennas) share one
        // workspace borrow; the per-tone ray tables and static responses
        // are built once and replayed for the other antenna/transfer.
        {
            let gamma = self.node.gamma_schedule(&scr.sched_a, &scr.sched_b);
            let node_if = NodeInterface {
                pose: self.node.pose,
                fsa: &self.node.fsa,
                gamma: &gamma,
            };
            let nodes = std::slice::from_ref(&node_if);
            with_channel_workspace(|ws| {
                self.scene
                    .monostatic_rx_multi_into(ws, &q.comp_a, q.fp_a, nodes, 0, &mut scr.rx0);
                self.scene.monostatic_rx_multi_into(
                    ws,
                    &q.comp_b,
                    q.fp_b,
                    nodes,
                    0,
                    &mut scr.port_tmp,
                );
                scr.rx0.add(&scr.port_tmp);
                self.scene
                    .monostatic_rx_multi_into(ws, &q.comp_a, q.fp_a, nodes, 1, &mut scr.rx1);
                self.scene.monostatic_rx_multi_into(
                    ws,
                    &q.comp_b,
                    q.fp_b,
                    nodes,
                    1,
                    &mut scr.port_tmp,
                );
                scr.rx1.add(&scr.port_tmp);
            });
        }
        // Scheduled impairments act on the AP's captures post-synthesis
        // (no-op, bitwise, when the plan is empty).
        self.faults.apply_to_rx(self.clock_s, 0, &mut scr.rx0);
        self.faults.apply_to_rx(self.clock_s, 1, &mut scr.rx1);

        let mut receiver = UplinkReceiver::milback(symbol_rate);
        // Uplink noise figure: the LNA's own 3 dB (the node's reflected
        // signal is the weak one; the scope contribution is lumped into
        // the node's implementation loss).
        receiver.lna.nf_db = 3.0;
        let mut rng = self.fork_rng();
        let stats = receiver.demodulate_into(
            &mut scr.uplink,
            &scr.rx0,
            &scr.rx1,
            f_a,
            f_b,
            t0,
            n_symbols,
            &mut rng,
            &mut scr.got,
        );
        let got_frame = &scr.got[UPLINK_PILOT.len()..];

        if single {
            // Both branches carry the duplicated bit; trust the one whose
            // decision clusters separated better.
            let use_a = stats.branch_snr[0] >= stats.branch_snr[1];
            scr.got_bits.clear();
            scr.got_bits.extend(
                got_frame
                    .iter()
                    .map(|s| if use_a { s.a_on } else { s.b_on }),
            );
        } else {
            symbols_to_bits_into(got_frame, &mut scr.got_bits);
        }
        let errors = bit_errors(&scr.sent_bits, &scr.got_bits);
        telemetry::counter_add("core.link.uplink.frames", 1);
        telemetry::counter_add("core.link.uplink.bits", scr.sent_bits.len() as u64);
        telemetry::counter_add("core.link.uplink.bit_errors", errors as u64);
        let bit_rate = tones.bits_per_symbol() as f64 * symbol_rate;
        let energy_nj = self.node.power.power_mw(NodeMode::Uplink { bit_rate })
            * (scr.sent_bits.len() as f64 / bit_rate)
            * 1e6;
        telemetry::observe("node.energy.uplink_nj", energy_nj as u64);
        let payload_res = if single {
            // Re-pack the recovered bit stream into frame symbols for the
            // shared frame decoder.
            bits_to_symbols_into(&scr.got_bits, &mut scr.got);
            decode_frame_with(&mut scr.codec, &scr.got, payload.len())
        } else {
            decode_frame_with(&mut scr.codec, got_frame, payload.len())
        };
        Some(UplinkReport {
            tones,
            payload: payload_res,
            bit_errors: errors,
            total_bits: scr.sent_bits.len(),
            snr: stats.snr,
        })
    }

    /// Simulation sample rate covering two tones `f_a`/`f_b` around their
    /// midpoint with margin.
    fn downlink_fs(&self, f_a: f64, f_b: f64) -> f64 {
        let span = (f_a - f_b).abs();
        (2.5 * span).max(200e6)
    }

    /// Power gain of the node's receive chain after the FSA port (switch
    /// through-loss × one-way implementation loss).
    fn node_chain_gain(&self) -> f64 {
        self.node.switch.through_gain() * 10f64.powf(-self.node.impl_loss_db / 10.0)
    }

    /// Renders one port's video-rate detector output for a signal at the
    /// port, into a pooled buffer (`rf` holds the scaled RF copy).
    fn node_video_into(&mut self, at_port: &Signal, rf: &mut Signal, out: &mut Vec<f64>) {
        let mut rng = self.fork_rng();
        self.node
            .receive_port_video_into(at_port, &mut rng, rf, out);
        // Node-side impairments on the detector output (no-op when the
        // fault plan is empty).
        self.faults.apply_to_video(self.clock_s, at_port.fs, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Fidelity;
    use milback_rf::geometry::{deg_to_rad, Pose};

    #[test]
    fn downlink_clean_at_2m() {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
        let mut net = Network::new(pose, Fidelity::Fast, 11);
        let payload: Vec<u8> = (0..16).collect();
        let report = net.downlink(&payload, 1e6, true).expect("no tones");
        assert!(matches!(report.tones, ToneSelection::Dual { .. }));
        assert_eq!(report.bit_errors, 0, "sinr {}", report.sinr);
        assert_eq!(report.payload.as_deref().unwrap(), &payload[..]);
        assert!(report.sinr > 10.0, "sinr {}", report.sinr);
    }

    #[test]
    fn downlink_ook_fallback_at_normal_incidence() {
        let pose = Pose::facing_ap(2.0, 0.0, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, 12);
        let payload = vec![0xA5; 8];
        let report = net.downlink(&payload, 1e6, true).expect("no tones");
        assert!(matches!(report.tones, ToneSelection::Single { .. }));
        assert_eq!(report.bit_errors, 0);
        assert_eq!(report.payload.as_deref().unwrap(), &payload[..]);
    }

    #[test]
    fn uplink_clean_at_2m() {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
        let mut net = Network::new(pose, Fidelity::Fast, 13);
        let payload: Vec<u8> = (0..8).map(|i| i * 17).collect();
        let report = net.uplink(&payload, 5e6, true).expect("no tones");
        assert_eq!(report.bit_errors, 0, "snr {}", report.snr);
        assert_eq!(report.payload.as_deref().unwrap(), &payload[..]);
        assert!(report.snr > 10.0, "snr {}", report.snr);
    }

    #[test]
    fn downlink_with_sensed_orientation() {
        // The full paper pipeline: sense orientation, pick tones, send.
        // 3–4° orientation error must not break communication (§9.3).
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(10.0));
        let mut net = Network::new(pose, Fidelity::Fast, 14);
        let payload = vec![0x5A; 8];
        let report = net.downlink(&payload, 1e6, false).expect("no tones");
        assert_eq!(report.bit_errors, 0, "sinr {}", report.sinr);
    }

    #[test]
    fn uplink_snr_drops_with_distance() {
        let mut snrs = Vec::new();
        for d in [2.0, 4.0, 6.0] {
            let pose = Pose::facing_ap(d, 0.0, deg_to_rad(12.0));
            let mut net = Network::new(pose, Fidelity::Fast, 15);
            let report = net.uplink(&[0x33; 4], 5e6, true).expect("no tones");
            snrs.push(report.snr);
        }
        assert!(snrs[0] > snrs[1] && snrs[1] > snrs[2], "{snrs:?}");
    }

    #[test]
    fn pooled_scratch_survives_payload_size_changes() {
        // The scratch buffers are reused across transfers; shrinking and
        // regrowing payloads must not leak stale symbols or bits into the
        // next frame.
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
        let mut net = Network::new(pose, Fidelity::Fast, 21);
        for len in [16usize, 4, 32, 1, 16] {
            let payload: Vec<u8> = (0..len as u8).map(|i| i.wrapping_mul(29)).collect();
            let report = net.downlink(&payload, 1e6, true).expect("no tones");
            assert_eq!(report.bit_errors, 0, "len {len}");
            assert_eq!(
                report.payload.as_deref().unwrap(),
                &payload[..],
                "len {len}"
            );
            let report = net.uplink(&payload, 5e6, true).expect("no tones");
            assert_eq!(report.bit_errors, 0, "len {len}");
            assert_eq!(
                report.payload.as_deref().unwrap(),
                &payload[..],
                "len {len}"
            );
        }
    }

    #[test]
    fn pooled_transfers_are_deterministic() {
        // Two identically seeded networks running the same transfer
        // sequence must agree bit-for-bit — warm scratch reuse cannot
        // perturb results.
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
        let mut a = Network::new(pose, Fidelity::Fast, 33);
        let mut b = Network::new(pose, Fidelity::Fast, 33);
        for _ in 0..3 {
            let ra = a.downlink(&[0xC3; 12], 1e6, true).unwrap();
            let rb = b.downlink(&[0xC3; 12], 1e6, true).unwrap();
            assert_eq!(ra.bit_errors, rb.bit_errors);
            assert_eq!(ra.payload.as_deref().ok(), rb.payload.as_deref().ok());
            assert_eq!(ra.sinr.to_bits(), rb.sinr.to_bits());
            let ua = a.uplink(&[0x3C; 12], 5e6, true).unwrap();
            let ub = b.uplink(&[0x3C; 12], 5e6, true).unwrap();
            assert_eq!(ua.bit_errors, ub.bit_errors);
            assert_eq!(ua.snr.to_bits(), ub.snr.to_bits());
        }
    }
}
