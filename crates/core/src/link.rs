//! End-to-end communication over the simulated channel: OAQFM downlink
//! (paper §6.1–6.2) and backscatter uplink (§6.3), including carrier
//! selection from the sensed orientation.

use crate::network::Network;
use milback_ap::tone_select::{select_tones, ToneSelection};
use milback_ap::uplink::{UplinkReceiver, UPLINK_PILOT};
use milback_ap::waveform;
use milback_dsp::signal::Signal;
use milback_hw::power::NodeMode;
use milback_node::demod::{demodulate_oaqfm, demodulate_ook, EnvelopeSlicer};
use milback_node::modulator::modulate_uplink;
use milback_proto::bits::{bit_errors, bits_to_symbols, symbols_to_bits, OaqfmSymbol};
use milback_proto::frame::{decode_frame, encode_frame, FrameError};
use milback_rf::channel::{NodeInterface, TxComponent};
use milback_rf::fsa::Port;
use milback_rf::{wave_fingerprint, with_channel_workspace};
use milback_telemetry as telemetry;

/// Minimum tone separation before falling back to single-carrier OOK:
/// the two envelope-detector branches stop being separable when the tones
/// approach the detector's video bandwidth.
pub const MIN_TONE_SEPARATION: f64 = 100e6;

/// Guard symbols (query running, node silent) before the pilot, so the
/// receiver's filter transients settle outside the payload.
pub const GUARD_SYMBOLS: usize = 6;

/// Outcome of a downlink transfer.
#[derive(Debug, Clone)]
pub struct DownlinkReport {
    /// The carrier plan the AP chose.
    pub tones: ToneSelection,
    /// Decoded payload (if the CRC passed).
    pub payload: Result<Vec<u8>, FrameError>,
    /// Raw bit errors against the transmitted frame bits.
    pub bit_errors: usize,
    /// Total frame bits.
    pub total_bits: usize,
    /// Measured SINR of the weaker detector branch, linear power ratio.
    pub sinr: f64,
    /// Effective decision SNR after per-symbol integration, with the
    /// cross-port interference subtracted from the decision margin —
    /// the quantity BER actually depends on (linear).
    pub decision_snr: f64,
}

/// Outcome of an uplink transfer.
#[derive(Debug, Clone)]
pub struct UplinkReport {
    /// The carrier plan the AP chose.
    pub tones: ToneSelection,
    /// Decoded payload (if the CRC passed).
    pub payload: Result<Vec<u8>, FrameError>,
    /// Raw bit errors against the transmitted frame bits.
    pub bit_errors: usize,
    /// Total frame bits.
    pub total_bits: usize,
    /// Measured SNR of the decision variable (min across branches).
    pub snr: f64,
}

/// Measured SINR of a downlink detector branch: wanted level step squared
/// over (interference + noise) variance, from the known components. This
/// is the paper's Fig. 14 quantity — SINR at the detector output, before
/// symbol integration.
fn branch_sinr(v_signal: f64, v_interference: f64, noise_rms: f64) -> f64 {
    v_signal * v_signal / (v_interference * v_interference + noise_rms * noise_rms)
}

/// Decision SNR of a branch: per-symbol integration averages the white
/// detector noise down by `video_bw/symbol_rate`, while the (symbol-
/// synchronous) cross-port interference subtracts from the decision
/// margin instead.
fn branch_decision_snr(
    v_signal: f64,
    v_interference: f64,
    noise_rms: f64,
    integration_gain: f64,
) -> f64 {
    let margin = (v_signal - v_interference).max(0.0);
    let sigma2 = noise_rms * noise_rms / integration_gain.max(1.0);
    margin * margin / sigma2
}

impl Network {
    /// Renders a pair of per-tone downlink components to both FSA ports,
    /// including the cross-tone leakage each port receives from the other
    /// tone's side lobes. Returns `(at_port_a, at_port_b)`.
    ///
    /// The four port renders share one [`ChannelWorkspace`] borrow and
    /// each component's [`wave_fingerprint`] is computed once, so the
    /// hoisted port tables are reused across ports and transfers.
    ///
    /// [`ChannelWorkspace`]: milback_rf::ChannelWorkspace
    pub(crate) fn render_tones_to_ports(
        &self,
        comp_a: &TxComponent,
        comp_b: &TxComponent,
    ) -> (Signal, Signal) {
        let fp_a = wave_fingerprint(comp_a);
        let fp_b = wave_fingerprint(comp_b);
        let pose = &self.node.pose;
        let fsa = &self.node.fsa;
        with_channel_workspace(|ws| {
            let mut at_a = self
                .scene
                .to_node_port_with(ws, comp_a, fp_a, pose, fsa, Port::A);
            at_a.add(
                &self
                    .scene
                    .to_node_port_with(ws, comp_b, fp_b, pose, fsa, Port::A),
            );
            let mut at_b = self
                .scene
                .to_node_port_with(ws, comp_b, fp_b, pose, fsa, Port::B);
            at_b.add(
                &self
                    .scene
                    .to_node_port_with(ws, comp_a, fp_a, pose, fsa, Port::B),
            );
            (at_a, at_b)
        })
    }

    /// Chooses OAQFM carriers for the node's current (AP-estimated)
    /// orientation. Uses the true orientation when `use_truth` — handy in
    /// microbenchmarks — otherwise runs AP-side orientation sensing first.
    pub fn plan_tones(&mut self, use_truth: bool) -> Option<ToneSelection> {
        let orientation = if use_truth {
            self.true_orientation()
        } else {
            self.sense_orientation_at_ap()?
        };
        select_tones(&self.node.fsa, orientation, MIN_TONE_SEPARATION)
    }

    /// Runs a full downlink transfer of `payload` at `symbol_rate`
    /// symbols/s. `use_truth` short-circuits orientation sensing (for
    /// microbenchmarks); the end-to-end path senses first.
    pub fn downlink(
        &mut self,
        payload: &[u8],
        symbol_rate: f64,
        use_truth: bool,
    ) -> Option<DownlinkReport> {
        let _span = telemetry::span("core.link.downlink.ns");
        let tones = self.plan_tones(use_truth)?;
        let frame = encode_frame(payload);
        let report = match tones {
            ToneSelection::Dual { f_a, f_b } => {
                self.downlink_dual(payload, &frame, f_a, f_b, symbol_rate, tones)
            }
            ToneSelection::Single { f } => {
                self.downlink_ook(payload, &frame, f, symbol_rate, tones)
            }
        };
        telemetry::counter_add("core.link.downlink.frames", 1);
        telemetry::counter_add("core.link.downlink.bits", report.total_bits as u64);
        telemetry::counter_add("core.link.downlink.bit_errors", report.bit_errors as u64);
        // Node energy over the transfer, from the hw power model: OAQFM
        // carries 2 bits/symbol, OOK 1 — either way `total_bits` symbols'
        // worth of airtime bounds the draw at the downlink power level.
        let duration_s = report.total_bits as f64 / (2.0 * symbol_rate);
        let energy_nj = self.node.power.power_mw(NodeMode::Downlink) * duration_s * 1e6;
        telemetry::observe("node.energy.downlink_nj", energy_nj as u64);
        Some(report)
    }

    fn downlink_dual(
        &mut self,
        payload: &[u8],
        frame: &[OaqfmSymbol],
        f_a: f64,
        f_b: f64,
        symbol_rate: f64,
        tones: ToneSelection,
    ) -> DownlinkReport {
        // Pilot + frame, so the node's threshold sees both levels early.
        let mut symbols: Vec<OaqfmSymbol> = UPLINK_PILOT.to_vec();
        symbols.extend_from_slice(frame);

        // Simulation bandwidth needs to cover both tones comfortably; the
        // waveform is generated per tone so each FSA port sees its own
        // frequency-dependent gain.
        let fs = self.downlink_fs(f_a, f_b);
        let fc = 0.5 * (f_a + f_b);
        let mut tx = self.ap.tx;
        tx.fs = fs;
        let n_symbols = symbols.len();
        let bits_a: Vec<bool> = symbols.iter().map(|s| s.a_on).collect();
        let bits_b: Vec<bool> = symbols.iter().map(|s| s.b_on).collect();
        // Each tone at half the total power (√2 amplitude split).
        let mut wave_a = waveform::ook_waveform(&tx, fc, f_a, &bits_a, symbol_rate);
        let mut wave_b = waveform::ook_waveform(&tx, fc, f_b, &bits_b, symbol_rate);
        wave_a.scale(1.0 / 2f64.sqrt());
        wave_b.scale(1.0 / 2f64.sqrt());
        let comp_a = TxComponent::tone(wave_a, f_a);
        let comp_b = TxComponent::tone(wave_b, f_b);

        // Signal at each FSA port = wanted tone + cross-tone leakage.
        let (at_a, at_b) = self.render_tones_to_ports(&comp_a, &comp_b);

        // SINR bookkeeping from the known components (steady-state levels).
        let inc = self.node.pose.incidence_from(&self.scene.tx_pos);
        let p_tx_tone = self.ap.tx.amplitude().powi(2) / 2.0;
        let chain = self.node_chain_gain();
        let g = |port: Port, f: f64| {
            self.scene
                .tone_gain_to_port(&self.node.pose, &self.node.fsa, port, f)
                * chain
        };
        let _ = inc;
        let v = |p: f64| self.node.detector.ideal_output(p);
        let noise = self.node.detector.output_noise_rms();
        let sinr_a = branch_sinr(
            v(p_tx_tone * g(Port::A, f_a)),
            v(p_tx_tone * g(Port::A, f_b)),
            noise,
        );
        let sinr_b = branch_sinr(
            v(p_tx_tone * g(Port::B, f_b)),
            v(p_tx_tone * g(Port::B, f_a)),
            noise,
        );
        let integration = self.node.detector.video_bandwidth / symbol_rate;
        let dec_a = branch_decision_snr(
            v(p_tx_tone * g(Port::A, f_a)),
            v(p_tx_tone * g(Port::A, f_b)),
            noise,
            integration,
        );
        let dec_b = branch_decision_snr(
            v(p_tx_tone * g(Port::B, f_b)),
            v(p_tx_tone * g(Port::B, f_a)),
            noise,
            integration,
        );

        // Node receive + demodulate.
        let det_a = self.node_video(&at_a);
        let det_b = self.node_video(&at_b);
        let slicer = EnvelopeSlicer::new(fs, symbol_rate);
        let got = demodulate_oaqfm(&slicer, &det_a, &det_b, 0.0, n_symbols);
        let got_frame = &got[UPLINK_PILOT.len()..];

        let sent_bits = symbols_to_bits(frame);
        let got_bits = symbols_to_bits(got_frame);
        let errors = bit_errors(&sent_bits, &got_bits);
        DownlinkReport {
            tones,
            payload: decode_frame(got_frame, payload.len()),
            bit_errors: errors,
            total_bits: sent_bits.len(),
            sinr: sinr_a.min(sinr_b),
            decision_snr: dec_a.min(dec_b),
        }
    }

    fn downlink_ook(
        &mut self,
        payload: &[u8],
        frame: &[OaqfmSymbol],
        f: f64,
        symbol_rate: f64,
        tones: ToneSelection,
    ) -> DownlinkReport {
        // OOK fallback: 1 bit per symbol on a single carrier.
        let frame_bits = symbols_to_bits(frame);
        let mut bits = vec![true, false, true, false]; // pilot
        bits.extend_from_slice(&frame_bits);

        let fs = 16.0 * symbol_rate;
        let mut tx = self.ap.tx;
        tx.fs = fs;
        let wave = waveform::ook_waveform(&tx, f, f, &bits, symbol_rate);
        let comp = TxComponent::tone(wave, f);
        let at_a = self
            .scene
            .to_node_port(&comp, &self.node.pose, &self.node.fsa, Port::A);
        let at_b = self
            .scene
            .to_node_port(&comp, &self.node.pose, &self.node.fsa, Port::B);

        let p_tx = self.ap.tx.amplitude().powi(2);
        let chain = self.node_chain_gain();
        let g_a = self
            .scene
            .tone_gain_to_port(&self.node.pose, &self.node.fsa, Port::A, f);
        let v_sig = self.node.detector.ideal_output(p_tx * g_a * chain);
        let noise = self.node.detector.output_noise_rms();
        let sinr = branch_sinr(v_sig, 0.0, noise);
        let integration = self.node.detector.video_bandwidth / symbol_rate;
        let decision_snr = branch_decision_snr(v_sig, 0.0, noise, integration);

        let det_a = self.node_video(&at_a);
        let det_b = self.node_video(&at_b);
        let slicer = EnvelopeSlicer::new(fs, symbol_rate);
        let got_bits_all = demodulate_ook(&slicer, &det_a, &det_b, 0.0, bits.len());
        let got_bits = &got_bits_all[4..];
        let errors = bit_errors(&frame_bits, got_bits);
        let got_frame = bits_to_symbols(got_bits);
        DownlinkReport {
            tones,
            payload: decode_frame(&got_frame, payload.len()),
            bit_errors: errors,
            total_bits: frame_bits.len(),
            sinr,
            decision_snr,
        }
    }

    /// Runs a full uplink transfer of `payload` at `symbol_rate`
    /// symbols/s.
    pub fn uplink(
        &mut self,
        payload: &[u8],
        symbol_rate: f64,
        use_truth: bool,
    ) -> Option<UplinkReport> {
        let _span = telemetry::span("core.link.uplink.ns");
        let tones = self.plan_tones(use_truth)?;
        let (f_a, f_b) = match tones {
            ToneSelection::Dual { f_a, f_b } => (f_a, f_b),
            // Normal incidence: both ports reflect the same tone; the AP
            // still decodes two branches but they carry the same bit —
            // handled by using the same frequency on both branches.
            ToneSelection::Single { f } => (f, f),
        };

        let frame = encode_frame(payload);
        let mut symbols: Vec<OaqfmSymbol> = UPLINK_PILOT.to_vec();
        symbols.extend_from_slice(&frame);
        let n_symbols = symbols.len();

        // Query waveform: guard before and after the modulated payload.
        let fs = self.downlink_fs(f_a, f_b);
        let fc = 0.5 * (f_a + f_b);
        let t0 = GUARD_SYMBOLS as f64 / symbol_rate;
        let total_t = (n_symbols + 2 * GUARD_SYMBOLS) as f64 / symbol_rate;
        let mut tx = self.ap.tx;
        tx.fs = fs;
        let n = (total_t * fs).round() as usize;
        let amp = tx.amplitude() / 2f64.sqrt();
        // Each query tone is rendered as its own channel component so the
        // node's FSA gain is evaluated at that tone's frequency (the whole
        // point of OAQFM: each tone talks to one port's beam). Query tones
        // only depend on the carrier plan, so repeated transfers pull them
        // from the template cache instead of re-synthesizing.
        let tone_a = milback_dsp::template::tone(fs, fc, f_a - fc, amp, n)
            .as_ref()
            .clone();
        let tone_b = milback_dsp::template::tone(fs, fc, f_b - fc, amp, n)
            .as_ref()
            .clone();
        let comp_a = TxComponent::tone(tone_a, f_a);
        let comp_b = TxComponent::tone(tone_b, f_b);

        // The node modulates its ports per symbol. A symbol rate beyond
        // the switch's capability is a planning error, not a physics
        // outcome — reject the transfer gracefully instead of panicking.
        let (sched_a, sched_b) = match modulate_uplink(&self.node.switch, &symbols, t0, symbol_rate)
        {
            Ok(s) => s,
            Err(_) => {
                telemetry::counter_add("core.link.uplink.rejected", 1);
                return None;
            }
        };
        // Four monostatic renders (two tones × two RX antennas) share one
        // workspace borrow; the per-tone ray tables and static responses
        // are built once and replayed for the other antenna/transfer.
        let (rx0, rx1) = {
            let gamma = self.node.gamma_schedule(&sched_a, &sched_b);
            let node_if = NodeInterface {
                pose: self.node.pose,
                fsa: &self.node.fsa,
                gamma: &gamma,
            };
            let nodes = std::slice::from_ref(&node_if);
            let fp_a = wave_fingerprint(&comp_a);
            let fp_b = wave_fingerprint(&comp_b);
            with_channel_workspace(|ws| {
                let mut rx0 = Signal::zeros(fs, fc, comp_a.signal.len());
                let mut rx1 = Signal::zeros(fs, fc, comp_a.signal.len());
                let mut tmp = Signal::zeros(fs, fc, comp_a.signal.len());
                self.scene
                    .monostatic_rx_multi_into(ws, &comp_a, fp_a, nodes, 0, &mut rx0);
                self.scene
                    .monostatic_rx_multi_into(ws, &comp_b, fp_b, nodes, 0, &mut tmp);
                rx0.add(&tmp);
                self.scene
                    .monostatic_rx_multi_into(ws, &comp_a, fp_a, nodes, 1, &mut rx1);
                self.scene
                    .monostatic_rx_multi_into(ws, &comp_b, fp_b, nodes, 1, &mut tmp);
                rx1.add(&tmp);
                (rx0, rx1)
            })
        };
        let (mut rx0, mut rx1) = (rx0, rx1);
        // Scheduled impairments act on the AP's captures post-synthesis
        // (no-op, bitwise, when the plan is empty).
        self.faults.apply_to_rx(self.clock_s, 0, &mut rx0);
        self.faults.apply_to_rx(self.clock_s, 1, &mut rx1);

        let mut receiver = UplinkReceiver::milback(symbol_rate);
        // Uplink noise figure: the LNA's own 3 dB (the node's reflected
        // signal is the weak one; the scope contribution is lumped into
        // the node's implementation loss).
        receiver.lna.nf_db = 3.0;
        let mut rng = self.fork_rng();
        let (got, stats) = receiver.demodulate(&rx0, &rx1, f_a, f_b, t0, n_symbols, &mut rng);
        let got_frame = &got[UPLINK_PILOT.len()..];

        let sent_bits = symbols_to_bits(&frame);
        let got_bits = symbols_to_bits(got_frame);
        let errors = bit_errors(&sent_bits, &got_bits);
        telemetry::counter_add("core.link.uplink.frames", 1);
        telemetry::counter_add("core.link.uplink.bits", sent_bits.len() as u64);
        telemetry::counter_add("core.link.uplink.bit_errors", errors as u64);
        let bit_rate = 2.0 * symbol_rate;
        let energy_nj = self.node.power.power_mw(NodeMode::Uplink { bit_rate })
            * (sent_bits.len() as f64 / bit_rate)
            * 1e6;
        telemetry::observe("node.energy.uplink_nj", energy_nj as u64);
        Some(UplinkReport {
            tones,
            payload: decode_frame(got_frame, payload.len()),
            bit_errors: errors,
            total_bits: sent_bits.len(),
            snr: stats.snr,
        })
    }

    /// Simulation sample rate covering two tones `f_a`/`f_b` around their
    /// midpoint with margin.
    fn downlink_fs(&self, f_a: f64, f_b: f64) -> f64 {
        let span = (f_a - f_b).abs();
        (2.5 * span).max(200e6)
    }

    /// Power gain of the node's receive chain after the FSA port (switch
    /// through-loss × one-way implementation loss).
    fn node_chain_gain(&self) -> f64 {
        self.node.switch.through_gain() * 10f64.powf(-self.node.impl_loss_db / 10.0)
    }

    /// Renders one port's video-rate detector output for a signal at the
    /// port.
    fn node_video(&mut self, at_port: &Signal) -> Vec<f64> {
        let mut rng = self.fork_rng();
        let mut video = self.node.receive_port_video(at_port, &mut rng);
        // Node-side impairments on the detector output (no-op when the
        // fault plan is empty).
        self.faults
            .apply_to_video(self.clock_s, at_port.fs, &mut video);
        video
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Fidelity;
    use milback_rf::geometry::{deg_to_rad, Pose};

    #[test]
    fn downlink_clean_at_2m() {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
        let mut net = Network::new(pose, Fidelity::Fast, 11);
        let payload: Vec<u8> = (0..16).collect();
        let report = net.downlink(&payload, 1e6, true).expect("no tones");
        assert!(matches!(report.tones, ToneSelection::Dual { .. }));
        assert_eq!(report.bit_errors, 0, "sinr {}", report.sinr);
        assert_eq!(report.payload.as_deref().unwrap(), &payload[..]);
        assert!(report.sinr > 10.0, "sinr {}", report.sinr);
    }

    #[test]
    fn downlink_ook_fallback_at_normal_incidence() {
        let pose = Pose::facing_ap(2.0, 0.0, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, 12);
        let payload = vec![0xA5; 8];
        let report = net.downlink(&payload, 1e6, true).expect("no tones");
        assert!(matches!(report.tones, ToneSelection::Single { .. }));
        assert_eq!(report.bit_errors, 0);
        assert_eq!(report.payload.as_deref().unwrap(), &payload[..]);
    }

    #[test]
    fn uplink_clean_at_2m() {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
        let mut net = Network::new(pose, Fidelity::Fast, 13);
        let payload: Vec<u8> = (0..8).map(|i| i * 17).collect();
        let report = net.uplink(&payload, 5e6, true).expect("no tones");
        assert_eq!(report.bit_errors, 0, "snr {}", report.snr);
        assert_eq!(report.payload.as_deref().unwrap(), &payload[..]);
        assert!(report.snr > 10.0, "snr {}", report.snr);
    }

    #[test]
    fn downlink_with_sensed_orientation() {
        // The full paper pipeline: sense orientation, pick tones, send.
        // 3–4° orientation error must not break communication (§9.3).
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(10.0));
        let mut net = Network::new(pose, Fidelity::Fast, 14);
        let payload = vec![0x5A; 8];
        let report = net.downlink(&payload, 1e6, false).expect("no tones");
        assert_eq!(report.bit_errors, 0, "sinr {}", report.sinr);
    }

    #[test]
    fn uplink_snr_drops_with_distance() {
        let mut snrs = Vec::new();
        for d in [2.0, 4.0, 6.0] {
            let pose = Pose::facing_ap(d, 0.0, deg_to_rad(12.0));
            let mut net = Network::new(pose, Fidelity::Fast, 15);
            let report = net.uplink(&[0x33; 4], 5e6, true).expect("no tones");
            snrs.push(report.snr);
        }
        assert!(snrs[0] > snrs[1] && snrs[1] > snrs[2], "{snrs:?}");
    }
}
