//! Ablation experiments: what breaks when each design choice of MilBack
//! is removed or varied. These back the design claims the paper makes in
//! prose (the necessity of background subtraction, of orientation-
//! assisted carrier selection, of five-chirp trains) and quantify the
//! §9.4/§9.5 rate limits.

use crate::batch;
use crate::config::Fidelity;
use crate::dense_link::DenseDownlinkReport;
use crate::network::Network;
use milback_dsp::detect::{argmax, parabolic_refine};
use milback_dsp::noise::ratio_to_db;
use milback_dsp::stats;
use milback_dsp::window::Window;
use milback_proto::dense::DenseConstellation;
use milback_rf::fsa::Port;
use milback_rf::geometry::{deg_to_rad, Pose};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------
// Background subtraction on/off
// ---------------------------------------------------------------------

/// One row of the background-subtraction ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubtractionRow {
    /// Node distance, m.
    pub distance_m: f64,
    /// Trials where the *subtracted* pipeline found the node within
    /// 25 cm.
    pub with_ok: usize,
    /// Trials where a *single-chirp, no-subtraction* pipeline found the
    /// node within 25 cm (it usually locks onto clutter instead).
    pub without_ok: usize,
    /// Total trials.
    pub trials: usize,
}

/// Ranging with and without background subtraction (paper §5.1: "the
/// node's reflection is much weaker than the reflection of some other
/// objects").
pub fn ablation_background_subtraction(trials: usize, seed: u64) -> Vec<SubtractionRow> {
    // Randomness drawn serially up front, simulations on the batch engine.
    let mut master = StdRng::seed_from_u64(seed);
    let inputs: Vec<(f64, u64, f64)> = [2.0, 4.0, 6.0]
        .iter()
        .flat_map(|&d| {
            (0..trials)
                .map(|_| {
                    let trial_seed: u64 = master.gen();
                    let phi = deg_to_rad(master.gen_range(-10.0..10.0));
                    (d, trial_seed, phi)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let results = batch::par_map(&inputs, |&(d, trial_seed, phi), _| {
        let pose = Pose::facing_ap(d, phi, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, trial_seed);

        // With subtraction: the standard pipeline.
        let with_ok = net
            .localize()
            .map(|fix| (fix.range - d).abs() < 0.25)
            .unwrap_or(false);

        // Without: peak of a single chirp's raw range profile.
        let (tx, captures) = net.field2_captures();
        let loc = net.localizer();
        let profile = loc
            .proc
            .range_profile(&loc.proc.dechirp(&captures[0][0], &tx));
        let power: Vec<f64> = profile.iter().map(|c| c.norm_sq()).collect();
        // Same search window as the localizer.
        let fs = tx.fs;
        let half = power.len() / 2;
        let bin_lo = (0.5 / loc.proc.bin_to_range(1.0, fs)) as usize;
        let window = &power[bin_lo..half];
        let without_ok = argmax(window)
            .map(|rel| {
                let peak = bin_lo + rel;
                let refined = parabolic_refine(&power[..half], peak);
                let range = loc.proc.bin_to_range(refined, fs);
                (range - d).abs() < 0.25
            })
            .unwrap_or(false);
        (with_ok, without_ok)
    });
    results
        .chunks(trials.max(1))
        .zip([2.0, 4.0, 6.0])
        .map(|(chunk, d)| SubtractionRow {
            distance_m: d,
            with_ok: chunk.iter().filter(|(w, _)| *w).count(),
            without_ok: chunk.iter().filter(|(_, wo)| *wo).count(),
            trials,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Orientation assistance on/off
// ---------------------------------------------------------------------

/// One row of the orientation-assistance ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssistRow {
    /// Node orientation, degrees.
    pub orientation_deg: f64,
    /// Downlink SINR with orientation-selected tones, dB.
    pub assisted_sinr_db: f64,
    /// Downlink SINR with fixed tones chosen for 0° orientation, dB.
    pub fixed_sinr_db: f64,
}

/// Downlink SINR across orientations with and without orientation-aware
/// carrier selection — the "OA" in OAQFM (paper §6.1–6.2).
pub fn ablation_orientation_assist(seed: u64) -> Vec<AssistRow> {
    let orientations = [4.0f64, 8.0, 12.0, 16.0, 20.0];
    batch::par_map(&orientations, |&odeg, _| {
        // ψ = −orientation so the node's incidence angle equals `odeg`.
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(-odeg));
        // Assisted: tones for the true orientation.
        let mut net = Network::new(pose, Fidelity::Fast, seed);
        let assisted = net
            .downlink(&[0xA5; 8], 1e6, true)
            .map(|r| ratio_to_db(r.sinr))
            .unwrap_or(f64::NEG_INFINITY);
        // Fixed: evaluate the link budget with ±5°-orientation tones
        // (a "blind" AP that ignores the node's rotation).
        let net = Network::new(pose, Fidelity::Fast, seed);
        let fsa = net.node.fsa;
        // Both angles sit inside the FSA's scan range by construction;
        // if a config change ever moves them out, report the misalign
        // penalty as unbounded rather than panicking mid-batch.
        let (Some(f_fixed_a), Some(f_right_a)) = (
            fsa.frequency_for_angle(Port::A, deg_to_rad(5.0)),
            fsa.frequency_for_angle(Port::A, net.true_orientation()),
        ) else {
            return AssistRow {
                orientation_deg: odeg,
                assisted_sinr_db: assisted,
                fixed_sinr_db: f64::NEG_INFINITY,
            };
        };
        let g_fixed =
            net.scene
                .tone_gain_to_port(&net.node.pose, &net.node.fsa, Port::A, f_fixed_a);
        let g_right =
            net.scene
                .tone_gain_to_port(&net.node.pose, &net.node.fsa, Port::A, f_right_a);
        // Fixed-tone SINR = assisted SINR minus the beam misalignment loss.
        let fixed = assisted - ratio_to_db(g_right / g_fixed);
        AssistRow {
            orientation_deg: odeg,
            assisted_sinr_db: assisted,
            fixed_sinr_db: fixed,
        }
    })
}

// ---------------------------------------------------------------------
// Chirp-count sweep
// ---------------------------------------------------------------------

/// One row of the chirp-count ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChirpCountRow {
    /// Chirps per localization burst.
    pub n_chirps: usize,
    /// Detection successes out of `trials`.
    pub detections: usize,
    /// Mean |range error| over successful trials, cm.
    pub mean_err_cm: f64,
    /// Trials run.
    pub trials: usize,
}

/// Localization quality vs the number of Field-2 chirps (the paper uses
/// five: four pairwise differences).
pub fn ablation_chirp_count(trials: usize, seed: u64) -> Vec<ChirpCountRow> {
    let mut master = StdRng::seed_from_u64(seed);
    let d = 5.0;
    let chirp_counts = [2usize, 3, 5, 7, 9];
    let inputs: Vec<(usize, u64, f64)> = chirp_counts
        .iter()
        .flat_map(|&n_chirps| {
            (0..trials)
                .map(|_| {
                    let trial_seed: u64 = master.gen();
                    let phi = deg_to_rad(master.gen_range(-10.0..10.0));
                    (n_chirps, trial_seed, phi)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let results = batch::par_map(&inputs, |&(n_chirps, trial_seed, phi), _| {
        let pose = Pose::facing_ap(d, phi, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, trial_seed);
        let (tx, captures) = net.field2_captures_n(n_chirps);
        let loc = net.localizer();
        loc.process(&tx, &captures)
            .map(|fix| (fix.range - d).abs())
            .filter(|err| *err < 0.5)
    });
    results
        .chunks(trials.max(1))
        .zip(chirp_counts)
        .map(|(chunk, n_chirps)| {
            let errs: Vec<f64> = chunk.iter().filter_map(|e| *e).collect();
            ChirpCountRow {
                n_chirps,
                detections: errs.len(),
                mean_err_cm: stats::mean(&errs) * 100.0,
                trials,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Range-FFT window sweep
// ---------------------------------------------------------------------

/// One row of the window ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowRow {
    /// Window used for the range FFT.
    pub window: Window,
    /// Detection successes out of `trials`.
    pub detections: usize,
    /// Mean |range error| over successes, cm.
    pub mean_err_cm: f64,
    /// Trials run.
    pub trials: usize,
}

/// Ranging under clutter with different range-FFT windows: rectangular
/// leaks clutter side lobes over the node; Hann (the default) is the
/// standard compromise.
pub fn ablation_window(trials: usize, seed: u64) -> Vec<WindowRow> {
    let mut master = StdRng::seed_from_u64(seed);
    let d = 5.0;
    let windows = [Window::Rect, Window::Hann, Window::Blackman];
    let inputs: Vec<(Window, u64, f64)> = windows
        .iter()
        .flat_map(|&window| {
            (0..trials)
                .map(|_| {
                    let trial_seed: u64 = master.gen();
                    let phi = deg_to_rad(master.gen_range(-10.0..10.0));
                    (window, trial_seed, phi)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let results = batch::par_map(&inputs, |&(window, trial_seed, phi), _| {
        let pose = Pose::facing_ap(d, phi, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, trial_seed);
        let (tx, captures) = net.field2_captures();
        let mut loc = net.localizer();
        loc.proc.window = window;
        loc.process(&tx, &captures)
            .map(|fix| (fix.range - d).abs())
            .filter(|err| *err < 0.5)
    });
    results
        .chunks(trials.max(1))
        .zip(windows)
        .map(|(chunk, window)| {
            let errs: Vec<f64> = chunk.iter().filter_map(|e| *e).collect();
            WindowRow {
                window,
                detections: errs.len(),
                mean_err_cm: stats::mean(&errs) * 100.0,
                trials,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Uplink symbol-rate sweep (to the switch cap)
// ---------------------------------------------------------------------

/// One row of the rate sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateRow {
    /// Raw uplink bit rate, Mbps.
    pub bit_rate_mbps: f64,
    /// Whether the switch supports the rate at all (§9.5's 160 Mbps cap).
    pub supported: bool,
    /// Measured decision SNR, dB (supported rates only).
    pub snr_db: f64,
    /// Measured bit errors in one frame.
    pub bit_errors: usize,
}

/// Uplink performance vs bit rate at a fixed distance, up to and beyond
/// the switch's toggle limit.
pub fn ablation_uplink_rate(distance_m: f64, seed: u64) -> Vec<RateRow> {
    let pose = Pose::facing_ap(distance_m, 0.0, deg_to_rad(15.0));
    let rates = [10.0, 20.0, 40.0, 80.0, 160.0, 200.0];
    batch::par_map(&rates, |&mbps, _| {
        let symbol_rate = mbps * 1e6 / 2.0;
        let net = Network::new(pose, Fidelity::Fast, seed);
        let supported = net.node.switch.supports_rate(symbol_rate);
        if !supported {
            return Some(RateRow {
                bit_rate_mbps: mbps,
                supported: false,
                snr_db: f64::NEG_INFINITY,
                bit_errors: 0,
            });
        }
        let mut net = Network::new(pose, Fidelity::Fast, seed);
        net.uplink(&[0x6C; 16], symbol_rate, true).map(|r| RateRow {
            bit_rate_mbps: mbps,
            supported: true,
            snr_db: ratio_to_db(r.snr),
            bit_errors: r.bit_errors,
        })
    })
    .into_iter()
    .flatten()
    .collect()
}

// ---------------------------------------------------------------------
// Dense OAQFM sweep
// ---------------------------------------------------------------------

/// One row of the dense-constellation sweep.
#[derive(Debug, Clone)]
pub struct DenseRow {
    /// Amplitude levels per tone.
    pub levels: u8,
    /// Node distance, m.
    pub distance_m: f64,
    /// Effective raw bit rate, Mbps.
    pub bit_rate_mbps: f64,
    /// The transfer report.
    pub report: Option<DenseDownlinkReport>,
}

/// Dense-OAQFM downlink across constellations and distances (the §9.4
/// extension): rate doubles per level doubling, range shrinks.
pub fn ablation_dense_oaqfm(seed: u64) -> Vec<DenseRow> {
    let cells: Vec<(u8, f64)> = [2u8, 4, 8]
        .iter()
        .flat_map(|&levels| [2.0, 5.0, 8.0, 11.0, 14.0].map(|d| (levels, d)))
        .collect();
    batch::par_map(&cells, |&(levels, d), _| {
        let c = DenseConstellation::new(levels);
        // 12°: realistic tone separation where cross-port leakage also
        // eats into the dense margins.
        let pose = Pose::facing_ap(d, 0.0, deg_to_rad(12.0));
        let mut net = Network::new(pose, Fidelity::Fast, seed + levels as u64);
        let report = net.downlink_dense(&[0x96; 16], 1e6, c, true);
        DenseRow {
            levels,
            distance_m: d,
            bit_rate_mbps: c.bits_per_symbol() as f64,
            report,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtraction_is_essential() {
        let rows = ablation_background_subtraction(4, 91);
        for r in &rows {
            assert_eq!(
                r.with_ok, r.trials,
                "subtracted pipeline failed at {} m",
                r.distance_m
            );
        }
        // Without subtraction the raw profile locks onto clutter at least
        // somewhere.
        let total_without: usize = rows.iter().map(|r| r.without_ok).sum();
        let total_with: usize = rows.iter().map(|r| r.with_ok).sum();
        assert!(
            total_without < total_with,
            "{total_without} vs {total_with}"
        );
    }

    #[test]
    fn orientation_assist_pays_off_at_large_angles() {
        let rows = ablation_orientation_assist(92);
        // At 20° the fixed-tone link loses double-digit dB.
        let r20 = rows.iter().find(|r| r.orientation_deg == 20.0).unwrap();
        assert!(
            r20.assisted_sinr_db - r20.fixed_sinr_db > 10.0,
            "assist gain {}",
            r20.assisted_sinr_db - r20.fixed_sinr_db
        );
        // At small angles the penalty is small.
        let r4 = rows.iter().find(|r| r.orientation_deg == 4.0).unwrap();
        assert!(r4.assisted_sinr_db - r4.fixed_sinr_db < 6.0);
    }

    #[test]
    fn more_chirps_never_hurt() {
        let rows = ablation_chirp_count(4, 93);
        let det2 = rows.iter().find(|r| r.n_chirps == 2).unwrap().detections;
        let det5 = rows.iter().find(|r| r.n_chirps == 5).unwrap().detections;
        assert!(det5 >= det2);
    }

    #[test]
    fn rate_sweep_caps_at_160() {
        let rows = ablation_uplink_rate(3.0, 94);
        let at160 = rows.iter().find(|r| r.bit_rate_mbps == 160.0).unwrap();
        assert!(at160.supported);
        let at200 = rows.iter().find(|r| r.bit_rate_mbps == 200.0).unwrap();
        assert!(!at200.supported);
        // SNR decreases with rate among supported rows.
        let snr10 = rows
            .iter()
            .find(|r| r.bit_rate_mbps == 10.0)
            .unwrap()
            .snr_db;
        let snr160 = at160.snr_db;
        assert!(snr10 > snr160 + 6.0, "{snr10} vs {snr160}");
    }
}
