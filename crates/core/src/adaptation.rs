//! Link adaptation and reliable delivery: rate fallback driven by the
//! measured decision SNR, and stop-and-wait ARQ over the simulated
//! channel.
//!
//! The paper reports fixed-rate curves (Figs. 14/15); a deployed network
//! needs the loop that *chooses* the rate — provided here — and recovery
//! when a frame still dies (the [`milback_proto::arq`] machine, driven
//! end-to-end).

use crate::link::UplinkReport;
use crate::network::Network;
use milback_proto::arq::{parse_header, ArqReceiver, ArqSender, ArqVerdict};

/// Candidate uplink bit rates, fastest first (OAQFM, 2 bits/symbol).
pub const UPLINK_RATES: [f64; 4] = [40e6, 20e6, 10e6, 5e6];

/// Decision-SNR margin (linear) required to accept a rate: ~13 dB keeps
/// the analytic BER under 1e-5.
pub const SNR_ACCEPT: f64 = 20.0;

/// Outcome of an adaptive uplink transfer.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// The rate that was accepted, bits/s.
    pub bit_rate: f64,
    /// Rates that were probed and rejected, fastest first.
    pub rejected: Vec<f64>,
    /// The transfer at the accepted rate.
    pub report: UplinkReport,
}

impl Network {
    /// Uplink with rate fallback: probe from the fastest candidate down,
    /// accept the first rate whose frame decodes cleanly with SNR margin.
    /// Returns `None` when even the slowest rate fails (out of range).
    pub fn uplink_adaptive(&mut self, payload: &[u8]) -> Option<AdaptiveReport> {
        let mut rejected = Vec::new();
        for &rate in &UPLINK_RATES {
            let symbol_rate = rate / 2.0;
            if let Some(report) = self.uplink(payload, symbol_rate, true) {
                if report.bit_errors == 0 && report.payload.is_ok() && report.snr >= SNR_ACCEPT {
                    return Some(AdaptiveReport {
                        bit_rate: rate,
                        rejected,
                        report,
                    });
                }
            }
            rejected.push(rate);
        }
        None
    }

    /// Reliable uplink: stop-and-wait ARQ over the real simulated link.
    /// Each attempt is a full uplink transfer; the "ACK" is the AP's CRC
    /// verdict (the downlink ACK itself is assumed reliable — it enjoys
    /// one-way path loss). Returns the number of transmissions used, or
    /// `None` if the sender gave up.
    pub fn uplink_reliable(
        &mut self,
        payload: &[u8],
        symbol_rate: f64,
        max_attempts: usize,
    ) -> Option<usize> {
        let mut tx = ArqSender::new(max_attempts);
        let mut rx = ArqReceiver::new();
        // The verdict API keeps one header+payload buffer inside the
        // sender for the whole retry loop — no per-retry clone, which
        // keeps this path on the zero-alloc budget of DESIGN.md §12.
        tx.start(payload);
        let mut attempts = 0;
        loop {
            attempts += 1;
            // One over-the-air transfer of the in-flight ARQ frame,
            // borrowed straight out of the sender.
            let outcome = self.uplink(tx.frame()?, symbol_rate, true)?;
            let ack = match outcome.payload {
                Ok(received) => {
                    // AP got a CRC-valid frame: run the receiver side.
                    rx.on_frame(&received).map(|(ack, _)| ack)
                }
                Err(_) => None, // corrupted: no ACK
            };
            match tx.on_ack_verdict(ack) {
                ArqVerdict::Delivered => return Some(attempts),
                ArqVerdict::GiveUp => return None,
                ArqVerdict::Retry => {}
            }
        }
    }
}

/// Sanity helper for tests: the ARQ frame's header survives the trip.
pub fn arq_payload_of(frame: &[u8]) -> Option<&[u8]> {
    parse_header(frame).map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Fidelity;
    use milback_rf::geometry::{deg_to_rad, Pose};

    #[test]
    fn adaptive_picks_fast_rate_up_close() {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(15.0));
        let mut net = Network::new(pose, Fidelity::Fast, 71);
        let r = net.uplink_adaptive(&[0x42; 12]).expect("no link at 2 m");
        assert_eq!(r.bit_rate, 40e6, "rejected: {:?}", r.rejected);
        assert!(r.rejected.is_empty());
    }

    #[test]
    fn adaptive_falls_back_at_range() {
        let pose = Pose::facing_ap(9.0, 0.0, deg_to_rad(15.0));
        let mut net = Network::new(pose, Fidelity::Fast, 72);
        let r = net.uplink_adaptive(&[0x42; 12]).expect("no link at 9 m");
        assert!(r.bit_rate < 40e6, "should have fallen back from 40 Mbps");
        assert!(!r.rejected.is_empty());
        assert_eq!(r.report.bit_errors, 0);
    }

    #[test]
    fn reliable_uplink_single_attempt_when_clean() {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(15.0));
        let mut net = Network::new(pose, Fidelity::Fast, 73);
        let attempts = net.uplink_reliable(&[0x10; 8], 5e6, 4).expect("gave up");
        assert_eq!(attempts, 1);
    }

    #[test]
    fn reliable_uplink_retries_then_succeeds_or_gives_up() {
        // Push the link to a regime with occasional frame loss.
        let pose = Pose::facing_ap(11.0, 0.0, deg_to_rad(15.0));
        let mut net = Network::new(pose, Fidelity::Fast, 74);
        // Either it delivers (possibly with retries) or honestly gives up;
        // both are legitimate — what must not happen is a panic or a
        // false "delivered" with corrupted bytes (the CRC gate prevents
        // that by construction).
        let _ = net.uplink_reliable(&[0x99; 16], 20e6, 3);
    }

    #[test]
    fn arq_header_helper() {
        let mut tx = milback_proto::arq::ArqSender::new(2);
        let frame = tx.send(b"zz");
        assert_eq!(arq_payload_of(&frame), Some(&b"zz"[..]));
    }
}
