//! Link adaptation and reliable delivery (DESIGN.md §18): the
//! closed-loop [`LinkPolicy`] controller, per-transfer rate fallback
//! driven by the measured decision SNR, stop-and-wait ARQ over the
//! simulated channel, and the adaptive-vs-fixed chaos evaluation behind
//! `bench_engine --adaptive`.
//!
//! The paper reports fixed-rate curves (Figs. 14/15); a deployed network
//! needs the loop that *chooses* the rate — provided here — and recovery
//! when a frame still dies (the [`milback_proto::arq`] machine, driven
//! end-to-end).
//!
//! [`LinkPolicy`] is the per-node controller: it consumes one
//! [`PolicyFeedback`] per supervised exchange (built from the
//! [`SessionReport`]/[`SessionError`] the session supervisor already
//! emits) and plans the next exchange's [`SessionConfig`] — uplink
//! symbol rate stepped down/up across [`UPLINK_RATES`] with hysteresis,
//! a forced single-tone OOK fallback when dual-tone discrimination keeps
//! dying, a 5→3 Field-2 chirp trim when the reduced-chirp fallback keeps
//! winning, and a loss-driven ARQ budget/[`milback_proto::arq::Backoff`] stretch. Every
//! decision is a pure integer-counter function of the feedback history —
//! no RNG, no clock — so threading the policy through the serving lanes
//! keeps the parallel==serial bitwise guarantee.

use crate::batch;
use crate::config::Fidelity;
use crate::link::{UplinkReport, MIN_TONE_SEPARATION};
use crate::network::Network;
use crate::session::{
    Degradation, FailureKind, Session, SessionConfig, SessionCtx, SessionError, SessionReport,
};
use milback_ap::tone_select::{select_tones, ToneSelection};
use milback_hw::power::{NodeMode, PowerModel};
use milback_proto::arq::{parse_header, ArqReceiver, ArqSender, ArqVerdict};
use milback_proto::packet::{LinkMode, Packet, PacketConfig};
use milback_rf::faults::{FaultEvent, FaultKind, FaultPlan};
use milback_rf::geometry::{deg_to_rad, Pose};
use milback_telemetry as telemetry;

/// Candidate uplink bit rates, fastest first (OAQFM, 2 bits/symbol).
pub const UPLINK_RATES: [f64; 4] = [40e6, 20e6, 10e6, 5e6];

/// Decision-SNR margin (linear) required to accept a rate: ~13 dB keeps
/// the analytic BER under 1e-5.
pub const SNR_ACCEPT: f64 = 20.0;

/// Outcome of an adaptive uplink transfer.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// The rate that was accepted, bits/s.
    pub bit_rate: f64,
    /// Rates that were probed and rejected, fastest first.
    pub rejected: Vec<f64>,
    /// The transfer at the accepted rate.
    pub report: UplinkReport,
}

impl Network {
    /// Uplink with rate fallback: probe from the fastest candidate down,
    /// accept the first rate whose frame decodes cleanly with SNR margin.
    /// Returns `None` when even the slowest rate fails (out of range).
    pub fn uplink_adaptive(&mut self, payload: &[u8]) -> Option<AdaptiveReport> {
        let mut rejected = Vec::new();
        for &rate in &UPLINK_RATES {
            let symbol_rate = rate / 2.0;
            if let Some(report) = self.uplink(payload, symbol_rate, true) {
                if report.bit_errors == 0 && report.payload.is_ok() && report.snr >= SNR_ACCEPT {
                    return Some(AdaptiveReport {
                        bit_rate: rate,
                        rejected,
                        report,
                    });
                }
            }
            rejected.push(rate);
        }
        None
    }

    /// Reliable uplink: stop-and-wait ARQ over the real simulated link.
    /// Each attempt is a full uplink transfer; the "ACK" is the AP's CRC
    /// verdict (the downlink ACK itself is assumed reliable — it enjoys
    /// one-way path loss). Returns the number of transmissions used, or
    /// `None` if the sender gave up.
    pub fn uplink_reliable(
        &mut self,
        payload: &[u8],
        symbol_rate: f64,
        max_attempts: usize,
    ) -> Option<usize> {
        let mut tx = ArqSender::new(max_attempts);
        let mut rx = ArqReceiver::new();
        // The verdict API keeps one header+payload buffer inside the
        // sender for the whole retry loop — no per-retry clone, which
        // keeps this path on the zero-alloc budget of DESIGN.md §12.
        tx.start(payload);
        let mut attempts = 0;
        loop {
            attempts += 1;
            // One over-the-air transfer of the in-flight ARQ frame,
            // borrowed straight out of the sender.
            let outcome = self.uplink(tx.frame()?, symbol_rate, true)?;
            let ack = match outcome.payload {
                Ok(received) => {
                    // AP got a CRC-valid frame: run the receiver side.
                    rx.on_frame(&received).map(|(ack, _)| ack)
                }
                Err(_) => None, // corrupted: no ACK
            };
            match tx.on_ack_verdict(ack) {
                ArqVerdict::Delivered => return Some(attempts),
                ArqVerdict::GiveUp => return None,
                ArqVerdict::Retry => {}
            }
        }
    }
}

/// Sanity helper for tests: the ARQ frame's header survives the trip.
pub fn arq_payload_of(frame: &[u8]) -> Option<&[u8]> {
    parse_header(frame).map(|(_, p)| p)
}

// ---------------------------------------------------------------------
// Closed-loop link policy (DESIGN.md §18)
// ---------------------------------------------------------------------

/// Thresholds for the [`LinkPolicy`] state machine. All counts are
/// consecutive-session streaks; the asymmetry between the `*_after`
/// pairs is the hysteresis that keeps the controller from chattering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyConfig {
    /// Troubled sessions (payload retries or failure) before stepping
    /// the uplink rate one notch down [`UPLINK_RATES`].
    pub rate_down_after: usize,
    /// Clean sessions before probing one notch back up.
    pub rate_up_after: usize,
    /// Troubled low-SNR sessions before forcing single-tone OOK.
    pub ook_after: usize,
    /// Clean forced-OOK sessions before re-probing dual-tone OAQFM.
    pub ook_recover_after: usize,
    /// Sessions won by the reduced-chirp fallback before trimming the
    /// Field-2 burst to [`PolicyConfig::trimmed_chirps`].
    pub chirp_trim_after: usize,
    /// Fully clean bursts before restoring the five-chirp burst.
    pub chirp_restore_after: usize,
    /// The trimmed Field-2 chirp count (≥ 2; the paper's burst is 5).
    pub trimmed_chirps: usize,
    /// Payload failures before granting one extra ARQ attempt and
    /// stretching the backoff.
    pub arq_stretch_after: usize,
    /// Ceiling on extra ARQ attempts.
    pub arq_extra_max: usize,
    /// Decision SNR (linear) below which a troubled session counts as
    /// "tone discrimination dying" for the OOK trigger.
    pub snr_floor: f64,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self::milback()
    }
}

impl PolicyConfig {
    /// Defaults: react after one troubled session (retries are the
    /// expensive event), recover only after a streak of clean ones.
    pub fn milback() -> Self {
        Self {
            rate_down_after: 1,
            rate_up_after: 4,
            ook_after: 2,
            ook_recover_after: 4,
            chirp_trim_after: 2,
            chirp_restore_after: 4,
            trimmed_chirps: 3,
            arq_stretch_after: 2,
            arq_extra_max: 4,
            snr_floor: SNR_ACCEPT,
        }
    }
}

/// What the controller plans for the next supervised exchange: the
/// session budgets/rates plus the carrier-plan override to install on
/// the [`Network`] (`force_single_tone`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionPlan {
    /// Budgets and rates for the next exchange.
    pub config: SessionConfig,
    /// Collapse the tone plan to single-carrier OOK.
    pub force_ook: bool,
}

/// One exchange's evidence, compressed from the session supervisor's
/// report. Plain `Copy` data — the serving lanes record it without
/// allocating, and [`LinkPolicy::observe`] is a pure function of it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyFeedback {
    /// The payload delivered (the session returned `Ok`).
    pub delivered: bool,
    /// Payload transmissions used (the whole budget on payload failure,
    /// 0 when the session died before the payload stage).
    pub payload_attempts: usize,
    /// The session failed in the payload stage.
    pub payload_failed: bool,
    /// The session failed at Field-1 mode detection (no payload
    /// evidence — rate decisions ignore these).
    pub mode_failed: bool,
    /// The delivering transfer's decision SNR fell below the policy's
    /// floor (payload failures count as low-SNR by definition).
    pub low_snr: bool,
    /// Localization ran the reduced-chirp fallback.
    pub fell_back: bool,
    /// Chirps discarded by the energy triage.
    pub dropped: usize,
    /// Field-2 actually ran (not shed, not pre-empted by mode failure).
    pub field2_ran: bool,
}

impl PolicyFeedback {
    /// Builds feedback from a supervised exchange's outcome. `snr_floor`
    /// is the policy's discrimination threshold (linear).
    pub fn from_outcome(outcome: &Result<SessionReport, SessionError>, snr_floor: f64) -> Self {
        let fell_back = |ds: &[Degradation]| {
            ds.iter()
                .any(|d| matches!(d, Degradation::ReducedChirpFallback { .. }))
        };
        let dropped = |ds: &[Degradation]| {
            ds.iter()
                .find_map(|d| match d {
                    Degradation::ChirpLoss { dropped, .. } => Some(*dropped),
                    _ => None,
                })
                .unwrap_or(0)
        };
        match outcome {
            Ok(r) => {
                let snr = match (&r.uplink, &r.downlink) {
                    (Some(u), _) => Some(u.snr),
                    (None, Some(d)) => Some(d.decision_snr),
                    (None, None) => None,
                };
                Self {
                    delivered: true,
                    payload_attempts: r.payload_attempts,
                    payload_failed: false,
                    mode_failed: false,
                    low_snr: snr.is_some_and(|s| s < snr_floor),
                    fell_back: fell_back(&r.degradations),
                    dropped: dropped(&r.degradations),
                    field2_ran: !r.degradations.contains(&Degradation::Field2Shed),
                }
            }
            Err(e) => {
                let payload_failed = e.kind == FailureKind::Payload;
                Self {
                    delivered: false,
                    payload_attempts: if payload_failed { e.attempts } else { 0 },
                    payload_failed,
                    mode_failed: e.kind == FailureKind::ModeDetect,
                    low_snr: payload_failed,
                    fell_back: fell_back(&e.degradations),
                    dropped: dropped(&e.degradations),
                    field2_ran: payload_failed
                        && !e.degradations.contains(&Degradation::Field2Shed),
                }
            }
        }
    }
}

/// Closed-loop per-node link controller (DESIGN.md §18).
///
/// State is a handful of integer streak counters — a pure function of
/// the observed feedback sequence, with no RNG and no wall clock — so a
/// policy carried on a per-node serving lane preserves the engine's
/// thread-invariance and parallel==serial guarantees. A freshly built
/// (or [`LinkPolicy::reset`]) policy plans exactly the base
/// configuration, so the fixed and adaptive paths are bitwise identical
/// until the first trouble is observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkPolicy {
    /// The thresholds this controller runs with.
    pub config: PolicyConfig,
    /// Index into [`UPLINK_RATES`] (0 = fastest).
    rate_idx: usize,
    clean_streak: usize,
    trouble_streak: usize,
    low_snr_streak: usize,
    ook_clean_streak: usize,
    force_ook: bool,
    fallback_streak: usize,
    full_streak: usize,
    chirps: usize,
    loss_streak: usize,
    extra_attempts: usize,
}

impl Default for LinkPolicy {
    fn default() -> Self {
        Self::new(PolicyConfig::milback())
    }
}

impl LinkPolicy {
    /// A fresh controller in its neutral state: fastest rate, dual-tone,
    /// five chirps, base ARQ budget.
    pub fn new(config: PolicyConfig) -> Self {
        Self {
            config,
            rate_idx: 0,
            clean_streak: 0,
            trouble_streak: 0,
            low_snr_streak: 0,
            ook_clean_streak: 0,
            force_ook: false,
            fallback_streak: 0,
            full_streak: 0,
            chirps: 5,
            loss_streak: 0,
            extra_attempts: 0,
        }
    }

    /// Back to the neutral state (serving epochs reset per-lane policies
    /// here so epoch digests stay a function of the epoch seed alone).
    pub fn reset(&mut self) {
        *self = Self::new(self.config);
    }

    /// The currently selected uplink bit rate, bits/s.
    pub fn uplink_bit_rate(&self) -> f64 {
        UPLINK_RATES[self.rate_idx]
    }

    /// Whether the OOK fallback is currently forced.
    pub fn forcing_ook(&self) -> bool {
        self.force_ook
    }

    /// The currently planned Field-2 chirp count.
    pub fn field2_chirps(&self) -> usize {
        self.chirps
    }

    /// Extra ARQ attempts currently granted beyond the base budget.
    pub fn extra_attempts(&self) -> usize {
        self.extra_attempts
    }

    /// Plans the next exchange from `base`. Uplink sessions get the
    /// controller's rate off the [`UPLINK_RATES`] ladder; downlink keeps
    /// the base symbol rate (the ladder models the switch-rate-limited
    /// uplink). A neutral policy returns `base` unchanged with
    /// `force_ook == false` — except that a neutral *uplink* plan pins
    /// `symbol_rate` to the fastest ladder rate, which callers comparing
    /// against a fixed baseline should use as the baseline rate too.
    pub fn plan(&self, base: &SessionConfig, mode: LinkMode) -> SessionPlan {
        let mut config = *base;
        if mode == LinkMode::Uplink {
            config.symbol_rate = UPLINK_RATES[self.rate_idx] / 2.0;
        }
        config.field2_chirps = self.chirps;
        config.payload_attempts = base.payload_attempts + self.extra_attempts;
        if self.extra_attempts > 0 {
            config.backoff = base.backoff.stretched((1 + self.extra_attempts) as f64);
        }
        SessionPlan {
            config,
            force_ook: self.force_ook,
        }
    }

    /// Folds one exchange's evidence into the controller state. Pure
    /// integer arithmetic; the telemetry counters record transitions in
    /// the deterministic view (they count policy decisions, which are
    /// themselves deterministic).
    pub fn observe(&mut self, fb: &PolicyFeedback) {
        let c = self.config;
        let trouble = fb.payload_failed || (fb.delivered && fb.payload_attempts > 1);
        // Cross-stage inference: chirp drops in the same session mean the
        // RF path is being squelched outright — payload loss is then an
        // erasure, not an SNR shortfall. Slowing down only lengthens the
        // captures (more squelch overlap) and OOK doubles them, so both
        // levers are gated; the ARQ stretch below is the one that helps.
        let erasure = fb.dropped > 0;

        // (a) Rate ladder with hysteresis — payload evidence only.
        if trouble && !erasure {
            self.clean_streak = 0;
            self.trouble_streak += 1;
            if self.trouble_streak >= c.rate_down_after && self.rate_idx + 1 < UPLINK_RATES.len() {
                // A retried-but-delivered session steps one notch; an
                // exhausted budget is stronger evidence and steps two.
                let steps = if fb.payload_failed { 2 } else { 1 };
                self.rate_idx = (self.rate_idx + steps).min(UPLINK_RATES.len() - 1);
                self.trouble_streak = 0;
                telemetry::counter_add("core.policy.rate_down", 1);
            }
        } else if fb.delivered {
            self.trouble_streak = 0;
            self.clean_streak += 1;
            if self.clean_streak >= c.rate_up_after && self.rate_idx > 0 {
                self.rate_idx -= 1;
                self.clean_streak = 0;
                telemetry::counter_add("core.policy.rate_up", 1);
            }
        }

        // (b) OOK fallback: sustained low-SNR trouble flips to single
        // tone; a streak of clean OOK sessions probes dual again.
        if self.force_ook {
            if fb.delivered && fb.payload_attempts == 1 {
                self.ook_clean_streak += 1;
                if self.ook_clean_streak >= c.ook_recover_after {
                    self.force_ook = false;
                    self.ook_clean_streak = 0;
                    self.low_snr_streak = 0;
                    telemetry::counter_add("core.policy.ook_off", 1);
                }
            } else {
                self.ook_clean_streak = 0;
            }
        } else if trouble && fb.low_snr && !erasure {
            self.low_snr_streak += 1;
            if self.low_snr_streak >= c.ook_after {
                self.force_ook = true;
                self.low_snr_streak = 0;
                self.ook_clean_streak = 0;
                telemetry::counter_add("core.policy.ook_on", 1);
            }
        } else if fb.delivered && fb.payload_attempts == 1 {
            self.low_snr_streak = 0;
        }

        // (c) Field-2 chirp trim: the reduced-chirp fallback repeatedly
        // winning means most of the burst is dead airtime.
        if fb.field2_ran {
            if fb.fell_back {
                self.fallback_streak += 1;
                self.full_streak = 0;
                if self.fallback_streak >= c.chirp_trim_after
                    && self.chirps > c.trimmed_chirps.max(2)
                {
                    self.chirps = c.trimmed_chirps.max(2);
                    self.fallback_streak = 0;
                    telemetry::counter_add("core.policy.chirp_trim", 1);
                }
            } else if fb.dropped == 0 {
                self.full_streak += 1;
                self.fallback_streak = 0;
                if self.full_streak >= c.chirp_restore_after && self.chirps < 5 {
                    self.chirps = 5;
                    self.full_streak = 0;
                    telemetry::counter_add("core.policy.chirp_restore", 1);
                }
            }
        }

        // (d) ARQ budget/backoff stretch under sustained loss; relax one
        // notch per clean first-attempt delivery.
        if fb.payload_failed {
            self.loss_streak += 1;
            if self.loss_streak >= c.arq_stretch_after && self.extra_attempts < c.arq_extra_max {
                self.extra_attempts += 1;
                self.loss_streak = 0;
                telemetry::counter_add("core.policy.arq_stretch", 1);
            }
        } else if fb.delivered && fb.payload_attempts == 1 {
            self.loss_streak = 0;
            if self.extra_attempts > 0 {
                self.extra_attempts -= 1;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Adaptive-vs-fixed chaos evaluation (bench_engine --adaptive)
// ---------------------------------------------------------------------

/// The §14 fault menagerie as named scenarios: each one is a
/// deterministic [`FaultPlan`] stressing one controller lever (plus the
/// sampled chaos mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// No faults — the adaptive path must match fixed bitwise.
    Clean,
    /// Periodic deep body blockage windows.
    Blockage,
    /// A chronic CW comb parked on the dual-tone branch offsets (the
    /// OOK-fallback stressor: single-carrier plans mix it out of band).
    CwInterference,
    /// Repeating clock-drift windows (timing skew grows within each
    /// window — lower symbol rates tolerate more skew).
    ClockDrift,
    /// Periodic RF squelch windows that drop whole chirp captures (the
    /// chirp-trim stressor).
    ChirpLoss,
    /// Chronic wideband SNR droop (the rate-ladder stressor).
    SnrDroop,
    /// The sampled §14 chaos mix at high intensity.
    Chaos,
}

/// Every scenario, in the order the bench table reports them.
pub const SCENARIOS: [ScenarioKind; 7] = [
    ScenarioKind::Clean,
    ScenarioKind::Blockage,
    ScenarioKind::CwInterference,
    ScenarioKind::ClockDrift,
    ScenarioKind::ChirpLoss,
    ScenarioKind::SnrDroop,
    ScenarioKind::Chaos,
];

impl ScenarioKind {
    /// Stable table/CSV name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Clean => "clean",
            ScenarioKind::Blockage => "blockage",
            ScenarioKind::CwInterference => "cw_interference",
            ScenarioKind::ClockDrift => "clock_drift",
            ScenarioKind::ChirpLoss => "chirp_loss",
            ScenarioKind::SnrDroop => "snr_droop",
            ScenarioKind::Chaos => "chaos",
        }
    }

    /// Fills `plan` with this scenario's schedule over `[0, horizon_s)`.
    /// `branch_offset_hz` is the dual-tone plan's branch offset from the
    /// carrier midpoint at the trial pose (`|f_a − f_b| / 2`) — the CW
    /// comb parks there so it lands inside the dual-tone demodulator's
    /// decimation band but mixes far out of band once the plan collapses
    /// to a single carrier.
    pub fn fill_plan(self, seed: u64, horizon_s: f64, branch_offset_hz: f64, plan: &mut FaultPlan) {
        plan.seed = seed;
        plan.events.clear();
        let mut push = |start_s: f64, duration_s: f64, kind: FaultKind| {
            plan.events.push(FaultEvent {
                start_s,
                duration_s,
                kind,
            });
        };
        match self {
            ScenarioKind::Clean => {}
            ScenarioKind::Blockage => {
                // ~25% duty shadowing at the session time scale (a clean
                // exchange is ~0.2 ms): deep enough to kill the fast
                // uplink (decision SNR scales inversely with symbol rate)
                // but shallow enough that the bottom of the rate ladder
                // still gets through.
                let period = 2e-3;
                let mut t = 0.2e-3;
                while t < horizon_s {
                    push(t, 0.8e-3, FaultKind::Blockage { depth_db: 26.0 });
                    t += period;
                }
            }
            ScenarioKind::CwInterference => {
                // A five-tone comb straddling the branch offset, wide
                // enough to survive session-to-session orientation
                // estimate jitter in the selected tones. The amplitude
                // sits in the window where dual-tone slicing breaks but
                // the collapsed OOK plan (coherent two-port reflection,
                // best-branch decode) still has margin.
                for k in -2i32..=2 {
                    push(
                        0.0,
                        horizon_s,
                        FaultKind::Interference {
                            freq_offset_hz: branch_offset_hz + k as f64 * 60e6,
                            amp: 1.5e-4,
                        },
                    );
                }
            }
            ScenarioKind::ClockDrift => {
                // Skew restarts each window and grows at 150 ppm (a cheap
                // node crystal): it crosses the 20 Msym/s timing margin
                // (~0.25 symbol = 12.5 ns) within ~0.1 ms but stays under
                // the 2.5 Msym/s margin (100 ns) for the whole window, so
                // stepping the rate down genuinely helps.
                let period = 1.2e-3;
                let mut t = 0.0;
                while t < horizon_s {
                    push(t, 0.8e-3, FaultKind::ClockDrift { ppm: 120.0 });
                    t += period;
                }
            }
            ScenarioKind::ChirpLoss => {
                // RF squelch windows: any overlapped capture is zeroed
                // whole, so Field-2 bursts keep losing chirps (the
                // reduced-chirp fallback and trim lever's evidence) and
                // payload attempts see outright erasures that only the
                // stretched ARQ budget can ride out.
                let period = 250e-6;
                let mut t = 0.0;
                while t < horizon_s {
                    push(t, 45e-6, FaultKind::ChirpDrop);
                    t += period;
                }
            }
            ScenarioKind::SnrDroop => {
                push(
                    0.0,
                    horizon_s,
                    FaultKind::SnrDroop {
                        extra_noise_db: -18.0,
                    },
                );
            }
            ScenarioKind::Chaos => {
                // `chaos_into` sprinkles its menagerie uniformly over the
                // horizon; tile short chaos windows instead so the fault
                // density matches the session time scale regardless of
                // how long the series actually runs.
                let tile = 20e-3;
                let tiles = ((horizon_s / tile).ceil() as u64).max(1);
                let mut chaos = FaultPlan::none();
                for w in 0..tiles {
                    chaos.chaos_into(crate::batch::derive_seed(seed, w), 0.85, tile);
                    let shift = w as f64 * tile;
                    for ev in &chaos.events {
                        plan.events.push(FaultEvent {
                            start_s: ev.start_s + shift,
                            duration_s: ev.duration_s,
                            kind: ev.kind,
                        });
                    }
                }
            }
        }
    }
}

/// Accumulated result of one adaptive (or fixed) trial: a session
/// series against one scenario. Exact-comparable `Copy` data — the CI
/// smoke pins byte-identical repeats and 1-vs-4-thread runs on it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdaptiveOutcome {
    /// Payload bytes delivered end-to-end.
    pub delivered_bytes: u64,
    /// Payload bytes offered (sessions × payload length).
    pub offered_bytes: u64,
    /// Sessions that completed.
    pub sessions_ok: u32,
    /// Sessions that exhausted a budget.
    pub sessions_failed: u32,
    /// Total session-clock time the series consumed, seconds.
    pub elapsed_s: f64,
    /// Analytic node energy over the series, µJ (switching/detector
    /// power from the §9 power model × per-stage airtime × attempts).
    pub energy_uj: f64,
    /// Sessions that ran with the forced-OOK plan.
    pub ook_sessions: u32,
    /// Sessions that ran with a trimmed Field-2 burst.
    pub trimmed_sessions: u32,
    /// Sessions that ran below the fastest uplink rate.
    pub slowed_sessions: u32,
}

impl AdaptiveOutcome {
    /// Payload goodput over the series, kbit/s.
    pub fn goodput_kbps(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            return 0.0;
        }
        self.delivered_bytes as f64 * 8.0 / self.elapsed_s / 1e3
    }

    /// Node energy per delivered payload byte, µJ/byte (`f64::INFINITY`
    /// when nothing was delivered).
    pub fn energy_per_byte_uj(&self) -> f64 {
        if self.delivered_bytes == 0 {
            return f64::INFINITY;
        }
        self.energy_uj / self.delivered_bytes as f64
    }

    /// Folds another trial's totals into this one (sweep aggregation).
    pub fn absorb(&mut self, other: &AdaptiveOutcome) {
        self.delivered_bytes += other.delivered_bytes;
        self.offered_bytes += other.offered_bytes;
        self.sessions_ok += other.sessions_ok;
        self.sessions_failed += other.sessions_failed;
        self.elapsed_s += other.elapsed_s;
        self.energy_uj += other.energy_uj;
        self.ook_sessions += other.ook_sessions;
        self.trimmed_sessions += other.trimmed_sessions;
        self.slowed_sessions += other.slowed_sessions;
    }
}

/// Fixed-vs-adaptive totals for one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveComparison {
    /// The scenario both variants ran.
    pub scenario: ScenarioKind,
    /// Totals for the fixed (policy-less) variant.
    pub fixed: AdaptiveOutcome,
    /// Totals for the closed-loop variant.
    pub adaptive: AdaptiveOutcome,
}

impl AdaptiveComparison {
    /// Whether the adaptive variant is strictly better on *both* bench
    /// metrics: higher goodput and lower energy per delivered byte.
    pub fn adaptive_wins(&self) -> bool {
        self.adaptive.goodput_kbps() > self.fixed.goodput_kbps()
            && self.adaptive.energy_per_byte_uj() < self.fixed.energy_per_byte_uj()
    }
}

/// Analytic node-side energy for one supervised exchange, µJ: each
/// stage's airtime (as charged on the session clock) times the §9 power
/// model's draw for the node mode that stage runs in. Mirrors the link
/// layer's per-transfer energy telemetry; backoff idle time is not
/// billed (the switch network parks).
fn exchange_energy_uj(
    pkt: &PacketConfig,
    cfg: &SessionConfig,
    mode: LinkMode,
    force_ook: bool,
    outcome: &Result<SessionReport, SessionError>,
) -> f64 {
    let power = PowerModel::milback();
    let p_listen = power.power_mw(NodeMode::Downlink);
    let p_loc = power.power_mw(NodeMode::Localization);
    let bits_per_symbol = if force_ook { 1.0 } else { 2.0 };
    let p_payload = match mode {
        LinkMode::Downlink => p_listen,
        LinkMode::Uplink => power.power_mw(NodeMode::Uplink {
            bit_rate: bits_per_symbol * cfg.symbol_rate,
        }),
    };
    let shed = |ds: &[Degradation]| ds.contains(&Degradation::Field2Shed);
    // (mode attempts, node-orientation chirp ran, Field-2 windows, payload attempts)
    let (mode_attempts, oriented, field2_windows, payload_attempts) = match outcome {
        Ok(r) => (
            r.mode_attempts,
            true,
            if shed(&r.degradations) { 0.0 } else { 2.0 },
            r.payload_attempts,
        ),
        Err(e) => match e.kind {
            FailureKind::ModeDetect => (e.attempts, false, 0.0, 0),
            FailureKind::Payload => {
                let ma = e
                    .degradations
                    .iter()
                    .find_map(|d| match d {
                        Degradation::ModeRetries { attempts } => Some(*attempts),
                        _ => None,
                    })
                    .unwrap_or(1);
                (
                    ma,
                    true,
                    if shed(&e.degradations) { 0.0 } else { 2.0 },
                    e.attempts,
                )
            }
        },
    };
    let listen_s = pkt.field1_duration() * mode_attempts as f64
        + if oriented {
            pkt.field1_chirp.duration
        } else {
            0.0
        };
    let field2_s = cfg.field2_airtime_s(pkt) * field2_windows;
    // OOK halves the bits per symbol, doubling the payload occupancy.
    let payload_s = cfg.payload_airtime_s(pkt) * (2.0 / bits_per_symbol) * payload_attempts as f64;
    (p_listen * listen_s + p_loc * field2_s + p_payload * payload_s) * 1e3
}

/// Fixed baseline for one exchange: the paper defaults, with uplink
/// sessions at the fastest ladder rate — exactly what a neutral
/// [`LinkPolicy`] plans, so the clean-scenario comparison is bitwise.
fn fixed_config(mode: LinkMode) -> SessionConfig {
    let mut cfg = SessionConfig::milback();
    if mode == LinkMode::Uplink {
        cfg.symbol_rate = UPLINK_RATES[0] / 2.0;
    }
    cfg
}

/// Sessions per trial at the default evaluation scale.
pub const ADAPTIVE_TRIAL_SESSIONS: usize = 12;

/// Runs one trial: `n_sessions` supervised exchanges back-to-back on
/// one network (persistent session clock, persistent controller state)
/// under `scenario`'s fault schedule, with (`adaptive == true`) or
/// without the closed-loop controller. Pure function of its arguments —
/// the sweep calls it from the batch engine and the CI smoke compares
/// runs bitwise. Sessions follow a 3-uplink/1-downlink pattern; payload
/// bytes derive from the trial seed.
pub fn adaptive_trial(
    scenario: ScenarioKind,
    seed: u64,
    n_sessions: usize,
    adaptive: bool,
) -> AdaptiveOutcome {
    const PAYLOAD_LEN: usize = 16;
    let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
    let mut net = Network::new(pose, Fidelity::Fast, seed);
    let pkt = net.fidelity.packet();

    // Fault horizon: generous per-session budget (airtime + a few
    // backoff ceilings) so schedules cover retry-stretched series.
    let horizon_s = n_sessions as f64 * (8.0 * pkt.total_duration() + 0.25);
    let branch_offset =
        match select_tones(&net.node.fsa, net.true_orientation(), MIN_TONE_SEPARATION) {
            Some(ToneSelection::Dual { f_a, f_b }) => (f_a - f_b).abs() / 2.0,
            _ => 0.0,
        };
    let mut plan = FaultPlan::none();
    scenario.fill_plan(
        batch::derive_seed(seed, 1),
        horizon_s,
        branch_offset,
        &mut plan,
    );
    net.faults = plan;

    let mut policy = LinkPolicy::default();
    let mut ctx = SessionCtx::new();
    let mut out = AdaptiveOutcome::default();
    for i in 0..n_sessions {
        let mode = if i % 4 == 3 {
            LinkMode::Downlink
        } else {
            LinkMode::Uplink
        };
        let base = fixed_config(mode);
        let plan = if adaptive {
            policy.plan(&base, mode)
        } else {
            SessionPlan {
                config: base,
                force_ook: false,
            }
        };
        let session_seed = batch::derive_seed(seed, 100 + i as u64);
        net.reseed(session_seed);
        net.force_single_tone = plan.force_ook;
        let payload: Vec<u8> = (0..PAYLOAD_LEN)
            .map(|j| (session_seed.rotate_left(((j % 8) * 8) as u32) as u8) ^ j as u8)
            .collect();
        let packet = match mode {
            LinkMode::Downlink => Packet::downlink(payload),
            LinkMode::Uplink => Packet::uplink(payload),
        };
        let session = Session::new(plan.config);
        let outcome = session.run_in(&mut ctx, &mut net, &packet, false);

        out.offered_bytes += PAYLOAD_LEN as u64;
        out.energy_uj += exchange_energy_uj(&pkt, &plan.config, mode, plan.force_ook, &outcome);
        match &outcome {
            Ok(_) => {
                out.delivered_bytes += PAYLOAD_LEN as u64;
                out.sessions_ok += 1;
            }
            Err(_) => out.sessions_failed += 1,
        }
        out.ook_sessions += plan.force_ook as u32;
        out.trimmed_sessions += (plan.config.field2_chirps < 5) as u32;
        out.slowed_sessions +=
            (mode == LinkMode::Uplink && plan.config.symbol_rate < UPLINK_RATES[0] / 2.0) as u32;
        if adaptive {
            policy.observe(&PolicyFeedback::from_outcome(
                &outcome,
                policy.config.snr_floor,
            ));
        }
    }
    net.force_single_tone = false;
    out.elapsed_s = net.clock_s;
    out
}

/// Sweeps every scenario × {fixed, adaptive} × `trials` paired seeds on
/// the batch engine and aggregates per-scenario totals. Fixed and
/// adaptive variants of the same (scenario, trial) share a seed, so the
/// comparison is paired. Thread-count invariant: job order, seed
/// derivation and aggregation order depend only on the argument list.
pub fn adaptive_sweep_with_threads(
    n_sessions: usize,
    trials: usize,
    master_seed: u64,
    threads: usize,
) -> Vec<AdaptiveComparison> {
    // Flattened job list: scenario-major, variant, then trial.
    let jobs: Vec<(usize, bool, u64)> = (0..SCENARIOS.len() * 2 * trials)
        .map(|g| {
            let s = g / (2 * trials);
            let v = (g / trials) % 2 == 1; // false = fixed, true = adaptive
            let t = g % trials;
            (
                s,
                v,
                batch::derive_seed(master_seed, (s * trials + t) as u64),
            )
        })
        .collect();
    let flat = batch::par_map_with_threads(&jobs, threads, |&(s, adaptive, seed), _| {
        adaptive_trial(SCENARIOS[s], seed, n_sessions, adaptive)
    });
    SCENARIOS
        .iter()
        .enumerate()
        .map(|(s, &scenario)| {
            let mut fixed = AdaptiveOutcome::default();
            let mut adaptive = AdaptiveOutcome::default();
            for t in 0..trials {
                fixed.absorb(&flat[s * 2 * trials + t]);
                adaptive.absorb(&flat[s * 2 * trials + trials + t]);
            }
            AdaptiveComparison {
                scenario,
                fixed,
                adaptive,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Fidelity;
    use milback_rf::geometry::{deg_to_rad, Pose};

    #[test]
    fn adaptive_picks_fast_rate_up_close() {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(15.0));
        let mut net = Network::new(pose, Fidelity::Fast, 71);
        let r = net.uplink_adaptive(&[0x42; 12]).expect("no link at 2 m");
        assert_eq!(r.bit_rate, 40e6, "rejected: {:?}", r.rejected);
        assert!(r.rejected.is_empty());
    }

    #[test]
    fn adaptive_falls_back_at_range() {
        let pose = Pose::facing_ap(9.0, 0.0, deg_to_rad(15.0));
        let mut net = Network::new(pose, Fidelity::Fast, 72);
        let r = net.uplink_adaptive(&[0x42; 12]).expect("no link at 9 m");
        assert!(r.bit_rate < 40e6, "should have fallen back from 40 Mbps");
        assert!(!r.rejected.is_empty());
        assert_eq!(r.report.bit_errors, 0);
    }

    #[test]
    fn reliable_uplink_single_attempt_when_clean() {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(15.0));
        let mut net = Network::new(pose, Fidelity::Fast, 73);
        let attempts = net.uplink_reliable(&[0x10; 8], 5e6, 4).expect("gave up");
        assert_eq!(attempts, 1);
    }

    #[test]
    fn reliable_uplink_retries_then_succeeds_or_gives_up() {
        // Push the link to a regime with occasional frame loss.
        let pose = Pose::facing_ap(11.0, 0.0, deg_to_rad(15.0));
        let mut net = Network::new(pose, Fidelity::Fast, 74);
        // Either it delivers (possibly with retries) or honestly gives up;
        // both are legitimate — what must not happen is a panic or a
        // false "delivered" with corrupted bytes (the CRC gate prevents
        // that by construction).
        let _ = net.uplink_reliable(&[0x99; 16], 20e6, 3);
    }

    #[test]
    fn arq_header_helper() {
        let mut tx = milback_proto::arq::ArqSender::new(2);
        let frame = tx.send(b"zz");
        assert_eq!(arq_payload_of(&frame), Some(&b"zz"[..]));
    }

    // --- LinkPolicy state machine ---

    fn clean_fb() -> PolicyFeedback {
        PolicyFeedback {
            delivered: true,
            payload_attempts: 1,
            payload_failed: false,
            mode_failed: false,
            low_snr: false,
            fell_back: false,
            dropped: 0,
            field2_ran: true,
        }
    }

    fn retried_fb(low_snr: bool) -> PolicyFeedback {
        PolicyFeedback {
            payload_attempts: 2,
            low_snr,
            ..clean_fb()
        }
    }

    fn failed_fb() -> PolicyFeedback {
        PolicyFeedback {
            delivered: false,
            payload_attempts: 4,
            payload_failed: true,
            low_snr: true,
            ..clean_fb()
        }
    }

    #[test]
    fn neutral_policy_plans_base_config() {
        let policy = LinkPolicy::default();
        let base = SessionConfig::milback();
        let plan = policy.plan(&base, LinkMode::Downlink);
        assert_eq!(plan.config, base);
        assert!(!plan.force_ook);
        // Uplink pins the fastest ladder rate; everything else is base.
        let up = policy.plan(&base, LinkMode::Uplink);
        assert_eq!(up.config.symbol_rate, UPLINK_RATES[0] / 2.0);
        assert_eq!(up.config.payload_attempts, base.payload_attempts);
        assert_eq!(up.config.field2_chirps, base.field2_chirps);
    }

    #[test]
    fn rate_ladder_steps_down_and_recovers() {
        let mut p = LinkPolicy::default();
        p.observe(&retried_fb(false));
        assert_eq!(p.uplink_bit_rate(), UPLINK_RATES[1], "one notch on retry");
        p.observe(&failed_fb());
        assert_eq!(
            p.uplink_bit_rate(),
            UPLINK_RATES[3],
            "two notches on an exhausted budget"
        );
        // Hysteresis: three clean sessions are not enough to move.
        for _ in 0..3 {
            p.observe(&clean_fb());
        }
        assert_eq!(p.uplink_bit_rate(), UPLINK_RATES[3]);
        p.observe(&clean_fb());
        assert_eq!(p.uplink_bit_rate(), UPLINK_RATES[2], "recovers one notch");
    }

    #[test]
    fn ook_triggers_on_low_snr_trouble_and_recovers() {
        let mut p = LinkPolicy::default();
        p.observe(&retried_fb(true));
        assert!(!p.forcing_ook(), "one low-SNR session is not enough");
        p.observe(&retried_fb(true));
        assert!(p.forcing_ook(), "two consecutive low-SNR troubles flip");
        let base = SessionConfig::milback();
        assert!(p.plan(&base, LinkMode::Uplink).force_ook);
        // Recovery needs ook_recover_after clean single-attempt sessions.
        for _ in 0..3 {
            p.observe(&clean_fb());
            assert!(p.forcing_ook());
        }
        p.observe(&clean_fb());
        assert!(!p.forcing_ook(), "probes dual again after a clean streak");
    }

    #[test]
    fn chirp_trim_on_repeated_fallback_and_restore() {
        let mut p = LinkPolicy::default();
        let fallback = PolicyFeedback {
            fell_back: true,
            dropped: 2,
            ..clean_fb()
        };
        p.observe(&fallback);
        assert_eq!(p.field2_chirps(), 5);
        p.observe(&fallback);
        assert_eq!(
            p.field2_chirps(),
            3,
            "trims after the fallback keeps winning"
        );
        let base = SessionConfig::milback();
        assert_eq!(p.plan(&base, LinkMode::Downlink).config.field2_chirps, 3);
        for _ in 0..4 {
            p.observe(&clean_fb());
        }
        assert_eq!(p.field2_chirps(), 5, "restores after clean full bursts");
    }

    #[test]
    fn arq_budget_stretches_under_loss() {
        let mut p = LinkPolicy::default();
        p.observe(&failed_fb());
        p.observe(&failed_fb());
        assert_eq!(p.extra_attempts(), 1);
        let base = SessionConfig::milback();
        let plan = p.plan(&base, LinkMode::Uplink);
        assert_eq!(plan.config.payload_attempts, base.payload_attempts + 1);
        assert_eq!(plan.config.backoff.base_s, base.backoff.base_s * 2.0);
        assert_eq!(plan.config.backoff.max_s, base.backoff.max_s * 2.0);
        // A clean first-attempt delivery relaxes one notch.
        p.observe(&clean_fb());
        assert_eq!(p.extra_attempts(), 0);
    }

    #[test]
    fn chirp_drop_evidence_gates_rate_and_ook() {
        let mut p = LinkPolicy::default();
        let erasure_trouble = PolicyFeedback {
            delivered: false,
            payload_attempts: 4,
            payload_failed: true,
            low_snr: true,
            dropped: 3,
            fell_back: true,
            ..clean_fb()
        };
        for _ in 0..4 {
            p.observe(&erasure_trouble);
        }
        assert_eq!(
            p.uplink_bit_rate(),
            UPLINK_RATES[0],
            "erasure loss must not walk the rate ladder"
        );
        assert!(!p.forcing_ook(), "erasure loss must not force OOK");
        assert!(
            p.extra_attempts() > 0,
            "the ARQ stretch is the erasure lever"
        );
    }

    #[test]
    fn policy_reset_restores_neutral_plan() {
        let mut p = LinkPolicy::default();
        p.observe(&failed_fb());
        p.observe(&failed_fb());
        let base = SessionConfig::milback();
        assert_ne!(p.plan(&base, LinkMode::Uplink).config, {
            let mut c = base;
            c.symbol_rate = UPLINK_RATES[0] / 2.0;
            c
        });
        p.reset();
        let plan = p.plan(&base, LinkMode::Uplink);
        let mut expect = base;
        expect.symbol_rate = UPLINK_RATES[0] / 2.0;
        assert_eq!(plan.config, expect);
        assert!(!plan.force_ook);
    }

    // --- Scenario evaluation ---

    #[test]
    fn fill_plan_is_deterministic_and_clean_is_empty() {
        let mut a = FaultPlan::none();
        let mut b = FaultPlan::none();
        for s in SCENARIOS {
            s.fill_plan(42, 0.05, 600e6, &mut a);
            s.fill_plan(42, 0.05, 600e6, &mut b);
            assert_eq!(a.fingerprint(), b.fingerprint(), "{}", s.name());
            if s == ScenarioKind::Clean {
                assert!(a.events.is_empty());
            } else {
                assert!(!a.events.is_empty(), "{}", s.name());
            }
        }
    }

    #[test]
    fn adaptive_trial_is_deterministic() {
        let a = adaptive_trial(ScenarioKind::Blockage, 0x00DE_7E12, 2, true);
        let b = adaptive_trial(ScenarioKind::Blockage, 0x00DE_7E12, 2, true);
        assert_eq!(a, b);
        assert_eq!(a.offered_bytes, 32);
    }

    #[test]
    fn clean_scenario_adaptive_matches_fixed_bitwise() {
        let fixed = adaptive_trial(ScenarioKind::Clean, 0x00C1_EA77, 4, false);
        let adaptive = adaptive_trial(ScenarioKind::Clean, 0x00C1_EA77, 4, true);
        assert_eq!(fixed, adaptive, "a neutral policy must be a no-op");
        assert_eq!(fixed.sessions_failed, 0);
        assert!(fixed.goodput_kbps() > 0.0);
        assert!(fixed.energy_per_byte_uj().is_finite());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The controller is a pure function of its feedback history:
        /// replaying any sequence reproduces the exact same state and
        /// the exact same next plan.
        #[test]
        fn policy_is_pure_in_its_history(seed in proptest::prelude::any::<u64>()) {
            let mut mix = crate::batch::Mix::new(crate::batch::derive_seed(seed, 0));
            let feedbacks: Vec<PolicyFeedback> = (0..24)
                .map(|_| {
                    let delivered = mix.unit() > 0.3;
                    let attempts = 1 + (mix.unit() * 3.0) as usize;
                    PolicyFeedback {
                        delivered,
                        payload_attempts: if delivered { attempts } else { 4 },
                        payload_failed: !delivered,
                        mode_failed: false,
                        low_snr: mix.unit() > 0.5,
                        fell_back: mix.unit() > 0.7,
                        dropped: (mix.unit() * 3.0) as usize,
                        field2_ran: mix.unit() > 0.2,
                    }
                })
                .collect();
            let mut p1 = LinkPolicy::default();
            let mut p2 = LinkPolicy::default();
            for fb in &feedbacks {
                p1.observe(fb);
            }
            for fb in &feedbacks {
                p2.observe(fb);
            }
            proptest::prop_assert_eq!(p1, p2);
            let base = SessionConfig::milback();
            proptest::prop_assert_eq!(
                p1.plan(&base, LinkMode::Uplink),
                p2.plan(&base, LinkMode::Uplink)
            );
        }

        /// Rate stays on the ladder and chirps stay in [2, 5] no matter
        /// what feedback arrives.
        #[test]
        fn policy_state_stays_in_bounds(seed in proptest::prelude::any::<u64>()) {
            let mut mix = crate::batch::Mix::new(crate::batch::derive_seed(seed, 1));
            let mut p = LinkPolicy::default();
            for _ in 0..64 {
                let delivered = mix.unit() > 0.4;
                p.observe(&PolicyFeedback {
                    delivered,
                    payload_attempts: (mix.unit() * 5.0) as usize,
                    payload_failed: !delivered && mix.unit() > 0.3,
                    mode_failed: !delivered,
                    low_snr: mix.unit() > 0.4,
                    fell_back: mix.unit() > 0.6,
                    dropped: (mix.unit() * 6.0) as usize,
                    field2_ran: mix.unit() > 0.3,
                });
                proptest::prop_assert!(UPLINK_RATES.contains(&p.uplink_bit_rate()));
                proptest::prop_assert!((2..=5).contains(&p.field2_chirps()));
                proptest::prop_assert!(p.extra_attempts() <= p.config.arq_extra_max);
            }
        }
    }
}
