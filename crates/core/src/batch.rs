//! Parallel batch-simulation engine.
//!
//! Every evaluation driver in this workspace has the same shape: run many
//! independent Monte-Carlo trials (or grid cells, or parameter points) and
//! aggregate. This module provides the one implementation of that shape —
//! deterministic regardless of thread count — and the experiment drivers,
//! ablations, site survey and `milback-bench` binaries all route through
//! it.
//!
//! Determinism contract: every trial's RNG seed is derived *only* from the
//! master seed and the trial's index ([`derive_seed`]), results land in
//! index-addressed slots, and no trial observes another trial's state. A
//! run with 16 worker threads is therefore bit-identical to a serial run —
//! covered by `tests/end_to_end.rs` and the seed-derivation property tests.
//!
//! Threads come from [`std::thread::scope`] (the workspace builds offline;
//! no external thread-pool crate). The worker count defaults to the
//! machine's available parallelism and can be pinned with the
//! `MILBACK_THREADS` environment variable (`MILBACK_THREADS=1` forces
//! serial execution, useful for benchmarking the speedup itself).
//!
//! Memory: each worker thread carries its own thread-local
//! [`milback_ap::workspace::DspWorkspace`] (plus the thread-local FFT plan
//! cache), so a worker warms its DSP buffers on its first trial and every
//! later trial in the batch runs allocation-free through the hot pipeline
//! (DESIGN.md §12). Buffer placement never changes FP values, so the
//! determinism contract above is unaffected.

use milback_telemetry as telemetry;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// One trial's identity within a batch: its index in the batch and the
/// RNG seed derived for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Index of this trial within the batch, `0..n`.
    pub index: usize,
    /// Deterministic per-trial seed, [`derive_seed`]`(master, index)`.
    pub seed: u64,
}

/// Derives the RNG seed for trial `index` of a batch keyed by `master`.
///
/// ```
/// use milback::batch::derive_seed;
/// // Depends only on (master, index) — never on thread schedule.
/// assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
/// assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
/// assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
/// ```
///
/// SplitMix64-style finalizer over `master ^ index·φ` (φ = 2⁶⁴/golden
/// ratio, odd). For a fixed master the map `index → seed` is injective:
/// `index·φ` is a bijection mod 2⁶⁴ (φ is odd) and the finalizer is a
/// bijection, so two distinct trial indices can never collide. The seed
/// depends only on `(master, index)` — never on execution order — which is
/// what makes the engine thread-count-invariant.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut z = master ^ index.wrapping_mul(PHI);
    z = z.wrapping_add(PHI);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Crate-internal SplitMix64 stream for synthetic-input generation
/// (traffic schedules, rosters, workload draws — mirrors the generator
/// in `milback_rf::faults`). NOT for channel/noise randomness: networks
/// draw from their seeded `StdRng`. Seed it with [`derive_seed`] so the
/// stream depends only on (master, index).
pub(crate) struct Mix(u64);

impl Mix {
    pub(crate) fn new(seed: u64) -> Self {
        Self(seed)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub(crate) fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The number of worker threads the engine uses: `MILBACK_THREADS` when
/// set (≥ 1), otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    static COUNT: OnceLock<usize> = OnceLock::new();
    *COUNT.get_or_init(|| {
        if let Ok(v) = std::env::var("MILBACK_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Parallel map preserving input order: `out[i] == f(&items[i], i)` no
/// matter how many worker threads run. Work is distributed by an atomic
/// cursor, so uneven per-item cost does not idle workers.
pub fn par_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I, usize) -> T + Sync,
{
    par_map_with_threads(items, thread_count(), f)
}

/// [`par_map`] with an explicit worker count (`1` runs inline on the
/// calling thread). Exists so tests can compare thread counts directly.
pub fn par_map_with_threads<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I, usize) -> T + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    let batch_span = telemetry::span("core.batch.run.ns");
    telemetry::counter_add("core.batch.items", n as u64);
    telemetry::gauge_set("core.batch.threads", threads as f64);
    let t0 = telemetry::enabled().then(std::time::Instant::now);
    // One trial's work, with its per-item span (recorded into the worker
    // thread's shard and merged at snapshot).
    let run_one = |it: &I, i: usize| telemetry::time("core.batch.item.ns", || f(it, i));
    let out = if threads <= 1 || n <= 1 {
        items
            .iter()
            .enumerate()
            .map(|(i, it)| run_one(it, i))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = run_one(&items[i], i);
                    // A poisoned slot mutex just means another worker
                    // panicked; take the lock anyway — the panic will
                    // propagate out of the scope regardless.
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("worker skipped a slot")
            })
            .collect()
    };
    if let Some(t0) = t0 {
        let elapsed = t0.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            telemetry::gauge_set("core.batch.items_per_s", n as f64 / elapsed);
        }
    }
    batch_span.end();
    out
}

/// Pooled claim flags for [`run_stealing_with_threads`]: one atomic flag
/// per job, reused across calls so a long-lived serving engine's
/// steady-state dispatch allocates nothing once grown to its working
/// size. [`StealQueue::reset`] must be called with the job count before
/// each run.
#[derive(Debug, Default)]
pub struct StealQueue {
    flags: Vec<AtomicBool>,
}

impl StealQueue {
    /// An empty queue; grows to working size on first [`Self::reset`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the queue for `n` jobs: clears the first `n` claim flags
    /// and grows the backing store if (and only if) `n` exceeds every
    /// earlier reset.
    pub fn reset(&mut self, n: usize) {
        for f in self.flags.iter_mut().take(n) {
            *f.get_mut() = false;
        }
        while self.flags.len() < n {
            self.flags.push(AtomicBool::new(false));
        }
    }

    /// Jobs the queue can currently track without growing.
    pub fn capacity(&self) -> usize {
        self.flags.len()
    }
}

/// Runs jobs `0..n` across `threads` workers with **round-robin
/// ownership and work stealing**: worker `w` first claims its own lane
/// (jobs `w, w+threads, …`), then sweeps the whole range for jobs left
/// unclaimed by a slower worker. Claims are compare-and-swap on the
/// pooled flags in `queue`, so every job runs **exactly once** no matter
/// how workers race — and with `threads <= 1` the loop runs inline on
/// the calling thread, allocation-free.
///
/// This is the serving engine's dispatch layer (DESIGN.md §15): jobs are
/// per-node session chains, so stealing moves whole chains between
/// workers and per-node FIFO order is preserved by construction. Which
/// worker runs a chain never affects its result (determinism is the
/// caller's responsibility via index-derived seeds); only the
/// `core.batch.steal.local` counter is scheduling-dependent, and the
/// `.local` suffix excludes it from the deterministic telemetry view.
///
/// `queue` must have been [`StealQueue::reset`] with at least `n` jobs.
pub fn run_stealing_with_threads<F>(queue: &StealQueue, n: usize, threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    assert!(
        queue.flags.len() >= n,
        "StealQueue::reset(n) before running"
    );
    let threads = threads.max(1).min(n.max(1));
    telemetry::counter_add("core.batch.steal_jobs", n as u64);
    if threads <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    telemetry::gauge_set("core.batch.threads", threads as f64);
    let flags = &queue.flags[..n];
    let claim = |i: usize| {
        flags[i]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    };
    std::thread::scope(|s| {
        for w in 0..threads {
            let f = &f;
            let claim = &claim;
            s.spawn(move || {
                // Own lane first: round-robin ownership keeps workers on
                // disjoint jobs while everyone is busy.
                let mut i = w;
                while i < n {
                    if claim(i) {
                        f(i);
                    }
                    i += threads;
                }
                // Lane drained: steal whatever is still unclaimed.
                for i in 0..n {
                    if claim(i) {
                        telemetry::counter_add("core.batch.steal.local", 1);
                        f(i);
                    }
                }
            });
        }
    });
}

/// Runs `n` independent trials in parallel. `f` receives each trial's
/// [`Trial`] (index + derived seed) and results come back in index order.
///
/// ```
/// use milback::batch::{run_trials, run_trials_with_threads};
///
/// let f = |t: milback::batch::Trial| t.seed.rotate_left(t.index as u32);
/// // The deterministic contract: any thread count, identical results.
/// let parallel = run_trials(16, 42, f);
/// let serial = run_trials_with_threads(16, 42, 1, f);
/// assert_eq!(parallel, serial);
/// ```
pub fn run_trials<T, F>(n: usize, master_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Trial) -> T + Sync,
{
    run_trials_with_threads(n, master_seed, thread_count(), f)
}

/// [`run_trials`] with an explicit worker count, for determinism tests
/// and serial baselines.
pub fn run_trials_with_threads<T, F>(n: usize, master_seed: u64, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Trial) -> T + Sync,
{
    let trials: Vec<Trial> = (0..n)
        .map(|index| Trial {
            index,
            seed: derive_seed(master_seed, index as u64),
        })
        .collect();
    par_map_with_threads(&trials, threads, |t, _| f(*t))
}

/// Sweeps `params × trials`: for each parameter point, runs
/// `trials_per_point` trials, all scheduled on one flat parallel batch so
/// a slow parameter point does not serialize the sweep. Trial seeds are
/// derived from the *global* index (`param_idx · trials + trial`), so
/// adding parameter points does not reshuffle earlier points' seeds
/// within a run and results are again thread-count-invariant.
pub fn sweep<P, T, F>(params: &[P], trials_per_point: usize, master_seed: u64, f: F) -> Vec<Vec<T>>
where
    P: Sync,
    T: Send,
    F: Fn(&P, Trial) -> T + Sync,
{
    let jobs: Vec<(usize, Trial)> = (0..params.len() * trials_per_point)
        .map(|g| {
            (
                g / trials_per_point,
                Trial {
                    index: g % trials_per_point,
                    seed: derive_seed(master_seed, g as u64),
                },
            )
        })
        .collect();
    let flat = par_map(&jobs, |(pi, trial), _| f(&params[*pi], *trial));
    let mut out: Vec<Vec<T>> = Vec::with_capacity(params.len());
    let mut it = flat.into_iter();
    for _ in 0..params.len() {
        out.push(it.by_ref().take(trials_per_point).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 7] {
            let out = par_map_with_threads(&items, threads, |x, i| {
                assert_eq!(*x, i);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_trials_is_thread_count_invariant() {
        let f = |t: Trial| (t.index, t.seed, t.seed.wrapping_mul(t.index as u64 + 1));
        let serial = run_trials_with_threads(64, 42, 1, f);
        for threads in [2, 3, 8] {
            assert_eq!(run_trials_with_threads(64, 42, threads, f), serial);
        }
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_seed(7, i)), "collision at index {i}");
        }
    }

    #[test]
    fn different_masters_diverge() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        assert_ne!(derive_seed(1, 5), derive_seed(2, 5));
    }

    #[test]
    fn sweep_shape_and_seeds() {
        let params = [10.0f64, 20.0, 30.0];
        let out = sweep(&params, 4, 9, |p, t| (*p, t.index, t.seed));
        assert_eq!(out.len(), 3);
        for (pi, rows) in out.iter().enumerate() {
            assert_eq!(rows.len(), 4);
            for (j, (p, idx, seed)) in rows.iter().enumerate() {
                assert_eq!(*p, params[pi]);
                assert_eq!(*idx, j);
                assert_eq!(*seed, derive_seed(9, (pi * 4 + j) as u64));
            }
        }
    }

    #[test]
    fn run_stealing_executes_each_job_exactly_once() {
        let n = 103;
        let mut q = StealQueue::new();
        for threads in [1, 2, 8] {
            q.reset(n);
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            run_stealing_with_threads(&q, n, threads, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "job {i} at {threads} threads");
            }
        }
    }

    #[test]
    fn steal_queue_reset_reuses_allocation() {
        let mut q = StealQueue::new();
        q.reset(64);
        assert_eq!(q.capacity(), 64);
        // Shrinking and re-growing within the high-water mark never
        // reallocates (the backing store only ever grows).
        q.reset(16);
        q.reset(64);
        assert_eq!(q.capacity(), 64);
        run_stealing_with_threads(&q, 0, 4, |_| unreachable!("no jobs"));
    }

    #[test]
    fn empty_batch() {
        let out: Vec<u64> = run_trials(0, 5, |t| t.seed);
        assert!(out.is_empty());
        let out = par_map(&[] as &[u8], |_, _| 0u8);
        assert!(out.is_empty());
    }
}
