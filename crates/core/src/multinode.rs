//! Multi-node MilBack deployments (paper §7, last paragraph): one AP
//! serving several nodes by space-division multiplexing. The AP steers
//! its beams at one node per slot; the other nodes are physically present
//! in the channel (their residual reflections and mirror returns are
//! rendered), parked with both ports absorptive per the protocol.

use crate::config::{ApParams, Fidelity};
use crate::link::{UplinkReport, GUARD_SYMBOLS};
use crate::network::Network;
use milback_ap::ranging::LocalizationResult;
use milback_ap::tone_select::{select_tones, ToneSelection};
use milback_ap::uplink::{UplinkReceiver, UPLINK_PILOT};
use milback_dsp::num::Cpx;
use milback_dsp::signal::Signal;
use milback_hw::switch::{SwitchSchedule, SwitchState};
use milback_node::modulator::modulate_uplink;
use milback_node::node::BackscatterNode;
use milback_proto::bits::{bit_errors, symbols_to_bits, OaqfmSymbol};
use milback_proto::frame::{decode_frame, encode_frame};
use milback_proto::mac::{NodeId, PollSchedule};
use milback_proto::packet::LinkMode;
use milback_rf::channel::{NodeInterface, Scene, TxComponent};
use milback_rf::geometry::Pose;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deployment of one AP and several backscatter nodes.
#[derive(Debug, Clone)]
pub struct MultiNetwork {
    /// The shared propagation scene.
    pub scene: Scene,
    /// All nodes, indexed by [`NodeId`].
    pub nodes: Vec<BackscatterNode>,
    /// AP parameters.
    pub ap: ApParams,
    /// Waveform fidelity preset.
    pub fidelity: Fidelity,
    rng: StdRng,
}

/// Result of serving one node in a poll round.
#[derive(Debug, Clone)]
pub struct SlotResult {
    /// Which node was served.
    pub node: NodeId,
    /// Slot direction.
    pub mode: LinkMode,
    /// Localization fix obtained during the slot's preamble.
    pub fix: Option<LocalizationResult>,
    /// Uplink report (uplink slots).
    pub uplink: Option<UplinkReport>,
    /// Downlink report (downlink slots).
    pub downlink: Option<crate::link::DownlinkReport>,
}

impl MultiNetwork {
    /// Builds a deployment in the paper's indoor scene.
    pub fn new(poses: Vec<Pose>, fidelity: Fidelity, seed: u64) -> Self {
        assert!(!poses.is_empty(), "need at least one node");
        let scene = Scene::milback_indoor();
        Self {
            scene,
            nodes: poses.into_iter().map(BackscatterNode::milback).collect(),
            ap: ApParams::milback(),
            fidelity,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A single-node view of this deployment for node `id` with an
    /// explicit seed, sharing the scene and AP parameters — used to reuse
    /// the single-node pipelines where other nodes' contributions are
    /// negligible. `&self` so poll-round slots can build views
    /// concurrently.
    fn single_view_seeded(&self, id: NodeId, seed: u64) -> Network {
        let mut scene = self.scene.clone();
        scene.steer_towards(&self.nodes[id].pose.position);
        Network::from_parts(scene, self.nodes[id].clone(), self.ap, self.fidelity, seed)
    }

    /// Localizes node `id` with the AP steered at it, rendering **all**
    /// nodes into the capture: the target runs its localization
    /// modulation, the others are parked absorptive (their residual
    /// reflections are still present).
    pub fn localize_node(&mut self, id: NodeId) -> Option<LocalizationResult> {
        let seed = self.rng.gen();
        self.localize_node_seeded(id, seed)
    }

    /// [`Self::localize_node`] with an explicit noise seed. Takes `&self`:
    /// all randomness comes from the seed, so the batch engine can run
    /// slots for different nodes concurrently with identical results.
    pub fn localize_node_seeded(&self, id: NodeId, seed: u64) -> Option<LocalizationResult> {
        assert!(id < self.nodes.len(), "node id out of range");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scene = self.scene.clone();
        scene.steer_towards(&self.nodes[id].pose.position);

        let mut cfg = self.fidelity.sawtooth();
        cfg.amplitude = self.ap.tx.amplitude();
        let tx = cfg.sawtooth();
        let profile = milback_rf::channel::FreqProfile::Sawtooth(cfg);
        let mod_freq = self.fidelity.localization_mod_freq();
        let noise_p = milback_dsp::noise::thermal_noise_power(tx.fs, self.ap.capture_nf_db);

        let mut captures = Vec::with_capacity(5);
        for i in 0..5 {
            let t_off = i as f64 * cfg.duration;
            let comp = TxComponent {
                signal: tx.clone(),
                profile,
            };
            // Build per-node gamma closures: target modulates, rest park.
            let sched_on = SwitchSchedule::SquareWave {
                freq_hz: mod_freq,
                first: SwitchState::Reflective,
            };
            let sched_off = SwitchSchedule::Constant(SwitchState::Absorptive);
            let mut pair = Vec::with_capacity(2);
            for ant in 0..2 {
                // NodeInterface borrows the closures, so assemble per
                // antenna render.
                let gammas: Vec<Box<dyn Fn(f64) -> [Cpx; 2]>> = self
                    .nodes
                    .iter()
                    .enumerate()
                    .map(|(k, node)| {
                        let switch = node.switch;
                        let two_way = 10f64.powf(-2.0 * node.impl_loss_db / 20.0);
                        let a = if k == id {
                            sched_on.clone()
                        } else {
                            sched_off.clone()
                        };
                        let b = sched_off.clone();
                        Box::new(move |t: f64| {
                            [
                                switch.gamma(a.state_at(t_off + t)) * two_way,
                                switch.gamma(b.state_at(t_off + t)) * two_way,
                            ]
                        }) as Box<dyn Fn(f64) -> [Cpx; 2]>
                    })
                    .collect();
                let ifaces: Vec<NodeInterface<'_>> = self
                    .nodes
                    .iter()
                    .zip(&gammas)
                    .map(|(node, g)| NodeInterface {
                        pose: node.pose,
                        fsa: &node.fsa,
                        gamma: g.as_ref(),
                    })
                    .collect();
                let mut rx = scene.monostatic_rx_multi(&comp, &ifaces, ant);
                milback_dsp::noise::add_awgn(&mut rx, noise_p, &mut rng);
                pair.push(rx);
            }
            captures.push([pair[0].clone(), pair[1].clone()]);
        }

        let mut loc_cfg = self.fidelity.sawtooth();
        loc_cfg.amplitude = self.ap.tx.amplitude();
        let localizer = milback_ap::ranging::Localizer::new(
            milback_ap::dechirp::RangeProcessor::new(loc_cfg, 2),
        );
        localizer.process(&tx, &captures)
    }

    /// Runs an uplink slot for node `id` with every node rendered:
    /// the target modulates its frame, the others stay absorptive.
    pub fn uplink_from(
        &mut self,
        id: NodeId,
        payload: &[u8],
        symbol_rate: f64,
    ) -> Option<UplinkReport> {
        let seed = self.rng.gen();
        self.uplink_from_seeded(id, payload, symbol_rate, seed)
    }

    /// [`Self::uplink_from`] with an explicit receiver-noise seed; `&self`
    /// for the same concurrent-slot reason as
    /// [`Self::localize_node_seeded`].
    pub fn uplink_from_seeded(
        &self,
        id: NodeId,
        payload: &[u8],
        symbol_rate: f64,
        seed: u64,
    ) -> Option<UplinkReport> {
        assert!(id < self.nodes.len(), "node id out of range");
        let mut scene = self.scene.clone();
        scene.steer_towards(&self.nodes[id].pose.position);

        let inc = self.nodes[id].pose.incidence_from(&scene.tx_pos);
        let tones = select_tones(&self.nodes[id].fsa, inc, crate::link::MIN_TONE_SEPARATION)?;
        let (f_a, f_b) = match tones {
            ToneSelection::Dual { f_a, f_b } => (f_a, f_b),
            ToneSelection::Single { f } => (f, f),
        };

        let frame = encode_frame(payload);
        let mut symbols: Vec<OaqfmSymbol> = UPLINK_PILOT.to_vec();
        symbols.extend_from_slice(&frame);
        let n_symbols = symbols.len();
        let t0 = GUARD_SYMBOLS as f64 / symbol_rate;
        let total_t = (n_symbols + 2 * GUARD_SYMBOLS) as f64 / symbol_rate;

        let fs = (2.5 * (f_a - f_b).abs()).max(200e6);
        let fc = 0.5 * (f_a + f_b);
        let n = (total_t * fs).round() as usize;
        let amp = self.ap.tx.amplitude() / 2f64.sqrt();
        let comp_a = TxComponent::tone(Signal::tone(fs, fc, f_a - fc, amp, n), f_a);
        let comp_b = TxComponent::tone(Signal::tone(fs, fc, f_b - fc, amp, n), f_b);

        // A symbol rate beyond the node's switch capability is a
        // planning error — reject the slot gracefully, like the
        // single-node uplink does.
        let Ok((sched_a, sched_b)) =
            modulate_uplink(&self.nodes[id].switch, &symbols, t0, symbol_rate)
        else {
            milback_telemetry::counter_add("core.link.uplink.rejected", 1);
            return None;
        };
        let parked = SwitchSchedule::Constant(SwitchState::Absorptive);

        let gammas: Vec<Box<dyn Fn(f64) -> [Cpx; 2]>> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(k, node)| {
                let switch = node.switch;
                let two_way = 10f64.powf(-2.0 * node.impl_loss_db / 20.0);
                let (a, b) = if k == id {
                    (sched_a.clone(), sched_b.clone())
                } else {
                    (parked.clone(), parked.clone())
                };
                Box::new(move |t: f64| {
                    [
                        switch.gamma(a.state_at(t)) * two_way,
                        switch.gamma(b.state_at(t)) * two_way,
                    ]
                }) as Box<dyn Fn(f64) -> [Cpx; 2]>
            })
            .collect();
        let ifaces: Vec<NodeInterface<'_>> = self
            .nodes
            .iter()
            .zip(&gammas)
            .map(|(node, g)| NodeInterface {
                pose: node.pose,
                fsa: &node.fsa,
                gamma: g.as_ref(),
            })
            .collect();
        let mut rx0 = scene.monostatic_rx_multi(&comp_a, &ifaces, 0);
        rx0.add(&scene.monostatic_rx_multi(&comp_b, &ifaces, 0));
        let mut rx1 = scene.monostatic_rx_multi(&comp_a, &ifaces, 1);
        rx1.add(&scene.monostatic_rx_multi(&comp_b, &ifaces, 1));
        drop(ifaces);

        let mut receiver = UplinkReceiver::milback(symbol_rate);
        receiver.lna.nf_db = 3.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let (got, stats) = receiver.demodulate(&rx0, &rx1, f_a, f_b, t0, n_symbols, &mut rng);
        let got_frame = &got[UPLINK_PILOT.len()..];
        let sent_bits = symbols_to_bits(&frame);
        let got_bits = symbols_to_bits(got_frame);
        Some(UplinkReport {
            tones,
            payload: decode_frame(got_frame, payload.len()),
            bit_errors: bit_errors(&sent_bits, &got_bits),
            total_bits: sent_bits.len(),
            snr: stats.snr,
        })
    }

    /// Runs one full round of a polling schedule: per slot, steer at the
    /// node, localize it, then run the slot's payload direction. Downlink
    /// slots reuse the single-node pipeline (other nodes are absorptive
    /// and do not affect a one-way link).
    ///
    /// Per-slot seeds are drawn from the deployment RNG serially, in slot
    /// order, before any simulation runs; the slots themselves then
    /// execute on the batch engine through the seeded `&self` methods, so
    /// the round's results do not depend on the worker-thread count.
    pub fn run_round(
        &mut self,
        schedule: &PollSchedule,
        payloads: &[Vec<u8>],
        symbol_rate: f64,
    ) -> Vec<SlotResult> {
        let slots: Vec<(milback_proto::mac::PollSlot, u64, u64)> = schedule
            .slots()
            .iter()
            .map(|slot| (*slot, self.rng.gen(), self.rng.gen()))
            .collect();
        crate::batch::par_map(&slots, |&(slot, loc_seed, link_seed), _| {
            let fix = self.localize_node_seeded(slot.node, loc_seed);
            let payload = &payloads[slot.node % payloads.len()];
            let (uplink, downlink) = match slot.mode {
                LinkMode::Uplink => (
                    self.uplink_from_seeded(slot.node, payload, symbol_rate, link_seed),
                    None,
                ),
                LinkMode::Downlink => {
                    // One-way: other nodes don't reflect into the target
                    // node's detectors; the single-node view is exact.
                    let mut view = self.single_view_seeded(slot.node, link_seed);
                    (None, view.downlink(payload, 1e6, true))
                }
            };
            SlotResult {
                node: slot.node,
                mode: slot.mode,
                fix,
                uplink,
                downlink,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_rf::geometry::deg_to_rad;

    fn three_nodes() -> Vec<Pose> {
        vec![
            Pose::facing_ap(2.0, deg_to_rad(-20.0), deg_to_rad(10.0)),
            Pose::facing_ap(3.5, 0.0, deg_to_rad(-12.0)),
            Pose::facing_ap(5.0, deg_to_rad(25.0), deg_to_rad(15.0)),
        ]
    }

    #[test]
    fn localizes_each_node_individually() {
        let mut net = MultiNetwork::new(three_nodes(), Fidelity::Fast, 61);
        let truths = [2.0, 3.5, 5.0];
        for (id, truth) in truths.iter().enumerate() {
            let fix = net
                .localize_node(id)
                .unwrap_or_else(|| panic!("node {id} lost"));
            assert!(
                (fix.range - truth).abs() < 0.2,
                "node {id}: {} vs {truth}",
                fix.range
            );
        }
    }

    #[test]
    fn uplink_per_node_with_others_present() {
        let mut net = MultiNetwork::new(three_nodes(), Fidelity::Fast, 62);
        for id in 0..3 {
            let payload = vec![id as u8 * 31 + 1; 8];
            let r = net
                .uplink_from(id, &payload, 5e6)
                .unwrap_or_else(|| panic!("node {id} no uplink"));
            assert_eq!(r.bit_errors, 0, "node {id} snr {}", r.snr);
            assert_eq!(r.payload.as_deref().unwrap(), &payload[..]);
        }
    }

    #[test]
    fn full_polling_round() {
        let mut net = MultiNetwork::new(three_nodes(), Fidelity::Fast, 63);
        let schedule = PollSchedule::round_robin_uplink(3);
        let payloads: Vec<Vec<u8>> = (0..3).map(|k| vec![k as u8; 8]).collect();
        let results = net.run_round(&schedule, &payloads, 5e6);
        assert_eq!(results.len(), 3);
        for (k, r) in results.iter().enumerate() {
            assert_eq!(r.node, k);
            assert!(r.fix.is_some(), "node {k} not localized in round");
            let ul = r
                .uplink
                .as_ref()
                .unwrap_or_else(|| panic!("node {k} no uplink"));
            assert_eq!(ul.payload.as_deref().unwrap(), &payloads[k][..]);
        }
    }
}
