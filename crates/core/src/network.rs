//! The end-to-end MilBack network: one AP, one channel scene, one node.
//!
//! `Network` owns the scene, the node and the AP parameters, and runs the
//! paper's procedures signal-by-signal: Field-2 localization (§5.1),
//! orientation sensing at the AP (§5.2a) and at the node (§5.2b). The
//! communication procedures live in [`crate::link`].

use crate::config::{ApParams, Fidelity};
use crate::link::LinkScratch;
use milback_ap::dechirp::RangeProcessor;
use milback_ap::orientation::ApOrientationEstimator;
use milback_ap::ranging::{LocalizationResult, Localizer};
use milback_dsp::chirp::ChirpConfig;
use milback_dsp::noise::{add_awgn, thermal_noise_power};
use milback_dsp::num::Cpx;
use milback_dsp::signal::Signal;
use milback_hw::switch::{SwitchSchedule, SwitchState};
use milback_node::node::BackscatterNode;
use milback_node::orientation::NodeOrientationEstimator;
use milback_rf::channel::{FreqProfile, NodeInterface, Scene, TxComponent};
use milback_rf::faults::FaultPlan;
use milback_rf::fsa::{DualPortFsa, Port};
use milback_rf::geometry::Pose;
use milback_rf::workspace::{wave_fingerprint, with_channel_workspace, ChannelWorkspace};
use milback_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;

/// A neighboring node whose leftover reflection clutters this network's
/// Field-2 captures (inter-node interference, DESIGN.md §16). Plain
/// `Copy` data so the dense-network fabric can refill a pooled list per
/// slot without allocating: the pose is in *this* network's AP-local
/// frame, and `gamma` is the neighbor's constant parked reflection
/// coefficient pair (see `BackscatterNode::parked_gamma`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interferer {
    /// Neighbor pose in this network's AP-local frame.
    pub pose: Pose,
    /// The neighbor's FSA (its frequency-selective reflection shapes the
    /// clutter spectrum).
    pub fsa: DualPortFsa,
    /// Constant `[Γ_A, Γ_B]` of the parked neighbor.
    pub gamma: [Cpx; 2],
}

/// Reusable buffers and cached identity for a Field-2 render
/// (DESIGN.md §13). Holds the TX reference, the per-chirp capture
/// pairs, and the channel component with its waveform fingerprint so a
/// warmed burst re-renders with **zero** heap allocations
/// (`tests/zero_alloc.rs`).
#[derive(Debug)]
pub struct Field2Burst {
    /// TX reference chirp of the last render.
    pub tx: Signal,
    /// Per-chirp capture pairs (`[antenna 0, antenna 1]`).
    pub captures: Vec<[Signal; 2]>,
    /// The channel component (TX chirp + frequency profile), kept so
    /// repeat bursts skip the template clone.
    comp: Option<TxComponent>,
    /// `wave_fingerprint` of `comp`, cached alongside it.
    wave_fp: u64,
    /// The chirp config `comp`/`wave_fp` were built for.
    comp_cfg: Option<ChirpConfig>,
}

/// Placeholder for not-yet-rendered capture slots (`Signal` requires a
/// positive sample rate, so it has no `Default`). The render overwrites
/// `fs`/`fc` and resizes the buffer.
fn empty_signal() -> Signal {
    Signal::zeros(1.0, 0.0, 0)
}

impl Default for Field2Burst {
    fn default() -> Self {
        Self {
            tx: empty_signal(),
            captures: Vec::new(),
            comp: None,
            wave_fp: 0,
            comp_cfg: None,
        }
    }
}

thread_local! {
    static BURST: RefCell<Field2Burst> = RefCell::new(Field2Burst::default());
}

/// Runs `f` with this thread's shared [`Field2Burst`] buffers (the
/// render-side analogue of `milback_ap::with_workspace`). Re-entrant
/// checkouts fall back to a fresh temporary burst.
pub fn with_field2_burst<R>(f: impl FnOnce(&mut Field2Burst) -> R) -> R {
    BURST.with(|b| match b.try_borrow_mut() {
        Ok(mut burst) => f(&mut burst),
        Err(_) => f(&mut Field2Burst::default()),
    })
}

/// A complete single-node MilBack deployment.
#[derive(Debug, Clone)]
pub struct Network {
    /// The propagation scene (clutter, antennas, self-interference).
    pub scene: Scene,
    /// The backscatter node.
    pub node: BackscatterNode,
    /// AP transmit/capture parameters.
    pub ap: ApParams,
    /// Waveform fidelity preset.
    pub fidelity: Fidelity,
    /// Scheduled channel impairments (empty by default; when empty every
    /// render path is bitwise identical to the fault-free build).
    pub faults: FaultPlan,
    /// Session clock, seconds. Render paths evaluate fault windows at
    /// `clock_s + local offset`; the [`crate::session`] supervisor
    /// advances it across fields and recovery backoff.
    pub clock_s: f64,
    /// Parked neighbors whose residual reflections are layered into every
    /// Field-2 capture as clutter (empty by default; when empty the
    /// render is bitwise identical to the interference-free build — no
    /// extra RNG draws, no extra arithmetic). The dense-network fabric
    /// fills this per scheduled slot.
    pub interferers: Vec<Interferer>,
    /// Force every tone plan down to single-carrier OOK, regardless of
    /// orientation (the adaptive controller's CW-interference fallback,
    /// DESIGN.md §18). `false` by default; the collapse happens *after*
    /// [`milback_ap::tone_select::select_tones`], so enabling it changes
    /// no RNG draw order — only the carrier plan the link runs.
    pub force_single_tone: bool,
    rng: StdRng,
    /// Pooled link-layer working buffers: downlink/uplink transfers
    /// `mem::take` this, reuse its capacity, and put it back, so warmed
    /// transfers stop allocating (`tests/zero_alloc.rs`).
    pub(crate) link_scratch: LinkScratch,
}

impl Network {
    /// Builds a network with the node at `pose` in the paper's indoor
    /// scene, with the AP's beams steered at the node (the paper steers
    /// mechanically).
    pub fn new(pose: Pose, fidelity: Fidelity, seed: u64) -> Self {
        let mut scene = Scene::milback_indoor();
        scene.steer_towards(&pose.position);
        Self {
            scene,
            node: BackscatterNode::milback(pose),
            ap: ApParams::milback(),
            fidelity,
            faults: FaultPlan::none(),
            clock_s: 0.0,
            interferers: Vec::new(),
            force_single_tone: false,
            rng: StdRng::seed_from_u64(seed),
            link_scratch: LinkScratch::default(),
        }
    }

    /// Assembles a network from explicit parts (used by the multi-node
    /// deployment to create per-slot single-node views).
    pub fn from_parts(
        scene: Scene,
        node: BackscatterNode,
        ap: ApParams,
        fidelity: Fidelity,
        seed: u64,
    ) -> Self {
        Self {
            scene,
            node,
            ap,
            fidelity,
            faults: FaultPlan::none(),
            clock_s: 0.0,
            interferers: Vec::new(),
            force_single_tone: false,
            rng: StdRng::seed_from_u64(seed),
            link_scratch: LinkScratch::default(),
        }
    }

    /// Builds a clutter-free network (for microbenchmarks).
    pub fn free_space(pose: Pose, fidelity: Fidelity, seed: u64) -> Self {
        let mut scene = Scene::free_space();
        scene.steer_towards(&pose.position);
        Self {
            scene,
            node: BackscatterNode::milback(pose),
            ap: ApParams::milback(),
            fidelity,
            faults: FaultPlan::none(),
            clock_s: 0.0,
            interferers: Vec::new(),
            force_single_tone: false,
            rng: StdRng::seed_from_u64(seed),
            link_scratch: LinkScratch::default(),
        }
    }

    /// Moves the node (and re-steers the AP).
    pub fn set_node_pose(&mut self, pose: Pose) {
        self.node.pose = pose;
        self.scene.steer_towards(&pose.position);
    }

    /// The node's true incidence angle (ground-truth orientation).
    pub fn true_orientation(&self) -> f64 {
        self.node.pose.incidence_from(&self.scene.tx_pos)
    }

    /// The node's true range from the AP TX antenna.
    pub fn true_range(&self) -> f64 {
        self.scene.tx_pos.distance_to(&self.node.pose.position)
    }

    /// The node's true azimuth as seen from the AP.
    pub fn true_angle(&self) -> f64 {
        self.scene.tx_pos.bearing_to(&self.node.pose.position)
    }

    /// Access to the seeded RNG (experiments thread all randomness through
    /// here so runs are reproducible).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Re-seeds the RNG in place (allocation-free: `StdRng` is a plain
    /// struct). The serving engine keeps one pooled `Network` per node
    /// lane and reseeds it with `derive_seed(master, ticket)` at the
    /// start of every session, so outcomes depend only on the submission
    /// index — never on which worker ran the lane or what ran before.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    // ------------------------------------------------------------------
    // Field 2: localization + AP-side orientation
    // ------------------------------------------------------------------

    /// Renders the AP's captures of the five Field-2 chirps at both RX
    /// antennas, with the node running its localization modulation.
    ///
    /// Returns `(tx_reference, captures)` where `captures[i]` holds the
    /// two antennas' captures of chirp `i`, already including capture
    /// noise and trigger jitter.
    pub fn field2_captures(&mut self) -> (Signal, Vec<[Signal; 2]>) {
        self.field2_captures_n(5)
    }

    /// Like [`Self::field2_captures`] with a configurable chirp count
    /// (for the chirp-count ablation; the paper uses five). Allocating
    /// wrapper over [`Self::field2_captures_into`].
    pub fn field2_captures_n(&mut self, n_chirps: usize) -> (Signal, Vec<[Signal; 2]>) {
        let mut burst = Field2Burst::default();
        with_channel_workspace(|cw| self.field2_captures_into(cw, n_chirps, &mut burst));
        (burst.tx, burst.captures)
    }

    /// Renders a Field-2 burst into reusable [`Field2Burst`] buffers
    /// through the cached channel-synthesis path (DESIGN.md §13).
    /// Bitwise identical to [`Self::field2_captures_n`] — same RNG draw
    /// order (one jitter gaussian per chirp, then per-antenna AWGN) and
    /// the same sample arithmetic; only the buffer management differs.
    /// After warm-up (same scene/pose/fidelity on this thread), a burst
    /// performs zero steady-state heap allocations.
    pub fn field2_captures_into(
        &mut self,
        cw: &mut ChannelWorkspace,
        n_chirps: usize,
        burst: &mut Field2Burst,
    ) {
        assert!(n_chirps >= 2, "need at least two chirps");
        let cfg = self.fidelity.sawtooth();
        let mut chirp_cfg = cfg;
        chirp_cfg.amplitude = self.ap.tx.amplitude();
        // The TX chirp is loop-invariant across chirps AND trials: fetch it
        // from the process-wide template cache (bitwise identical to fresh
        // synthesis) instead of re-synthesizing 6400 samples per burst.
        // One channel component serves every chirp; only the node's switch
        // schedule (captured in `gamma`) varies with the chirp index — so
        // the component and its waveform fingerprint are cached in the
        // burst and rebuilt only when the chirp config changes.
        let template = milback_dsp::template::sawtooth(&chirp_cfg);
        burst.tx.copy_from(template.as_ref());
        let comp: &TxComponent = if burst.comp_cfg == Some(chirp_cfg) && burst.comp.is_some() {
            match burst.comp.as_ref() {
                Some(c) => c,
                // Checked `is_some` above; unreachable.
                None => return,
            }
        } else {
            let fresh = TxComponent {
                signal: template.as_ref().clone(),
                profile: FreqProfile::Sawtooth(chirp_cfg),
            };
            burst.wave_fp = wave_fingerprint(&fresh);
            burst.comp_cfg = Some(chirp_cfg);
            burst.comp.insert(fresh)
        };
        let wave_fp = burst.wave_fp;

        let mod_freq = self.fidelity.localization_mod_freq();
        let schedule_a = SwitchSchedule::SquareWave {
            freq_hz: mod_freq,
            first: SwitchState::Reflective,
        };
        let schedule_b = SwitchSchedule::Constant(SwitchState::Absorptive);

        let noise_p = thermal_noise_power(burst.tx.fs, self.ap.capture_nf_db);
        milback_dsp::buffer::track_growth(&mut burst.captures, n_chirps);
        burst.captures.truncate(n_chirps);
        while burst.captures.len() < n_chirps {
            burst.captures.push([empty_signal(), empty_signal()]);
        }
        // Backscatter passes the node's implementation loss twice.
        let two_way_loss = 10f64.powf(-2.0 * self.node.impl_loss_db / 20.0);
        // Inter-node interference accounting (DESIGN.md §16). The loop
        // below adds each parked neighbor's reflection into every
        // capture *deterministically* — counts depend only on the slot's
        // interferer list, never on thread schedule — so these counters
        // stay in the deterministic telemetry view. An empty list skips
        // everything, keeping the single-node render bitwise unchanged.
        if !self.interferers.is_empty() {
            telemetry::counter_add("net.interference.bursts", 1);
            telemetry::counter_add("net.interference.neighbors", self.interferers.len() as u64);
            telemetry::counter_add(
                "net.interference.rays",
                (n_chirps * 2 * self.interferers.len()) as u64,
            );
        }
        for (i, pair) in burst.captures.iter_mut().enumerate() {
            let t_off = i as f64 * chirp_cfg.duration;
            let switch = self.node.switch;
            let gamma = |t: f64| -> [Cpx; 2] {
                [
                    switch.gamma(schedule_a.state_at(t_off + t)) * two_way_loss,
                    switch.gamma(schedule_b.state_at(t_off + t)) * two_way_loss,
                ]
            };
            let node_if = NodeInterface {
                pose: self.node.pose,
                fsa: &self.node.fsa,
                gamma: &gamma,
            };
            // Common trigger jitter for both antennas of this chirp. The
            // TX and RX share the synthesizer, so jitter shifts only the
            // sampling window (an envelope delay) — it does NOT rotate the
            // carrier, which is what keeps background subtraction coherent
            // chirp-to-chirp in the real system too.
            let jitter = milback_dsp::noise::gaussian(&mut self.rng).abs() * self.ap.jitter_rms;
            for (ant, rx) in pair.iter_mut().enumerate() {
                self.scene.monostatic_rx_multi_into(
                    cw,
                    comp,
                    wave_fp,
                    std::slice::from_ref(&node_if),
                    ant,
                    rx,
                );
                // Parked neighbors' residual reflections layer in next —
                // after the target's return (matching the multi-node
                // slice order) and before jitter/noise, so the clutter
                // rides the same capture window. Constant Γ per
                // neighbor, no RNG draws: an empty list is bitwise free.
                for itf in &self.interferers {
                    let parked = itf.gamma;
                    let parked_gamma = move |_t: f64| parked;
                    self.scene.accumulate_backscatter_into(
                        cw,
                        comp,
                        wave_fp,
                        &NodeInterface {
                            pose: itf.pose,
                            fsa: &itf.fsa,
                            gamma: &parked_gamma,
                        },
                        ant,
                        rx,
                    );
                }
                if jitter > 0.0 {
                    rx.delay_in_place(jitter);
                }
                add_awgn(rx, noise_p, &mut self.rng);
                // Scheduled impairments go in last — after the cached
                // channel response and the receiver noise — so the
                // content-fingerprint caches stay valid and an empty
                // plan leaves the capture bitwise untouched.
                self.faults.apply_to_rx(self.clock_s + t_off, i, rx);
            }
        }
    }

    /// Runs the full §5.1 localization: Field-2 capture → dechirp →
    /// background subtraction → range + angle.
    pub fn localize(&mut self) -> Option<LocalizationResult> {
        // Render into the thread-local burst buffers through the cached
        // channel path, then process in the thread-local DSP workspace:
        // batch workers reuse both trial after trial (bitwise identical
        // to the allocating pipeline, pinned by
        // tests/workspace_equivalence.rs and tests/channel_equivalence.rs).
        with_field2_burst(|burst| {
            with_channel_workspace(|cw| self.field2_captures_into(cw, 5, burst));
            let localizer = self.localizer();
            milback_ap::with_workspace(|ws| localizer.process_with(ws, &burst.tx, &burst.captures))
        })
    }

    /// The localizer matching this network's fidelity.
    pub fn localizer(&self) -> Localizer {
        let mut cfg = self.fidelity.sawtooth();
        cfg.amplitude = self.ap.tx.amplitude();
        Localizer::new(RangeProcessor::new(cfg, 2))
    }

    /// Runs §5.2(a): AP-side orientation sensing — the paper's FFT →
    /// background subtraction → gate → IFFT flow. Returns the estimated
    /// incidence angle (radians).
    pub fn sense_orientation_at_ap(&mut self) -> Option<f64> {
        with_field2_burst(|burst| {
            with_channel_workspace(|cw| self.field2_captures_into(cw, 5, burst));
            let tx = &burst.tx;
            let captures = &burst.captures;
            let localizer = self.localizer();
            let est = ApOrientationEstimator::new(self.fidelity.sawtooth());
            milback_ap::with_workspace(|ws| {
                localizer.profile_diffs_with(ws, tx, captures);
                // Locate the node's range bin from the combined detection
                // spectrum, exactly as localization does.
                milback_ap::background::detection_spectrum_into(&ws.diffs[0], &mut ws.det[0]);
                milback_ap::background::detection_spectrum_into(&ws.diffs[1], &mut ws.det[1]);
                milback_dsp::buffer::track_growth(&mut ws.det_sum, ws.det[0].len());
                ws.det_sum.clear();
                ws.det_sum
                    .extend(ws.det[0].iter().zip(&ws.det[1]).map(|(a, b)| a + b));
                let node_bin =
                    localizer.find_node_bin_with(&ws.det_sum, tx.fs, &mut ws.floor_scratch)?;
                // Use the difference pair with the most node energy.
                let d0 = &ws.diffs[0];
                let best = (0..d0.len()).max_by(|&i, &j| {
                    let e = |k: usize| -> f64 {
                        let lo = node_bin.saturating_sub(2);
                        let hi = (node_bin + 3).min(d0[k].len());
                        d0[k][lo..hi].iter().map(|c| c.norm_sq()).sum()
                    };
                    e(i).total_cmp(&e(j))
                })?;
                // Gate half-width: the beam bump's spectral spread is a few tens
                // of bins at these chirp lengths.
                let half = (localizer.proc.fft_len / 100).max(16);
                est.estimate_gated(
                    &d0[best],
                    node_bin,
                    half,
                    tx.fs,
                    tx.len(),
                    &self.node.fsa,
                    Port::A,
                )
            })
        })
    }

    // ------------------------------------------------------------------
    // Field 1: node-side orientation
    // ------------------------------------------------------------------

    /// Renders the node's ADC captures of one Field-1 triangular chirp at
    /// both ports (both ports absorptive/listening).
    pub fn field1_node_captures(&mut self) -> (Vec<f64>, Vec<f64>) {
        let mut cfg = self.fidelity.triangular();
        cfg.amplitude = self.ap.tx.amplitude();
        let tx = cfg.triangular();
        let profile = FreqProfile::Triangular(cfg);
        let comp = TxComponent {
            signal: tx,
            profile,
        };
        let at_a = self
            .scene
            .to_node_port(&comp, &self.node.pose, &self.node.fsa, Port::A);
        let at_b = self
            .scene
            .to_node_port(&comp, &self.node.pose, &self.node.fsa, Port::B);
        let mut cap_a = self.node.receive_port(&at_a, &mut self.rng);
        let mut cap_b = self.node.receive_port(&at_b, &mut self.rng);
        // Node-side impairments act on the detector output (blockage,
        // saturation, droop); no-op when the plan is empty.
        let adc_fs = self.node.adc.sample_rate;
        self.faults.apply_to_video(self.clock_s, adc_fs, &mut cap_a);
        self.faults.apply_to_video(self.clock_s, adc_fs, &mut cap_b);
        (cap_a, cap_b)
    }

    /// Runs §5.2(b): the node estimates its own orientation from the
    /// triangular chirp's peak separation.
    pub fn sense_orientation_at_node(&mut self) -> Option<f64> {
        let (cap_a, cap_b) = self.field1_node_captures();
        let mut est = NodeOrientationEstimator::milback();
        est.chirp = self.fidelity.triangular();
        est.sample_rate = self.node.adc.sample_rate;
        est.estimate(&self.node.fsa, &cap_a, &cap_b)
    }

    /// Convenience for experiments: a fresh sub-RNG seeded from the main
    /// one.
    pub fn fork_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.rng.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_rf::geometry::{deg_to_rad, rad_to_deg};

    #[test]
    fn localizes_node_in_clutter() {
        let pose = Pose::facing_ap(3.0, 0.0, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, 1);
        let fix = net.localize().expect("localization failed");
        assert!(
            (fix.range - 3.0).abs() < 0.15,
            "range {} vs true 3.0",
            fix.range
        );
        let angle = fix.angle.expect("no angle");
        assert!(
            rad_to_deg(angle).abs() < 3.0,
            "angle {}°",
            rad_to_deg(angle)
        );
    }

    #[test]
    fn localizes_off_boresight_node() {
        let phi = deg_to_rad(10.0);
        let pose = Pose::facing_ap(2.0, phi, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, 2);
        let fix = net.localize().expect("localization failed");
        assert!((fix.range - 2.0).abs() < 0.15, "range {}", fix.range);
        let angle = fix.angle.expect("no angle");
        assert!(
            (rad_to_deg(angle) - 10.0).abs() < 3.0,
            "angle {}° vs true 10°",
            rad_to_deg(angle)
        );
    }

    #[test]
    fn ap_senses_node_orientation() {
        for deg in [-15.0, 10.0] {
            let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(deg));
            let mut net = Network::new(pose, Fidelity::Fast, 3);
            let est = net.sense_orientation_at_ap().expect("no estimate");
            // True incidence is −ψ for a node rotated by ψ.
            let true_inc = net.true_orientation();
            let err = rad_to_deg(est - true_inc).abs();
            assert!(err < 4.0, "ψ={deg}°: err {err}°");
        }
    }

    #[test]
    fn node_senses_own_orientation() {
        for deg in [-15.0, 0.0, 12.0] {
            let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(deg));
            let mut net = Network::new(pose, Fidelity::Fast, 4);
            let est = net.sense_orientation_at_node().expect("no estimate");
            let true_inc = net.true_orientation();
            let err = rad_to_deg(est - true_inc).abs();
            assert!(err < 4.0, "ψ={deg}°: err {err}°");
        }
    }

    #[test]
    fn ground_truth_helpers() {
        let pose = Pose::facing_ap(4.0, deg_to_rad(20.0), deg_to_rad(5.0));
        let net = Network::new(pose, Fidelity::Fast, 5);
        assert!((net.true_range() - 4.0).abs() < 1e-9);
        assert!((rad_to_deg(net.true_angle()) - 20.0).abs() < 1e-9);
        assert!((rad_to_deg(net.true_orientation()) + 5.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let pose = Pose::facing_ap(2.5, 0.0, 0.0);
        let a = Network::new(pose, Fidelity::Fast, 7).localize();
        let b = Network::new(pose, Fidelity::Fast, 7).localize();
        assert_eq!(a, b);
    }
}
