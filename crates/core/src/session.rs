//! Self-healing packet sessions (DESIGN.md §14).
//!
//! [`crate::protocol::PacketOutcome`] reports what happened in one shot
//! of the paper's §7 exchange — and under impairments it degrades to a
//! fistful of silent `None`s. This module is the supervisor a deployment
//! would actually run: bounded retry with exponential backoff on Field-1
//! mode detection, localization fallback to a reduced-chirp
//! background-subtraction estimate when Field-2 chirps die, ARQ-budgeted
//! payload delivery driven by the same [`Backoff`] policy, and a typed
//! [`SessionError`]/[`Degradation`] report in place of silence.
//!
//! Retries are not free: every render and every backoff advances
//! [`Network::clock_s`], the session clock the fault windows of
//! [`milback_rf::faults`] are scheduled against. Backing off past the
//! end of a blockage window is therefore *real* recovery — the retry
//! re-renders the channel at a later time and genuinely sees it clear —
//! which is what `tests/robustness.rs` pins.

use crate::link::{DownlinkReport, UplinkReport};
use crate::network::{Field2Burst, Network};
use milback_ap::ranging::LocalizationResult;
use milback_ap::workspace::DspWorkspace;
use milback_dsp::buffer::track_growth;
use milback_dsp::signal::Signal;
use milback_proto::arq::{ArqReceiver, ArqSender, ArqVerdict, Backoff};
use milback_proto::packet::{LinkMode, Packet};
use milback_rf::workspace::ChannelWorkspace;
use milback_telemetry as telemetry;
use std::cell::RefCell;

/// A non-fatal deviation from the clean exchange. The session completed
/// (or kept going), but something had to be retried, discarded or given
/// up along the way — each variant names what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// Field-1 mode detection needed retries before the node heard the
    /// right mode (`attempts` includes the final, successful one).
    ModeRetries {
        /// Total Field-1 transmissions.
        attempts: usize,
    },
    /// Field-2 chirps were discarded as dead (blocked/dropped) before
    /// localization.
    ChirpLoss {
        /// Chirps discarded.
        dropped: usize,
        /// Chirps retained for localization.
        used: usize,
    },
    /// Localization ran on fewer than the configured chirp count — the
    /// reduced-chirp background-subtraction fallback (§5.1 needs only
    /// two chirps for one subtraction pair).
    ReducedChirpFallback {
        /// Chirps the estimate was computed from.
        used: usize,
    },
    /// Localization produced no fix even after chirp triage.
    NoFix,
    /// The node could not estimate its own orientation from Field 1.
    NoNodeOrientation,
    /// The AP could not estimate the node's orientation from Field 2.
    NoApOrientation,
    /// The payload needed ARQ retries (`attempts` includes the final,
    /// successful one).
    PayloadRetries {
        /// Total payload transmissions.
        attempts: usize,
    },
    /// Field-2 work (localization + AP-side orientation) was shed by the
    /// serving engine's overload policy before any chirps went on air:
    /// no fix was attempted, but Field-1 mode signalling and the payload
    /// ARQ still ran, with the tone plan taken from the cached
    /// orientation instead of a fresh Field-2 sense (DESIGN.md §15).
    Field2Shed,
}

/// Which stage of the exchange ultimately failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The node never detected the announced mode within the retry
    /// budget — the exchange cannot proceed at all.
    ModeDetect,
    /// The payload never delivered within the ARQ budget.
    Payload,
}

/// Terminal session failure: the stage that gave up, how many attempts
/// it burned, and every degradation observed before the failure (the
/// partial story is often the useful part of the report).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionError {
    /// The stage that exhausted its budget.
    pub kind: FailureKind,
    /// Attempts spent at that stage.
    pub attempts: usize,
    /// Degradations accumulated before the failure.
    pub degradations: Vec<Degradation>,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FailureKind::ModeDetect => write!(
                f,
                "mode detection failed after {} attempts ({} degradations)",
                self.attempts,
                self.degradations.len()
            ),
            FailureKind::Payload => write!(
                f,
                "payload delivery failed after {} attempts ({} degradations)",
                self.attempts,
                self.degradations.len()
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// Payload symbol rate the packet's nominal airtime is quoted at:
/// [`SessionConfig::milback`]'s 1 Msym/s. Sessions at other rates charge
/// payload airtime scaled by `NOMINAL_SYMBOL_RATE / symbol_rate`, so the
/// default config is bitwise unchanged while the adaptive controller's
/// rate steps (DESIGN.md §18) see their real airtime effect.
pub const NOMINAL_SYMBOL_RATE: f64 = 1e6;

/// Retry/fallback budgets for one supervised exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Field-1 transmissions allowed (1 original + retries).
    pub mode_attempts: usize,
    /// Payload transmissions allowed (ARQ budget).
    pub payload_attempts: usize,
    /// Backoff policy between retries (shared with `proto::arq`).
    pub backoff: Backoff,
    /// Minimum chirps localization may fall back to (≥ 2: background
    /// subtraction needs one pair).
    pub min_chirps: usize,
    /// A chirp whose capture energy falls below this fraction of the
    /// burst's median is discarded as dead before localization.
    pub energy_floor: f64,
    /// Payload symbol rate, symbols/s.
    pub symbol_rate: f64,
    /// Field-2 chirps rendered for localization (the paper's burst is
    /// five; the adaptive controller may trim to three when the
    /// reduced-chirp fallback keeps winning). Must be ≥ 2 — background
    /// subtraction needs one pair. Charged Field-2 airtime scales with
    /// the count.
    pub field2_chirps: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self::milback()
    }
}

impl SessionConfig {
    /// Defaults matched to the paper's packet: four attempts per stage,
    /// the shared 5 ms-doubling backoff, fallback floor of two chirps,
    /// dead below 5% of median energy, 1 Msym/s payload.
    pub fn milback() -> Self {
        Self {
            mode_attempts: 4,
            payload_attempts: 4,
            backoff: Backoff::milback(),
            min_chirps: 2,
            energy_floor: 0.05,
            symbol_rate: 1e6,
            field2_chirps: 5,
        }
    }

    /// Charged Field-2 airtime for one window under this config: the
    /// per-chirp duration times the configured chirp count. Identical to
    /// `pkt.field2_duration()` at the default five chirps.
    pub fn field2_airtime_s(&self, pkt: &milback_proto::packet::PacketConfig) -> f64 {
        pkt.field2_chirp.duration * self.field2_chirps as f64
    }

    /// Charged payload airtime under this config: the packet's nominal
    /// payload duration scaled by `NOMINAL_SYMBOL_RATE / symbol_rate`.
    /// Exactly `pkt.payload_duration()` at the default 1 Msym/s.
    pub fn payload_airtime_s(&self, pkt: &milback_proto::packet::PacketConfig) -> f64 {
        pkt.payload_duration() * (NOMINAL_SYMBOL_RATE / self.symbol_rate)
    }
}

/// What a supervised exchange accomplished, degradations included.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The packet's direction.
    pub mode: LinkMode,
    /// Field-1 transmissions used (1 = clean).
    pub mode_attempts: usize,
    /// Localization fix (possibly from the reduced-chirp fallback).
    pub fix: Option<LocalizationResult>,
    /// Chirps localization actually used.
    pub chirps_used: usize,
    /// The node's own orientation estimate, radians.
    pub node_orientation: Option<f64>,
    /// The AP's orientation estimate, radians.
    pub ap_orientation: Option<f64>,
    /// Payload transmissions used (1 = clean).
    pub payload_attempts: usize,
    /// Downlink result of the delivering attempt.
    pub downlink: Option<DownlinkReport>,
    /// Uplink result of the delivering attempt.
    pub uplink: Option<UplinkReport>,
    /// Every deviation from the clean exchange, in order of occurrence.
    pub degradations: Vec<Degradation>,
    /// Total time spent waiting in backoff, seconds.
    pub backoff_s: f64,
}

impl SessionReport {
    /// Whether the exchange was completely clean (no degradations).
    pub fn is_clean(&self) -> bool {
        self.degradations.is_empty()
    }
}

/// Pooled per-session scratch state (DESIGN.md §15): every reusable
/// buffer a supervised exchange touches outside the link layer — the
/// AP's DSP workspace, the channel-synthesis cache, the Field-2 render
/// buffers and the triage scratch. The serving engine owns one
/// `SessionCtx` per pool slot and checks it out per session, so the
/// steady-state localization service loop performs zero heap
/// allocations (pinned by `tests/zero_alloc.rs`).
#[derive(Default)]
pub struct SessionCtx {
    /// AP-side DSP buffers (dechirp → FFT → background → detection).
    pub dsp: DspWorkspace,
    /// Channel-synthesis cache + render scratch (DESIGN.md §13).
    pub chan: ChannelWorkspace,
    /// Field-2 render buffers: TX reference + per-chirp capture pairs.
    pub burst: Field2Burst,
    /// Per-chirp burst energies (triage input).
    energies: Vec<f64>,
    /// Sort scratch for the triage energy median.
    energy_sort: Vec<f64>,
    /// Triage verdict per chirp.
    alive: Vec<bool>,
}

impl SessionCtx {
    /// An empty context; buffers grow to working size on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// Shared context for [`Session::run`] callers that don't pool their
    /// own (batch workers, tests): warms once per thread, like the other
    /// thread-local workspaces.
    static RUN_CTX: RefCell<SessionCtx> = RefCell::new(SessionCtx::default());
}

/// Outcome of one Field-2-only localization request — the serving
/// engine's `Localize` service class, which skips Field 1 and the
/// payload entirely. Plain `Copy` data so pooled serving slots can
/// record it without allocating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalizeSummary {
    /// The fix (possibly from the reduced-chirp fallback).
    pub fix: Option<LocalizationResult>,
    /// Chirps localization actually used.
    pub chirps_used: usize,
    /// Chirps discarded as dead by the energy triage.
    pub dropped: usize,
    /// Whether the reduced-chirp fallback ran.
    pub fell_back: bool,
}

/// Supervisor wrapping one packet exchange with retry, fallback and
/// typed reporting. Owns no network state — borrow a [`Network`] per
/// call so batch trials stay index-addressed.
#[derive(Debug, Clone, Copy, Default)]
pub struct Session {
    /// Budgets and policies for this session.
    pub config: SessionConfig,
}

impl Session {
    /// Creates a supervisor with the given budgets.
    pub fn new(config: SessionConfig) -> Self {
        Self { config }
    }

    /// Runs one supervised exchange of `packet` over `net`.
    ///
    /// The happy path is bitwise identical to
    /// [`crate::protocol`]'s un-supervised flow with an empty
    /// [`milback_rf::faults::FaultPlan`]: same render order, same RNG
    /// draws, no retries. Under faults the supervisor retries Field 1
    /// with backoff, triages dead Field-2 chirps before localization,
    /// and drives the payload through its ARQ budget; it returns
    /// `Err(SessionError)` only when a budget is exhausted.
    ///
    /// Scratch comes from a thread-local [`SessionCtx`]; pooled callers
    /// (the serving engine) use [`Session::run_in`] with their own.
    pub fn run(&self, net: &mut Network, packet: &Packet) -> Result<SessionReport, SessionError> {
        RUN_CTX.with(|c| match c.try_borrow_mut() {
            Ok(mut ctx) => self.run_in(&mut ctx, net, packet, false),
            Err(_) => self.run_in(&mut SessionCtx::default(), net, packet, false),
        })
    }

    /// [`Session::run`] with caller-owned scratch and an overload flag.
    ///
    /// With `shed_field2 == false` this is exactly `run` (same renders,
    /// same RNG draws, same report). With `shed_field2 == true` — the
    /// serving engine's load-shedding path — the session skips all
    /// Field-2 work (localization triage and AP-side orientation, their
    /// airtime included), records [`Degradation::Field2Shed`], and
    /// delivers the payload over the cached-orientation tone plan so the
    /// ARQ stays alive under overload.
    pub fn run_in(
        &self,
        ctx: &mut SessionCtx,
        net: &mut Network,
        packet: &Packet,
        shed_field2: bool,
    ) -> Result<SessionReport, SessionError> {
        let cfg = &self.config;
        let pkt = net.fidelity.packet();
        let mut degradations: Vec<Degradation> = Vec::new();
        let mut backoff_s = 0.0;

        // --- Field 1: mode signalling, with retry + backoff ------------
        let mut mode_attempts = 0;
        loop {
            mode_attempts += 1;
            let heard = net.signal_mode(packet.mode);
            net.clock_s += pkt.field1_duration();
            if heard == Some(packet.mode) {
                break;
            }
            telemetry::counter_add("core.session.mode_retry", 1);
            if mode_attempts >= cfg.mode_attempts {
                telemetry::counter_add("core.session.fail", 1);
                return Err(SessionError {
                    kind: FailureKind::ModeDetect,
                    attempts: mode_attempts,
                    degradations,
                });
            }
            let wait = cfg.backoff.delay_s(mode_attempts);
            net.clock_s += wait;
            backoff_s += wait;
        }
        if mode_attempts > 1 {
            degradations.push(Degradation::ModeRetries {
                attempts: mode_attempts,
            });
        }

        // --- Field 1: node-side orientation ----------------------------
        let node_orientation = net.sense_orientation_at_node();
        net.clock_s += pkt.field1_chirp.duration;
        if node_orientation.is_none() {
            degradations.push(Degradation::NoNodeOrientation);
        }

        // --- Field 2: localization + AP orientation (or shed) ----------
        let (fix, chirps_used, ap_orientation) = if shed_field2 {
            // Overload: no Field-2 chirps go on air at all — the airtime
            // is the saving — and the payload below plans its tones from
            // the cached orientation instead of a fresh sense.
            telemetry::counter_add("core.session.field2_shed", 1);
            degradations.push(Degradation::Field2Shed);
            (None, 0, None)
        } else {
            let (fix, chirps_used) = self.localize_with_triage_in(ctx, net, &mut degradations);
            net.clock_s += cfg.field2_airtime_s(&pkt);
            if fix.is_none() {
                degradations.push(Degradation::NoFix);
            }
            let ap_orientation = net.sense_orientation_at_ap();
            net.clock_s += cfg.field2_airtime_s(&pkt);
            if ap_orientation.is_none() {
                degradations.push(Degradation::NoApOrientation);
            }
            (fix, chirps_used, ap_orientation)
        };

        // --- Payload: ARQ with the shared backoff policy ----------------
        let mut downlink = None;
        let mut uplink = None;
        let payload_attempts = match packet.mode {
            LinkMode::Downlink => self.deliver_downlink(
                net,
                packet,
                cfg.payload_airtime_s(&pkt),
                shed_field2,
                &mut downlink,
                &mut backoff_s,
            ),
            LinkMode::Uplink => self.deliver_uplink(
                net,
                packet,
                cfg.payload_airtime_s(&pkt),
                shed_field2,
                &mut uplink,
                &mut backoff_s,
            ),
        };
        let Some(payload_attempts) = payload_attempts else {
            telemetry::counter_add("core.session.fail", 1);
            return Err(SessionError {
                kind: FailureKind::Payload,
                attempts: cfg.payload_attempts,
                degradations,
            });
        };
        if payload_attempts > 1 {
            degradations.push(Degradation::PayloadRetries {
                attempts: payload_attempts,
            });
        }

        telemetry::counter_add("core.session.ok", 1);
        Ok(SessionReport {
            mode: packet.mode,
            mode_attempts,
            fix,
            chirps_used,
            node_orientation,
            ap_orientation,
            payload_attempts,
            downlink,
            uplink,
            degradations,
            backoff_s,
        })
    }

    /// Field-2 localization with energy triage, reporting degradations.
    /// Thin wrapper over [`Session::triage_localize`] that translates
    /// its counts into [`Degradation`]s in the order the old inline
    /// implementation pushed them.
    fn localize_with_triage_in(
        &self,
        ctx: &mut SessionCtx,
        net: &mut Network,
        degradations: &mut Vec<Degradation>,
    ) -> (Option<LocalizationResult>, usize) {
        let s = self.triage_localize(ctx, net);
        if s.dropped > 0 {
            degradations.push(Degradation::ChirpLoss {
                dropped: s.dropped,
                used: s.chirps_used,
            });
            if s.fell_back {
                degradations.push(Degradation::ReducedChirpFallback {
                    used: s.chirps_used,
                });
            }
        }
        (s.fix, s.chirps_used)
    }

    /// Runs one standalone Field-2 localization service request in
    /// caller-owned scratch: render, energy triage, (possibly
    /// reduced-chirp) processing, and the Field-2 airtime on the session
    /// clock. This is the serving engine's `Localize` workload — on a
    /// warmed [`SessionCtx`] with a clean channel it performs zero heap
    /// allocations (pinned by `tests/zero_alloc.rs`).
    pub fn localize_in(&self, ctx: &mut SessionCtx, net: &mut Network) -> LocalizeSummary {
        let pkt = net.fidelity.packet();
        let summary = self.triage_localize(ctx, net);
        net.clock_s += self.config.field2_airtime_s(&pkt);
        summary
    }

    /// Field-2 localization with energy triage: chirps whose capture
    /// energy collapses below `energy_floor` × median (blocked, dropped)
    /// are discarded, and localization falls back to the surviving
    /// subset — the §5.1 background subtraction needs only one chirp
    /// pair. Runs entirely in `ctx` buffers (the masked processing path
    /// avoids copying the retained subset), bitwise identical to the
    /// allocating implementation it replaced.
    fn triage_localize(&self, ctx: &mut SessionCtx, net: &mut Network) -> LocalizeSummary {
        let cfg = &self.config;
        net.field2_captures_into(&mut ctx.chan, cfg.field2_chirps, &mut ctx.burst);
        let n = ctx.burst.captures.len();

        // Per-chirp energy across both antennas.
        let energy = |pair: &[Signal; 2]| -> f64 {
            pair.iter()
                .map(|s| s.samples.iter().map(|c| c.norm_sq()).sum::<f64>())
                .sum()
        };
        track_growth(&mut ctx.energies, n);
        ctx.energies.clear();
        ctx.energies.extend(ctx.burst.captures.iter().map(energy));
        track_growth(&mut ctx.energy_sort, n);
        ctx.energy_sort.clear();
        ctx.energy_sort.extend_from_slice(&ctx.energies);
        ctx.energy_sort.sort_by(f64::total_cmp);
        let median = ctx.energy_sort[n / 2];

        track_growth(&mut ctx.alive, n);
        ctx.alive.clear();
        ctx.alive
            .extend(ctx.energies.iter().map(|&e| e > cfg.energy_floor * median));
        let n_alive = ctx.alive.iter().filter(|&&a| a).count();

        let localizer = net.localizer();
        if n_alive == n {
            // Clean burst: identical to the direct path.
            let fix = localizer.process_with(&mut ctx.dsp, &ctx.burst.tx, &ctx.burst.captures);
            return LocalizeSummary {
                fix,
                chirps_used: n,
                dropped: 0,
                fell_back: false,
            };
        }

        telemetry::counter_add("core.session.chirp_discard", (n - n_alive) as u64);
        if n_alive < cfg.min_chirps.max(2) {
            // Not even one subtraction pair survived.
            return LocalizeSummary {
                fix: None,
                chirps_used: n_alive,
                dropped: n - n_alive,
                fell_back: false,
            };
        }

        telemetry::counter_add("core.session.fallback", 1);
        let fix = localizer.process_masked_with(
            &mut ctx.dsp,
            &ctx.burst.tx,
            &ctx.burst.captures,
            &ctx.alive,
        );
        LocalizeSummary {
            fix,
            chirps_used: n_alive,
            dropped: n - n_alive,
            fell_back: true,
        }
    }

    /// Downlink payload with bounded repeat: the AP re-sends until the
    /// node's CRC passes or the budget runs out. Returns attempts used,
    /// or `None` on exhaustion. `cached_tones` plans the carriers from
    /// the cached orientation instead of a fresh Field-2 sense (the
    /// shed path, where no Field-2 airtime is spent).
    fn deliver_downlink(
        &self,
        net: &mut Network,
        packet: &Packet,
        airtime_s: f64,
        cached_tones: bool,
        out: &mut Option<DownlinkReport>,
        backoff_s: &mut f64,
    ) -> Option<usize> {
        let cfg = &self.config;
        for attempt in 1..=cfg.payload_attempts {
            let report = net.downlink(&packet.payload, cfg.symbol_rate, cached_tones);
            // Single-carrier OOK carries 1 bit/symbol instead of 2, so
            // the same payload occupies twice the airtime.
            net.clock_s += match &report {
                Some(r) if r.tones.bits_per_symbol() == 1 => 2.0 * airtime_s,
                _ => airtime_s,
            };
            if let Some(r) = report {
                let ok = r.payload.is_ok();
                *out = Some(r);
                if ok {
                    return Some(attempt);
                }
            }
            telemetry::counter_add("core.session.arq_retry", 1);
            let wait = cfg.backoff.delay_s(attempt);
            net.clock_s += wait;
            *backoff_s += wait;
        }
        None
    }

    /// Uplink payload through the stop-and-wait ARQ machine, with the
    /// session's backoff between attempts. Returns attempts used, or
    /// `None` on exhaustion. `cached_tones` as in
    /// [`Session::deliver_downlink`].
    fn deliver_uplink(
        &self,
        net: &mut Network,
        packet: &Packet,
        airtime_s: f64,
        cached_tones: bool,
        out: &mut Option<UplinkReport>,
        backoff_s: &mut f64,
    ) -> Option<usize> {
        let cfg = &self.config;
        let mut tx = ArqSender::new(cfg.payload_attempts);
        let mut rx = ArqReceiver::new();
        tx.start(&packet.payload);
        let mut attempts = 0;
        loop {
            attempts += 1;
            let report = net.uplink(tx.frame()?, cfg.symbol_rate, cached_tones);
            // OOK attempts take twice the airtime (see deliver_downlink).
            net.clock_s += match &report {
                Some(r) if r.tones.bits_per_symbol() == 1 => 2.0 * airtime_s,
                _ => airtime_s,
            };
            let ack = report.as_ref().and_then(|r| match &r.payload {
                Ok(received) => rx.on_frame(received).map(|(ack, _)| ack),
                Err(_) => None,
            });
            if let Some(r) = report {
                *out = Some(r);
            }
            match tx.on_ack_verdict(ack) {
                ArqVerdict::Delivered => return Some(attempts),
                ArqVerdict::GiveUp => return None,
                ArqVerdict::Retry => {
                    telemetry::counter_add("core.session.arq_retry", 1);
                    let wait = cfg.backoff.delay_s(attempts);
                    net.clock_s += wait;
                    *backoff_s += wait;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Fidelity;
    use milback_rf::faults::{FaultEvent, FaultKind, FaultPlan};
    use milback_rf::geometry::{deg_to_rad, Pose};

    fn net_at(dist: f64, seed: u64) -> Network {
        Network::new(
            Pose::facing_ap(dist, 0.0, deg_to_rad(12.0)),
            Fidelity::Fast,
            seed,
        )
    }

    #[test]
    fn clean_session_is_clean() {
        let mut net = net_at(2.0, 31);
        let packet = Packet::downlink((0..16).collect());
        let report = Session::default()
            .run(&mut net, &packet)
            .expect("clean session failed");
        assert!(report.is_clean(), "degradations: {:?}", report.degradations);
        assert_eq!(report.mode_attempts, 1);
        assert_eq!(report.payload_attempts, 1);
        assert_eq!(report.chirps_used, 5);
        assert!(report.fix.is_some());
        assert_eq!(report.backoff_s, 0.0);
    }

    #[test]
    fn clean_uplink_session() {
        let mut net = net_at(2.0, 32);
        let packet = Packet::uplink(vec![0x5C; 16]);
        let report = Session::default()
            .run(&mut net, &packet)
            .expect("clean uplink failed");
        assert!(report.is_clean(), "degradations: {:?}", report.degradations);
        assert!(report.uplink.is_some());
    }

    #[test]
    fn chirp_drop_triggers_reduced_chirp_fallback() {
        let mut net = net_at(2.0, 33);
        let pkt = net.fidelity.packet();
        // Kill exactly one Field-2 chirp: the session clock at Field-2
        // render time is field1_duration + one orientation chirp + one
        // mode-retry-free exchange — compute it the way Session does.
        let f2_start = pkt.field1_duration() + pkt.field1_chirp.duration;
        net.faults = FaultPlan {
            seed: 5,
            events: vec![FaultEvent {
                start_s: f2_start + 2.0 * pkt.field2_chirp.duration,
                duration_s: pkt.field2_chirp.duration,
                kind: FaultKind::ChirpDrop,
            }],
        };
        let packet = Packet::downlink((0..16).collect());
        let report = Session::default()
            .run(&mut net, &packet)
            .expect("session failed");
        assert!(
            report
                .degradations
                .iter()
                .any(|d| matches!(d, Degradation::ReducedChirpFallback { used: 4 })),
            "degradations: {:?}",
            report.degradations
        );
        let fix = report.fix.expect("fallback fix missing");
        assert!((fix.range - 2.0).abs() < 0.2, "range {}", fix.range);
    }

    #[test]
    fn mode_detect_failure_is_typed_not_silent() {
        let mut net = net_at(2.0, 34);
        // Block Field 1 so hard, for so long, that every retry dies.
        net.faults = FaultPlan {
            seed: 6,
            events: vec![FaultEvent {
                start_s: 0.0,
                duration_s: 10.0,
                kind: FaultKind::Blockage { depth_db: 80.0 },
            }],
        };
        let packet = Packet::downlink((0..16).collect());
        let err = Session::default()
            .run(&mut net, &packet)
            .expect_err("session should fail under permanent blockage");
        assert_eq!(err.kind, FailureKind::ModeDetect);
        assert_eq!(err.attempts, SessionConfig::milback().mode_attempts);
    }

    #[test]
    fn transient_blockage_is_survived_by_backoff() {
        let mut net = net_at(2.0, 35);
        // Blockage covering the first Field-1 attempt only; the 5 ms
        // backoff hops over it.
        net.faults = FaultPlan {
            seed: 7,
            events: vec![FaultEvent {
                start_s: 0.0,
                duration_s: 2e-3,
                kind: FaultKind::Blockage { depth_db: 80.0 },
            }],
        };
        let packet = Packet::downlink((0..16).collect());
        let report = Session::default()
            .run(&mut net, &packet)
            .expect("retry should have recovered");
        assert!(report.mode_attempts > 1, "expected a Field-1 retry");
        assert!(report
            .degradations
            .iter()
            .any(|d| matches!(d, Degradation::ModeRetries { .. })));
        assert!(report.backoff_s > 0.0);
    }

    #[test]
    fn run_in_without_shedding_matches_run() {
        let packet = Packet::downlink((0..16).collect());
        let mut a = net_at(2.0, 37);
        let mut b = net_at(2.0, 37);
        let ra = Session::default().run(&mut a, &packet).expect("run failed");
        let mut ctx = SessionCtx::new();
        let rb = Session::default()
            .run_in(&mut ctx, &mut b, &packet, false)
            .expect("run_in failed");
        assert_eq!(ra.fix, rb.fix);
        assert_eq!(ra.chirps_used, rb.chirps_used);
        assert_eq!(ra.mode_attempts, rb.mode_attempts);
        assert_eq!(ra.payload_attempts, rb.payload_attempts);
        assert_eq!(ra.node_orientation, rb.node_orientation);
        assert_eq!(ra.ap_orientation, rb.ap_orientation);
        assert_eq!(ra.degradations, rb.degradations);
        assert_eq!(ra.backoff_s, rb.backoff_s);
        assert_eq!(a.clock_s, b.clock_s, "session clocks diverged");
    }

    #[test]
    fn shed_session_keeps_payload_arq_alive() {
        let packet = Packet::downlink((0..16).collect());
        let mut ctx = SessionCtx::new();
        let mut net = net_at(2.0, 36);
        let pkt = net.fidelity.packet();
        let report = Session::default()
            .run_in(&mut ctx, &mut net, &packet, true)
            .expect("shed session failed");
        // Field-2 work dropped...
        assert!(report.fix.is_none());
        assert_eq!(report.chirps_used, 0);
        assert!(report.ap_orientation.is_none());
        assert!(report.degradations.contains(&Degradation::Field2Shed));
        // ...but the payload delivered, and the Field-2 airtime was the
        // saving: a clean run of the same exchange spends exactly the
        // two skipped Field-2 windows more session time.
        assert_eq!(report.payload_attempts, 1);
        let dl = report.downlink.expect("no downlink report");
        assert!(dl.payload.is_ok(), "shed payload failed CRC");
        let mut clean_net = net_at(2.0, 36);
        Session::default()
            .run_in(&mut ctx, &mut clean_net, &packet, false)
            .expect("clean session failed");
        let saved = clean_net.clock_s - net.clock_s;
        assert!(
            (saved - 2.0 * pkt.field2_duration()).abs() < 1e-12,
            "shed saved {} s, expected the two Field-2 windows ({} s)",
            saved,
            2.0 * pkt.field2_duration()
        );
    }

    #[test]
    fn localize_in_matches_direct_localize() {
        let mut net = net_at(2.0, 38);
        let mut ctx = SessionCtx::new();
        let s = Session::default().localize_in(&mut ctx, &mut net);
        assert_eq!(s.chirps_used, 5);
        assert_eq!(s.dropped, 0);
        assert!(!s.fell_back);
        assert!(net.clock_s > 0.0, "Field-2 airtime not charged");
        // Bitwise identical to the thread-local localization path on a
        // fresh network with the same seed.
        assert_eq!(s.fix, net_at(2.0, 38).localize());
        assert!(s.fix.is_some());
    }

    #[test]
    fn session_error_formats() {
        let err = SessionError {
            kind: FailureKind::Payload,
            attempts: 4,
            degradations: vec![Degradation::NoFix],
        };
        let s = format!("{err}");
        assert!(s.contains("payload") && s.contains('4'), "{s}");
    }
}
