//! Self-healing packet sessions (DESIGN.md §14).
//!
//! [`crate::protocol::PacketOutcome`] reports what happened in one shot
//! of the paper's §7 exchange — and under impairments it degrades to a
//! fistful of silent `None`s. This module is the supervisor a deployment
//! would actually run: bounded retry with exponential backoff on Field-1
//! mode detection, localization fallback to a reduced-chirp
//! background-subtraction estimate when Field-2 chirps die, ARQ-budgeted
//! payload delivery driven by the same [`Backoff`] policy, and a typed
//! [`SessionError`]/[`Degradation`] report in place of silence.
//!
//! Retries are not free: every render and every backoff advances
//! [`Network::clock_s`], the session clock the fault windows of
//! [`milback_rf::faults`] are scheduled against. Backing off past the
//! end of a blockage window is therefore *real* recovery — the retry
//! re-renders the channel at a later time and genuinely sees it clear —
//! which is what `tests/robustness.rs` pins.

use crate::link::{DownlinkReport, UplinkReport};
use crate::network::Network;
use milback_ap::ranging::LocalizationResult;
use milback_dsp::signal::Signal;
use milback_proto::arq::{ArqReceiver, ArqSender, ArqVerdict, Backoff};
use milback_proto::packet::{LinkMode, Packet};
use milback_telemetry as telemetry;

/// A non-fatal deviation from the clean exchange. The session completed
/// (or kept going), but something had to be retried, discarded or given
/// up along the way — each variant names what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// Field-1 mode detection needed retries before the node heard the
    /// right mode (`attempts` includes the final, successful one).
    ModeRetries {
        /// Total Field-1 transmissions.
        attempts: usize,
    },
    /// Field-2 chirps were discarded as dead (blocked/dropped) before
    /// localization.
    ChirpLoss {
        /// Chirps discarded.
        dropped: usize,
        /// Chirps retained for localization.
        used: usize,
    },
    /// Localization ran on fewer than the configured chirp count — the
    /// reduced-chirp background-subtraction fallback (§5.1 needs only
    /// two chirps for one subtraction pair).
    ReducedChirpFallback {
        /// Chirps the estimate was computed from.
        used: usize,
    },
    /// Localization produced no fix even after chirp triage.
    NoFix,
    /// The node could not estimate its own orientation from Field 1.
    NoNodeOrientation,
    /// The AP could not estimate the node's orientation from Field 2.
    NoApOrientation,
    /// The payload needed ARQ retries (`attempts` includes the final,
    /// successful one).
    PayloadRetries {
        /// Total payload transmissions.
        attempts: usize,
    },
}

/// Which stage of the exchange ultimately failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The node never detected the announced mode within the retry
    /// budget — the exchange cannot proceed at all.
    ModeDetect,
    /// The payload never delivered within the ARQ budget.
    Payload,
}

/// Terminal session failure: the stage that gave up, how many attempts
/// it burned, and every degradation observed before the failure (the
/// partial story is often the useful part of the report).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionError {
    /// The stage that exhausted its budget.
    pub kind: FailureKind,
    /// Attempts spent at that stage.
    pub attempts: usize,
    /// Degradations accumulated before the failure.
    pub degradations: Vec<Degradation>,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FailureKind::ModeDetect => write!(
                f,
                "mode detection failed after {} attempts ({} degradations)",
                self.attempts,
                self.degradations.len()
            ),
            FailureKind::Payload => write!(
                f,
                "payload delivery failed after {} attempts ({} degradations)",
                self.attempts,
                self.degradations.len()
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// Retry/fallback budgets for one supervised exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Field-1 transmissions allowed (1 original + retries).
    pub mode_attempts: usize,
    /// Payload transmissions allowed (ARQ budget).
    pub payload_attempts: usize,
    /// Backoff policy between retries (shared with `proto::arq`).
    pub backoff: Backoff,
    /// Minimum chirps localization may fall back to (≥ 2: background
    /// subtraction needs one pair).
    pub min_chirps: usize,
    /// A chirp whose capture energy falls below this fraction of the
    /// burst's median is discarded as dead before localization.
    pub energy_floor: f64,
    /// Payload symbol rate, symbols/s.
    pub symbol_rate: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self::milback()
    }
}

impl SessionConfig {
    /// Defaults matched to the paper's packet: four attempts per stage,
    /// the shared 5 ms-doubling backoff, fallback floor of two chirps,
    /// dead below 5% of median energy, 1 Msym/s payload.
    pub fn milback() -> Self {
        Self {
            mode_attempts: 4,
            payload_attempts: 4,
            backoff: Backoff::milback(),
            min_chirps: 2,
            energy_floor: 0.05,
            symbol_rate: 1e6,
        }
    }
}

/// What a supervised exchange accomplished, degradations included.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The packet's direction.
    pub mode: LinkMode,
    /// Field-1 transmissions used (1 = clean).
    pub mode_attempts: usize,
    /// Localization fix (possibly from the reduced-chirp fallback).
    pub fix: Option<LocalizationResult>,
    /// Chirps localization actually used.
    pub chirps_used: usize,
    /// The node's own orientation estimate, radians.
    pub node_orientation: Option<f64>,
    /// The AP's orientation estimate, radians.
    pub ap_orientation: Option<f64>,
    /// Payload transmissions used (1 = clean).
    pub payload_attempts: usize,
    /// Downlink result of the delivering attempt.
    pub downlink: Option<DownlinkReport>,
    /// Uplink result of the delivering attempt.
    pub uplink: Option<UplinkReport>,
    /// Every deviation from the clean exchange, in order of occurrence.
    pub degradations: Vec<Degradation>,
    /// Total time spent waiting in backoff, seconds.
    pub backoff_s: f64,
}

impl SessionReport {
    /// Whether the exchange was completely clean (no degradations).
    pub fn is_clean(&self) -> bool {
        self.degradations.is_empty()
    }
}

/// Supervisor wrapping one packet exchange with retry, fallback and
/// typed reporting. Owns no network state — borrow a [`Network`] per
/// call so batch trials stay index-addressed.
#[derive(Debug, Clone, Copy, Default)]
pub struct Session {
    /// Budgets and policies for this session.
    pub config: SessionConfig,
}

impl Session {
    /// Creates a supervisor with the given budgets.
    pub fn new(config: SessionConfig) -> Self {
        Self { config }
    }

    /// Runs one supervised exchange of `packet` over `net`.
    ///
    /// The happy path is bitwise identical to
    /// [`crate::protocol`]'s un-supervised flow with an empty
    /// [`milback_rf::faults::FaultPlan`]: same render order, same RNG
    /// draws, no retries. Under faults the supervisor retries Field 1
    /// with backoff, triages dead Field-2 chirps before localization,
    /// and drives the payload through its ARQ budget; it returns
    /// `Err(SessionError)` only when a budget is exhausted.
    pub fn run(&self, net: &mut Network, packet: &Packet) -> Result<SessionReport, SessionError> {
        let cfg = &self.config;
        let pkt = net.fidelity.packet();
        let mut degradations: Vec<Degradation> = Vec::new();
        let mut backoff_s = 0.0;

        // --- Field 1: mode signalling, with retry + backoff ------------
        let mut mode_attempts = 0;
        loop {
            mode_attempts += 1;
            let heard = net.signal_mode(packet.mode);
            net.clock_s += pkt.field1_duration();
            if heard == Some(packet.mode) {
                break;
            }
            telemetry::counter_add("core.session.mode_retry", 1);
            if mode_attempts >= cfg.mode_attempts {
                telemetry::counter_add("core.session.fail", 1);
                return Err(SessionError {
                    kind: FailureKind::ModeDetect,
                    attempts: mode_attempts,
                    degradations,
                });
            }
            let wait = cfg.backoff.delay_s(mode_attempts);
            net.clock_s += wait;
            backoff_s += wait;
        }
        if mode_attempts > 1 {
            degradations.push(Degradation::ModeRetries {
                attempts: mode_attempts,
            });
        }

        // --- Field 1: node-side orientation ----------------------------
        let node_orientation = net.sense_orientation_at_node();
        net.clock_s += pkt.field1_chirp.duration;
        if node_orientation.is_none() {
            degradations.push(Degradation::NoNodeOrientation);
        }

        // --- Field 2: localization with dead-chirp triage --------------
        let (fix, chirps_used) = self.localize_with_triage(net, &mut degradations);
        net.clock_s += pkt.field2_duration();
        if fix.is_none() {
            degradations.push(Degradation::NoFix);
        }

        // --- Field 2: AP-side orientation ------------------------------
        let ap_orientation = net.sense_orientation_at_ap();
        net.clock_s += pkt.field2_duration();
        if ap_orientation.is_none() {
            degradations.push(Degradation::NoApOrientation);
        }

        // --- Payload: ARQ with the shared backoff policy ----------------
        let mut downlink = None;
        let mut uplink = None;
        let payload_attempts = match packet.mode {
            LinkMode::Downlink => self.deliver_downlink(
                net,
                packet,
                pkt.payload_duration(),
                &mut downlink,
                &mut backoff_s,
            ),
            LinkMode::Uplink => self.deliver_uplink(
                net,
                packet,
                pkt.payload_duration(),
                &mut uplink,
                &mut backoff_s,
            ),
        };
        let Some(payload_attempts) = payload_attempts else {
            telemetry::counter_add("core.session.fail", 1);
            return Err(SessionError {
                kind: FailureKind::Payload,
                attempts: cfg.payload_attempts,
                degradations,
            });
        };
        if payload_attempts > 1 {
            degradations.push(Degradation::PayloadRetries {
                attempts: payload_attempts,
            });
        }

        telemetry::counter_add("core.session.ok", 1);
        Ok(SessionReport {
            mode: packet.mode,
            mode_attempts,
            fix,
            chirps_used,
            node_orientation,
            ap_orientation,
            payload_attempts,
            downlink,
            uplink,
            degradations,
            backoff_s,
        })
    }

    /// Field-2 localization with energy triage: chirps whose capture
    /// energy collapses below `energy_floor` × median (blocked, dropped)
    /// are discarded, and localization falls back to the surviving
    /// subset — the §5.1 background subtraction needs only one chirp
    /// pair. Returns the fix and the chirp count actually used.
    fn localize_with_triage(
        &self,
        net: &mut Network,
        degradations: &mut Vec<Degradation>,
    ) -> (Option<LocalizationResult>, usize) {
        let cfg = &self.config;
        let (tx, captures) = net.field2_captures();
        let n = captures.len();

        // Per-chirp energy across both antennas.
        let energy = |pair: &[Signal; 2]| -> f64 {
            pair.iter()
                .map(|s| s.samples.iter().map(|c| c.norm_sq()).sum::<f64>())
                .sum()
        };
        let energies: Vec<f64> = captures.iter().map(energy).collect();
        let mut sorted = energies.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[n / 2];

        let alive: Vec<bool> = energies
            .iter()
            .map(|&e| e > cfg.energy_floor * median)
            .collect();
        let n_alive = alive.iter().filter(|&&a| a).count();

        let localizer = net.localizer();
        if n_alive == n {
            // Clean burst: identical to the direct path.
            let fix = milback_ap::with_workspace(|ws| localizer.process_with(ws, &tx, &captures));
            return (fix, n);
        }

        telemetry::counter_add("core.session.chirp_discard", (n - n_alive) as u64);
        if n_alive < cfg.min_chirps.max(2) {
            // Not even one subtraction pair survived.
            degradations.push(Degradation::ChirpLoss {
                dropped: n - n_alive,
                used: n_alive,
            });
            return (None, n_alive);
        }

        degradations.push(Degradation::ChirpLoss {
            dropped: n - n_alive,
            used: n_alive,
        });
        degradations.push(Degradation::ReducedChirpFallback { used: n_alive });
        telemetry::counter_add("core.session.fallback", 1);
        let retained: Vec<[Signal; 2]> = captures
            .iter()
            .zip(&alive)
            .filter(|(_, &a)| a)
            .map(|(pair, _)| pair.clone())
            .collect();
        let fix = milback_ap::with_workspace(|ws| localizer.process_with(ws, &tx, &retained));
        (fix, n_alive)
    }

    /// Downlink payload with bounded repeat: the AP re-sends until the
    /// node's CRC passes or the budget runs out. Returns attempts used,
    /// or `None` on exhaustion.
    fn deliver_downlink(
        &self,
        net: &mut Network,
        packet: &Packet,
        airtime_s: f64,
        out: &mut Option<DownlinkReport>,
        backoff_s: &mut f64,
    ) -> Option<usize> {
        let cfg = &self.config;
        for attempt in 1..=cfg.payload_attempts {
            let report = net.downlink(&packet.payload, cfg.symbol_rate, false);
            net.clock_s += airtime_s;
            if let Some(r) = report {
                let ok = r.payload.is_ok();
                *out = Some(r);
                if ok {
                    return Some(attempt);
                }
            }
            telemetry::counter_add("core.session.arq_retry", 1);
            let wait = cfg.backoff.delay_s(attempt);
            net.clock_s += wait;
            *backoff_s += wait;
        }
        None
    }

    /// Uplink payload through the stop-and-wait ARQ machine, with the
    /// session's backoff between attempts. Returns attempts used, or
    /// `None` on exhaustion.
    fn deliver_uplink(
        &self,
        net: &mut Network,
        packet: &Packet,
        airtime_s: f64,
        out: &mut Option<UplinkReport>,
        backoff_s: &mut f64,
    ) -> Option<usize> {
        let cfg = &self.config;
        let mut tx = ArqSender::new(cfg.payload_attempts);
        let mut rx = ArqReceiver::new();
        tx.start(&packet.payload);
        let mut attempts = 0;
        loop {
            attempts += 1;
            let report = net.uplink(tx.frame()?, cfg.symbol_rate, false);
            net.clock_s += airtime_s;
            let ack = report.as_ref().and_then(|r| match &r.payload {
                Ok(received) => rx.on_frame(received).map(|(ack, _)| ack),
                Err(_) => None,
            });
            if let Some(r) = report {
                *out = Some(r);
            }
            match tx.on_ack_verdict(ack) {
                ArqVerdict::Delivered => return Some(attempts),
                ArqVerdict::GiveUp => return None,
                ArqVerdict::Retry => {
                    telemetry::counter_add("core.session.arq_retry", 1);
                    let wait = cfg.backoff.delay_s(attempts);
                    net.clock_s += wait;
                    *backoff_s += wait;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Fidelity;
    use milback_rf::faults::{FaultEvent, FaultKind, FaultPlan};
    use milback_rf::geometry::{deg_to_rad, Pose};

    fn net_at(dist: f64, seed: u64) -> Network {
        Network::new(
            Pose::facing_ap(dist, 0.0, deg_to_rad(12.0)),
            Fidelity::Fast,
            seed,
        )
    }

    #[test]
    fn clean_session_is_clean() {
        let mut net = net_at(2.0, 31);
        let packet = Packet::downlink((0..16).collect());
        let report = Session::default()
            .run(&mut net, &packet)
            .expect("clean session failed");
        assert!(report.is_clean(), "degradations: {:?}", report.degradations);
        assert_eq!(report.mode_attempts, 1);
        assert_eq!(report.payload_attempts, 1);
        assert_eq!(report.chirps_used, 5);
        assert!(report.fix.is_some());
        assert_eq!(report.backoff_s, 0.0);
    }

    #[test]
    fn clean_uplink_session() {
        let mut net = net_at(2.0, 32);
        let packet = Packet::uplink(vec![0x5C; 16]);
        let report = Session::default()
            .run(&mut net, &packet)
            .expect("clean uplink failed");
        assert!(report.is_clean(), "degradations: {:?}", report.degradations);
        assert!(report.uplink.is_some());
    }

    #[test]
    fn chirp_drop_triggers_reduced_chirp_fallback() {
        let mut net = net_at(2.0, 33);
        let pkt = net.fidelity.packet();
        // Kill exactly one Field-2 chirp: the session clock at Field-2
        // render time is field1_duration + one orientation chirp + one
        // mode-retry-free exchange — compute it the way Session does.
        let f2_start = pkt.field1_duration() + pkt.field1_chirp.duration;
        net.faults = FaultPlan {
            seed: 5,
            events: vec![FaultEvent {
                start_s: f2_start + 2.0 * pkt.field2_chirp.duration,
                duration_s: pkt.field2_chirp.duration,
                kind: FaultKind::ChirpDrop,
            }],
        };
        let packet = Packet::downlink((0..16).collect());
        let report = Session::default()
            .run(&mut net, &packet)
            .expect("session failed");
        assert!(
            report
                .degradations
                .iter()
                .any(|d| matches!(d, Degradation::ReducedChirpFallback { used: 4 })),
            "degradations: {:?}",
            report.degradations
        );
        let fix = report.fix.expect("fallback fix missing");
        assert!((fix.range - 2.0).abs() < 0.2, "range {}", fix.range);
    }

    #[test]
    fn mode_detect_failure_is_typed_not_silent() {
        let mut net = net_at(2.0, 34);
        // Block Field 1 so hard, for so long, that every retry dies.
        net.faults = FaultPlan {
            seed: 6,
            events: vec![FaultEvent {
                start_s: 0.0,
                duration_s: 10.0,
                kind: FaultKind::Blockage { depth_db: 80.0 },
            }],
        };
        let packet = Packet::downlink((0..16).collect());
        let err = Session::default()
            .run(&mut net, &packet)
            .expect_err("session should fail under permanent blockage");
        assert_eq!(err.kind, FailureKind::ModeDetect);
        assert_eq!(err.attempts, SessionConfig::milback().mode_attempts);
    }

    #[test]
    fn transient_blockage_is_survived_by_backoff() {
        let mut net = net_at(2.0, 35);
        // Blockage covering the first Field-1 attempt only; the 5 ms
        // backoff hops over it.
        net.faults = FaultPlan {
            seed: 7,
            events: vec![FaultEvent {
                start_s: 0.0,
                duration_s: 2e-3,
                kind: FaultKind::Blockage { depth_db: 80.0 },
            }],
        };
        let packet = Packet::downlink((0..16).collect());
        let report = Session::default()
            .run(&mut net, &packet)
            .expect("retry should have recovered");
        assert!(report.mode_attempts > 1, "expected a Field-1 retry");
        assert!(report
            .degradations
            .iter()
            .any(|d| matches!(d, Degradation::ModeRetries { .. })));
        assert!(report.backoff_s > 0.0);
    }

    #[test]
    fn session_error_formats() {
        let err = SessionError {
            kind: FailureKind::Payload,
            attempts: 4,
            degradations: vec![Degradation::NoFix],
        };
        let s = format!("{err}");
        assert!(s.contains("payload") && s.contains('4'), "{s}");
    }
}
