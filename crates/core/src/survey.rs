//! Site survey: coverage maps over the room.
//!
//! For deployment planning, sweep candidate node positions across a grid
//! and compute, per cell, whether localization works and the best uplink
//! rate the link budget supports. Uses the analytic per-tone budgets
//! (fast) rather than full waveform simulation, which is what a real
//! planning tool would do too.

use crate::config::ApParams;
use milback_dsp::noise::{ratio_to_db, thermal_noise_power};
use milback_node::node::BackscatterNode;
use milback_rf::channel::Scene;
use milback_rf::fsa::Port;
use milback_rf::geometry::{Point, Pose};

/// One grid cell of the coverage map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageCell {
    /// Cell center.
    pub position: Point,
    /// Uplink decision SNR at 10 Mbps, dB (node facing the AP).
    pub uplink_snr_db: f64,
    /// Best supported uplink rate from [`crate::adaptation::UPLINK_RATES`],
    /// bits/s; `None` when even the slowest rate lacks margin.
    pub best_rate: Option<f64>,
}

/// Computes the analytic uplink decision SNR (linear) for a node at
/// `pose`, with the AP steered at it, at `bit_rate` bits/s.
pub fn analytic_uplink_snr(
    scene: &Scene,
    node: &BackscatterNode,
    ap: &ApParams,
    pose: &Pose,
    bit_rate: f64,
) -> Option<f64> {
    let mut scene = scene.clone();
    scene.steer_towards(&pose.position);
    let inc = pose.incidence_from(&scene.tx_pos);
    let f_a = node.fsa.frequency_for_angle(Port::A, inc)?;
    if !(node.fsa.config().f_lo..=node.fsa.config().f_hi).contains(&f_a) {
        return None;
    }
    // Per-tone TX power (two tones), two-way gain, node losses.
    let p_tone = milback_dsp::noise::dbm_to_watts(ap.tx.power_dbm) / 2.0;
    let g = scene.tone_backscatter_gain(pose, &node.fsa, Port::A, f_a, 0);
    let two_way_loss = 10f64.powf(-2.0 * node.impl_loss_db / 10.0);
    let gamma_contrast = {
        let r = node
            .switch
            .gamma(milback_hw::switch::SwitchState::Reflective);
        let a = node
            .switch
            .gamma(milback_hw::switch::SwitchState::Absorptive);
        (r - a).norm_sq() / 4.0 // half-swing decision amplitude, squared
    };
    let p_sig = p_tone * g * two_way_loss * gamma_contrast;
    // Decision noise: LNA-referred thermal noise in the symbol bandwidth.
    let symbol_rate = bit_rate / 2.0;
    let p_noise = thermal_noise_power(symbol_rate, 3.0);
    Some(p_sig / p_noise)
}

/// Sweeps a grid over `x ∈ [1, depth]`, `y ∈ [−width/2, width/2]` with
/// the given cell size, nodes facing the AP.
pub fn coverage_map(
    scene: &Scene,
    node: &BackscatterNode,
    ap: &ApParams,
    depth: f64,
    width: f64,
    cell: f64,
) -> Vec<CoverageCell> {
    assert!(cell > 0.0, "cell size must be positive");
    // Enumerate the grid first (row-major, the historical cell order),
    // then evaluate the independent cells on the batch engine.
    let mut cells = Vec::new();
    let mut x = 1.0;
    while x <= depth {
        let mut y = -width / 2.0;
        while y <= width / 2.0 {
            cells.push(Point::new(x, y));
            y += cell;
        }
        x += cell;
    }
    crate::batch::par_map(&cells, |&p, _| {
        let bearing = p.bearing_to(&Point::origin());
        let pose = Pose::new(p, bearing);
        let snr10 = analytic_uplink_snr(scene, node, ap, &pose, 10e6);
        let best_rate = crate::adaptation::UPLINK_RATES
            .iter()
            .copied()
            .find(|&rate| {
                analytic_uplink_snr(scene, node, ap, &pose, rate)
                    .map(|s| s >= crate::adaptation::SNR_ACCEPT)
                    .unwrap_or(false)
            });
        CoverageCell {
            position: p,
            uplink_snr_db: snr10.map(ratio_to_db).unwrap_or(f64::NEG_INFINITY),
            best_rate,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_rf::geometry::deg_to_rad;

    fn setup() -> (Scene, BackscatterNode, ApParams) {
        (
            Scene::milback_indoor(),
            BackscatterNode::milback(Pose::facing_ap(2.0, 0.0, 0.0)),
            ApParams::milback(),
        )
    }

    #[test]
    fn snr_decreases_with_distance() {
        let (scene, node, ap) = setup();
        let s2 =
            analytic_uplink_snr(&scene, &node, &ap, &Pose::facing_ap(2.0, 0.0, 0.0), 10e6).unwrap();
        let s8 =
            analytic_uplink_snr(&scene, &node, &ap, &Pose::facing_ap(8.0, 0.0, 0.0), 10e6).unwrap();
        // d⁻⁴: 2 m → 8 m costs ~24 dB.
        let drop = ratio_to_db(s2 / s8);
        assert!((drop - 24.1).abs() < 1.0, "drop {drop} dB");
    }

    #[test]
    fn analytic_snr_tracks_simulation() {
        // The planning estimate should be within a few dB of the measured
        // decision SNR from the full waveform simulation.
        use crate::config::Fidelity;
        use crate::network::Network;
        let (scene, node, ap) = setup();
        let pose = Pose::facing_ap(4.0, 0.0, deg_to_rad(15.0));
        let analytic = ratio_to_db(analytic_uplink_snr(&scene, &node, &ap, &pose, 10e6).unwrap());
        let mut net = Network::new(pose, Fidelity::Fast, 81);
        let measured = ratio_to_db(net.uplink(&[0x5A; 12], 5e6, true).unwrap().snr);
        assert!(
            (analytic - measured).abs() < 6.0,
            "analytic {analytic} vs measured {measured}"
        );
    }

    #[test]
    fn out_of_scan_range_is_none() {
        let (scene, node, ap) = setup();
        let pose = Pose::facing_ap(3.0, 0.0, deg_to_rad(50.0));
        assert!(analytic_uplink_snr(&scene, &node, &ap, &pose, 10e6).is_none());
    }

    #[test]
    fn coverage_map_shape() {
        let (scene, node, ap) = setup();
        let map = coverage_map(&scene, &node, &ap, 6.0, 4.0, 1.0);
        assert!(!map.is_empty());
        // Near cells support fast rates, far cells slower (or same) ones.
        let near = map
            .iter()
            .filter(|c| c.position.x < 2.5 && c.position.y.abs() < 1.0)
            .filter_map(|c| c.best_rate)
            .fold(0.0f64, f64::max);
        let far = map
            .iter()
            .filter(|c| c.position.x > 5.5)
            .filter_map(|c| c.best_rate)
            .fold(0.0f64, f64::max);
        assert!(near >= far, "near {near} vs far {far}");
        assert!(near >= 40e6, "near cells should support 40 Mbps: {near}");
    }
}
