//! Dense-network fabric (DESIGN.md §16): hundreds-to-thousands of
//! backscatter nodes, several APs, one deterministic slotted MAC.
//!
//! The paper deploys one AP and one node per session; §7 closes with
//! SDM multi-node support and leaves network scale open. This module is
//! that scale-out. One [`Fabric`] owns a whole deployment:
//!
//! * **Slotted polling MAC** — every round, each coverage cell polls its
//!   members in fixed slots ([`RoundSchedule::slotted`]): member `j` of
//!   a cell owns the airtime window `[j·(slot+guard), j·(slot+guard) +
//!   slot)`. Cells transmit concurrently (each AP's steered horn beams
//!   suppress other cells' traffic below the noise floor — the same
//!   argument the paper's §7 polling MAC makes for unaddressed nodes),
//!   but *within* a cell the Field-1/Field-2 airtimes of two nodes never
//!   overlap, serialized on the shared `Network::clock_s`. Sessions that
//!   outrun their slot are counted (`net.slot.overrun`), not clipped.
//! * **Inter-node interference** — a scheduled node's Field-2 capture
//!   accumulates the residual reflections of its strongest parked
//!   same-cell neighbors as clutter, through the §13 cached ray tables
//!   (`Scene::accumulate_backscatter_into`), reported under the
//!   `net.interference.*` telemetry family. An empty neighbor list is
//!   bitwise free.
//! * **Cells and handoff** — nodes are assigned to the AP with the
//!   strongest closed-form two-way response
//!   (`milback_ap::coverage::response_db`), with a hysteresis margin;
//!   per-round pose drift moves border nodes across cells and every
//!   crossing is a deterministic handoff event.
//! * **Sharded sweeps** — [`density_sweep`] scales the §10 batch engine
//!   across *node count* instead of trial count, feeding the
//!   `bench_engine --net` leg (sessions/sec and aggregate goodput vs
//!   density in `BENCH_5.json`).
//!
//! ## Determinism
//!
//! Everything that decides an outcome derives from `(master seed, round,
//! node index)`: slot seeds via [`derive_seed`], drift and workload
//! draws from index-keyed SplitMix64 streams, interference lists from
//! the deterministic per-round response ordering. Worker threads only
//! decide *where* a slot runs, never *what* it computes, so a round is
//! bitwise identical at any `MILBACK_THREADS` — mirroring the §15
//! serving engine, and pinned by `tests/net.rs` plus the two-run `cmp`
//! in `ci.sh`. Wall-clock time is confined to `.ns` telemetry and the
//! wall/sessions-per-second report fields.
//!
//! ## Example: a slotted round never double-books airtime
//!
//! ```
//! use milback::net::RoundSchedule;
//!
//! // Six nodes across two cells (0 and 1), 100 µs slots, 10 µs guard.
//! let assignment = [0, 1, 0, 1, 1, 0];
//! let sched = RoundSchedule::slotted(&assignment, 2, 100e-6, 10e-6);
//! assert_eq!(sched.slots.len(), 6);
//! // Same-cell slots are disjoint: sorted by start, each ends (plus its
//! // guard) before the next begins.
//! for cell in 0..2 {
//!     let mut windows: Vec<(f64, f64)> = sched
//!         .slots
//!         .iter()
//!         .filter(|s| s.cell == cell)
//!         .map(|s| (s.start_s, s.start_s + s.airtime_s))
//!         .collect();
//!     windows.sort_by(|a, b| a.0.total_cmp(&b.0));
//!     for pair in windows.windows(2) {
//!         assert!(pair[0].1 <= pair[1].0, "cell {cell} double-booked");
//!     }
//! }
//! ```
//!
//! ## Example: strongest-response cell assignment
//!
//! ```
//! use milback::net::{ap_line, net_roster, Fabric, NetConfig};
//! use milback::Fidelity;
//!
//! let aps = ap_line(2, 4.0); // two APs 4 m apart
//! let poses = net_roster(8, &aps, 0xD0C);
//! let mut fabric = Fabric::new(&aps, &poses, NetConfig::milback(Fidelity::Fast));
//! fabric.assign_cells();
//! // Every node got exactly one serving AP, and both cells are used.
//! let cells = fabric.assignment();
//! assert_eq!(cells.len(), 8);
//! assert!(cells.iter().all(|&c| c < 2));
//! assert!(cells.contains(&0) && cells.contains(&1));
//! ```

use crate::adaptation::{LinkPolicy, PolicyFeedback};
use crate::batch::{derive_seed, run_stealing_with_threads, Mix, StealQueue};
use crate::config::Fidelity;
use crate::network::{Interferer, Network};
use crate::serve::{fnv_word, workload_code, Workload};
use crate::session::{Session, SessionConfig, SessionCtx};
use milback_ap::coverage;
use milback_dsp::num::Cpx;
use milback_node::node::BackscatterNode;
use milback_proto::packet::{LinkMode, Packet};
use milback_rf::fsa::DualPortFsa;
use milback_rf::geometry::{deg_to_rad, Point, Pose};
use milback_telemetry as telemetry;
use std::sync::Mutex;
use std::time::Instant;

/// Salts for the per-round index-keyed input streams (kept distinct so
/// drift, workload and roster draws never alias).
const ROSTER_SALT: u64 = 0x0E75_0E75;
const DRIFT_SALT: u64 = 0xD21F_7D21;
const WORK_SALT: u64 = 0x3108_AD00;

// ---------------------------------------------------------------------
// Configuration and topology
// ---------------------------------------------------------------------

/// Dense-network fabric policy: slot geometry, interference model,
/// handoff hysteresis, drift and workload mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Session supervisor budgets for every scheduled session.
    pub session: SessionConfig,
    /// Channel fidelity for every lane's [`Network`].
    pub fidelity: Fidelity,
    /// Airtime slot length, seconds. Sessions that outrun it are counted
    /// as overruns, never clipped.
    pub slot_s: f64,
    /// Guard time between same-cell slots (beam re-steering), seconds.
    pub guard_s: f64,
    /// Whether scheduled captures accumulate parked-neighbor clutter.
    /// `false` is bitwise identical to `max_interferers == 0`.
    pub interference: bool,
    /// Strongest same-cell neighbors layered into a scheduled capture.
    pub max_interferers: usize,
    /// Handoff hysteresis, dB: a node moves cells only when another AP
    /// beats its current response by more than this.
    pub handoff_margin_db: f64,
    /// Per-round bounded pose drift: each round every node sits at its
    /// roster pose plus a per-axis offset uniform in `±drift_step_m`.
    /// `0.0` pins every node (and makes rounds bit-identical repeats).
    pub drift_step_m: f64,
    /// Fraction of slots running `Localize` (the rest exchange payloads).
    pub localize_fraction: f64,
    /// Among exchanges, the fraction running `Uplink`.
    pub uplink_fraction: f64,
    /// Payload bytes per exchange slot.
    pub payload_len: usize,
    /// Enables the per-lane closed-loop [`LinkPolicy`] controller
    /// (DESIGN.md §18): each node's lane carries a policy whose state
    /// persists across that node's slots within a run, adapting uplink
    /// rate, OOK fallback, Field-2 chirp count and ARQ budgets from
    /// observed outcomes. `false` (the default) keeps round digests
    /// bitwise identical to the fixed-configuration fabric.
    pub adaptive: bool,
}

impl NetConfig {
    /// Paper-shaped defaults: slots sized for one supervised session
    /// (three packet durations), 1 ms steering guard, three-neighbor
    /// interference, 1 dB handoff hysteresis, no drift, and the §15
    /// serving mix (60% localize, 40/60 uplink/downlink split).
    pub fn milback(fidelity: Fidelity) -> Self {
        let pkt = fidelity.packet();
        Self {
            session: SessionConfig::milback(),
            fidelity,
            slot_s: 3.0 * pkt.total_duration(),
            guard_s: 1e-3,
            interference: true,
            max_interferers: 3,
            handoff_margin_db: 1.0,
            drift_step_m: 0.0,
            localize_fraction: 0.6,
            uplink_fraction: 0.4,
            payload_len: 16,
            adaptive: false,
        }
    }
}

/// AP positions on a line along +x at `spacing_m` intervals, the first
/// at the origin — the corridor deployment the density sweeps use.
pub fn ap_line(n_aps: usize, spacing_m: f64) -> Vec<Point> {
    assert!(n_aps >= 1, "need at least one AP");
    (0..n_aps)
        .map(|k| Point::new(k as f64 * spacing_m, 0.0))
        .collect()
}

/// A deterministic roster of `n` node poses across a multi-AP corridor.
///
/// Node `k` homes to AP `k % aps.len()`. Most nodes sit in the paper's
/// working region around their home AP (ranges 1.7–2.6 m, azimuth ±8°,
/// facing offset 8–14° — the §15 serving roster); with two or more APs,
/// ~30% are *border* nodes placed in the strip between adjacent APs,
/// facing the midpoint, so both APs see comparable responses and
/// per-round drift produces real handoffs.
pub fn net_roster(n: usize, aps: &[Point], seed: u64) -> Vec<Pose> {
    assert!(!aps.is_empty(), "need at least one AP");
    (0..n)
        .map(|k| {
            let mut mix = Mix::new(derive_seed(seed ^ ROSTER_SALT, k as u64));
            let home = k % aps.len();
            let border = aps.len() >= 2 && mix.unit() < 0.3;
            if border {
                let a = aps[home];
                let b = aps[(home + 1) % aps.len()];
                let u = 0.38 + 0.24 * mix.unit();
                let position = Point::new(
                    a.x + u * (b.x - a.x),
                    a.y + u * (b.y - a.y) + 1.3 + 0.9 * mix.unit(),
                );
                let mid = Point::new(0.5 * (a.x + b.x), 0.5 * (a.y + b.y));
                let facing = position.bearing_to(&mid) + deg_to_rad(-25.0 + 50.0 * mix.unit());
                Pose::new(position, facing)
            } else {
                let r = 1.7 + 0.9 * mix.unit();
                let phi = deg_to_rad(-8.0 + 16.0 * mix.unit());
                let psi = deg_to_rad(8.0 + 6.0 * mix.unit());
                let local = Pose::facing_ap(r, phi, psi);
                Pose::new(
                    Point::new(
                        local.position.x + aps[home].x,
                        local.position.y + aps[home].y,
                    ),
                    local.facing,
                )
            }
        })
        .collect()
}

/// Translates a global pose into an AP's local frame (the frame every
/// lane [`Network`]'s scene lives in). Translation only: facing is a
/// global azimuth and bearings are translation-invariant.
fn local_pose(pose: Pose, ap: Point) -> Pose {
    Pose::new(
        Point::new(pose.position.x - ap.x, pose.position.y - ap.y),
        pose.facing,
    )
}

// ---------------------------------------------------------------------
// Slot schedule
// ---------------------------------------------------------------------

/// One airtime slot of a round: which node, in which cell, when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slot {
    /// Scheduled node.
    pub node: usize,
    /// Serving cell (AP index).
    pub cell: usize,
    /// Slot start, seconds from the round origin.
    pub start_s: f64,
    /// On-air window length, seconds (the guard trails it).
    pub airtime_s: f64,
}

/// A materialized slotted round: per-cell back-to-back polling, cells
/// concurrent. See the module docs for the no-double-booking doctest.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSchedule {
    /// One slot per node, in node order.
    pub slots: Vec<Slot>,
    /// Round span: the longest cell's polling sequence, seconds.
    pub round_s: f64,
}

impl RoundSchedule {
    /// Lays out one polling round: the `j`-th member of each cell owns
    /// `[j·(slot+guard), j·(slot+guard) + slot)`. Deterministic in the
    /// assignment; same-cell windows are disjoint by construction
    /// (property-tested in `tests/net.rs`).
    pub fn slotted(assignment: &[usize], n_cells: usize, slot_s: f64, guard_s: f64) -> Self {
        assert!(n_cells >= 1, "need at least one cell");
        assert!(slot_s > 0.0, "slots need positive airtime");
        let mut next = vec![0usize; n_cells];
        let pitch = slot_s + guard_s;
        let slots = assignment
            .iter()
            .enumerate()
            .map(|(node, &cell)| {
                assert!(cell < n_cells, "node {node} assigned to unknown cell");
                let j = next[cell];
                next[cell] += 1;
                Slot {
                    node,
                    cell,
                    start_s: j as f64 * pitch,
                    airtime_s: slot_s,
                }
            })
            .collect();
        let round_s = next.iter().max().copied().unwrap_or(0) as f64 * pitch;
        Self { slots, round_s }
    }
}

// ---------------------------------------------------------------------
// Outcomes and reports
// ---------------------------------------------------------------------

/// The resolved record of one scheduled slot. Plain `Copy` data, no
/// wall-clock content — comparable bitwise across runs and thread
/// counts, and the unit the round digest folds over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotOutcome {
    /// Scheduled node.
    pub node: usize,
    /// Serving cell.
    pub cell: usize,
    /// Service class this slot ran.
    pub workload: Workload,
    /// Parked neighbors layered into the capture.
    pub interferers: u8,
    /// Session ran to completion (vs exhausting a retry budget).
    pub completed: bool,
    /// Payload CRC passed (exchanges) / fix produced (`Localize`).
    pub delivered: bool,
    /// Payload bits delivered by this slot.
    pub delivered_bits: u32,
    /// Degradations recorded by the session supervisor.
    pub degradations: u8,
    /// Bit pattern of the fix range (`u64::MAX` when no fix).
    pub fix_range_bits: u64,
    /// Lane airtime the session consumed, seconds.
    pub airtime_s: f64,
    /// Whether the session outran its slot.
    pub overrun: bool,
}

impl SlotOutcome {
    fn empty() -> Self {
        Self {
            node: 0,
            cell: 0,
            workload: Workload::Localize,
            interferers: 0,
            completed: false,
            delivered: false,
            delivered_bits: 0,
            degradations: 0,
            fix_range_bits: u64::MAX,
            airtime_s: 0.0,
            overrun: false,
        }
    }
}

/// Aggregate of one fabric round. Everything except `wall_s` is
/// deterministic (thread- and run-invariant for a fixed fabric state).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundReport {
    /// Round index (0-based, monotonic per fabric).
    pub round: u64,
    /// Slots scheduled (= nodes).
    pub sessions: usize,
    /// Sessions that ran to completion.
    pub completed: usize,
    /// Sessions that delivered (payload CRC / localization fix).
    pub delivered: usize,
    /// Localization fixes produced.
    pub fixes: usize,
    /// Nodes that changed serving cell this round.
    pub handoffs: usize,
    /// Sessions that outran their slot.
    pub overruns: usize,
    /// Payload bits delivered across the round.
    pub delivered_bits: u64,
    /// Schedule span of the round (longest cell), seconds — the airtime
    /// denominator of `goodput_bps`.
    pub round_airtime_s: f64,
    /// Aggregate goodput over the round's schedule airtime, bits/s.
    pub goodput_bps: f64,
    /// FNV-1a over every [`SlotOutcome`] in node order.
    pub digest: u64,
    /// Wall-clock dispatch time, seconds (measurement, not deterministic).
    pub wall_s: f64,
}

// ---------------------------------------------------------------------
// The fabric
// ---------------------------------------------------------------------

/// Per-node lane: the node's [`Network`] in its serving AP's local frame
/// plus a pooled packet buffer. Mirrors the §15 serving engine's lanes.
struct NetLane {
    net: Network,
    packet: Packet,
    /// Closed-loop link controller for this node. Only consulted when
    /// [`NetConfig::adaptive`] is set; reset on [`Fabric::reseed`] so
    /// runs stay independent.
    policy: LinkPolicy,
}

/// A dense-network deployment: many nodes, several APs, one slotted MAC.
/// Owns every pooled resource (lanes, scratch contexts, claim flags,
/// outcome slots, per-round scratch) and reuses all of them round after
/// round — a warmed all-`Localize` round at one worker performs zero
/// steady-state heap allocations (pinned by `tests/zero_alloc.rs`).
pub struct Fabric {
    config: NetConfig,
    aps: Vec<Point>,
    /// Roster baseline poses (global frame).
    base: Vec<Pose>,
    /// This round's drifted poses (global frame).
    poses: Vec<Pose>,
    /// Serving cell per node (`usize::MAX` before the first assignment).
    assignment: Vec<usize>,
    /// Response toward the serving AP, dB (per node).
    response_db: Vec<f64>,
    /// Scratch: per-AP responses for one node.
    resp_scratch: Vec<f64>,
    /// Per-cell member lists, node order.
    members: Vec<Vec<usize>>,
    /// Per-cell members sorted by descending response (interferer pick).
    order: Vec<Vec<usize>>,
    /// Per-node slot start within the round, seconds.
    slot_start: Vec<f64>,
    lanes: Vec<Mutex<NetLane>>,
    ctxs: Vec<Mutex<SessionCtx>>,
    claims: StealQueue,
    records: Vec<Mutex<SlotOutcome>>,
    session: Session,
    /// One scene in the home frame for closed-form response evaluation.
    eval_scene: milback_rf::channel::Scene,
    fsa: DualPortFsa,
    parked: [Cpx; 2],
    master_seed: u64,
    round: u64,
    clock_s: f64,
    total_handoffs: u64,
}

impl Fabric {
    /// Builds a fabric over AP positions and a global-frame node roster.
    /// The only per-node allocations happen here; rounds reuse them.
    pub fn new(aps: &[Point], poses: &[Pose], config: NetConfig) -> Self {
        assert!(!aps.is_empty(), "need at least one AP");
        assert!(!poses.is_empty(), "need at least one node");
        let proto_node = BackscatterNode::milback(Pose::facing_ap(2.0, 0.0, 0.0));
        let parked = proto_node.parked_gamma();
        let fsa = proto_node.fsa;
        let lanes = poses
            .iter()
            .map(|&pose| {
                Mutex::new(NetLane {
                    net: Network::new(local_pose(pose, aps[0]), config.fidelity, 0),
                    packet: Packet {
                        mode: LinkMode::Downlink,
                        payload: Vec::new(),
                    },
                    policy: LinkPolicy::default(),
                })
            })
            .collect();
        Self {
            config,
            aps: aps.to_vec(),
            base: poses.to_vec(),
            poses: poses.to_vec(),
            assignment: vec![usize::MAX; poses.len()],
            response_db: vec![f64::NEG_INFINITY; poses.len()],
            resp_scratch: Vec::with_capacity(aps.len()),
            members: (0..aps.len()).map(|_| Vec::new()).collect(),
            order: (0..aps.len()).map(|_| Vec::new()).collect(),
            slot_start: vec![0.0; poses.len()],
            lanes,
            ctxs: Vec::new(),
            claims: StealQueue::new(),
            records: (0..poses.len())
                .map(|_| Mutex::new(SlotOutcome::empty()))
                .collect(),
            session: Session::new(config.session),
            eval_scene: milback_rf::channel::Scene::milback_indoor(),
            fsa,
            parked,
            master_seed: 0,
            round: 0,
            clock_s: 0.0,
            total_handoffs: 0,
        }
    }

    /// Nodes in the fabric.
    pub fn nodes(&self) -> usize {
        self.lanes.len()
    }

    /// Coverage cells (APs) in the fabric.
    pub fn cells(&self) -> usize {
        self.aps.len()
    }

    /// Serving cell per node (valid after [`Fabric::assign_cells`] or
    /// the first round).
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Total handoffs since construction.
    pub fn handoffs(&self) -> u64 {
        self.total_handoffs
    }

    /// The resolved outcome of `node`'s slot in the last round.
    pub fn outcome(&self, node: usize) -> SlotOutcome {
        *self.records[node].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Re-keys the fabric: resets the round counter, the shared clock
    /// and every lane, exactly like the serving engine's `begin_epoch`.
    pub fn reseed(&mut self, master_seed: u64) {
        self.master_seed = master_seed;
        self.round = 0;
        self.clock_s = 0.0;
        self.total_handoffs = 0;
        self.assignment.fill(usize::MAX);
        self.response_db.fill(f64::NEG_INFINITY);
        self.poses.copy_from_slice(&self.base);
        for lane in &mut self.lanes {
            let lane = lane.get_mut().unwrap_or_else(|e| e.into_inner());
            lane.net.clock_s = 0.0;
            lane.net.reseed(master_seed);
            lane.net.interferers.clear();
            lane.policy.reset();
        }
    }

    /// Assigns every node to its strongest-response cell (with the
    /// hysteresis of [`NetConfig::handoff_margin_db`]) from the current
    /// poses, rebuilding the per-cell member and interference orderings.
    /// Returns the number of handoffs (re-assignments of an already
    /// assigned node). Pure closed-form math — no signal rendering — and
    /// deterministic in the pose set.
    pub fn assign_cells(&mut self) -> usize {
        let n = self.poses.len();
        let mut handoffs = 0;
        for i in 0..n {
            self.resp_scratch.clear();
            for ap in &self.aps {
                let local = local_pose(self.poses[i], *ap);
                self.eval_scene.steer_towards(&local.position);
                self.resp_scratch
                    .push(coverage::response_db(&self.eval_scene, &local, &self.fsa));
            }
            let prev = self.assignment[i];
            let current = (prev != usize::MAX).then_some(prev);
            let cell =
                coverage::pick_cell(current, &self.resp_scratch, self.config.handoff_margin_db);
            if prev != usize::MAX && cell != prev {
                handoffs += 1;
            }
            self.assignment[i] = cell;
            self.response_db[i] = self.resp_scratch[cell];
        }
        self.total_handoffs += handoffs as u64;
        telemetry::counter_add("net.handoff", handoffs as u64);

        for cell in &mut self.members {
            cell.clear();
        }
        for (i, &cell) in self.assignment.iter().enumerate() {
            self.members[cell].push(i);
        }
        // Interference ordering: members by descending serving response,
        // ties broken by node index — deterministic, so every slot's
        // neighbor list is too.
        for (cell, order) in self.order.iter_mut().enumerate() {
            order.clear();
            order.extend_from_slice(&self.members[cell]);
            let resp = &self.response_db;
            order.sort_unstable_by(|&a, &b| resp[b].total_cmp(&resp[a]).then(a.cmp(&b)));
        }
        handoffs
    }

    /// Runs one full polling round on `threads` workers (`1` runs
    /// inline): drift poses, re-assign cells, lay out the slotted
    /// schedule, then dispatch every node's session over the
    /// work-stealing pool. The returned report (minus `wall_s`) and
    /// every [`Fabric::outcome`] are bitwise identical at any thread
    /// count.
    pub fn run_round(&mut self, threads: usize) -> RoundReport {
        let round_seed = derive_seed(self.master_seed, self.round);
        let n = self.poses.len();

        // 1. Bounded pose drift from the roster baseline (never a random
        //    walk: offsets are per-round draws, so a round's geometry
        //    depends only on (master, round, node)).
        let step = self.config.drift_step_m;
        if step > 0.0 {
            for i in 0..n {
                let mut mix = Mix::new(derive_seed(round_seed ^ DRIFT_SALT, i as u64));
                let base = self.base[i];
                self.poses[i] = Pose::new(
                    Point::new(
                        base.position.x + step * (2.0 * mix.unit() - 1.0),
                        base.position.y + step * (2.0 * mix.unit() - 1.0),
                    ),
                    base.facing,
                );
            }
        }

        // 2. Cells, handoffs, interference ordering.
        let handoffs = self.assign_cells();

        // 3. Slot layout (pooled twin of `RoundSchedule::slotted`).
        let pitch = self.config.slot_s + self.config.guard_s;
        let mut longest = 0usize;
        for (cell, members) in self.members.iter().enumerate() {
            longest = longest.max(members.len());
            for (j, &node) in members.iter().enumerate() {
                self.slot_start[node] = j as f64 * pitch;
            }
            let _ = cell;
        }
        let round_airtime_s = longest as f64 * pitch;

        // 4. Dispatch: one job per node over the work-stealing pool.
        let workers = threads.max(1).min(n.max(1));
        while self.ctxs.len() < workers {
            self.ctxs.push(Mutex::new(SessionCtx::new()));
        }
        self.claims.reset(n);
        telemetry::counter_add("net.round.slots", n as u64);
        let span = telemetry::span("net.round.ns");
        let t0 = Instant::now();
        {
            let fabric = &*self;
            run_stealing_with_threads(&self.claims, n, workers, |i| {
                let mut lane = fabric.lanes[i].lock().unwrap_or_else(|e| e.into_inner());
                // Scratch checkout mirrors the serving engine: start at
                // this job's slot, take the first free context; with one
                // worker slot 0 is always free and the loop stays inline.
                let n_ctx = fabric.ctxs.len();
                let mut ctx = None;
                for k in 0..n_ctx {
                    if let Ok(g) = fabric.ctxs[(i + k) % n_ctx].try_lock() {
                        ctx = Some(g);
                        break;
                    }
                }
                let mut ctx = match ctx {
                    Some(g) => g,
                    None => fabric.ctxs[i % n_ctx]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner()),
                };
                let rec = fabric.run_slot(round_seed, i, &mut lane, &mut ctx);
                *fabric.records[i].lock().unwrap_or_else(|e| e.into_inner()) = rec;
            });
        }
        let wall_s = t0.elapsed().as_secs_f64();
        span.end();

        // 5. Aggregate in node order (deterministic digest).
        let mut report = RoundReport {
            round: self.round,
            sessions: n,
            completed: 0,
            delivered: 0,
            fixes: 0,
            handoffs,
            overruns: 0,
            delivered_bits: 0,
            round_airtime_s,
            goodput_bps: 0.0,
            digest: 0xcbf2_9ce4_8422_2325_u64,
            wall_s,
        };
        for rec in &mut self.records {
            let r = *rec.get_mut().unwrap_or_else(|e| e.into_inner());
            report.completed += r.completed as usize;
            report.delivered += r.delivered as usize;
            report.fixes += (r.fix_range_bits != u64::MAX) as usize;
            report.overruns += r.overrun as usize;
            report.delivered_bits += u64::from(r.delivered_bits);
            for w in [
                r.node as u64,
                r.cell as u64,
                workload_code(r.workload),
                u64::from(r.interferers),
                r.completed as u64,
                r.delivered as u64,
                u64::from(r.delivered_bits),
                u64::from(r.degradations),
                r.fix_range_bits,
                r.airtime_s.to_bits(),
                r.overrun as u64,
            ] {
                report.digest = fnv_word(report.digest, w);
            }
        }
        if round_airtime_s > 0.0 {
            report.goodput_bps = report.delivered_bits as f64 / round_airtime_s;
        }
        telemetry::counter_add("net.slot.overrun", report.overruns as u64);
        telemetry::counter_add("net.delivered.bits", report.delivered_bits);

        self.clock_s += round_airtime_s;
        self.round += 1;
        report
    }

    /// Runs one node's scheduled slot against its lane. Everything that
    /// decides the outcome — seed, clock, pose, neighbors, workload —
    /// derives from `(master, round, node)` and the deterministic
    /// assignment state; never from the worker or the wall clock.
    fn run_slot(
        &self,
        round_seed: u64,
        i: usize,
        lane: &mut NetLane,
        ctx: &mut SessionCtx,
    ) -> SlotOutcome {
        let cfg = &self.config;
        let cell = self.assignment[i];
        let ap = self.aps[cell];
        let net = &mut lane.net;

        net.set_node_pose(local_pose(self.poses[i], ap));
        net.reseed(derive_seed(round_seed, i as u64));
        let slot_abs_start = self.clock_s + self.slot_start[i];
        net.clock_s = slot_abs_start;

        // Interference: the strongest parked same-cell neighbors, in the
        // deterministic per-round response order, translated into this
        // AP's local frame. Pooled: clear + push within capacity.
        net.interferers.clear();
        if cfg.interference && cfg.max_interferers > 0 {
            for &j in &self.order[cell] {
                if j == i {
                    continue;
                }
                if net.interferers.len() >= cfg.max_interferers {
                    break;
                }
                net.interferers.push(Interferer {
                    pose: local_pose(self.poses[j], ap),
                    fsa: self.fsa,
                    gamma: self.parked,
                });
            }
            if !net.interferers.is_empty() {
                telemetry::counter_add("net.interference.slots", 1);
            }
        }
        let n_itf = net.interferers.len();

        let mut mix = Mix::new(derive_seed(round_seed ^ WORK_SALT, i as u64));
        let workload = if mix.unit() < cfg.localize_fraction {
            Workload::Localize
        } else if mix.unit() < cfg.uplink_fraction {
            Workload::Uplink
        } else {
            Workload::Downlink
        };

        let mut rec = SlotOutcome {
            node: i,
            cell,
            workload,
            interferers: n_itf.min(255) as u8,
            ..SlotOutcome::empty()
        };
        match workload {
            Workload::Localize => {
                let s = if cfg.adaptive {
                    let mut scfg = self.session.config;
                    scfg.field2_chirps = lane.policy.field2_chirps();
                    Session::new(scfg).localize_in(ctx, net)
                } else {
                    self.session.localize_in(ctx, net)
                };
                rec.completed = true;
                rec.delivered = s.fix.is_some();
                rec.degradations =
                    (s.dropped > 0) as u8 + s.fell_back as u8 + s.fix.is_none() as u8;
                rec.fix_range_bits = s.fix.map_or(u64::MAX, |f| f.range.to_bits());
            }
            Workload::Downlink | Workload::Uplink => {
                let seed = derive_seed(round_seed, i as u64);
                lane.packet.mode = if workload == Workload::Downlink {
                    LinkMode::Downlink
                } else {
                    LinkMode::Uplink
                };
                lane.packet.payload.clear();
                lane.packet.payload.extend(
                    (0..cfg.payload_len)
                        .map(|b| (seed.rotate_left(((b % 8) * 8) as u32) as u8) ^ (b as u8)),
                );
                let outcome = if cfg.adaptive {
                    let sp = lane.policy.plan(&self.session.config, lane.packet.mode);
                    net.force_single_tone = sp.force_ook;
                    let out = Session::new(sp.config).run_in(ctx, net, &lane.packet, false);
                    net.force_single_tone = false;
                    let fb = PolicyFeedback::from_outcome(&out, lane.policy.config.snr_floor);
                    lane.policy.observe(&fb);
                    out
                } else {
                    self.session.run_in(ctx, net, &lane.packet, false)
                };
                match outcome {
                    Ok(r) => {
                        rec.completed = true;
                        rec.degradations = r.degradations.len().min(255) as u8;
                        rec.delivered = match workload {
                            Workload::Downlink => {
                                r.downlink.as_ref().is_some_and(|d| d.payload.is_ok())
                            }
                            _ => r.uplink.as_ref().is_some_and(|u| u.payload.is_ok()),
                        };
                        if rec.delivered {
                            rec.delivered_bits =
                                (cfg.payload_len * 8).min(u32::MAX as usize) as u32;
                        }
                        rec.fix_range_bits = r.fix.map_or(u64::MAX, |f| f.range.to_bits());
                    }
                    Err(e) => {
                        rec.degradations = e.degradations.len().min(255) as u8;
                    }
                }
            }
        }
        rec.airtime_s = net.clock_s - slot_abs_start;
        rec.overrun = rec.airtime_s > cfg.slot_s;
        rec
    }
}

// ---------------------------------------------------------------------
// Density sweeps
// ---------------------------------------------------------------------

/// Aggregate of one density point of [`density_sweep`]. All fields
/// except `wall_s` / `sessions_per_s` are deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityPoint {
    /// Nodes in the fabric at this point.
    pub nodes: usize,
    /// APs (coverage cells).
    pub aps: usize,
    /// Polling rounds run.
    pub rounds: usize,
    /// Sessions scheduled (= nodes × rounds).
    pub sessions: usize,
    /// Sessions that ran to completion.
    pub completed: usize,
    /// Sessions that delivered.
    pub delivered: usize,
    /// Localization fixes produced.
    pub fixes: usize,
    /// Handoffs across the rounds.
    pub handoffs: usize,
    /// Slot overruns across the rounds.
    pub overruns: usize,
    /// Payload bits delivered.
    pub delivered_bits: u64,
    /// Total schedule airtime across the rounds, seconds.
    pub airtime_s: f64,
    /// Aggregate goodput over schedule airtime, bits/s (deterministic).
    pub goodput_bps: f64,
    /// FNV-1a fold of every round digest.
    pub digest: u64,
    /// Wall-clock dispatch time, seconds.
    pub wall_s: f64,
    /// Sessions per wall-clock second (measurement).
    pub sessions_per_s: f64,
}

/// Sweeps the fabric across node densities: for each entry of
/// `densities`, builds an `n_aps`-cell corridor fabric (APs `spacing_m`
/// apart, roster from [`net_roster`]), runs `rounds` polling rounds on
/// `threads` workers, and aggregates. This is the §10 batch engine
/// sharded across *node count* instead of trial count — the work inside
/// a point is the parallel axis, so dense points scale across workers
/// while every deterministic field stays thread-invariant.
pub fn density_sweep(
    densities: &[usize],
    n_aps: usize,
    spacing_m: f64,
    rounds: usize,
    config: NetConfig,
    master_seed: u64,
    threads: usize,
) -> Vec<DensityPoint> {
    let aps = ap_line(n_aps, spacing_m);
    densities
        .iter()
        .map(|&nodes| {
            let poses = net_roster(nodes, &aps, derive_seed(master_seed, nodes as u64));
            let mut fabric = Fabric::new(&aps, &poses, config);
            fabric.reseed(derive_seed(master_seed ^ ROSTER_SALT, nodes as u64));
            let mut point = DensityPoint {
                nodes,
                aps: n_aps,
                rounds,
                sessions: 0,
                completed: 0,
                delivered: 0,
                fixes: 0,
                handoffs: 0,
                overruns: 0,
                delivered_bits: 0,
                airtime_s: 0.0,
                goodput_bps: 0.0,
                digest: 0xcbf2_9ce4_8422_2325_u64,
                wall_s: 0.0,
                sessions_per_s: 0.0,
            };
            for _ in 0..rounds {
                let r = fabric.run_round(threads);
                point.sessions += r.sessions;
                point.completed += r.completed;
                point.delivered += r.delivered;
                point.fixes += r.fixes;
                point.handoffs += r.handoffs;
                point.overruns += r.overruns;
                point.delivered_bits += r.delivered_bits;
                point.airtime_s += r.round_airtime_s;
                point.digest = fnv_word(point.digest, r.digest);
                point.wall_s += r.wall_s;
            }
            if point.airtime_s > 0.0 {
                point.goodput_bps = point.delivered_bits as f64 / point.airtime_s;
            }
            if point.wall_s > 0.0 {
                point.sessions_per_s = point.sessions as f64 / point.wall_s;
            }
            point
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_is_deterministic_and_spread() {
        let aps = ap_line(2, 4.0);
        let a = net_roster(32, &aps, 9);
        let b = net_roster(32, &aps, 9);
        assert_eq!(a, b);
        assert_ne!(a, net_roster(32, &aps, 10));
        // Some nodes near each AP's home region.
        assert!(a.iter().any(|p| p.position.x < 3.0));
        assert!(a.iter().any(|p| p.position.x > 3.0));
    }

    #[test]
    fn slotted_schedule_serializes_cells() {
        let assignment = [0usize, 0, 1, 0, 1];
        let s = RoundSchedule::slotted(&assignment, 2, 1e-3, 1e-4);
        // Cell 0 members poll at 0, 1.1 ms, 2.2 ms; cell 1 at 0, 1.1 ms.
        assert_eq!(s.slots[0].start_s, 0.0);
        assert!((s.slots[1].start_s - 1.1e-3).abs() < 1e-12);
        assert!((s.slots[3].start_s - 2.2e-3).abs() < 1e-12);
        assert_eq!(s.slots[2].start_s, 0.0);
        assert!((s.round_s - 3.3e-3).abs() < 1e-12);
    }

    #[test]
    fn assignment_prefers_the_nearer_ap() {
        let aps = ap_line(2, 8.0);
        // One node squarely in each AP's home region, facing its AP
        // (AP1 sits at (8, 0), so the second node's broadside azimuth
        // is ~0°, toward +x).
        let poses = [
            Pose::facing_ap(2.0, 0.0, deg_to_rad(10.0)),
            Pose::new(Point::new(8.0 - 2.0, 0.0), deg_to_rad(10.0)),
        ];
        let mut fabric = Fabric::new(&aps, &poses, NetConfig::milback(Fidelity::Fast));
        fabric.assign_cells();
        assert_eq!(fabric.assignment()[0], 0);
        assert_eq!(fabric.assignment()[1], 1);
    }

    #[test]
    fn rounds_advance_clock_and_digest_repeats() {
        let aps = ap_line(1, 4.0);
        let poses = net_roster(3, &aps, 3);
        let cfg = NetConfig {
            localize_fraction: 1.0,
            ..NetConfig::milback(Fidelity::Fast)
        };
        let mut fabric = Fabric::new(&aps, &poses, cfg);
        fabric.reseed(0xFAB);
        let a = fabric.run_round(1);
        assert_eq!(a.sessions, 3);
        assert!(a.round_airtime_s > 0.0);
        // Re-keyed fabric replays the identical round.
        fabric.reseed(0xFAB);
        let b = fabric.run_round(1);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.delivered, b.delivered);
    }
}
