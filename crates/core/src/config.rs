//! Simulation configuration: fidelity presets and AP receiver parameters.

use milback_ap::waveform::TxConfig;
use milback_dsp::chirp::ChirpConfig;
use milback_proto::packet::PacketConfig;

/// Simulation fidelity preset.
///
/// `Paper` uses the paper's exact waveform parameters (18 µs / 45 µs
/// chirps at 4 GS/s); `Fast` shrinks chirp durations (same 3 GHz
/// bandwidth, so the same range resolution) to keep unit tests and quick
/// experiments cheap. Benches default to `Fast`; nothing in the signal
/// processing depends on the preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// The paper's exact waveform timing.
    Paper,
    /// Shortened chirps, reduced sample rate — same bandwidth/resolution.
    Fast,
}

impl Fidelity {
    /// The Field-2 (localization) sawtooth chirp for this preset.
    pub fn sawtooth(self) -> ChirpConfig {
        match self {
            Fidelity::Paper => ChirpConfig::milback_sawtooth(),
            Fidelity::Fast => ChirpConfig {
                f_start: 26.5e9,
                f_stop: 29.5e9,
                duration: 2e-6,
                fs: 3.2e9,
                amplitude: 1.0,
            },
        }
    }

    /// The Field-1 (orientation) triangular chirp for this preset.
    pub fn triangular(self) -> ChirpConfig {
        match self {
            Fidelity::Paper => ChirpConfig::milback_triangular(),
            Fidelity::Fast => ChirpConfig {
                f_start: 26.5e9,
                f_stop: 29.5e9,
                duration: 45e-6,
                // The node-side estimator is limited by the 1 MHz MCU ADC,
                // so the triangular chirp must stay slow even in Fast mode;
                // the lower fs keeps it affordable.
                fs: 3.2e9,
                amplitude: 1.0,
            },
        }
    }

    /// Packet configuration for this preset.
    pub fn packet(self) -> PacketConfig {
        let mut p = PacketConfig::milback();
        p.field1_chirp = self.triangular();
        p.field2_chirp = self.sawtooth();
        p
    }

    /// Node modulation frequency during Field 2, chosen so the state
    /// holds for exactly two chirps (half-period = 2 chirps): the chirp
    /// sequence sees states R,R,A,A,R, so two of the four pairwise
    /// differences carry the full node contrast and none straddles a
    /// mid-chirp flip. With the paper's 18 µs chirps this is ≈ 14 kHz —
    /// the same regime as the paper's "10 kHz rate".
    pub fn localization_mod_freq(self) -> f64 {
        1.0 / (4.0 * self.sawtooth().duration)
    }
}

/// AP receiver parameters beyond the ideal front-end models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApParams {
    /// Transmit configuration.
    pub tx: TxConfig,
    /// Effective capture noise figure, dB. This is deliberately much
    /// higher than the LNA's 3 dB: it lumps the oscilloscope's 8-bit
    /// quantization, synthesizer phase noise and the 2 GHz×2 band
    /// patching of the paper's setup into one number, calibrated so the
    /// ranging-error-vs-distance curve lands in the paper's regime.
    pub capture_nf_db: f64,
    /// RMS trigger jitter between the VXG and the scope, seconds. They
    /// share a reference clock, so this is picoseconds; the jitter-induced
    /// beat shift is what bounds how completely background subtraction
    /// removes strong clutter.
    pub jitter_rms: f64,
}

impl ApParams {
    /// Parameters reproducing the paper's measurement setup.
    pub fn milback() -> Self {
        Self {
            tx: TxConfig::milback(),
            capture_nf_db: 12.0,
            jitter_rms: 0.5e-12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_share_bandwidth() {
        let fast = Fidelity::Fast.sawtooth();
        let paper = Fidelity::Paper.sawtooth();
        assert_eq!(fast.bandwidth(), paper.bandwidth());
        assert!(fast.duration < paper.duration);
    }

    #[test]
    fn paper_preset_matches_paper() {
        let p = Fidelity::Paper;
        assert!((p.sawtooth().duration - 18e-6).abs() < 1e-12);
        assert!((p.triangular().duration - 45e-6).abs() < 1e-12);
        // ~11 kHz — the paper's "10 kHz rate".
        let f = p.localization_mod_freq();
        assert!((9e3..15e3).contains(&f), "{f}");
    }

    #[test]
    fn fast_packet_uses_fast_chirps() {
        let pkt = Fidelity::Fast.packet();
        assert_eq!(pkt.field2_chirp.duration, 2e-6);
        assert_eq!(pkt.field2_count, 5);
    }

    #[test]
    fn ap_params_defaults() {
        let p = ApParams::milback();
        assert_eq!(p.tx.power_dbm, 27.0);
        assert!(p.capture_nf_db > p.tx.power_dbm - 27.0); // sanity: positive
        assert!(p.jitter_rms > 0.0);
    }
}
