//! Session-serving engine (DESIGN.md §15): a long-running request
//! processor layered on the deterministic batch engine.
//!
//! The batch engine ([`crate::batch`]) answers "run these N independent
//! trials"; a deployment's access point instead faces an *arrival
//! process* — session requests from many nodes, bursty, with no known
//! end. This module is that serving loop:
//!
//! * **Work-stealing pool** — requests are grouped into per-node
//!   *chains* (arrival order within a node) and the chains are the jobs
//!   of [`crate::batch::run_stealing_with_threads`]. Stealing moves
//!   whole chains between workers, so per-node FIFO order holds by
//!   construction while uneven chain costs still balance.
//! * **Pooled session state** — every reusable buffer a session touches
//!   ([`SessionCtx`]: DSP workspace, channel cache, Field-2 render
//!   buffers, triage scratch) lives in pool slots checked out per chain;
//!   per-node [`Network`]s, packet buffers and fault plans live in the
//!   lanes. The steady-state `Localize` serving loop performs **zero
//!   heap allocations** (pinned by `tests/zero_alloc.rs`; the `Downlink`
//!   / `Uplink` classes still allocate inside the link layer's
//!   modulator, documented in DESIGN.md §15).
//! * **Bounded queues + backpressure** — the submission buffer holds at
//!   most `queue_capacity` requests. [`ServeEngine::try_submit`] returns
//!   the request back when full; [`ServeEngine::submit`] instead makes
//!   the caller pay for a drain first (blocking backpressure). Nothing
//!   grows without bound.
//! * **Telemetry-driven load shedding** — admission tracks a virtual
//!   service backlog (drained at `virtual_workers` × elapsed arrival
//!   time) and exports its depth as the `core.serve.depth` histogram /
//!   gauge. Past `shed_depth` the engine sheds Field-2 work: `Localize`
//!   requests resolve as [`Outcome::Shed`] without going on air, and
//!   exchange requests run with [`Session::run_in`]`(.., shed_field2 =
//!   true)` — localization dropped, payload ARQ kept alive, recorded as
//!   the typed [`crate::session::Degradation::Field2Shed`]. Past
//!   `reject_depth` requests are rejected outright.
//!
//! ## Determinism
//!
//! The pinned guarantees of the batch engine survive the serving layer:
//!
//! * Admission is a pure function of the submission sequence and
//!   [`ServeConfig`] — it models time from request *arrival stamps*,
//!   never the wall clock.
//! * Each session reseeds its lane's [`Network`] from
//!   [`derive_seed`]`(epoch_seed, ticket)` and advances the lane clock
//!   to `max(lane clock, arrival)`, so an outcome depends only on the
//!   request, its ticket, and its lane predecessors — never on which
//!   worker ran the chain or how submissions were batched into drains.
//! * Wall-clock latencies are kept out of [`Resolution`] and recorded
//!   only under `.ns`-suffixed telemetry names, so
//!   `deterministic_view()` stays byte-identical across runs and thread
//!   counts; [`ServeReport::outcome_digest`] fingerprints the resolved
//!   outcomes for cheap two-run comparison.

use crate::adaptation::{LinkPolicy, PolicyFeedback};
use crate::batch::{derive_seed, run_stealing_with_threads, Mix, StealQueue};
use crate::config::Fidelity;
use crate::network::Network;
use crate::session::{FailureKind, Session, SessionConfig, SessionCtx};
use milback_proto::packet::{LinkMode, Packet};
use milback_rf::faults::FaultPlan;
use milback_rf::geometry::{deg_to_rad, Pose};
use milback_telemetry as telemetry;
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------
// Requests and traffic
// ---------------------------------------------------------------------

/// Service class of one submitted session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Field-2-only localization ([`Session::localize_in`]): the
    /// zero-allocation service class, and the first work shed under
    /// overload.
    Localize,
    /// Full supervised exchange delivering a downlink payload.
    Downlink,
    /// Full supervised exchange delivering an uplink payload.
    Uplink,
}

/// One session request. Plain `Copy` data so schedules and pool slots
/// never allocate per request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionRequest {
    /// Index of the target node (a lane of the engine's roster).
    pub node: usize,
    /// Arrival stamp, seconds. Admission models time from these stamps,
    /// so a schedule replays identically regardless of wall clock.
    pub arrival_s: f64,
    /// Service class.
    pub workload: Workload,
    /// Payload bytes for the exchange classes (ignored by `Localize`).
    pub payload_len: usize,
    /// Chaos intensity for this session's fault plan, `0.0` = clean
    /// channel (see [`FaultPlan::chaos`]).
    pub intensity: f64,
}

/// Parameters of a synthetic Poisson arrival process over a node roster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Nodes in the roster (requests target `0..nodes`).
    pub nodes: usize,
    /// Total requests to generate.
    pub sessions: usize,
    /// Mean arrival rate, requests/second (exponential interarrivals).
    pub rate_hz: f64,
    /// Fraction of requests that are `Localize` (the rest are payload
    /// exchanges).
    pub localize_fraction: f64,
    /// Among exchanges, the fraction that are `Uplink`.
    pub uplink_fraction: f64,
    /// Payload bytes per exchange request.
    pub payload_len: usize,
    /// Upper bound on per-request chaos intensity (sampled uniformly in
    /// `[0, fault_intensity)`); `0.0` keeps every channel clean.
    pub fault_intensity: f64,
}

impl TrafficConfig {
    /// A moderate mixed workload: six nodes, 48 requests at 40 req/s,
    /// 60% localization, clean channels.
    pub fn milback() -> Self {
        Self {
            nodes: 6,
            sessions: 48,
            rate_hz: 40.0,
            localize_fraction: 0.6,
            uplink_fraction: 0.4,
            payload_len: 16,
            fault_intensity: 0.0,
        }
    }
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self::milback()
    }
}

/// A fully materialized request schedule: reproducible traffic keyed by
/// a master seed, ready to feed [`ServeEngine::serve_schedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSchedule {
    /// Epoch seed: per-session RNG seeds derive from this and the
    /// submission ticket.
    pub master_seed: u64,
    /// Requests in arrival order (non-decreasing `arrival_s`).
    pub requests: Vec<SessionRequest>,
}

impl TrafficSchedule {
    /// Generates a schedule from `cfg`. Deterministic: the same
    /// `(cfg, master_seed)` always yields the same requests.
    pub fn generate(cfg: &TrafficConfig, master_seed: u64) -> Self {
        assert!(cfg.nodes >= 1, "roster must not be empty");
        assert!(cfg.rate_hz > 0.0, "arrival rate must be positive");
        let mut mix = Mix::new(derive_seed(master_seed ^ 0x074A_FF1C, 0));
        let mut t = 0.0_f64;
        let mut requests = Vec::with_capacity(cfg.sessions);
        for _ in 0..cfg.sessions {
            let u = mix.unit();
            t += -(1.0 - u).max(f64::MIN_POSITIVE).ln() / cfg.rate_hz;
            let node = (mix.next() % cfg.nodes as u64) as usize;
            let workload = if mix.unit() < cfg.localize_fraction {
                Workload::Localize
            } else if mix.unit() < cfg.uplink_fraction {
                Workload::Uplink
            } else {
                Workload::Downlink
            };
            let intensity = cfg.fault_intensity * mix.unit();
            requests.push(SessionRequest {
                node,
                arrival_s: t,
                workload,
                payload_len: cfg.payload_len,
                intensity,
            });
        }
        Self {
            master_seed,
            requests,
        }
    }
}

/// A deterministic roster of `n` node poses inside the paper's working
/// region (ranges 1.7–2.6 m, azimuth ±8°, facing offset 8–14°), for
/// serving demos, benches and tests.
pub fn roster(n: usize, seed: u64) -> Vec<Pose> {
    (0..n)
        .map(|k| {
            let mut mix = Mix::new(derive_seed(seed ^ 0x5e57_e001, k as u64));
            let r = 1.7 + 0.9 * mix.unit();
            let phi = deg_to_rad(-8.0 + 16.0 * mix.unit());
            let psi = deg_to_rad(8.0 + 6.0 * mix.unit());
            Pose::facing_ap(r, phi, psi)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Serving-engine policy: queue bound, overload thresholds and the
/// virtual service model behind the admission backlog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Session supervisor budgets ([`SessionConfig`]).
    pub session: SessionConfig,
    /// Channel fidelity for every lane's [`Network`].
    pub fidelity: Fidelity,
    /// Submission buffer bound (≥ 1): [`ServeEngine::try_submit`]
    /// refuses past this, [`ServeEngine::submit`] drains first.
    pub queue_capacity: usize,
    /// Modeled queue depth at which Field-2 work is shed.
    pub shed_depth: usize,
    /// Modeled queue depth at which requests are rejected outright.
    pub reject_depth: usize,
    /// Modeled service time of a full session, seconds (the unit the
    /// admission backlog is measured in).
    pub virtual_service_s: f64,
    /// Modeled service time of a shed session, seconds.
    pub shed_service_s: f64,
    /// Modeled parallel servers draining the admission backlog.
    pub virtual_workers: usize,
    /// Enables the per-lane closed-loop [`LinkPolicy`] controller
    /// (DESIGN.md §18): each node's lane carries a policy whose state
    /// persists across that node's sessions within an epoch, adapting
    /// uplink rate, OOK fallback, Field-2 chirp count and ARQ budgets
    /// from observed outcomes. `false` (the default) keeps every epoch
    /// digest bitwise identical to the fixed-configuration engine.
    pub adaptive: bool,
}

impl ServeConfig {
    /// Defaults tuned so [`TrafficConfig::milback`] traffic (40 req/s
    /// against a 30 ms virtual service, offered load 1.2) visibly
    /// crosses the shed threshold without rejecting everything.
    pub fn milback() -> Self {
        Self {
            session: SessionConfig::milback(),
            fidelity: Fidelity::Fast,
            queue_capacity: 16,
            shed_depth: 4,
            reject_depth: 12,
            virtual_service_s: 0.030,
            shed_service_s: 0.010,
            virtual_workers: 1,
            adaptive: false,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::milback()
    }
}

// ---------------------------------------------------------------------
// Resolutions
// ---------------------------------------------------------------------

/// Terminal state of one submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Not yet resolved. Only observable between `submit` and `drain`;
    /// [`ServeEngine::serve_schedule`] never returns one (the
    /// exactly-once property pinned by `tests/serve.rs`).
    Pending,
    /// The session ran to completion (possibly degraded — see
    /// [`Resolution::shed`] and [`Resolution::degradations`]).
    Completed,
    /// The session ran and exhausted a retry budget at this stage.
    Failed(FailureKind),
    /// A `Localize` request dropped whole by the overload policy —
    /// nothing went on air.
    Shed,
    /// Refused at admission (modeled depth ≥ `reject_depth`); never
    /// executed.
    Rejected,
}

/// The resolved record of one submitted request. Plain `Copy` data —
/// no wall-clock times, no heap — so resolutions can be compared across
/// runs and thread counts for exact equality and folded into
/// [`ServeReport::outcome_digest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resolution {
    /// Submission ticket (index into the epoch's submission sequence).
    pub ticket: usize,
    /// Target node.
    pub node: usize,
    /// FIFO position within the node's lane (`u32::MAX` when the
    /// request never executed: rejected or shed whole).
    pub node_seq: u32,
    /// Service class of the request.
    pub workload: Workload,
    /// Terminal state.
    pub outcome: Outcome,
    /// Whether the session executed with Field-2 work shed.
    pub shed: bool,
    /// Field-1 transmissions used.
    pub mode_attempts: u8,
    /// Payload transmissions used.
    pub payload_attempts: u8,
    /// Field-2 chirps localization used.
    pub chirps_used: u8,
    /// Degradations recorded by the session supervisor.
    pub degradations: u8,
    /// Payload CRC passed (exchanges) / fix produced (`Localize`).
    pub delivered: bool,
    /// Bit pattern of the localization fix's range (`u64::MAX` when no
    /// fix) — exact across runs, unlike a rounded float.
    pub fix_range_bits: u64,
}

impl Resolution {
    fn unresolved(ticket: usize, req: &SessionRequest) -> Self {
        Self {
            ticket,
            node: req.node,
            node_seq: u32::MAX,
            workload: req.workload,
            outcome: Outcome::Pending,
            shed: false,
            mode_attempts: 0,
            payload_attempts: 0,
            chirps_used: 0,
            degradations: 0,
            delivered: false,
            fix_range_bits: u64::MAX,
        }
    }

    /// Whether this request has reached a terminal state.
    pub fn resolved(&self) -> bool {
        self.outcome != Outcome::Pending
    }
}

/// Aggregate of one serving epoch. Outcome counts and the digest are
/// deterministic; the latency and throughput figures are wall-clock
/// measurements and vary run to run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests ticketed this epoch.
    pub submitted: usize,
    /// Sessions that ran to completion.
    pub completed: usize,
    /// Sessions that exhausted a retry budget.
    pub failed: usize,
    /// `Localize` requests dropped whole by the overload policy.
    pub shed: usize,
    /// Requests refused at admission.
    pub rejected: usize,
    /// Sessions executed with Field-2 work shed (subset of
    /// `completed + failed`).
    pub field2_shed: usize,
    /// Peak modeled queue depth seen by admission.
    pub max_depth: usize,
    /// FNV-1a over every [`Resolution`] in ticket order — byte-identical
    /// across runs and thread counts for a fixed schedule.
    pub outcome_digest: u64,
    /// Median executed-session latency, microseconds (wall clock).
    pub p50_latency_us: f64,
    /// 99th-percentile executed-session latency, microseconds.
    pub p99_latency_us: f64,
    /// Mean executed-session latency, microseconds.
    pub mean_latency_us: f64,
    /// Executed sessions per wall-clock second of drain time.
    pub sessions_per_s: f64,
    /// Total wall-clock drain time, seconds.
    pub wall_s: f64,
}

// ---------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------

/// Admission verdict for one ticketed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admission {
    Admit,
    Shed,
    Reject,
}

/// Per-node serving lane: the node's [`Network`] (whose session clock
/// and RNG persist across the node's sessions), a pooled packet buffer
/// and a pooled fault plan. Chains execute against their lane serially,
/// which is what makes per-node FIFO meaningful.
struct NodeLane {
    net: Network,
    packet: Packet,
    plan: FaultPlan,
    served: u32,
    /// Closed-loop link controller for this node. Only consulted when
    /// [`ServeConfig::adaptive`] is set; reset at every epoch boundary
    /// so epochs stay independent.
    policy: LinkPolicy,
}

/// One request waiting in the bounded submission buffer.
#[derive(Debug, Clone, Copy)]
struct PendingEntry {
    ticket: usize,
    req: SessionRequest,
    adm: Admission,
}

/// One chain link: a ticketed request plus its shed flag.
#[derive(Debug, Clone, Copy)]
struct ChainEntry {
    ticket: usize,
    req: SessionRequest,
    shed: bool,
}

/// A resolution slot plus its wall-clock latency (kept separate from
/// the deterministic [`Resolution`]).
#[derive(Debug)]
struct Slot {
    res: Resolution,
    latency_ns: u64,
}

/// The session-serving engine. Owns every pooled resource — lanes,
/// scratch contexts, claim flags, resolution slots — and reuses all of
/// them across submissions, drains and epochs.
pub struct ServeEngine {
    config: ServeConfig,
    session: Session,
    epoch_seed: u64,
    lanes: Vec<Mutex<NodeLane>>,
    ctxs: Vec<Mutex<SessionCtx>>,
    claims: StealQueue,
    pending: Vec<PendingEntry>,
    chains: Vec<Vec<ChainEntry>>,
    active: Vec<usize>,
    slots: Vec<Mutex<Slot>>,
    resolutions: Vec<Resolution>,
    latencies: Vec<u64>,
    lat_sort: Vec<u64>,
    submitted: usize,
    backlog_s: f64,
    last_arrival_s: f64,
    max_depth: usize,
    wall_s: f64,
}

impl ServeEngine {
    /// Builds an engine over a node roster. Lane networks are built
    /// here (the only per-node allocation); every later epoch reuses
    /// them.
    pub fn new(poses: &[Pose], config: ServeConfig) -> Self {
        assert!(!poses.is_empty(), "roster must not be empty");
        assert!(config.queue_capacity >= 1, "queue_capacity must be >= 1");
        assert!(
            config.virtual_service_s > 0.0,
            "virtual_service_s must be positive"
        );
        let lanes = poses
            .iter()
            .map(|&pose| {
                Mutex::new(NodeLane {
                    net: Network::new(pose, config.fidelity, 0),
                    packet: Packet {
                        mode: LinkMode::Downlink,
                        payload: Vec::new(),
                    },
                    plan: FaultPlan::none(),
                    served: 0,
                    policy: LinkPolicy::default(),
                })
            })
            .collect();
        Self {
            config,
            session: Session::new(config.session),
            epoch_seed: 0,
            lanes,
            ctxs: Vec::new(),
            claims: StealQueue::new(),
            pending: Vec::with_capacity(config.queue_capacity),
            chains: (0..poses.len()).map(|_| Vec::new()).collect(),
            active: Vec::new(),
            slots: Vec::new(),
            resolutions: Vec::new(),
            latencies: Vec::new(),
            lat_sort: Vec::new(),
            submitted: 0,
            backlog_s: 0.0,
            last_arrival_s: 0.0,
            max_depth: 0,
            wall_s: 0.0,
        }
    }

    /// Number of serving lanes (roster size).
    pub fn nodes(&self) -> usize {
        self.lanes.len()
    }

    /// Starts a fresh epoch keyed by `master_seed`: lane clocks, FIFO
    /// counters, admission state and resolutions reset; every pooled
    /// buffer keeps its capacity. Requires an empty submission buffer.
    pub fn begin_epoch(&mut self, master_seed: u64) {
        assert!(
            self.pending.is_empty(),
            "drain() before beginning a new epoch"
        );
        self.epoch_seed = master_seed;
        self.submitted = 0;
        self.backlog_s = 0.0;
        self.last_arrival_s = 0.0;
        self.max_depth = 0;
        self.wall_s = 0.0;
        self.resolutions.clear();
        self.latencies.clear();
        for lane in &mut self.lanes {
            let lane = lane.get_mut().unwrap_or_else(|e| e.into_inner());
            lane.net.clock_s = 0.0;
            lane.net.reseed(master_seed);
            lane.served = 0;
            lane.policy.reset();
        }
    }

    /// Virtual-time admission: drains the modeled backlog by the time
    /// elapsed since the previous arrival, then places this request by
    /// the resulting queue depth. Pure function of the submission
    /// sequence — identical at any thread count.
    fn admit(&mut self, req: &SessionRequest) -> Admission {
        let cfg = &self.config;
        let dt = (req.arrival_s - self.last_arrival_s).max(0.0);
        self.last_arrival_s = self.last_arrival_s.max(req.arrival_s);
        self.backlog_s = (self.backlog_s - dt * cfg.virtual_workers as f64).max(0.0);
        let depth = (self.backlog_s / cfg.virtual_service_s).ceil() as usize;
        self.max_depth = self.max_depth.max(depth);
        telemetry::observe("core.serve.depth", depth as u64);
        telemetry::gauge_set("core.serve.depth.peak", self.max_depth as f64);
        if depth >= cfg.reject_depth {
            telemetry::counter_add("core.serve.rejected", 1);
            Admission::Reject
        } else if depth >= cfg.shed_depth {
            telemetry::counter_add("core.serve.shed", 1);
            if req.workload != Workload::Localize {
                self.backlog_s += cfg.shed_service_s;
            }
            Admission::Shed
        } else {
            telemetry::counter_add("core.serve.admitted", 1);
            self.backlog_s += cfg.virtual_service_s;
            Admission::Admit
        }
    }

    /// Ticket a request, or hand it back when the submission buffer is
    /// full (the non-blocking face of backpressure). A returned ticket
    /// is a promise: the request will resolve exactly once, visible in
    /// [`ServeEngine::resolutions`] after the drain that runs it.
    pub fn try_submit(&mut self, req: SessionRequest) -> Result<usize, SessionRequest> {
        assert!(req.node < self.lanes.len(), "request targets unknown node");
        if self.pending.len() >= self.config.queue_capacity {
            telemetry::counter_add("core.serve.queue_full", 1);
            return Err(req);
        }
        let ticket = self.submitted;
        self.submitted += 1;
        telemetry::counter_add("core.serve.submitted", 1);
        let adm = self.admit(&req);
        self.pending.push(PendingEntry { ticket, req, adm });
        Ok(ticket)
    }

    /// Ticket a request, draining first when the buffer is full — the
    /// blocking face of backpressure: the submitter pays the service
    /// cost instead of growing a queue.
    pub fn submit(&mut self, req: SessionRequest, threads: usize) -> usize {
        if self.pending.len() >= self.config.queue_capacity {
            self.drain(threads);
        }
        self.try_submit(req)
            .expect("submission buffer still full after drain")
    }

    /// Runs every pending request to resolution on `threads` workers
    /// (`1` runs inline, allocation-free in steady state). Requests are
    /// grouped into per-node chains and dispatched over the
    /// work-stealing pool; outcomes land in ticket-ordered
    /// [`ServeEngine::resolutions`].
    pub fn drain(&mut self, threads: usize) {
        if self.pending.is_empty() {
            return;
        }
        let t_drain = Instant::now();

        // Resolution slots and chain assembly. Rejected requests and
        // shed `Localize` requests resolve here, without touching a
        // lane; everything else joins its node's chain.
        for chain in &mut self.chains {
            chain.clear();
        }
        self.active.clear();
        for &PendingEntry { ticket, req, adm } in &self.pending {
            while self.slots.len() <= ticket {
                self.slots.push(Mutex::new(Slot {
                    res: Resolution::unresolved(0, &req),
                    latency_ns: 0,
                }));
            }
            let slot = self.slots[ticket]
                .get_mut()
                .unwrap_or_else(|e| e.into_inner());
            slot.res = Resolution::unresolved(ticket, &req);
            slot.latency_ns = 0;
            match adm {
                Admission::Reject => slot.res.outcome = Outcome::Rejected,
                Admission::Shed if req.workload == Workload::Localize => {
                    slot.res.outcome = Outcome::Shed;
                }
                adm => {
                    if self.chains[req.node].is_empty() {
                        self.active.push(req.node);
                    }
                    self.chains[req.node].push(ChainEntry {
                        ticket,
                        req,
                        shed: adm == Admission::Shed,
                    });
                }
            }
        }

        // Scratch pool: one context per worker that can actually run.
        let n_jobs = self.active.len();
        let workers = threads.max(1).min(n_jobs.max(1));
        while self.ctxs.len() < workers {
            self.ctxs.push(Mutex::new(SessionCtx::new()));
        }
        self.claims.reset(n_jobs);

        if n_jobs > 0 {
            let active = &self.active;
            let chains = &self.chains;
            let lanes = &self.lanes;
            let ctxs = &self.ctxs;
            let slots = &self.slots;
            let session = self.session;
            let epoch_seed = self.epoch_seed;
            let adaptive = self.config.adaptive;
            run_stealing_with_threads(&self.claims, n_jobs, workers, |job| {
                let node = active[job];
                let mut lane = lanes[node].lock().unwrap_or_else(|e| e.into_inner());
                // Check out a scratch context: start at this job's slot
                // and take the first free one; with `threads == 1` slot
                // 0 is always free and the whole loop stays inline.
                let n_ctx = ctxs.len();
                let mut ctx = None;
                for k in 0..n_ctx {
                    if let Ok(g) = ctxs[(job + k) % n_ctx].try_lock() {
                        ctx = Some(g);
                        break;
                    }
                }
                let mut ctx = match ctx {
                    Some(g) => g,
                    None => ctxs[job % n_ctx].lock().unwrap_or_else(|e| e.into_inner()),
                };
                for entry in &chains[node] {
                    let t0 = Instant::now();
                    let res = run_one(&session, adaptive, epoch_seed, &mut lane, &mut ctx, entry);
                    let ns = t0.elapsed().as_nanos() as u64;
                    telemetry::observe("core.serve.session.ns", ns);
                    let mut slot = slots[entry.ticket]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    debug_assert!(
                        !slot.res.resolved(),
                        "ticket {} resolved twice",
                        entry.ticket
                    );
                    slot.res = res;
                    slot.latency_ns = ns;
                }
            });
        }

        // Copy resolutions out in ticket order (tickets in the pending
        // buffer are consecutive by construction).
        for i in 0..self.pending.len() {
            let ticket = self.pending[i].ticket;
            let slot = self.slots[ticket]
                .get_mut()
                .unwrap_or_else(|e| e.into_inner());
            debug_assert!(slot.res.resolved(), "ticket {ticket} never resolved");
            debug_assert_eq!(self.resolutions.len(), ticket, "ticket order broken");
            self.resolutions.push(slot.res);
            if slot.res.node_seq != u32::MAX {
                self.latencies.push(slot.latency_ns);
            }
        }
        self.pending.clear();
        self.wall_s += t_drain.elapsed().as_secs_f64();
    }

    /// Resolutions of every drained request this epoch, in ticket
    /// order.
    pub fn resolutions(&self) -> &[Resolution] {
        &self.resolutions
    }

    /// Runs a whole schedule as one epoch: reset, submit every request
    /// through the backpressured path, final drain, report.
    pub fn serve_schedule(&mut self, schedule: &TrafficSchedule, threads: usize) -> ServeReport {
        self.begin_epoch(schedule.master_seed);
        for &req in &schedule.requests {
            self.submit(req, threads);
        }
        self.drain(threads);
        self.report()
    }

    /// Aggregates the epoch so far. Outcome counts and the digest are
    /// deterministic; latency figures are wall-clock.
    pub fn report(&mut self) -> ServeReport {
        let mut completed = 0;
        let mut failed = 0;
        let mut shed = 0;
        let mut rejected = 0;
        let mut field2_shed = 0;
        let mut digest = 0xcbf2_9ce4_8422_2325_u64;
        for r in &self.resolutions {
            match r.outcome {
                Outcome::Pending => {}
                Outcome::Completed => completed += 1,
                Outcome::Failed(_) => failed += 1,
                Outcome::Shed => shed += 1,
                Outcome::Rejected => rejected += 1,
            }
            if r.shed {
                field2_shed += 1;
            }
            for w in [
                r.ticket as u64,
                r.node as u64,
                r.node_seq as u64,
                workload_code(r.workload),
                outcome_code(r.outcome),
                r.shed as u64,
                r.mode_attempts as u64,
                r.payload_attempts as u64,
                r.chirps_used as u64,
                r.degradations as u64,
                r.delivered as u64,
                r.fix_range_bits,
            ] {
                digest = fnv_word(digest, w);
            }
        }

        self.lat_sort.clear();
        self.lat_sort.extend_from_slice(&self.latencies);
        self.lat_sort.sort_unstable();
        let n = self.lat_sort.len();
        let q = |p: f64| -> f64 {
            if n == 0 {
                return 0.0;
            }
            let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
            self.lat_sort[rank - 1] as f64 / 1e3
        };
        let mean_latency_us = if n == 0 {
            0.0
        } else {
            self.lat_sort.iter().map(|&v| v as f64).sum::<f64>() / n as f64 / 1e3
        };
        let sessions_per_s = if self.wall_s > 0.0 {
            n as f64 / self.wall_s
        } else {
            0.0
        };
        ServeReport {
            submitted: self.submitted,
            completed,
            failed,
            shed,
            rejected,
            field2_shed,
            max_depth: self.max_depth,
            outcome_digest: digest,
            p50_latency_us: q(0.50),
            p99_latency_us: q(0.99),
            mean_latency_us,
            sessions_per_s,
            wall_s: self.wall_s,
        }
    }
}

/// Runs one chained session against its lane. Everything that decides
/// the outcome — seed, clock, fault plan — derives from `(epoch_seed,
/// ticket, lane history)`, never from the worker or the wall clock.
/// With `adaptive` set the lane's [`LinkPolicy`] plans each session and
/// observes its outcome; the policy state is part of the lane history,
/// so the determinism contract is unchanged.
fn run_one(
    session: &Session,
    adaptive: bool,
    epoch_seed: u64,
    lane: &mut NodeLane,
    ctx: &mut SessionCtx,
    entry: &ChainEntry,
) -> Resolution {
    let ChainEntry { ticket, req, shed } = *entry;
    let NodeLane {
        net,
        packet,
        plan,
        served,
        policy,
    } = lane;
    let seed = derive_seed(epoch_seed, ticket as u64);
    net.reseed(seed);
    let t0 = net.clock_s.max(req.arrival_s);
    net.clock_s = t0;

    // Per-session fault plan, scheduled relative to the lane clock so
    // fault windows land on this session no matter how much lane time
    // its predecessors consumed.
    plan.events.clear();
    if req.intensity > 0.0 {
        let pkt = net.fidelity.packet();
        let horizon = 8.0 * pkt.total_duration() + 0.2;
        plan.chaos_into(derive_seed(seed, 1), req.intensity, horizon);
        for ev in &mut plan.events {
            ev.start_s += t0;
        }
    }
    std::mem::swap(&mut net.faults, plan);

    let node_seq = *served;
    *served += 1;
    let mut res = Resolution::unresolved(ticket, &req);
    res.node_seq = node_seq;

    match req.workload {
        Workload::Localize => {
            let s = if adaptive {
                let mut cfg = session.config;
                cfg.field2_chirps = policy.field2_chirps();
                Session::new(cfg).localize_in(ctx, net)
            } else {
                session.localize_in(ctx, net)
            };
            res.outcome = Outcome::Completed;
            res.chirps_used = s.chirps_used.min(255) as u8;
            res.degradations = (s.dropped > 0) as u8 + s.fell_back as u8 + s.fix.is_none() as u8;
            res.delivered = s.fix.is_some();
            res.fix_range_bits = s.fix.map_or(u64::MAX, |f| f.range.to_bits());
            telemetry::counter_add("core.serve.completed", 1);
        }
        Workload::Downlink | Workload::Uplink => {
            packet.mode = if req.workload == Workload::Downlink {
                LinkMode::Downlink
            } else {
                LinkMode::Uplink
            };
            packet.payload.clear();
            packet.payload.extend(
                (0..req.payload_len)
                    .map(|i| (seed.rotate_left(((i % 8) * 8) as u32) as u8) ^ (i as u8)),
            );
            res.shed = shed;
            let outcome = if adaptive {
                let sp = policy.plan(&session.config, packet.mode);
                net.force_single_tone = sp.force_ook;
                let out = Session::new(sp.config).run_in(ctx, net, packet, shed);
                net.force_single_tone = false;
                let fb = PolicyFeedback::from_outcome(&out, policy.config.snr_floor);
                policy.observe(&fb);
                out
            } else {
                session.run_in(ctx, net, packet, shed)
            };
            match outcome {
                Ok(r) => {
                    res.outcome = Outcome::Completed;
                    res.mode_attempts = r.mode_attempts.min(255) as u8;
                    res.payload_attempts = r.payload_attempts.min(255) as u8;
                    res.chirps_used = r.chirps_used.min(255) as u8;
                    res.degradations = r.degradations.len().min(255) as u8;
                    res.delivered = match req.workload {
                        Workload::Downlink => {
                            r.downlink.as_ref().is_some_and(|d| d.payload.is_ok())
                        }
                        _ => r.uplink.as_ref().is_some_and(|u| u.payload.is_ok()),
                    };
                    res.fix_range_bits = r.fix.map_or(u64::MAX, |f| f.range.to_bits());
                    telemetry::counter_add("core.serve.completed", 1);
                }
                Err(e) => {
                    res.outcome = Outcome::Failed(e.kind);
                    res.degradations = e.degradations.len().min(255) as u8;
                    match e.kind {
                        FailureKind::ModeDetect => res.mode_attempts = e.attempts.min(255) as u8,
                        FailureKind::Payload => res.payload_attempts = e.attempts.min(255) as u8,
                    }
                    telemetry::counter_add("core.serve.failed", 1);
                }
            }
        }
    }
    std::mem::swap(&mut net.faults, plan);
    res
}

pub(crate) fn workload_code(w: Workload) -> u64 {
    match w {
        Workload::Localize => 0,
        Workload::Downlink => 1,
        Workload::Uplink => 2,
    }
}

fn outcome_code(o: Outcome) -> u64 {
    match o {
        Outcome::Pending => 0,
        Outcome::Completed => 1,
        Outcome::Failed(FailureKind::ModeDetect) => 2,
        Outcome::Failed(FailureKind::Payload) => 3,
        Outcome::Shed => 4,
        Outcome::Rejected => 5,
    }
}

#[inline]
pub(crate) fn fnv_word(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(0x0000_0100_0000_01b3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn light_config() -> ServeConfig {
        // Thresholds high enough that the default schedule admits
        // everything cleanly.
        ServeConfig {
            shed_depth: 1_000,
            reject_depth: 2_000,
            ..ServeConfig::milback()
        }
    }

    #[test]
    fn schedule_generation_is_deterministic_and_ordered() {
        let cfg = TrafficConfig::milback();
        let a = TrafficSchedule::generate(&cfg, 7);
        let b = TrafficSchedule::generate(&cfg, 7);
        assert_eq!(a, b, "same seed must give the same schedule");
        assert_ne!(
            a,
            TrafficSchedule::generate(&cfg, 8),
            "different seeds must differ"
        );
        assert_eq!(a.requests.len(), cfg.sessions);
        for w in a.requests.windows(2) {
            assert!(w[0].arrival_s <= w[1].arrival_s, "arrivals out of order");
        }
        assert!(a.requests.iter().all(|r| r.node < cfg.nodes));
        assert!(a.requests.iter().any(|r| r.workload == Workload::Localize));
        assert!(a.requests.iter().any(|r| r.workload != Workload::Localize));
    }

    #[test]
    fn clean_epoch_completes_everything_in_fifo_order() {
        let cfg = TrafficConfig {
            nodes: 3,
            sessions: 12,
            ..TrafficConfig::milback()
        };
        let schedule = TrafficSchedule::generate(&cfg, 11);
        let mut engine = ServeEngine::new(&roster(cfg.nodes, 11), light_config());
        let report = engine.serve_schedule(&schedule, 1);
        assert_eq!(report.submitted, 12);
        assert_eq!(report.completed + report.failed, 12);
        assert_eq!(report.shed + report.rejected, 0);
        // Exactly-once: every ticket resolved, in ticket order.
        assert_eq!(engine.resolutions().len(), 12);
        for (i, r) in engine.resolutions().iter().enumerate() {
            assert_eq!(r.ticket, i);
            assert!(r.resolved());
        }
        // Per-node FIFO: node_seq increases with ticket within a node.
        for node in 0..cfg.nodes {
            let seqs: Vec<u32> = engine
                .resolutions()
                .iter()
                .filter(|r| r.node == node && r.node_seq != u32::MAX)
                .map(|r| r.node_seq)
                .collect();
            let expect: Vec<u32> = (0..seqs.len() as u32).collect();
            assert_eq!(seqs, expect, "node {node} served out of order");
        }
    }

    #[test]
    fn two_runs_resolve_identically() {
        let cfg = TrafficConfig {
            nodes: 3,
            sessions: 10,
            ..TrafficConfig::milback()
        };
        let schedule = TrafficSchedule::generate(&cfg, 23);
        let mut engine = ServeEngine::new(&roster(cfg.nodes, 23), ServeConfig::milback());
        let a = engine.serve_schedule(&schedule, 1);
        let res_a: Vec<Resolution> = engine.resolutions().to_vec();
        let b = engine.serve_schedule(&schedule, 2);
        assert_eq!(res_a, engine.resolutions(), "resolutions diverged");
        assert_eq!(a.outcome_digest, b.outcome_digest, "digest diverged");
    }

    #[test]
    fn overload_sheds_and_rejects_deterministically() {
        // Saturating traffic against a slow virtual server: everything
        // past the ramp-up sheds or rejects.
        let cfg = TrafficConfig {
            nodes: 2,
            sessions: 24,
            rate_hz: 500.0,
            localize_fraction: 0.5,
            ..TrafficConfig::milback()
        };
        let serve = ServeConfig {
            shed_depth: 2,
            reject_depth: 6,
            virtual_service_s: 0.050,
            shed_service_s: 0.040,
            ..ServeConfig::milback()
        };
        let schedule = TrafficSchedule::generate(&cfg, 41);
        let mut engine = ServeEngine::new(&roster(cfg.nodes, 41), serve);
        let report = engine.serve_schedule(&schedule, 1);
        assert!(report.rejected > 0, "no rejections under saturation");
        assert!(
            report.shed + report.field2_shed > 0,
            "no shedding under saturation"
        );
        assert!(report.max_depth >= serve.reject_depth);
        // Shed exchanges still deliver their payload: ARQ stays alive.
        for r in engine.resolutions() {
            if r.shed && r.outcome == Outcome::Completed {
                assert!(r.delivered, "shed exchange lost its payload");
            }
            if r.outcome == Outcome::Shed {
                assert_eq!(
                    r.workload,
                    Workload::Localize,
                    "only Localize may be dropped whole"
                );
            }
        }
    }

    #[test]
    fn try_submit_applies_backpressure_without_unbounded_growth() {
        let serve = ServeConfig {
            queue_capacity: 4,
            ..light_config()
        };
        let mut engine = ServeEngine::new(&roster(2, 5), serve);
        engine.begin_epoch(5);
        let req = SessionRequest {
            node: 0,
            arrival_s: 0.0,
            workload: Workload::Localize,
            payload_len: 0,
            intensity: 0.0,
        };
        for _ in 0..4 {
            assert!(engine.try_submit(req).is_ok());
        }
        let back = engine.try_submit(req).expect_err("full queue accepted");
        assert_eq!(back, req, "rejected request must come back unchanged");
        // The blocking face drains and then succeeds.
        let ticket = engine.submit(req, 1);
        assert_eq!(ticket, 4);
        engine.drain(1);
        assert_eq!(engine.resolutions().len(), 5);
    }
}
