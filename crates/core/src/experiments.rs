//! Experiment drivers regenerating every table and figure of the paper's
//! evaluation (§9). Each function is deterministic given its seed and
//! returns plain row structs; the `milback-bench` binaries print them.

use crate::batch;
use crate::config::Fidelity;
use crate::network::Network;
use milback_ap::tone_select::ToneSelection;
use milback_ap::uplink::ook_ber;
use milback_dsp::noise::ratio_to_db;
use milback_dsp::stats;
use milback_rf::fsa::{DualPortFsa, Port};
use milback_rf::geometry::{deg_to_rad, rad_to_deg, Pose};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default orientation used for communication experiments: 15° off
/// normal, where the two OAQFM tones are well separated (the paper's
/// microbenchmark geometry, tones 27.5/28.5 GHz).
pub const COMM_ORIENTATION_DEG: f64 = 15.0;

// ---------------------------------------------------------------------
// Figure 10 — dual-port FSA beam pattern
// ---------------------------------------------------------------------

/// One sample of the FSA beam pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig10Row {
    /// Which port.
    pub port: Port,
    /// Signal frequency, GHz.
    pub freq_ghz: f64,
    /// Beam direction sample, degrees.
    pub theta_deg: f64,
    /// Antenna gain, dBi.
    pub gain_dbi: f64,
}

/// Sweeps the dual-port FSA pattern over ±40° for the paper's seven
/// sample frequencies (Fig. 10).
pub fn fig10_fsa_pattern() -> Vec<Fig10Row> {
    let _span = milback_telemetry::span("core.experiments.fig10_fsa_pattern.ns");
    milback_telemetry::counter_add("core.experiments.runs", 1);
    let fsa = DualPortFsa::milback();
    let freqs_ghz = [26.5, 27.0, 27.5, 28.0, 28.5, 29.0, 29.5];
    let mut rows = Vec::new();
    for port in Port::BOTH {
        for &f in &freqs_ghz {
            let mut theta = -40.0;
            while theta <= 40.0 {
                rows.push(Fig10Row {
                    port,
                    freq_ghz: f,
                    theta_deg: theta,
                    gain_dbi: fsa.gain_dbi(port, deg_to_rad(theta), f * 1e9),
                });
                theta += 1.0;
            }
        }
    }
    rows
}

/// Summary of the FSA microbenchmark claims (§9.1): peak gain per
/// frequency and total scan coverage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsaSummary {
    /// Minimum peak gain across the band, dBi.
    pub min_peak_gain_dbi: f64,
    /// Scan coverage across the band, degrees.
    pub coverage_deg: f64,
}

/// Computes the §9.1 FSA claims.
pub fn fsa_summary() -> FsaSummary {
    let fsa = DualPortFsa::milback();
    let mut min_gain = f64::MAX;
    let mut f = 26.5e9;
    while f <= 29.5e9 {
        min_gain = min_gain.min(fsa.peak_gain_dbi(Port::A, f));
        f += 0.1e9;
    }
    // The milback FSA always scans a non-empty range; degrade to zero
    // coverage instead of panicking if a config edit ever breaks that.
    let coverage = fsa
        .scan_range(Port::A)
        .map_or(0.0, |(lo, hi)| rad_to_deg(hi - lo));
    FsaSummary {
        min_peak_gain_dbi: min_gain,
        coverage_deg: coverage,
    }
}

// ---------------------------------------------------------------------
// Figure 11 — OAQFM microbenchmark
// ---------------------------------------------------------------------

/// Detector-output traces for the four OAQFM symbols (Fig. 11).
#[derive(Debug, Clone)]
pub struct Fig11Trace {
    /// Sample times, µs.
    pub time_us: Vec<f64>,
    /// Port-A detector output, mV.
    pub port_a_mv: Vec<f64>,
    /// Port-B detector output, mV.
    pub port_b_mv: Vec<f64>,
    /// The tones chosen, GHz.
    pub tones_ghz: (f64, f64),
    /// Symbol boundaries (µs) with labels 00, 01, 10, 11.
    pub symbols: Vec<(f64, &'static str)>,
}

/// Reproduces Fig. 11: node at 2 m, AP sends symbols 00, 01, 10, 11 at
/// 1 µs per symbol on the orientation-selected tones.
pub fn fig11_oaqfm_micro(seed: u64) -> Fig11Trace {
    let _span = milback_telemetry::span("core.experiments.fig11_oaqfm_micro.ns");
    milback_telemetry::counter_add("core.experiments.runs", 1);
    use milback_ap::waveform::ook_waveform;
    use milback_proto::bits::OaqfmSymbol;
    use milback_rf::channel::TxComponent;

    let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(COMM_ORIENTATION_DEG));
    let mut net = Network::new(pose, Fidelity::Fast, seed);
    let tones = net.plan_tones(true).expect("tone selection failed");
    let (f_a, f_b) = match tones {
        ToneSelection::Dual { f_a, f_b } => (f_a, f_b),
        ToneSelection::Single { f } => (f, f),
    };

    let symbol_rate = 1e6; // 1 µs symbols, as in §9.1
    let symbols = [
        OaqfmSymbol {
            a_on: false,
            b_on: false,
        },
        OaqfmSymbol {
            a_on: false,
            b_on: true,
        },
        OaqfmSymbol {
            a_on: true,
            b_on: false,
        },
        OaqfmSymbol {
            a_on: true,
            b_on: true,
        },
    ];
    let bits_a: Vec<bool> = symbols.iter().map(|s| s.a_on).collect();
    let bits_b: Vec<bool> = symbols.iter().map(|s| s.b_on).collect();

    let fs = (2.5 * (f_a - f_b).abs()).max(200e6);
    let fc = 0.5 * (f_a + f_b);
    let mut tx = net.ap.tx;
    tx.fs = fs;
    let mut wave_a = ook_waveform(&tx, fc, f_a, &bits_a, symbol_rate);
    let mut wave_b = ook_waveform(&tx, fc, f_b, &bits_b, symbol_rate);
    wave_a.scale(1.0 / 2f64.sqrt());
    wave_b.scale(1.0 / 2f64.sqrt());
    let comp_a = TxComponent::tone(wave_a, f_a);
    let comp_b = TxComponent::tone(wave_b, f_b);

    let (at_a, at_b) = net.render_tones_to_ports(&comp_a, &comp_b);

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5111);
    let det_a = net.node.receive_port_video(&at_a, &mut rng);
    let det_b = net.node.receive_port_video(&at_b, &mut rng);

    // Decimate the traces to ~100 points per symbol for plotting.
    let step = (fs / symbol_rate / 100.0).max(1.0) as usize;
    let time_us: Vec<f64> = (0..det_a.len())
        .step_by(step)
        .map(|i| i as f64 / fs * 1e6)
        .collect();
    let port_a_mv: Vec<f64> = det_a.iter().step_by(step).map(|v| v * 1e3).collect();
    let port_b_mv: Vec<f64> = det_b.iter().step_by(step).map(|v| v * 1e3).collect();

    Fig11Trace {
        time_us,
        port_a_mv,
        port_b_mv,
        tones_ghz: (f_a / 1e9, f_b / 1e9),
        symbols: vec![(0.0, "00"), (1.0, "01"), (2.0, "10"), (3.0, "11")],
    }
}

// ---------------------------------------------------------------------
// Figure 12 — localization
// ---------------------------------------------------------------------

/// One distance point of Fig. 12a.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangingRow {
    /// True node distance, m.
    pub distance_m: f64,
    /// Mean |range error|, cm.
    pub mean_cm: f64,
    /// 90th-percentile |range error|, cm.
    pub p90_cm: f64,
    /// Successful trials out of the requested count.
    pub n: usize,
}

/// Runs the Fig. 12a ranging experiment: distances 1–8 m, `trials`
/// repetitions each (20 in the paper), node facing the AP at a small
/// random azimuth per trial.
pub fn fig12a_ranging(trials: usize, seed: u64) -> Vec<RangingRow> {
    let _span = milback_telemetry::span("core.experiments.fig12a_ranging.ns");
    milback_telemetry::counter_add("core.experiments.runs", 1);
    // Draw every trial's randomness up front in the serial order, then run
    // the expensive simulations on the batch engine — results are
    // identical to the historical serial loop at any thread count.
    let mut master = StdRng::seed_from_u64(seed);
    let inputs: Vec<(f64, u64, f64)> = (1..=8)
        .flat_map(|d| {
            (0..trials)
                .map(|_| {
                    let trial_seed: u64 = master.gen();
                    let phi = deg_to_rad(master.gen_range(-10.0..10.0));
                    (d as f64, trial_seed, phi)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let results = batch::par_map(&inputs, |&(d, trial_seed, phi), _| {
        let pose = Pose::facing_ap(d, phi, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, trial_seed);
        net.localize().map(|fix| (fix.range - d).abs())
    });
    results
        .chunks(trials.max(1))
        .zip(1..=8)
        .map(|(chunk, d)| {
            let errs: Vec<f64> = chunk.iter().filter_map(|e| *e).collect();
            RangingRow {
                distance_m: d as f64,
                mean_cm: stats::mean(&errs) * 100.0,
                p90_cm: stats::percentile(&errs, 90.0) * 100.0,
                n: errs.len(),
            }
        })
        .collect()
}

/// Summary statistics of the Fig. 12b angle-error CDF.
#[derive(Debug, Clone)]
pub struct AngleCdf {
    /// `(error_deg, P(X ≤ error))` points.
    pub cdf: Vec<(f64, f64)>,
    /// Median |angle error|, degrees.
    pub median_deg: f64,
    /// 90th-percentile |angle error|, degrees.
    pub p90_deg: f64,
}

/// Runs the Fig. 12b angle experiment: trials pooled across distances and
/// azimuths, as the paper pools its CDF.
pub fn fig12b_angle_cdf(trials_per_point: usize, seed: u64) -> AngleCdf {
    let _span = milback_telemetry::span("core.experiments.fig12b_angle_cdf.ns");
    milback_telemetry::counter_add("core.experiments.runs", 1);
    let mut master = StdRng::seed_from_u64(seed);
    let inputs: Vec<(f64, u64, f64)> = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        .iter()
        .flat_map(|&d| {
            (0..trials_per_point)
                .map(|_| {
                    let trial_seed: u64 = master.gen();
                    let phi = deg_to_rad(master.gen_range(-20.0..20.0));
                    (d, trial_seed, phi)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let errs_deg: Vec<f64> = batch::par_map(&inputs, |&(d, trial_seed, phi), _| {
        let pose = Pose::facing_ap(d, phi, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, trial_seed);
        net.localize()
            .and_then(|fix| fix.angle)
            .map(|a| rad_to_deg(a - phi).abs())
    })
    .into_iter()
    .flatten()
    .collect();
    AngleCdf {
        cdf: stats::empirical_cdf(&errs_deg),
        median_deg: stats::median(&errs_deg),
        p90_deg: stats::percentile(&errs_deg, 90.0),
    }
}

// ---------------------------------------------------------------------
// Figure 13 — orientation sensing
// ---------------------------------------------------------------------

/// One orientation point of Fig. 13a/13b.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrientationRow {
    /// True node orientation (incidence angle), degrees.
    pub orientation_deg: f64,
    /// Mean |error|, degrees.
    pub mean_err_deg: f64,
    /// Variance of the signed error, degrees².
    pub variance_deg2: f64,
    /// Successful trials.
    pub n: usize,
}

fn orientation_sweep(
    orientations_deg: &[f64],
    trials: usize,
    seed: u64,
    at_node: bool,
) -> Vec<OrientationRow> {
    // Preserve the serial draw order (trial seed, then depth offset) so
    // the parallel run reproduces the historical serial results exactly.
    let mut master = StdRng::seed_from_u64(seed);
    let inputs: Vec<(f64, u64, f64)> = orientations_deg
        .iter()
        .flat_map(|&odeg| {
            (0..trials)
                .map(|_| {
                    let trial_seed: u64 = master.gen();
                    let depth_offset = master.gen_range(0.0..0.006);
                    (odeg, trial_seed, depth_offset)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let results = batch::par_map(&inputs, |&(odeg, trial_seed, depth_offset), _| {
        // The node is rotated by ψ = −orientation so its incidence angle
        // equals `odeg`.
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(-odeg));
        let mut net = Network::new(pose, Fidelity::Fast, trial_seed);
        // Each trial re-mounts the node: the mirror's effective depth
        // (hence its carrier phase) changes by millimetres.
        if let Some(m) = net.scene.mirror.as_mut() {
            m.depth_offset = depth_offset;
        }
        let est = if at_node {
            net.sense_orientation_at_node()
        } else {
            net.sense_orientation_at_ap()
        };
        est.map(|e| rad_to_deg(e) - odeg)
    });
    results
        .chunks(trials.max(1))
        .zip(orientations_deg)
        .map(|(chunk, &odeg)| {
            let errs: Vec<f64> = chunk.iter().filter_map(|e| *e).collect();
            OrientationRow {
                orientation_deg: odeg,
                mean_err_deg: stats::mean_abs(&errs),
                variance_deg2: stats::variance(&errs),
                n: errs.len(),
            }
        })
        .collect()
}

/// Fig. 13a: orientation sensing at the node, sweep of orientations at
/// 2 m, `trials` repetitions (25 in the paper).
pub fn fig13a_node_orientation(trials: usize, seed: u64) -> Vec<OrientationRow> {
    let _span = milback_telemetry::span("core.experiments.fig13a_node_orientation.ns");
    milback_telemetry::counter_add("core.experiments.runs", 1);
    let orientations: Vec<f64> = (-5..=5).map(|k| k as f64 * 4.0).collect();
    orientation_sweep(&orientations, trials, seed, true)
}

/// Fig. 13b: orientation sensing at the AP — a finer sweep around the
/// −6°…−2° mirror-collision region.
pub fn fig13b_ap_orientation(trials: usize, seed: u64) -> Vec<OrientationRow> {
    let _span = milback_telemetry::span("core.experiments.fig13b_ap_orientation.ns");
    milback_telemetry::counter_add("core.experiments.runs", 1);
    let orientations: Vec<f64> = (-6..=6).map(|k| k as f64 * 2.0).collect();
    orientation_sweep(&orientations, trials, seed, false)
}

// ---------------------------------------------------------------------
// Figures 14/15 — communication
// ---------------------------------------------------------------------

/// One distance point of a link-performance curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkRow {
    /// Node distance, m.
    pub distance_m: f64,
    /// Measured SNR or SINR, dB.
    pub snr_db: f64,
    /// Analytic OOK bit-error rate at that SNR.
    pub ber: f64,
    /// Bit errors actually observed in the transferred frame.
    pub measured_bit_errors: usize,
    /// Frame bits transferred.
    pub total_bits: usize,
}

/// Fig. 14: downlink SINR vs distance (1–12 m).
pub fn fig14_downlink(seed: u64) -> Vec<LinkRow> {
    let _span = milback_telemetry::span("core.experiments.fig14_downlink.ns");
    milback_telemetry::counter_add("core.experiments.runs", 1);
    let distances: Vec<f64> = (1..=12).map(|d| d as f64).collect();
    batch::par_map(&distances, |&d, _| {
        let pose = Pose::facing_ap(d, 0.0, deg_to_rad(COMM_ORIENTATION_DEG));
        let mut net = Network::new(pose, Fidelity::Fast, seed + d as u64);
        let payload: Vec<u8> = (0u8..16)
            .map(|i| i.wrapping_mul(37).wrapping_add(d as u8))
            .collect();
        net.downlink(&payload, 1e6, true).map(|report| LinkRow {
            distance_m: d,
            snr_db: ratio_to_db(report.sinr),
            // BER follows the post-integration decision SNR, which is
            // why the paper quotes BER < 1e-8 at 12 dB detector SINR.
            ber: ook_ber(report.decision_snr),
            measured_bit_errors: report.bit_errors,
            total_bits: report.total_bits,
        })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Fig. 15: uplink SNR vs distance at `bit_rate` bits/s (10 Mbps for
/// 15a, 40 Mbps for 15b; OAQFM carries 2 bits/symbol).
pub fn fig15_uplink(bit_rate: f64, max_distance_m: usize, seed: u64) -> Vec<LinkRow> {
    let _span = milback_telemetry::span("core.experiments.fig15_uplink.ns");
    milback_telemetry::counter_add("core.experiments.runs", 1);
    let symbol_rate = bit_rate / 2.0;
    let distances: Vec<f64> = (1..=max_distance_m).map(|d| d as f64).collect();
    batch::par_map(&distances, |&d, _| {
        let pose = Pose::facing_ap(d, 0.0, deg_to_rad(COMM_ORIENTATION_DEG));
        let mut net = Network::new(pose, Fidelity::Fast, seed + d as u64);
        let payload: Vec<u8> = (0..16).map(|i| i * 73 + d as u8).collect();
        net.uplink(&payload, symbol_rate, true)
            .map(|report| LinkRow {
                distance_m: d,
                snr_db: ratio_to_db(report.snr),
                ber: ook_ber(report.snr),
                measured_bit_errors: report.bit_errors,
                total_bits: report.total_bits,
            })
    })
    .into_iter()
    .flatten()
    .collect()
}

// ---------------------------------------------------------------------
// Table 1 and §9.6 — comparison and power
// ---------------------------------------------------------------------

/// A row of Table 1 plus the §9.6 energy figures.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// System name.
    pub name: &'static str,
    /// Uplink capability.
    pub uplink: bool,
    /// Localization capability.
    pub localization: bool,
    /// Downlink capability.
    pub downlink: bool,
    /// Orientation-sensing capability.
    pub orientation: bool,
    /// Uplink energy efficiency, nJ/bit.
    pub uplink_nj_per_bit: Option<f64>,
}

/// Regenerates Table 1 (with §9.6 energy efficiency attached).
pub fn table1() -> Vec<Table1Row> {
    let _span = milback_telemetry::span("core.experiments.table1.ns");
    milback_telemetry::counter_add("core.experiments.runs", 1);
    milback_baseline::table1_systems()
        .iter()
        .map(|s| {
            let c = s.capabilities();
            Table1Row {
                name: s.name(),
                uplink: c.uplink,
                localization: c.localization,
                downlink: c.downlink,
                orientation: c.orientation,
                uplink_nj_per_bit: s.uplink_energy_nj_per_bit(),
            }
        })
        .collect()
}

/// §9.6 power-consumption row.
#[derive(Debug, Clone, Copy)]
pub struct PowerRow {
    /// Mode label.
    pub mode: &'static str,
    /// Node power, mW (MCU excluded, as the paper reports).
    pub power_mw: f64,
    /// Data rate the efficiency is computed at, Mbps.
    pub rate_mbps: Option<f64>,
    /// Energy per bit, nJ.
    pub nj_per_bit: Option<f64>,
}

/// Regenerates the §9.6 power table.
pub fn power_table() -> Vec<PowerRow> {
    let _span = milback_telemetry::span("core.experiments.power_table.ns");
    milback_telemetry::counter_add("core.experiments.runs", 1);
    use milback_hw::power::{NodeMode, PowerModel};
    let m = PowerModel::milback();
    vec![
        PowerRow {
            mode: "Localization",
            power_mw: m.power_mw(NodeMode::Localization),
            rate_mbps: None,
            nj_per_bit: None,
        },
        PowerRow {
            mode: "Downlink (36 Mbps)",
            power_mw: m.power_mw(NodeMode::Downlink),
            rate_mbps: Some(36.0),
            nj_per_bit: Some(m.energy_per_bit_nj(NodeMode::Downlink, 36e6)),
        },
        PowerRow {
            mode: "Uplink (40 Mbps)",
            power_mw: m.power_mw(NodeMode::Uplink { bit_rate: 40e6 }),
            rate_mbps: Some(40.0),
            nj_per_bit: Some(m.energy_per_bit_nj(NodeMode::Uplink { bit_rate: 40e6 }, 40e6)),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_has_both_ports_and_high_gain() {
        let rows = fig10_fsa_pattern();
        assert_eq!(rows.len(), 2 * 7 * 81);
        let max_gain = rows.iter().map(|r| r.gain_dbi).fold(f64::MIN, f64::max);
        assert!(max_gain > 10.0 && max_gain < 15.0, "{max_gain}");
    }

    #[test]
    fn fsa_summary_matches_section_9_1() {
        let s = fsa_summary();
        assert!(s.min_peak_gain_dbi > 10.0, "{}", s.min_peak_gain_dbi);
        assert!(s.coverage_deg >= 59.9, "{}", s.coverage_deg);
    }

    #[test]
    fn fig11_traces_separate_symbols() {
        let t = fig11_oaqfm_micro(3);
        assert_eq!(t.time_us.len(), t.port_a_mv.len());
        // During symbol 10 (2–3 µs) port A is high, port B low.
        let in_window = |ts: &[f64], vs: &[f64], lo: f64, hi: f64| -> f64 {
            let sel: Vec<f64> = ts
                .iter()
                .zip(vs)
                .filter(|(t, _)| **t > lo && **t < hi)
                .map(|(_, v)| *v)
                .collect();
            stats::mean(&sel)
        };
        let a10 = in_window(&t.time_us, &t.port_a_mv, 2.4, 2.9);
        let b10 = in_window(&t.time_us, &t.port_b_mv, 2.4, 2.9);
        assert!(a10 > 3.0 * b10.max(0.1), "a {a10} b {b10}");
        // During symbol 01 (1–2 µs) port B is high, port A low.
        let a01 = in_window(&t.time_us, &t.port_a_mv, 1.4, 1.9);
        let b01 = in_window(&t.time_us, &t.port_b_mv, 1.4, 1.9);
        assert!(b01 > 3.0 * a01.max(0.1), "a {a01} b {b01}");
    }

    #[test]
    fn table1_only_milback_complete() {
        let rows = table1();
        let complete: Vec<&str> = rows
            .iter()
            .filter(|r| r.uplink && r.downlink && r.localization && r.orientation)
            .map(|r| r.name)
            .collect();
        assert_eq!(complete, vec!["MilBack (This Work)"]);
    }

    #[test]
    fn power_table_matches_paper() {
        let rows = power_table();
        assert!((rows[0].power_mw - 18.0).abs() < 0.5);
        assert!((rows[1].nj_per_bit.unwrap() - 0.5).abs() < 0.05);
        assert!((rows[2].power_mw - 32.0).abs() < 1.0);
        assert!((rows[2].nj_per_bit.unwrap() - 0.8).abs() < 0.05);
    }

    // The statistical sweeps are exercised with tiny trial counts here so
    // the test suite stays fast; the bench binaries run the full counts.
    #[test]
    fn fig12a_small_run_shapes() {
        let rows = fig12a_ranging(2, 77);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.n > 0, "no fixes at {} m", r.distance_m);
            assert!(r.mean_cm < 20.0, "{} cm at {} m", r.mean_cm, r.distance_m);
        }
    }

    #[test]
    fn fig14_small_run_declines() {
        let rows = fig14_downlink(5);
        assert!(rows.len() >= 10);
        assert!(rows[0].snr_db > rows[rows.len() - 1].snr_db);
        // ≥12 dB at 10 m (§9.4 claim).
        let at10 = rows.iter().find(|r| r.distance_m == 10.0).unwrap();
        assert!(at10.snr_db > 12.0, "SINR {} dB at 10 m", at10.snr_db);
    }
}
