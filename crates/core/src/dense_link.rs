//! Dense-OAQFM downlink (paper §9.4's proposed extension): multi-level
//! amplitude keying on each tone, trading SNR margin for bits/symbol.

use crate::network::Network;
use milback_ap::tone_select::ToneSelection;
use milback_ap::waveform::ask_waveform;
use milback_node::demod::{demodulate_dense, EnvelopeSlicer};
use milback_proto::bits::{bit_errors, bits_to_bytes, bytes_to_bits};
use milback_proto::crc::{append_crc, check_crc};
use milback_proto::dense::{DenseConstellation, DenseSymbol};
use milback_rf::channel::TxComponent;

/// Pilot for dense downlink: alternating full-scale / off on both tones,
/// long enough for the node to learn its per-port reference levels.
pub const DENSE_PILOT_SYMBOLS: usize = 4;

/// Outcome of a dense downlink transfer.
#[derive(Debug, Clone)]
pub struct DenseDownlinkReport {
    /// Constellation used.
    pub constellation: DenseConstellation,
    /// Decoded payload, if the CRC passed.
    pub payload: Option<Vec<u8>>,
    /// Raw bit errors in the frame.
    pub bit_errors: usize,
    /// Total frame bits.
    pub total_bits: usize,
    /// Symbol errors (levels, either tone).
    pub symbol_errors: usize,
    /// Effective raw bit rate, bits/s.
    pub bit_rate: f64,
}

impl Network {
    /// Runs a dense-OAQFM downlink transfer at `symbol_rate` with the
    /// given constellation. Requires an off-normal orientation (two
    /// distinct tones). Returns `None` when carriers cannot be planned.
    pub fn downlink_dense(
        &mut self,
        payload: &[u8],
        symbol_rate: f64,
        constellation: DenseConstellation,
        use_truth: bool,
    ) -> Option<DenseDownlinkReport> {
        let tones = self.plan_tones(use_truth)?;
        let ToneSelection::Dual { f_a, f_b } = tones else {
            // Dense signalling needs both tones; at normal incidence fall
            // back to the classic path instead.
            return None;
        };

        // Frame: payload ‖ CRC-16 → dense symbols, after the pilot.
        let framed = append_crc(payload);
        let frame_bits = bytes_to_bits(&framed);
        let data_symbols = constellation.encode(&frame_bits);
        let full = constellation.levels - 1;
        let mut symbols: Vec<DenseSymbol> = (0..DENSE_PILOT_SYMBOLS)
            .map(|k| {
                let l = if k % 2 == 0 { full } else { 0 };
                DenseSymbol {
                    a_level: l,
                    b_level: l,
                }
            })
            .collect();
        symbols.extend_from_slice(&data_symbols);

        // Per-tone amplitude streams.
        let fs = (2.5 * (f_a - f_b).abs()).max(200e6);
        let fc = 0.5 * (f_a + f_b);
        let mut tx = self.ap.tx;
        tx.fs = fs;
        let amps_a: Vec<f64> = symbols
            .iter()
            .map(|s| constellation.amplitude(s.a_level))
            .collect();
        let amps_b: Vec<f64> = symbols
            .iter()
            .map(|s| constellation.amplitude(s.b_level))
            .collect();
        let mut wave_a = ask_waveform(&tx, fc, f_a, &amps_a, symbol_rate);
        let mut wave_b = ask_waveform(&tx, fc, f_b, &amps_b, symbol_rate);
        wave_a.scale(1.0 / 2f64.sqrt());
        wave_b.scale(1.0 / 2f64.sqrt());
        let comp_a = TxComponent::tone(wave_a, f_a);
        let comp_b = TxComponent::tone(wave_b, f_b);

        // Through the channel to both ports (wanted + cross leakage).
        let (at_a, at_b) = self.render_tones_to_ports(&comp_a, &comp_b);

        // Node: detectors → dense slicing.
        let det_a = {
            let mut rng = self.fork_rng();
            self.node.receive_port_video(&at_a, &mut rng)
        };
        let det_b = {
            let mut rng = self.fork_rng();
            self.node.receive_port_video(&at_b, &mut rng)
        };
        let slicer = EnvelopeSlicer::new(fs, symbol_rate);
        let got = demodulate_dense(
            &slicer,
            &det_a,
            &det_b,
            0.0,
            symbols.len(),
            constellation,
            DENSE_PILOT_SYMBOLS,
        );
        let got_data = &got[DENSE_PILOT_SYMBOLS..];

        let symbol_errors = got_data
            .iter()
            .zip(&data_symbols)
            .filter(|(a, b)| a != b)
            .count();
        let got_bits = constellation.decode(got_data);
        let errors = bit_errors(&got_bits[..frame_bits.len()], &frame_bits);
        let got_bytes = bits_to_bytes(&got_bits[..frame_bits.len()]);
        let payload_out = check_crc(&got_bytes).map(|p| p.to_vec());

        Some(DenseDownlinkReport {
            constellation,
            payload: payload_out,
            bit_errors: errors,
            total_bits: frame_bits.len(),
            symbol_errors,
            bit_rate: symbol_rate * constellation.bits_per_symbol() as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Fidelity;
    use milback_rf::geometry::{deg_to_rad, Pose};

    #[test]
    fn dense_4_level_delivers_at_2m() {
        // 18° orientation: wide tone separation → the cross-port leakage
        // stays below the 4-level decision margin.
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(18.0));
        let mut net = Network::new(pose, Fidelity::Fast, 31);
        let payload: Vec<u8> = (0..16).collect();
        let r = net
            .downlink_dense(&payload, 1e6, DenseConstellation::new(4), true)
            .expect("no dense downlink");
        assert_eq!(r.bit_errors, 0, "symbol errors {}", r.symbol_errors);
        assert_eq!(r.payload.as_deref(), Some(&payload[..]));
        assert_eq!(r.bit_rate, 4e6);
    }

    #[test]
    fn dense_doubles_rate_over_classic() {
        let c2 = DenseConstellation::classic();
        let c4 = DenseConstellation::new(4);
        assert_eq!(c4.bits_per_symbol(), 2 * c2.bits_per_symbol());
    }

    #[test]
    fn dense_degrades_before_classic_with_distance() {
        // At some distance the 8-level constellation starts erroring while
        // classic OAQFM is still clean — density costs SNR margin.
        let mut dense_errs = 0;
        let mut classic_errs = 0;
        for d in [6.0, 8.0, 10.0] {
            let pose = Pose::facing_ap(d, 0.0, deg_to_rad(12.0));
            let mut net = Network::new(pose, Fidelity::Fast, 32);
            if let Some(r) = net.downlink_dense(&[0x5A; 16], 1e6, DenseConstellation::new(8), true)
            {
                dense_errs += r.bit_errors;
            }
            let mut net = Network::new(pose, Fidelity::Fast, 32);
            if let Some(r) = net.downlink(&[0x5A; 16], 1e6, true) {
                classic_errs += r.bit_errors;
            }
        }
        assert!(
            dense_errs > classic_errs,
            "dense {dense_errs} vs classic {classic_errs}"
        );
    }

    #[test]
    fn normal_incidence_refuses_dense() {
        let pose = Pose::facing_ap(2.0, 0.0, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, 33);
        assert!(net
            .downlink_dense(&[1, 2], 1e6, DenseConstellation::new(4), true)
            .is_none());
    }
}
