//! Deterministic chaos sweeps: supervised sessions under sampled fault
//! plans, on the batch engine (DESIGN.md §14).
//!
//! Each trial derives its fault plan from the batch-engine trial seed
//! ([`crate::batch::derive_seed`] discipline), runs one supervised
//! exchange, and compresses the outcome into a [`ChaosOutcome`] — a
//! `PartialEq` value, so the chaos determinism pin is a single
//! `assert_eq!` between serial and parallel runs (`tests/chaos.rs`,
//! `bench_engine` chaos leg, `ci.sh` determinism step).

use crate::batch;
use crate::config::Fidelity;
use crate::network::Network;
use crate::session::{Degradation, FailureKind, Session, SessionConfig};
use milback_proto::packet::Packet;
use milback_rf::faults::FaultPlan;
use milback_rf::geometry::{deg_to_rad, Pose};

/// One point of a chaos sweep: fault intensity in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPoint {
    /// Fault intensity passed to [`FaultPlan::chaos`].
    pub intensity: f64,
    /// Node range from the AP, meters.
    pub range_m: f64,
}

/// Compressed per-trial result of a supervised exchange under faults.
/// Everything is exact-comparable (`f64` fields compare bitwise through
/// `PartialEq`), so serial == parallel is a plain equality check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosOutcome {
    /// The exchange delivered its payload.
    pub delivered: bool,
    /// Field-1 transmissions used (0 when the session failed before
    /// completing Field 1's budget accounting).
    pub mode_attempts: usize,
    /// Payload transmissions used.
    pub payload_attempts: usize,
    /// Field-2 chirps localization used.
    pub chirps_used: usize,
    /// Number of degradations reported.
    pub degradations: usize,
    /// Range estimate of the fix (NaN-free sentinel: `-1.0` = no fix).
    pub range_est_m: f64,
    /// Failure stage for failed sessions.
    pub failure: Option<FailureKind>,
    /// Whether the reduced-chirp fallback fired.
    pub fell_back: bool,
}

/// Runs one supervised exchange at `point` with the fault plan derived
/// from `seed`. Pure function of its arguments — the chaos legs call it
/// from both serial and parallel batch runs and compare results
/// bitwise.
pub fn chaos_trial(point: &ChaosPoint, seed: u64) -> ChaosOutcome {
    let pose = Pose::facing_ap(point.range_m, 0.0, deg_to_rad(12.0));
    let mut net = Network::new(pose, Fidelity::Fast, seed);
    let pkt = net.fidelity.packet();
    // Fault horizon: a generous multiple of the packet airtime so
    // sampled windows land where the session actually is on its clock
    // (retry backoff stretches the exchange well past one airtime).
    let horizon_s = 8.0 * pkt.total_duration() + 0.2;
    net.faults = FaultPlan::chaos(seed, point.intensity, horizon_s);
    let packet = Packet::downlink((0..16).collect());
    let session = Session::new(SessionConfig::milback());
    match session.run(&mut net, &packet) {
        Ok(report) => ChaosOutcome {
            delivered: true,
            mode_attempts: report.mode_attempts,
            payload_attempts: report.payload_attempts,
            chirps_used: report.chirps_used,
            degradations: report.degradations.len(),
            range_est_m: report.fix.map_or(-1.0, |f| f.range),
            failure: None,
            fell_back: report
                .degradations
                .iter()
                .any(|d| matches!(d, Degradation::ReducedChirpFallback { .. })),
        },
        Err(err) => ChaosOutcome {
            delivered: false,
            mode_attempts: 0,
            payload_attempts: 0,
            chirps_used: 0,
            degradations: err.degradations.len(),
            range_est_m: -1.0,
            failure: Some(err.kind),
            fell_back: false,
        },
    }
}

/// Sweeps fault intensities over the batch engine: `trials` supervised
/// exchanges per point, per-trial seeds derived from `master_seed` by
/// the engine. Thread-count-invariant (pinned by `tests/chaos.rs`).
pub fn chaos_sweep(
    points: &[ChaosPoint],
    trials: usize,
    master_seed: u64,
) -> Vec<Vec<ChaosOutcome>> {
    batch::sweep(points, trials, master_seed, |point, trial| {
        chaos_trial(point, trial.seed)
    })
}

/// [`chaos_sweep`] with an explicit thread count (determinism checks).
pub fn chaos_sweep_with_threads(
    points: &[ChaosPoint],
    trials: usize,
    master_seed: u64,
    threads: usize,
) -> Vec<Vec<ChaosOutcome>> {
    // `batch::sweep` flattens to one global job list; mirror it here so
    // point-major ordering and seed derivation match exactly.
    let jobs: Vec<(usize, batch::Trial)> = (0..points.len() * trials)
        .map(|g| {
            (
                g / trials,
                batch::Trial {
                    index: g,
                    seed: batch::derive_seed(master_seed, g as u64),
                },
            )
        })
        .collect();
    let flat = batch::par_map_with_threads(&jobs, threads, |(p, trial), _| {
        chaos_trial(&points[*p], trial.seed)
    });
    let mut out: Vec<Vec<ChaosOutcome>> = Vec::with_capacity(points.len());
    let mut it = flat.into_iter();
    for _ in 0..points.len() {
        out.push(it.by_ref().take(trials).collect());
    }
    out
}

/// The default chaos sweep grid used by the bench leg and CI smoke:
/// three intensities at two ranges.
pub fn default_points() -> Vec<ChaosPoint> {
    vec![
        ChaosPoint {
            intensity: 0.0,
            range_m: 2.0,
        },
        ChaosPoint {
            intensity: 0.5,
            range_m: 2.0,
        },
        ChaosPoint {
            intensity: 0.9,
            range_m: 3.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_sessions_deliver_cleanly() {
        let outcome = chaos_trial(
            &ChaosPoint {
                intensity: 0.0,
                range_m: 2.0,
            },
            77,
        );
        assert!(outcome.delivered);
        assert_eq!(outcome.degradations, 0);
        assert_eq!(outcome.chirps_used, 5);
    }

    #[test]
    fn chaos_trial_is_deterministic() {
        let p = ChaosPoint {
            intensity: 0.8,
            range_m: 2.5,
        };
        assert_eq!(chaos_trial(&p, 123), chaos_trial(&p, 123));
    }

    #[test]
    fn sweep_matches_explicit_thread_variant() {
        let points = default_points();
        let a = chaos_sweep(&points, 2, 99);
        let b = chaos_sweep_with_threads(&points, 2, 99, 1);
        assert_eq!(a, b);
    }
}
