//! # milback
//!
//! End-to-end simulation of the MilBack mmWave backscatter network —
//! the paper's primary contribution, assembled from the substrate crates
//! (`milback-dsp`, `milback-rf`, `milback-hw`, `milback-node`,
//! `milback-ap`, `milback-proto`):
//!
//! * [`network`] — the single-node [`Network`]: localization (§5.1) and
//!   orientation sensing at both ends (§5.2),
//! * [`link`] — OAQFM downlink and backscatter uplink (§6),
//! * [`protocol`] — the full packet exchange (§7): mode signalling,
//!   preamble, payload,
//! * [`multinode`] — SDM multi-node deployments with a polling MAC,
//! * [`dense_link`] — multi-amplitude "dense OAQFM" (§9.4 extension),
//! * [`adaptation`] — the closed-loop [`adaptation::LinkPolicy`]
//!   controller (rate/OOK/chirp/ARQ levers), rate fallback,
//!   stop-and-wait ARQ delivery, and the adaptive-vs-fixed chaos
//!   evaluation,
//! * [`session`] — the self-healing session supervisor: bounded retry,
//!   backoff, reduced-chirp fallback, typed degradation reports,
//! * [`serve`] — the session-serving engine: work-stealing pool over
//!   per-node FIFO chains, bounded submission queues with backpressure,
//!   telemetry-driven load shedding,
//! * [`net`] — the dense-network fabric: slotted polling MAC across
//!   multi-AP coverage cells, inter-node interference through the
//!   cached ray tables, deterministic handoffs, density sweeps,
//! * [`chaos`] — deterministic chaos sweeps over sampled fault plans,
//! * [`tracking`] — Kalman tracking over per-packet fixes,
//! * [`velocity`] — slow-time Doppler radial-velocity measurement,
//! * [`survey`] — analytic coverage maps for deployment planning,
//! * [`experiments`] — drivers regenerating every paper figure/table,
//! * [`ablations`] — what breaks when each design choice is removed,
//! * [`batch`] — the deterministic parallel batch engine the drivers
//!   above run on,
//! * [`config`] — fidelity presets and calibrated AP parameters.
//!
//! ```no_run
//! use milback::{Fidelity, Network};
//! use milback_rf::geometry::{deg_to_rad, Pose};
//!
//! let pose = Pose::facing_ap(3.0, 0.0, deg_to_rad(12.0));
//! let mut net = Network::new(pose, Fidelity::Fast, 42);
//! let fix = net.localize().expect("node not found");
//! assert!((fix.range - 3.0).abs() < 0.2);
//! ```
//!
//! ## Observability
//!
//! The whole pipeline is instrumented with `milback-telemetry`: set
//! `MILBACK_TELEMETRY=1` (or call `milback_telemetry::set_enabled(true)`)
//! and every [`link`] transfer, [`protocol`] packet, [`experiments`]
//! driver and [`batch`] run records counters, histograms and spans into
//! a process-wide registry. `milback_telemetry::snapshot()` drains it;
//! the `bench_engine` binary embeds the snapshot in its `BENCH_*.json`
//! output. Aggregation is sharded per worker thread and merged with
//! order-independent integer arithmetic, so batch totals are identical
//! whether `MILBACK_THREADS=1` or 16 (DESIGN.md §11).

#![deny(rustdoc::broken_intra_doc_links)]

pub mod ablations;
pub mod adaptation;
pub mod batch;
pub mod chaos;
pub mod config;
pub mod dense_link;
pub mod experiments;
pub mod link;
pub mod multinode;
pub mod net;
pub mod network;
pub mod protocol;
pub mod serve;
pub mod session;
pub mod survey;
pub mod tracking;
pub mod velocity;

pub use adaptation::{
    adaptive_sweep_with_threads, AdaptiveComparison, AdaptiveOutcome, AdaptiveReport, LinkPolicy,
    PolicyConfig, PolicyFeedback, ScenarioKind, SessionPlan, SCENARIOS,
};
pub use batch::{derive_seed, run_trials, sweep, Trial};
pub use chaos::{chaos_sweep, ChaosOutcome, ChaosPoint};
pub use config::{ApParams, Fidelity};
pub use dense_link::DenseDownlinkReport;
pub use link::{DownlinkReport, UplinkReport};
pub use multinode::{MultiNetwork, SlotResult};
pub use net::{
    ap_line, density_sweep, net_roster, DensityPoint, Fabric, NetConfig, RoundReport,
    RoundSchedule, Slot, SlotOutcome,
};
pub use network::{Interferer, Network};
pub use protocol::PacketOutcome;
pub use serve::{
    Outcome, Resolution, ServeConfig, ServeEngine, ServeReport, SessionRequest, TrafficConfig,
    TrafficSchedule, Workload,
};
pub use session::{
    Degradation, LocalizeSummary, Session, SessionConfig, SessionCtx, SessionError, SessionReport,
};
pub use survey::{coverage_map, CoverageCell};
pub use tracking::{NodeTracker, TrackEstimate};
pub use velocity::VelocityResult;
