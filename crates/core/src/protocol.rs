//! The full MilBack packet protocol (paper §7): Field 1 (mode signalling
//! plus node-side orientation), Field 2 (localization plus AP-side
//! orientation), then the payload in whichever direction Field 1
//! announced.

use crate::link::{DownlinkReport, UplinkReport};
use crate::network::Network;
use milback_ap::ranging::LocalizationResult;

use milback_node::mode_detect::ModeDetector;
use milback_node::orientation::NodeOrientationEstimator;
use milback_proto::packet::{LinkMode, Packet};
use milback_rf::channel::{FreqProfile, TxComponent};
use milback_rf::fsa::Port;

/// Everything that happened during one packet exchange.
#[derive(Debug, Clone)]
pub struct PacketOutcome {
    /// The mode the node decoded from Field 1 (`None` = detection failed).
    pub mode_detected: Option<LinkMode>,
    /// The node's own orientation estimate from Field 1, radians.
    pub node_orientation: Option<f64>,
    /// The AP's localization fix from Field 2.
    pub fix: Option<LocalizationResult>,
    /// The AP's orientation estimate from Field 2, radians.
    pub ap_orientation: Option<f64>,
    /// Downlink result (when the packet was downlink).
    pub downlink: Option<DownlinkReport>,
    /// Uplink result (when the packet was uplink).
    pub uplink: Option<UplinkReport>,
}

impl Network {
    /// Transmits Field 1 for `mode` and lets the node detect the mode by
    /// counting chirps with its energy detector (paper §7).
    pub fn signal_mode(&mut self, mode: LinkMode) -> Option<LinkMode> {
        use milback_proto::packet::{PacketConfig, Slot};
        let pkt = self.fidelity.packet();
        let mut chirp_cfg = pkt.field1_chirp;
        chirp_cfg.amplitude = self.ap.tx.amplitude();
        // Render each Field-1 slot separately so every chirp slot carries
        // its own triangular frequency profile (slot-local time).
        let chirp = chirp_cfg.triangular();
        let comp = TxComponent {
            signal: chirp,
            profile: FreqProfile::Triangular(chirp_cfg),
        };
        let mut rng = self.fork_rng();
        let mut combined: Vec<f64> = Vec::new();
        for slot in PacketConfig::field1_slots(mode) {
            match slot {
                Slot::Chirp => {
                    let at_a =
                        self.scene
                            .to_node_port(&comp, &self.node.pose, &self.node.fsa, Port::A);
                    let at_b =
                        self.scene
                            .to_node_port(&comp, &self.node.pose, &self.node.fsa, Port::B);
                    let cap_a = self.node.receive_port(&at_a, &mut rng);
                    let cap_b = self.node.receive_port(&at_b, &mut rng);
                    combined.extend(cap_a.iter().zip(&cap_b).map(|(a, b)| a + b));
                }
                Slot::Gap => {
                    // Silence: the detectors see only their own noise.
                    let silent = milback_dsp::signal::Signal::zeros(
                        chirp_cfg.fs,
                        chirp_cfg.center(),
                        chirp_cfg.n_samples(),
                    );
                    let cap_a = self.node.receive_port(&silent, &mut rng);
                    let cap_b = self.node.receive_port(&silent, &mut rng);
                    combined.extend(cap_a.iter().zip(&cap_b).map(|(a, b)| a + b));
                }
            }
        }
        let det = ModeDetector {
            slot_duration: pkt.field1_chirp.duration,
            sample_rate: self.node.adc.sample_rate,
        };
        // Scheduled impairments hit the node's detector stream before
        // the decision (no-op when the fault plan is empty) — a blockage
        // window over Field 1 erases chirps the counter needed.
        self.faults
            .apply_to_video(self.clock_s, self.node.adc.sample_rate, &mut combined);
        // The node knows its detector noise (it can measure a quiet
        // window any time); the combined capture sums two ports.
        let sigma = 2f64.sqrt() * self.node.detector.output_noise_rms();
        det.detect_with_floor(&combined, 0.0, sigma)
    }

    /// Runs a complete packet exchange:
    ///
    /// 1. Field 1 — the AP announces the mode; the node counts chirps and
    ///    estimates its own orientation from the first chirp.
    /// 2. Field 2 — five sawtooth chirps; the AP localizes the node and
    ///    estimates its orientation.
    /// 3. Payload — downlink or uplink per the packet's mode, with OAQFM
    ///    carriers chosen from the AP's orientation estimate.
    pub fn run_packet(&mut self, packet: &Packet, symbol_rate: f64) -> PacketOutcome {
        let _span = milback_telemetry::span("core.protocol.packet.ns");
        // --- Field 1 ---------------------------------------------------
        let mode_detected = self.signal_mode(packet.mode);
        let (cap_a, cap_b) = self.field1_node_captures();
        let mut est = NodeOrientationEstimator::milback();
        est.chirp = self.fidelity.triangular();
        est.sample_rate = self.node.adc.sample_rate;
        let node_orientation = est.estimate(&self.node.fsa, &cap_a, &cap_b);

        // --- Field 2 ---------------------------------------------------
        let fix = self.localize();
        let ap_orientation = self.sense_orientation_at_ap();

        // --- Payload ---------------------------------------------------
        let mut outcome = PacketOutcome {
            mode_detected,
            node_orientation,
            fix,
            ap_orientation,
            downlink: None,
            uplink: None,
        };
        // The payload proceeds only if the node heard the right mode.
        if mode_detected != Some(packet.mode) {
            milback_telemetry::counter_add("core.protocol.mode_mismatch", 1);
            return outcome;
        }
        milback_telemetry::counter_add("core.protocol.mode_ok", 1);
        match packet.mode {
            LinkMode::Downlink => {
                outcome.downlink = self.downlink(&packet.payload, symbol_rate, false);
            }
            LinkMode::Uplink => {
                outcome.uplink = self.uplink(&packet.payload, symbol_rate, false);
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Fidelity;
    use milback_rf::geometry::{deg_to_rad, Pose};

    #[test]
    fn mode_signalling_through_channel() {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(10.0));
        let mut net = Network::new(pose, Fidelity::Fast, 21);
        assert_eq!(net.signal_mode(LinkMode::Uplink), Some(LinkMode::Uplink));
        assert_eq!(
            net.signal_mode(LinkMode::Downlink),
            Some(LinkMode::Downlink)
        );
    }

    #[test]
    fn full_downlink_packet() {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
        let mut net = Network::new(pose, Fidelity::Fast, 22);
        let packet = Packet::downlink((0..16).collect());
        let outcome = net.run_packet(&packet, 1e6);
        assert_eq!(outcome.mode_detected, Some(LinkMode::Downlink));
        assert!(outcome.fix.is_some());
        assert!(outcome.node_orientation.is_some());
        assert!(outcome.ap_orientation.is_some());
        let dl = outcome.downlink.expect("downlink did not run");
        assert_eq!(dl.payload.as_deref().unwrap(), &packet.payload[..]);
    }

    #[test]
    fn full_uplink_packet() {
        let pose = Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0));
        let mut net = Network::new(pose, Fidelity::Fast, 23);
        let packet = Packet::uplink(vec![0xC3; 16]);
        let outcome = net.run_packet(&packet, 5e6);
        assert_eq!(outcome.mode_detected, Some(LinkMode::Uplink));
        let ul = outcome.uplink.expect("uplink did not run");
        assert_eq!(ul.payload.as_deref().unwrap(), &packet.payload[..]);
    }

    #[test]
    fn mode_mismatch_skips_payload() {
        // A node too far away to hear Field 1 must not attempt the payload.
        let pose = Pose::facing_ap(40.0, 0.0, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, 24);
        // Out of localizer range too — everything degrades gracefully.
        let packet = Packet::downlink(vec![1, 2, 3]);
        let outcome = net.run_packet(&packet, 1e6);
        if outcome.mode_detected != Some(LinkMode::Downlink) {
            assert!(outcome.downlink.is_none());
        }
    }
}
