//! Node tracking: a constant-velocity Kalman filter over the AP's
//! per-packet localization fixes.
//!
//! The paper's motivating applications (VR/AR headsets, §1) move; every
//! packet's Field 2 yields a (range, angle) fix "for free", and this
//! module turns that stream into a smoothed trajectory. The filter runs
//! in Cartesian coordinates with a measurement covariance derived from
//! the polar fix accuracy (range error ≈ cm, angle error ≈ degrees, so
//! the cross-range uncertainty grows with distance).

use milback_ap::ranging::LocalizationResult;
use milback_rf::geometry::Point;

/// A 2-D point estimate with uncertainty (diagonal covariance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackEstimate {
    /// Estimated position.
    pub position: Point,
    /// Estimated velocity, m/s.
    pub velocity: (f64, f64),
    /// Position standard deviations (x, y), meters.
    pub sigma: (f64, f64),
}

/// Constant-velocity Kalman tracker over localization fixes.
///
/// State: `[x, vx, y, vy]`. The x and y axes are filtered independently
/// (the measurement covariance is rotated into the axes per update using
/// its diagonal approximation), which keeps the filter free of matrix
/// inversion beyond 2×2.
#[derive(Debug, Clone)]
pub struct NodeTracker {
    /// Range measurement standard deviation, meters.
    pub sigma_range: f64,
    /// Angle measurement standard deviation, radians.
    pub sigma_angle: f64,
    /// Process (acceleration) noise density, m/s².
    pub accel_noise: f64,
    state: Option<AxisPair>,
}

#[derive(Debug, Clone, Copy)]
struct Axis {
    // State [pos, vel] and covariance [[p00, p01], [p01, p11]].
    x: [f64; 2],
    p: [f64; 3],
}

#[derive(Debug, Clone, Copy)]
struct AxisPair {
    ax: Axis,
    ay: Axis,
}

impl NodeTracker {
    /// A tracker matched to this reproduction's fix accuracy: ~4 cm range
    /// σ, ~1° angle σ, gentle motion.
    pub fn milback() -> Self {
        Self {
            sigma_range: 0.04,
            sigma_angle: 1f64.to_radians(),
            accel_noise: 2.0,
            state: None,
        }
    }

    /// Resets the track.
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// Whether the tracker has been initialized by a fix.
    pub fn is_initialized(&self) -> bool {
        self.state.is_some()
    }

    /// Converts a polar fix to a Cartesian measurement with per-axis
    /// standard deviations (diagonal approximation of the rotated polar
    /// covariance).
    fn measurement(&self, fix: &LocalizationResult) -> Option<(Point, f64, f64)> {
        let angle = fix.angle?;
        let p = Point::from_polar(fix.range, angle);
        let sr = self.sigma_range;
        let sc = self.sigma_angle * fix.range; // cross-range
        let (sin, cos) = angle.sin_cos();
        // Rotate the (range, cross-range) ellipse into x/y and keep the
        // diagonal.
        let sx = ((sr * cos).powi(2) + (sc * sin).powi(2)).sqrt();
        let sy = ((sr * sin).powi(2) + (sc * cos).powi(2)).sqrt();
        Some((p, sx, sy))
    }

    /// Feeds one fix taken `dt` seconds after the previous one. Returns
    /// the updated estimate, or `None` if the fix carried no angle and
    /// the track is uninitialized.
    pub fn update(&mut self, fix: &LocalizationResult, dt: f64) -> Option<TrackEstimate> {
        assert!(dt > 0.0, "dt must be positive");
        let (z, sx, sy) = self.measurement(fix)?;
        let state = match &mut self.state {
            state @ None => state.insert(AxisPair {
                ax: Axis::init(z.x, sx),
                ay: Axis::init(z.y, sy),
            }),
            Some(s) => {
                s.ax.predict(dt, self.accel_noise);
                s.ay.predict(dt, self.accel_noise);
                s.ax.correct(z.x, sx);
                s.ay.correct(z.y, sy);
                s
            }
        };
        Some(TrackEstimate {
            position: Point::new(state.ax.x[0], state.ay.x[0]),
            velocity: (state.ax.x[1], state.ay.x[1]),
            sigma: (state.ax.p[0].sqrt(), state.ay.p[0].sqrt()),
        })
    }

    /// Predicts the position `dt` seconds ahead of the last update
    /// without consuming a measurement.
    pub fn predict_ahead(&self, dt: f64) -> Option<Point> {
        let s = self.state.as_ref()?;
        Some(Point::new(
            s.ax.x[0] + s.ax.x[1] * dt,
            s.ay.x[0] + s.ay.x[1] * dt,
        ))
    }
}

impl Axis {
    fn init(pos: f64, sigma: f64) -> Self {
        Self {
            x: [pos, 0.0],
            // Large initial velocity uncertainty.
            p: [sigma * sigma, 0.0, 25.0],
        }
    }

    fn predict(&mut self, dt: f64, accel: f64) {
        // x ← F·x with F = [[1, dt], [0, 1]].
        self.x[0] += self.x[1] * dt;
        // P ← F·P·Fᵀ + Q (white-acceleration Q).
        let [p00, p01, p11] = self.p;
        let q = accel * accel;
        let dt2 = dt * dt;
        self.p = [
            p00 + 2.0 * dt * p01 + dt2 * p11 + q * dt2 * dt2 / 4.0,
            p01 + dt * p11 + q * dt2 * dt / 2.0,
            p11 + q * dt2,
        ];
    }

    fn correct(&mut self, z: f64, sigma: f64) {
        let r = sigma * sigma;
        let [p00, p01, p11] = self.p;
        let s = p00 + r;
        let k0 = p00 / s;
        let k1 = p01 / s;
        let innov = z - self.x[0];
        self.x[0] += k0 * innov;
        self.x[1] += k1 * innov;
        self.p = [(1.0 - k0) * p00, (1.0 - k0) * p01, p11 - k1 * p01];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(x: f64, y: f64) -> LocalizationResult {
        let r = (x * x + y * y).sqrt();
        LocalizationResult {
            range: r,
            angle: Some(y.atan2(x)),
            peak_power: 1.0,
        }
    }

    #[test]
    fn initializes_on_first_fix() {
        let mut t = NodeTracker::milback();
        assert!(!t.is_initialized());
        let e = t.update(&fix(3.0, 0.5), 0.1).unwrap();
        assert!(t.is_initialized());
        assert!((e.position.x - 3.0).abs() < 1e-9);
        assert!((e.position.y - 0.5).abs() < 1e-9);
    }

    #[test]
    fn smooths_noisy_measurements() {
        let mut t = NodeTracker::milback();
        // Static node at (4, 1); alternate measurements ±6 cm in x.
        let mut errs_raw = 0.0;
        let mut errs_flt = 0.0;
        for k in 0..40 {
            let dx = if k % 2 == 0 { 0.06 } else { -0.06 };
            let e = t.update(&fix(4.0 + dx, 1.0), 0.1).unwrap();
            if k >= 10 {
                errs_raw += dx.abs();
                errs_flt += (e.position.x - 4.0).abs();
            }
        }
        assert!(
            errs_flt < errs_raw / 2.0,
            "filter {errs_flt} vs raw {errs_raw}"
        );
    }

    #[test]
    fn tracks_constant_velocity() {
        let mut t = NodeTracker::milback();
        // Node moving +0.5 m/s in x from (2, 0.5).
        let mut last = None;
        for k in 0..60 {
            let x = 2.0 + 0.5 * (k as f64 * 0.1);
            last = t.update(&fix(x, 0.5), 0.1);
        }
        let e = last.unwrap();
        assert!((e.velocity.0 - 0.5).abs() < 0.1, "vx {}", e.velocity.0);
        assert!(e.velocity.1.abs() < 0.1, "vy {}", e.velocity.1);
        // Prediction extrapolates along the motion.
        let ahead = t.predict_ahead(1.0).unwrap();
        assert!((ahead.x - (e.position.x + 0.5)).abs() < 0.1);
    }

    #[test]
    fn angleless_fix_before_init_returns_none() {
        let mut t = NodeTracker::milback();
        let f = LocalizationResult {
            range: 2.0,
            angle: None,
            peak_power: 1.0,
        };
        assert!(t.update(&f, 0.1).is_none());
        assert!(!t.is_initialized());
        assert!(t.predict_ahead(0.5).is_none());
    }

    #[test]
    fn cross_range_uncertainty_grows_with_distance() {
        let t = NodeTracker::milback();
        let (_, _, sy_near) = t.measurement(&fix(2.0, 0.0)).unwrap();
        let (_, _, sy_far) = t.measurement(&fix(8.0, 0.0)).unwrap();
        assert!((sy_far / sy_near - 4.0).abs() < 0.01);
    }

    #[test]
    fn reset_clears_track() {
        let mut t = NodeTracker::milback();
        t.update(&fix(1.0, 0.0), 0.1);
        t.reset();
        assert!(!t.is_initialized());
    }

    #[test]
    fn covariance_stays_positive() {
        let mut t = NodeTracker::milback();
        for k in 0..200 {
            let e = t.update(&fix(3.0 + 0.01 * k as f64, 1.0), 0.05).unwrap();
            assert!(e.sigma.0 > 0.0 && e.sigma.0.is_finite());
            assert!(e.sigma.1 > 0.0 && e.sigma.1.is_finite());
        }
    }
}
