//! End-to-end radial-velocity measurement: a moving node, a chirp train,
//! and slow-time Doppler processing (MTI-style).
//!
//! Unlike localization, no switch modulation is needed: the node parks
//! both ports reflective and its *motion* separates it from the static
//! scene — clutter lands in the zero-Doppler bin, which is removed by
//! subtracting the slow-time mean. This is how every automotive FMCW
//! radar sees moving targets, and it extends the paper's localization
//! (position) to full kinematic state (position + velocity) for the
//! tracking applications of §1.

use crate::network::Network;
use milback_ap::doppler::DopplerProcessor;
use milback_dsp::noise::{add_awgn, thermal_noise_power};
use milback_dsp::num::Cpx;
use milback_rf::channel::{FreqProfile, NodeInterface, TxComponent};
use milback_rf::geometry::{Point, Pose};

/// Result of a velocity measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VelocityResult {
    /// Estimated radial velocity, m/s (positive = receding).
    pub velocity: f64,
    /// Range bin the slow-time series was taken from.
    pub range_bin: usize,
    /// Whether a moving component was detected at all (when `false`,
    /// `velocity` is 0: the return is static within resolution).
    pub moving: bool,
}

/// Chirp repetition interval for velocity trains, seconds. Unlike the
/// back-to-back localization chirps, Doppler trains are spaced out —
/// but not too far: the target must stay inside one range bin (~2 cm)
/// for the whole train. 0.1 ms × 64 chirps keeps a 3 m/s walker within
/// a bin while giving ±27 m/s unambiguous velocity and ~0.8 m/s raw
/// resolution (interpolated well below that).
pub const DOPPLER_CHIRP_INTERVAL: f64 = 1e-4;

impl Network {
    /// Measures the node's radial velocity with an `n_chirps` train while
    /// the node recedes at `v_true` m/s (the simulation moves the node
    /// between chirps; a real deployment would not know `v_true`, which
    /// is only used here to animate the scene).
    pub fn measure_velocity(&mut self, v_true: f64, n_chirps: usize) -> Option<VelocityResult> {
        assert!(n_chirps >= 8, "need at least 8 chirps for Doppler");
        let mut cfg = self.fidelity.sawtooth();
        cfg.amplitude = self.ap.tx.amplitude();
        let tx = cfg.sawtooth();
        let profile = FreqProfile::Sawtooth(cfg);
        let noise_p = thermal_noise_power(tx.fs, self.ap.capture_nf_db);

        let interval = DOPPLER_CHIRP_INTERVAL;
        // Node parked fully reflective on port A for the whole train.
        let start_pose = self.node.pose;
        let bearing = Point::origin().bearing_to(&start_pose.position);
        let gamma = {
            let g = self
                .node
                .switch
                .gamma(milback_hw::switch::SwitchState::Reflective);
            let loss = 10f64.powf(-2.0 * self.node.impl_loss_db / 20.0);
            move |_t: f64| [g * loss, Cpx::new(0.0, 0.0)]
        };

        let localizer = self.localizer();
        let mut slow_time: Vec<Cpx> = Vec::with_capacity(n_chirps);
        let mut range_bin = None;
        for i in 0..n_chirps {
            // Quasi-static: the node advances radially between chirps.
            let d =
                start_pose.position.distance_to(&Point::origin()) + v_true * i as f64 * interval;
            let pose = Pose::new(Point::from_polar(d, bearing), start_pose.facing);
            let node_if = NodeInterface {
                pose,
                fsa: &self.node.fsa,
                gamma: &gamma,
            };
            let comp = TxComponent {
                signal: tx.clone(),
                profile,
            };
            let mut rx = self.scene.monostatic_rx(&comp, &node_if, 0);
            add_awgn(&mut rx, noise_p, &mut self.rng_for_velocity());
            let prof = localizer
                .proc
                .range_profile(&localizer.proc.dechirp(&rx, &tx));
            // Lock the range bin on the first chirp (motion within the
            // train stays far below the range resolution).
            let bin = *range_bin.get_or_insert_with(|| {
                let power: Vec<f64> = prof.iter().map(|c| c.norm_sq()).collect();
                // Search the same window the localizer uses; here the node
                // is the only *expected* return near its true range, so a
                // windowed argmax around truth keeps the test honest
                // without cheating on phase.
                let true_bin = (2.0 * d / milback_rf::geometry::SPEED_OF_LIGHT
                    * localizer.proc.chirp.slope()
                    * localizer.proc.fft_len as f64
                    / tx.fs) as usize;
                let lo = true_bin.saturating_sub(20);
                let hi = (true_bin + 20).min(power.len() / 2);
                lo + milback_dsp::detect::argmax(&power[lo..hi]).unwrap_or(0)
            });
            slow_time.push(prof[bin]);
        }

        // MTI: remove the static (zero-Doppler) component. For a static
        // node this removes the node itself — the leftover is noise, so
        // check whether a moving component survives before estimating.
        let mean: Cpx = slow_time.iter().copied().sum::<Cpx>() / n_chirps as f64;
        for c in slow_time.iter_mut() {
            *c -= mean;
        }
        self.node.pose = start_pose;

        // Moving-target test in the Doppler domain: after MTI the moving
        // node is a tone that must rise decisively above the spectrum's
        // noise floor (the slow-time mean removed the static clutter, but
        // its noise-like residue remains).
        let doppler = DopplerProcessor::new(tx.fc, interval);
        let spec = doppler.spectrum(&slow_time);
        let power: Vec<f64> = spec.iter().map(|(_, p)| *p).collect();
        let peak = power.iter().cloned().fold(f64::MIN, f64::max);
        let floor = milback_dsp::stats::median(&power);
        if peak < 20.0 * floor.max(f64::MIN_POSITIVE) {
            return Some(VelocityResult {
                velocity: 0.0,
                range_bin: range_bin.unwrap_or(0),
                moving: false,
            });
        }
        let velocity = doppler.estimate_fft(&slow_time)?;
        Some(VelocityResult {
            velocity,
            range_bin: range_bin.unwrap_or(0),
            moving: true,
        })
    }

    fn rng_for_velocity(&mut self) -> rand::rngs::StdRng {
        self.fork_rng()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Fidelity;

    #[test]
    fn recovers_receding_and_approaching_velocity() {
        for v_true in [-1.5, 1.0, 3.0] {
            let pose = Pose::facing_ap(3.0, 0.0, 0.0);
            let mut net = Network::new(pose, Fidelity::Fast, 1100);
            let r = net
                .measure_velocity(v_true, 64)
                .expect("no velocity estimate");
            assert!(r.moving, "motion missed at {v_true} m/s");
            assert!(
                (r.velocity - v_true).abs() < 0.4,
                "true {v_true}, est {}",
                r.velocity
            );
        }
    }

    #[test]
    fn static_node_measures_near_zero() {
        let pose = Pose::facing_ap(3.0, 0.0, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, 1101);
        let r = net.measure_velocity(0.0, 32).expect("no estimate");
        assert!(!r.moving, "phantom motion: {}", r.velocity);
        assert_eq!(r.velocity, 0.0);
    }

    #[test]
    fn pose_restored_after_measurement() {
        let pose = Pose::facing_ap(3.0, 0.0, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, 1102);
        let _ = net.measure_velocity(2.0, 16);
        assert_eq!(net.node.pose, pose);
    }

    #[test]
    #[should_panic(expected = "at least 8 chirps")]
    fn rejects_short_train() {
        let pose = Pose::facing_ap(3.0, 0.0, 0.0);
        let mut net = Network::new(pose, Fidelity::Fast, 1103);
        let _ = net.measure_velocity(1.0, 4);
    }
}
