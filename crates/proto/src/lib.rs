//! # milback-proto
//!
//! Link-layer protocol for MilBack (paper §7):
//!
//! * [`arq`] — stop-and-wait reliable delivery over the CRC frames,
//! * [`bits`] — bit utilities and the OAQFM symbol alphabet,
//! * [`crc`] — CRC-16/CCITT-FALSE frame protection,
//! * [`dense`] — multi-amplitude "dense OAQFM" constellations (§9.4),
//! * [`fec`] — Hamming(7,4) forward error correction,
//! * [`frame`] — payload ↔ symbol-stream framing,
//! * [`mac`] — a polling MAC for multi-node deployments,
//! * [`multiframe`] — fragmentation/reassembly for large messages,
//! * [`packet`] — packet structure and preamble timing (Field 1 mode
//!   signalling, Field 2 localization chirps, payload).

pub mod arq;
pub mod bits;
pub mod crc;
pub mod dense;
pub mod fec;
pub mod frame;
pub mod mac;
pub mod multiframe;
pub mod packet;

pub use arq::{ArqReceiver, ArqSender, SenderAction, SeqBit};
pub use bits::OaqfmSymbol;
pub use dense::{DenseConstellation, DenseSymbol};
pub use frame::{decode_frame, encode_frame, FrameError};
pub use mac::{NodeId, PollSchedule, PollSlot};
pub use packet::{LinkMode, Packet, PacketConfig};
