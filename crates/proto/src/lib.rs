//! # milback-proto
//!
//! Link-layer protocol for MilBack (paper §7):
//!
//! * [`arq`] — stop-and-wait reliable delivery over the CRC frames,
//! * [`bits`] — bit utilities and the OAQFM symbol alphabet,
//! * [`crc`] — CRC-16/CCITT-FALSE frame protection,
//! * [`dense`] — multi-amplitude "dense OAQFM" constellations (§9.4),
//! * [`fec`] — Hamming(7,4) forward error correction,
//! * [`frame`] — payload ↔ symbol-stream framing,
//! * [`mac`] — a polling MAC for multi-node deployments,
//! * [`multiframe`] — fragmentation/reassembly for large messages,
//! * [`packet`] — packet structure and preamble timing (Field 1 mode
//!   signalling, Field 2 localization chirps, payload).
//!
//! ## Place in the paper's architecture
//!
//! §7 specifies MilBack's packet: Field 1 signals direction by chirp
//! count, Field 2 carries the localization chirps, then the payload
//! flows whichever way Field 1 announced. [`packet`] encodes exactly
//! that structure and [`bits`] the 2-bit OAQFM alphabet of §6. The rest
//! is the link-layer machinery a deployment needs where the paper stops:
//! [`crc`] integrity, [`fec`] coding at the range edge, [`arq`]
//! retransmission, [`mac`] polling for the §8 multi-node case and
//! [`dense`] for the §9.4 multi-amplitude extension.
//!
//! ## Telemetry
//!
//! With `MILBACK_TELEMETRY=1` this crate reports `proto.crc.ok`/`fail`,
//! `proto.fec.blocks`/`corrected` and
//! `proto.arq.sent`/`delivered`/`retries`/`giveups` counters through
//! `milback-telemetry`.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod arq;
pub mod bits;
pub mod crc;
pub mod dense;
pub mod fec;
pub mod frame;
pub mod mac;
pub mod multiframe;
pub mod packet;

pub use arq::{ArqReceiver, ArqSender, SenderAction, SeqBit};
pub use bits::OaqfmSymbol;
pub use dense::{DenseConstellation, DenseSymbol};
pub use frame::{decode_frame, encode_frame, FrameError};
pub use mac::{NodeId, PollSchedule, PollSlot};
pub use packet::{LinkMode, Packet, PacketConfig};
