//! Bit-level utilities and the OAQFM symbol alphabet.
//!
//! OAQFM (paper §6.2, Figure 6) encodes two bits per symbol in the
//! presence or absence of two tones: the tone at `f_A` (received by FSA
//! port A) carries the first bit, the tone at `f_B` (port B) the second:
//!
//! | bits | tone at f_A | tone at f_B |
//! |------|-------------|-------------|
//! | 00   | off         | off         |
//! | 01   | off         | on          |
//! | 10   | on          | off         |
//! | 11   | on          | on          |

/// One OAQFM symbol: the on/off state of each tone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OaqfmSymbol {
    /// Tone at `f_A` (port A) present.
    pub a_on: bool,
    /// Tone at `f_B` (port B) present.
    pub b_on: bool,
}

impl OaqfmSymbol {
    /// All four symbols in bit order 00, 01, 10, 11.
    pub const ALL: [OaqfmSymbol; 4] = [
        OaqfmSymbol {
            a_on: false,
            b_on: false,
        },
        OaqfmSymbol {
            a_on: false,
            b_on: true,
        },
        OaqfmSymbol {
            a_on: true,
            b_on: false,
        },
        OaqfmSymbol {
            a_on: true,
            b_on: true,
        },
    ];

    /// Maps a bit pair `(first, second)` to a symbol.
    pub fn from_bits(first: bool, second: bool) -> Self {
        Self {
            a_on: first,
            b_on: second,
        }
    }

    /// Recovers the bit pair `(first, second)`.
    pub fn to_bits(self) -> (bool, bool) {
        (self.a_on, self.b_on)
    }

    /// The symbol index 0–3 (`first·2 + second`).
    pub fn index(self) -> usize {
        (self.a_on as usize) * 2 + self.b_on as usize
    }
}

/// Expands bytes to bits, most-significant bit first.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            bits.push((b >> i) & 1 == 1);
        }
    }
    bits
}

/// Packs bits back to bytes (MSB first). The bit count must be a multiple
/// of 8.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    assert!(
        bits.len().is_multiple_of(8),
        "bit count must be a multiple of 8"
    );
    bits.chunks(8)
        .map(|chunk| {
            chunk
                .iter()
                .fold(0u8, |acc, &bit| (acc << 1) | u8::from(bit))
        })
        .collect()
}

/// Maps a bit stream to OAQFM symbols, two bits per symbol. An odd
/// trailing bit is padded with 0.
pub fn bits_to_symbols(bits: &[bool]) -> Vec<OaqfmSymbol> {
    let mut symbols = Vec::with_capacity(bits.len().div_ceil(2));
    let mut it = bits.iter();
    while let Some(&first) = it.next() {
        let second = it.next().copied().unwrap_or(false);
        symbols.push(OaqfmSymbol::from_bits(first, second));
    }
    symbols
}

/// Recovers the bit stream from OAQFM symbols (always an even count).
pub fn symbols_to_bits(symbols: &[OaqfmSymbol]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(symbols.len() * 2);
    for s in symbols {
        let (a, b) = s.to_bits();
        bits.push(a);
        bits.push(b);
    }
    bits
}

/// Allocation-free [`bytes_to_bits`]: clears and refills `out`.
pub fn bytes_to_bits_into(bytes: &[u8], out: &mut Vec<bool>) {
    out.clear();
    out.reserve(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            out.push((b >> i) & 1 == 1);
        }
    }
}

/// Allocation-free [`bits_to_bytes`]: clears and refills `out`.
///
/// # Panics
/// Panics if the bit count is not a multiple of 8.
pub fn bits_to_bytes_into(bits: &[bool], out: &mut Vec<u8>) {
    assert!(
        bits.len().is_multiple_of(8),
        "bit count must be a multiple of 8"
    );
    out.clear();
    out.reserve(bits.len() / 8);
    out.extend(bits.chunks(8).map(|chunk| {
        chunk
            .iter()
            .fold(0u8, |acc, &bit| (acc << 1) | u8::from(bit))
    }));
}

/// Allocation-free [`bits_to_symbols`]: clears and refills `out`,
/// reusing its capacity (the link layer's pooled symbol buffers).
pub fn bits_to_symbols_into(bits: &[bool], out: &mut Vec<OaqfmSymbol>) {
    out.clear();
    out.reserve(bits.len().div_ceil(2));
    let mut it = bits.iter();
    while let Some(&first) = it.next() {
        let second = it.next().copied().unwrap_or(false);
        out.push(OaqfmSymbol::from_bits(first, second));
    }
}

/// Allocation-free [`symbols_to_bits`]: clears and refills `out`,
/// reusing its capacity.
pub fn symbols_to_bits_into(symbols: &[OaqfmSymbol], out: &mut Vec<bool>) {
    out.clear();
    out.reserve(symbols.len() * 2);
    for s in symbols {
        let (a, b) = s.to_bits();
        out.push(a);
        out.push(b);
    }
}

/// Counts bit errors between two equal-length bit slices.
pub fn bit_errors(a: &[bool], b: &[bool]) -> usize {
    assert_eq!(a.len(), b.len(), "length mismatch in bit_errors");
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_table_matches_paper() {
        // "01" → tone at f_B only; "10" → tone at f_A only (paper Fig. 6).
        let s01 = OaqfmSymbol::from_bits(false, true);
        assert!(!s01.a_on && s01.b_on);
        let s10 = OaqfmSymbol::from_bits(true, false);
        assert!(s10.a_on && !s10.b_on);
        let s11 = OaqfmSymbol::from_bits(true, true);
        assert!(s11.a_on && s11.b_on);
        let s00 = OaqfmSymbol::from_bits(false, false);
        assert!(!s00.a_on && !s00.b_on);
    }

    #[test]
    fn symbol_index_ordering() {
        for (i, s) in OaqfmSymbol::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn byte_bit_round_trip() {
        let bytes = vec![0x00, 0xFF, 0xA5, 0x3C, 0x01];
        let bits = bytes_to_bits(&bytes);
        assert_eq!(bits.len(), 40);
        assert_eq!(bits_to_bytes(&bits), bytes);
    }

    #[test]
    fn msb_first_order() {
        let bits = bytes_to_bits(&[0b1000_0001]);
        assert!(bits[0]);
        assert!(!bits[1]);
        assert!(bits[7]);
    }

    #[test]
    fn bits_symbols_round_trip() {
        let bits = bytes_to_bits(&[0xDE, 0xAD, 0xBE, 0xEF]);
        let symbols = bits_to_symbols(&bits);
        assert_eq!(symbols.len(), 16);
        assert_eq!(symbols_to_bits(&symbols), bits);
    }

    #[test]
    fn odd_bit_count_pads() {
        let bits = [true, false, true];
        let symbols = bits_to_symbols(&bits);
        assert_eq!(symbols.len(), 2);
        assert_eq!(symbols[1], OaqfmSymbol::from_bits(true, false));
    }

    #[test]
    fn bit_error_count() {
        let a = [true, false, true, true];
        let b = [true, true, true, false];
        assert_eq!(bit_errors(&a, &b), 2);
        assert_eq!(bit_errors(&a, &a), 0);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn bits_to_bytes_requires_whole_bytes() {
        bits_to_bytes(&[true, false, true]);
    }
}
