//! Dense OAQFM: multi-amplitude constellations (paper §9.4's proposed
//! extension — "define denser OAQFM modulation schemes, where each symbol
//! represents more bits by considering different amplitudes for each tone
//! of OAQFM").
//!
//! With `L` amplitude levels per tone (level 0 = off), each tone carries
//! `log2(L)` bits and a symbol carries `2·log2(L)`. Standard OAQFM is the
//! `L = 2` special case.

/// A dense OAQFM symbol: one amplitude level per tone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DenseSymbol {
    /// Level index on the `f_A` tone, `0..levels`.
    pub a_level: u8,
    /// Level index on the `f_B` tone, `0..levels`.
    pub b_level: u8,
}

/// A dense OAQFM constellation with `levels` amplitude steps per tone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseConstellation {
    /// Amplitude levels per tone (must be a power of two ≥ 2).
    pub levels: u8,
}

impl DenseConstellation {
    /// Creates a constellation. `levels` must be a power of two in 2..=16.
    pub fn new(levels: u8) -> Self {
        assert!(
            levels.is_power_of_two() && (2..=16).contains(&levels),
            "levels must be a power of two in 2..=16, got {levels}"
        );
        Self { levels }
    }

    /// Classic OAQFM: on/off per tone.
    pub fn classic() -> Self {
        Self::new(2)
    }

    /// Bits carried per tone: `log2(levels)`.
    pub fn bits_per_tone(&self) -> usize {
        self.levels.trailing_zeros() as usize
    }

    /// Bits carried per symbol (two tones).
    pub fn bits_per_symbol(&self) -> usize {
        2 * self.bits_per_tone()
    }

    /// Normalized amplitude of level `l`: evenly spaced in voltage,
    /// `l / (levels−1)`, so the top level is full scale and level 0 is
    /// off (the tag can only reflect, attenuate or absorb — negative
    /// amplitudes are not available to a backscatter node).
    pub fn amplitude(&self, level: u8) -> f64 {
        assert!(level < self.levels, "level {level} out of range");
        level as f64 / (self.levels - 1) as f64
    }

    /// Maps a bit group (LSB-first order within the group) to a level.
    /// The bit group is interpreted as a Gray codeword, so adjacent
    /// amplitude levels differ in exactly one bit.
    pub fn bits_to_level(&self, bits: &[bool]) -> u8 {
        assert_eq!(bits.len(), self.bits_per_tone(), "bit-group size mismatch");
        let mut gray = 0u8;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                gray |= 1 << i;
            }
        }
        // Gray → binary: fold the shifted prefix XORs.
        let mut level = gray;
        let mut mask = gray >> 1;
        while mask != 0 {
            level ^= mask;
            mask >>= 1;
        }
        level % self.levels
    }

    /// Inverse of [`Self::bits_to_level`].
    pub fn level_to_bits(&self, level: u8) -> Vec<bool> {
        assert!(level < self.levels, "level {level} out of range");
        let gray = level ^ (level >> 1);
        (0..self.bits_per_tone())
            .map(|i| (gray >> i) & 1 == 1)
            .collect()
    }

    /// Encodes a bit stream into dense symbols. Trailing bits are padded
    /// with zeros to fill the last symbol.
    pub fn encode(&self, bits: &[bool]) -> Vec<DenseSymbol> {
        let bpt = self.bits_per_tone();
        let bps = self.bits_per_symbol();
        let n_symbols = bits.len().div_ceil(bps);
        let mut padded = bits.to_vec();
        padded.resize(n_symbols * bps, false);
        padded
            .chunks(bps)
            .map(|chunk| DenseSymbol {
                a_level: self.bits_to_level(&chunk[..bpt]),
                b_level: self.bits_to_level(&chunk[bpt..]),
            })
            .collect()
    }

    /// Decodes dense symbols back to bits.
    pub fn decode(&self, symbols: &[DenseSymbol]) -> Vec<bool> {
        let mut bits = Vec::with_capacity(symbols.len() * self.bits_per_symbol());
        for s in symbols {
            bits.extend(self.level_to_bits(s.a_level));
            bits.extend(self.level_to_bits(s.b_level));
        }
        bits
    }

    /// Slices a measured (normalized, 0..1) amplitude to the nearest
    /// level.
    pub fn slice(&self, normalized: f64) -> u8 {
        let l = (normalized * (self.levels - 1) as f64).round();
        l.clamp(0.0, (self.levels - 1) as f64) as u8
    }

    /// Minimum normalized distance between adjacent decision levels —
    /// the noise margin shrinks as `1/(levels−1)`, which is the SNR cost
    /// of density.
    pub fn level_spacing(&self) -> f64 {
        1.0 / (self.levels - 1) as f64
    }

    /// Extra SNR (dB) needed relative to classic OAQFM for the same
    /// symbol error behaviour: the decision margin shrinks from 1 to
    /// `1/(levels−1)`, costing `20·log10(levels−1)` dB.
    pub fn snr_penalty_db(&self) -> f64 {
        20.0 * ((self.levels - 1) as f64).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_is_two_levels() {
        let c = DenseConstellation::classic();
        assert_eq!(c.bits_per_symbol(), 2);
        assert_eq!(c.amplitude(0), 0.0);
        assert_eq!(c.amplitude(1), 1.0);
        assert_eq!(c.snr_penalty_db(), 0.0);
    }

    #[test]
    fn four_level_doubles_bits() {
        let c = DenseConstellation::new(4);
        assert_eq!(c.bits_per_symbol(), 4);
        assert_eq!(c.amplitude(3), 1.0);
        assert!((c.amplitude(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.snr_penalty_db() - 9.54).abs() < 0.01);
    }

    #[test]
    fn gray_coding_adjacent_levels_differ_one_bit() {
        for levels in [2u8, 4, 8, 16] {
            let c = DenseConstellation::new(levels);
            for l in 0..levels - 1 {
                let a = c.level_to_bits(l);
                let b = c.level_to_bits(l + 1);
                let diff = a.iter().zip(&b).filter(|(x, y)| x != y).count();
                assert_eq!(diff, 1, "levels {l}/{} differ by {diff} bits", l + 1);
            }
        }
    }

    #[test]
    fn bits_level_round_trip() {
        for levels in [2u8, 4, 8, 16] {
            let c = DenseConstellation::new(levels);
            for l in 0..levels {
                let bits = c.level_to_bits(l);
                assert_eq!(c.bits_to_level(&bits), l, "levels={levels} l={l}");
            }
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let c = DenseConstellation::new(4);
        let bits: Vec<bool> = (0..64).map(|i| (i * 7) % 3 == 0).collect();
        let symbols = c.encode(&bits);
        assert_eq!(symbols.len(), 16);
        let back = c.decode(&symbols);
        assert_eq!(&back[..64], &bits[..]);
    }

    #[test]
    fn padding_fills_last_symbol() {
        let c = DenseConstellation::new(4);
        let bits = [true, false, true]; // 3 bits, symbol carries 4
        let symbols = c.encode(&bits);
        assert_eq!(symbols.len(), 1);
        let back = c.decode(&symbols);
        assert_eq!(&back[..3], &bits[..]);
        assert!(!back[3]);
    }

    #[test]
    fn slicing_nearest_level() {
        let c = DenseConstellation::new(4);
        assert_eq!(c.slice(0.0), 0);
        assert_eq!(c.slice(0.3), 1);
        assert_eq!(c.slice(0.7), 2);
        assert_eq!(c.slice(1.0), 3);
        assert_eq!(c.slice(1.4), 3); // clamped
        assert_eq!(c.slice(-0.2), 0);
    }

    #[test]
    fn spacing_shrinks_with_levels() {
        assert_eq!(DenseConstellation::new(2).level_spacing(), 1.0);
        assert!((DenseConstellation::new(8).level_spacing() - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        DenseConstellation::new(3);
    }
}
