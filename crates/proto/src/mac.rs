//! A simple polling MAC for multi-node MilBack networks (paper §7 closes
//! with SDM multi-node support; someone still has to decide *when* each
//! node is served — this module is that scheduler).
//!
//! The AP owns the medium: it steers its beams at one node at a time and
//! runs a full packet (preamble + payload) with it. Nodes never contend;
//! a node knows it is being addressed because the AP's beams (and the
//! preamble chirps) are pointed at it, and all other nodes see only
//! side-lobe energy below their detection floor.

use crate::packet::{LinkMode, PacketConfig};

/// Identifies a node within a MAC schedule.
pub type NodeId = usize;

/// One entry of a polling schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollSlot {
    /// Which node is served.
    pub node: NodeId,
    /// Payload direction for this slot.
    pub mode: LinkMode,
}

/// A static round-robin polling schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PollSchedule {
    slots: Vec<PollSlot>,
}

impl PollSchedule {
    /// Builds a schedule from explicit slots.
    pub fn new(slots: Vec<PollSlot>) -> Self {
        assert!(!slots.is_empty(), "schedule needs at least one slot");
        Self { slots }
    }

    /// Round-robin uplink polling of `n_nodes` nodes (the common telemetry
    /// pattern: every node reports once per round).
    pub fn round_robin_uplink(n_nodes: usize) -> Self {
        assert!(n_nodes > 0, "need at least one node");
        Self::new(
            (0..n_nodes)
                .map(|node| PollSlot {
                    node,
                    mode: LinkMode::Uplink,
                })
                .collect(),
        )
    }

    /// A command-and-report round: downlink then uplink per node.
    pub fn command_and_report(n_nodes: usize) -> Self {
        assert!(n_nodes > 0, "need at least one node");
        let mut slots = Vec::with_capacity(2 * n_nodes);
        for node in 0..n_nodes {
            slots.push(PollSlot {
                node,
                mode: LinkMode::Downlink,
            });
            slots.push(PollSlot {
                node,
                mode: LinkMode::Uplink,
            });
        }
        Self::new(slots)
    }

    /// The slots of one round, in order.
    pub fn slots(&self) -> &[PollSlot] {
        &self.slots
    }

    /// Number of slots per round.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the schedule is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot served at absolute slot index `k` (wraps around rounds).
    pub fn slot_at(&self, k: usize) -> PollSlot {
        self.slots[k % self.slots.len()]
    }

    /// Airtime window `[start, end)` of absolute slot index `k`,
    /// seconds from the start of the schedule: slots are laid out
    /// back-to-back at a fixed pitch of `total_duration + overhead`, and
    /// the window covers only the on-air packet (the steering overhead
    /// trails it as a guard). Consecutive windows are disjoint by
    /// construction — the invariant the dense-network fabric's slotted
    /// rounds inherit.
    ///
    /// ```
    /// use milback_proto::mac::PollSchedule;
    /// use milback_proto::packet::PacketConfig;
    ///
    /// let s = PollSchedule::round_robin_uplink(3);
    /// let pkt = PacketConfig::milback();
    /// let (a0, a1) = s.slot_window(0, &pkt, 1e-3);
    /// let (b0, _b1) = s.slot_window(1, &pkt, 1e-3);
    /// assert_eq!(a0, 0.0);
    /// assert!(a1 <= b0, "adjacent slots must not overlap");
    /// ```
    pub fn slot_window(&self, k: usize, pkt: &PacketConfig, steering_overhead: f64) -> (f64, f64) {
        let pitch = pkt.total_duration() + steering_overhead;
        let start = k as f64 * pitch;
        (start, start + pkt.total_duration())
    }

    /// Duration of one full round given the packet configuration plus a
    /// per-slot beam-steering overhead, seconds.
    pub fn round_duration(&self, pkt: &PacketConfig, steering_overhead: f64) -> f64 {
        self.slots.len() as f64 * (pkt.total_duration() + steering_overhead)
    }

    /// Per-node uplink throughput under this schedule, bits/s: the raw
    /// payload bits a node moves per round divided by the round duration.
    pub fn per_node_uplink_throughput(
        &self,
        node: NodeId,
        pkt: &PacketConfig,
        steering_overhead: f64,
    ) -> f64 {
        let uplink_slots = self
            .slots
            .iter()
            .filter(|s| s.node == node && s.mode == LinkMode::Uplink)
            .count();
        let bits = (uplink_slots * pkt.payload_bytes * 8) as f64;
        bits / self.round_duration(pkt, steering_overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_every_node_once() {
        let s = PollSchedule::round_robin_uplink(4);
        assert_eq!(s.len(), 4);
        for (k, slot) in s.slots().iter().enumerate() {
            assert_eq!(slot.node, k);
            assert_eq!(slot.mode, LinkMode::Uplink);
        }
    }

    #[test]
    fn command_and_report_alternates() {
        let s = PollSchedule::command_and_report(2);
        assert_eq!(s.len(), 4);
        assert_eq!(
            s.slot_at(0),
            PollSlot {
                node: 0,
                mode: LinkMode::Downlink
            }
        );
        assert_eq!(
            s.slot_at(1),
            PollSlot {
                node: 0,
                mode: LinkMode::Uplink
            }
        );
        assert_eq!(
            s.slot_at(2),
            PollSlot {
                node: 1,
                mode: LinkMode::Downlink
            }
        );
        assert_eq!(
            s.slot_at(3),
            PollSlot {
                node: 1,
                mode: LinkMode::Uplink
            }
        );
    }

    #[test]
    fn slot_indexing_wraps() {
        let s = PollSchedule::round_robin_uplink(3);
        assert_eq!(s.slot_at(7).node, 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn slot_windows_are_disjoint_and_ordered() {
        let pkt = PacketConfig::milback();
        let s = PollSchedule::round_robin_uplink(4);
        let overhead = 1e-3;
        for k in 0..12 {
            let (start, end) = s.slot_window(k, &pkt, overhead);
            assert!(end > start, "slot {k} has no airtime");
            assert!((end - start - pkt.total_duration()).abs() < 1e-12);
            let (next_start, _) = s.slot_window(k + 1, &pkt, overhead);
            assert!(
                next_start >= end + overhead - 1e-12,
                "slot {k} bleeds into slot {}",
                k + 1
            );
        }
        // A full round of windows spans exactly round_duration.
        let (last_start, _) = s.slot_window(s.len(), &pkt, overhead);
        assert!((last_start - s.round_duration(&pkt, overhead)).abs() < 1e-12);
    }

    #[test]
    fn round_duration_scales_with_nodes() {
        let pkt = PacketConfig::milback();
        let s2 = PollSchedule::round_robin_uplink(2);
        let s6 = PollSchedule::round_robin_uplink(6);
        let d2 = s2.round_duration(&pkt, 1e-3);
        let d6 = s6.round_duration(&pkt, 1e-3);
        assert!((d6 / d2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_splits_across_nodes() {
        let pkt = PacketConfig::milback();
        let s1 = PollSchedule::round_robin_uplink(1);
        let s4 = PollSchedule::round_robin_uplink(4);
        let t1 = s1.per_node_uplink_throughput(0, &pkt, 0.0);
        let t4 = s4.per_node_uplink_throughput(0, &pkt, 0.0);
        assert!((t1 / t4 - 4.0).abs() < 1e-9);
        // A node absent from the schedule moves nothing.
        assert_eq!(s4.per_node_uplink_throughput(9, &pkt, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn empty_schedule_rejected() {
        PollSchedule::new(vec![]);
    }
}
