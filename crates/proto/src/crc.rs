//! CRC-16/CCITT-FALSE error detection for payload frames.
//!
//! The paper's payload format is not specified beyond "a payload which is
//! used either for uplink or downlink" (§7); a 16-bit CRC is the standard
//! choice at these frame sizes and lets the integration tests verify
//! end-to-end integrity.

/// CRC-16/CCITT-FALSE: polynomial 0x1021, initial value 0xFFFF, no
/// reflection, no final XOR. Check value for `"123456789"` is `0x29B1`.
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Appends the big-endian CRC of `data` to a copy of it.
pub fn append_crc(data: &[u8]) -> Vec<u8> {
    let crc = crc16_ccitt(data);
    let mut out = data.to_vec();
    out.push((crc >> 8) as u8);
    out.push((crc & 0xFF) as u8);
    out
}

/// Verifies and strips a trailing CRC. Returns the payload on success.
pub fn check_crc(framed: &[u8]) -> Option<&[u8]> {
    if framed.len() < 2 {
        return None;
    }
    let (payload, tail) = framed.split_at(framed.len() - 2);
    let expect = ((tail[0] as u16) << 8) | tail[1] as u16;
    if crc16_ccitt(payload) == expect {
        milback_telemetry::counter_add("proto.crc.ok", 1);
        Some(payload)
    } else {
        milback_telemetry::counter_add("proto.crc.fail", 1);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc16_ccitt(&[]), 0xFFFF);
    }

    #[test]
    fn single_byte_vectors() {
        // Independently computed vectors for CRC-16/CCITT-FALSE.
        assert_eq!(crc16_ccitt(&[0x00]), 0xE1F0);
        assert_eq!(crc16_ccitt(&[0xFF]), 0xFF00);
    }

    #[test]
    fn append_and_check_round_trip() {
        let data = b"milback payload";
        let framed = append_crc(data);
        assert_eq!(framed.len(), data.len() + 2);
        assert_eq!(check_crc(&framed), Some(&data[..]));
    }

    #[test]
    fn detects_single_bit_flip() {
        let framed = append_crc(b"hello world");
        for i in 0..framed.len() {
            for bit in 0..8 {
                let mut corrupted = framed.clone();
                corrupted[i] ^= 1 << bit;
                assert_eq!(check_crc(&corrupted), None, "missed flip at {i}:{bit}");
            }
        }
    }

    #[test]
    fn detects_all_double_bit_flips_in_short_frame() {
        let framed = append_crc(&[0x42, 0x17]);
        let nbits = framed.len() * 8;
        for i in 0..nbits {
            for j in i + 1..nbits {
                let mut c = framed.clone();
                c[i / 8] ^= 1 << (i % 8);
                c[j / 8] ^= 1 << (j % 8);
                assert_eq!(check_crc(&c), None, "missed double flip {i},{j}");
            }
        }
    }

    #[test]
    fn too_short_frame_rejected() {
        assert_eq!(check_crc(&[0x01]), None);
        assert_eq!(check_crc(&[]), None);
    }

    #[test]
    fn empty_payload_frame() {
        let framed = append_crc(&[]);
        assert_eq!(check_crc(&framed), Some(&[][..]));
    }
}
