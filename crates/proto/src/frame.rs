//! Payload framing: bytes → CRC-protected OAQFM symbol stream and back.
//!
//! The frame layout is `payload ‖ CRC-16`; the payload length is
//! pre-agreed between AP and node (paper §7: "the length of the payload is
//! predefined for both AP and the nodes"), so no length field is needed.

use crate::bits::{bits_to_bytes, bits_to_symbols, bytes_to_bits, symbols_to_bits, OaqfmSymbol};
use crate::crc::{append_crc, check_crc};

/// Errors produced when decoding a received frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The symbol count does not match the pre-agreed payload length.
    LengthMismatch {
        /// Symbols expected for the agreed payload length.
        expected: usize,
        /// Symbols actually received.
        got: usize,
    },
    /// The CRC check failed — the payload was corrupted in flight.
    CrcMismatch,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "frame length mismatch: expected {expected} symbols, got {got}"
                )
            }
            FrameError::CrcMismatch => write!(f, "frame CRC mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Number of OAQFM symbols a frame of `payload_bytes` occupies
/// (payload + 2 CRC bytes, 2 bits per symbol).
pub fn frame_symbols(payload_bytes: usize) -> usize {
    (payload_bytes + 2) * 4
}

/// Encodes payload bytes into an OAQFM symbol stream with a CRC-16
/// trailer.
pub fn encode_frame(payload: &[u8]) -> Vec<OaqfmSymbol> {
    let framed = append_crc(payload);
    bits_to_symbols(&bytes_to_bits(&framed))
}

/// Decodes an OAQFM symbol stream back into payload bytes, verifying
/// length and CRC.
pub fn decode_frame(symbols: &[OaqfmSymbol], payload_bytes: usize) -> Result<Vec<u8>, FrameError> {
    let expected = frame_symbols(payload_bytes);
    if symbols.len() != expected {
        return Err(FrameError::LengthMismatch {
            expected,
            got: symbols.len(),
        });
    }
    let bits = symbols_to_bits(symbols);
    let bytes = bits_to_bytes(&bits);
    check_crc(&bytes)
        .map(|p| p.to_vec())
        .ok_or(FrameError::CrcMismatch)
}

/// Reusable intermediate buffers for the frame codec, so repeated
/// transfers (the link layer's steady state) encode and decode without
/// heap allocation beyond the decoded payload itself.
#[derive(Debug, Default, Clone)]
pub struct FrameScratch {
    bytes: Vec<u8>,
    bits: Vec<bool>,
}

/// Allocation-free (steady-state) [`encode_frame`]: the CRC trailer and
/// bit expansion run in `scratch`, symbols land in `out`. Produces the
/// same symbol stream as [`encode_frame`].
pub fn encode_frame_into(payload: &[u8], scratch: &mut FrameScratch, out: &mut Vec<OaqfmSymbol>) {
    scratch.bytes.clear();
    scratch.bytes.reserve(payload.len() + 2);
    scratch.bytes.extend_from_slice(payload);
    let crc = crate::crc::crc16_ccitt(payload);
    scratch.bytes.push((crc >> 8) as u8);
    scratch.bytes.push((crc & 0xFF) as u8);
    crate::bits::bytes_to_bits_into(&scratch.bytes, &mut scratch.bits);
    crate::bits::bits_to_symbols_into(&scratch.bits, out);
}

/// [`decode_frame`] against caller-owned intermediate buffers. The only
/// allocation on success is the returned payload `Vec` itself — an
/// owned deliverable the caller keeps.
pub fn decode_frame_with(
    scratch: &mut FrameScratch,
    symbols: &[OaqfmSymbol],
    payload_bytes: usize,
) -> Result<Vec<u8>, FrameError> {
    let expected = frame_symbols(payload_bytes);
    if symbols.len() != expected {
        return Err(FrameError::LengthMismatch {
            expected,
            got: symbols.len(),
        });
    }
    crate::bits::symbols_to_bits_into(symbols, &mut scratch.bits);
    crate::bits::bits_to_bytes_into(&scratch.bits, &mut scratch.bytes);
    check_crc(&scratch.bytes)
        .map(|p| p.to_vec())
        .ok_or(FrameError::CrcMismatch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let payload: Vec<u8> = (0..32).collect();
        let symbols = encode_frame(&payload);
        assert_eq!(symbols.len(), frame_symbols(32));
        let decoded = decode_frame(&symbols, 32).unwrap();
        assert_eq!(decoded, payload);
    }

    #[test]
    fn empty_payload_round_trip() {
        let symbols = encode_frame(&[]);
        assert_eq!(symbols.len(), 8); // 2 CRC bytes = 16 bits = 8 symbols
        assert_eq!(decode_frame(&symbols, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn corrupted_symbol_fails_crc() {
        let payload = vec![0xAA; 16];
        let mut symbols = encode_frame(&payload);
        symbols[5] = OaqfmSymbol::from_bits(!symbols[5].a_on, symbols[5].b_on);
        assert_eq!(decode_frame(&symbols, 16), Err(FrameError::CrcMismatch));
    }

    #[test]
    fn wrong_length_detected() {
        let symbols = encode_frame(&[1, 2, 3]);
        let err = decode_frame(&symbols, 8).unwrap_err();
        assert!(matches!(err, FrameError::LengthMismatch { .. }));
    }

    #[test]
    fn error_display() {
        let e = FrameError::CrcMismatch;
        assert!(e.to_string().contains("CRC"));
        let e = FrameError::LengthMismatch {
            expected: 10,
            got: 4,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn symbol_count_formula() {
        assert_eq!(frame_symbols(0), 8);
        assert_eq!(frame_symbols(32), 136);
    }
}
