//! Stop-and-wait ARQ on top of the CRC-protected frames.
//!
//! The paper's payload layer detects corruption (our CRC) but does not
//! specify recovery. This module adds the minimal reliable-delivery layer
//! a deployment needs: 1-bit sequence numbers, acknowledgements and
//! bounded retransmission — stop-and-wait, because the MilBack medium is
//! half-duplex by construction (the AP owns the query signal).

/// 1-bit sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqBit {
    /// Sequence 0.
    Zero,
    /// Sequence 1.
    One,
}

impl SeqBit {
    /// The alternate sequence value.
    pub fn toggled(self) -> Self {
        match self {
            SeqBit::Zero => SeqBit::One,
            SeqBit::One => SeqBit::Zero,
        }
    }

    /// Header byte encoding of this sequence bit.
    fn to_byte(self) -> u8 {
        match self {
            SeqBit::Zero => 0xA0,
            SeqBit::One => 0xA1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0xA0 => Some(SeqBit::Zero),
            0xA1 => Some(SeqBit::One),
            _ => None,
        }
    }
}

/// Prepends the ARQ header (sequence bit) to a payload; the result is
/// what gets framed and transmitted.
pub fn with_header(seq: SeqBit, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 1);
    out.push(seq.to_byte());
    out.extend_from_slice(payload);
    out
}

/// Splits a received (CRC-valid) frame into its ARQ header and payload.
/// Returns `None` for an unrecognized header.
pub fn parse_header(frame: &[u8]) -> Option<(SeqBit, &[u8])> {
    let (&head, rest) = frame.split_first()?;
    Some((SeqBit::from_byte(head)?, rest))
}

/// Sender-side stop-and-wait state machine.
#[derive(Debug, Clone)]
pub struct ArqSender {
    seq: SeqBit,
    /// Maximum transmissions per payload (1 original + retries).
    pub max_attempts: usize,
    attempts: usize,
    in_flight: Option<Vec<u8>>,
}

/// What the sender should do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SenderAction {
    /// Transmit this frame (header already attached).
    Transmit(Vec<u8>),
    /// The in-flight payload was delivered; ready for the next one.
    Delivered,
    /// Retry budget exhausted; the payload is dropped.
    GiveUp,
}

impl Default for ArqSender {
    fn default() -> Self {
        Self::new(4)
    }
}

impl ArqSender {
    /// Creates a sender allowing `max_attempts` transmissions per payload.
    pub fn new(max_attempts: usize) -> Self {
        assert!(max_attempts >= 1, "need at least one attempt");
        Self {
            seq: SeqBit::Zero,
            max_attempts,
            attempts: 0,
            in_flight: None,
        }
    }

    /// Whether the sender is idle (no payload awaiting acknowledgement).
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none()
    }

    /// Queues a payload; returns the first frame to transmit.
    ///
    /// # Panics
    /// Panics if a payload is already in flight.
    pub fn send(&mut self, payload: &[u8]) -> Vec<u8> {
        assert!(self.is_idle(), "previous payload still in flight");
        let frame = with_header(self.seq, payload);
        self.in_flight = Some(frame.clone());
        self.attempts = 1;
        milback_telemetry::counter_add("proto.arq.sent", 1);
        frame
    }

    /// Processes the outcome of the last transmission: `acked_seq` is the
    /// sequence bit the receiver acknowledged (`None` = no/garbled ACK).
    pub fn on_ack(&mut self, acked_seq: Option<SeqBit>) -> SenderAction {
        let Some(frame) = &self.in_flight else {
            return SenderAction::Delivered;
        };
        if acked_seq == Some(self.seq) {
            self.in_flight = None;
            self.seq = self.seq.toggled();
            milback_telemetry::counter_add("proto.arq.delivered", 1);
            return SenderAction::Delivered;
        }
        if self.attempts >= self.max_attempts {
            self.in_flight = None;
            self.seq = self.seq.toggled();
            milback_telemetry::counter_add("proto.arq.giveups", 1);
            return SenderAction::GiveUp;
        }
        self.attempts += 1;
        milback_telemetry::counter_add("proto.arq.retries", 1);
        SenderAction::Transmit(frame.clone())
    }
}

/// Receiver-side stop-and-wait state: filters duplicates and produces the
/// ACK to return.
#[derive(Debug, Clone, Default)]
pub struct ArqReceiver {
    last_accepted: Option<SeqBit>,
}

impl ArqReceiver {
    /// Creates a fresh receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes a CRC-valid incoming frame. Returns `(ack, payload)`:
    /// `ack` is the sequence bit to acknowledge, and `payload` is `Some`
    /// only for first-time (non-duplicate) deliveries.
    pub fn on_frame<'a>(&mut self, frame: &'a [u8]) -> Option<(SeqBit, Option<&'a [u8]>)> {
        let (seq, payload) = parse_header(frame)?;
        if self.last_accepted == Some(seq) {
            // Duplicate: re-ACK, do not deliver again.
            return Some((seq, None));
        }
        self.last_accepted = Some(seq);
        Some((seq, Some(payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let framed = with_header(SeqBit::One, b"abc");
        let (seq, payload) = parse_header(&framed).unwrap();
        assert_eq!(seq, SeqBit::One);
        assert_eq!(payload, b"abc");
        assert!(parse_header(&[0x55, 1, 2]).is_none());
        assert!(parse_header(&[]).is_none());
    }

    #[test]
    fn clean_delivery_advances_sequence() {
        let mut tx = ArqSender::new(3);
        let mut rx = ArqReceiver::new();
        for round in 0..4u8 {
            let frame = tx.send(&[round]);
            let (ack, delivered) = rx.on_frame(&frame).unwrap();
            assert_eq!(delivered, Some(&[round][..]), "round {round}");
            assert_eq!(tx.on_ack(Some(ack)), SenderAction::Delivered);
            assert!(tx.is_idle());
        }
    }

    #[test]
    fn lost_frame_is_retransmitted() {
        let mut tx = ArqSender::new(3);
        let mut rx = ArqReceiver::new();
        let frame = tx.send(b"data");
        // Frame lost: no ACK.
        let action = tx.on_ack(None);
        let SenderAction::Transmit(retry) = action else {
            panic!("expected retransmission, got {action:?}");
        };
        assert_eq!(retry, frame);
        // Retry arrives.
        let (ack, delivered) = rx.on_frame(&retry).unwrap();
        assert_eq!(delivered, Some(&b"data"[..]));
        assert_eq!(tx.on_ack(Some(ack)), SenderAction::Delivered);
    }

    #[test]
    fn lost_ack_causes_duplicate_which_is_filtered() {
        let mut tx = ArqSender::new(3);
        let mut rx = ArqReceiver::new();
        let frame = tx.send(b"once");
        // Frame arrives, ACK lost.
        let (_ack, delivered) = rx.on_frame(&frame).unwrap();
        assert_eq!(delivered, Some(&b"once"[..]));
        let SenderAction::Transmit(retry) = tx.on_ack(None) else {
            panic!("expected retry");
        };
        // Duplicate arrives: re-ACKed but NOT delivered twice.
        let (ack2, delivered2) = rx.on_frame(&retry).unwrap();
        assert_eq!(delivered2, None, "duplicate delivered");
        assert_eq!(tx.on_ack(Some(ack2)), SenderAction::Delivered);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let mut tx = ArqSender::new(2);
        let _ = tx.send(b"x");
        assert!(matches!(tx.on_ack(None), SenderAction::Transmit(_)));
        assert_eq!(tx.on_ack(None), SenderAction::GiveUp);
        assert!(tx.is_idle());
        // Sequence still advances so the next payload isn't mistaken for a
        // duplicate of the dropped one.
        let next = tx.send(b"y");
        assert_eq!(parse_header(&next).unwrap().0, SeqBit::One);
    }

    #[test]
    fn wrong_seq_ack_is_ignored() {
        let mut tx = ArqSender::new(3);
        let _ = tx.send(b"x");
        // ACK for the other sequence: treated as no ACK.
        assert!(matches!(
            tx.on_ack(Some(SeqBit::One)),
            SenderAction::Transmit(_)
        ));
    }

    #[test]
    #[should_panic(expected = "still in flight")]
    fn cannot_send_while_in_flight() {
        let mut tx = ArqSender::new(3);
        let _ = tx.send(b"a");
        let _ = tx.send(b"b");
    }
}
