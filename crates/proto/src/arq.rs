//! Stop-and-wait ARQ on top of the CRC-protected frames.
//!
//! The paper's payload layer detects corruption (our CRC) but does not
//! specify recovery. This module adds the minimal reliable-delivery layer
//! a deployment needs: 1-bit sequence numbers, acknowledgements and
//! bounded retransmission — stop-and-wait, because the MilBack medium is
//! half-duplex by construction (the AP owns the query signal).

/// 1-bit sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqBit {
    /// Sequence 0.
    Zero,
    /// Sequence 1.
    One,
}

impl SeqBit {
    /// The alternate sequence value.
    pub fn toggled(self) -> Self {
        match self {
            SeqBit::Zero => SeqBit::One,
            SeqBit::One => SeqBit::Zero,
        }
    }

    /// Header byte encoding of this sequence bit.
    fn to_byte(self) -> u8 {
        match self {
            SeqBit::Zero => 0xA0,
            SeqBit::One => 0xA1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0xA0 => Some(SeqBit::Zero),
            0xA1 => Some(SeqBit::One),
            _ => None,
        }
    }
}

/// Prepends the ARQ header (sequence bit) to a payload; the result is
/// what gets framed and transmitted. Allocating wrapper over
/// [`with_header_into`].
pub fn with_header(seq: SeqBit, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 1);
    with_header_into(seq, payload, &mut out);
    out
}

/// Writes the ARQ header + payload into `out` (cleared first). After
/// warm-up the buffer is reused without reallocating, which is what
/// keeps retry loops on the zero-alloc budget of DESIGN.md §12.
pub fn with_header_into(seq: SeqBit, payload: &[u8], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(payload.len() + 1);
    out.push(seq.to_byte());
    out.extend_from_slice(payload);
}

/// Splits a received (CRC-valid) frame into its ARQ header and payload.
/// Returns `None` for an unrecognized header.
pub fn parse_header(frame: &[u8]) -> Option<(SeqBit, &[u8])> {
    let (&head, rest) = frame.split_first()?;
    Some((SeqBit::from_byte(head)?, rest))
}

/// Sender-side stop-and-wait state machine.
#[derive(Debug, Clone)]
pub struct ArqSender {
    seq: SeqBit,
    /// Maximum transmissions per payload (1 original + retries).
    pub max_attempts: usize,
    attempts: usize,
    in_flight: Option<Vec<u8>>,
    /// Retired frame buffer, reused by the next [`Self::start`] so a
    /// steady-state retry loop allocates nothing.
    spare: Option<Vec<u8>>,
}

/// What the sender should do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SenderAction {
    /// Transmit this frame (header already attached).
    Transmit(Vec<u8>),
    /// The in-flight payload was delivered; ready for the next one.
    Delivered,
    /// Retry budget exhausted; the payload is dropped.
    GiveUp,
}

/// Allocation-free variant of [`SenderAction`]: on [`ArqVerdict::Retry`]
/// the caller re-reads the in-flight frame via [`ArqSender::frame`]
/// instead of receiving a clone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArqVerdict {
    /// Retransmit the in-flight frame ([`ArqSender::frame`]).
    Retry,
    /// The in-flight payload was delivered; ready for the next one.
    Delivered,
    /// Retry budget exhausted; the payload is dropped.
    GiveUp,
}

/// Exponential backoff policy shared by the ARQ retry loop and the
/// session supervisor: attempt `k` (1-based) waits
/// `min(base · factor^(k−1), max)` seconds before retrying.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay before the first retry, seconds.
    pub base_s: f64,
    /// Multiplier per subsequent retry.
    pub factor: f64,
    /// Delay ceiling, seconds.
    pub max_s: f64,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::milback()
    }
}

impl Backoff {
    /// Default policy: 5 ms, doubling, capped at 80 ms — a handful of
    /// packet airtimes, so a retry can outlive a short blockage without
    /// stalling the session.
    pub fn milback() -> Self {
        Self {
            base_s: 5e-3,
            factor: 2.0,
            max_s: 80e-3,
        }
    }

    /// Delay before retry attempt `k` (1-based), seconds. Attempt 0
    /// (the original transmission) waits nothing.
    pub fn delay_s(&self, attempt: usize) -> f64 {
        if attempt == 0 {
            return 0.0;
        }
        let exp = (attempt - 1).min(52) as i32;
        (self.base_s * self.factor.powi(exp)).min(self.max_s)
    }

    /// Total delay across retries `1..=n`, seconds.
    pub fn total_s(&self, n: usize) -> f64 {
        (1..=n).map(|k| self.delay_s(k)).sum()
    }

    /// This policy with base and ceiling scaled by `k` (the adaptive
    /// controller's loss-driven stretch): every retry waits `k`× longer,
    /// preserving the doubling shape, so recovery can outlive a longer
    /// fault window. `stretched(1.0)` is the identity.
    pub fn stretched(&self, k: f64) -> Self {
        Self {
            base_s: self.base_s * k,
            factor: self.factor,
            max_s: self.max_s * k,
        }
    }
}

impl Default for ArqSender {
    fn default() -> Self {
        Self::new(4)
    }
}

impl ArqSender {
    /// Creates a sender allowing `max_attempts` transmissions per payload.
    pub fn new(max_attempts: usize) -> Self {
        assert!(max_attempts >= 1, "need at least one attempt");
        Self {
            seq: SeqBit::Zero,
            max_attempts,
            attempts: 0,
            in_flight: None,
            spare: None,
        }
    }

    /// Whether the sender is idle (no payload awaiting acknowledgement).
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none()
    }

    /// Queues a payload; returns the first frame to transmit.
    ///
    /// # Panics
    /// Panics if a payload is already in flight.
    pub fn send(&mut self, payload: &[u8]) -> Vec<u8> {
        assert!(self.is_idle(), "previous payload still in flight");
        self.start(payload);
        self.frame().unwrap_or_default().to_vec()
    }

    /// Allocation-conscious variant of [`Self::send`]: queues the
    /// payload, reusing the sender's internal frame buffer from the
    /// previous exchange; the caller reads the frame to transmit via
    /// [`Self::frame`].
    ///
    /// # Panics
    /// Panics if a payload is already in flight.
    pub fn start(&mut self, payload: &[u8]) {
        assert!(self.is_idle(), "previous payload still in flight");
        let mut buf = self.spare.take().unwrap_or_default();
        with_header_into(self.seq, payload, &mut buf);
        self.in_flight = Some(buf);
        self.attempts = 1;
        milback_telemetry::counter_add("proto.arq.sent", 1);
    }

    /// The frame currently awaiting acknowledgement (header attached),
    /// or `None` when idle.
    pub fn frame(&self) -> Option<&[u8]> {
        self.in_flight.as_deref()
    }

    /// Transmissions of the current payload so far (0 when idle).
    pub fn attempts(&self) -> usize {
        self.attempts
    }

    /// Processes the outcome of the last transmission: `acked_seq` is the
    /// sequence bit the receiver acknowledged (`None` = no/garbled ACK).
    /// Allocating wrapper over [`Self::on_ack_verdict`].
    pub fn on_ack(&mut self, acked_seq: Option<SeqBit>) -> SenderAction {
        match self.on_ack_verdict(acked_seq) {
            ArqVerdict::Delivered => SenderAction::Delivered,
            ArqVerdict::GiveUp => SenderAction::GiveUp,
            ArqVerdict::Retry => SenderAction::Transmit(self.frame().unwrap_or_default().to_vec()),
        }
    }

    /// Allocation-free variant of [`Self::on_ack`]: on
    /// [`ArqVerdict::Retry`] the in-flight frame stays available through
    /// [`Self::frame`] — nothing is cloned.
    pub fn on_ack_verdict(&mut self, acked_seq: Option<SeqBit>) -> ArqVerdict {
        if self.in_flight.is_none() {
            return ArqVerdict::Delivered;
        }
        if acked_seq == Some(self.seq) {
            self.retire();
            milback_telemetry::counter_add("proto.arq.delivered", 1);
            return ArqVerdict::Delivered;
        }
        if self.attempts >= self.max_attempts {
            self.retire();
            milback_telemetry::counter_add("proto.arq.giveups", 1);
            return ArqVerdict::GiveUp;
        }
        self.attempts += 1;
        milback_telemetry::counter_add("proto.arq.retries", 1);
        ArqVerdict::Retry
    }

    /// Releases the in-flight frame, keeping its buffer for reuse, and
    /// advances the sequence.
    fn retire(&mut self) {
        self.spare = self.in_flight.take();
        self.attempts = 0;
        self.seq = self.seq.toggled();
    }
}

/// Receiver-side stop-and-wait state: filters duplicates and produces the
/// ACK to return.
#[derive(Debug, Clone, Default)]
pub struct ArqReceiver {
    last_accepted: Option<SeqBit>,
}

impl ArqReceiver {
    /// Creates a fresh receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes a CRC-valid incoming frame. Returns `(ack, payload)`:
    /// `ack` is the sequence bit to acknowledge, and `payload` is `Some`
    /// only for first-time (non-duplicate) deliveries.
    pub fn on_frame<'a>(&mut self, frame: &'a [u8]) -> Option<(SeqBit, Option<&'a [u8]>)> {
        let (seq, payload) = parse_header(frame)?;
        if self.last_accepted == Some(seq) {
            // Duplicate: re-ACK, do not deliver again.
            return Some((seq, None));
        }
        self.last_accepted = Some(seq);
        Some((seq, Some(payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let framed = with_header(SeqBit::One, b"abc");
        let (seq, payload) = parse_header(&framed).unwrap();
        assert_eq!(seq, SeqBit::One);
        assert_eq!(payload, b"abc");
        assert!(parse_header(&[0x55, 1, 2]).is_none());
        assert!(parse_header(&[]).is_none());
    }

    #[test]
    fn clean_delivery_advances_sequence() {
        let mut tx = ArqSender::new(3);
        let mut rx = ArqReceiver::new();
        for round in 0..4u8 {
            let frame = tx.send(&[round]);
            let (ack, delivered) = rx.on_frame(&frame).unwrap();
            assert_eq!(delivered, Some(&[round][..]), "round {round}");
            assert_eq!(tx.on_ack(Some(ack)), SenderAction::Delivered);
            assert!(tx.is_idle());
        }
    }

    #[test]
    fn lost_frame_is_retransmitted() {
        let mut tx = ArqSender::new(3);
        let mut rx = ArqReceiver::new();
        let frame = tx.send(b"data");
        // Frame lost: no ACK.
        let action = tx.on_ack(None);
        let SenderAction::Transmit(retry) = action else {
            panic!("expected retransmission, got {action:?}");
        };
        assert_eq!(retry, frame);
        // Retry arrives.
        let (ack, delivered) = rx.on_frame(&retry).unwrap();
        assert_eq!(delivered, Some(&b"data"[..]));
        assert_eq!(tx.on_ack(Some(ack)), SenderAction::Delivered);
    }

    #[test]
    fn lost_ack_causes_duplicate_which_is_filtered() {
        let mut tx = ArqSender::new(3);
        let mut rx = ArqReceiver::new();
        let frame = tx.send(b"once");
        // Frame arrives, ACK lost.
        let (_ack, delivered) = rx.on_frame(&frame).unwrap();
        assert_eq!(delivered, Some(&b"once"[..]));
        let SenderAction::Transmit(retry) = tx.on_ack(None) else {
            panic!("expected retry");
        };
        // Duplicate arrives: re-ACKed but NOT delivered twice.
        let (ack2, delivered2) = rx.on_frame(&retry).unwrap();
        assert_eq!(delivered2, None, "duplicate delivered");
        assert_eq!(tx.on_ack(Some(ack2)), SenderAction::Delivered);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let mut tx = ArqSender::new(2);
        let _ = tx.send(b"x");
        assert!(matches!(tx.on_ack(None), SenderAction::Transmit(_)));
        assert_eq!(tx.on_ack(None), SenderAction::GiveUp);
        assert!(tx.is_idle());
        // Sequence still advances so the next payload isn't mistaken for a
        // duplicate of the dropped one.
        let next = tx.send(b"y");
        assert_eq!(parse_header(&next).unwrap().0, SeqBit::One);
    }

    #[test]
    fn wrong_seq_ack_is_ignored() {
        let mut tx = ArqSender::new(3);
        let _ = tx.send(b"x");
        // ACK for the other sequence: treated as no ACK.
        assert!(matches!(
            tx.on_ack(Some(SeqBit::One)),
            SenderAction::Transmit(_)
        ));
    }

    #[test]
    #[should_panic(expected = "still in flight")]
    fn cannot_send_while_in_flight() {
        let mut tx = ArqSender::new(3);
        let _ = tx.send(b"a");
        let _ = tx.send(b"b");
    }

    #[test]
    fn with_header_into_matches_allocating_variant() {
        let mut buf = Vec::new();
        with_header_into(SeqBit::Zero, b"payload", &mut buf);
        assert_eq!(buf, with_header(SeqBit::Zero, b"payload"));
        // Reuse: the buffer is cleared, not appended to.
        with_header_into(SeqBit::One, b"xy", &mut buf);
        assert_eq!(buf, with_header(SeqBit::One, b"xy"));
        let cap = buf.capacity();
        with_header_into(SeqBit::Zero, b"z", &mut buf);
        assert_eq!(buf.capacity(), cap, "reuse must not reallocate");
    }

    #[test]
    fn verdict_api_matches_action_api() {
        let mut tx = ArqSender::new(2);
        let mut rx = ArqReceiver::new();
        tx.start(b"data");
        assert_eq!(tx.attempts(), 1);
        let frame = tx.frame().expect("in flight").to_vec();
        // Lost: verdict says retry, frame unchanged, nothing cloned.
        assert_eq!(tx.on_ack_verdict(None), ArqVerdict::Retry);
        assert_eq!(tx.frame(), Some(&frame[..]));
        assert_eq!(tx.attempts(), 2);
        let (ack, delivered) = rx.on_frame(&frame).expect("parse");
        assert_eq!(delivered, Some(&b"data"[..]));
        assert_eq!(tx.on_ack_verdict(Some(ack)), ArqVerdict::Delivered);
        assert!(tx.is_idle());
        assert_eq!(tx.frame(), None);
        // Budget exhaustion through the verdict API.
        tx.start(b"next");
        assert_eq!(tx.on_ack_verdict(None), ArqVerdict::Retry);
        assert_eq!(tx.on_ack_verdict(None), ArqVerdict::GiveUp);
        assert!(tx.is_idle());
    }

    #[test]
    fn start_reuses_the_retired_buffer() {
        let mut tx = ArqSender::new(1);
        tx.start(b"aaaaaaaaaaaaaaaa");
        let ptr = tx.frame().expect("in flight").as_ptr();
        assert_eq!(tx.on_ack_verdict(None), ArqVerdict::GiveUp);
        tx.start(b"bbbbbbbb");
        // Same allocation, recycled through the spare slot.
        assert_eq!(tx.frame().expect("in flight").as_ptr(), ptr);
    }

    #[test]
    fn backoff_grows_and_saturates() {
        let b = Backoff::milback();
        assert_eq!(b.delay_s(0), 0.0);
        assert!((b.delay_s(1) - 5e-3).abs() < 1e-12);
        assert!((b.delay_s(2) - 10e-3).abs() < 1e-12);
        assert!((b.delay_s(3) - 20e-3).abs() < 1e-12);
        assert_eq!(b.delay_s(10), b.max_s);
        assert_eq!(b.delay_s(100), b.max_s, "large attempts must not overflow");
        assert!((b.total_s(2) - 15e-3).abs() < 1e-12);
    }
}
