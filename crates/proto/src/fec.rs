//! Forward error correction: Hamming(7,4) with single-bit correction.
//!
//! The paper's links are uncoded; at the range edge (BER ~1e-3…1e-2,
//! Figs. 14/15) every frame dies on the CRC. A light code that corrects
//! one error per 7-bit block pushes the usable range out by roughly the
//! distance worth of 3–4 dB — at a fixed 7/4 rate cost. Hamming(7,4) is
//! the classic fit for an MCU-class node: encode/decode are table-free
//! XOR arithmetic.

/// Encodes 4 data bits into a 7-bit Hamming codeword
/// `[p1, p2, d1, p3, d2, d3, d4]` (even parity, positions 1-indexed in
/// the classic construction).
pub fn encode_block(d: [bool; 4]) -> [bool; 7] {
    let p1 = d[0] ^ d[1] ^ d[3];
    let p2 = d[0] ^ d[2] ^ d[3];
    let p3 = d[1] ^ d[2] ^ d[3];
    [p1, p2, d[0], p3, d[1], d[2], d[3]]
}

/// Decodes a 7-bit codeword, correcting up to one flipped bit. Returns
/// `(data, corrected_position)` where the position is 1-based within the
/// codeword (`None` = no error detected).
pub fn decode_block(mut c: [bool; 7]) -> ([bool; 4], Option<usize>) {
    let s1 = c[0] ^ c[2] ^ c[4] ^ c[6];
    let s2 = c[1] ^ c[2] ^ c[5] ^ c[6];
    let s3 = c[3] ^ c[4] ^ c[5] ^ c[6];
    let syndrome = (s1 as usize) | ((s2 as usize) << 1) | ((s3 as usize) << 2);
    let corrected = if syndrome != 0 {
        c[syndrome - 1] = !c[syndrome - 1];
        Some(syndrome)
    } else {
        None
    };
    ([c[2], c[4], c[5], c[6]], corrected)
}

/// Encodes a bit stream with Hamming(7,4). Trailing bits are padded with
/// zeros to a multiple of 4; the caller tracks the original length.
pub fn encode(bits: &[bool]) -> Vec<bool> {
    let n_blocks = bits.len().div_ceil(4);
    let mut padded = bits.to_vec();
    padded.resize(n_blocks * 4, false);
    let mut out = Vec::with_capacity(n_blocks * 7);
    for chunk in padded.chunks(4) {
        out.extend(encode_block([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
    out
}

/// Decodes a Hamming(7,4) stream, returning `(bits, blocks_corrected)`.
/// The input length must be a multiple of 7.
pub fn decode(coded: &[bool]) -> (Vec<bool>, usize) {
    assert!(
        coded.len().is_multiple_of(7),
        "coded length must be a multiple of 7"
    );
    let mut out = Vec::with_capacity(coded.len() / 7 * 4);
    let mut corrected = 0;
    for chunk in coded.chunks(7) {
        let block = [
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6],
        ];
        let (data, fix) = decode_block(block);
        if fix.is_some() {
            corrected += 1;
        }
        out.extend(data);
    }
    milback_telemetry::counter_add("proto.fec.blocks", (coded.len() / 7) as u64);
    milback_telemetry::counter_add("proto.fec.corrected", corrected as u64);
    (out, corrected)
}

/// Code rate: 4 data bits per 7 channel bits.
pub const RATE: f64 = 4.0 / 7.0;

/// Post-decoding block error probability at channel bit-error rate `p`:
/// a block fails when ≥ 2 of its 7 bits flip.
pub fn block_error_rate(p: f64) -> f64 {
    let q = 1.0 - p;
    let none = q.powi(7);
    let one = 7.0 * p * q.powi(6);
    1.0 - none - one
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_codewords_round_trip() {
        for v in 0u8..16 {
            let d = [v & 1 != 0, v & 2 != 0, v & 4 != 0, v & 8 != 0];
            let c = encode_block(d);
            let (back, fix) = decode_block(c);
            assert_eq!(back, d, "value {v}");
            assert_eq!(fix, None);
        }
    }

    #[test]
    fn corrects_every_single_bit_flip() {
        for v in 0u8..16 {
            let d = [v & 1 != 0, v & 2 != 0, v & 4 != 0, v & 8 != 0];
            let c = encode_block(d);
            for i in 0..7 {
                let mut bad = c;
                bad[i] = !bad[i];
                let (back, fix) = decode_block(bad);
                assert_eq!(back, d, "value {v}, flip {i}");
                assert_eq!(fix, Some(i + 1));
            }
        }
    }

    #[test]
    fn double_flips_are_miscorrected_not_crashed() {
        // Hamming(7,4) cannot correct 2 errors; the result is wrong but
        // the decoder must stay well-behaved (the CRC above catches it).
        let d = [true, false, true, true];
        let mut c = encode_block(d);
        c[0] = !c[0];
        c[5] = !c[5];
        let (back, _fix) = decode_block(c);
        assert_ne!(back, d);
    }

    #[test]
    fn stream_round_trip_with_padding() {
        let bits: Vec<bool> = (0..42).map(|i| i % 3 == 0).collect(); // not /4
        let coded = encode(&bits);
        assert_eq!(coded.len() % 7, 0);
        let (back, corrected) = decode(&coded);
        assert_eq!(&back[..42], &bits[..]);
        assert_eq!(corrected, 0);
    }

    #[test]
    fn stream_survives_scattered_errors() {
        let bits: Vec<bool> = (0..64).map(|i| (i * 5) % 7 < 3).collect();
        let mut coded = encode(&bits);
        // One flip in each of four different blocks.
        for block in [0, 3, 7, 11] {
            let i = block * 7 + (block % 7);
            coded[i] = !coded[i];
        }
        let (back, corrected) = decode(&coded);
        assert_eq!(&back[..64], &bits[..]);
        assert_eq!(corrected, 4);
    }

    #[test]
    fn block_error_rate_shape() {
        assert!(block_error_rate(0.0) == 0.0);
        // At p = 1e-3: ~21·p² ≈ 2.1e-5.
        let b = block_error_rate(1e-3);
        assert!((b - 2.1e-5).abs() < 2e-6, "{b}");
        assert!(block_error_rate(0.01) < 7.0 * 0.01); // better than uncoded block
    }

    #[test]
    fn rate_is_four_sevenths() {
        assert!((RATE - 4.0 / 7.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "multiple of 7")]
    fn decode_rejects_bad_length() {
        decode(&[true; 10]);
    }
}
