//! Fragmentation and reassembly: application messages larger than the
//! fixed packet payload (paper §7: "the length of the payload is
//! predefined") are split across packets and stitched back together.
//!
//! Fragment header (2 bytes): `index` and `total` (1-based count), so a
//! message spans at most 255 fragments. The CRC framing underneath
//! guarantees per-fragment integrity; reassembly tracks completeness.

/// Per-fragment header size, bytes.
pub const FRAGMENT_HEADER: usize = 2;

/// Splits a message into fragments that each fit `payload_bytes` (the
/// network's fixed payload size), prepending `[index, total]` headers.
///
/// # Panics
/// Panics if the message needs more than 255 fragments or the payload
/// size cannot fit any data.
pub fn fragment(message: &[u8], payload_bytes: usize) -> Vec<Vec<u8>> {
    assert!(
        payload_bytes > FRAGMENT_HEADER,
        "payload too small for a fragment header"
    );
    let chunk = payload_bytes - FRAGMENT_HEADER;
    let total = message.len().div_ceil(chunk).max(1);
    assert!(total <= 255, "message needs {total} fragments (max 255)");
    (0..total)
        .map(|i| {
            let lo = i * chunk;
            let hi = ((i + 1) * chunk).min(message.len());
            let mut frag = Vec::with_capacity(payload_bytes);
            frag.push((i + 1) as u8);
            frag.push(total as u8);
            frag.extend_from_slice(&message[lo..hi]);
            frag
        })
        .collect()
}

/// Reassembly state for one in-flight message.
#[derive(Debug, Clone, Default)]
pub struct Reassembler {
    total: Option<u8>,
    parts: Vec<Option<Vec<u8>>>,
}

/// Errors surfaced while reassembling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassemblyError {
    /// Fragment header malformed (index 0, total 0, or index > total).
    BadHeader,
    /// Fragment claims a different total than earlier fragments.
    TotalMismatch,
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one received (already CRC-verified) fragment. Returns the
    /// full message once every fragment has arrived. Duplicate fragments
    /// are idempotent.
    pub fn feed(&mut self, fragment: &[u8]) -> Result<Option<Vec<u8>>, ReassemblyError> {
        if fragment.len() < FRAGMENT_HEADER {
            return Err(ReassemblyError::BadHeader);
        }
        let index = fragment[0];
        let total = fragment[1];
        if index == 0 || total == 0 || index > total {
            return Err(ReassemblyError::BadHeader);
        }
        match self.total {
            None => {
                self.total = Some(total);
                self.parts = vec![None; total as usize];
            }
            Some(t) if t != total => return Err(ReassemblyError::TotalMismatch),
            Some(_) => {}
        }
        self.parts[(index - 1) as usize] = Some(fragment[FRAGMENT_HEADER..].to_vec());

        if self.parts.iter().all(|p| p.is_some()) {
            let out: Vec<u8> = self.parts.drain(..).flatten().flatten().collect();
            self.total = None;
            Ok(Some(out))
        } else {
            Ok(None)
        }
    }

    /// Fragments received so far for the current message.
    pub fn received(&self) -> usize {
        self.parts.iter().filter(|p| p.is_some()).count()
    }

    /// Resets any partial state (e.g. on a timeout).
    pub fn reset(&mut self) {
        self.total = None;
        self.parts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_and_reassemble() {
        let message: Vec<u8> = (0..100).collect();
        let frags = fragment(&message, 32);
        assert_eq!(frags.len(), 4); // 100 / 30 → 4 fragments
        for f in &frags {
            assert!(f.len() <= 32);
        }
        let mut r = Reassembler::new();
        for (i, f) in frags.iter().enumerate() {
            let out = r.feed(f).unwrap();
            if i + 1 < frags.len() {
                assert!(out.is_none(), "completed early at {i}");
            } else {
                assert_eq!(out.unwrap(), message);
            }
        }
    }

    #[test]
    fn out_of_order_and_duplicates() {
        let message = b"the quick brown fox jumps over the lazy dog".to_vec();
        let frags = fragment(&message, 12);
        let mut r = Reassembler::new();
        // Feed reversed with a duplicate in the middle.
        let mut order: Vec<&Vec<u8>> = frags.iter().rev().collect();
        order.insert(2, &frags[0]);
        let mut done = None;
        for f in order {
            if let Some(m) = r.feed(f).unwrap() {
                done = Some(m);
            }
        }
        assert_eq!(done.unwrap(), message);
    }

    #[test]
    fn empty_message_is_one_fragment() {
        let frags = fragment(&[], 16);
        assert_eq!(frags.len(), 1);
        let mut r = Reassembler::new();
        assert_eq!(r.feed(&frags[0]).unwrap().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn header_validation() {
        let mut r = Reassembler::new();
        assert_eq!(r.feed(&[0x01]), Err(ReassemblyError::BadHeader));
        assert_eq!(r.feed(&[0, 3, 1]), Err(ReassemblyError::BadHeader));
        assert_eq!(r.feed(&[4, 3, 1]), Err(ReassemblyError::BadHeader));
        assert_eq!(r.feed(&[1, 0, 1]), Err(ReassemblyError::BadHeader));
    }

    #[test]
    fn total_mismatch_detected() {
        let mut r = Reassembler::new();
        assert!(r.feed(&[1, 3, 9]).unwrap().is_none());
        assert_eq!(r.feed(&[2, 4, 9]), Err(ReassemblyError::TotalMismatch));
        // Still consistent afterwards.
        assert!(r.feed(&[2, 3, 9]).unwrap().is_none());
        assert_eq!(r.received(), 2);
        r.reset();
        assert_eq!(r.received(), 0);
    }

    #[test]
    #[should_panic(expected = "max 255")]
    fn too_many_fragments_rejected() {
        let huge = vec![0u8; 30 * 256 + 1];
        fragment(&huge, 32);
    }

    #[test]
    fn back_to_back_messages_reuse_reassembler() {
        let mut r = Reassembler::new();
        for round in 0..3u8 {
            let msg = vec![round; 50];
            let frags = fragment(&msg, 32);
            let mut out = None;
            for f in &frags {
                if let Some(m) = r.feed(f).unwrap() {
                    out = Some(m);
                }
            }
            assert_eq!(out.unwrap(), msg);
        }
    }
}
