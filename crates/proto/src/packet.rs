//! MilBack packet structure and preamble timing (paper §7, Figure 8).
//!
//! A packet is: **Field 1** (triangular chirps — lets the node sense its
//! orientation and tells it whether the payload is uplink or downlink),
//! **Field 2** (five sawtooth chirps — lets the AP localize the node and
//! sense its orientation), then the **payload**.
//!
//! Mode signalling in Field 1: *three* back-to-back chirps mean uplink;
//! *two* chirps with a one-chirp gap between them mean downlink. Both
//! variants occupy the same three chirp slots, so Field 1 has a fixed
//! duration.

use milback_dsp::chirp::ChirpConfig;

/// Direction of the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkMode {
    /// Node → AP (backscatter).
    Uplink,
    /// AP → node.
    Downlink,
}

/// What occupies one Field-1 chirp slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// A triangular chirp is transmitted.
    Chirp,
    /// Silence.
    Gap,
}

/// Static timing/shape parameters of a MilBack packet, shared by the AP
/// and all nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketConfig {
    /// Field-1 triangular chirp (45 µs in the paper — slow enough for the
    /// node's 1 MHz ADC).
    pub field1_chirp: ChirpConfig,
    /// Field-2 sawtooth chirp (18 µs in the paper).
    pub field2_chirp: ChirpConfig,
    /// Number of Field-2 chirps (5 in the paper: four pairwise
    /// subtractions).
    pub field2_count: usize,
    /// Payload symbol rate, symbols/s (OAQFM: 2 bits/symbol).
    pub symbol_rate: f64,
    /// Payload length in bytes (pre-agreed between AP and nodes, §7).
    pub payload_bytes: usize,
}

impl PacketConfig {
    /// The paper's configuration: 45 µs triangular Field-1 chirps, five
    /// 18 µs sawtooth Field-2 chirps, 1 Msym/s payload, 32-byte payloads.
    pub fn milback() -> Self {
        Self {
            field1_chirp: ChirpConfig::milback_triangular(),
            field2_chirp: ChirpConfig::milback_sawtooth(),
            field2_count: 5,
            symbol_rate: 1e6,
            payload_bytes: 32,
        }
    }

    /// The three Field-1 slots for a mode: uplink = chirp/chirp/chirp,
    /// downlink = chirp/gap/chirp.
    pub fn field1_slots(mode: LinkMode) -> [Slot; 3] {
        match mode {
            LinkMode::Uplink => [Slot::Chirp, Slot::Chirp, Slot::Chirp],
            LinkMode::Downlink => [Slot::Chirp, Slot::Gap, Slot::Chirp],
        }
    }

    /// Decodes the mode from the number of chirps the node counted in
    /// Field 1. Returns `None` for counts that match no mode.
    pub fn mode_from_chirp_count(count: usize) -> Option<LinkMode> {
        match count {
            3 => Some(LinkMode::Uplink),
            2 => Some(LinkMode::Downlink),
            _ => None,
        }
    }

    /// Duration of Field 1 (three chirp slots), seconds.
    pub fn field1_duration(&self) -> f64 {
        3.0 * self.field1_chirp.duration
    }

    /// Duration of Field 2, seconds.
    pub fn field2_duration(&self) -> f64 {
        self.field2_count as f64 * self.field2_chirp.duration
    }

    /// Time offset of the start of Field 2 within the packet.
    pub fn field2_start(&self) -> f64 {
        self.field1_duration()
    }

    /// Time offset of the start of the payload within the packet.
    pub fn payload_start(&self) -> f64 {
        self.field1_duration() + self.field2_duration()
    }

    /// Number of OAQFM symbols in the payload, including the CRC trailer
    /// (2 bytes) added by framing.
    pub fn payload_symbols(&self) -> usize {
        (self.payload_bytes + 2) * 8 / 2
    }

    /// Duration of the payload, seconds.
    pub fn payload_duration(&self) -> f64 {
        self.payload_symbols() as f64 / self.symbol_rate
    }

    /// Total packet duration, seconds.
    pub fn total_duration(&self) -> f64 {
        self.payload_start() + self.payload_duration()
    }

    /// Raw payload bit rate (2 bits per OAQFM symbol), bits/s.
    pub fn bit_rate(&self) -> f64 {
        2.0 * self.symbol_rate
    }
}

/// A packet to be exchanged: direction plus payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Payload direction.
    pub mode: LinkMode,
    /// Application payload (must equal `PacketConfig::payload_bytes`).
    pub payload: Vec<u8>,
}

impl Packet {
    /// Creates an uplink packet.
    pub fn uplink(payload: Vec<u8>) -> Self {
        Self {
            mode: LinkMode::Uplink,
            payload,
        }
    }

    /// Creates a downlink packet.
    pub fn downlink(payload: Vec<u8>) -> Self {
        Self {
            mode: LinkMode::Downlink,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field1_slot_patterns() {
        assert_eq!(
            PacketConfig::field1_slots(LinkMode::Uplink),
            [Slot::Chirp, Slot::Chirp, Slot::Chirp]
        );
        assert_eq!(
            PacketConfig::field1_slots(LinkMode::Downlink),
            [Slot::Chirp, Slot::Gap, Slot::Chirp]
        );
    }

    #[test]
    fn mode_decoding() {
        assert_eq!(
            PacketConfig::mode_from_chirp_count(3),
            Some(LinkMode::Uplink)
        );
        assert_eq!(
            PacketConfig::mode_from_chirp_count(2),
            Some(LinkMode::Downlink)
        );
        assert_eq!(PacketConfig::mode_from_chirp_count(0), None);
        assert_eq!(PacketConfig::mode_from_chirp_count(5), None);
    }

    #[test]
    fn milback_timing() {
        let cfg = PacketConfig::milback();
        assert!((cfg.field1_duration() - 135e-6).abs() < 1e-12);
        assert!((cfg.field2_duration() - 90e-6).abs() < 1e-12);
        assert!((cfg.field2_start() - 135e-6).abs() < 1e-12);
        assert!((cfg.payload_start() - 225e-6).abs() < 1e-12);
    }

    #[test]
    fn payload_symbol_count() {
        let cfg = PacketConfig::milback();
        // 32 bytes payload + 2 CRC = 34 bytes = 272 bits = 136 symbols.
        assert_eq!(cfg.payload_symbols(), 136);
        assert!((cfg.payload_duration() - 136e-6).abs() < 1e-12);
        assert_eq!(cfg.bit_rate(), 2e6);
    }

    #[test]
    fn total_duration_is_sum_of_parts() {
        let cfg = PacketConfig::milback();
        let total = cfg.total_duration();
        assert!(
            (total - (cfg.field1_duration() + cfg.field2_duration() + cfg.payload_duration()))
                .abs()
                < 1e-15
        );
    }

    #[test]
    fn packet_constructors() {
        let p = Packet::uplink(vec![1, 2, 3]);
        assert_eq!(p.mode, LinkMode::Uplink);
        let p = Packet::downlink(vec![]);
        assert_eq!(p.mode, LinkMode::Downlink);
    }
}
