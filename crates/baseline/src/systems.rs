//! The comparison systems of the paper's Table 1 and §9.6.
//!
//! Each prior system is modeled at the level the paper compares them:
//! which of the four capabilities it offers, what its tag's
//! energy-per-bit is, and (for the simulations) the physical structure it
//! backscatters with.

use crate::vanatta::VanAttaArray;

/// The four capabilities compared in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Tag → reader data.
    pub uplink: bool,
    /// Reader → tag data.
    pub downlink: bool,
    /// Range + angle estimation of the tag.
    pub localization: bool,
    /// Tag orientation estimation.
    pub orientation: bool,
}

/// A backscatter system under comparison.
pub trait BackscatterSystem {
    /// System name as it appears in Table 1.
    fn name(&self) -> &'static str;

    /// Capability row of Table 1.
    fn capabilities(&self) -> Capabilities;

    /// Uplink energy efficiency in nJ/bit, if the system has an uplink.
    fn uplink_energy_nj_per_bit(&self) -> Option<f64>;

    /// Downlink energy efficiency in nJ/bit, if the system has a downlink.
    fn downlink_energy_nj_per_bit(&self) -> Option<f64>;
}

/// mmTag (SIGCOMM '21): Van Atta tags with uplink-only mmWave backscatter
/// at 2.4 nJ/bit (paper §9.6).
#[derive(Debug, Clone, Copy)]
pub struct MmTag {
    /// The tag's retroreflective structure.
    pub array: VanAttaArray,
}

impl Default for MmTag {
    fn default() -> Self {
        Self {
            array: VanAttaArray::mmtag(),
        }
    }
}

impl BackscatterSystem for MmTag {
    fn name(&self) -> &'static str {
        "mmTag"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            uplink: true,
            downlink: false,
            localization: false,
            orientation: false,
        }
    }

    fn uplink_energy_nj_per_bit(&self) -> Option<f64> {
        Some(2.4)
    }

    fn downlink_energy_nj_per_bit(&self) -> Option<f64> {
        None
    }
}

/// Millimetro (MobiCom '21): retro-reflective tags for accurate long-range
/// localization; no data links.
#[derive(Debug, Clone, Copy)]
pub struct Millimetro {
    /// The tag's retroreflective structure.
    pub array: VanAttaArray,
}

impl Default for Millimetro {
    fn default() -> Self {
        Self {
            array: VanAttaArray::new(8, milback_rf::antenna::PatchElement::default(), -2.0),
        }
    }
}

impl BackscatterSystem for Millimetro {
    fn name(&self) -> &'static str {
        "Millimetro"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            uplink: false,
            downlink: false,
            localization: true,
            orientation: false,
        }
    }

    fn uplink_energy_nj_per_bit(&self) -> Option<f64> {
        None
    }

    fn downlink_energy_nj_per_bit(&self) -> Option<f64> {
        None
    }
}

/// OmniScatter (MobiSys '22): commodity-FMCW-radar backscatter with
/// extreme sensitivity — uplink and localization, no downlink.
#[derive(Debug, Clone, Copy)]
pub struct OmniScatter {
    /// The tag's retroreflective structure.
    pub array: VanAttaArray,
}

impl Default for OmniScatter {
    fn default() -> Self {
        Self {
            array: VanAttaArray::new(8, milback_rf::antenna::PatchElement::default(), -2.0),
        }
    }
}

impl BackscatterSystem for OmniScatter {
    fn name(&self) -> &'static str {
        "OmniScatter"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            uplink: true,
            downlink: false,
            localization: true,
            orientation: false,
        }
    }

    fn uplink_energy_nj_per_bit(&self) -> Option<f64> {
        // OmniScatter's tag is a low-rate, very-low-power design; the
        // paper's Table 1 compares capabilities only, so we record a
        // representative figure from its class of VCO-less tags.
        Some(1.0)
    }

    fn downlink_energy_nj_per_bit(&self) -> Option<f64> {
        None
    }
}

/// MilBack itself, as a row of Table 1, with the measured efficiency
/// figures of §9.6.
#[derive(Debug, Clone, Copy, Default)]
pub struct MilBackSystem;

impl BackscatterSystem for MilBackSystem {
    fn name(&self) -> &'static str {
        "MilBack (This Work)"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            uplink: true,
            downlink: true,
            localization: true,
            orientation: true,
        }
    }

    fn uplink_energy_nj_per_bit(&self) -> Option<f64> {
        let model = milback_hw::power::PowerModel::milback();
        Some(model.energy_per_bit_nj(milback_hw::power::NodeMode::Uplink { bit_rate: 40e6 }, 40e6))
    }

    fn downlink_energy_nj_per_bit(&self) -> Option<f64> {
        let model = milback_hw::power::PowerModel::milback();
        Some(model.energy_per_bit_nj(milback_hw::power::NodeMode::Downlink, 36e6))
    }
}

/// All Table-1 rows, in the paper's order.
pub fn table1_systems() -> Vec<Box<dyn BackscatterSystem>> {
    vec![
        Box::new(MmTag::default()),
        Box::new(Millimetro::default()),
        Box::new(OmniScatter::default()),
        Box::new(MilBackSystem),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let systems = table1_systems();
        assert_eq!(systems.len(), 4);
        let rows: Vec<(&str, Capabilities)> = systems
            .iter()
            .map(|s| (s.name(), s.capabilities()))
            .collect();
        // mmTag: uplink only.
        assert_eq!(
            rows[0].1,
            Capabilities {
                uplink: true,
                downlink: false,
                localization: false,
                orientation: false
            }
        );
        // Millimetro: localization only.
        assert_eq!(
            rows[1].1,
            Capabilities {
                uplink: false,
                downlink: false,
                localization: true,
                orientation: false
            }
        );
        // OmniScatter: uplink + localization.
        assert_eq!(
            rows[2].1,
            Capabilities {
                uplink: true,
                downlink: false,
                localization: true,
                orientation: false
            }
        );
        // MilBack: everything.
        assert_eq!(
            rows[3].1,
            Capabilities {
                uplink: true,
                downlink: true,
                localization: true,
                orientation: true
            }
        );
    }

    #[test]
    fn only_milback_has_downlink() {
        let with_downlink: Vec<&'static str> = table1_systems()
            .iter()
            .filter(|s| s.capabilities().downlink)
            .map(|s| s.name())
            .collect();
        assert_eq!(with_downlink, vec!["MilBack (This Work)"]);
    }

    #[test]
    fn milback_beats_mmtag_energy() {
        // §9.6: 0.8 nJ/bit uplink vs mmTag's 2.4 nJ/bit.
        let milback = MilBackSystem.uplink_energy_nj_per_bit().unwrap();
        let mmtag = MmTag::default().uplink_energy_nj_per_bit().unwrap();
        assert!(milback < mmtag / 2.0, "milback {milback} vs mmtag {mmtag}");
        assert!((mmtag - 2.4).abs() < 1e-12);
    }

    #[test]
    fn downlink_efficiency_is_half_nj() {
        let dl = MilBackSystem.downlink_energy_nj_per_bit().unwrap();
        assert!((dl - 0.5).abs() < 0.05, "{dl}");
    }

    #[test]
    fn non_communicating_systems_have_no_energy_figures() {
        assert!(Millimetro::default().uplink_energy_nj_per_bit().is_none());
        assert!(Millimetro::default().downlink_energy_nj_per_bit().is_none());
        assert!(MmTag::default().downlink_energy_nj_per_bit().is_none());
    }
}
