//! Van Atta retroreflective array model.
//!
//! All prior mmWave backscatter systems (mmTag, Millimetro, OmniScatter)
//! build their tags on Van Atta arrays: antenna pairs cross-connected by
//! equal-length transmission lines, so an incident wavefront is re-emitted
//! with conjugated phase — back toward the source — at *any* incidence
//! angle within the element pattern (paper §4, reference \[44\]).
//!
//! The paper's key architectural point is that a Van Atta has **no signal
//! port**: the trace lengths are tuned and cannot host a tap to a local
//! receiver, so these designs cannot do downlink. The model reflects that:
//! it exposes only a monostatic retro-reflection gain, no receive path.

use milback_rf::antenna::{dbi_to_linear, linear_to_dbi, Antenna, PatchElement};
use milback_rf::geometry::wrap_angle;

/// A Van Atta retroreflective array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VanAttaArray {
    /// Number of antenna elements (must be even — elements are paired).
    pub n_elements: usize,
    /// Element pattern.
    pub element: PatchElement,
    /// Ohmic/line losses, dB (≤ 0).
    pub loss_db: f64,
}

impl VanAttaArray {
    /// An 8-element Van Atta comparable to mmTag's tag.
    pub fn mmtag() -> Self {
        Self {
            n_elements: 8,
            element: PatchElement::default(),
            loss_db: -2.0,
        }
    }

    /// Creates an array, validating the pairing constraint.
    pub fn new(n_elements: usize, element: PatchElement, loss_db: f64) -> Self {
        assert!(
            n_elements >= 2 && n_elements.is_multiple_of(2),
            "elements must be paired"
        );
        Self {
            n_elements,
            element,
            loss_db,
        }
    }

    /// Monostatic retro-reflection gain (linear, one-way equivalent):
    /// the effective antenna gain with which the array captures *and*
    /// re-emits toward the source at incidence `theta`.
    ///
    /// Because phase conjugation aligns the re-emission with the arrival
    /// direction, the full array gain `N·Ge(θ)` is available at any θ
    /// within the element pattern — no frequency/orientation tuning, which
    /// is exactly why these tags localize well but cannot select carriers.
    pub fn retro_gain(&self, theta: f64, f: f64) -> f64 {
        let t = wrap_angle(theta);
        dbi_to_linear(self.loss_db) * self.n_elements as f64 * self.element.gain(t, f)
    }

    /// Retro-reflection gain in dBi.
    pub fn retro_gain_dbi(&self, theta: f64, f: f64) -> f64 {
        linear_to_dbi(self.retro_gain(theta, f))
    }

    /// Whether the structure offers a signal port for a local receiver.
    /// Always `false` — the defining limitation the paper's FSA removes.
    pub fn has_signal_port(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_rf::geometry::deg_to_rad;

    #[test]
    fn retro_gain_flat_over_wide_angles() {
        // Unlike the FSA, the Van Atta keeps its gain over a wide angular
        // range at a fixed frequency.
        let va = VanAttaArray::mmtag();
        let g0 = va.retro_gain_dbi(0.0, 28e9);
        let g30 = va.retro_gain_dbi(deg_to_rad(30.0), 28e9);
        assert!(g0 - g30 < 2.0, "g0 {g0}, g30 {g30}");
    }

    #[test]
    fn gain_scales_with_elements() {
        let small = VanAttaArray::new(4, PatchElement::default(), 0.0);
        let big = VanAttaArray::new(16, PatchElement::default(), 0.0);
        let ratio = big.retro_gain(0.0, 28e9) / small.retro_gain(0.0, 28e9);
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn no_signal_port() {
        assert!(!VanAttaArray::mmtag().has_signal_port());
    }

    #[test]
    fn frequency_independent_pointing() {
        // The retro gain at a fixed angle barely changes across the band —
        // contrast with the FSA whose gain-vs-frequency *is* the scan.
        let va = VanAttaArray::mmtag();
        let g_lo = va.retro_gain_dbi(deg_to_rad(15.0), 26.5e9);
        let g_hi = va.retro_gain_dbi(deg_to_rad(15.0), 29.5e9);
        assert!((g_lo - g_hi).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn rejects_odd_element_count() {
        VanAttaArray::new(5, PatchElement::default(), 0.0);
    }
}
