//! # milback-baseline
//!
//! Comparator systems for the paper's Table 1 and §9.6:
//!
//! * [`vanatta`] — the Van Atta retroreflective array all prior mmWave
//!   backscatter tags are built on (and why it cannot do downlink),
//! * [`systems`] — mmTag, Millimetro, OmniScatter and MilBack as rows of
//!   the capability/efficiency comparison.

pub mod systems;
pub mod vanatta;

pub use systems::{
    table1_systems, BackscatterSystem, Capabilities, MilBackSystem, Millimetro, MmTag, OmniScatter,
};
pub use vanatta::VanAttaArray;
