//! # milback-baseline
//!
//! Comparator systems for the paper's Table 1 and §9.6:
//!
//! * [`vanatta`] — the Van Atta retroreflective array all prior mmWave
//!   backscatter tags are built on (and why it cannot do downlink),
//! * [`systems`] — mmTag, Millimetro, OmniScatter and MilBack as rows of
//!   the capability/efficiency comparison.
//!
//! ## Place in the paper's architecture
//!
//! The paper's Table 1 positions MilBack against the prior mmWave
//! backscatter systems, all of which build on Van Atta retroreflection:
//! they can reflect a carrier back at the AP but cannot *receive*, which
//! is the two-way gap MilBack's dual-port FSA closes. [`vanatta`] models
//! that array (including why its retro-reflection admits no downlink
//! demodulation point) and [`systems`] renders each published system's
//! capability row so `milback::experiments::table1` can regenerate the
//! comparison.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod systems;
pub mod vanatta;

pub use systems::{
    table1_systems, BackscatterSystem, Capabilities, MilBackSystem, Millimetro, MmTag, OmniScatter,
};
pub use vanatta::VanAttaArray;
