//! RF energy harvesting: can a MilBack node run battery-free off the
//! AP's own query signal?
//!
//! The paper's concluding vision is mmWave APs and radars talking to
//! low-power IoT devices; the natural next step (explored by the broader
//! backscatter literature) is powering the tag from the carrier itself.
//! This model combines a rectifier efficiency curve with the node's §9.6
//! power numbers to answer where in the room that works.

/// A rectifier (RF → DC) with an input-power-dependent efficiency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rectifier {
    /// Sensitivity: below this input power (watts) the rectifier produces
    /// nothing (diode turn-on).
    pub sensitivity_w: f64,
    /// Peak conversion efficiency (0..1), reached at high input power.
    pub peak_efficiency: f64,
    /// Input power (watts) at which efficiency reaches half its peak.
    pub half_power_w: f64,
}

impl Rectifier {
    /// A mmWave rectenna representative of published 24–28 GHz designs:
    /// −10 dBm sensitivity, 35% peak efficiency.
    pub fn mmwave() -> Self {
        Self {
            sensitivity_w: 1e-4,
            peak_efficiency: 0.35,
            half_power_w: 1e-3,
        }
    }

    /// Conversion efficiency at input power `p_in` watts: a saturating
    /// curve `η_pk · p/(p + p_half)` gated by the sensitivity threshold.
    pub fn efficiency(&self, p_in: f64) -> f64 {
        if p_in < self.sensitivity_w {
            return 0.0;
        }
        self.peak_efficiency * p_in / (p_in + self.half_power_w)
    }

    /// Harvested DC power at input power `p_in` watts.
    pub fn harvested(&self, p_in: f64) -> f64 {
        self.efficiency(p_in) * p_in
    }
}

/// Harvesting budget for a duty-cycled node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarvestBudget {
    /// DC power harvested while the AP's carrier is on, watts.
    pub harvested_w: f64,
    /// Node's average consumption, watts.
    pub consumed_w: f64,
}

impl HarvestBudget {
    /// Whether the node is energy-neutral (harvest ≥ consumption).
    pub fn self_sustaining(&self) -> bool {
        self.harvested_w >= self.consumed_w
    }

    /// Fraction of time the AP must illuminate the node for energy
    /// neutrality (can exceed 1 when infeasible).
    pub fn required_illumination(&self) -> f64 {
        if self.harvested_w <= 0.0 {
            return f64::INFINITY;
        }
        self.consumed_w / self.harvested_w
    }
}

/// Evaluates the harvesting budget: `p_in` is the RF power available at
/// the node's harvesting antenna while illuminated, `avg_consumption_w`
/// the node's duty-cycled average draw.
pub fn harvest_budget(rectifier: &Rectifier, p_in: f64, avg_consumption_w: f64) -> HarvestBudget {
    HarvestBudget {
        harvested_w: rectifier.harvested(p_in),
        consumed_w: avg_consumption_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_curve_shape() {
        let r = Rectifier::mmwave();
        assert_eq!(r.efficiency(1e-5), 0.0); // below sensitivity
        let low = r.efficiency(2e-4);
        let high = r.efficiency(1e-2);
        assert!(low > 0.0 && low < high);
        assert!(high < r.peak_efficiency);
        assert!(high > 0.9 * r.peak_efficiency);
    }

    #[test]
    fn harvested_power_monotone() {
        let r = Rectifier::mmwave();
        let mut last = 0.0;
        for p in [1e-4, 3e-4, 1e-3, 3e-3, 1e-2] {
            let h = r.harvested(p);
            assert!(h >= last, "non-monotone at {p}");
            last = h;
        }
    }

    #[test]
    fn close_node_self_sustains_duty_cycled() {
        // At 1 m the node's harvesting antenna (say 12 dBi FSA port) sees
        // Pt 27 dBm + 20 + 12.5 − 61.4 ≈ −2 dBm ≈ 0.6 mW RF.
        let r = Rectifier::mmwave();
        let p_in = 6e-4;
        // Duty-cycled telemetry: ~10 µW average (see hw::battery tests).
        let b = harvest_budget(&r, p_in, 10e-6);
        assert!(b.self_sustaining(), "harvest {} W", b.harvested_w);
        assert!(b.required_illumination() < 0.2);
    }

    #[test]
    fn far_node_cannot_sustain_continuous_uplink() {
        // At 8 m the available RF is ~36× weaker (−18 dB): ~16 µW, below
        // the rectifier's sensitivity → zero harvest, and 32 mW of
        // continuous uplink is hopeless anyway.
        let r = Rectifier::mmwave();
        let b = harvest_budget(&r, 1.6e-5, 32e-3);
        assert!(!b.self_sustaining());
        assert!(b.required_illumination().is_infinite());
    }

    #[test]
    fn crossover_between_sustaining_and_not() {
        let r = Rectifier::mmwave();
        let consumption = 20e-6;
        let mut last_state = true;
        let mut flipped = 0;
        for p_dbm in (-25..10).rev() {
            let p = 10f64.powf(p_dbm as f64 / 10.0) * 1e-3;
            let s = harvest_budget(&r, p, consumption).self_sustaining();
            if s != last_state {
                flipped += 1;
                last_state = s;
            }
        }
        assert_eq!(flipped, 1, "exactly one sustaining→not transition");
    }
}
