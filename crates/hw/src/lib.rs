//! # milback-hw
//!
//! Hardware-component models for the MilBack node:
//!
//! * [`switch`] — SPDT RF switch (reflective/absorptive throw, toggle-rate
//!   limit, switching energy) and time-stamped switch schedules,
//! * [`envelope`] — the ADL6010-class envelope detector (slope, video
//!   bandwidth, output noise),
//! * [`adc`] — the MCU's SAR ADC (rate conversion, quantization),
//! * [`battery`] — battery/duty-cycle lifetime modeling,
//! * [`harvest`] — RF energy-harvesting feasibility,
//! * [`power`] — node power/energy accounting reproducing the paper's
//!   18 mW / 32 mW / nJ-per-bit numbers.
//!
//! ## Place in the paper's architecture
//!
//! §8 ("Implementation") builds the node from exactly these parts — two
//! SPDT switches on the FSA ports, an envelope detector per port, and an
//! MCU ADC — and §9.5 reports what they cost: 18 mW in
//! downlink/localization, 32 mW transmitting at 40 Mbps, under a
//! nanojoule per bit. [`power::PowerModel`] encodes those numbers; the
//! link layer (`milback::link`) multiplies them by measured transfer
//! durations and records the result as the `node.energy.*_nj` telemetry
//! histograms, so simulated energy draw shows up in bench snapshots.
//! [`battery`] and [`harvest`] extend §9.5's lifetime discussion.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod adc;
pub mod battery;
pub mod envelope;
pub mod harvest;
pub mod power;
pub mod switch;

pub use adc::Adc;
pub use battery::{battery_life_years, Battery, DutyCycle};
pub use envelope::EnvelopeDetector;
pub use harvest::{harvest_budget, HarvestBudget, Rectifier};
pub use power::{NodeMode, PowerModel};
pub use switch::{SpdtSwitch, SwitchSchedule, SwitchState};
