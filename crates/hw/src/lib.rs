//! # milback-hw
//!
//! Hardware-component models for the MilBack node:
//!
//! * [`switch`] — SPDT RF switch (reflective/absorptive throw, toggle-rate
//!   limit, switching energy) and time-stamped switch schedules,
//! * [`envelope`] — the ADL6010-class envelope detector (slope, video
//!   bandwidth, output noise),
//! * [`adc`] — the MCU's SAR ADC (rate conversion, quantization),
//! * [`battery`] — battery/duty-cycle lifetime modeling,
//! * [`harvest`] — RF energy-harvesting feasibility,
//! * [`power`] — node power/energy accounting reproducing the paper's
//!   18 mW / 32 mW / nJ-per-bit numbers.

pub mod adc;
pub mod battery;
pub mod envelope;
pub mod harvest;
pub mod power;
pub mod switch;

pub use adc::Adc;
pub use battery::{battery_life_years, Battery, DutyCycle};
pub use envelope::EnvelopeDetector;
pub use harvest::{harvest_budget, HarvestBudget, Rectifier};
pub use power::{NodeMode, PowerModel};
pub use switch::{SpdtSwitch, SwitchSchedule, SwitchState};
