//! SPDT RF switch model (ADRF5020-class).
//!
//! Each FSA port is connected through an SPDT switch to either the FSA
//! ground plane (reflective mode) or an envelope detector (absorptive
//! mode) — paper §4. The switch model captures the three properties that
//! matter to the system:
//!
//! * reflection coefficient in each throw position (this is what modulates
//!   the backscatter),
//! * a maximum toggle rate (this is what caps the uplink at 160 Mbps,
//!   paper §9.5),
//! * energy per transition (this is why uplink draws more power than
//!   downlink, paper §9.6).

use milback_dsp::num::Cpx;

/// Throw position of the SPDT switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchState {
    /// Port shorted to the FSA ground plane → beam reflects (|Γ| ≈ 1).
    Reflective,
    /// Port routed to the matched envelope detector → beam absorbs
    /// (|Γ| ≈ 0).
    Absorptive,
}

impl SwitchState {
    /// The opposite throw.
    pub fn toggled(self) -> Self {
        match self {
            SwitchState::Reflective => SwitchState::Absorptive,
            SwitchState::Absorptive => SwitchState::Reflective,
        }
    }
}

/// An SPDT RF switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpdtSwitch {
    /// Insertion loss in the signal path, dB (positive).
    pub insertion_loss_db: f64,
    /// Return loss looking into the matched (absorptive) throw, dB
    /// (positive; higher = better match).
    pub return_loss_db: f64,
    /// Maximum toggle rate, Hz. Toggling faster than this is rejected.
    pub max_toggle_hz: f64,
    /// Static power draw, mW.
    pub static_power_mw: f64,
    /// Energy per state transition, nJ.
    pub toggle_energy_nj: f64,
}

impl SpdtSwitch {
    /// The ADRF5020-class switch used in the MilBack prototype.
    ///
    /// `max_toggle_hz` is set so that two-port OAQFM (2 bits/symbol) tops
    /// out at the paper's 160 Mbps uplink limit (80 Msym/s).
    pub fn adrf5020() -> Self {
        Self {
            insertion_loss_db: 1.0,
            return_loss_db: 22.0,
            max_toggle_hz: 80e6,
            static_power_mw: 0.5,
            toggle_energy_nj: 0.33,
        }
    }

    /// Complex voltage reflection coefficient presented to the FSA port in
    /// the given state.
    ///
    /// * Reflective: a short circuit reflects with Γ = −1, attenuated by
    ///   the round-trip insertion loss.
    /// * Absorptive: the matched detector leaves only the residual return
    ///   loss.
    pub fn gamma(&self, state: SwitchState) -> Cpx {
        match state {
            SwitchState::Reflective => {
                // Signal passes the switch twice (in and back out).
                let a = 10f64.powf(-2.0 * self.insertion_loss_db / 20.0);
                Cpx::new(-a, 0.0)
            }
            SwitchState::Absorptive => {
                let a = 10f64.powf(-self.return_loss_db / 20.0);
                Cpx::new(a, 0.0)
            }
        }
    }

    /// Power transmission into the detector path in the absorptive state
    /// (one-way through the switch): `(1 − |Γ|²)·10^(−IL/10)`.
    pub fn through_gain(&self) -> f64 {
        let g = self.gamma(SwitchState::Absorptive).norm_sq();
        (1.0 - g) * 10f64.powf(-self.insertion_loss_db / 10.0)
    }

    /// Whether a toggle rate (Hz) is within the switch's capability.
    pub fn supports_rate(&self, rate_hz: f64) -> bool {
        rate_hz <= self.max_toggle_hz
    }

    /// Average switching power at `toggle_rate` transitions per second, mW.
    pub fn power_mw(&self, toggle_rate: f64) -> f64 {
        assert!(toggle_rate >= 0.0, "toggle rate must be non-negative");
        self.static_power_mw + self.toggle_energy_nj * 1e-9 * toggle_rate * 1e3
    }
}

/// A time-stamped switch-state schedule, used to drive the channel's
/// reflection-coefficient waveform.
#[derive(Debug, Clone, PartialEq)]
pub enum SwitchSchedule {
    /// The state never changes.
    Constant(SwitchState),
    /// Square-wave modulation at `freq_hz` full cycles per second (two
    /// state transitions per cycle), starting in state `first` at t = 0.
    /// The paper's localization modulation is a 10 kHz square wave.
    SquareWave {
        /// Modulation frequency in Hz (cycles per second).
        freq_hz: f64,
        /// State during the first half-cycle.
        first: SwitchState,
    },
    /// Explicit `(start_time_s, state)` entries, time-sorted; each state
    /// holds until the next entry. Used for data symbols.
    Events(Vec<(f64, SwitchState)>),
}

impl SwitchSchedule {
    /// A 10 kHz localization square wave starting reflective (paper §5.1).
    pub fn milback_localization() -> Self {
        SwitchSchedule::SquareWave {
            freq_hz: 10e3,
            first: SwitchState::Reflective,
        }
    }

    /// Builds an event schedule, validating time order.
    pub fn from_events(events: Vec<(f64, SwitchState)>) -> Self {
        assert!(!events.is_empty(), "schedule needs at least one event");
        assert!(
            events.windows(2).all(|w| w[0].0 <= w[1].0),
            "events must be time-sorted"
        );
        SwitchSchedule::Events(events)
    }

    /// State at time `t` seconds (times before the first event get the
    /// first event's state).
    pub fn state_at(&self, t: f64) -> SwitchState {
        match self {
            SwitchSchedule::Constant(s) => *s,
            SwitchSchedule::SquareWave { freq_hz, first } => {
                let half_period = 0.5 / freq_hz;
                let phase = (t / half_period).floor() as i64;
                if phase.rem_euclid(2) == 0 {
                    *first
                } else {
                    first.toggled()
                }
            }
            SwitchSchedule::Events(events) => {
                let mut state = events[0].1;
                for (ts, s) in events {
                    if *ts <= t {
                        state = *s;
                    } else {
                        break;
                    }
                }
                state
            }
        }
    }

    /// Number of state transitions in `[0, duration)`.
    pub fn transitions_in(&self, duration: f64) -> usize {
        match self {
            SwitchSchedule::Constant(_) => 0,
            SwitchSchedule::SquareWave { freq_hz, .. } => {
                (duration * 2.0 * freq_hz).floor().max(0.0) as usize
            }
            SwitchSchedule::Events(events) => events
                .windows(2)
                .filter(|w| w[1].0 < duration && w[1].1 != w[0].1)
                .count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_reflective_is_near_minus_one() {
        let sw = SpdtSwitch::adrf5020();
        let g = sw.gamma(SwitchState::Reflective);
        assert!(g.re < -0.7 && g.re > -1.0, "{g:?}");
        assert_eq!(g.im, 0.0);
    }

    #[test]
    fn gamma_absorptive_is_small() {
        let sw = SpdtSwitch::adrf5020();
        let g = sw.gamma(SwitchState::Absorptive);
        assert!(g.abs() < 0.1, "{g:?}");
    }

    #[test]
    fn through_gain_below_unity() {
        let sw = SpdtSwitch::adrf5020();
        let g = sw.through_gain();
        assert!(g > 0.5 && g < 1.0, "{g}");
    }

    #[test]
    fn rate_capability() {
        let sw = SpdtSwitch::adrf5020();
        assert!(sw.supports_rate(20e6));
        assert!(sw.supports_rate(80e6));
        assert!(!sw.supports_rate(100e6));
    }

    #[test]
    fn power_grows_with_rate() {
        let sw = SpdtSwitch::adrf5020();
        let idle = sw.power_mw(0.0);
        assert_eq!(idle, sw.static_power_mw);
        let fast = sw.power_mw(20e6);
        assert!(fast > idle + 5.0, "fast {fast}");
    }

    #[test]
    fn toggled_flips() {
        assert_eq!(SwitchState::Reflective.toggled(), SwitchState::Absorptive);
        assert_eq!(SwitchState::Absorptive.toggled(), SwitchState::Reflective);
    }

    #[test]
    fn constant_schedule() {
        let s = SwitchSchedule::Constant(SwitchState::Absorptive);
        assert_eq!(s.state_at(0.0), SwitchState::Absorptive);
        assert_eq!(s.state_at(1.0), SwitchState::Absorptive);
        assert_eq!(s.transitions_in(1.0), 0);
    }

    #[test]
    fn square_wave_schedule_10khz() {
        let s = SwitchSchedule::milback_localization();
        // Half-period is 50 µs.
        assert_eq!(s.state_at(0.0), SwitchState::Reflective);
        assert_eq!(s.state_at(49e-6), SwitchState::Reflective);
        assert_eq!(s.state_at(51e-6), SwitchState::Absorptive);
        assert_eq!(s.state_at(101e-6), SwitchState::Reflective);
        // 10 kHz → 20k transitions per second.
        assert_eq!(s.transitions_in(1.0), 20_000);
    }

    #[test]
    fn event_schedule_lookup() {
        let s = SwitchSchedule::from_events(vec![
            (0.0, SwitchState::Absorptive),
            (1e-6, SwitchState::Reflective),
            (3e-6, SwitchState::Absorptive),
        ]);
        assert_eq!(s.state_at(0.5e-6), SwitchState::Absorptive);
        assert_eq!(s.state_at(2e-6), SwitchState::Reflective);
        assert_eq!(s.state_at(10e-6), SwitchState::Absorptive);
        assert_eq!(s.transitions_in(10e-6), 2);
        assert_eq!(s.transitions_in(2e-6), 1);
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn event_schedule_rejects_unsorted() {
        SwitchSchedule::from_events(vec![
            (1.0, SwitchState::Absorptive),
            (0.0, SwitchState::Reflective),
        ]);
    }
}
