//! Battery and duty-cycle modeling for MilBack nodes.
//!
//! The paper's pitch is devices "with limited energy sources" (§1); this
//! module turns the §9.6 power model into deployment-level answers: how
//! long does a node last on a given cell under a given duty cycle?

use crate::power::{NodeMode, PowerModel};

/// A primary battery (or charged capacity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    /// Usable capacity, joules.
    pub capacity_j: f64,
    /// Self-discharge per year as a fraction of remaining capacity
    /// (coin cells: ~1%/year).
    pub self_discharge_per_year: f64,
    /// Maximum continuous discharge the chemistry supports, watts.
    pub max_power_w: f64,
}

impl Battery {
    /// A CR2032 coin cell: 225 mAh × 3 V ≈ 2430 J, ~1%/yr self-discharge,
    /// a few mA of continuous drain (≈ 45 mW at 3 V with derating).
    pub fn cr2032() -> Self {
        Self {
            capacity_j: 2430.0,
            self_discharge_per_year: 0.01,
            max_power_w: 0.045,
        }
    }

    /// Two AAA alkaline cells: ≈ 1000 mAh × 3 V ≈ 10.8 kJ.
    pub fn aaa_pair() -> Self {
        Self {
            capacity_j: 10_800.0,
            self_discharge_per_year: 0.03,
            max_power_w: 0.5,
        }
    }
}

/// A repeating node activity pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycle {
    /// Period between activity bursts, seconds.
    pub period_s: f64,
    /// Time spent in localization/preamble per burst, seconds.
    pub localization_s: f64,
    /// Time receiving downlink per burst, seconds.
    pub downlink_s: f64,
    /// Time transmitting uplink per burst, seconds.
    pub uplink_s: f64,
    /// Uplink bit rate during the uplink time, bits/s.
    pub uplink_rate: f64,
    /// Sleep power between bursts, watts (switch + detector leakage).
    pub sleep_w: f64,
}

impl DutyCycle {
    /// A once-per-second telemetry pattern: one packet's preamble, a short
    /// command, a 256-byte report at 10 Mbps.
    pub fn telemetry_1hz() -> Self {
        Self {
            period_s: 1.0,
            localization_s: 225e-6,
            downlink_s: 140e-6,
            uplink_s: 206e-6,
            uplink_rate: 10e6,
            sleep_w: 2e-6,
        }
    }

    /// Energy per period, joules, under a power model.
    pub fn energy_per_period(&self, model: &PowerModel) -> f64 {
        let active_s = self.localization_s + self.downlink_s + self.uplink_s;
        assert!(
            active_s <= self.period_s,
            "duty cycle busier than its period"
        );
        let e_loc = model.power_mw(NodeMode::Localization) * 1e-3 * self.localization_s;
        let e_dl = model.power_mw(NodeMode::Downlink) * 1e-3 * self.downlink_s;
        let e_ul = model.power_mw(NodeMode::Uplink {
            bit_rate: self.uplink_rate,
        }) * 1e-3
            * self.uplink_s;
        let e_sleep = self.sleep_w * (self.period_s - active_s);
        e_loc + e_dl + e_ul + e_sleep
    }

    /// Average power, watts.
    pub fn average_power(&self, model: &PowerModel) -> f64 {
        self.energy_per_period(model) / self.period_s
    }

    /// Peak power demanded from the battery, watts.
    pub fn peak_power(&self, model: &PowerModel) -> f64 {
        model.power_mw(NodeMode::Uplink {
            bit_rate: self.uplink_rate,
        }) * 1e-3
    }
}

/// Battery life under a duty cycle, accounting for self-discharge.
/// Returns years, or `None` if the battery cannot source the peak power
/// at all.
pub fn battery_life_years(battery: &Battery, duty: &DutyCycle, model: &PowerModel) -> Option<f64> {
    if duty.peak_power(model) > battery.max_power_w {
        return None;
    }
    let p_avg = duty.average_power(model);
    let seconds_per_year = 3600.0 * 24.0 * 365.25;
    let drain_per_year = p_avg * seconds_per_year;
    let self_per_year = battery.capacity_j * battery.self_discharge_per_year;
    Some(battery.capacity_j / (drain_per_year + self_per_year))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_lasts_years_on_coin_cell() {
        let life = battery_life_years(
            &Battery::cr2032(),
            &DutyCycle::telemetry_1hz(),
            &PowerModel::milback(),
        )
        .expect("peak power exceeded");
        // With ~µJ bursts the life is self-discharge limited: decades of
        // radio budget, which is the whole point of backscatter.
        assert!(life > 5.0, "{life} years");
    }

    #[test]
    fn continuous_uplink_exceeds_coin_cell_peak_when_fast() {
        let mut duty = DutyCycle::telemetry_1hz();
        duty.uplink_rate = 160e6; // switch at full tilt: ~75 mW peak
        let life = battery_life_years(&Battery::cr2032(), &duty, &PowerModel::milback());
        assert!(life.is_none(), "coin cell cannot source 160 Mbps switching");
        // AAA pair can.
        let life = battery_life_years(&Battery::aaa_pair(), &duty, &PowerModel::milback());
        assert!(life.is_some());
    }

    #[test]
    fn denser_duty_cycle_drains_faster() {
        let model = PowerModel::milback();
        let slow = DutyCycle::telemetry_1hz();
        let mut fast = slow;
        fast.period_s = 0.1;
        let l_slow = battery_life_years(&Battery::aaa_pair(), &slow, &model).unwrap();
        let l_fast = battery_life_years(&Battery::aaa_pair(), &fast, &model).unwrap();
        assert!(l_fast < l_slow);
    }

    #[test]
    fn average_power_includes_sleep() {
        let model = PowerModel::milback();
        let duty = DutyCycle::telemetry_1hz();
        let avg = duty.average_power(&model);
        // Bursts are ~570 µs of ~20 mW ≈ 11 µW average, plus 2 µW sleep.
        assert!(avg > 2e-6 && avg < 50e-6, "{avg} W");
    }

    #[test]
    #[should_panic(expected = "busier than its period")]
    fn over_full_duty_cycle_rejected() {
        let mut duty = DutyCycle::telemetry_1hz();
        duty.uplink_s = 2.0;
        duty.energy_per_period(&PowerModel::milback());
    }
}
