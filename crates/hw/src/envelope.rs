//! Envelope (power) detector model (ADL6010-class).
//!
//! The envelope detector is the node's entire receive chain: it converts
//! the mmWave signal captured by an FSA port directly to a baseband
//! voltage, with no mixer or oscillator (paper §4, §6.2). The ADL6010 is a
//! *linear-in-voltage* detector: `V_out ≈ slope · |v_in|`.
//!
//! Two non-idealities matter to MilBack and are modeled here:
//!
//! * finite video bandwidth (rise/fall time) — this is what limits the
//!   downlink to 36 Mbps (paper §9.4);
//! * output noise — together with the received power this sets the
//!   downlink SINR of Figure 14.

use milback_dsp::filter::OnePole;
use milback_dsp::noise::add_real_noise;
use milback_dsp::signal::Signal;
use rand::Rng;

/// An envelope detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvelopeDetector {
    /// Voltage conversion slope, V out per V of RF envelope in.
    pub slope: f64,
    /// Video (output) bandwidth, Hz — sets the rise/fall time.
    pub video_bandwidth: f64,
    /// Output-referred noise density, V/√Hz.
    pub noise_density: f64,
    /// Input impedance, ohms (matched to the FSA port).
    pub input_impedance: f64,
    /// Static power draw, mW.
    pub power_mw: f64,
}

impl EnvelopeDetector {
    /// The ADL6010-class detector of the MilBack prototype.
    ///
    /// A 36 Mbps OOK stream needs ≈ 36 MHz of video bandwidth; the paper
    /// says the detector's rise/fall time is exactly what caps the rate
    /// there, so the model uses 36 MHz.
    pub fn adl6010() -> Self {
        Self {
            slope: 2.1,
            video_bandwidth: 36e6,
            noise_density: 60e-9,
            input_impedance: 50.0,
            power_mw: 8.0,
        }
    }

    /// 10–90% rise time implied by the video bandwidth: `t_r ≈ 0.35/BW`.
    pub fn rise_time(&self) -> f64 {
        0.35 / self.video_bandwidth
    }

    /// RMS output noise over the full video bandwidth, volts.
    pub fn output_noise_rms(&self) -> f64 {
        self.noise_density * self.video_bandwidth.sqrt()
    }

    /// Ideal (noiseless, infinite-bandwidth) output voltage for an RF
    /// input power `p_in` watts: `slope · √(p·R)`.
    pub fn ideal_output(&self, p_in: f64) -> f64 {
        self.slope * (p_in.max(0.0) * self.input_impedance).sqrt()
    }

    /// Detects a complex-baseband RF signal: envelope → slope → video
    /// low-pass → additive output noise. Returns the output voltage at the
    /// signal's sample rate.
    ///
    /// The input samples are interpreted as volts across the detector's
    /// input impedance, so instantaneous input power is `|x|²/R`.
    pub fn detect<R: Rng + ?Sized>(&self, input: &Signal, rng: &mut R) -> Vec<f64> {
        let mut out = Vec::new();
        self.detect_into(input, rng, &mut out);
        out
    }

    /// Allocation-free [`EnvelopeDetector::detect`]: clears and refills
    /// `out`, reusing its capacity. Bitwise identical (same filter state
    /// progression and noise draw order) to the allocating form.
    pub fn detect_into<R: Rng + ?Sized>(&self, input: &Signal, rng: &mut R, out: &mut Vec<f64>) {
        let mut lp = OnePole::new(self.video_bandwidth, input.fs);
        out.clear();
        out.reserve(input.samples.len());
        out.extend(input.samples.iter().map(|c| lp.step(self.slope * c.abs())));
        // Noise within the video bandwidth, as seen at the output sample
        // rate: the density integrates to σ² = e_n²·BW regardless of fs.
        add_real_noise(out, self.output_noise_rms(), rng);
    }

    /// Detects without noise (for calibration / unit tests).
    pub fn detect_clean(&self, input: &Signal) -> Vec<f64> {
        let mut lp = OnePole::new(self.video_bandwidth, input.fs);
        input
            .samples
            .iter()
            .map(|c| lp.step(self.slope * c.abs()))
            .collect()
    }

    /// Output SNR (linear power ratio) for an RF input of power `p_in`
    /// watts: `(slope·√(p·R))² / σ_n²`.
    pub fn output_snr(&self, p_in: f64) -> f64 {
        let v = self.ideal_output(p_in);
        let n = self.output_noise_rms();
        (v * v) / (n * n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_output_scales_with_sqrt_power() {
        let det = EnvelopeDetector::adl6010();
        let v1 = det.ideal_output(1e-6);
        let v4 = det.ideal_output(4e-6);
        assert!((v4 / v1 - 2.0).abs() < 1e-12);
        assert_eq!(det.ideal_output(-1.0), 0.0);
    }

    #[test]
    fn detect_clean_settles_to_ideal() {
        let det = EnvelopeDetector::adl6010();
        let fs = 1e9;
        let p_in = 1e-6; // −30 dBm
        let amp = (p_in * det.input_impedance).sqrt();
        let sig = Signal::tone(fs, 28e9, 0.0, amp, 2000);
        let out = det.detect_clean(&sig);
        let expected = det.ideal_output(p_in);
        assert!(
            (out[1999] - expected).abs() < 1e-3 * expected,
            "settled {} vs {}",
            out[1999],
            expected
        );
    }

    #[test]
    fn rise_time_matches_bandwidth() {
        let det = EnvelopeDetector::adl6010();
        assert!((det.rise_time() - 0.35 / 36e6).abs() < 1e-15);
        // ≈ 9.7 ns.
        assert!(det.rise_time() < 10e-9);
    }

    #[test]
    fn video_bandwidth_limits_fast_ook() {
        let det = EnvelopeDetector::adl6010();
        let fs = 2e9;
        let amp = 1e-3;
        // 200 Mbps OOK: 10 ns bits — far beyond the 36 MHz video BW.
        let fast_bit = (fs / 200e6) as usize;
        let mut samples = Vec::new();
        for k in 0..40 {
            let on = k % 2 == 0;
            for _ in 0..fast_bit {
                samples.push(milback_dsp::num::Cpx::new(if on { amp } else { 0.0 }, 0.0));
            }
        }
        let sig = Signal::new(fs, 28e9, samples);
        let out = det.detect_clean(&sig);
        // The output cannot track: swing collapses toward the mean.
        let late = &out[out.len() / 2..];
        let max = late.iter().cloned().fold(f64::MIN, f64::max);
        let min = late.iter().cloned().fold(f64::MAX, f64::min);
        let full = det.ideal_output(amp * amp / det.input_impedance);
        assert!(
            (max - min) < 0.6 * full,
            "swing {} vs full {}",
            max - min,
            full
        );

        // 10 Mbps OOK: 100 ns bits — comfortably within the video BW.
        let slow_bit = (fs / 10e6) as usize;
        let mut samples = Vec::new();
        for k in 0..10 {
            let on = k % 2 == 0;
            for _ in 0..slow_bit {
                samples.push(milback_dsp::num::Cpx::new(if on { amp } else { 0.0 }, 0.0));
            }
        }
        let sig = Signal::new(fs, 28e9, samples);
        let out = det.detect_clean(&sig);
        let late = &out[out.len() / 2..];
        let max = late.iter().cloned().fold(f64::MIN, f64::max);
        let min = late.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - min) > 0.9 * full, "slow swing {}", max - min);
    }

    #[test]
    fn output_snr_increases_with_power() {
        let det = EnvelopeDetector::adl6010();
        let s1 = det.output_snr(1e-9);
        let s2 = det.output_snr(1e-7);
        assert!((s2 / s1 - 100.0).abs() < 1e-6);
    }

    #[test]
    fn noisy_detection_statistics() {
        let det = EnvelopeDetector::adl6010();
        let mut rng = StdRng::seed_from_u64(9);
        let fs = 1e9;
        let sig = Signal::zeros(fs, 28e9, 100_000);
        let out = det.detect(&sig, &mut rng);
        let rms = (out.iter().map(|v| v * v).sum::<f64>() / out.len() as f64).sqrt();
        let expected = det.output_noise_rms();
        assert!(
            (rms / expected - 1.0).abs() < 0.05,
            "rms {rms} vs {expected}"
        );
    }

    #[test]
    fn detection_is_deterministic_with_seed() {
        let det = EnvelopeDetector::adl6010();
        let sig = Signal::tone(1e9, 28e9, 0.0, 1e-3, 100);
        let a = det.detect(&sig, &mut StdRng::seed_from_u64(1));
        let b = det.detect(&sig, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }
}
