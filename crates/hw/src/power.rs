//! Node power and energy accounting (paper §9.6).
//!
//! The node's only active components are two SPDT switches and two
//! envelope detectors; the MCU is excluded as in the paper (footnote 3:
//! "this power consumption does not include the power consumption of the
//! micro-controller since it is already available in the user devices").
//!
//! Component draws are datasheet-calibrated so the mode totals land on the
//! paper's measurements: 18 mW during localization/downlink and 32 mW
//! during uplink, giving 0.5 nJ/bit at 36 Mbps downlink and 0.8 nJ/bit at
//! 40 Mbps uplink.

use crate::switch::SpdtSwitch;

/// Operating mode of the node, as far as power is concerned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeMode {
    /// Both ports parked (absorptive), nothing toggling.
    Idle,
    /// Localization: ports toggling at the 10 kHz modulation rate.
    Localization,
    /// Downlink reception: ports parked absorptive, detectors listening.
    Downlink,
    /// Uplink transmission at the given raw bit rate (bits/s). OAQFM
    /// carries 2 bits/symbol, so the per-switch toggle rate is
    /// `bit_rate / 2`.
    Uplink {
        /// Raw uplink bit rate in bits/s.
        bit_rate: f64,
    },
}

/// Power model of a MilBack node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// The two SPDT switches.
    pub switch: SpdtSwitch,
    /// Static draw of each envelope detector, mW.
    pub detector_mw: f64,
    /// MCU draw, mW — reported separately, excluded from node totals
    /// (paper footnote 3).
    pub mcu_mw: f64,
}

impl PowerModel {
    /// The MilBack prototype's power model.
    pub fn milback() -> Self {
        Self {
            switch: SpdtSwitch {
                static_power_mw: 0.5,
                toggle_energy_nj: 0.35,
                ..SpdtSwitch::adrf5020()
            },
            detector_mw: 8.5,
            mcu_mw: 5.76,
        }
    }

    /// Per-switch toggle rate (transitions/s) in a mode.
    fn toggle_rate(&self, mode: NodeMode) -> f64 {
        match mode {
            NodeMode::Idle | NodeMode::Downlink => 0.0,
            // 10 kHz square wave → 20k transitions/s.
            NodeMode::Localization => 20e3,
            // One (worst-case) transition per OAQFM symbol per switch.
            NodeMode::Uplink { bit_rate } => bit_rate / 2.0,
        }
    }

    /// Total node power in a mode, mW (MCU excluded).
    pub fn power_mw(&self, mode: NodeMode) -> f64 {
        let per_switch = self.switch.power_mw(self.toggle_rate(mode));
        2.0 * per_switch + 2.0 * self.detector_mw
    }

    /// Total node power including the MCU, mW.
    pub fn power_with_mcu_mw(&self, mode: NodeMode) -> f64 {
        self.power_mw(mode) + self.mcu_mw
    }

    /// Energy per bit in nJ for a communication mode at `bit_rate` bits/s.
    pub fn energy_per_bit_nj(&self, mode: NodeMode, bit_rate: f64) -> f64 {
        assert!(bit_rate > 0.0, "bit rate must be positive");
        self.power_mw(mode) * 1e-3 / bit_rate * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downlink_and_localization_power_is_18mw() {
        let m = PowerModel::milback();
        let dl = m.power_mw(NodeMode::Downlink);
        assert!((dl - 18.0).abs() < 0.5, "downlink {dl} mW");
        let loc = m.power_mw(NodeMode::Localization);
        assert!((loc - 18.0).abs() < 0.5, "localization {loc} mW");
    }

    #[test]
    fn uplink_power_is_32mw_at_40mbps() {
        let m = PowerModel::milback();
        let ul = m.power_mw(NodeMode::Uplink { bit_rate: 40e6 });
        assert!((ul - 32.0).abs() < 1.0, "uplink {ul} mW");
    }

    #[test]
    fn energy_efficiency_matches_paper() {
        let m = PowerModel::milback();
        // Downlink: 18 mW at 36 Mbps → 0.5 nJ/bit.
        let dl = m.energy_per_bit_nj(NodeMode::Downlink, 36e6);
        assert!((dl - 0.5).abs() < 0.05, "downlink {dl} nJ/bit");
        // Uplink: 32 mW at 40 Mbps → 0.8 nJ/bit.
        let ul = m.energy_per_bit_nj(NodeMode::Uplink { bit_rate: 40e6 }, 40e6);
        assert!((ul - 0.8).abs() < 0.05, "uplink {ul} nJ/bit");
    }

    #[test]
    fn uplink_power_grows_with_rate() {
        let m = PowerModel::milback();
        let slow = m.power_mw(NodeMode::Uplink { bit_rate: 10e6 });
        let fast = m.power_mw(NodeMode::Uplink { bit_rate: 160e6 });
        assert!(fast > slow + 20.0, "slow {slow} fast {fast}");
    }

    #[test]
    fn idle_is_cheapest() {
        let m = PowerModel::milback();
        let idle = m.power_mw(NodeMode::Idle);
        assert!(idle <= m.power_mw(NodeMode::Localization));
        assert!(idle <= m.power_mw(NodeMode::Uplink { bit_rate: 1e6 }));
    }

    #[test]
    fn mcu_reported_separately() {
        let m = PowerModel::milback();
        assert!(
            (m.power_with_mcu_mw(NodeMode::Downlink) - m.power_mw(NodeMode::Downlink) - 5.76).abs()
                < 1e-12
        );
    }
}
