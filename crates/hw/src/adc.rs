//! MCU ADC model (MSP430-class).
//!
//! The node's microcontroller samples the two envelope-detector outputs —
//! at 1 MHz for orientation sensing (paper §9.3) and at the symbol rate
//! for downlink data. The model captures sample-rate conversion,
//! quantization and clipping.

use milback_dsp::resample::sample_at;

/// A successive-approximation ADC as found on a low-power MCU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adc {
    /// Sample rate, Hz.
    pub sample_rate: f64,
    /// Resolution in bits.
    pub bits: u32,
    /// Full-scale input voltage (inputs are clipped to `[0, v_ref]`).
    pub v_ref: f64,
}

impl Adc {
    /// The MSP430FR6989-class 12-bit ADC sampling at 1 MHz used for
    /// node-side orientation sensing.
    pub fn msp430() -> Self {
        Self {
            sample_rate: 1e6,
            bits: 12,
            v_ref: 2.5,
        }
    }

    /// Number of quantization levels.
    pub fn levels(&self) -> u64 {
        1u64 << self.bits
    }

    /// Quantization step size, volts.
    pub fn lsb(&self) -> f64 {
        self.v_ref / self.levels() as f64
    }

    /// Quantizes a single voltage to the nearest code's voltage, clipping
    /// to the input range.
    pub fn quantize(&self, v: f64) -> f64 {
        let clipped = v.clamp(0.0, self.v_ref);
        let code = (clipped / self.lsb())
            .round()
            .min((self.levels() - 1) as f64);
        code * self.lsb()
    }

    /// Samples an analog waveform given at rate `fs_in`, producing
    /// quantized samples at the ADC's own rate.
    pub fn capture(&self, analog: &[f64], fs_in: f64) -> Vec<f64> {
        assert!(fs_in > 0.0, "input rate must be positive");
        if analog.is_empty() {
            return Vec::new();
        }
        let duration = analog.len() as f64 / fs_in;
        let n = (duration * self.sample_rate).floor() as usize;
        (0..n)
            .map(|i| self.quantize(sample_at(analog, fs_in, i as f64 / self.sample_rate)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_and_lsb() {
        let adc = Adc::msp430();
        assert_eq!(adc.levels(), 4096);
        assert!((adc.lsb() - 2.5 / 4096.0).abs() < 1e-15);
    }

    #[test]
    fn quantize_rounds_and_clips() {
        let adc = Adc::msp430();
        assert_eq!(adc.quantize(-1.0), 0.0);
        assert_eq!(adc.quantize(5.0), (adc.levels() - 1) as f64 * adc.lsb());
        let v = 1.2345;
        let q = adc.quantize(v);
        assert!((q - v).abs() <= adc.lsb() / 2.0 + 1e-15);
    }

    #[test]
    fn capture_rate_conversion() {
        let adc = Adc::msp430();
        // 10 ms of a 100 MHz-sampled ramp → 10_000 ADC samples.
        let fs_in = 100e6;
        let n_in = (0.01 * fs_in) as usize;
        let analog: Vec<f64> = (0..n_in).map(|i| i as f64 / n_in as f64 * 2.0).collect();
        let out = adc.capture(&analog, fs_in);
        assert_eq!(out.len(), 10_000);
        // Mid-capture value ≈ 1.0 V.
        assert!((out[5000] - 1.0).abs() < 0.01);
    }

    #[test]
    fn capture_empty() {
        let adc = Adc::msp430();
        assert!(adc.capture(&[], 1e6).is_empty());
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let adc = Adc::msp430();
        for i in 0..1000 {
            let v = i as f64 * 0.0025;
            let q = adc.quantize(v);
            assert!((q - v).abs() <= adc.lsb() / 2.0 + 1e-12, "v={v}");
        }
    }
}
