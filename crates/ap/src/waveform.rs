//! AP waveform generation (the Keysight VXG's role, paper §8).
//!
//! Generates every waveform the AP transmits: Field-1 triangular chirps
//! (with the uplink/downlink slot pattern), Field-2 sawtooth chirp trains,
//! the continuous two-tone uplink query, and the OAQFM-keyed downlink
//! payload waveform.

use milback_dsp::chirp::ChirpConfig;
use milback_dsp::num::{Cpx, ZERO};
use milback_dsp::signal::Signal;
use milback_dsp::{buffer, template};
use milback_proto::bits::OaqfmSymbol;
use milback_proto::packet::{LinkMode, PacketConfig, Slot};
use std::rc::Rc;

/// AP transmit configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxConfig {
    /// Transmit power in dBm (27 dBm in the paper).
    pub power_dbm: f64,
    /// Baseband sample rate for generated waveforms, Hz.
    pub fs: f64,
}

impl TxConfig {
    /// The paper's transmitter: 27 dBm, 4 GS/s baseband.
    pub fn milback() -> Self {
        Self {
            power_dbm: 27.0,
            fs: 4e9,
        }
    }

    /// Transmit amplitude in volts (1 Ω convention): `√P`.
    pub fn amplitude(&self) -> f64 {
        milback_dsp::noise::dbm_to_watts(self.power_dbm).sqrt()
    }
}

/// The cached Field-2 sawtooth template for this TX configuration:
/// `cfg` re-sampled at the TX rate and scaled to the TX amplitude.
/// Synthesized once per thread per config (`milback_dsp::template`).
pub fn field2_template(tx: &TxConfig, cfg: &ChirpConfig) -> Rc<Signal> {
    let mut c = *cfg;
    c.fs = tx.fs;
    c.amplitude = tx.amplitude();
    template::sawtooth(&c)
}

/// The cached Field-1 triangular template for this TX configuration.
pub fn field1_template(tx: &TxConfig, cfg: &ChirpConfig) -> Rc<Signal> {
    let mut c = *cfg;
    c.fs = tx.fs;
    c.amplitude = tx.amplitude();
    template::triangular(&c)
}

/// Generates one Field-2 sawtooth chirp at the configured power (a copy
/// of the cached template — bitwise identical to fresh synthesis).
pub fn field2_chirp(tx: &TxConfig, cfg: &ChirpConfig) -> Signal {
    field2_template(tx, cfg).as_ref().clone()
}

/// Generates one Field-1 triangular chirp at the configured power (a
/// copy of the cached template).
pub fn field1_chirp(tx: &TxConfig, cfg: &ChirpConfig) -> Signal {
    field1_template(tx, cfg).as_ref().clone()
}

/// Generates the full Field-1 waveform for a link mode (allocating
/// wrapper over [`field1_waveform_into`]).
pub fn field1_waveform(tx: &TxConfig, pkt: &PacketConfig, mode: LinkMode) -> Signal {
    let mut out = Signal::zeros(tx.fs, 0.0, 0);
    field1_waveform_into(tx, pkt, mode, &mut out);
    out
}

/// Assembles the Field-1 waveform into `out`: three chirp slots, with
/// the middle slot silent in downlink mode. Copies from the cached
/// template; allocation-free on a warmed buffer.
pub fn field1_waveform_into(tx: &TxConfig, pkt: &PacketConfig, mode: LinkMode, out: &mut Signal) {
    let chirp = field1_template(tx, &pkt.field1_chirp);
    let slot_len = chirp.len();
    out.fs = chirp.fs;
    out.fc = chirp.fc;
    buffer::track_growth(&mut out.samples, 3 * slot_len);
    out.samples.clear();
    out.samples.resize(3 * slot_len, ZERO);
    for (k, slot) in PacketConfig::field1_slots(mode).iter().enumerate() {
        if *slot == Slot::Chirp {
            let off = k * slot_len;
            out.samples[off..off + slot_len].copy_from_slice(&chirp.samples);
        }
    }
}

/// Generates the Field-2 waveform: `count` back-to-back sawtooth chirps
/// (allocating wrapper over [`field2_waveform_into`]).
pub fn field2_waveform(tx: &TxConfig, pkt: &PacketConfig) -> Signal {
    let mut out = Signal::zeros(tx.fs, 0.0, 0);
    field2_waveform_into(tx, pkt, &mut out);
    out
}

/// Assembles the Field-2 chirp train into `out` by copying the cached
/// template `field2_count` times (at least once, matching the historical
/// clone-then-append behavior). Allocation-free on a warmed buffer.
pub fn field2_waveform_into(tx: &TxConfig, pkt: &PacketConfig, out: &mut Signal) {
    let chirp = field2_template(tx, &pkt.field2_chirp);
    out.fs = chirp.fs;
    out.fc = chirp.fc;
    let copies = pkt.field2_count.max(1);
    buffer::track_growth(&mut out.samples, copies * chirp.len());
    out.samples.clear();
    for _ in 0..copies {
        out.samples.extend_from_slice(&chirp.samples);
    }
}

/// Generates the continuous two-tone uplink query at RF frequencies
/// `f_a`/`f_b` for `duration` seconds. Total power equals the configured
/// TX power, split across the tones.
pub fn query_waveform(tx: &TxConfig, fc: f64, f_a: f64, f_b: f64, duration: f64) -> Signal {
    let n = (duration * tx.fs).round() as usize;
    milback_dsp::chirp::two_tone(tx.fs, fc, f_a, f_b, tx.amplitude(), n)
}

/// Generates the OAQFM downlink payload waveform: each symbol keys the
/// two tones on/off for one symbol period.
///
/// At normal incidence (`f_a == f_b`) callers should use
/// [`ook_waveform`] instead.
pub fn oaqfm_waveform(
    tx: &TxConfig,
    fc: f64,
    f_a: f64,
    f_b: f64,
    symbols: &[OaqfmSymbol],
    symbol_rate: f64,
) -> Signal {
    let sps = (tx.fs / symbol_rate).round() as usize;
    assert!(sps >= 2, "need at least 2 samples per symbol");
    let n = symbols.len() * sps;
    let amp = tx.amplitude() / 2f64.sqrt();
    let wa = 2.0 * std::f64::consts::PI * (f_a - fc) / tx.fs;
    let wb = 2.0 * std::f64::consts::PI * (f_b - fc) / tx.fs;
    let mut samples = vec![ZERO; n];
    for (k, s) in symbols.iter().enumerate() {
        for i in 0..sps {
            let t = (k * sps + i) as f64;
            let mut v = ZERO;
            if s.a_on {
                v += Cpx::from_polar(amp, wa * t);
            }
            if s.b_on {
                v += Cpx::from_polar(amp, wb * t);
            }
            samples[k * sps + i] = v;
        }
    }
    Signal::new(tx.fs, fc, samples)
}

/// Generates an amplitude-shift-keyed waveform on a single tone at `f`:
/// symbol `k` transmits at `amplitudes[k] × full-scale`. Used by the
/// dense-OAQFM extension (paper §9.4); OOK is the `{0,1}` special case.
pub fn ask_waveform(
    tx: &TxConfig,
    fc: f64,
    f: f64,
    amplitudes: &[f64],
    symbol_rate: f64,
) -> Signal {
    let sps = (tx.fs / symbol_rate).round() as usize;
    assert!(sps >= 2, "need at least 2 samples per symbol");
    let full = tx.amplitude();
    let w = 2.0 * std::f64::consts::PI * (f - fc) / tx.fs;
    let n = amplitudes.len() * sps;
    let mut samples = vec![ZERO; n];
    for (k, &a) in amplitudes.iter().enumerate() {
        assert!(
            (0.0..=1.0 + 1e-9).contains(&a),
            "amplitude {a} out of [0,1]"
        );
        if a > 0.0 {
            for i in 0..sps {
                let t = (k * sps + i) as f64;
                samples[k * sps + i] = Cpx::from_polar(full * a, w * t);
            }
        }
    }
    Signal::new(tx.fs, fc, samples)
}

/// Generates a single-carrier OOK waveform (the normal-incidence
/// fallback): one bit per symbol keyed on a single tone at `f`.
pub fn ook_waveform(tx: &TxConfig, fc: f64, f: f64, bits: &[bool], bit_rate: f64) -> Signal {
    let mut out = Signal::new(tx.fs, fc, Vec::new());
    ook_waveform_into(tx, fc, f, bits, bit_rate, &mut out);
    out
}

/// Allocation-free [`ook_waveform`]: overwrites `out` (rate, carrier and
/// samples), reusing its capacity. Bitwise identical to the allocating
/// form.
pub fn ook_waveform_into(
    tx: &TxConfig,
    fc: f64,
    f: f64,
    bits: &[bool],
    bit_rate: f64,
    out: &mut Signal,
) {
    let sps = (tx.fs / bit_rate).round() as usize;
    assert!(sps >= 2, "need at least 2 samples per bit");
    let amp = tx.amplitude();
    let w = 2.0 * std::f64::consts::PI * (f - fc) / tx.fs;
    let n = bits.len() * sps;
    out.fs = tx.fs;
    out.fc = fc;
    out.samples.clear();
    out.samples.resize(n, ZERO);
    for (k, &on) in bits.iter().enumerate() {
        if on {
            for i in 0..sps {
                let t = (k * sps + i) as f64;
                out.samples[k * sps + i] = Cpx::from_polar(amp, w * t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pkt() -> PacketConfig {
        let mut p = PacketConfig::milback();
        // Shrink for test speed: 1 GHz fs still covers nothing here (the
        // chirps below get regenerated at the TxConfig's fs anyway).
        p.field1_chirp.duration = 2e-6;
        p.field2_chirp.duration = 1e-6;
        p
    }

    fn small_tx() -> TxConfig {
        TxConfig {
            power_dbm: 27.0,
            fs: 4e9,
        }
    }

    #[test]
    fn tx_amplitude_matches_power() {
        let tx = TxConfig::milback();
        let p = tx.amplitude().powi(2);
        assert!((milback_dsp::noise::watts_to_dbm(p) - 27.0).abs() < 1e-9);
    }

    #[test]
    fn field1_uplink_has_three_chirps() {
        let tx = small_tx();
        let pkt = small_pkt();
        let w = field1_waveform(&tx, &pkt, LinkMode::Uplink);
        let slot = w.len() / 3;
        for k in 0..3 {
            let p: f64 = w.samples[k * slot..(k + 1) * slot]
                .iter()
                .map(|c| c.norm_sq())
                .sum::<f64>()
                / slot as f64;
            assert!(p > 0.1, "slot {k} empty");
        }
    }

    #[test]
    fn field1_downlink_has_gap_in_middle() {
        let tx = small_tx();
        let pkt = small_pkt();
        let w = field1_waveform(&tx, &pkt, LinkMode::Downlink);
        let slot = w.len() / 3;
        let p_mid: f64 = w.samples[slot..2 * slot].iter().map(|c| c.norm_sq()).sum();
        assert_eq!(p_mid, 0.0);
        let p_first: f64 = w.samples[..slot].iter().map(|c| c.norm_sq()).sum();
        assert!(p_first > 0.0);
    }

    #[test]
    fn field2_has_five_chirps() {
        let tx = small_tx();
        let pkt = small_pkt();
        let w = field2_waveform(&tx, &pkt);
        let single = field2_chirp(&tx, &pkt.field2_chirp);
        assert_eq!(w.len(), 5 * single.len());
        // Chirp train is periodic: chirp 0 == chirp 3.
        let n = single.len();
        for i in (0..n).step_by(97) {
            assert!((w.samples[i] - w.samples[i + 3 * n]).abs() < 1e-12);
        }
    }

    #[test]
    fn template_waveforms_match_fresh_synthesis_bitwise() {
        let tx = small_tx();
        let pkt = small_pkt();
        // Fresh synthesis, bypassing the template cache entirely.
        let fresh = |cfg: &ChirpConfig, tri: bool| {
            let mut c = *cfg;
            c.fs = tx.fs;
            c.amplitude = tx.amplitude();
            if tri {
                c.triangular()
            } else {
                c.sawtooth()
            }
        };
        assert_eq!(
            field2_chirp(&tx, &pkt.field2_chirp),
            fresh(&pkt.field2_chirp, false)
        );
        assert_eq!(
            field1_chirp(&tx, &pkt.field1_chirp),
            fresh(&pkt.field1_chirp, true)
        );

        // The _into assembly on a reused buffer matches the allocating
        // path bit for bit.
        let f1 = field1_waveform(&tx, &pkt, LinkMode::Downlink);
        let f2 = field2_waveform(&tx, &pkt);
        let mut buf = Signal::zeros(1.0, 0.0, 0);
        for _ in 0..2 {
            field1_waveform_into(&tx, &pkt, LinkMode::Downlink, &mut buf);
            assert_eq!(f1, buf);
            field2_waveform_into(&tx, &pkt, &mut buf);
            assert_eq!(f2, buf);
        }
    }

    #[test]
    fn query_power_is_tx_power() {
        let tx = small_tx();
        let q = query_waveform(&tx, 28e9, 27.5e9, 28.5e9, 1e-6);
        let dbm = milback_dsp::noise::watts_to_dbm(q.power());
        assert!((dbm - 27.0).abs() < 0.2, "{dbm}");
    }

    #[test]
    fn oaqfm_symbol_keying() {
        let tx = small_tx();
        let syms = [
            OaqfmSymbol {
                a_on: false,
                b_on: false,
            },
            OaqfmSymbol {
                a_on: true,
                b_on: true,
            },
            OaqfmSymbol {
                a_on: true,
                b_on: false,
            },
        ];
        let w = oaqfm_waveform(&tx, 28e9, 27.5e9, 28.5e9, &syms, 1e6);
        let sps = (tx.fs / 1e6) as usize;
        let p0: f64 = w.samples[..sps].iter().map(|c| c.norm_sq()).sum();
        assert_eq!(p0, 0.0);
        let p1: f64 = w.samples[sps..2 * sps]
            .iter()
            .map(|c| c.norm_sq())
            .sum::<f64>()
            / sps as f64;
        let p2: f64 = w.samples[2 * sps..]
            .iter()
            .map(|c| c.norm_sq())
            .sum::<f64>()
            / sps as f64;
        // Symbol 11 carries both tones → twice the power of symbol 10.
        assert!((p1 / p2 - 2.0).abs() < 0.05, "p1/p2 {}", p1 / p2);
    }

    #[test]
    fn ask_waveform_levels() {
        let tx = small_tx();
        let amps = [0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0];
        let w = ask_waveform(&tx, 28e9, 28.0e9, &amps, 1e6);
        let sps = (tx.fs / 1e6) as usize;
        let p_full = tx.amplitude().powi(2);
        for (k, &a) in amps.iter().enumerate() {
            let p: f64 = w.samples[k * sps..(k + 1) * sps]
                .iter()
                .map(|c| c.norm_sq())
                .sum::<f64>()
                / sps as f64;
            assert!((p - p_full * a * a).abs() < 1e-9 * p_full, "level {k}");
        }
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn ask_rejects_over_full_scale() {
        let tx = small_tx();
        ask_waveform(&tx, 28e9, 28e9, &[1.5], 1e6);
    }

    #[test]
    fn ook_keying() {
        let tx = small_tx();
        let w = ook_waveform(&tx, 28e9, 28.0e9, &[true, false, true], 1e6);
        let sps = (tx.fs / 1e6) as usize;
        let p_on: f64 = w.samples[..sps].iter().map(|c| c.norm_sq()).sum::<f64>() / sps as f64;
        let p_off: f64 = w.samples[sps..2 * sps].iter().map(|c| c.norm_sq()).sum();
        assert!((milback_dsp::noise::watts_to_dbm(p_on) - 27.0).abs() < 0.1);
        assert_eq!(p_off, 0.0);
    }
}
