//! # milback-ap
//!
//! The MilBack access point:
//!
//! * [`waveform`] — the VXG's role: FMCW chirp trains, two-tone queries,
//!   OAQFM/OOK downlink keying,
//! * [`dechirp`] — FMCW dechirp and range-FFT processing,
//! * [`background`] — five-chirp background subtraction,
//! * [`cfar`] — cell-averaging CFAR detection (alternative gate),
//! * [`doppler`] — slow-time radial-velocity estimation,
//! * [`range_doppler`] — full 2-D range-Doppler maps,
//! * [`ranging`] — the full localization pipeline (range + AoA),
//! * [`pulse_compression`] — matched-filter ranging (ablation reference),
//! * [`aoa`] — two-antenna phase-difference angle estimation,
//! * [`orientation`] — AP-side node-orientation sensing,
//! * [`uplink`] — the Figure-7 uplink receive chain,
//! * [`tone_select`] — orientation-driven OAQFM carrier selection,
//! * [`workspace`] — reusable buffer sets ([`workspace::DspWorkspace`])
//!   that make the localization hot loop allocation-free (DESIGN.md §12).
//!
//! ## Place in the paper's architecture
//!
//! The AP owns every active radio in MilBack (the node is passive), so
//! this crate reproduces the paper's infrastructure side end to end:
//! §5.1 localization is [`dechirp`] → [`background`] → peak search in
//! [`ranging`] with [`aoa`] phase-difference angles; §5.2(b) AP-side
//! orientation sensing is [`orientation`]; the §6.3 uplink receive chain
//! of Figure 7 is [`uplink`]; and the §6.1 carrier choice that makes
//! OAQFM work at an oblique node is [`tone_select`]. [`cfar`] and
//! [`pulse_compression`] are the ablation alternatives the robustness
//! tests swap in.
//!
//! ## Telemetry
//!
//! With `MILBACK_TELEMETRY=1` the pipeline reports
//! `ap.localize.attempts`/`fixes`/`misses`, an `ap.localize.ns` span,
//! `ap.dechirp.spectra`, `ap.cfar.*` and `ap.aoa.*` counters through
//! `milback-telemetry`.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod aoa;
pub mod background;
pub mod cfar;
pub mod coverage;
pub mod dechirp;
pub mod doppler;
pub mod orientation;
pub mod pulse_compression;
pub mod range_doppler;
pub mod ranging;
pub mod tone_select;
pub mod uplink;
pub mod waveform;
pub mod workspace;

pub use aoa::AoaEstimator;
pub use cfar::CfarDetector;
pub use dechirp::RangeProcessor;
pub use doppler::DopplerProcessor;
pub use orientation::ApOrientationEstimator;
pub use pulse_compression::PulseCompressionRanger;
pub use range_doppler::{RangeDopplerMap, RangeDopplerProcessor};
pub use ranging::{LocalizationResult, Localizer};
pub use tone_select::{select_tones, ToneSelection};
pub use uplink::{ook_ber, UplinkReceiver, UplinkScratch, UplinkStats, UPLINK_PILOT};
pub use waveform::TxConfig;
pub use workspace::{with_workspace, DspWorkspace};
