//! The AP's localization pipeline (paper §5.1, §9.2): five-chirp capture →
//! dechirp → range FFT → background subtraction → node peak → range +
//! angle.

use crate::aoa::AoaEstimator;
use crate::background::{
    detection_spectrum, detection_spectrum_into, pairwise_diff_spectra, pairwise_diff_spectra_into,
};
use crate::dechirp::RangeProcessor;
use crate::workspace::DspWorkspace;
use milback_dsp::buffer;
use milback_dsp::detect::{argmax, parabolic_refine};
use milback_dsp::num::Cpx;
use milback_dsp::signal::Signal;

/// A localization fix produced by the AP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalizationResult {
    /// Estimated one-way range to the node, meters.
    pub range: f64,
    /// Estimated azimuth of the node, radians. `None` when the AoA phase
    /// fell outside the unambiguous range.
    pub angle: Option<f64>,
    /// Detection power at the node's range bin (arbitrary units).
    pub peak_power: f64,
}

/// The AP's range+angle estimator.
#[derive(Debug, Clone, Copy)]
pub struct Localizer {
    /// Range processing (dechirp + FFT) parameters.
    pub proc: RangeProcessor,
    /// AoA estimation parameters.
    pub aoa: AoaEstimator,
    /// Minimum search range, meters — excludes the self-interference /
    /// DC region of the range profile.
    pub min_range: f64,
    /// Maximum search range, meters.
    pub max_range: f64,
    /// Sub-bin (parabolic) peak refinement. `true` is the library
    /// default; `false` reproduces the paper's bin-resolution pipeline
    /// (range quantized to `c/2B` steps), which is what Figure 12a's
    /// error magnitudes correspond to.
    pub sub_bin: bool,
}

impl Localizer {
    /// Builds a localizer for the given chirp, searching 0.5–15 m.
    pub fn new(proc: RangeProcessor) -> Self {
        Self {
            proc,
            aoa: AoaEstimator::milback(),
            min_range: 0.5,
            max_range: 15.0,
            sub_bin: true,
        }
    }

    /// Bin index corresponding to a range (truncating).
    fn range_to_bin(&self, range: f64, fs: f64) -> usize {
        let tau = 2.0 * range / milback_rf::geometry::SPEED_OF_LIGHT;
        let beat = tau * self.proc.chirp.slope();
        (beat * self.proc.fft_len as f64 / fs) as usize
    }

    /// Index of the difference with the largest energy in the bins
    /// `[peak−half, peak+half]`.
    fn strongest_at_bin(diffs: &[Vec<Cpx>], peak: usize, half: usize) -> usize {
        let mut best = 0;
        let mut best_e = f64::MIN;
        for (i, d) in diffs.iter().enumerate() {
            let lo = peak.saturating_sub(half);
            let hi = (peak + half + 1).min(d.len());
            let e: f64 = d[lo..hi].iter().map(|c| c.norm_sq()).sum();
            if e > best_e {
                best_e = e;
                best = i;
            }
        }
        best
    }

    /// Dechirps, FFTs and background-subtracts a multi-chirp capture.
    /// Returns the per-antenna lists of complex range-profile differences.
    pub fn profile_diffs(
        &self,
        tx_ref: &Signal,
        captures: &[[Signal; 2]],
    ) -> (Vec<Vec<Cpx>>, Vec<Vec<Cpx>>) {
        assert!(captures.len() >= 2, "need at least two chirps");
        let spectra: Vec<[Vec<Cpx>; 2]> = captures
            .iter()
            .map(|pair| {
                [
                    self.proc
                        .range_profile(&self.proc.dechirp(&pair[0], tx_ref)),
                    self.proc
                        .range_profile(&self.proc.dechirp(&pair[1], tx_ref)),
                ]
            })
            .collect();
        let s0: Vec<Vec<Cpx>> = spectra.iter().map(|p| p[0].clone()).collect();
        let s1: Vec<Vec<Cpx>> = spectra.iter().map(|p| p[1].clone()).collect();
        (pairwise_diff_spectra(&s0), pairwise_diff_spectra(&s1))
    }

    /// Workspace variant of [`Localizer::profile_diffs`]: fills
    /// `ws.profiles` and `ws.diffs` per antenna, allocation-free on a
    /// warmed workspace, bitwise identical to the allocating path.
    ///
    /// Per antenna, all chirps are dechirped and windowed into
    /// `ws.batch`, the range FFTs run as **one batched plan traversal**
    /// ([`milback_dsp::plan::FftPlan::forward_many_in_place`]), and the
    /// spectra are flipped into the profile pool. Each chirp's profile
    /// is an independent FP computation performed by the same kernels,
    /// so batching changes nothing numerically (pinned by the
    /// golden-vector tests in `milback_dsp::plan` and the
    /// `process_with == process` test below).
    pub fn profile_diffs_with(
        &self,
        ws: &mut DspWorkspace,
        tx_ref: &Signal,
        captures: &[[Signal; 2]],
    ) {
        assert!(captures.len() >= 2, "need at least two chirps");
        for ant in 0..2 {
            DspWorkspace::ensure_pool(&mut ws.profiles[ant], captures.len());
            DspWorkspace::ensure_pool(&mut ws.batch, captures.len());
            for (i, pair) in captures.iter().enumerate() {
                self.proc.dechirp_into(&pair[ant], tx_ref, &mut ws.dechirp);
                self.proc.window_and_pad_into(&ws.dechirp, &mut ws.batch[i]);
            }
            milback_dsp::plan::with_plan(self.proc.fft_len, |p| {
                p.forward_many_in_place(&mut ws.batch)
            });
            for (spec, prof) in ws.batch.iter().zip(ws.profiles[ant].iter_mut()) {
                self.proc.flip_into(spec, prof);
            }
            pairwise_diff_spectra_into(&ws.profiles[ant], &mut ws.diffs[ant]);
        }
    }

    /// Masked variant of [`Localizer::profile_diffs_with`]: processes
    /// only the chirps whose `alive` flag is set, in capture order,
    /// without copying the retained subset. Bitwise identical to
    /// filtering `captures` through `alive` and calling
    /// `profile_diffs_with` on the copy (each chirp's profile is an
    /// independent computation). The session triage path uses this so a
    /// reduced-chirp fallback stays allocation-free on a warmed
    /// workspace.
    pub fn profile_diffs_masked_with(
        &self,
        ws: &mut DspWorkspace,
        tx_ref: &Signal,
        captures: &[[Signal; 2]],
        alive: &[bool],
    ) {
        assert_eq!(alive.len(), captures.len(), "mask length mismatch");
        let n_alive = alive.iter().filter(|&&a| a).count();
        assert!(n_alive >= 2, "need at least two live chirps");
        for ant in 0..2 {
            DspWorkspace::ensure_pool(&mut ws.profiles[ant], n_alive);
            let mut k = 0;
            for (pair, &live) in captures.iter().zip(alive) {
                if !live {
                    continue;
                }
                self.proc.dechirp_into(&pair[ant], tx_ref, &mut ws.dechirp);
                self.proc
                    .range_profile_into(&ws.dechirp, &mut ws.fft, &mut ws.profiles[ant][k]);
                k += 1;
            }
            pairwise_diff_spectra_into(&ws.profiles[ant], &mut ws.diffs[ant]);
        }
    }

    /// Finds the node's range bin in a detection spectrum: the strongest
    /// in-window bin, provided it rises at least 10 dB above the
    /// subtraction-residue floor.
    pub fn find_node_bin(&self, det: &[f64], fs: f64) -> Option<usize> {
        self.find_node_bin_with(det, fs, &mut Vec::new())
    }

    /// [`Localizer::find_node_bin`] with a caller-owned sort buffer for
    /// the noise-floor estimate.
    pub fn find_node_bin_with(
        &self,
        det: &[f64],
        fs: f64,
        scratch: &mut Vec<f64>,
    ) -> Option<usize> {
        let lo = self.range_to_bin(self.min_range, fs).max(1);
        let hi = self.range_to_bin(self.max_range, fs).min(det.len() / 2 - 1);
        if lo >= hi {
            return None;
        }
        let window = &det[lo..hi];
        let rel = argmax(window)?;
        let peak = lo + rel;
        let floor = milback_dsp::detect::noise_floor_with(window, 0.5, scratch);
        if det[peak] < 5.0 * floor.max(f64::MIN_POSITIVE) {
            return None;
        }
        Some(peak)
    }

    /// Processes a five-chirp (or more) capture.
    ///
    /// `captures[i]` holds the two RX antennas' raw captures of chirp `i`;
    /// `tx_ref` is the transmitted chirp reference. Returns `None` when no
    /// modulated return rises above the subtraction residue.
    pub fn process(&self, tx_ref: &Signal, captures: &[[Signal; 2]]) -> Option<LocalizationResult> {
        let _span = milback_telemetry::span("ap.localize.ns");
        milback_telemetry::counter_add("ap.localize.attempts", 1);
        let fs = tx_ref.fs;
        let (d0, d1) = self.profile_diffs(tx_ref, captures);

        // Detection spectrum: sum the two antennas' per-bin maxima.
        let det0 = detection_spectrum(&d0);
        let det1 = detection_spectrum(&d1);
        let det: Vec<f64> = det0.iter().zip(&det1).map(|(a, b)| a + b).collect();

        let peak = match self.find_node_bin(&det, fs) {
            Some(p) => p,
            None => {
                milback_telemetry::counter_add("ap.localize.misses", 1);
                return None;
            }
        };
        milback_telemetry::counter_add("ap.localize.fixes", 1);
        milback_telemetry::observe("ap.localize.peak_bin", peak as u64);
        let peak_power = det[peak];
        let refined = if self.sub_bin {
            parabolic_refine(&det[..det.len() / 2], peak)
        } else {
            peak as f64
        };
        let range = self.proc.bin_to_range(refined, fs);

        // AoA from the difference pair with the most energy *at the node's
        // bin* (total-energy selection can be fooled by clutter-residue
        // energy smeared across the profile by trigger jitter). The same
        // pair index is used at both antennas — the node's state sequence
        // is common.
        let best = Self::strongest_at_bin(&d0, peak, 2);
        let angle = self.aoa.estimate_windowed(&d0[best], &d1[best], peak, 2);

        Some(LocalizationResult {
            range,
            angle,
            peak_power,
        })
    }

    /// Workspace variant of [`Localizer::process`]: the entire burst runs
    /// in `ws`'s buffers, so a warmed workspace makes the call
    /// allocation-free (pinned by `tests/zero_alloc.rs`) while returning
    /// a bitwise-identical [`LocalizationResult`] (pinned by
    /// `tests/workspace_equivalence.rs`). Telemetry semantics match
    /// `process` exactly.
    pub fn process_with(
        &self,
        ws: &mut DspWorkspace,
        tx_ref: &Signal,
        captures: &[[Signal; 2]],
    ) -> Option<LocalizationResult> {
        let _span = milback_telemetry::span("ap.localize.ns");
        milback_telemetry::counter_add("ap.localize.attempts", 1);
        self.profile_diffs_with(ws, tx_ref, captures);
        self.finish_with(ws, tx_ref.fs)
    }

    /// Masked variant of [`Localizer::process_with`]: localizes from the
    /// chirps whose `alive` flag is set, without copying the retained
    /// subset out of `captures`. Bitwise identical to filtering the
    /// captures through the mask and calling `process_with` on the copy
    /// (pinned by a unit test below); allocation-free on a warmed
    /// workspace. The session's dead-chirp triage runs on this.
    pub fn process_masked_with(
        &self,
        ws: &mut DspWorkspace,
        tx_ref: &Signal,
        captures: &[[Signal; 2]],
        alive: &[bool],
    ) -> Option<LocalizationResult> {
        let _span = milback_telemetry::span("ap.localize.ns");
        milback_telemetry::counter_add("ap.localize.attempts", 1);
        self.profile_diffs_masked_with(ws, tx_ref, captures, alive);
        self.finish_with(ws, tx_ref.fs)
    }

    /// Shared tail of the workspace pipelines: detection spectrum, peak
    /// search, refinement and AoA over the diffs already in `ws`.
    fn finish_with(&self, ws: &mut DspWorkspace, fs: f64) -> Option<LocalizationResult> {
        // Detection spectrum: sum the two antennas' per-bin maxima.
        detection_spectrum_into(&ws.diffs[0], &mut ws.det[0]);
        detection_spectrum_into(&ws.diffs[1], &mut ws.det[1]);
        buffer::track_growth(&mut ws.det_sum, ws.det[0].len());
        ws.det_sum.clear();
        ws.det_sum
            .extend(ws.det[0].iter().zip(&ws.det[1]).map(|(a, b)| a + b));

        let peak = match self.find_node_bin_with(&ws.det_sum, fs, &mut ws.floor_scratch) {
            Some(p) => p,
            None => {
                milback_telemetry::counter_add("ap.localize.misses", 1);
                return None;
            }
        };
        milback_telemetry::counter_add("ap.localize.fixes", 1);
        milback_telemetry::observe("ap.localize.peak_bin", peak as u64);
        let peak_power = ws.det_sum[peak];
        let refined = if self.sub_bin {
            parabolic_refine(&ws.det_sum[..ws.det_sum.len() / 2], peak)
        } else {
            peak as f64
        };
        let range = self.proc.bin_to_range(refined, fs);

        // Same difference-pair selection as `process` (see the comment
        // there); the pair index is shared across antennas.
        let best = Self::strongest_at_bin(&ws.diffs[0], peak, 2);
        let angle = self
            .aoa
            .estimate_windowed(&ws.diffs[0][best], &ws.diffs[1][best], peak, 2);

        Some(LocalizationResult {
            range,
            angle,
            peak_power,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_dsp::chirp::ChirpConfig;
    use milback_rf::geometry::SPEED_OF_LIGHT;
    use std::f64::consts::PI;

    fn test_chirp() -> ChirpConfig {
        ChirpConfig {
            f_start: 26.5e9,
            f_stop: 29.5e9,
            duration: 4e-6,
            fs: 3.2e9,
            amplitude: 1.0,
        }
    }

    /// Builds synthetic captures: a static clutter echo plus a node echo
    /// that toggles between chirps, at both antennas with an AoA phase.
    fn synthetic_captures(
        d_node: f64,
        node_angle: f64,
        d_clutter: f64,
        clutter_amp: f64,
    ) -> (Signal, Vec<[Signal; 2]>) {
        let cfg = test_chirp();
        let tx = cfg.sawtooth();
        let aoa = AoaEstimator::milback();
        let dphi = aoa.angle_to_phase(node_angle);
        let mut captures = Vec::new();
        for i in 0..5 {
            let node_amp = if i % 2 == 0 { 0.01 } else { 0.001 }; // toggling
            let mut pair = Vec::new();
            for ant in 0..2 {
                let mut rx = Signal::zeros(tx.fs, tx.fc, tx.len());
                // Clutter (static, same at both antennas).
                let tau_c = 2.0 * d_clutter / SPEED_OF_LIGHT;
                let mut e = tx.delayed(tau_c);
                e.rotate(Cpx::from_polar(clutter_amp, -2.0 * PI * tx.fc * tau_c));
                rx.add(&e);
                // Node (toggling, with per-antenna AoA phase).
                let tau_n = 2.0 * d_node / SPEED_OF_LIGHT;
                let extra = if ant == 0 { dphi } else { 0.0 };
                let mut e = tx.delayed(tau_n);
                e.rotate(Cpx::from_polar(node_amp, -2.0 * PI * tx.fc * tau_n + extra));
                rx.add(&e);
                pair.push(rx);
            }
            captures.push([pair[0].clone(), pair[1].clone()]);
        }
        (tx, captures)
    }

    #[test]
    fn localizes_node_under_strong_clutter() {
        let (tx, caps) = synthetic_captures(3.0, 0.2, 5.0, 1.0);
        let loc = Localizer::new(RangeProcessor::new(test_chirp(), 2));
        let r = loc.process(&tx, &caps).expect("node not found");
        assert!((r.range - 3.0).abs() < 0.05, "range {}", r.range);
        let angle = r.angle.expect("no angle");
        assert!((angle - 0.2).abs() < 0.02, "angle {angle}");
    }

    #[test]
    fn clutter_alone_yields_none() {
        let (tx, caps) = synthetic_captures(3.0, 0.0, 5.0, 1.0);
        // Remove the node by keeping only the static parts: re-synthesize
        // with zero node amplitude via equal chirps.
        let caps_static: Vec<[Signal; 2]> = vec![caps[0].clone(); 5];
        let loc = Localizer::new(RangeProcessor::new(test_chirp(), 2));
        assert!(loc.process(&tx, &caps_static).is_none());
    }

    #[test]
    fn different_distances_resolve() {
        let loc = Localizer::new(RangeProcessor::new(test_chirp(), 2));
        for d in [1.0, 2.0, 5.0, 8.0] {
            let (tx, caps) = synthetic_captures(d, 0.0, 4.0, 0.5);
            let r = loc.process(&tx, &caps).expect("node not found");
            assert!((r.range - d).abs() < 0.05, "d {d}: range {}", r.range);
        }
    }

    #[test]
    fn angle_sign_recovered() {
        let loc = Localizer::new(RangeProcessor::new(test_chirp(), 2));
        for ang in [-0.3f64, -0.1, 0.1, 0.3] {
            let (tx, caps) = synthetic_captures(2.5, ang, 6.0, 0.8);
            let r = loc.process(&tx, &caps).unwrap();
            let got = r.angle.unwrap();
            assert!((got - ang).abs() < 0.02, "true {ang}, got {got}");
        }
    }

    #[test]
    fn process_with_matches_process_bitwise() {
        let loc = Localizer::new(RangeProcessor::new(test_chirp(), 2));
        let mut ws = DspWorkspace::new();
        for d in [1.5, 3.0, 6.0] {
            let (tx, caps) = synthetic_captures(d, 0.15, 5.0, 0.8);
            let expect = loc.process(&tx, &caps);
            assert!(expect.is_some());
            // A workspace reused across bursts (and distances) must keep
            // reproducing the allocating pipeline exactly.
            for _ in 0..2 {
                assert_eq!(loc.process_with(&mut ws, &tx, &caps), expect);
            }
        }
    }

    #[test]
    fn process_masked_with_matches_retained_copy_bitwise() {
        let loc = Localizer::new(RangeProcessor::new(test_chirp(), 2));
        let (tx, caps) = synthetic_captures(2.5, 0.1, 5.0, 0.8);
        let masks: [&[bool]; 3] = [
            &[true, true, true, true, true],
            &[true, false, true, true, true],
            &[false, true, true, false, true],
        ];
        let mut ws_masked = DspWorkspace::new();
        let mut ws_copy = DspWorkspace::new();
        for alive in masks {
            let retained: Vec<[Signal; 2]> = caps
                .iter()
                .zip(alive)
                .filter(|(_, &a)| a)
                .map(|(pair, _)| pair.clone())
                .collect();
            let expect = loc.process_with(&mut ws_copy, &tx, &retained);
            // Reused masked workspace across changing mask widths must
            // keep matching the copy path exactly.
            for _ in 0..2 {
                let got = loc.process_masked_with(&mut ws_masked, &tx, &caps, alive);
                assert_eq!(got, expect, "mask {alive:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "two live chirps")]
    fn process_masked_with_rejects_single_survivor() {
        let loc = Localizer::new(RangeProcessor::new(test_chirp(), 2));
        let (tx, caps) = synthetic_captures(2.5, 0.1, 5.0, 0.8);
        let mut ws = DspWorkspace::new();
        loc.process_masked_with(&mut ws, &tx, &caps, &[false, false, false, false, true]);
    }

    #[test]
    fn min_range_excludes_near_region() {
        // Node parked at 0.2 m — inside the excluded self-interference
        // region; the localizer must not report it.
        let (tx, caps) = synthetic_captures(0.2, 0.0, 9.0, 0.001);
        let loc = Localizer::new(RangeProcessor::new(test_chirp(), 2));
        if let Some(r) = loc.process(&tx, &caps) {
            assert!(
                r.range >= 0.5,
                "reported range inside excluded region: {}",
                r.range
            );
        }
    }
}
