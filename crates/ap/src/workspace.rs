//! Reusable DSP workspaces for the AP's hot loops (DESIGN.md §12).
//!
//! A five-chirp localization burst runs dechirp → window/zero-pad →
//! range FFT → background subtraction → detection → noise floor ten
//! times over (five chirps × two antennas). The allocating pipeline
//! churns a fresh set of `Vec` buffers per stage per chirp; a
//! [`DspWorkspace`] owns one set of buffers that every stage writes
//! into through the `_into` variants, so a warmed burst performs zero
//! heap allocations (pinned by `tests/zero_alloc.rs`).
//!
//! ## Ownership rules
//!
//! * A workspace is plain mutable state — callers may own one directly
//!   ([`DspWorkspace::new`]) and thread it through
//!   [`crate::ranging::Localizer::process_with`] and friends.
//! * [`with_workspace`] lends the thread-local workspace instead, which
//!   is what `milback::batch` workers use: each worker thread warms its
//!   own workspace on the first trial and reuses it for the rest of the
//!   batch. Re-entrant use (a closure calling [`with_workspace`] again)
//!   falls back to a fresh temporary workspace rather than panicking.
//! * Buffers only ever grow (to the largest capture processed on that
//!   thread); nothing shrinks or frees until the thread exits.
//!
//! ## Telemetry
//!
//! * `dsp.workspace.reuse` — one count per [`with_workspace`] checkout.
//!   Checkout counts depend only on the work submitted, so the counter
//!   is thread-invariant and survives the deterministic telemetry view.
//! * `dsp.workspace.grow.local` — one count per buffer reallocation
//!   (reported by the fill sites via `milback_dsp::buffer`). Growth
//!   depends on per-thread warm-up order, hence `.local`.

use milback_dsp::num::Cpx;
use milback_telemetry as telemetry;
use std::cell::RefCell;

/// Caller-owned buffer set for the dechirp → FFT → background →
/// detection chain. Index `[0]`/`[1]` of the per-antenna arrays is the
/// RX antenna.
#[derive(Debug, Default)]
pub struct DspWorkspace {
    /// Dechirped samples of the chirp currently being processed.
    pub dechirp: Vec<Cpx>,
    /// Windowed, zero-padded FFT buffer (the range spectrum).
    pub fft: Vec<Cpx>,
    /// Per-antenna complex range profiles, one inner buffer per chirp.
    pub profiles: [Vec<Vec<Cpx>>; 2],
    /// Staging buffers for the batched range FFT: each chirp's windowed,
    /// zero-padded input, transformed in one
    /// `FftPlan::forward_many_in_place` traversal (DESIGN.md §17).
    pub batch: Vec<Vec<Cpx>>,
    /// Per-antenna background-subtraction differences (the history of
    /// consecutive-chirp subtractions).
    pub diffs: [Vec<Vec<Cpx>>; 2],
    /// Per-antenna detection spectra (range-spectrum magnitudes).
    pub det: [Vec<f64>; 2],
    /// Antenna-summed detection spectrum.
    pub det_sum: Vec<f64>,
    /// Sort scratch for the noise-floor estimate.
    pub floor_scratch: Vec<f64>,
    /// CFAR local-floor estimates.
    pub cfar_floors: Vec<f64>,
    /// CFAR hit indices.
    pub cfar_hits: Vec<usize>,
    /// f32 spectrum buffer for the opt-in `Fidelity::Sweep` tier.
    pub spec32: Vec<milback_dsp::num32::Cpx32>,
    /// Range-power buffer for the sweep tier.
    pub power: Vec<f64>,
}

impl DspWorkspace {
    /// An empty workspace; buffers grow to working size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes a buffer pool (outer vector of per-chirp buffers) to `n`
    /// entries, keeping the already-grown inner buffers.
    pub fn ensure_pool(pool: &mut Vec<Vec<Cpx>>, n: usize) {
        milback_dsp::buffer::track_growth(pool, n);
        pool.truncate(n);
        while pool.len() < n {
            pool.push(Vec::new());
        }
    }
}

thread_local! {
    static WORKSPACE: RefCell<DspWorkspace> = RefCell::new(DspWorkspace::new());
}

/// Runs `f` with this thread's shared [`DspWorkspace`].
///
/// Counts one `dsp.workspace.reuse` per checkout. If the workspace is
/// already checked out further up the stack (re-entrant use), `f` runs
/// on a fresh temporary workspace instead — correctness never depends
/// on which buffer set a call lands on.
pub fn with_workspace<R>(f: impl FnOnce(&mut DspWorkspace) -> R) -> R {
    telemetry::counter_add("dsp.workspace.reuse", 1);
    WORKSPACE.with(|w| match w.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut DspWorkspace::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_keeps_inner_buffers() {
        let mut pool = vec![vec![Cpx::new(1.0, 0.0); 64], vec![Cpx::new(2.0, 0.0); 64]];
        let caps: Vec<usize> = pool.iter().map(Vec::capacity).collect();
        DspWorkspace::ensure_pool(&mut pool, 5);
        assert_eq!(pool.len(), 5);
        assert_eq!(pool[0].capacity(), caps[0]);
        assert_eq!(pool[1].capacity(), caps[1]);
        DspWorkspace::ensure_pool(&mut pool, 1);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn with_workspace_reuses_buffers_and_tolerates_nesting() {
        std::thread::spawn(|| {
            with_workspace(|ws| {
                ws.dechirp.resize(100, Cpx::new(0.0, 0.0));
            });
            with_workspace(|ws| {
                assert!(ws.dechirp.capacity() >= 100, "workspace was not reused");
                // Nested checkout must not panic; it sees a fresh set.
                with_workspace(|inner| {
                    assert_eq!(inner.dechirp.capacity(), 0);
                });
            });
        })
        .join()
        .unwrap();
    }
}
