//! Background subtraction over consecutive chirps (paper §5.1).
//!
//! Static reflectors (walls, desks, self-interference) return identical
//! echoes chirp after chirp; the node, toggling at 10 kHz, does not.
//! Subtracting consecutive chirp captures therefore cancels everything
//! *except* the node. The AP takes five consecutive chirps, forms the four
//! adjacent differences, and uses the strongest difference for detection.
//!
//! The subtraction works identically on time-domain dechirped signals and
//! on their spectra (the FFT is linear); both forms are provided because
//! ranging wants spectra and AP-side orientation sensing wants the
//! time-domain difference.

use milback_dsp::buffer;
use milback_dsp::num::Cpx;
use milback_dsp::signal::Signal;

/// Pairwise differences of consecutive chirp captures (time domain).
/// Returns `n−1` difference signals.
pub fn pairwise_diff_signals(chirps: &[Signal]) -> Vec<Signal> {
    assert!(chirps.len() >= 2, "need at least two chirps to subtract");
    chirps
        .windows(2)
        .map(|w| {
            assert_eq!(w[0].len(), w[1].len(), "chirp length mismatch");
            let samples = w[1]
                .samples
                .iter()
                .zip(&w[0].samples)
                .map(|(b, a)| *b - *a)
                .collect();
            Signal::new(w[0].fs, w[0].fc, samples)
        })
        .collect()
}

/// Pairwise differences of consecutive chirp spectra (allocating
/// wrapper over [`pairwise_diff_spectra_into`]).
pub fn pairwise_diff_spectra(spectra: &[Vec<Cpx>]) -> Vec<Vec<Cpx>> {
    let mut out = Vec::new();
    pairwise_diff_spectra_into(spectra, &mut out);
    out
}

/// Pairwise differences of consecutive chirp spectra, written into
/// `out`. Both the outer vector and each inner difference buffer reuse
/// their capacity, so a warmed five-chirp burst performs no allocation.
pub fn pairwise_diff_spectra_into(spectra: &[Vec<Cpx>], out: &mut Vec<Vec<Cpx>>) {
    assert!(spectra.len() >= 2, "need at least two spectra to subtract");
    let n_diffs = spectra.len() - 1;
    buffer::track_growth(out, n_diffs);
    out.truncate(n_diffs);
    while out.len() < n_diffs {
        out.push(Vec::new());
    }
    for (d, w) in out.iter_mut().zip(spectra.windows(2)) {
        assert_eq!(w[0].len(), w[1].len(), "spectrum length mismatch");
        buffer::track_growth(d, w[0].len());
        d.clear();
        d.extend(w[1].iter().zip(&w[0]).map(|(b, a)| *b - *a));
    }
}

/// Index of the difference with the largest total energy — the pair that
/// straddled a node state transition.
pub fn strongest_diff<T: DiffEnergy>(diffs: &[T]) -> usize {
    assert!(!diffs.is_empty(), "no differences given");
    let mut best = 0;
    let mut best_e = f64::MIN;
    for (i, d) in diffs.iter().enumerate() {
        let e = d.diff_energy();
        if e > best_e {
            best_e = e;
            best = i;
        }
    }
    best
}

/// Per-bin detection power: the maximum of `|d[k]|²` across all
/// differences. Static clutter is near zero in every difference; the
/// node's bin is large in at least one. (Allocating wrapper over
/// [`detection_spectrum_into`].)
pub fn detection_spectrum(diffs: &[Vec<Cpx>]) -> Vec<f64> {
    let mut out = Vec::new();
    detection_spectrum_into(diffs, &mut out);
    out
}

/// Per-bin detection power written into `out`, reusing its capacity.
pub fn detection_spectrum_into(diffs: &[Vec<Cpx>], out: &mut Vec<f64>) {
    assert!(!diffs.is_empty(), "no differences given");
    let n = diffs[0].len();
    buffer::track_growth(out, n);
    out.clear();
    out.resize(n, 0.0);
    for d in diffs {
        for (o, c) in out.iter_mut().zip(d) {
            *o = (*o).max(c.norm_sq());
        }
    }
}

/// Total-energy abstraction so [`strongest_diff`] works on both forms.
/// (Named `diff_energy` so it cannot be shadowed by `Signal`'s inherent
/// `energy` method.)
pub trait DiffEnergy {
    /// Total energy of the difference.
    fn diff_energy(&self) -> f64;
}

impl DiffEnergy for Signal {
    fn diff_energy(&self) -> f64 {
        self.samples.iter().map(|c| c.norm_sq()).sum()
    }
}

impl DiffEnergy for Vec<Cpx> {
    fn diff_energy(&self) -> f64 {
        self.iter().map(|c| c.norm_sq()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(amp: f64, n: usize) -> Signal {
        Signal::tone(1e6, 0.0, 1e3, amp, n)
    }

    #[test]
    fn static_returns_cancel() {
        let chirps = vec![tone(1.0, 64); 5];
        let diffs = pairwise_diff_signals(&chirps);
        assert_eq!(diffs.len(), 4);
        for d in &diffs {
            assert!(
                d.diff_energy() < 1e-20,
                "static energy leaked: {}",
                d.diff_energy()
            );
        }
    }

    #[test]
    fn modulated_return_survives() {
        // Node "on" in chirps 0-2, "off" in 3-4 → only diff 2→3 is nonzero.
        let on = tone(1.0, 64);
        let off = tone(0.1, 64);
        let chirps = vec![on.clone(), on.clone(), on, off.clone(), off];
        let diffs = pairwise_diff_signals(&chirps);
        assert!(diffs[0].diff_energy() < 1e-20);
        assert!(diffs[2].diff_energy() > 0.1);
        assert_eq!(strongest_diff(&diffs), 2);
    }

    #[test]
    fn spectra_subtraction_matches_fft_linearity() {
        let a = tone(1.0, 64);
        let b = tone(0.3, 64);
        let sa = milback_dsp::fft::fft(&a.samples);
        let sb = milback_dsp::fft::fft(&b.samples);
        let diffs = pairwise_diff_spectra(&[sa, sb]);
        // FFT(b−a) == FFT(b) − FFT(a).
        let direct = milback_dsp::fft::fft(
            &b.samples
                .iter()
                .zip(&a.samples)
                .map(|(x, y)| *x - *y)
                .collect::<Vec<_>>(),
        );
        for (x, y) in diffs[0].iter().zip(&direct) {
            assert!((*x - *y).abs() < 1e-9);
        }
    }

    #[test]
    fn detection_spectrum_keeps_node_bin() {
        // Clutter at bin 3 static, node at bin 10 toggling.
        let n = 32;
        let make = |node_on: bool| -> Vec<Cpx> {
            let mut v = vec![milback_dsp::num::ZERO; n];
            v[3] = Cpx::new(100.0, 0.0);
            v[10] = Cpx::new(if node_on { 1.0 } else { 0.0 }, 0.0);
            v
        };
        let spectra = vec![make(true), make(true), make(false), make(false), make(true)];
        let diffs = pairwise_diff_spectra(&spectra);
        let det = detection_spectrum(&diffs);
        assert!(det[3] < 1e-20, "clutter bin leaked: {}", det[3]);
        assert!((det[10] - 1.0).abs() < 1e-12, "node bin: {}", det[10]);
    }

    #[test]
    fn into_variants_match_allocating_bitwise() {
        let n = 48;
        let spectra: Vec<Vec<Cpx>> = (0..5)
            .map(|c| {
                (0..n)
                    .map(|k| Cpx::cis((c * n + k) as f64 * 0.13) * (1.0 + k as f64 * 0.01))
                    .collect()
            })
            .collect();
        let diffs = pairwise_diff_spectra(&spectra);
        let det = detection_spectrum(&diffs);

        let mut diffs_buf = Vec::new();
        let mut det_buf = Vec::new();
        // Reused buffers (including previously-longer inner vectors) must
        // keep reproducing the allocating results bit for bit.
        diffs_buf.push(vec![milback_dsp::num::ZERO; n * 2]);
        for _ in 0..2 {
            pairwise_diff_spectra_into(&spectra, &mut diffs_buf);
            assert_eq!(diffs, diffs_buf);
            detection_spectrum_into(&diffs_buf, &mut det_buf);
            assert_eq!(det, det_buf);
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_chirp() {
        pairwise_diff_signals(&[tone(1.0, 8)]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        pairwise_diff_signals(&[tone(1.0, 8), tone(1.0, 9)]);
    }
}
