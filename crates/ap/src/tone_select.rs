//! OAQFM carrier selection from the estimated node orientation (paper
//! §6.1–6.2).
//!
//! Given the node's orientation, the AP picks the frequency that steers
//! the node's port-A beam toward itself and the (mirrored) frequency for
//! port B. When the node is (nearly) normal to the AP the two frequencies
//! coincide and the link falls back to single-carrier OOK.

use milback_rf::fsa::{DualPortFsa, Port};

/// The carrier plan for a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ToneSelection {
    /// Two distinct tones: full OAQFM at 2 bits/symbol.
    Dual {
        /// Tone steering port A toward the AP, Hz.
        f_a: f64,
        /// Tone steering port B toward the AP, Hz.
        f_b: f64,
    },
    /// Normal-incidence fallback: one tone, OOK at 1 bit/symbol.
    Single {
        /// The shared tone frequency, Hz.
        f: f64,
    },
}

impl ToneSelection {
    /// Bits carried per symbol under this plan.
    pub fn bits_per_symbol(&self) -> usize {
        match self {
            ToneSelection::Dual { .. } => 2,
            ToneSelection::Single { .. } => 1,
        }
    }

    /// Collapses a dual-tone plan to single-carrier OOK on port A's
    /// steering tone — the adaptive controller's interference fallback:
    /// one carrier, still aimed at the AP through port A's beam, carrying
    /// one robust bit per symbol instead of two separable ones. (The
    /// midpoint frequency would steer *neither* beam off-normal, so the
    /// collapse keeps `f_a`.) A plan that is already `Single` is returned
    /// unchanged.
    pub fn collapsed(self) -> ToneSelection {
        match self {
            ToneSelection::Dual { f_a, .. } => ToneSelection::Single { f: f_a },
            single => single,
        }
    }
}

/// Selects carriers for a node whose orientation (incidence angle,
/// radians) the AP has estimated.
///
/// `min_separation` is the smallest tone spacing (Hz) at which the two
/// envelope-detector branches remain separable; below it the plan falls
/// back to OOK. Returns `None` when the orientation is outside the FSA's
/// scannable range (no frequency steers a beam there).
pub fn select_tones(
    fsa: &DualPortFsa,
    orientation: f64,
    min_separation: f64,
) -> Option<ToneSelection> {
    let f_a = fsa.frequency_for_angle(Port::A, orientation)?;
    let f_b = fsa.frequency_for_angle(Port::B, orientation)?;
    let (lo, hi) = (fsa.config().f_lo, fsa.config().f_hi);
    if !(lo..=hi).contains(&f_a) || !(lo..=hi).contains(&f_b) {
        return None;
    }
    if (f_a - f_b).abs() < min_separation {
        Some(ToneSelection::Single {
            f: (f_a + f_b) / 2.0,
        })
    } else {
        Some(ToneSelection::Dual { f_a, f_b })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_rf::geometry::deg_to_rad;

    #[test]
    fn off_normal_gives_dual_tones() {
        let fsa = DualPortFsa::milback();
        let sel = select_tones(&fsa, deg_to_rad(15.0), 50e6).unwrap();
        match sel {
            ToneSelection::Dual { f_a, f_b } => {
                assert!((f_a - f_b).abs() > 50e6);
                assert_eq!(sel.bits_per_symbol(), 2);
                // Both tones steer their port's beam to the orientation.
                let ta = fsa.beam_angle(Port::A, f_a).unwrap();
                let tb = fsa.beam_angle(Port::B, f_b).unwrap();
                assert!((ta - deg_to_rad(15.0)).abs() < 1e-9);
                assert!((tb - deg_to_rad(15.0)).abs() < 1e-9);
            }
            _ => panic!("expected dual"),
        }
    }

    #[test]
    fn normal_incidence_falls_back_to_ook() {
        let fsa = DualPortFsa::milback();
        let sel = select_tones(&fsa, 0.0, 50e6).unwrap();
        match sel {
            ToneSelection::Single { f } => {
                assert!((f - fsa.normal_frequency()).abs() < 1.0);
                assert_eq!(sel.bits_per_symbol(), 1);
            }
            _ => panic!("expected single"),
        }
    }

    #[test]
    fn near_normal_with_wide_guard_falls_back() {
        let fsa = DualPortFsa::milback();
        // 1° off normal: tones exist but are ~100 MHz apart; with a
        // 500 MHz guard the plan must fall back.
        let sel = select_tones(&fsa, deg_to_rad(1.0), 500e6).unwrap();
        assert!(matches!(sel, ToneSelection::Single { .. }));
    }

    #[test]
    fn out_of_scan_range_is_none() {
        let fsa = DualPortFsa::milback();
        assert!(select_tones(&fsa, deg_to_rad(50.0), 50e6).is_none());
        assert!(select_tones(&fsa, deg_to_rad(-50.0), 50e6).is_none());
    }

    #[test]
    fn tones_move_with_orientation() {
        let fsa = DualPortFsa::milback();
        let s1 = select_tones(&fsa, deg_to_rad(10.0), 50e6).unwrap();
        let s2 = select_tones(&fsa, deg_to_rad(20.0), 50e6).unwrap();
        if let (ToneSelection::Dual { f_a: a1, .. }, ToneSelection::Dual { f_a: a2, .. }) = (s1, s2)
        {
            assert!(a2 > a1, "port-A tone should increase with orientation");
        } else {
            panic!("expected dual tones");
        }
    }
}
