//! Coverage-cell assignment for multi-AP deployments (DESIGN.md §16).
//!
//! The paper deploys one AP; a dense network tiles a space with several,
//! and every node must be owned by exactly one *coverage cell* — the AP
//! that serves its sessions. Assignment here follows the strongest
//! measured response: the closed-form two-way link budget
//! (`Scene::tone_backscatter_gain`) evaluated at the node's best Port-A
//! operating frequency, summed over both RX antennas. A hysteresis
//! margin keeps nodes from flapping between two APs of nearly equal
//! strength; crossing it is a *handoff*, the deterministic
//! re-assignment event the fabric counts.

use milback_rf::channel::Scene;
use milback_rf::fsa::{DualPortFsa, Port};
use milback_rf::geometry::Pose;

/// Strongest-response metric for one `(AP scene, node)` pair, dB.
///
/// `pose` must be in the AP's local frame and `scene` steered at the
/// node (as every serving render is). The metric is the two-way tone
/// gain at the frequency that points the node's Port-A beam back along
/// its incidence angle — the tone localization and uplink actually ride
/// — summed over both RX antennas. Falls back to the FSA's normal-beam
/// frequency when the incidence angle is outside the steerable range.
pub fn response_db(scene: &Scene, pose: &Pose, fsa: &DualPortFsa) -> f64 {
    let inc = pose.incidence_from(&scene.tx_pos);
    let f = fsa
        .frequency_for_angle(Port::A, inc)
        .unwrap_or_else(|| fsa.normal_frequency());
    let g = scene.tone_backscatter_gain(pose, fsa, Port::A, f, 0)
        + scene.tone_backscatter_gain(pose, fsa, Port::A, f, 1);
    10.0 * g.max(1e-300).log10()
}

/// Picks the serving cell from per-AP responses with hysteresis.
///
/// A node with no current cell takes the strongest response (ties break
/// to the lowest AP index, so assignment is deterministic). A node
/// already served by `current` moves only when some other AP beats its
/// current response by more than `margin_db` — otherwise it stays put.
///
/// ```
/// use milback_ap::coverage::pick_cell;
///
/// // Fresh node: strongest wins.
/// assert_eq!(pick_cell(None, &[-62.0, -58.0], 1.0), 1);
/// // Within the margin: the current cell keeps the node...
/// assert_eq!(pick_cell(Some(0), &[-58.5, -58.0], 1.0), 0);
/// // ...but a clear winner takes it (a handoff).
/// assert_eq!(pick_cell(Some(0), &[-65.0, -58.0], 1.0), 1);
/// ```
pub fn pick_cell(current: Option<usize>, responses_db: &[f64], margin_db: f64) -> usize {
    assert!(!responses_db.is_empty(), "need at least one AP response");
    let mut best = 0;
    for (i, &r) in responses_db.iter().enumerate() {
        if r > responses_db[best] {
            best = i;
        }
    }
    match current {
        Some(c) if c < responses_db.len() && responses_db[best] <= responses_db[c] + margin_db => c,
        _ => best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_rf::geometry::deg_to_rad;

    #[test]
    fn response_falls_with_range() {
        let fsa = DualPortFsa::milback();
        let near = Pose::facing_ap(2.0, 0.0, deg_to_rad(10.0));
        let far = Pose::facing_ap(3.5, 0.0, deg_to_rad(10.0));
        let mut scene = Scene::milback_indoor();
        scene.steer_towards(&near.position);
        let r_near = response_db(&scene, &near, &fsa);
        scene.steer_towards(&far.position);
        let r_far = response_db(&scene, &far, &fsa);
        // Two-way budget: several dB of extra loss per extra 1.5 m
        // (free space predicts ~19 dB; indoor multipath softens it).
        assert!(r_near > r_far + 6.0, "near {r_near} dB vs far {r_far} dB");
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let margin = 2.0;
        // Responses 1 dB apart: whoever currently serves, keeps serving.
        let resp = [-60.0, -59.0];
        assert_eq!(pick_cell(Some(0), &resp, margin), 0);
        assert_eq!(pick_cell(Some(1), &resp, margin), 1);
        // 3 dB apart: the stronger AP takes over.
        let resp = [-62.0, -59.0];
        assert_eq!(pick_cell(Some(0), &resp, margin), 1);
        // Fresh assignment ignores the margin; ties break low.
        assert_eq!(pick_cell(None, &[-59.0, -59.0], margin), 0);
        // A stale out-of-range current cell re-assigns cleanly.
        assert_eq!(pick_cell(Some(7), &[-60.0, -59.0], margin), 1);
    }
}
