//! Doppler processing: radial-velocity estimation from a chirp train.
//!
//! A node moving radially at `v` advances each chirp's round-trip path by
//! `2·v·T_chirp`, rotating the carrier phase of its range-bin peak by
//! `Δφ = 2π·fc·2v·T_chirp/c` per chirp. An FFT across the chirps (the
//! "slow-time" axis) turns that rotation into a Doppler bin — standard
//! FMCW range-Doppler processing, and the natural complement of the
//! paper's tracking use case (a static node has no business on a VR
//! headset).

use milback_dsp::detect::{argmax, parabolic_refine};
use milback_dsp::fft::fft_freqs;
use milback_dsp::num::Cpx;
use milback_dsp::plan::with_plan;
use milback_dsp::window::{apply_window, Window};
use milback_rf::geometry::SPEED_OF_LIGHT;

/// Doppler estimator over a train of per-chirp complex range-bin values.
#[derive(Debug, Clone, Copy)]
pub struct DopplerProcessor {
    /// Carrier frequency, Hz.
    pub fc: f64,
    /// Chirp repetition interval, seconds.
    pub chirp_interval: f64,
    /// Zero-padding factor for the slow-time FFT.
    pub pad: usize,
}

impl DopplerProcessor {
    /// Builds a processor.
    pub fn new(fc: f64, chirp_interval: f64) -> Self {
        assert!(
            fc > 0.0 && chirp_interval > 0.0,
            "invalid Doppler parameters"
        );
        Self {
            fc,
            chirp_interval,
            pad: 8,
        }
    }

    /// Maximum unambiguous |velocity|: half a carrier cycle of phase per
    /// chirp, `λ/(4·T_chirp)`.
    pub fn max_velocity(&self) -> f64 {
        SPEED_OF_LIGHT / self.fc / (4.0 * self.chirp_interval)
    }

    /// Velocity resolution for a train of `n` chirps: `λ/(2·n·T)`.
    pub fn velocity_resolution(&self, n: usize) -> f64 {
        SPEED_OF_LIGHT / self.fc / (2.0 * n as f64 * self.chirp_interval)
    }

    /// Estimates radial velocity (m/s, positive = receding) from the
    /// per-chirp complex values of the node's range bin, using the
    /// pulse-pair estimator: `f_d = arg(Σ x[i+1]·x*[i]) / (2π·T)` —
    /// magnitude-weighted, exact for a clean tone, and unambiguous over
    /// the same ±PRF/2 window as a slow-time FFT. Needs ≥ 4 chirps.
    pub fn estimate(&self, slow_time: &[Cpx]) -> Option<f64> {
        if slow_time.len() < 4 {
            return None;
        }
        let acc: Cpx = slow_time.windows(2).map(|w| w[1] * w[0].conj()).sum();
        if acc.abs() == 0.0 {
            return None;
        }
        let f_doppler = acc.arg() / (2.0 * std::f64::consts::PI * self.chirp_interval);
        // Receding target: path grows, phase −2πfcτ becomes more negative
        // per chirp → negative Doppler frequency. v = −f_d·λ/2.
        Some(-f_doppler * SPEED_OF_LIGHT / self.fc / 2.0)
    }

    /// Full slow-time Doppler power spectrum (Hann-windowed, zero-padded):
    /// `(velocity_mps, power)` pairs — the range-Doppler map's velocity
    /// axis for one range bin.
    pub fn spectrum(&self, slow_time: &[Cpx]) -> Vec<(f64, f64)> {
        let mut buf = slow_time.to_vec();
        apply_window(&mut buf, Window::Hann);
        let n_fft = (buf.len() * self.pad).next_power_of_two().max(8);
        buf.resize(n_fft, milback_dsp::num::ZERO);
        with_plan(n_fft, |p| p.forward_in_place(&mut buf));
        let prf = 1.0 / self.chirp_interval;
        fft_freqs(n_fft, prf)
            .into_iter()
            .zip(buf.iter().map(|c| c.norm_sq()))
            .map(|(f, p)| (-f * SPEED_OF_LIGHT / self.fc / 2.0, p))
            .collect()
    }

    /// Peak of the Doppler [`Self::spectrum`] — the FFT-based velocity
    /// estimate (coarser than [`Self::estimate`] but robust to multiple
    /// movers in the same range bin).
    pub fn estimate_fft(&self, slow_time: &[Cpx]) -> Option<f64> {
        if slow_time.len() < 4 {
            return None;
        }
        let spec = self.spectrum(slow_time);
        let power: Vec<f64> = spec.iter().map(|(_, p)| *p).collect();
        let peak = argmax(&power)?;
        let refined = parabolic_refine(&power, peak);
        // Velocities are uniformly spaced in FFT order within each half;
        // linear interpolation between adjacent entries is fine away from
        // the wrap, and the wrap bin is a half-resolution edge case.
        let i = (refined.floor() as usize).min(spec.len() - 1);
        let j = (i + 1).min(spec.len() - 1);
        let frac = refined - i as f64;
        Some(spec[i].0 * (1.0 - frac) + spec[j].0 * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn slow_time_for(v: f64, fc: f64, t_chirp: f64, n: usize) -> Vec<Cpx> {
        (0..n)
            .map(|i| {
                let d = 3.0 + v * i as f64 * t_chirp;
                Cpx::from_polar(1.0, -2.0 * PI * fc * 2.0 * d / SPEED_OF_LIGHT)
            })
            .collect()
    }

    #[test]
    fn static_node_has_zero_velocity() {
        let p = DopplerProcessor::new(28e9, 20e-6);
        let st = slow_time_for(0.0, 28e9, 20e-6, 32);
        let v = p.estimate(&st).unwrap();
        assert!(v.abs() < 0.05, "{v}");
    }

    #[test]
    fn recovers_walking_speed() {
        let p = DopplerProcessor::new(28e9, 20e-6);
        for v_true in [-2.0, -0.5, 0.7, 1.5] {
            let st = slow_time_for(v_true, 28e9, 20e-6, 64);
            let v = p.estimate(&st).unwrap();
            assert!((v - v_true).abs() < 0.15, "true {v_true}, est {v}");
        }
    }

    #[test]
    fn unambiguous_range_is_tens_of_mps() {
        let p = DopplerProcessor::new(28e9, 20e-6);
        // λ ≈ 10.7 mm, T = 20 µs → ~134 m/s: covers any indoor motion.
        assert!(p.max_velocity() > 100.0, "{}", p.max_velocity());
    }

    #[test]
    fn resolution_improves_with_train_length() {
        let p = DopplerProcessor::new(28e9, 20e-6);
        assert!(p.velocity_resolution(64) < p.velocity_resolution(8));
    }

    #[test]
    fn too_few_chirps_is_none() {
        let p = DopplerProcessor::new(28e9, 20e-6);
        assert!(p.estimate(&slow_time_for(1.0, 28e9, 20e-6, 3)).is_none());
    }

    #[test]
    fn fft_estimate_agrees_with_pulse_pair() {
        let p = DopplerProcessor::new(28e9, 20e-6);
        let st = slow_time_for(1.2, 28e9, 20e-6, 64);
        let v_pp = p.estimate(&st).unwrap();
        let v_fft = p.estimate_fft(&st).unwrap();
        assert!((v_pp - 1.2).abs() < 0.02, "pulse-pair {v_pp}");
        assert!((v_fft - 1.2).abs() < 0.5, "fft {v_fft}");
    }

    #[test]
    fn spectrum_peak_at_target_velocity() {
        let p = DopplerProcessor::new(28e9, 20e-6);
        let st = slow_time_for(-3.0, 28e9, 20e-6, 64);
        let spec = p.spectrum(&st);
        let peak = spec
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!((peak.0 + 3.0).abs() < 2.2, "peak at {} m/s", peak.0);
    }

    #[test]
    fn noisy_phases_still_recover() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let p = DopplerProcessor::new(28e9, 20e-6);
        let mut rng = StdRng::seed_from_u64(11);
        // The per-chirp Doppler phase at 1 m/s is tiny (~0.024 rad), so a
        // decent pile of chirps is needed to average the phase noise out.
        let mut st = slow_time_for(1.0, 28e9, 20e-6, 256);
        for c in st.iter_mut() {
            *c += milback_dsp::noise::complex_gaussian(&mut rng, 0.05);
        }
        let v = p.estimate(&st).unwrap();
        assert!((v - 1.0).abs() < 0.35, "{v}");
    }
}
