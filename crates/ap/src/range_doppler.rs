//! 2-D range-Doppler maps: the joint range/velocity picture an FMCW
//! radar builds from a chirp train.
//!
//! Rows are range bins (fast time), columns are velocity bins (slow
//! time). Static clutter concentrates in the zero-velocity column;
//! movers separate along the velocity axis even when they share a range
//! bin — the 2-D generalization of `doppler::DopplerProcessor`.

use crate::dechirp::RangeProcessor;
use crate::doppler::DopplerProcessor;
use milback_dsp::fft::fft_freqs;
use milback_dsp::num::{Cpx, ZERO};
use milback_dsp::plan::with_plan;
use milback_dsp::signal::Signal;
use milback_dsp::window::{apply_window, Window};
use milback_rf::geometry::SPEED_OF_LIGHT;

/// A computed range-Doppler map.
#[derive(Debug, Clone)]
pub struct RangeDopplerMap {
    /// Power per `[range_bin][velocity_bin]`.
    pub power: Vec<Vec<f64>>,
    /// One-way range (m) of each row.
    pub ranges: Vec<f64>,
    /// Radial velocity (m/s, positive receding) of each column.
    pub velocities: Vec<f64>,
}

impl RangeDopplerMap {
    /// The strongest cell: `(range_m, velocity_mps, power)`.
    pub fn peak(&self) -> Option<(f64, f64, f64)> {
        let mut best = None;
        for (ri, row) in self.power.iter().enumerate() {
            for (vi, &p) in row.iter().enumerate() {
                if best.map(|(_, _, bp)| p > bp).unwrap_or(true) {
                    best = Some((self.ranges[ri], self.velocities[vi], p));
                }
            }
        }
        best
    }

    /// The strongest cell outside the near-zero-velocity clutter ridge
    /// (|v| > `v_min`).
    pub fn strongest_mover(&self, v_min: f64) -> Option<(f64, f64, f64)> {
        let mut best: Option<(f64, f64, f64)> = None;
        for (ri, row) in self.power.iter().enumerate() {
            for (vi, &p) in row.iter().enumerate() {
                if self.velocities[vi].abs() <= v_min {
                    continue;
                }
                if best.map(|(_, _, bp)| p > bp).unwrap_or(true) {
                    best = Some((self.ranges[ri], self.velocities[vi], p));
                }
            }
        }
        best
    }
}

/// Builds range-Doppler maps from per-chirp captures.
#[derive(Debug, Clone, Copy)]
pub struct RangeDopplerProcessor {
    /// Fast-time (range) processing.
    pub range: RangeProcessor,
    /// Slow-time (Doppler) parameters.
    pub doppler: DopplerProcessor,
    /// Keep only range rows up to this one-way range, m.
    pub max_range: f64,
}

impl RangeDopplerProcessor {
    /// Builds a processor for the given chirp and chirp spacing.
    pub fn new(range: RangeProcessor, chirp_interval: f64) -> Self {
        let fc = range.chirp.center();
        Self {
            range,
            doppler: DopplerProcessor::new(fc, chirp_interval),
            max_range: 12.0,
        }
    }

    /// Processes a train of raw chirp captures (one antenna) into a
    /// range-Doppler map. Needs ≥ 4 chirps.
    pub fn process(&self, captures: &[Signal], tx_ref: &Signal) -> Option<RangeDopplerMap> {
        if captures.len() < 4 {
            return None;
        }
        // Fast time: range profile per chirp.
        let profiles: Vec<Vec<Cpx>> = captures
            .iter()
            .map(|c| self.range.range_profile(&self.range.dechirp(c, tx_ref)))
            .collect();
        Some(self.map_from_profiles(&profiles, tx_ref.fs))
    }

    /// Workspace variant of [`RangeDopplerProcessor::process`]: the
    /// per-chirp dechirp and range profiles run in `ws`'s buffers. The
    /// map itself is the return value and still allocates. Bitwise
    /// identical to the allocating path.
    pub fn process_with(
        &self,
        ws: &mut crate::workspace::DspWorkspace,
        captures: &[Signal],
        tx_ref: &Signal,
    ) -> Option<RangeDopplerMap> {
        if captures.len() < 4 {
            return None;
        }
        crate::workspace::DspWorkspace::ensure_pool(&mut ws.profiles[0], captures.len());
        for (i, c) in captures.iter().enumerate() {
            self.range.dechirp_into(c, tx_ref, &mut ws.dechirp);
            self.range
                .range_profile_into(&ws.dechirp, &mut ws.fft, &mut ws.profiles[0][i]);
        }
        Some(self.map_from_profiles(&ws.profiles[0], tx_ref.fs))
    }

    /// Slow-time processing shared by [`RangeDopplerProcessor::process`]
    /// and [`RangeDopplerProcessor::process_with`]: windowed FFT across
    /// chirps for every kept range row.
    fn map_from_profiles(&self, profiles: &[Vec<Cpx>], fs: f64) -> RangeDopplerMap {
        let n_rows_full = profiles[0].len() / 2;
        let max_bin = ((2.0 * self.max_range / SPEED_OF_LIGHT * self.range.chirp.slope())
            * self.range.fft_len as f64
            / fs) as usize;
        let n_rows = n_rows_full.min(max_bin.max(1));

        let n_chirps = profiles.len();
        let n_dopp = (n_chirps * self.doppler.pad).next_power_of_two();
        let prf = 1.0 / self.doppler.chirp_interval;
        let dopp_freqs = fft_freqs(n_dopp, prf);
        let velocities: Vec<f64> = dopp_freqs
            .iter()
            .map(|f| -f * SPEED_OF_LIGHT / self.doppler.fc / 2.0)
            .collect();
        let ranges: Vec<f64> = (0..n_rows)
            .map(|k| self.range.bin_to_range(k as f64, fs))
            .collect();

        // One cached plan and one reused buffer serve every range row.
        let mut power = Vec::with_capacity(n_rows);
        with_plan(n_dopp, |plan| {
            let mut slow = vec![ZERO; n_dopp];
            for row in 0..n_rows {
                slow.clear();
                slow.extend(profiles.iter().map(|p| p[row]));
                apply_window(&mut slow[..n_chirps], Window::Hann);
                slow.resize(n_dopp, ZERO);
                plan.forward_in_place(&mut slow);
                power.push(slow.iter().map(|c| c.norm_sq()).collect());
            }
        });
        RangeDopplerMap {
            power,
            ranges,
            velocities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_dsp::chirp::ChirpConfig;
    use std::f64::consts::PI;

    fn test_chirp() -> ChirpConfig {
        ChirpConfig {
            f_start: 26.5e9,
            f_stop: 29.5e9,
            duration: 2e-6,
            fs: 3.2e9,
            amplitude: 1.0,
        }
    }

    /// Captures with a static reflector and a mover.
    fn captures(
        d_static: f64,
        d_mover0: f64,
        v: f64,
        interval: f64,
        n: usize,
    ) -> (Signal, Vec<Signal>) {
        let tx = test_chirp().sawtooth();
        let mut caps = Vec::new();
        for i in 0..n {
            let mut rx = Signal::zeros(tx.fs, tx.fc, tx.len());
            for (d, amp) in [(d_static, 1.0), (d_mover0 + v * i as f64 * interval, 0.3)] {
                let tau = 2.0 * d / SPEED_OF_LIGHT;
                let mut e = tx.delayed(tau);
                e.rotate(Cpx::from_polar(amp, -2.0 * PI * tx.fc * tau));
                rx.add(&e);
            }
            caps.push(rx);
        }
        (tx, caps)
    }

    #[test]
    fn separates_static_from_mover() {
        // 64 chirps at 0.2 ms: 0.42 m/s Doppler resolution, so a 2 m/s
        // mover clears the static target's main lobe.
        let interval = 2e-4;
        let (tx, caps) = captures(4.0, 4.0, 2.0, interval, 64);
        let proc = RangeDopplerProcessor::new(RangeProcessor::new(test_chirp(), 1), interval);
        let map = proc.process(&caps, &tx).expect("no map");
        // Global peak: the static reflector at ~4 m, ~0 m/s.
        let (r, v, _) = map.peak().unwrap();
        assert!((r - 4.0).abs() < 0.2, "static range {r}");
        assert!(v.abs() < 0.5, "static velocity {v}");
        // Strongest mover: same range, ~2 m/s — separated in Doppler even
        // though it shares the range bin with 10× stronger clutter.
        let (rm, vm, _) = map.strongest_mover(1.0).unwrap();
        assert!((rm - 4.0).abs() < 0.3, "mover range {rm}");
        assert!((vm - 2.0).abs() < 0.5, "mover velocity {vm}");
    }

    #[test]
    fn mover_at_distinct_range() {
        let interval = 2e-4;
        let (tx, caps) = captures(6.0, 2.5, -1.5, interval, 64);
        let proc = RangeDopplerProcessor::new(RangeProcessor::new(test_chirp(), 1), interval);
        let map = proc.process(&caps, &tx).unwrap();
        let (rm, vm, _) = map.strongest_mover(1.0).unwrap();
        assert!((rm - 2.5).abs() < 0.3, "{rm}");
        assert!((vm + 1.5).abs() < 0.5, "{vm}");
    }

    #[test]
    fn process_with_matches_process_bitwise() {
        let interval = 2e-4;
        let (tx, caps) = captures(4.0, 3.0, 1.5, interval, 16);
        let proc = RangeDopplerProcessor::new(RangeProcessor::new(test_chirp(), 1), interval);
        let expect = proc.process(&caps, &tx).unwrap();
        let mut ws = crate::workspace::DspWorkspace::new();
        for _ in 0..2 {
            let got = proc.process_with(&mut ws, &caps, &tx).unwrap();
            assert_eq!(expect.power, got.power);
            assert_eq!(expect.ranges, got.ranges);
            assert_eq!(expect.velocities, got.velocities);
        }
    }

    #[test]
    fn too_few_chirps_is_none() {
        let (tx, caps) = captures(4.0, 3.0, 1.0, 1e-4, 3);
        let proc = RangeDopplerProcessor::new(RangeProcessor::new(test_chirp(), 1), 1e-4);
        assert!(proc.process(&caps, &tx).is_none());
    }

    #[test]
    fn map_axes_are_consistent() {
        let interval = 1e-4;
        let (tx, caps) = captures(4.0, 3.0, 1.0, interval, 16);
        let proc = RangeDopplerProcessor::new(RangeProcessor::new(test_chirp(), 1), interval);
        let map = proc.process(&caps, &tx).unwrap();
        assert_eq!(map.power.len(), map.ranges.len());
        assert_eq!(map.power[0].len(), map.velocities.len());
        // Ranges ascend; max respects the cap.
        assert!(map.ranges.windows(2).all(|w| w[1] > w[0]));
        assert!(*map.ranges.last().unwrap() <= proc.max_range + 0.1);
    }
}
