//! Matched-filter (pulse-compression) ranging — the classical alternative
//! to FMCW dechirp, provided as an ablation reference.
//!
//! Instead of mixing the capture with the transmitted chirp and reading a
//! beat frequency, correlate the (background-subtracted) capture against
//! the chirp template and read the delay off the correlation peak. Same
//! `c/2B` resolution; different compute shape (an O(N log N) correlation
//! per chirp instead of one FFT of the dechirped signal), and no analog
//! dechirp mixer in a real system — which is why FMCW radars prefer
//! dechirp: the beat signal needs only a MHz-class ADC, while pulse
//! compression must sample the full RF bandwidth.

use crate::background::pairwise_diff_signals;
use milback_dsp::detect::{argmax, parabolic_refine};
use milback_dsp::signal::Signal;
use milback_dsp::xcorr::matched_filter;
use milback_rf::geometry::SPEED_OF_LIGHT;

/// Matched-filter ranger.
#[derive(Debug, Clone)]
pub struct PulseCompressionRanger {
    /// The transmitted chirp template.
    pub template: Signal,
    /// Minimum search range, m (excludes the leakage region).
    pub min_range: f64,
    /// Maximum search range, m.
    pub max_range: f64,
}

impl PulseCompressionRanger {
    /// Builds a ranger for a chirp template, searching 0.5–15 m.
    pub fn new(template: Signal) -> Self {
        Self {
            template,
            min_range: 0.5,
            max_range: 15.0,
        }
    }

    /// Round-trip delay of correlation lag `k` (fractional allowed).
    fn lag_to_range(&self, lag: f64) -> f64 {
        lag / self.template.fs * SPEED_OF_LIGHT / 2.0
    }

    fn range_to_lag(&self, range: f64) -> usize {
        (2.0 * range / SPEED_OF_LIGHT * self.template.fs) as usize
    }

    /// Ranges the node from multi-chirp captures (antenna 0 only):
    /// background-subtract in the time domain, matched-filter every
    /// difference, and take the strongest in-window peak of the per-lag
    /// maximum across differences (the same max-combining the dechirp
    /// pipeline's detection spectrum uses — a single difference can be
    /// dominated by clutter residue).
    pub fn process(&self, captures: &[Signal]) -> Option<f64> {
        let diffs = pairwise_diff_signals(captures);
        let mut det: Vec<f64> = Vec::new();
        for d in &diffs {
            let mf = matched_filter(&d.samples, &self.template.samples);
            if det.is_empty() {
                det = mf;
            } else {
                for (acc, v) in det.iter_mut().zip(&mf) {
                    *acc = acc.max(*v);
                }
            }
        }
        let lo = self.range_to_lag(self.min_range).max(1);
        let hi = self
            .range_to_lag(self.max_range)
            .min(det.len().saturating_sub(1));
        if lo >= hi {
            return None;
        }
        let rel = argmax(&det[lo..hi])?;
        let peak = lo + rel;
        let refined = parabolic_refine(&det, peak);
        Some(self.lag_to_range(refined))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_dsp::chirp::ChirpConfig;
    use milback_dsp::num::Cpx;
    use std::f64::consts::PI;

    fn test_chirp() -> ChirpConfig {
        ChirpConfig {
            f_start: 26.5e9,
            f_stop: 29.5e9,
            duration: 2e-6,
            fs: 3.2e9,
            amplitude: 1.0,
        }
    }

    /// Synthetic captures: static clutter + toggling node echo.
    fn captures(d_node: f64, d_clutter: f64) -> (Signal, Vec<Signal>) {
        let tx = test_chirp().sawtooth();
        let mut caps = Vec::new();
        for i in 0..5 {
            let node_amp = if i % 2 == 0 { 0.01 } else { 0.001 };
            let mut rx = Signal::zeros(tx.fs, tx.fc, tx.len());
            let tau_c = 2.0 * d_clutter / SPEED_OF_LIGHT;
            let mut e = tx.delayed(tau_c);
            e.rotate(Cpx::from_polar(1.0, -2.0 * PI * tx.fc * tau_c));
            rx.add(&e);
            let tau_n = 2.0 * d_node / SPEED_OF_LIGHT;
            let mut e = tx.delayed(tau_n);
            e.rotate(Cpx::from_polar(node_amp, -2.0 * PI * tx.fc * tau_n));
            rx.add(&e);
            caps.push(rx);
        }
        (tx, caps)
    }

    #[test]
    fn ranges_node_under_clutter() {
        for d in [1.5, 3.0, 6.0] {
            let (tx, caps) = captures(d, 5.0);
            let ranger = PulseCompressionRanger::new(tx);
            let got = ranger.process(&caps).expect("no range");
            assert!((got - d).abs() < 0.05, "true {d}, got {got}");
        }
    }

    #[test]
    fn agrees_with_dechirp_pipeline() {
        use crate::dechirp::RangeProcessor;
        let d = 4.2;
        let (tx, caps) = captures(d, 7.0);
        let ranger = PulseCompressionRanger::new(tx.clone());
        let mf_range = ranger.process(&caps).unwrap();

        let proc = RangeProcessor::new(test_chirp(), 2);
        let diffs = pairwise_diff_signals(&caps);
        let profile = proc.range_profile(&proc.dechirp(&diffs[0], &tx));
        let power: Vec<f64> = profile.iter().map(|c| c.norm_sq()).collect();
        let half = power.len() / 2;
        let peak = argmax(&power[1..half]).unwrap() + 1;
        let dechirp_range = proc.bin_to_range(parabolic_refine(&power[..half], peak), tx.fs);

        assert!(
            (mf_range - dechirp_range).abs() < 0.05,
            "matched {mf_range} vs dechirp {dechirp_range}"
        );
    }

    #[test]
    fn empty_window_returns_none() {
        let tx = test_chirp().sawtooth();
        let mut ranger = PulseCompressionRanger::new(tx);
        ranger.min_range = 20.0; // beyond max
        let (_, caps) = captures(3.0, 5.0);
        assert!(ranger.process(&caps).is_none());
    }
}
