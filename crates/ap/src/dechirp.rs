//! FMCW dechirp and range processing (paper §2, §5.1).
//!
//! The AP mixes each received chirp with the transmitted reference; a
//! reflection delayed by `τ` appears as a beat tone at
//! `f_b = slope · τ`, so the FFT of the dechirped signal is a *range
//! profile*: bin `k` ↔ round-trip delay `k·fs/(N·slope)` ↔ range
//! `c·τ/2`.

use milback_dsp::buffer;
use milback_dsp::chirp::ChirpConfig;
use milback_dsp::num::{Cpx, ZERO};
use milback_dsp::plan::with_plan;
use milback_dsp::signal::Signal;
use milback_dsp::window::{apply_window_cached, Window};
use milback_rf::geometry::SPEED_OF_LIGHT;

/// Numeric tier for magnitude-only range sweeps (DESIGN.md §17).
///
/// `Reference` is the f64 pipeline every bitwise contract is pinned
/// against. `Sweep` opts in to the f32 transform tier
/// ([`milback_dsp::plan32::Fft32Plan`]) for workloads that scan many
/// poses and only consume detection power — bounded by the
/// `accuracy_bound_versus_f64` test (≤1e-4·peak per bin) rather than
/// bitwise identity, and never selected by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Full f64 transform — the bitwise reference path.
    Reference,
    /// Single-precision transform tier for sweep workloads.
    Sweep,
}

/// Range-processing parameters.
#[derive(Debug, Clone, Copy)]
pub struct RangeProcessor {
    /// The transmitted sawtooth chirp.
    pub chirp: ChirpConfig,
    /// Window applied before the range FFT.
    pub window: Window,
    /// FFT length (≥ chirp samples; extra is zero-padding for finer bin
    /// spacing).
    pub fft_len: usize,
}

impl RangeProcessor {
    /// Builds a processor for a chirp, zero-padding the FFT to the next
    /// power of two at least `pad` × the chirp length.
    pub fn new(chirp: ChirpConfig, pad: usize) -> Self {
        let n = chirp.n_samples() * pad.max(1);
        Self {
            chirp,
            window: Window::Hann,
            fft_len: n.next_power_of_two(),
        }
    }

    /// Dechirps a received chirp against the transmitted reference:
    /// `rx · tx*`.
    pub fn dechirp(&self, rx: &Signal, tx_ref: &Signal) -> Signal {
        rx.conj_multiply(tx_ref)
    }

    /// Allocation-free [`RangeProcessor::dechirp`]: writes the `rx · tx*`
    /// samples into `out`, reusing its capacity. Truncates to the shorter
    /// length, like [`Signal::conj_multiply`].
    pub fn dechirp_into(&self, rx: &Signal, tx_ref: &Signal, out: &mut Vec<Cpx>) {
        assert_eq!(rx.fs, tx_ref.fs, "sample-rate mismatch in dechirp_into");
        let n = rx.len().min(tx_ref.len());
        buffer::track_growth(out, n);
        out.clear();
        out.extend((0..n).map(|i| rx.samples[i] * tx_ref.samples[i].conj()));
    }

    /// Windowed, zero-padded complex range spectrum of a dechirped chirp
    /// (allocating wrapper over [`RangeProcessor::range_spectrum_into`]).
    pub fn range_spectrum(&self, dechirped: &Signal) -> Vec<Cpx> {
        let mut out = Vec::new();
        self.range_spectrum_into(&dechirped.samples, &mut out);
        out
    }

    /// Windowed, zero-padded complex range spectrum, written into `out`.
    ///
    /// `fft_len` is a power of two by construction, so this runs through
    /// the cached in-place plan for that size — the twiddle/bit-reversal
    /// tables are built once per thread and amortized across every chirp,
    /// and a warmed `out` buffer makes the whole call allocation-free.
    pub fn range_spectrum_into(&self, dechirped: &[Cpx], out: &mut Vec<Cpx>) {
        self.window_and_pad_into(dechirped, out);
        with_plan(self.fft_len, |p| p.forward_in_place(out));
    }

    /// The pre-FFT half of [`RangeProcessor::range_spectrum_into`]:
    /// window (via the per-thread coefficient cache — bitwise identical
    /// to the per-sample formula) and zero-pad to `fft_len`, without
    /// transforming. The batched burst path uses this to stage all five
    /// chirps before one `forward_many_in_place` traversal.
    pub fn window_and_pad_into(&self, dechirped: &[Cpx], out: &mut Vec<Cpx>) {
        milback_telemetry::counter_add("ap.dechirp.spectra", 1);
        buffer::track_growth(out, self.fft_len.max(dechirped.len()));
        out.clear();
        out.extend_from_slice(dechirped);
        apply_window_cached(out, self.window);
        out.resize(self.fft_len, ZERO);
    }

    /// Windowed, zero-padded range spectrum of a **real** dechirped
    /// sequence (real-IF / video capture, as a real-mixer front end
    /// produces), through the half-length [`milback_dsp::realfft`] plan:
    /// ~2× fewer butterfly flops than the complex path. The output is
    /// the full `fft_len`-bin spectrum (upper half by conjugate
    /// symmetry), so downstream profile/flip handling is unchanged.
    ///
    /// The default complex-baseband pipeline stays on
    /// [`RangeProcessor::range_spectrum_into`] — its dechirp products
    /// are genuinely complex and that path is the bitwise reference;
    /// this entry point serves real-capture and sweep workloads.
    pub fn range_spectrum_real_into(
        &self,
        dechirped: &[f64],
        scratch: &mut Vec<f64>,
        out: &mut Vec<Cpx>,
    ) {
        milback_telemetry::counter_add("ap.dechirp.spectra_real", 1);
        buffer::track_growth(scratch, self.fft_len.max(dechirped.len()));
        scratch.clear();
        scratch.extend_from_slice(dechirped);
        let n = scratch.len();
        if n > 1 {
            let w = milback_dsp::window::cached_coeffs(self.window, n);
            for (s, k) in scratch.iter_mut().zip(w.iter()) {
                *s *= *k;
            }
        }
        scratch.resize(self.fft_len, 0.0);
        milback_dsp::realfft::with_real_plan(self.fft_len, |p| p.forward_full_into(scratch, out));
    }

    /// Real-input counterpart of [`RangeProcessor::range_profile_into`]:
    /// real-IF samples → [`RangeProcessor::range_spectrum_real_into`] →
    /// delay-axis flip.
    pub fn range_profile_real_into(
        &self,
        dechirped: &[f64],
        scratch: &mut Vec<f64>,
        fft_buf: &mut Vec<Cpx>,
        out: &mut Vec<Cpx>,
    ) {
        self.range_spectrum_real_into(dechirped, scratch, fft_buf);
        flip_spectrum_into(fft_buf, out);
    }

    /// Complex range profile (allocating wrapper over
    /// [`RangeProcessor::range_profile_into`]).
    pub fn range_profile(&self, dechirped: &Signal) -> Vec<Cpx> {
        let mut fft_buf = Vec::new();
        let mut out = Vec::new();
        self.range_profile_into(&dechirped.samples, &mut fft_buf, &mut out);
        out
    }

    /// Complex range profile: the range spectrum re-indexed so that bin
    /// `k` corresponds to round-trip delay `k·fs/(fft_len·slope)`.
    ///
    /// Dechirping `rx·tx*` puts a delay-τ echo at beat frequency `−slope·τ`
    /// (the delayed chirp lags the reference), i.e. in the
    /// negative-frequency half of the FFT; this profile flips the axis so
    /// increasing bin = increasing range, without conjugating (the complex
    /// values keep the carrier phase used for AoA).
    ///
    /// The spectrum lands in `fft_buf`, the flipped profile in `out`;
    /// both reuse their capacity across calls.
    pub fn range_profile_into(
        &self,
        dechirped: &[Cpx],
        fft_buf: &mut Vec<Cpx>,
        out: &mut Vec<Cpx>,
    ) {
        self.range_spectrum_into(dechirped, fft_buf);
        flip_spectrum_into(fft_buf, out);
    }

    /// Range-profile **power** (|profile|² per bin, delay order) at a
    /// selectable fidelity tier. `stage` holds the windowed/padded
    /// input, `spec32` the f32 spectrum when `Fidelity::Sweep` is
    /// chosen; all buffers reuse capacity, so warmed sweeps are
    /// allocation-free at either tier.
    pub fn range_power_into(
        &self,
        dechirped: &[Cpx],
        fidelity: Fidelity,
        stage: &mut Vec<Cpx>,
        spec32: &mut Vec<milback_dsp::num32::Cpx32>,
        out: &mut Vec<f64>,
    ) {
        self.window_and_pad_into(dechirped, stage);
        let n = self.fft_len;
        buffer::track_growth(out, n);
        match fidelity {
            Fidelity::Reference => {
                with_plan(n, |p| p.forward_in_place(stage));
                out.clear();
                out.push(stage[0].norm_sq());
                out.extend(stage[1..].iter().rev().map(|c| c.norm_sq()));
            }
            Fidelity::Sweep => {
                milback_dsp::plan32::with_plan32(n, |p| p.forward_narrow_into(stage, spec32));
                out.clear();
                out.push(spec32[0].norm_sq() as f64);
                out.extend(spec32[1..].iter().rev().map(|c| c.norm_sq() as f64));
            }
        }
    }

    /// Flips a spectrum into delay order: see
    /// [`RangeProcessor::range_profile_into`]. Public so the batched
    /// burst path can flip after a `forward_many_in_place` traversal.
    pub fn flip_into(&self, spectrum: &[Cpx], out: &mut Vec<Cpx>) {
        flip_spectrum_into(spectrum, out);
    }

    /// Beat frequency of range-FFT bin `k` (fractional bins allowed),
    /// interpreting bins below `fft_len/2` as positive beat frequencies.
    pub fn bin_to_beat(&self, bin: f64, fs: f64) -> f64 {
        bin * fs / self.fft_len as f64
    }

    /// Converts a beat frequency to round-trip delay: `τ = f_b / slope`.
    pub fn beat_to_delay(&self, beat: f64) -> f64 {
        beat / self.chirp.slope()
    }

    /// Converts a (fractional) range-FFT bin directly to one-way range in
    /// meters.
    pub fn bin_to_range(&self, bin: f64, fs: f64) -> f64 {
        let tau = self.beat_to_delay(self.bin_to_beat(bin, fs));
        tau * SPEED_OF_LIGHT / 2.0
    }

    /// The radar's intrinsic range resolution `c / 2B` in meters.
    pub fn range_resolution(&self) -> f64 {
        SPEED_OF_LIGHT / (2.0 * self.chirp.bandwidth())
    }

    /// Highest unambiguous one-way range for sample rate `fs`: the beat
    /// must stay below `fs/2`.
    pub fn max_range(&self, fs: f64) -> f64 {
        let tau = (fs / 2.0) / self.chirp.slope();
        tau * SPEED_OF_LIGHT / 2.0
    }
}

/// Profile flip `out[k] = spec[(n−k) mod n]` written as bin 0 plus a
/// reversed-slice copy — same values as the modulo form (it's a pure
/// permutation) without a `%` per element, which kept the old loop from
/// vectorizing.
fn flip_spectrum_into(spectrum: &[Cpx], out: &mut Vec<Cpx>) {
    let n = spectrum.len();
    buffer::track_growth(out, n);
    out.clear();
    if n == 0 {
        return;
    }
    out.push(spectrum[0]);
    out.extend(spectrum[1..].iter().rev());
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_dsp::detect::{argmax, parabolic_refine};

    /// A fast test chirp: full 3 GHz bandwidth, short duration.
    fn test_chirp() -> ChirpConfig {
        ChirpConfig {
            f_start: 26.5e9,
            f_stop: 29.5e9,
            duration: 4e-6,
            fs: 3.2e9,
            amplitude: 1.0,
        }
    }

    /// Simulates an ideal point reflection at distance `d` and returns the
    /// estimated range.
    fn estimate_range(d: f64) -> f64 {
        let cfg = test_chirp();
        let proc = RangeProcessor::new(cfg, 2);
        let tx = cfg.sawtooth();
        let tau = 2.0 * d / SPEED_OF_LIGHT;
        let mut rx = tx.delayed(tau);
        rx.rotate(Cpx::cis(-2.0 * std::f64::consts::PI * tx.fc * tau));
        let de = proc.dechirp(&rx, &tx);
        let spec: Vec<f64> = proc
            .range_profile(&de)
            .iter()
            .map(|c| c.norm_sq())
            .collect();
        // Only search the positive-delay half.
        let half = &spec[..spec.len() / 2];
        let peak = argmax(half).unwrap();
        let refined = parabolic_refine(half, peak);
        proc.bin_to_range(refined, tx.fs)
    }

    #[test]
    fn range_recovery_across_distances() {
        for d in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let est = estimate_range(d);
            assert!((est - d).abs() < 0.02, "true {d} m, estimated {est} m");
        }
    }

    #[test]
    fn range_resolution_is_5cm() {
        let proc = RangeProcessor::new(test_chirp(), 1);
        assert!((proc.range_resolution() - 0.04997).abs() < 1e-4);
    }

    #[test]
    fn two_reflectors_resolved() {
        let cfg = test_chirp();
        let proc = RangeProcessor::new(cfg, 2);
        let tx = cfg.sawtooth();
        let mut rx = Signal::zeros(tx.fs, tx.fc, tx.len());
        for d in [2.0, 2.5] {
            let tau = 2.0 * d / SPEED_OF_LIGHT;
            let mut echo = tx.delayed(tau);
            echo.rotate(Cpx::cis(-2.0 * std::f64::consts::PI * tx.fc * tau));
            rx.add(&echo);
        }
        let de = proc.dechirp(&rx, &tx);
        let spec: Vec<f64> = proc
            .range_profile(&de)
            .iter()
            .map(|c| c.norm_sq())
            .collect();
        let half = &spec[..spec.len() / 2];
        let peaks = milback_dsp::detect::find_peaks(half, half[argmax(half).unwrap()] * 0.2, 4);
        assert!(peaks.len() >= 2, "expected 2 peaks, got {}", peaks.len());
        let mut ranges: Vec<f64> = peaks[..2]
            .iter()
            .map(|p| proc.bin_to_range(p.refined, tx.fs))
            .collect();
        ranges.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((ranges[0] - 2.0).abs() < 0.05, "{ranges:?}");
        assert!((ranges[1] - 2.5).abs() < 0.05, "{ranges:?}");
    }

    #[test]
    fn into_variants_match_allocating_bitwise() {
        let cfg = test_chirp();
        let proc = RangeProcessor::new(cfg, 2);
        let tx = cfg.sawtooth();
        let tau = 2.0 * 3.0 / SPEED_OF_LIGHT;
        let mut rx = tx.delayed(tau);
        rx.rotate(Cpx::cis(-2.0 * std::f64::consts::PI * tx.fc * tau));

        let de = proc.dechirp(&rx, &tx);
        let mut de_buf = Vec::new();
        proc.dechirp_into(&rx, &tx, &mut de_buf);
        assert_eq!(de.samples, de_buf);

        let spec = proc.range_spectrum(&de);
        let mut spec_buf = Vec::new();
        // Reused buffers must keep reproducing the allocating result.
        for _ in 0..2 {
            proc.range_spectrum_into(&de_buf, &mut spec_buf);
            assert_eq!(spec, spec_buf);
        }

        let profile = proc.range_profile(&de);
        let mut fft_buf = Vec::new();
        let mut prof_buf = Vec::new();
        proc.range_profile_into(&de_buf, &mut fft_buf, &mut prof_buf);
        assert_eq!(profile, prof_buf);
    }

    #[test]
    fn flip_matches_modulo_form() {
        let spec: Vec<Cpx> = (0..17)
            .map(|k| Cpx::new(k as f64, -(k as f64) * 0.5))
            .collect();
        let golden: Vec<Cpx> = (0..spec.len())
            .map(|k| spec[(spec.len() - k) % spec.len()])
            .collect();
        let mut out = Vec::new();
        flip_spectrum_into(&spec, &mut out);
        assert_eq!(golden, out);
        flip_spectrum_into(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn real_input_path_matches_complex_path() {
        // A real-IF capture: the real part of the complex dechirp (what a
        // real-mixer front end would digitize, up to the factor 2 image).
        let cfg = test_chirp();
        let proc = RangeProcessor::new(cfg, 2);
        let tx = cfg.sawtooth();
        let tau = 2.0 * 3.0 / SPEED_OF_LIGHT;
        let mut rx = tx.delayed(tau);
        rx.rotate(Cpx::cis(-2.0 * std::f64::consts::PI * tx.fc * tau));
        let de = proc.dechirp(&rx, &tx);
        let real_if: Vec<f64> = de.samples.iter().map(|c| c.re).collect();

        // Reference: the complex plan fed the same real sequence.
        let complex_in: Vec<Cpx> = real_if.iter().map(|&v| Cpx::new(v, 0.0)).collect();
        let mut reference = Vec::new();
        proc.range_spectrum_into(&complex_in, &mut reference);
        let peak = reference.iter().map(|c| c.abs()).fold(1e-300, f64::max);

        let mut scratch = Vec::new();
        let mut got = Vec::new();
        // Twice through reused buffers: stable, equivalent results.
        for _ in 0..2 {
            proc.range_spectrum_real_into(&real_if, &mut scratch, &mut got);
            assert_eq!(got.len(), reference.len());
            for (k, (r, g)) in reference.iter().zip(&got).enumerate() {
                assert!((*r - *g).abs() <= 1e-12 * peak, "bin {k}");
            }
        }

        // Profile variant flips exactly like the complex profile.
        let mut ref_flip = Vec::new();
        flip_spectrum_into(&reference, &mut ref_flip);
        let mut fft_buf = Vec::new();
        let mut prof = Vec::new();
        proc.range_profile_real_into(&real_if, &mut scratch, &mut fft_buf, &mut prof);
        let peak2 = peak.max(1e-300);
        for (r, g) in ref_flip.iter().zip(&prof) {
            assert!((*r - *g).abs() <= 1e-12 * peak2);
        }
    }

    #[test]
    fn sweep_tier_power_within_accuracy_bound() {
        let cfg = test_chirp();
        let proc = RangeProcessor::new(cfg, 2);
        let tx = cfg.sawtooth();
        let tau = 2.0 * 4.0 / SPEED_OF_LIGHT;
        let mut rx = tx.delayed(tau);
        rx.rotate(Cpx::cis(-2.0 * std::f64::consts::PI * tx.fc * tau));
        let de = proc.dechirp(&rx, &tx);

        let mut stage = Vec::new();
        let mut spec32 = Vec::new();
        let mut reference = Vec::new();
        proc.range_power_into(
            &de.samples,
            Fidelity::Reference,
            &mut stage,
            &mut spec32,
            &mut reference,
        );
        // The reference tier is the profile power, bit for bit.
        let profile = proc.range_profile(&de);
        let ref_powers: Vec<f64> = profile.iter().map(|c| c.norm_sq()).collect();
        assert_eq!(reference, ref_powers);

        let mut sweep = Vec::new();
        proc.range_power_into(
            &de.samples,
            Fidelity::Sweep,
            &mut stage,
            &mut spec32,
            &mut sweep,
        );
        assert_eq!(sweep.len(), reference.len());
        let peak = reference.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
        // Amplitude bound 1e-4·|X|max ⇒ power bound ~3e-4·peak power.
        for (k, (r, g)) in reference.iter().zip(&sweep).enumerate() {
            assert!((r - g).abs() <= 3e-4 * peak, "bin {k}: {r} vs {g}");
        }
        // The peaks agree on location.
        let argmax_ref = argmax(&reference[..reference.len() / 2]).unwrap();
        let argmax_sweep = argmax(&sweep[..sweep.len() / 2]).unwrap();
        assert_eq!(argmax_ref, argmax_sweep);
    }

    #[test]
    fn conversions_are_consistent() {
        let cfg = test_chirp();
        let proc = RangeProcessor::new(cfg, 1);
        let fs = cfg.fs;
        // Bin → beat → delay → range round-trips through the slope.
        let bin = 100.0;
        let beat = proc.bin_to_beat(bin, fs);
        let tau = proc.beat_to_delay(beat);
        assert!((beat - tau * cfg.slope()).abs() < 1e-3);
        let r = proc.bin_to_range(bin, fs);
        assert!((r - tau * SPEED_OF_LIGHT / 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_range_is_generous() {
        let proc = RangeProcessor::new(test_chirp(), 1);
        // slope = 3 GHz / 4 µs = 7.5e14; fs/2 = 1.6 GHz → τ = 2.13 µs → 320 m.
        assert!(proc.max_range(3.2e9) > 100.0);
    }
}
