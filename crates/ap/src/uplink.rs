//! Uplink receiver — the paper's Figure 7 chain.
//!
//! Per RX antenna: LNA → mixer (× one query tone) → low-pass/decimate →
//! DC block → coherent projection → per-symbol integration → slicing.
//!
//! The mixer arithmetic is what rejects interference: clutter and
//! self-interference are unmodulated copies of the query, so after
//! multiplication by the tone they land at exactly DC (plus far-away
//! mixing images); the node's keyed reflection lands at baseband with its
//! modulation sidebands intact. A digital DC block (the paper's band-pass
//! filter) removes the former.
//!
//! Projection sign ambiguity: after DC blocking, "on" symbols sit at
//! `+A(1−p)` and "off" at `−Ap` along an unknown phasor. The transmitted
//! symbol stream starts with the known [`milback_proto::packet`] uplink
//! pilot, which fixes the sign.

use milback_dsp::filter::Fir;
use milback_dsp::noise::thermal_noise_power;
use milback_dsp::num::Cpx;
use milback_dsp::phasor;
use milback_dsp::signal::Signal;
use milback_dsp::window::Window;
use milback_proto::bits::OaqfmSymbol;
use milback_rf::frontend::{Lna, Mixer};
use rand::Rng;

/// Known pilot prefix for uplink payloads: both ports alternate
/// reflect/absorb, giving each branch the pattern `1,0,1,0`.
pub const UPLINK_PILOT: [OaqfmSymbol; 4] = [
    OaqfmSymbol {
        a_on: true,
        b_on: true,
    },
    OaqfmSymbol {
        a_on: false,
        b_on: false,
    },
    OaqfmSymbol {
        a_on: true,
        b_on: true,
    },
    OaqfmSymbol {
        a_on: false,
        b_on: false,
    },
];

/// Link statistics from an uplink demodulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UplinkStats {
    /// Estimated SNR of the symbol decision variable, linear power ratio
    /// (min across the two branches).
    pub snr: f64,
    /// Per-branch SNR `[A, B]`.
    pub branch_snr: [f64; 2],
}

/// Pooled working buffers for [`UplinkReceiver::demodulate_into`]:
/// the branch decision stream, mixer LO, anti-alias filter output,
/// per-symbol points, decision levels and the cached FIR designs. A
/// warmed scratch makes repeated demodulations allocation-free.
#[derive(Debug, Clone, Default)]
pub struct UplinkScratch {
    /// Branch working signal samples (filtered/decimated in place).
    work: Vec<Cpx>,
    /// Anti-alias filter output (ping-pong with `work`).
    filt: Vec<Cpx>,
    /// Mixer LO phasor ramp.
    lo: Vec<Cpx>,
    /// Per-symbol complex means.
    pts: Vec<Cpx>,
    /// Projected decision levels, per branch.
    lev_a: Vec<f64>,
    lev_b: Vec<f64>,
    /// Sliced decisions, per branch.
    dec_a: Vec<bool>,
    dec_b: Vec<bool>,
    /// On/off level clusters for the SNR estimate.
    on: Vec<f64>,
    off: Vec<f64>,
    /// Anti-alias FIR designs keyed by `(cutoff, fs)` bit patterns.
    /// The decimation cascade reuses a handful of designs per symbol
    /// rate (a few stages x the adaptive rate ladder), so the cache
    /// stays small and a warmed chain stops designing filters.
    firs: Vec<((u64, u64), Fir)>,
}

/// Index of the cached anti-alias design for `(cutoff, fs)`, building
/// and inserting it on first use.
fn cached_fir(firs: &mut Vec<((u64, u64), Fir)>, cutoff: f64, fs: f64) -> usize {
    let key = (cutoff.to_bits(), fs.to_bits());
    if let Some(i) = firs.iter().position(|(k, _)| *k == key) {
        return i;
    }
    firs.push((
        key,
        Fir::lowpass_with_window(cutoff, fs, 127, Window::BlackmanHarris),
    ));
    firs.len() - 1
}

/// The AP's uplink receiver.
#[derive(Debug, Clone, Copy)]
pub struct UplinkReceiver {
    /// The per-antenna LNA.
    pub lna: Lna,
    /// The per-antenna mixer.
    pub mixer: Mixer,
    /// Payload symbol rate, symbols/s.
    pub symbol_rate: f64,
    /// Decimated processing rate as a multiple of the symbol rate.
    pub samples_per_symbol: usize,
}

impl UplinkReceiver {
    /// The paper's receiver at the given symbol rate.
    pub fn milback(symbol_rate: f64) -> Self {
        Self {
            lna: Lna::milback(),
            mixer: Mixer::milback(),
            symbol_rate,
            samples_per_symbol: 8,
        }
    }

    /// Target baseband rate after decimation.
    fn target_fs(&self) -> f64 {
        self.symbol_rate * self.samples_per_symbol as f64
    }

    /// One branch of the Figure-7 chain: antenna capture → LNA (adds
    /// thermal noise) → mix with the tone at `f_tone` → decimate → DC
    /// block. Returns the complex baseband decision stream and its rate.
    pub fn branch<R: Rng + ?Sized>(&self, rx: &Signal, f_tone: f64, rng: &mut R) -> Signal {
        let mut scr = UplinkScratch::default();
        let fs = self.branch_pooled(&mut scr, rx, f_tone, rng);
        Signal::new(fs, rx.fc, scr.work)
    }

    /// [`UplinkReceiver::branch`] into the scratch's working buffer
    /// (`scr.work` holds the decision stream on return; the returned
    /// value is its sample rate). Identical arithmetic — LNA noise
    /// draws, mixer products, anti-alias accumulation, decimation
    /// phase, DC-block mean — so the pooled chain is bitwise-identical
    /// to the allocating one.
    fn branch_pooled<R: Rng + ?Sized>(
        &self,
        scr: &mut UplinkScratch,
        rx: &Signal,
        f_tone: f64,
        rng: &mut R,
    ) -> f64 {
        let work = std::mem::take(&mut scr.work);
        let mut sig = Signal::new(rx.fs, rx.fc, work);
        sig.copy_from(rx);
        let capture_bw = sig.fs;
        // LNA noise over the full capture bandwidth; decimation later
        // reduces it to the detection bandwidth, as the hardware BPF does.
        self.lna.apply(&mut sig, capture_bw, rng);
        // Mix with the query tone (the LO phasor ramp of Signal::tone).
        let w = 2.0 * std::f64::consts::PI * (f_tone - sig.fc) / sig.fs;
        scr.lo.clear();
        scr.lo.resize(sig.len(), milback_dsp::num::ZERO);
        phasor::fill_linear(1.0, 0.0, w, &mut scr.lo);
        self.mixer.downconvert_in_place(&mut sig, &scr.lo);
        // Cascaded decimation down to the processing rate, with
        // Blackman-Harris anti-alias filters: the stopband must crush
        // the cross-tone clutter (up to ~60 dB above the node's
        // signal), which a standard Hamming design cannot. Filter
        // designs are cached per (cutoff, rate) in the scratch.
        loop {
            let ratio = sig.fs / self.target_fs();
            if ratio < 2.0 {
                break;
            }
            let factor = (ratio.floor() as usize).clamp(2, 8);
            let new_fs = sig.fs / factor as f64;
            let idx = cached_fir(&mut scr.firs, 0.35 * new_fs, sig.fs);
            scr.firs[idx].1.apply_into(&sig.samples, &mut scr.filt);
            sig.samples.clear();
            sig.samples.extend(scr.filt.iter().step_by(factor).copied());
            sig.fs = new_fs;
        }
        // DC block (the band-pass filter of Fig. 7): remove the capture
        // mean, which holds all static clutter + self-interference energy.
        // The mean is estimated over the central 80% of the capture —
        // the decimation filters' edge transients attenuate the clutter DC
        // near the capture boundaries and would bias a full-span mean.
        let n = sig.len();
        let trim = n / 10;
        let core = &sig.samples[trim..n.saturating_sub(trim).max(trim + 1)];
        let mean: Cpx = core.iter().copied().sum::<Cpx>() / core.len().max(1) as f64;
        for c in sig.samples.iter_mut() {
            *c -= mean;
        }
        let fs = sig.fs;
        scr.work = sig.samples;
        fs
    }

    /// Per-symbol complex means of a decision stream starting at `t0`.
    fn symbol_points_into(&self, fs: f64, stream: &[Cpx], t0: f64, n: usize, out: &mut Vec<Cpx>) {
        let sps = fs / self.symbol_rate;
        out.clear();
        for k in 0..n {
            let start = ((t0 * fs) + (k as f64 + 0.25) * sps) as usize;
            let end = (((t0 * fs) + (k as f64 + 0.95) * sps) as usize).min(stream.len());
            if start >= end {
                out.push(milback_dsp::num::ZERO);
                continue;
            }
            let sum: Cpx = stream[start..end].iter().copied().sum();
            out.push(sum / (end - start) as f64);
        }
    }

    /// Projects complex symbol points onto their dominant axis and fixes
    /// the sign with the pilot pattern, writing real decision levels.
    fn project_into(points: &[Cpx], pilot_on: &[bool], levels: &mut Vec<f64>) {
        // Dominant axis via the second-moment direction: arg(Σ p²)/2.
        let m2: Cpx = points.iter().map(|p| *p * *p).sum();
        let axis = Cpx::cis(-m2.arg() / 2.0);
        levels.clear();
        levels.extend(points.iter().map(|p| (*p * axis).re));
        // Pilot correlation fixes the ± ambiguity.
        let corr: f64 = pilot_on
            .iter()
            .zip(levels.iter())
            .map(|(&on, &l)| if on { l } else { -l })
            .sum();
        if corr < 0.0 {
            for l in levels.iter_mut() {
                *l = -*l;
            }
        }
    }

    /// Slices projected levels at the midpoint threshold.
    fn slice_into(levels: &[f64], out: &mut Vec<bool>) {
        let max = levels.iter().cloned().fold(f64::MIN, f64::max);
        let min = levels.iter().cloned().fold(f64::MAX, f64::min);
        let thr = (max + min) / 2.0;
        out.clear();
        out.extend(levels.iter().map(|l| *l > thr));
    }

    /// SNR of the decision variable from sliced levels: distance between
    /// cluster means squared over the summed cluster variances. `on` /
    /// `off` are pooled cluster buffers.
    fn level_snr(levels: &[f64], decisions: &[bool], on: &mut Vec<f64>, off: &mut Vec<f64>) -> f64 {
        on.clear();
        on.extend(
            levels
                .iter()
                .zip(decisions)
                .filter(|(_, d)| **d)
                .map(|(l, _)| *l),
        );
        off.clear();
        off.extend(
            levels
                .iter()
                .zip(decisions)
                .filter(|(_, d)| !**d)
                .map(|(l, _)| *l),
        );
        if on.is_empty() || off.is_empty() {
            return 0.0;
        }
        let mu_on = milback_dsp::stats::mean(on);
        let mu_off = milback_dsp::stats::mean(off);
        let var = milback_dsp::stats::variance(on) + milback_dsp::stats::variance(off);
        if var <= 0.0 {
            return f64::INFINITY;
        }
        (mu_on - mu_off).powi(2) / var
    }

    /// Demodulates an uplink capture into symbols (pilot included in the
    /// returned stream) plus link statistics.
    ///
    /// * `rx0`/`rx1` — the two antenna captures (channel output, no noise),
    /// * `f_a`/`f_b` — the query tone frequencies,
    /// * `t0` — time of the first (pilot) symbol within the capture,
    /// * `n_symbols` — total symbols including the 4-symbol pilot.
    #[allow(clippy::too_many_arguments)] // one argument per physical input
    pub fn demodulate<R: Rng + ?Sized>(
        &self,
        rx0: &Signal,
        rx1: &Signal,
        f_a: f64,
        f_b: f64,
        t0: f64,
        n_symbols: usize,
        rng: &mut R,
    ) -> (Vec<OaqfmSymbol>, UplinkStats) {
        let mut scr = UplinkScratch::default();
        let mut out = Vec::new();
        let stats =
            self.demodulate_into(&mut scr, rx0, rx1, f_a, f_b, t0, n_symbols, rng, &mut out);
        (out, stats)
    }

    /// [`UplinkReceiver::demodulate`] through pooled buffers: a warmed
    /// scratch makes the whole demodulation chain allocation-free
    /// (pinned by `tests/zero_alloc.rs`). Each branch runs end-to-end
    /// (chain → points → levels → decisions) before the other so one
    /// working buffer serves both; the LNA of branch A draws from `rng`
    /// before branch B exactly as in the two-pass form, so results are
    /// bitwise identical.
    #[allow(clippy::too_many_arguments)] // one argument per physical input
    pub fn demodulate_into<R: Rng + ?Sized>(
        &self,
        scr: &mut UplinkScratch,
        rx0: &Signal,
        rx1: &Signal,
        f_a: f64,
        f_b: f64,
        t0: f64,
        n_symbols: usize,
        rng: &mut R,
        out: &mut Vec<OaqfmSymbol>,
    ) -> UplinkStats {
        let mut pilot_a = [false; UPLINK_PILOT.len()];
        let mut pilot_b = [false; UPLINK_PILOT.len()];
        for (i, s) in UPLINK_PILOT.iter().enumerate() {
            pilot_a[i] = s.a_on;
            pilot_b[i] = s.b_on;
        }

        let fs_a = self.branch_pooled(scr, rx0, f_a, rng);
        self.symbol_points_into(fs_a, &scr.work, t0, n_symbols, &mut scr.pts);
        Self::project_into(&scr.pts, &pilot_a, &mut scr.lev_a);
        Self::slice_into(&scr.lev_a, &mut scr.dec_a);
        let snr_a = Self::level_snr(&scr.lev_a, &scr.dec_a, &mut scr.on, &mut scr.off);

        let fs_b = self.branch_pooled(scr, rx1, f_b, rng);
        self.symbol_points_into(fs_b, &scr.work, t0, n_symbols, &mut scr.pts);
        Self::project_into(&scr.pts, &pilot_b, &mut scr.lev_b);
        Self::slice_into(&scr.lev_b, &mut scr.dec_b);
        let snr_b = Self::level_snr(&scr.lev_b, &scr.dec_b, &mut scr.on, &mut scr.off);

        out.clear();
        out.extend(
            scr.dec_a
                .iter()
                .zip(&scr.dec_b)
                .map(|(&a_on, &b_on)| OaqfmSymbol { a_on, b_on }),
        );
        UplinkStats {
            snr: snr_a.min(snr_b),
            branch_snr: [snr_a, snr_b],
        }
    }

    /// Analytic noise power in the decision bandwidth (`symbol_rate` Hz of
    /// complex bandwidth) referred to the LNA input, watts.
    pub fn noise_power(&self) -> f64 {
        thermal_noise_power(self.symbol_rate, self.lna.nf_db)
    }
}

/// Non-coherent OOK bit-error probability at SNR `snr` (linear):
/// `BER ≈ ½·exp(−SNR/4)` for equal-variance on/off clusters with midpoint
/// threshold (each branch of OAQFM is an independent OOK decision).
pub fn ook_ber(snr: f64) -> f64 {
    0.5 * (-snr / 4.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a synthetic capture: DC clutter + keyed node tone + the
    /// other tone keyed with different data, at the capture rate.
    #[allow(clippy::too_many_arguments)]
    fn synthetic_rx(
        fs: f64,
        fc: f64,
        f_mine: f64,
        f_other: f64,
        data_mine: &[bool],
        data_other: &[bool],
        symbol_rate: f64,
        amp_node: f64,
        amp_clutter: f64,
    ) -> Signal {
        let sps = (fs / symbol_rate) as usize;
        let n = data_mine.len() * sps;
        let mut sig = Signal::tone(fs, fc, f_mine - fc, amp_clutter, n); // clutter at my tone
        let other_clutter = Signal::tone(fs, fc, f_other - fc, amp_clutter, n);
        sig.add(&other_clutter);
        // Keyed node reflections.
        let w_m = 2.0 * std::f64::consts::PI * (f_mine - fc) / fs;
        let w_o = 2.0 * std::f64::consts::PI * (f_other - fc) / fs;
        for (k, (&dm, &do2)) in data_mine.iter().zip(data_other).enumerate() {
            for i in 0..sps {
                let t = (k * sps + i) as f64;
                let mut v = milback_dsp::num::ZERO;
                if dm {
                    v += Cpx::from_polar(amp_node, w_m * t + 0.8);
                }
                if do2 {
                    v += Cpx::from_polar(amp_node, w_o * t + 1.9);
                }
                sig.samples[k * sps + i] += v;
            }
        }
        sig
    }

    fn with_pilot(data: &[bool], pilot: &[bool]) -> Vec<bool> {
        let mut v = pilot.to_vec();
        v.extend_from_slice(data);
        v
    }

    /// Surrounds the data with `n` silent (node-absorbing) guard symbols
    /// on each side — the real query runs before and after the node's
    /// modulation, so the receiver's filter transients land in the guard,
    /// not the payload.
    fn with_guard(data: &[bool], n: usize) -> Vec<bool> {
        let mut v = vec![false; n];
        v.extend_from_slice(data);
        v.extend(std::iter::repeat_n(false, n));
        v
    }

    const GUARD: usize = 6;

    #[test]
    fn demodulates_clean_uplink() {
        let mut rng = StdRng::seed_from_u64(42);
        let fs = 2e9;
        let fc = 28e9;
        let (f_a, f_b) = (27.6e9, 28.4e9);
        let symbol_rate = 10e6;
        let rxr = UplinkReceiver::milback(symbol_rate);
        let pilot_a: Vec<bool> = UPLINK_PILOT.iter().map(|s| s.a_on).collect();
        let pilot_b: Vec<bool> = UPLINK_PILOT.iter().map(|s| s.b_on).collect();
        let data_a = [true, true, false, true, false, false, true, false];
        let data_b = [false, true, true, false, true, false, false, true];
        let full_a = with_pilot(&data_a, &pilot_a);
        let full_b = with_pilot(&data_b, &pilot_b);
        let tx_a = with_guard(&full_a, GUARD);
        let tx_b = with_guard(&full_b, GUARD);
        // Strong node signal: −50 dBm-ish vs clutter −20 dBm.
        let rx0 = synthetic_rx(fs, fc, f_a, f_b, &tx_a, &tx_b, symbol_rate, 1e-5, 1e-2);
        let rx1 = synthetic_rx(fs, fc, f_b, f_a, &tx_b, &tx_a, symbol_rate, 1e-5, 1e-2);
        let n = full_a.len();
        let t0 = GUARD as f64 / symbol_rate;
        let (symbols, stats) = rxr.demodulate(&rx0, &rx1, f_a, f_b, t0, n, &mut rng);
        assert_eq!(symbols.len(), n);
        for (k, s) in symbols.iter().enumerate() {
            assert_eq!(s.a_on, full_a[k], "branch A symbol {k}");
            assert_eq!(s.b_on, full_b[k], "branch B symbol {k}");
        }
        assert!(stats.snr > 10.0, "snr {}", stats.snr);
    }

    #[test]
    fn dc_clutter_does_not_break_decisions() {
        // Clutter 60 dB above the node signal.
        let mut rng = StdRng::seed_from_u64(7);
        let fs = 2e9;
        let fc = 28e9;
        let (f_a, f_b) = (27.6e9, 28.4e9);
        let symbol_rate = 10e6;
        let rxr = UplinkReceiver::milback(symbol_rate);
        let pilot_a: Vec<bool> = UPLINK_PILOT.iter().map(|s| s.a_on).collect();
        let data_a = [true, false, false, true];
        let full_a = with_pilot(&data_a, &pilot_a);
        let full_b = vec![false; full_a.len()];
        let tx_a = with_guard(&full_a, GUARD);
        let tx_b = with_guard(&full_b, GUARD);
        let rx0 = synthetic_rx(fs, fc, f_a, f_b, &tx_a, &tx_b, symbol_rate, 1e-5, 10.0);
        let rx1 = synthetic_rx(fs, fc, f_b, f_a, &tx_b, &tx_a, symbol_rate, 1e-5, 10.0);
        let t0 = GUARD as f64 / symbol_rate;
        let (symbols, _) = rxr.demodulate(&rx0, &rx1, f_a, f_b, t0, full_a.len(), &mut rng);
        let got_a: Vec<bool> = symbols.iter().map(|s| s.a_on).collect();
        assert_eq!(got_a, full_a);
    }

    #[test]
    fn ook_ber_shape() {
        assert!(ook_ber(0.0) == 0.5);
        assert!(ook_ber(40.0) < 1e-4);
        assert!(ook_ber(10.0) > ook_ber(20.0));
    }

    #[test]
    fn noise_power_scales_with_symbol_rate() {
        let a = UplinkReceiver::milback(10e6).noise_power();
        let b = UplinkReceiver::milback(40e6).noise_power();
        assert!((b / a - 4.0).abs() < 1e-9);
    }

    #[test]
    fn pilot_fixes_projection_sign() {
        // All-ones data would be sign-ambiguous without the pilot.
        let mut rng = StdRng::seed_from_u64(3);
        let fs = 2e9;
        let fc = 28e9;
        let (f_a, f_b) = (27.7e9, 28.3e9);
        let symbol_rate = 10e6;
        let rxr = UplinkReceiver::milback(symbol_rate);
        let pilot_a: Vec<bool> = UPLINK_PILOT.iter().map(|s| s.a_on).collect();
        let data_a = [true, true, true, true, false, true, true, true];
        let full_a = with_pilot(&data_a, &pilot_a);
        let full_b = vec![false; full_a.len()];
        let tx_a = with_guard(&full_a, GUARD);
        let tx_b = with_guard(&full_b, GUARD);
        let rx0 = synthetic_rx(fs, fc, f_a, f_b, &tx_a, &tx_b, symbol_rate, 1e-5, 1e-3);
        let rx1 = synthetic_rx(fs, fc, f_b, f_a, &tx_b, &tx_a, symbol_rate, 1e-5, 1e-3);
        let t0 = GUARD as f64 / symbol_rate;
        let (symbols, _) = rxr.demodulate(&rx0, &rx1, f_a, f_b, t0, full_a.len(), &mut rng);
        let got_a: Vec<bool> = symbols.iter().map(|s| s.a_on).collect();
        assert_eq!(got_a, full_a);
    }
}
