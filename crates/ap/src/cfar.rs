//! Cell-averaging CFAR (constant false-alarm rate) detection.
//!
//! The localizer's default gate compares the strongest bin against a
//! global noise-floor estimate; CA-CFAR is the classical radar
//! alternative — each cell is compared against the average of its
//! *local* neighborhood (excluding guard cells), which adapts to a
//! residue floor that varies across range. Offered as a drop-in
//! alternative detection stage and exercised by the robustness tests.

/// Cell-averaging CFAR detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfarDetector {
    /// Training cells on each side of the cell under test.
    pub training: usize,
    /// Guard cells on each side (excluded from the noise average — they
    /// may contain the target's own energy).
    pub guard: usize,
    /// Detection threshold over the local average, linear power ratio.
    pub threshold: f64,
}

impl CfarDetector {
    /// A detector suited to the localizer's range profiles: 16 training
    /// + 4 guard cells per side, 12 dB over the local floor.
    pub fn range_profile() -> Self {
        Self {
            training: 16,
            guard: 4,
            threshold: 15.85, // 12 dB
        }
    }

    /// Local noise estimate for cell `i`: mean of the training cells on
    /// both sides (one-sided at the edges).
    pub fn local_floor(&self, power: &[f64], i: usize) -> f64 {
        let mut acc = 0.0;
        let mut n = 0usize;
        let lo_end = i.saturating_sub(self.guard);
        let lo_start = i.saturating_sub(self.guard + self.training);
        for v in &power[lo_start..lo_end] {
            acc += v;
            n += 1;
        }
        let hi_start = (i + self.guard + 1).min(power.len());
        let hi_end = (i + self.guard + self.training + 1).min(power.len());
        for v in &power[hi_start..hi_end] {
            acc += v;
            n += 1;
        }
        if n == 0 {
            return f64::INFINITY;
        }
        acc / n as f64
    }

    /// Returns the indices of all cells that exceed `threshold` × their
    /// local floor, within `[lo, hi)` (allocating wrapper over
    /// [`CfarDetector::detect_into`]).
    pub fn detect(&self, power: &[f64], lo: usize, hi: usize) -> Vec<usize> {
        let mut hits = Vec::new();
        self.detect_into(power, lo, hi, &mut hits);
        hits
    }

    /// [`CfarDetector::detect`] into a caller-owned hit buffer. The hit
    /// count is unknown up front, so growth is detected after the fill
    /// rather than predicted; telemetry semantics match `detect`.
    pub fn detect_into(&self, power: &[f64], lo: usize, hi: usize, hits: &mut Vec<usize>) {
        let hi = hi.min(power.len());
        let cap = hits.capacity();
        hits.clear();
        hits.extend((lo..hi).filter(|&i| power[i] > self.threshold * self.local_floor(power, i)));
        if hits.capacity() != cap {
            milback_telemetry::counter_add("dsp.workspace.grow.local", 1);
        }
        milback_telemetry::counter_add("ap.cfar.cells", (hi.saturating_sub(lo)) as u64);
        milback_telemetry::counter_add("ap.cfar.detections", hits.len() as u64);
    }

    /// Local noise floors for every cell in `[lo, hi)`, written into
    /// `floors` — the workspace's CFAR noise-estimate buffer.
    pub fn local_floors_into(&self, power: &[f64], lo: usize, hi: usize, floors: &mut Vec<f64>) {
        let hi = hi.min(power.len());
        milback_dsp::buffer::track_growth(floors, hi.saturating_sub(lo));
        floors.clear();
        floors.extend((lo..hi).map(|i| self.local_floor(power, i)));
    }

    /// The strongest CFAR detection in `[lo, hi)`, if any.
    pub fn strongest(&self, power: &[f64], lo: usize, hi: usize) -> Option<usize> {
        self.detect(power, lo, hi)
            .into_iter()
            .max_by(|a, b| power[*a].partial_cmp(&power[*b]).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise_with_peaks(peaks: &[(usize, f64)]) -> Vec<f64> {
        let mut v: Vec<f64> = (0..256)
            .map(|i| 1.0 + 0.1 * ((i as f64) * 0.7).sin())
            .collect();
        for &(i, p) in peaks {
            v[i] = p;
        }
        v
    }

    #[test]
    fn detects_isolated_peak() {
        let det = CfarDetector::range_profile();
        let power = noise_with_peaks(&[(100, 100.0)]);
        let hits = det.detect(&power, 0, 256);
        assert_eq!(hits, vec![100]);
        assert_eq!(det.strongest(&power, 0, 256), Some(100));
    }

    #[test]
    fn no_detection_in_pure_noise() {
        let det = CfarDetector::range_profile();
        let power = noise_with_peaks(&[]);
        assert!(det.detect(&power, 0, 256).is_empty());
        assert_eq!(det.strongest(&power, 0, 256), None);
    }

    #[test]
    fn adapts_to_stepped_noise_floor() {
        // Floor jumps 20× at the midpoint; a 30× bump relative to the
        // local floor must be detected on BOTH sides, while a bump that
        // is large only relative to the *low* floor must not fire inside
        // the high region.
        let det = CfarDetector::range_profile();
        let mut power: Vec<f64> = (0..256).map(|i| if i < 128 { 1.0 } else { 20.0 }).collect();
        power[60] = 30.0; // 30× local floor → detect
        power[200] = 600.0; // 30× local floor → detect
        power[190] = 40.0; // only 2× local floor → no detection
        let hits = det.detect(&power, 0, 256);
        assert!(hits.contains(&60), "{hits:?}");
        assert!(hits.contains(&200), "{hits:?}");
        assert!(!hits.contains(&190), "{hits:?}");
    }

    #[test]
    fn guard_cells_protect_wide_targets() {
        let det = CfarDetector::range_profile();
        // A target smeared over 3 cells: guards keep its skirts out of
        // the noise estimate.
        let power = noise_with_peaks(&[(99, 30.0), (100, 100.0), (101, 30.0)]);
        assert!(det.detect(&power, 0, 256).contains(&100));
    }

    #[test]
    fn edge_cells_use_one_sided_training() {
        let det = CfarDetector::range_profile();
        let power = noise_with_peaks(&[(2, 100.0)]);
        assert!(det.detect(&power, 0, 256).contains(&2));
    }

    #[test]
    fn detect_into_matches_allocating_bitwise() {
        let det = CfarDetector::range_profile();
        let power = noise_with_peaks(&[(40, 80.0), (100, 100.0), (200, 90.0)]);
        let expect = det.detect(&power, 10, 250);
        let mut hits = Vec::new();
        for _ in 0..2 {
            det.detect_into(&power, 10, 250, &mut hits);
            assert_eq!(expect, hits);
        }
        let mut floors = Vec::new();
        det.local_floors_into(&power, 10, 250, &mut floors);
        assert_eq!(floors.len(), 240);
        for (off, f) in floors.iter().enumerate() {
            assert_eq!(*f, det.local_floor(&power, 10 + off));
        }
    }

    #[test]
    fn window_bounds_respected() {
        let det = CfarDetector::range_profile();
        let power = noise_with_peaks(&[(100, 100.0)]);
        assert!(det.detect(&power, 110, 200).is_empty());
        assert!(det.detect(&power, 90, 300).contains(&100));
    }
}
