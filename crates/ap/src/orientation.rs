//! AP-side orientation estimation (paper §5.2(a), §9.3).
//!
//! The node's FSA reflects strongly only while the chirp's instantaneous
//! frequency matches its beam-alignment frequency. After background
//! subtraction, the surviving (node-only) time-domain signal therefore has
//! a power bump whose *position within the chirp* encodes the alignment
//! frequency: `f(t) = f_start + slope·t`. Locating the bump and mapping
//! time → frequency → FSA beam angle gives the node's orientation.

use milback_dsp::chirp::ChirpConfig;
use milback_dsp::detect::{argmax, parabolic_refine};
use milback_dsp::filter::moving_average;
use milback_dsp::signal::Signal;
use milback_rf::fsa::{DualPortFsa, Port};

/// AP-side orientation estimator.
#[derive(Debug, Clone, Copy)]
pub struct ApOrientationEstimator {
    /// The transmitted sawtooth chirp.
    pub chirp: ChirpConfig,
    /// Envelope smoothing window as a fraction of the chirp length.
    pub smooth_frac: f64,
    /// The window the range processor applied before its FFT (undone
    /// during gated reconstruction).
    pub window: milback_dsp::window::Window,
}

impl ApOrientationEstimator {
    /// Estimator for the given chirp with ~2% smoothing, assuming the
    /// range processor's default Hann window.
    pub fn new(chirp: ChirpConfig) -> Self {
        Self {
            chirp,
            smooth_frac: 0.02,
            window: milback_dsp::window::Window::Hann,
        }
    }

    /// The RF frequency whose reflection was strongest, from a
    /// background-subtracted time-domain difference signal.
    pub fn peak_frequency(&self, diff: &Signal) -> Option<f64> {
        if diff.len() < 16 {
            return None;
        }
        let env: Vec<f64> = diff.samples.iter().map(|c| c.norm_sq()).collect();
        let w = ((env.len() as f64 * self.smooth_frac) as usize).max(1);
        let smoothed = moving_average(&env, w);
        let peak = argmax(&smoothed)?;
        if smoothed[peak] <= 0.0 {
            return None;
        }
        let refined = parabolic_refine(&smoothed, peak);
        // Moving average introduces a group delay of (w−1)/2 samples.
        let center = refined - (w as f64 - 1.0) / 2.0;
        let t = (center / diff.fs).clamp(0.0, self.chirp.duration);
        Some(self.chirp.sawtooth_freq_at(t))
    }

    /// Full estimate: peak frequency → orientation via the FSA scan law of
    /// the toggling port.
    pub fn estimate(&self, diff: &Signal, fsa: &DualPortFsa, toggling_port: Port) -> Option<f64> {
        let f_star = self.peak_frequency(diff)?;
        fsa.beam_angle(toggling_port, f_star)
    }

    /// The paper's exact §5.2(a) flow: FFT → background subtraction →
    /// **gate around the node's range bin** → IFFT → power across the
    /// chirp. Gating rejects all noise and residue outside the node's
    /// beat, which is what makes the time-domain envelope usable at
    /// realistic SNR.
    ///
    /// * `diff_profile` — one background-subtracted range-profile
    ///   difference (see `Localizer::profile_diffs`),
    /// * `node_bin` — the node's range-profile bin,
    /// * `half_width` — gate half-width in bins (cover the bump's
    ///   spectral spread),
    /// * `fs` — capture sample rate,
    /// * `n_time` — chirp length in samples (the IFFT output beyond it is
    ///   zero-padding).
    #[allow(clippy::too_many_arguments)] // mirrors the paper's pipeline stages
    pub fn estimate_gated(
        &self,
        diff_profile: &[milback_dsp::num::Cpx],
        node_bin: usize,
        half_width: usize,
        fs: f64,
        n_time: usize,
        fsa: &DualPortFsa,
        toggling_port: Port,
    ) -> Option<f64> {
        let n = diff_profile.len();
        if n == 0 || node_bin >= n {
            return None;
        }
        // Gate in the profile domain, then map back to spectrum order
        // (profile bin k holds spectrum bin (n−k) mod n).
        let mut spec = vec![milback_dsp::num::ZERO; n];
        let lo = node_bin.saturating_sub(half_width);
        let hi = (node_bin + half_width + 1).min(n);
        for k in lo..hi {
            spec[(n - k) % n] = diff_profile[k];
        }
        let time = milback_dsp::fft::ifft(&spec);
        // The range FFT was Hann-windowed, so the reconstructed envelope
        // is the true envelope × w(t); undo it (where the window has
        // usable amplitude) or the peak biases toward the chirp center.
        let n_keep = n_time.min(time.len());
        let samples: Vec<milback_dsp::num::Cpx> = (0..n_keep)
            .map(|i| {
                let w = self.window.coeff(i, n_time);
                if w > 0.15 {
                    time[i] / w
                } else {
                    milback_dsp::num::ZERO
                }
            })
            .collect();
        let sig = Signal::new(fs, 0.0, samples);
        self.estimate(&sig, fsa, toggling_port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_dsp::num::Cpx;
    use milback_rf::geometry::{deg_to_rad, rad_to_deg};

    fn test_chirp() -> ChirpConfig {
        ChirpConfig {
            f_start: 26.5e9,
            f_stop: 29.5e9,
            duration: 4e-6,
            fs: 3.2e9,
            amplitude: 1.0,
        }
    }

    /// A synthetic subtracted signal: the node's reflection envelope as
    /// the chirp sweeps past the beam at `f_star`, with bump width set by
    /// the FSA beamwidth in frequency.
    fn synthetic_diff(f_star: f64) -> Signal {
        let cfg = test_chirp();
        let n = cfg.n_samples();
        let t_star = (f_star - cfg.f_start) / cfg.slope();
        let width = 0.15e-6; // seconds — ≈ beamwidth / scan rate
        let samples: Vec<Cpx> = (0..n)
            .map(|i| {
                let t = i as f64 / cfg.fs;
                let x = (t - t_star) / width;
                Cpx::from_polar(0.01 * (-x * x).exp(), 2000.0 * t)
            })
            .collect();
        Signal::new(cfg.fs, cfg.center(), samples)
    }

    #[test]
    fn peak_frequency_recovered() {
        let est = ApOrientationEstimator::new(test_chirp());
        for f in [27.0e9, 27.8e9, 28.6e9, 29.2e9] {
            let d = synthetic_diff(f);
            let got = est.peak_frequency(&d).unwrap();
            assert!((got - f).abs() < 30e6, "f {f} → {got}");
        }
    }

    #[test]
    fn orientation_from_peak_frequency() {
        let fsa = DualPortFsa::milback();
        let est = ApOrientationEstimator::new(test_chirp());
        for deg in [-25.0, -10.0, 0.0, 10.0, 25.0] {
            let orient = deg_to_rad(deg);
            let f_star = fsa.frequency_for_angle(Port::A, orient).unwrap();
            let d = synthetic_diff(f_star);
            let got = est.estimate(&d, &fsa, Port::A).unwrap();
            let err = rad_to_deg(got - orient).abs();
            assert!(err < 1.0, "{deg}°: err {err}°");
        }
    }

    #[test]
    fn empty_or_silent_diff_is_none() {
        let est = ApOrientationEstimator::new(test_chirp());
        let silent = Signal::zeros(3.2e9, 28e9, 12800);
        assert!(est.peak_frequency(&silent).is_none());
        let tiny = Signal::zeros(3.2e9, 28e9, 4);
        assert!(est.peak_frequency(&tiny).is_none());
    }

    #[test]
    fn edge_frequency_clamps() {
        // Bump at the very start of the chirp: frequency clamps to band.
        let est = ApOrientationEstimator::new(test_chirp());
        let d = synthetic_diff(26.5e9);
        let got = est.peak_frequency(&d).unwrap();
        assert!((26.5e9..26.7e9).contains(&got), "{got}");
    }
}
