//! Angle-of-arrival estimation from the phase difference between the AP's
//! two RX antennas (paper §9.2).
//!
//! Both antennas see the node's backscatter at the same range bin but with
//! a geometric path difference `d·sinθ`, so the complex range-FFT values
//! differ in phase by `Δφ = 2π·d·sinθ/λ`. With `d = λ/2` the mapping is
//! unambiguous over ±90°.

use milback_dsp::num::Cpx;

/// AoA estimator configuration.
#[derive(Debug, Clone, Copy)]
pub struct AoaEstimator {
    /// RX antenna spacing, meters.
    pub spacing: f64,
    /// Carrier wavelength used for the phase→angle conversion, meters.
    pub wavelength: f64,
}

impl AoaEstimator {
    /// Builds an estimator for spacing `spacing` at carrier `fc` Hz.
    pub fn new(spacing: f64, fc: f64) -> Self {
        assert!(spacing > 0.0 && fc > 0.0, "invalid AoA parameters");
        Self {
            spacing,
            wavelength: milback_rf::geometry::wavelength(fc),
        }
    }

    /// The MilBack arrangement: λ/2 spacing at 28 GHz.
    pub fn milback() -> Self {
        let lambda = milback_rf::geometry::wavelength(28e9);
        Self {
            spacing: lambda / 2.0,
            wavelength: lambda,
        }
    }

    /// Converts a measured phase difference (radians, antenna0 − antenna1)
    /// to an angle. Returns `None` when the implied `sinθ` falls outside
    /// `[-1, 1]` (noise pushed the phase out of the unambiguous range).
    pub fn phase_to_angle(&self, dphi: f64) -> Option<f64> {
        let s = dphi * self.wavelength / (2.0 * std::f64::consts::PI * self.spacing);
        if s.abs() <= 1.0 {
            Some(s.asin())
        } else {
            None
        }
    }

    /// Inverse mapping (for tests and link budgets): the phase difference
    /// an emitter at angle `theta` produces.
    pub fn angle_to_phase(&self, theta: f64) -> f64 {
        2.0 * std::f64::consts::PI * self.spacing * theta.sin() / self.wavelength
    }

    /// Estimates the angle from the complex range-spectrum values of the
    /// node's bin at the two antennas: `θ = asin(arg(x0·x1*)·λ/(2π·d))`.
    pub fn estimate(&self, bin0: Cpx, bin1: Cpx) -> Option<f64> {
        if bin0.abs() == 0.0 || bin1.abs() == 0.0 {
            return None;
        }
        self.phase_to_angle((bin0 * bin1.conj()).arg())
    }

    /// Estimates the angle averaging the phase over a few bins around the
    /// peak, weighted by magnitude — more robust at low SNR.
    pub fn estimate_windowed(
        &self,
        spec0: &[Cpx],
        spec1: &[Cpx],
        peak: usize,
        half: usize,
    ) -> Option<f64> {
        let lo = peak.saturating_sub(half);
        let hi = (peak + half + 1).min(spec0.len()).min(spec1.len());
        if lo >= hi {
            return None;
        }
        let acc: Cpx = (lo..hi).map(|k| spec0[k] * spec1[k].conj()).sum();
        if acc.abs() == 0.0 {
            return None;
        }
        let angle = self.phase_to_angle(acc.arg());
        match angle {
            Some(_) => milback_telemetry::counter_add("ap.aoa.ok", 1),
            None => milback_telemetry::counter_add("ap.aoa.ambiguous", 1),
        }
        angle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_rf::geometry::deg_to_rad;

    #[test]
    fn phase_angle_round_trip() {
        let est = AoaEstimator::milback();
        for deg in [-60.0, -20.0, 0.0, 15.0, 45.0] {
            let theta = deg_to_rad(deg);
            let dphi = est.angle_to_phase(theta);
            let back = est.phase_to_angle(dphi).unwrap();
            assert!((back - theta).abs() < 1e-12, "{deg}°");
        }
    }

    #[test]
    fn half_lambda_spacing_covers_90_degrees() {
        let est = AoaEstimator::milback();
        // At θ = 90° the phase difference is exactly π — still in range.
        let dphi = est.angle_to_phase(deg_to_rad(90.0));
        assert!((dphi - std::f64::consts::PI).abs() < 1e-9);
        assert!(est.phase_to_angle(dphi).is_some());
    }

    #[test]
    fn out_of_range_phase_is_none() {
        let est = AoaEstimator::milback();
        assert!(est.phase_to_angle(3.5).is_none());
        assert!(est.phase_to_angle(-3.5).is_none());
    }

    #[test]
    fn estimate_from_bins() {
        let est = AoaEstimator::milback();
        let theta = deg_to_rad(12.0);
        let dphi = est.angle_to_phase(theta);
        let bin0 = Cpx::from_polar(1.0, 0.7 + dphi);
        let bin1 = Cpx::from_polar(1.0, 0.7);
        let got = est.estimate(bin0, bin1).unwrap();
        assert!((got - theta).abs() < 1e-12);
    }

    #[test]
    fn zero_bin_is_none() {
        let est = AoaEstimator::milback();
        assert!(est
            .estimate(Cpx::new(0.0, 0.0), Cpx::new(1.0, 0.0))
            .is_none());
    }

    #[test]
    fn windowed_estimate_averages_noise() {
        let est = AoaEstimator::milback();
        let theta = deg_to_rad(-8.0);
        let dphi = est.angle_to_phase(theta);
        // Peak bin corrupted; neighbors clean and stronger on aggregate.
        let mut s0 = vec![Cpx::new(0.0, 0.0); 16];
        let mut s1 = vec![Cpx::new(0.0, 0.0); 16];
        for k in 6..=10 {
            s0[k] = Cpx::from_polar(1.0, dphi);
            s1[k] = Cpx::from_polar(1.0, 0.0);
        }
        s0[8] = Cpx::from_polar(0.2, dphi + 1.0); // corrupted peak
        let got = est.estimate_windowed(&s0, &s1, 8, 2).unwrap();
        assert!((got - theta).abs() < deg_to_rad(2.0));
    }

    #[test]
    fn empty_window_is_none() {
        let est = AoaEstimator::milback();
        assert!(est.estimate_windowed(&[], &[], 0, 2).is_none());
    }
}
