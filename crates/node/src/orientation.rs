//! Node-side orientation estimation (paper §5.2(b), Figure 5).
//!
//! During Field 1 the AP transmits triangular FMCW chirps while the node
//! listens with both ports absorptive. The envelope detector at each port
//! sees a power bump whenever the chirp's instantaneous frequency crosses
//! that port's beam-alignment frequency — twice per triangular chirp (once
//! on the up-sweep, once on the down-sweep). The time separation between
//! the two bumps encodes the alignment frequency, hence the orientation:
//!
//! `Δt = 2·(f_stop − f*) / slope  ⇒  f* = f_stop − Δt·slope/2`
//!
//! and `orientation = beam_angle(port, f*)`. The node averages the
//! estimates from its two ports (paper §9.3).

use milback_dsp::chirp::ChirpConfig;
use milback_dsp::detect::{find_peaks, parabolic_refine};
use milback_dsp::filter::moving_average;
use milback_rf::fsa::{DualPortFsa, Port};

/// Node-side orientation estimator.
#[derive(Debug, Clone, Copy)]
pub struct NodeOrientationEstimator {
    /// The triangular chirp the AP transmits in Field 1.
    pub chirp: ChirpConfig,
    /// ADC sample rate of the captures handed to [`Self::estimate`], Hz.
    pub sample_rate: f64,
    /// Smoothing window applied before peak search, samples.
    pub smooth: usize,
}

impl NodeOrientationEstimator {
    /// Estimator matching the paper's setup: 45 µs triangular chirps
    /// sampled by the 1 MHz MCU ADC.
    pub fn milback() -> Self {
        Self {
            chirp: ChirpConfig::milback_triangular(),
            sample_rate: 1e6,
            smooth: 3,
        }
    }

    /// Recovers the beam-alignment frequency from the peak separation
    /// `dt` seconds measured on one triangular chirp.
    pub fn freq_from_peak_gap(&self, dt: f64) -> f64 {
        let half_t = self.chirp.duration / 2.0;
        let slope = self.chirp.bandwidth() / half_t;
        self.chirp.f_stop - dt * slope / 2.0
    }

    /// Estimates the peak separation (seconds) from one port's ADC capture
    /// of a single triangular chirp. Returns `None` when two distinct
    /// peaks cannot be found.
    pub fn peak_gap(&self, capture: &[f64]) -> Option<f64> {
        if capture.len() < 8 {
            return None;
        }
        let smoothed = moving_average(capture, self.smooth.max(1));
        // Exclude sub-noise candidates: threshold halfway between the
        // median and the max.
        let mut sorted = smoothed.clone();
        sorted.sort_by(f64::total_cmp);
        let floor = sorted[sorted.len() / 2];
        let peak = sorted[sorted.len() - 1];
        if peak <= floor {
            return None;
        }
        let threshold = floor + 0.4 * (peak - floor);
        // The two bumps are mirror images around the chirp apex; enforce a
        // small separation to reject double-detections on one bump.
        let min_sep = (capture.len() / 20).max(2);
        let peaks = find_peaks(&smoothed, threshold, min_sep);
        if peaks.len() < 2 {
            return None;
        }
        let (first, second) = if peaks[0].index < peaks[1].index {
            (peaks[0], peaks[1])
        } else {
            (peaks[1], peaks[0])
        };
        let r1 = parabolic_refine(&smoothed, first.index);
        let r2 = parabolic_refine(&smoothed, second.index);
        Some((r2 - r1) / self.sample_rate)
    }

    /// Estimates the node's orientation (radians) from one port's capture
    /// of a single triangular chirp.
    pub fn estimate_port(&self, fsa: &DualPortFsa, port: Port, capture: &[f64]) -> Option<f64> {
        let dt = self.peak_gap(capture)?;
        let f_star = self.freq_from_peak_gap(dt);
        fsa.beam_angle(port, f_star)
    }

    /// Estimates orientation from both ports' captures and averages, as
    /// the paper does. Falls back to a single port when the other fails.
    pub fn estimate(&self, fsa: &DualPortFsa, capture_a: &[f64], capture_b: &[f64]) -> Option<f64> {
        let ea = self.estimate_port(fsa, Port::A, capture_a);
        let eb = self.estimate_port(fsa, Port::B, capture_b);
        match (ea, eb) {
            (Some(a), Some(b)) => Some((a + b) / 2.0),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_rf::geometry::{deg_to_rad, rad_to_deg};

    /// Builds a synthetic 1 MHz capture of the detector output for a node
    /// at `orient` radians: two Gaussian bumps at the triangular chirp's
    /// crossings of the port's alignment frequency.
    fn synthetic_capture(fsa: &DualPortFsa, port: Port, orient: f64) -> Vec<f64> {
        let est = NodeOrientationEstimator::milback();
        let f_star = fsa.frequency_for_angle(port, orient).unwrap();
        let (t1, t2) = est.chirp.triangular_crossings(f_star).unwrap();
        let n = (est.chirp.duration * est.sample_rate) as usize;
        // Bump width from the beamwidth: the beam sweeps past the AP in
        // roughly beamwidth/scan-rate seconds; ~2 µs here.
        let width = 2e-6 * est.sample_rate;
        (0..n)
            .map(|i| {
                let t = i as f64;
                let a = ((t - t1 * est.sample_rate) / width).powi(2);
                let b = ((t - t2 * est.sample_rate) / width).powi(2);
                0.001 + 0.3 * ((-a).exp() + (-b).exp())
            })
            .collect()
    }

    #[test]
    fn freq_from_gap_inverts_crossings() {
        let est = NodeOrientationEstimator::milback();
        for f in [26.6e9, 27.5e9, 28.5e9, 29.4e9] {
            let (t1, t2) = est.chirp.triangular_crossings(f).unwrap();
            let back = est.freq_from_peak_gap(t2 - t1);
            assert!((back - f).abs() < 1.0, "f {f} → {back}");
        }
    }

    #[test]
    fn clean_capture_recovers_orientation() {
        let fsa = DualPortFsa::milback();
        let est = NodeOrientationEstimator::milback();
        for deg in [-20.0, -10.0, -4.0, 4.0, 10.0, 20.0] {
            let orient = deg_to_rad(deg);
            let cap_a = synthetic_capture(&fsa, Port::A, orient);
            let cap_b = synthetic_capture(&fsa, Port::B, orient);
            let got = est.estimate(&fsa, &cap_a, &cap_b).unwrap();
            let err = rad_to_deg(got - orient).abs();
            assert!(err < 1.0, "{deg}°: error {err}°");
        }
    }

    #[test]
    fn single_port_estimation_works() {
        let fsa = DualPortFsa::milback();
        let est = NodeOrientationEstimator::milback();
        let orient = deg_to_rad(15.0);
        let cap = synthetic_capture(&fsa, Port::A, orient);
        let got = est.estimate_port(&fsa, Port::A, &cap).unwrap();
        assert!(rad_to_deg(got - orient).abs() < 1.0);
    }

    #[test]
    fn flat_capture_gives_none() {
        let est = NodeOrientationEstimator::milback();
        let fsa = DualPortFsa::milback();
        let flat = vec![0.01; 45];
        assert!(est.estimate_port(&fsa, Port::A, &flat).is_none());
        assert!(est.estimate(&fsa, &flat, &flat).is_none());
    }

    #[test]
    fn too_short_capture_gives_none() {
        let est = NodeOrientationEstimator::milback();
        assert!(est.peak_gap(&[0.1, 0.2]).is_none());
    }

    #[test]
    fn fallback_to_one_port() {
        let fsa = DualPortFsa::milback();
        let est = NodeOrientationEstimator::milback();
        let orient = deg_to_rad(-8.0);
        let good = synthetic_capture(&fsa, Port::A, orient);
        let flat = vec![0.01; good.len()];
        let got = est.estimate(&fsa, &good, &flat).unwrap();
        assert!(rad_to_deg(got - orient).abs() < 1.0);
    }

    #[test]
    fn larger_orientation_gives_larger_gap_for_port_a() {
        // Port A's alignment frequency decreases as orientation decreases,
        // so the peak gap grows toward negative orientations.
        let fsa = DualPortFsa::milback();
        let est = NodeOrientationEstimator::milback();
        let g1 = est
            .peak_gap(&synthetic_capture(&fsa, Port::A, deg_to_rad(-20.0)))
            .unwrap();
        let g2 = est
            .peak_gap(&synthetic_capture(&fsa, Port::A, deg_to_rad(20.0)))
            .unwrap();
        assert!(g1 > g2, "gap(-20°) {g1} vs gap(20°) {g2}");
    }
}
