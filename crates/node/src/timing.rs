//! Symbol-timing recovery for the downlink demodulator.
//!
//! The simulation elsewhere hands the demodulator the exact payload start
//! time; a real node only knows "energy appeared". This module recovers
//! the symbol boundary by sliding a known pilot pattern over the detector
//! stream and maximizing the correlation of per-symbol integrals — the
//! MCU-friendly equivalent of early/late gate timing.

use crate::demod::EnvelopeSlicer;

/// Timing estimator for a known on/off pilot at the payload start.
#[derive(Debug, Clone)]
pub struct TimingRecovery {
    /// The pilot's on/off pattern per symbol.
    pub pilot: Vec<bool>,
    /// Number of candidate offsets tested per symbol period.
    pub steps_per_symbol: usize,
}

impl TimingRecovery {
    /// Builds a recovery for a pilot pattern with 16 trial offsets per
    /// symbol.
    pub fn new(pilot: Vec<bool>) -> Self {
        assert!(pilot.len() >= 2, "pilot too short for timing");
        assert!(
            pilot.iter().any(|b| *b) && pilot.iter().any(|b| !*b),
            "pilot must contain both on and off symbols"
        );
        Self {
            pilot,
            steps_per_symbol: 16,
        }
    }

    /// Correlation metric of the pilot at offset `t0`: Σ ±level, with
    /// `+` for expected-on symbols and `−` for expected-off. Uses a
    /// guard-free integration window — the demodulator's settling guard
    /// would flatten the metric into a plateau and bias the peak.
    fn metric(&self, slicer: &EnvelopeSlicer, detector: &[f64], t0: f64) -> f64 {
        let mut sharp = *slicer;
        sharp.guard = 0.0;
        let levels = sharp.symbol_levels(detector, t0, self.pilot.len());
        self.pilot
            .iter()
            .zip(&levels)
            .map(|(&on, &l)| if on { l } else { -l })
            .sum()
    }

    /// Searches `[0, search_window)` seconds for the pilot start, at
    /// `steps_per_symbol` resolution. Returns the best-aligned `t0`.
    pub fn acquire(
        &self,
        slicer: &EnvelopeSlicer,
        detector: &[f64],
        search_window: f64,
    ) -> Option<f64> {
        assert!(search_window > 0.0, "search window must be positive");
        let step = 1.0 / (slicer.symbol_rate * self.steps_per_symbol as f64);
        let n_steps = (search_window / step).ceil() as usize;
        let mut best = None;
        let mut best_metric = f64::MIN;
        for k in 0..=n_steps {
            let t0 = k as f64 * step;
            let m = self.metric(slicer, detector, t0);
            if m > best_metric {
                best_metric = m;
                best = Some(t0);
            }
        }
        // Reject a windowless / silent stream: the best metric must be
        // positive (on-symbols actually brighter than off-symbols).
        if best_metric <= 0.0 {
            return None;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a detector stream: `offset_samples` of noise floor, then the
    /// pattern at `sps` samples/symbol.
    fn stream(pattern: &[bool], offset_samples: usize, sps: usize) -> Vec<f64> {
        let mut v = vec![0.01; offset_samples];
        for &on in pattern {
            for _ in 0..sps {
                v.push(if on { 0.5 } else { 0.01 });
            }
        }
        v.extend(std::iter::repeat_n(0.01, 4 * sps));
        v
    }

    const PILOT: [bool; 4] = [true, false, true, false];

    #[test]
    fn acquires_exact_offset() {
        let sps = 20;
        let fs = 20e6;
        let slicer = EnvelopeSlicer::new(fs, 1e6);
        let tr = TimingRecovery::new(PILOT.to_vec());
        for offset in [0usize, 7, 33, 55] {
            let mut pattern = PILOT.to_vec();
            pattern.extend([true, true, false, true]); // payload
            let det = stream(&pattern, offset, sps);
            let t0 = tr.acquire(&slicer, &det, 5e-6).expect("no acquisition");
            let err_samples = (t0 * fs - offset as f64).abs();
            assert!(err_samples <= 2.0, "offset {offset}: err {err_samples}");
        }
    }

    #[test]
    fn acquired_timing_decodes_payload() {
        use crate::demod::demodulate_ook;
        let sps = 20;
        let fs = 20e6;
        let slicer = EnvelopeSlicer::new(fs, 1e6);
        let tr = TimingRecovery::new(PILOT.to_vec());
        let payload = [true, true, false, true, false, false, true, false];
        let mut pattern = PILOT.to_vec();
        pattern.extend_from_slice(&payload);
        let det = stream(&pattern, 41, sps);
        let t0 = tr.acquire(&slicer, &det, 5e-6).unwrap();
        let t_payload = t0 + PILOT.len() as f64 / 1e6;
        let half = vec![0.0; det.len()];
        let bits = demodulate_ook(&slicer, &det, &half, t_payload, payload.len());
        assert_eq!(bits, payload.to_vec());
    }

    #[test]
    fn silent_stream_yields_none() {
        let slicer = EnvelopeSlicer::new(20e6, 1e6);
        let tr = TimingRecovery::new(PILOT.to_vec());
        let det = vec![0.0; 4000];
        assert!(tr.acquire(&slicer, &det, 5e-6).is_none());
    }

    #[test]
    #[should_panic(expected = "both on and off")]
    fn rejects_all_on_pilot() {
        TimingRecovery::new(vec![true, true]);
    }

    #[test]
    fn noisy_acquisition_within_a_sample_or_two() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let sps = 20;
        let fs = 20e6;
        let slicer = EnvelopeSlicer::new(fs, 1e6);
        let tr = TimingRecovery::new(PILOT.to_vec());
        let mut pattern = PILOT.to_vec();
        pattern.extend([false, true, true, false]);
        let mut det = stream(&pattern, 23, sps);
        let mut rng = StdRng::seed_from_u64(3);
        milback_dsp::noise::add_real_noise(&mut det, 0.03, &mut rng);
        let t0 = tr.acquire(&slicer, &det, 5e-6).unwrap();
        let err = (t0 * fs - 23.0).abs();
        assert!(err <= 3.0, "err {err} samples");
    }
}
