//! The node's MCU firmware as an explicit state machine.
//!
//! The MSP430 on the prototype runs a small event loop: sleep until RF
//! energy appears, count Field-1 chirps while sampling the detectors,
//! estimate orientation, drive the localization modulation through
//! Field 2, then either stream switch states (uplink) or slice detector
//! samples (downlink) for the payload. This module is that program,
//! written against the same hardware models the simulation uses — so the
//! protocol logic the paper describes in §7 exists as *runnable node-side
//! code*, not only as orchestration in the simulator.

use crate::mode_detect::ModeDetector;
use crate::orientation::NodeOrientationEstimator;
use milback_hw::switch::{SwitchSchedule, SwitchState};
use milback_proto::packet::{LinkMode, PacketConfig};
use milback_rf::fsa::DualPortFsa;

/// Firmware states, in packet order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirmwareState {
    /// Waiting for RF energy (both ports absorptive, detectors armed).
    Sleep,
    /// Capturing Field 1: counting chirps + buffering for orientation.
    Field1,
    /// Driving the localization modulation during Field 2.
    Field2,
    /// Receiving a downlink payload.
    PayloadDownlink,
    /// Modulating an uplink payload.
    PayloadUplink,
    /// Packet finished; results latched, returning to sleep.
    Done,
}

/// Everything the firmware learned during one packet.
#[derive(Debug, Clone, Default)]
pub struct FirmwareReport {
    /// The link mode decoded from Field 1.
    pub mode: Option<LinkMode>,
    /// Own-orientation estimate, radians.
    pub orientation: Option<f64>,
    /// Whether the node participated in the payload phase.
    pub payload_ran: bool,
}

/// The node firmware.
#[derive(Debug, Clone)]
pub struct Firmware {
    /// Packet timing shared with the AP.
    pub packet: PacketConfig,
    /// Wake threshold on the summed detector outputs, volts.
    pub wake_threshold: f64,
    /// Per-sample detector noise (for the mode detector's floor), volts.
    pub noise_sigma: f64,
    state: FirmwareState,
    field1_buf_a: Vec<f64>,
    field1_buf_b: Vec<f64>,
    report: FirmwareReport,
}

impl Firmware {
    /// Boots the firmware with the given shared packet configuration.
    pub fn new(packet: PacketConfig, wake_threshold: f64, noise_sigma: f64) -> Self {
        Self {
            packet,
            wake_threshold,
            noise_sigma,
            state: FirmwareState::Sleep,
            field1_buf_a: Vec::new(),
            field1_buf_b: Vec::new(),
            report: FirmwareReport::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> FirmwareState {
        self.state
    }

    /// The latched report of the last completed packet.
    pub fn report(&self) -> &FirmwareReport {
        &self.report
    }

    /// Expected number of ADC samples in Field 1 at `adc_rate` Hz.
    fn field1_samples(&self, adc_rate: f64) -> usize {
        (3.0 * self.packet.field1_chirp.duration * adc_rate) as usize
    }

    /// Feeds one pair of ADC samples (port A, port B) taken at `adc_rate`.
    /// Drives Sleep → Field1 → Field2 transitions. Call once per ADC tick
    /// while listening.
    pub fn on_adc_sample(&mut self, a: f64, b: f64, adc_rate: f64, fsa: &DualPortFsa) {
        match self.state {
            FirmwareState::Sleep if a + b > self.wake_threshold => {
                // Energy: Field 1 has begun. Start buffering (the first
                // sample belongs to the capture).
                self.state = FirmwareState::Field1;
                self.report = FirmwareReport::default();
                self.field1_buf_a.clear();
                self.field1_buf_b.clear();
                self.field1_buf_a.push(a);
                self.field1_buf_b.push(b);
            }
            FirmwareState::Sleep => {}
            FirmwareState::Field1 => {
                self.field1_buf_a.push(a);
                self.field1_buf_b.push(b);
                if self.field1_buf_a.len() >= self.field1_samples(adc_rate) {
                    self.finish_field1(adc_rate, fsa);
                }
            }
            // In the remaining states the MCU is not sampling the ADC for
            // control (Field 2 drives switches; payload has its own path).
            _ => {}
        }
    }

    /// Processes the buffered Field-1 capture: mode detection + own
    /// orientation, then advances to Field 2.
    fn finish_field1(&mut self, adc_rate: f64, fsa: &DualPortFsa) {
        let combined: Vec<f64> = self
            .field1_buf_a
            .iter()
            .zip(&self.field1_buf_b)
            .map(|(x, y)| x + y)
            .collect();
        let det = ModeDetector {
            slot_duration: self.packet.field1_chirp.duration,
            sample_rate: adc_rate,
        };
        self.report.mode = det.detect_with_floor(&combined, 0.0, self.noise_sigma);

        // Orientation from the first chirp slot (both ports).
        let n_slot = (self.packet.field1_chirp.duration * adc_rate) as usize;
        let mut est = NodeOrientationEstimator::milback();
        est.chirp = self.packet.field1_chirp;
        est.sample_rate = adc_rate;
        self.report.orientation = est.estimate(
            fsa,
            &self.field1_buf_a[..n_slot.min(self.field1_buf_a.len())],
            &self.field1_buf_b[..n_slot.min(self.field1_buf_b.len())],
        );
        self.state = FirmwareState::Field2;
    }

    /// The switch schedules to drive during Field 2 (port A toggling for
    /// background subtraction, port B absorptive).
    pub fn field2_schedules(&self) -> (SwitchSchedule, SwitchSchedule) {
        let freq = 1.0 / (4.0 * self.packet.field2_chirp.duration);
        (
            SwitchSchedule::SquareWave {
                freq_hz: freq,
                first: SwitchState::Reflective,
            },
            SwitchSchedule::Constant(SwitchState::Absorptive),
        )
    }

    /// Signals that Field 2 has elapsed; advances into the payload phase
    /// matching the decoded mode (or straight to Done if mode detection
    /// failed — the node must not modulate on a packet it did not parse).
    pub fn on_field2_complete(&mut self) {
        assert_eq!(self.state, FirmwareState::Field2, "not in Field 2");
        self.state = match self.report.mode {
            Some(LinkMode::Uplink) => FirmwareState::PayloadUplink,
            Some(LinkMode::Downlink) => FirmwareState::PayloadDownlink,
            None => FirmwareState::Done,
        };
    }

    /// Signals that the payload phase has elapsed; latches the report.
    pub fn on_payload_complete(&mut self) {
        assert!(
            matches!(
                self.state,
                FirmwareState::PayloadUplink | FirmwareState::PayloadDownlink
            ),
            "not in a payload state"
        );
        self.report.payload_ran = true;
        self.state = FirmwareState::Done;
    }

    /// Returns to sleep, ready for the next packet (the report stays
    /// latched until the next wake).
    pub fn to_sleep(&mut self) {
        self.state = FirmwareState::Sleep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_rf::fsa::Port;

    fn pkt() -> PacketConfig {
        PacketConfig::milback()
    }

    /// Synthesizes Field-1 ADC samples for a given slot pattern with the
    /// node at orientation `orient` (bumps placed via the FSA scan law).
    fn field1_capture(
        fsa: &DualPortFsa,
        pattern: [bool; 3],
        orient: f64,
        adc_rate: f64,
    ) -> (Vec<f64>, Vec<f64>) {
        let cfg = pkt().field1_chirp;
        let n_slot = (cfg.duration * adc_rate) as usize;
        let mut a = Vec::new();
        let mut b = Vec::new();
        for on in pattern {
            for i in 0..n_slot {
                if !on {
                    a.push(0.0);
                    b.push(0.0);
                    continue;
                }
                let t = i as f64 / adc_rate;
                let bump = |port: Port| -> f64 {
                    let f_star = fsa.frequency_for_angle(port, orient).unwrap();
                    let (t1, t2) = cfg.triangular_crossings(f_star).unwrap();
                    let w = 2e-6;
                    0.002
                        + 0.3 * ((-((t - t1) / w).powi(2)).exp() + (-((t - t2) / w).powi(2)).exp())
                };
                a.push(bump(Port::A));
                b.push(bump(Port::B));
            }
        }
        (a, b)
    }

    #[test]
    fn full_uplink_packet_walkthrough() {
        let fsa = DualPortFsa::milback();
        let adc = 1e6;
        let mut fw = Firmware::new(pkt(), 0.003, 0.001);
        assert_eq!(fw.state(), FirmwareState::Sleep);

        let orient = 0.15; // ~8.6°
        let (a, b) = field1_capture(&fsa, [true, true, true], orient, adc);
        for (&x, &y) in a.iter().zip(&b) {
            fw.on_adc_sample(x, y, adc, &fsa);
        }
        assert_eq!(fw.state(), FirmwareState::Field2);
        assert_eq!(fw.report().mode, Some(LinkMode::Uplink));
        let est = fw.report().orientation.expect("no orientation");
        assert!((est - orient).abs() < 0.03, "est {est}");

        let (sa, sb) = fw.field2_schedules();
        assert!(sa.transitions_in(1.0) > 0);
        assert_eq!(sb.transitions_in(1.0), 0);

        fw.on_field2_complete();
        assert_eq!(fw.state(), FirmwareState::PayloadUplink);
        fw.on_payload_complete();
        assert_eq!(fw.state(), FirmwareState::Done);
        assert!(fw.report().payload_ran);
        fw.to_sleep();
        assert_eq!(fw.state(), FirmwareState::Sleep);
    }

    #[test]
    fn downlink_pattern_routes_to_downlink_state() {
        let fsa = DualPortFsa::milback();
        let adc = 1e6;
        let mut fw = Firmware::new(pkt(), 0.003, 0.001);
        let (a, b) = field1_capture(&fsa, [true, false, true], 0.1, adc);
        for (&x, &y) in a.iter().zip(&b) {
            fw.on_adc_sample(x, y, adc, &fsa);
        }
        assert_eq!(fw.report().mode, Some(LinkMode::Downlink));
        fw.on_field2_complete();
        assert_eq!(fw.state(), FirmwareState::PayloadDownlink);
    }

    #[test]
    fn failed_mode_detection_skips_payload() {
        let fsa = DualPortFsa::milback();
        let adc = 1e6;
        // Noise sigma 0.002: the mode detector's 5σ/√N floor sits above
        // the spurious energy below, so no mode can be decoded.
        let mut fw = Firmware::new(pkt(), 0.0004, 0.002);
        // A transient spike wakes the MCU but the rest is sub-floor noise.
        let n = fw.field1_samples(adc) + 1;
        for i in 0..n {
            let v = if i == 0 {
                0.001
            } else {
                0.0002 * ((i as f64) * 0.1).sin()
            };
            fw.on_adc_sample(v, v, adc, &fsa);
        }
        assert_eq!(fw.state(), FirmwareState::Field2);
        assert_eq!(fw.report().mode, None);
        fw.on_field2_complete();
        assert_eq!(fw.state(), FirmwareState::Done);
        assert!(!fw.report().payload_ran);
    }

    #[test]
    fn stays_asleep_below_threshold() {
        let fsa = DualPortFsa::milback();
        let mut fw = Firmware::new(pkt(), 0.05, 0.001);
        for _ in 0..1000 {
            fw.on_adc_sample(0.01, 0.01, 1e6, &fsa);
        }
        assert_eq!(fw.state(), FirmwareState::Sleep);
    }

    #[test]
    #[should_panic(expected = "not in Field 2")]
    fn field2_complete_requires_field2() {
        let mut fw = Firmware::new(pkt(), 0.01, 0.001);
        fw.on_field2_complete();
    }
}
