//! # milback-node
//!
//! The MilBack backscatter node:
//!
//! * [`node`] — the node itself: dual-port FSA + switches + envelope
//!   detectors + ADC, and the channel-facing `Γ(t)` schedules,
//! * [`orientation`] — node-side orientation sensing from triangular-chirp
//!   peak separation (paper §5.2(b)),
//! * [`demod`] — downlink OAQFM / fallback-OOK demodulation (§6.1–6.2),
//! * [`modulator`] — uplink OAQFM switch-schedule modulation (§6.3),
//! * [`mode_detect`] — Field-1 chirp counting → uplink/downlink (§7),
//! * [`firmware`] — the node MCU's packet state machine,
//! * [`timing`] — pilot-based symbol-timing recovery.
//!
//! ## Place in the paper's architecture
//!
//! The node is the paper's central contribution: a passive dual-port FSA
//! tag that localizes (§5), receives (§6.1–6.2) and transmits (§6.3)
//! without generating a carrier. This crate is everything that runs on
//! the tag: [`node`] wires the `milback-hw` components to the
//! `milback-rf` FSA model, [`demod`] and [`modulator`] are the two §6
//! data directions, [`mode_detect`] implements the §7 Field-1 protocol
//! handshake, and [`orientation`] reproduces §5.2(a).
//!
//! ## Telemetry
//!
//! With `MILBACK_TELEMETRY=1` the node reports
//! `node.demod.oaqfm.symbols`, `node.demod.ook.bits` and
//! `node.mode_detect.*` counters; the energy its `milback-hw` power
//! model draws per transfer is recorded by `milback::link` as
//! `node.energy.*_nj` histograms.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod demod;
pub mod firmware;
pub mod mode_detect;
pub mod modulator;
pub mod node;
pub mod orientation;
pub mod timing;

pub use demod::{demodulate_oaqfm, demodulate_ook, EnvelopeSlicer};
pub use firmware::{Firmware, FirmwareReport, FirmwareState};
pub use mode_detect::ModeDetector;
pub use modulator::{max_uplink_bit_rate, modulate_uplink, ModulationError};
pub use node::BackscatterNode;
pub use orientation::NodeOrientationEstimator;
pub use timing::TimingRecovery;
