//! The MilBack backscatter node (paper §4, Figure 4).
//!
//! A node is a dual-port FSA whose ports are connected through SPDT
//! switches to either the FSA ground plane (reflective) or an envelope
//! detector (absorptive), plus an MCU ADC sampling the detector outputs.
//! There are **no** mmWave active components — no amplifier, mixer,
//! oscillator or phased array.
//!
//! The struct here owns the hardware models and exposes the two things the
//! rest of the system needs:
//!
//! * a reflection-coefficient schedule `Γ(t)` for the channel, derived
//!   from per-port [`SwitchSchedule`]s, and
//! * the receive path: FSA port → switch through-loss → envelope
//!   detector → ADC.

use milback_dsp::num::Cpx;
use milback_dsp::signal::Signal;
use milback_hw::adc::Adc;
use milback_hw::envelope::EnvelopeDetector;
use milback_hw::power::PowerModel;
use milback_hw::switch::{SpdtSwitch, SwitchSchedule, SwitchState};
use milback_rf::fsa::{DualPortFsa, Port};
use milback_rf::geometry::Pose;
use rand::Rng;

/// A complete MilBack backscatter node.
#[derive(Debug, Clone)]
pub struct BackscatterNode {
    /// Where the node is and which way its FSA faces.
    pub pose: Pose,
    /// The dual-port FSA.
    pub fsa: DualPortFsa,
    /// The SPDT switch on each port (identical parts).
    pub switch: SpdtSwitch,
    /// The envelope detector on each port (identical parts).
    pub detector: EnvelopeDetector,
    /// The MCU ADC.
    pub adc: Adc,
    /// Power/energy accounting.
    pub power: PowerModel,
    /// One-way implementation loss, dB: polarization mismatch, connector
    /// and evaluation-board cabling losses of the prototype (paper Fig. 9
    /// wires evaluation boards together). Applied once on the receive path
    /// and twice on backscatter.
    pub impl_loss_db: f64,
}

impl BackscatterNode {
    /// Builds the paper's prototype node at the given pose.
    pub fn milback(pose: Pose) -> Self {
        Self {
            pose,
            fsa: DualPortFsa::milback(),
            switch: SpdtSwitch::adrf5020(),
            // ADL6010 silicon plus the MCU ADC input chain: the effective
            // output-referred noise density of the prototype's detector
            // path, calibrated against Fig. 14's SINR-vs-distance curve.
            detector: EnvelopeDetector {
                noise_density: 400e-9,
                ..EnvelopeDetector::adl6010()
            },
            adc: Adc::msp430(),
            power: PowerModel::milback(),
            impl_loss_db: 6.0,
        }
    }

    /// One-way implementation-loss amplitude factor.
    fn impl_loss_amp(&self) -> f64 {
        10f64.powf(-self.impl_loss_db / 20.0)
    }

    /// Reflection coefficient of one port in a switch state.
    pub fn port_gamma(&self, state: SwitchState) -> Cpx {
        self.switch.gamma(state)
    }

    /// The node's constant port reflection coefficients while *parked*
    /// (not scheduled on the MAC): both SPDT switches rest on the
    /// absorptive throw, so only the residual switch mismatch — through
    /// the two-way implementation loss — reflects. This is the Γ the
    /// dense-network fabric feeds the channel for every unscheduled
    /// neighbor whose leftover reflection clutters a scheduled node's
    /// capture.
    pub fn parked_gamma(&self) -> [Cpx; 2] {
        let two_way = self.impl_loss_amp() * self.impl_loss_amp();
        let g = self.switch.gamma(SwitchState::Absorptive) * two_way;
        [g, g]
    }

    /// Builds the channel-facing `Γ(t)` closure from per-port schedules.
    pub fn gamma_schedule<'a>(
        &'a self,
        port_a: &'a SwitchSchedule,
        port_b: &'a SwitchSchedule,
    ) -> impl Fn(f64) -> [Cpx; 2] + 'a {
        // Backscatter passes the implementation loss twice (in and out).
        let two_way = self.impl_loss_amp() * self.impl_loss_amp();
        move |t| {
            [
                self.switch.gamma(port_a.state_at(t)) * two_way,
                self.switch.gamma(port_b.state_at(t)) * two_way,
            ]
        }
    }

    /// The node's receive path for one port: the RF signal at the FSA port
    /// (as produced by `Scene::to_node_port`) through the switch's
    /// absorptive through-loss and the envelope detector, sampled by the
    /// MCU ADC. Returns ADC samples (volts at `adc.sample_rate`).
    pub fn receive_port<R: Rng + ?Sized>(&self, at_port: &Signal, rng: &mut R) -> Vec<f64> {
        let mut sig = at_port.clone();
        sig.scale(self.switch.through_gain().sqrt() * self.impl_loss_amp());
        let video = self.detector.detect(&sig, rng);
        self.adc.capture(&video, at_port.fs)
    }

    /// Like [`Self::receive_port`] but keeps the detector's full video
    /// rate (no ADC) — used for payload demodulation where the MCU samples
    /// at the symbol rate via a comparator rather than the slow ADC.
    pub fn receive_port_video<R: Rng + ?Sized>(&self, at_port: &Signal, rng: &mut R) -> Vec<f64> {
        let mut out = Vec::new();
        self.receive_port_video_into(
            at_port,
            rng,
            &mut Signal::new(at_port.fs, 0.0, Vec::new()),
            &mut out,
        );
        out
    }

    /// Allocation-free [`Self::receive_port_video`]: the scaled RF copy
    /// lands in `rf_scratch` (a pooled `Signal`; the scale must apply to
    /// the complex samples *before* envelope detection to stay bitwise
    /// identical) and the video stream in `out`, both reusing capacity.
    pub fn receive_port_video_into<R: Rng + ?Sized>(
        &self,
        at_port: &Signal,
        rng: &mut R,
        rf_scratch: &mut Signal,
        out: &mut Vec<f64>,
    ) {
        rf_scratch.copy_from(at_port);
        rf_scratch.scale(self.switch.through_gain().sqrt() * self.impl_loss_amp());
        self.detector.detect_into(rf_scratch, rng, out);
    }

    /// Convenience: the constant absorptive schedule (both ports
    /// listening).
    pub fn listening() -> (SwitchSchedule, SwitchSchedule) {
        (
            SwitchSchedule::Constant(SwitchState::Absorptive),
            SwitchSchedule::Constant(SwitchState::Absorptive),
        )
    }

    /// The localization schedule of §5.1: port A toggling at 10 kHz, port
    /// B parked absorptive (as in §5.2's orientation variant, which keeps
    /// one port absorptive so the AP can background-subtract).
    pub fn localization_schedule() -> (SwitchSchedule, SwitchSchedule) {
        (
            SwitchSchedule::milback_localization(),
            SwitchSchedule::Constant(SwitchState::Absorptive),
        )
    }

    /// OAQFM carrier frequencies for this node's current orientation as
    /// seen from `ap_pos`: `(f_A, f_B)`. Returns `None` if either beam
    /// cannot be steered to the AP.
    pub fn oaqfm_tones(&self, ap_pos: &milback_rf::geometry::Point) -> Option<(f64, f64)> {
        let inc = self.pose.incidence_from(ap_pos);
        let fa = self.fsa.frequency_for_angle(Port::A, inc)?;
        let fb = self.fsa.frequency_for_angle(Port::B, inc)?;
        Some((fa, fb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_rf::geometry::{deg_to_rad, Point};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn node() -> BackscatterNode {
        BackscatterNode::milback(Pose::facing_ap(2.0, 0.0, 0.0))
    }

    #[test]
    fn gamma_schedule_tracks_states() {
        let n = node();
        let a = SwitchSchedule::Constant(SwitchState::Reflective);
        let b = SwitchSchedule::Constant(SwitchState::Absorptive);
        let g = n.gamma_schedule(&a, &b);
        let [ga, gb] = g(0.0);
        // Two-way implementation loss scales both, but the reflective
        // port must stay far stronger than the absorptive one.
        let two_way = 10f64.powf(-2.0 * n.impl_loss_db / 20.0);
        assert!((ga.re - n.switch.gamma(SwitchState::Reflective).re * two_way).abs() < 1e-12);
        assert!(ga.abs() / gb.abs() > 5.0, "contrast lost: {ga:?} vs {gb:?}");
    }

    #[test]
    fn gamma_schedule_follows_square_wave() {
        let n = node();
        let a = SwitchSchedule::milback_localization();
        let b = SwitchSchedule::Constant(SwitchState::Absorptive);
        let g = n.gamma_schedule(&a, &b);
        let [g0, _] = g(0.0);
        let [g1, _] = g(60e-6); // past the 50 µs half-period
        assert!(
            g0.abs() / g1.abs() > 5.0,
            "square wave lost: {g0:?} vs {g1:?}"
        );
    }

    #[test]
    fn receive_port_produces_adc_rate_samples() {
        let n = node();
        let mut rng = StdRng::seed_from_u64(3);
        // 100 µs of signal at 100 MHz → 100 samples at the 1 MHz ADC.
        let sig = Signal::tone(1e8, 28e9, 0.0, 1e-3, 10_000);
        let out = n.receive_port(&sig, &mut rng);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn receive_strong_tone_is_visible() {
        let n = node();
        let mut rng = StdRng::seed_from_u64(4);
        let p_in = 1e-6; // −30 dBm at the port
        let amp = (p_in * n.detector.input_impedance).sqrt();
        let sig = Signal::tone(1e8, 28e9, 0.0, amp, 20_000);
        let out = n.receive_port(&sig, &mut rng);
        let settled = &out[50..];
        let mean = settled.iter().sum::<f64>() / settled.len() as f64;
        let one_way = 10f64.powf(-n.impl_loss_db / 10.0);
        let expected = n
            .detector
            .ideal_output(p_in * n.switch.through_gain() * one_way);
        assert!(
            (mean / expected - 1.0).abs() < 0.1,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn oaqfm_tones_reflect_orientation() {
        let ap = Point::origin();
        // Node facing the AP: both tones equal (normal incidence).
        let n = BackscatterNode::milback(Pose::facing_ap(2.0, 0.0, 0.0));
        let (fa, fb) = n.oaqfm_tones(&ap).unwrap();
        assert!((fa - fb).abs() < 1.0);
        // Rotated node: distinct tones, mirrored around the normal freq.
        let n = BackscatterNode::milback(Pose::facing_ap(2.0, 0.0, deg_to_rad(12.0)));
        let (fa2, fb2) = n.oaqfm_tones(&ap).unwrap();
        assert!((fa2 - fb2).abs() > 100e6);
        assert!(
            (fa2 - fa) * (fb2 - fb) < 0.0,
            "tones move in opposite directions"
        );
    }

    #[test]
    fn localization_schedule_shape() {
        let (a, b) = BackscatterNode::localization_schedule();
        assert_eq!(a.transitions_in(1e-3), 20); // 10 kHz over 1 ms
        assert_eq!(b.transitions_in(1e-3), 0);
    }
}
