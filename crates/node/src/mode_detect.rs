//! Field-1 mode detection at the node (paper §7).
//!
//! The AP signals the payload direction by how many triangular chirps it
//! sends in Field 1: three back-to-back chirps mean uplink, two chirps
//! with a gap in the middle slot mean downlink. The node detects chirp
//! presence per slot with a simple energy detector on its envelope
//! outputs.

use milback_proto::packet::LinkMode;

/// Per-slot energy detector for Field-1 chirp counting.
#[derive(Debug, Clone, Copy)]
pub struct ModeDetector {
    /// Duration of one chirp slot, seconds.
    pub slot_duration: f64,
    /// Sample rate of the detector captures, Hz.
    pub sample_rate: f64,
}

impl ModeDetector {
    /// Detector for the paper's 45 µs Field-1 slots at the 1 MHz MCU ADC.
    pub fn milback() -> Self {
        Self {
            slot_duration: 45e-6,
            sample_rate: 1e6,
        }
    }

    /// Mean detector level in each of the three Field-1 slots, from the
    /// summed port captures starting at `t0`.
    pub fn slot_levels(&self, capture: &[f64], t0: f64) -> [f64; 3] {
        let sps = (self.slot_duration * self.sample_rate) as usize;
        let start0 = (t0 * self.sample_rate) as usize;
        let mut out = [0.0; 3];
        for (k, slot) in out.iter_mut().enumerate() {
            let s = start0 + k * sps;
            let e = (s + sps).min(capture.len());
            if s >= e {
                continue;
            }
            *slot = capture[s..e].iter().sum::<f64>() / (e - s) as f64;
        }
        out
    }

    /// Decides which slots contain a chirp: a slot is "on" when its level
    /// exceeds the midpoint between the strongest and weakest slot. When
    /// all three slots are essentially equal nothing can be decided.
    pub fn detect_slots(levels: &[f64; 3]) -> Option<[bool; 3]> {
        let max = levels.iter().cloned().fold(f64::MIN, f64::max);
        let min = levels.iter().cloned().fold(f64::MAX, f64::min);
        if max <= 0.0 || (max - min) / max < 0.2 {
            // No contrast: either silence or three equal chirps. Three
            // equal chirps *is* a valid pattern (uplink) but then min is a
            // chirp too — distinguish by requiring real energy.
            return if max > 0.0 && min > 0.5 * max {
                Some([true, true, true])
            } else {
                None
            };
        }
        let thr = (max + min) / 2.0;
        Some([levels[0] > thr, levels[1] > thr, levels[2] > thr])
    }

    /// Full mode detection: slot energies → chirp count → link mode.
    ///
    /// Returns `None` when the pattern matches neither mode (e.g. the
    /// packet was missed entirely).
    pub fn detect(&self, capture: &[f64], t0: f64) -> Option<LinkMode> {
        let levels = self.slot_levels(capture, t0);
        let mode = match Self::detect_slots(&levels) {
            Some([true, true, true]) => Some(LinkMode::Uplink),
            Some([true, false, true]) => Some(LinkMode::Downlink),
            _ => None,
        };
        Self::count_decision(mode);
        mode
    }

    /// Noise-robust mode detection. Both valid patterns carry chirps in
    /// the outer slots; only the *middle* slot differs, so the decision is
    /// the middle level against the outer-slot baseline. `noise_sigma` is
    /// the per-sample detector noise (the MCU measures it on a quiet
    /// window before the packet); the baseline must clear it decisively
    /// or nothing was received.
    pub fn detect_with_floor(
        &self,
        capture: &[f64],
        t0: f64,
        noise_sigma: f64,
    ) -> Option<LinkMode> {
        let levels = self.slot_levels(capture, t0);
        let baseline = 0.5 * (levels[0] + levels[2]);
        let sps = (self.slot_duration * self.sample_rate).max(1.0);
        let sigma_mean = noise_sigma / sps.sqrt();
        // Both outer slots must contain a chirp well above the noise, and
        // be mutually consistent.
        if baseline < 5.0 * sigma_mean || baseline <= 0.0 {
            return None;
        }
        if (levels[0] - levels[2]).abs() > 0.5 * baseline {
            return None;
        }
        let ratio = levels[1] / baseline;
        let mode = if ratio > 0.55 {
            Some(LinkMode::Uplink)
        } else if ratio < 0.45 {
            Some(LinkMode::Downlink)
        } else {
            None
        };
        Self::count_decision(mode);
        mode
    }

    /// Telemetry bookkeeping shared by both detection entry points.
    fn count_decision(mode: Option<LinkMode>) {
        match mode {
            Some(LinkMode::Uplink) => milback_telemetry::counter_add("node.mode_detect.uplink", 1),
            Some(LinkMode::Downlink) => {
                milback_telemetry::counter_add("node.mode_detect.downlink", 1)
            }
            None => milback_telemetry::counter_add("node.mode_detect.undecided", 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a capture with the given slot pattern: `level` volts in "on"
    /// slots, `floor` in "off" slots.
    fn capture(pattern: [bool; 3], level: f64, floor: f64) -> Vec<f64> {
        let det = ModeDetector::milback();
        let sps = (det.slot_duration * det.sample_rate) as usize;
        pattern
            .iter()
            .flat_map(|&on| std::iter::repeat_n(if on { level } else { floor }, sps))
            .collect()
    }

    #[test]
    fn uplink_pattern_detected() {
        let det = ModeDetector::milback();
        let cap = capture([true, true, true], 0.4, 0.01);
        assert_eq!(det.detect(&cap, 0.0), Some(LinkMode::Uplink));
    }

    #[test]
    fn downlink_pattern_detected() {
        let det = ModeDetector::milback();
        let cap = capture([true, false, true], 0.4, 0.01);
        assert_eq!(det.detect(&cap, 0.0), Some(LinkMode::Downlink));
    }

    #[test]
    fn silence_is_none() {
        let det = ModeDetector::milback();
        let cap = capture([false, false, false], 0.4, 0.0);
        assert_eq!(det.detect(&cap, 0.0), None);
    }

    #[test]
    fn invalid_patterns_are_none() {
        let det = ModeDetector::milback();
        // Single chirp.
        let cap = capture([true, false, false], 0.4, 0.01);
        assert_eq!(det.detect(&cap, 0.0), None);
        // Gap-first two chirps — not a defined pattern.
        let cap = capture([false, true, true], 0.4, 0.01);
        assert_eq!(det.detect(&cap, 0.0), None);
    }

    #[test]
    fn detection_with_time_offset() {
        let det = ModeDetector::milback();
        let mut cap = vec![0.01; 100];
        cap.extend(capture([true, false, true], 0.4, 0.01));
        assert_eq!(det.detect(&cap, 100e-6), Some(LinkMode::Downlink));
    }

    #[test]
    fn noisy_levels_still_detected() {
        let det = ModeDetector::milback();
        let mut cap = capture([true, true, true], 0.4, 0.01);
        for (i, v) in cap.iter_mut().enumerate() {
            *v += 0.02 * ((i as f64) * 0.7).sin();
        }
        assert_eq!(det.detect(&cap, 0.0), Some(LinkMode::Uplink));
    }

    #[test]
    fn floor_detection_robust_to_noise() {
        let det = ModeDetector::milback();
        let mut cap = capture([true, true, true], 0.003, 0.0);
        // Per-sample noise comparable to the slot levels.
        for (i, v) in cap.iter_mut().enumerate() {
            *v += 0.002 * ((i as f64 * 1.7).sin());
        }
        assert_eq!(
            det.detect_with_floor(&cap, 0.0, 0.002),
            Some(LinkMode::Uplink)
        );
        let mut cap = capture([true, false, true], 0.003, 0.0);
        for (i, v) in cap.iter_mut().enumerate() {
            *v += 0.002 * ((i as f64 * 1.7).sin());
        }
        assert_eq!(
            det.detect_with_floor(&cap, 0.0, 0.002),
            Some(LinkMode::Downlink)
        );
    }

    #[test]
    fn floor_detection_rejects_silence() {
        let det = ModeDetector::milback();
        let cap = vec![0.0001; 135];
        assert_eq!(det.detect_with_floor(&cap, 0.0, 0.002), None);
    }

    #[test]
    fn floor_detection_rejects_inconsistent_outer_slots() {
        let det = ModeDetector::milback();
        // Only slot 0 has a chirp — not a valid pattern.
        let cap = capture([true, false, false], 0.3, 0.0);
        assert_eq!(det.detect_with_floor(&cap, 0.0, 0.001), None);
    }

    #[test]
    fn slot_levels_values() {
        let det = ModeDetector::milback();
        let cap = capture([true, false, true], 1.0, 0.0);
        let levels = det.slot_levels(&cap, 0.0);
        assert!(levels[0] > 0.99 && levels[2] > 0.99);
        assert!(levels[1] < 0.01);
    }
}
