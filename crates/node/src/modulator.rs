//! Uplink OAQFM modulation at the node (paper §6.3).
//!
//! The AP transmits a continuous two-tone query; the node piggybacks its
//! data by independently switching each FSA port between reflective and
//! absorptive. Reflecting the tone at `f_A` signals the symbol's first
//! bit, reflecting `f_B` the second (mirroring the downlink mapping of
//! [`OaqfmSymbol`]).
//!
//! The modulator's output is a pair of [`SwitchSchedule`]s — the exact
//! artifact the channel model consumes — plus bookkeeping for the
//! toggle-rate limit (the 160 Mbps cap of §9.5) and switching energy.

use milback_hw::switch::{SpdtSwitch, SwitchSchedule, SwitchState};
use milback_proto::bits::OaqfmSymbol;

/// Errors from building an uplink modulation schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModulationError {
    /// The requested symbol rate exceeds the switch's toggle capability.
    SymbolRateTooHigh {
        /// Requested symbol rate, symbols/s (integer Hz).
        requested_hz: u64,
        /// Switch limit, Hz.
        limit_hz: u64,
    },
}

impl std::fmt::Display for ModulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModulationError::SymbolRateTooHigh {
                requested_hz,
                limit_hz,
            } => write!(
                f,
                "symbol rate {requested_hz} Hz exceeds switch limit {limit_hz} Hz"
            ),
        }
    }
}

impl std::error::Error for ModulationError {}

/// Builds the per-port switch schedules that transmit `symbols` starting
/// at time `t0`, one symbol per `1/symbol_rate` seconds.
///
/// State mapping: a tone is *reflected* (bit 1) when the port is
/// [`SwitchState::Reflective`], absorbed (bit 0) when absorptive.
pub fn modulate_uplink(
    switch: &SpdtSwitch,
    symbols: &[OaqfmSymbol],
    t0: f64,
    symbol_rate: f64,
) -> Result<(SwitchSchedule, SwitchSchedule), ModulationError> {
    assert!(symbol_rate > 0.0, "symbol rate must be positive");
    // Worst case the switch toggles once per symbol.
    if !switch.supports_rate(symbol_rate) {
        return Err(ModulationError::SymbolRateTooHigh {
            requested_hz: symbol_rate as u64,
            limit_hz: switch.max_toggle_hz as u64,
        });
    }
    let ts = 1.0 / symbol_rate;
    let mut ev_a = Vec::with_capacity(symbols.len() + 1);
    let mut ev_b = Vec::with_capacity(symbols.len() + 1);
    // Park absorptive before the payload so the AP's baseband is quiet.
    ev_a.push((0.0, SwitchState::Absorptive));
    ev_b.push((0.0, SwitchState::Absorptive));
    for (k, s) in symbols.iter().enumerate() {
        let t = t0 + k as f64 * ts;
        ev_a.push((
            t,
            if s.a_on {
                SwitchState::Reflective
            } else {
                SwitchState::Absorptive
            },
        ));
        ev_b.push((
            t,
            if s.b_on {
                SwitchState::Reflective
            } else {
                SwitchState::Absorptive
            },
        ));
    }
    // Park absorptive after the payload.
    let t_end = t0 + symbols.len() as f64 * ts;
    ev_a.push((t_end, SwitchState::Absorptive));
    ev_b.push((t_end, SwitchState::Absorptive));
    Ok((
        SwitchSchedule::from_events(ev_a),
        SwitchSchedule::from_events(ev_b),
    ))
}

/// Allocation-free [`modulate_uplink`]: reuses the event buffers inside
/// `out_a`/`out_b` when they already hold [`SwitchSchedule::Events`]
/// schedules (the link layer's pooled steady state). Produces the same
/// schedules as the allocating form.
pub fn modulate_uplink_into(
    switch: &SpdtSwitch,
    symbols: &[OaqfmSymbol],
    t0: f64,
    symbol_rate: f64,
    out_a: &mut SwitchSchedule,
    out_b: &mut SwitchSchedule,
) -> Result<(), ModulationError> {
    assert!(symbol_rate > 0.0, "symbol rate must be positive");
    if !switch.supports_rate(symbol_rate) {
        return Err(ModulationError::SymbolRateTooHigh {
            requested_hz: symbol_rate as u64,
            limit_hz: switch.max_toggle_hz as u64,
        });
    }
    // Reclaim the previous schedules' event buffers where possible.
    let reclaim = |slot: &mut SwitchSchedule| -> Vec<(f64, SwitchState)> {
        match std::mem::replace(slot, SwitchSchedule::Constant(SwitchState::Absorptive)) {
            SwitchSchedule::Events(mut v) => {
                v.clear();
                v
            }
            _ => Vec::new(),
        }
    };
    let mut ev_a = reclaim(out_a);
    let mut ev_b = reclaim(out_b);
    let ts = 1.0 / symbol_rate;
    ev_a.push((0.0, SwitchState::Absorptive));
    ev_b.push((0.0, SwitchState::Absorptive));
    for (k, s) in symbols.iter().enumerate() {
        let t = t0 + k as f64 * ts;
        let state = |on: bool| {
            if on {
                SwitchState::Reflective
            } else {
                SwitchState::Absorptive
            }
        };
        ev_a.push((t, state(s.a_on)));
        ev_b.push((t, state(s.b_on)));
    }
    let t_end = t0 + symbols.len() as f64 * ts;
    ev_a.push((t_end, SwitchState::Absorptive));
    ev_b.push((t_end, SwitchState::Absorptive));
    *out_a = SwitchSchedule::from_events(ev_a);
    *out_b = SwitchSchedule::from_events(ev_b);
    Ok(())
}

/// Maximum raw uplink bit rate for a switch: one toggle per symbol, two
/// bits per OAQFM symbol.
pub fn max_uplink_bit_rate(switch: &SpdtSwitch) -> f64 {
    2.0 * switch.max_toggle_hz
}

#[cfg(test)]
mod tests {
    use super::*;
    use milback_proto::bits::bits_to_symbols;

    fn sym(a: bool, b: bool) -> OaqfmSymbol {
        OaqfmSymbol { a_on: a, b_on: b }
    }

    #[test]
    fn schedules_follow_symbols() {
        let sw = SpdtSwitch::adrf5020();
        let symbols = [sym(true, false), sym(false, true), sym(true, true)];
        let (a, b) = modulate_uplink(&sw, &symbols, 1e-6, 1e6).unwrap();
        // Mid-symbol sampling.
        assert_eq!(a.state_at(1.5e-6), SwitchState::Reflective);
        assert_eq!(b.state_at(1.5e-6), SwitchState::Absorptive);
        assert_eq!(a.state_at(2.5e-6), SwitchState::Absorptive);
        assert_eq!(b.state_at(2.5e-6), SwitchState::Reflective);
        assert_eq!(a.state_at(3.5e-6), SwitchState::Reflective);
        assert_eq!(b.state_at(3.5e-6), SwitchState::Reflective);
    }

    #[test]
    fn parked_absorptive_outside_payload() {
        let sw = SpdtSwitch::adrf5020();
        let symbols = [sym(true, true)];
        let (a, b) = modulate_uplink(&sw, &symbols, 10e-6, 1e6).unwrap();
        assert_eq!(a.state_at(0.0), SwitchState::Absorptive);
        assert_eq!(b.state_at(5e-6), SwitchState::Absorptive);
        assert_eq!(a.state_at(20e-6), SwitchState::Absorptive);
    }

    #[test]
    fn rate_limit_enforced() {
        let sw = SpdtSwitch::adrf5020();
        let symbols = [sym(true, false)];
        let err = modulate_uplink(&sw, &symbols, 0.0, 200e6).unwrap_err();
        assert!(matches!(err, ModulationError::SymbolRateTooHigh { .. }));
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn max_bit_rate_is_160mbps() {
        // Paper §9.5: "the maximum uplink data rate that the node can
        // operate is 160 Mbps", limited by switching speed.
        let sw = SpdtSwitch::adrf5020();
        assert!((max_uplink_bit_rate(&sw) - 160e6).abs() < 1.0);
    }

    #[test]
    fn full_byte_stream_schedule() {
        let sw = SpdtSwitch::adrf5020();
        let bits: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        let symbols = bits_to_symbols(&bits);
        let (a, _b) = modulate_uplink(&sw, &symbols, 0.0, 5e6).unwrap();
        // Spot-check: symbol k occupies [k/5e6, (k+1)/5e6).
        for (k, s) in symbols.iter().enumerate() {
            let t = (k as f64 + 0.5) / 5e6;
            let expect = if s.a_on {
                SwitchState::Reflective
            } else {
                SwitchState::Absorptive
            };
            assert_eq!(a.state_at(t), expect, "symbol {k}");
        }
    }

    #[test]
    fn transitions_counted_for_power() {
        let sw = SpdtSwitch::adrf5020();
        // Alternating symbols toggle port A every symbol.
        let symbols: Vec<OaqfmSymbol> = (0..10).map(|i| sym(i % 2 == 0, false)).collect();
        let (a, b) = modulate_uplink(&sw, &symbols, 0.0, 1e6).unwrap();
        let ta = a.transitions_in(11e-6);
        assert!(ta >= 9, "port A transitions {ta}");
        assert_eq!(b.transitions_in(11e-6), 0);
    }
}
