//! Downlink OAQFM demodulation at the node (paper §6.1–6.2).
//!
//! Each FSA port receives (at most) one of the two OAQFM tones; the
//! envelope detector converts presence/absence of that tone into a
//! high/low voltage. The MCU integrates the detector output over each
//! symbol period and compares against a threshold — no mixer, no
//! oscillator, no carrier synchronization.
//!
//! When the node is normal to the AP (`f_A == f_B`), both ports see the
//! same tone and the link falls back to single-carrier OOK at one bit per
//! symbol (paper §6.2 last paragraph).

use milback_proto::bits::OaqfmSymbol;

/// Per-symbol energy integrator + threshold slicer for one detector
/// output.
#[derive(Debug, Clone, Copy)]
pub struct EnvelopeSlicer {
    /// Sample rate of the detector/comparator samples, Hz.
    pub sample_rate: f64,
    /// Symbol rate, symbols/s.
    pub symbol_rate: f64,
    /// Fraction of the symbol period to skip at the start (detector
    /// settling), 0–0.5.
    pub guard: f64,
}

impl EnvelopeSlicer {
    /// A slicer with a 25% settling guard.
    pub fn new(sample_rate: f64, symbol_rate: f64) -> Self {
        assert!(
            sample_rate >= 2.0 * symbol_rate,
            "need ≥2 samples per symbol"
        );
        Self {
            sample_rate,
            symbol_rate,
            guard: 0.25,
        }
    }

    /// Samples per symbol.
    pub fn samples_per_symbol(&self) -> f64 {
        self.sample_rate / self.symbol_rate
    }

    /// Integrates the detector output over each of `n_symbols` symbol
    /// periods starting at `t0` seconds, skipping the settling guard.
    pub fn symbol_levels(&self, detector: &[f64], t0: f64, n_symbols: usize) -> Vec<f64> {
        let mut levels = Vec::new();
        self.symbol_levels_into(detector, t0, n_symbols, &mut levels);
        levels
    }

    /// Allocation-free [`EnvelopeSlicer::symbol_levels`]: clears and
    /// refills `out`, reusing its capacity.
    pub fn symbol_levels_into(
        &self,
        detector: &[f64],
        t0: f64,
        n_symbols: usize,
        out: &mut Vec<f64>,
    ) {
        let sps = self.samples_per_symbol();
        out.clear();
        out.reserve(n_symbols);
        for k in 0..n_symbols {
            let start = ((t0 * self.sample_rate) + (k as f64 + self.guard) * sps) as usize;
            let end =
                (((t0 * self.sample_rate) + (k as f64 + 1.0) * sps) as usize).min(detector.len());
            if start >= end {
                out.push(0.0);
                continue;
            }
            let sum: f64 = detector[start..end].iter().sum();
            out.push(sum / (end - start) as f64);
        }
    }

    /// Picks a decision threshold from the observed levels: the midpoint
    /// of the min and max symbol levels. Works because every payload
    /// contains both on and off symbols (CRC trailer randomizes content).
    pub fn threshold(levels: &[f64]) -> f64 {
        let max = levels.iter().cloned().fold(f64::MIN, f64::max);
        let min = levels.iter().cloned().fold(f64::MAX, f64::min);
        (max + min) / 2.0
    }

    /// Slices levels into on/off decisions with the given threshold.
    pub fn slice(levels: &[f64], threshold: f64) -> Vec<bool> {
        levels.iter().map(|v| *v > threshold).collect()
    }

    /// Allocation-free [`EnvelopeSlicer::slice`]: clears and refills
    /// `out`, reusing its capacity.
    pub fn slice_into(levels: &[f64], threshold: f64, out: &mut Vec<bool>) {
        out.clear();
        out.extend(levels.iter().map(|v| *v > threshold));
    }
}

/// Reusable intermediate buffers (per-symbol levels, per-branch slices,
/// the OOK combined stream) for the `_into` demodulators, pooled by the
/// link layer across transfers.
#[derive(Debug, Default, Clone)]
pub struct DemodScratch {
    levels_a: Vec<f64>,
    levels_b: Vec<f64>,
    bits_a: Vec<bool>,
    bits_b: Vec<bool>,
    combined: Vec<f64>,
}

/// Demodulates the two detector outputs into OAQFM symbols.
///
/// `det_a` / `det_b` are the port-A / port-B detector (or comparator)
/// sample streams; `t0` is the payload start time within them.
pub fn demodulate_oaqfm(
    slicer: &EnvelopeSlicer,
    det_a: &[f64],
    det_b: &[f64],
    t0: f64,
    n_symbols: usize,
) -> Vec<OaqfmSymbol> {
    milback_telemetry::counter_add("node.demod.oaqfm.symbols", n_symbols as u64);
    let la = slicer.symbol_levels(det_a, t0, n_symbols);
    let lb = slicer.symbol_levels(det_b, t0, n_symbols);
    let ta = EnvelopeSlicer::threshold(&la);
    let tb = EnvelopeSlicer::threshold(&lb);
    let ba = EnvelopeSlicer::slice(&la, ta);
    let bb = EnvelopeSlicer::slice(&lb, tb);
    ba.into_iter()
        .zip(bb)
        .map(|(a_on, b_on)| OaqfmSymbol { a_on, b_on })
        .collect()
}

/// Allocation-free [`demodulate_oaqfm`]: intermediates run in `scratch`,
/// symbols land in `out` (capacity reused). Identical decisions to the
/// allocating form.
pub fn demodulate_oaqfm_into(
    slicer: &EnvelopeSlicer,
    det_a: &[f64],
    det_b: &[f64],
    t0: f64,
    n_symbols: usize,
    scratch: &mut DemodScratch,
    out: &mut Vec<OaqfmSymbol>,
) {
    milback_telemetry::counter_add("node.demod.oaqfm.symbols", n_symbols as u64);
    slicer.symbol_levels_into(det_a, t0, n_symbols, &mut scratch.levels_a);
    slicer.symbol_levels_into(det_b, t0, n_symbols, &mut scratch.levels_b);
    let ta = EnvelopeSlicer::threshold(&scratch.levels_a);
    let tb = EnvelopeSlicer::threshold(&scratch.levels_b);
    EnvelopeSlicer::slice_into(&scratch.levels_a, ta, &mut scratch.bits_a);
    EnvelopeSlicer::slice_into(&scratch.levels_b, tb, &mut scratch.bits_b);
    out.clear();
    out.extend(
        scratch
            .bits_a
            .iter()
            .zip(&scratch.bits_b)
            .map(|(&a_on, &b_on)| OaqfmSymbol { a_on, b_on }),
    );
}

/// Demodulates dense (multi-amplitude) OAQFM: per-symbol levels on each
/// detector are normalized by a full-scale reference learned from the
/// pilot, then sliced to the nearest constellation level.
///
/// `pilot_symbols` symbols at the start must alternate full-scale/off on
/// both tones (the dense pilot), providing the per-port full-scale
/// voltage and zero offset.
pub fn demodulate_dense(
    slicer: &EnvelopeSlicer,
    det_a: &[f64],
    det_b: &[f64],
    t0: f64,
    n_symbols: usize,
    constellation: milback_proto::dense::DenseConstellation,
    pilot_symbols: usize,
) -> Vec<milback_proto::dense::DenseSymbol> {
    assert!(pilot_symbols >= 2, "dense demod needs a pilot");
    let la = slicer.symbol_levels(det_a, t0, n_symbols);
    let lb = slicer.symbol_levels(det_b, t0, n_symbols);
    // Full-scale / zero references from the pilot (max/min over the
    // pilot region — it alternates full and off).
    let reference = |levels: &[f64]| -> (f64, f64) {
        let pilot = &levels[..pilot_symbols.min(levels.len())];
        let hi = pilot.iter().cloned().fold(f64::MIN, f64::max);
        let lo = pilot.iter().cloned().fold(f64::MAX, f64::min);
        (lo, (hi - lo).max(1e-12))
    };
    let (za, fa) = reference(&la);
    let (zb, fb) = reference(&lb);
    la.iter()
        .zip(&lb)
        .map(|(a, b)| milback_proto::dense::DenseSymbol {
            a_level: constellation.slice((a - za) / fa),
            b_level: constellation.slice((b - zb) / fb),
        })
        .collect()
}

/// Demodulates single-carrier OOK (the normal-incidence fallback): both
/// detectors see the same tone, so their sum is sliced at one bit per
/// symbol.
pub fn demodulate_ook(
    slicer: &EnvelopeSlicer,
    det_a: &[f64],
    det_b: &[f64],
    t0: f64,
    n_bits: usize,
) -> Vec<bool> {
    milback_telemetry::counter_add("node.demod.ook.bits", n_bits as u64);
    let combined: Vec<f64> = det_a.iter().zip(det_b).map(|(a, b)| a + b).collect();
    let levels = slicer.symbol_levels(&combined, t0, n_bits);
    let thr = EnvelopeSlicer::threshold(&levels);
    EnvelopeSlicer::slice(&levels, thr)
}

/// Allocation-free [`demodulate_ook`]: intermediates run in `scratch`,
/// bit decisions land in `out` (capacity reused). Identical decisions to
/// the allocating form.
pub fn demodulate_ook_into(
    slicer: &EnvelopeSlicer,
    det_a: &[f64],
    det_b: &[f64],
    t0: f64,
    n_bits: usize,
    scratch: &mut DemodScratch,
    out: &mut Vec<bool>,
) {
    milback_telemetry::counter_add("node.demod.ook.bits", n_bits as u64);
    scratch.combined.clear();
    scratch
        .combined
        .extend(det_a.iter().zip(det_b).map(|(a, b)| a + b));
    slicer.symbol_levels_into(&scratch.combined, t0, n_bits, &mut scratch.levels_a);
    let thr = EnvelopeSlicer::threshold(&scratch.levels_a);
    EnvelopeSlicer::slice_into(&scratch.levels_a, thr, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a detector stream: `high` volts during on-symbols, `low`
    /// during off, `sps` samples per symbol.
    fn stream(pattern: &[bool], sps: usize, high: f64, low: f64) -> Vec<f64> {
        pattern
            .iter()
            .flat_map(|&on| std::iter::repeat_n(if on { high } else { low }, sps))
            .collect()
    }

    #[test]
    fn levels_integrate_per_symbol() {
        let slicer = EnvelopeSlicer::new(10e6, 1e6);
        let det = stream(&[true, false, true], 10, 1.0, 0.0);
        let levels = slicer.symbol_levels(&det, 0.0, 3);
        assert!(levels[0] > 0.9);
        assert!(levels[1] < 0.1);
        assert!(levels[2] > 0.9);
    }

    #[test]
    fn threshold_is_midpoint() {
        assert_eq!(EnvelopeSlicer::threshold(&[0.0, 1.0, 0.2]), 0.5);
    }

    #[test]
    fn oaqfm_demod_round_trip() {
        let slicer = EnvelopeSlicer::new(20e6, 1e6);
        let symbols = [
            OaqfmSymbol {
                a_on: false,
                b_on: false,
            },
            OaqfmSymbol {
                a_on: false,
                b_on: true,
            },
            OaqfmSymbol {
                a_on: true,
                b_on: false,
            },
            OaqfmSymbol {
                a_on: true,
                b_on: true,
            },
        ];
        let pat_a: Vec<bool> = symbols.iter().map(|s| s.a_on).collect();
        let pat_b: Vec<bool> = symbols.iter().map(|s| s.b_on).collect();
        let det_a = stream(&pat_a, 20, 0.8, 0.05);
        let det_b = stream(&pat_b, 20, 0.6, 0.02);
        let got = demodulate_oaqfm(&slicer, &det_a, &det_b, 0.0, 4);
        assert_eq!(got, symbols);
    }

    #[test]
    fn demod_with_offset_start() {
        let slicer = EnvelopeSlicer::new(10e6, 1e6);
        // 5 leading off-symbols of junk, then the payload.
        let pat = [false, false, false, false, false, true, false, true];
        let det = stream(&pat, 10, 1.0, 0.0);
        let levels = slicer.symbol_levels(&det, 5e-6, 3);
        assert!(levels[0] > 0.9);
        assert!(levels[1] < 0.1);
        assert!(levels[2] > 0.9);
    }

    #[test]
    fn dense_demod_round_trip() {
        use milback_proto::dense::{DenseConstellation, DenseSymbol};
        let c = DenseConstellation::new(4);
        let slicer = EnvelopeSlicer::new(20e6, 1e6);
        // Pilot: full/off/full/off, then data levels.
        let syms = [
            DenseSymbol {
                a_level: 3,
                b_level: 3,
            },
            DenseSymbol {
                a_level: 0,
                b_level: 0,
            },
            DenseSymbol {
                a_level: 3,
                b_level: 3,
            },
            DenseSymbol {
                a_level: 0,
                b_level: 0,
            },
            DenseSymbol {
                a_level: 1,
                b_level: 2,
            },
            DenseSymbol {
                a_level: 2,
                b_level: 0,
            },
            DenseSymbol {
                a_level: 0,
                b_level: 3,
            },
            DenseSymbol {
                a_level: 3,
                b_level: 1,
            },
        ];
        let mk = |pick: fn(&DenseSymbol) -> u8, scale: f64| -> Vec<f64> {
            syms.iter()
                .flat_map(|s| std::iter::repeat_n(scale * c.amplitude(pick(s)) + 0.003, 20))
                .collect()
        };
        let det_a = mk(|s| s.a_level, 0.8);
        let det_b = mk(|s| s.b_level, 0.5);
        let got = demodulate_dense(&slicer, &det_a, &det_b, 0.0, syms.len(), c, 4);
        assert_eq!(got, syms.to_vec());
    }

    #[test]
    #[should_panic(expected = "needs a pilot")]
    fn dense_demod_requires_pilot() {
        let c = milback_proto::dense::DenseConstellation::new(4);
        let slicer = EnvelopeSlicer::new(10e6, 1e6);
        demodulate_dense(&slicer, &[0.0; 10], &[0.0; 10], 0.0, 1, c, 0);
    }

    #[test]
    fn ook_fallback() {
        let slicer = EnvelopeSlicer::new(10e6, 1e6);
        let bits = [true, false, true, true, false];
        // Both detectors see the same tone at half strength.
        let det_a = stream(&bits, 10, 0.3, 0.01);
        let det_b = stream(&bits, 10, 0.3, 0.01);
        let got = demodulate_ook(&slicer, &det_a, &det_b, 0.0, 5);
        assert_eq!(got, bits.to_vec());
    }

    #[test]
    fn guard_skips_settling_edge() {
        let slicer = EnvelopeSlicer::new(10e6, 1e6);
        // First 2 samples of each symbol are corrupted by settling.
        let mut det = stream(&[true, false], 10, 1.0, 0.0);
        det[0] = 0.0;
        det[1] = 0.0;
        det[10] = 1.0;
        det[11] = 1.0;
        let levels = slicer.symbol_levels(&det, 0.0, 2);
        assert!(levels[0] > 0.9, "guard failed: {levels:?}");
        assert!(levels[1] < 0.1, "guard failed: {levels:?}");
    }

    #[test]
    fn out_of_range_symbols_are_zero() {
        let slicer = EnvelopeSlicer::new(10e6, 1e6);
        let det = stream(&[true], 10, 1.0, 0.0);
        let levels = slicer.symbol_levels(&det, 0.0, 3);
        assert_eq!(levels[1], 0.0);
        assert_eq!(levels[2], 0.0);
    }

    #[test]
    #[should_panic(expected = "2 samples per symbol")]
    fn rejects_undersampled_slicer() {
        EnvelopeSlicer::new(1e6, 1e6);
    }
}
