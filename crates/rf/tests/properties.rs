//! Property-based tests of the RF substrate's physical invariants.

use milback_rf::antenna::{Antenna, Horn, PatchElement};
use milback_rf::channel::Scene;
use milback_rf::fsa::{DualPortFsa, Port};
use milback_rf::geometry::{deg_to_rad, wrap_angle, Point, Pose};
use milback_rf::propagation::{backscatter_rx_power, fspl, one_way_rx_power};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fspl_monotone_in_distance(d1 in 0.5f64..20.0, d2 in 0.5f64..20.0) {
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(fspl(near, 28e9) >= fspl(far, 28e9));
    }

    #[test]
    fn friis_is_reciprocal(gt in 1.0f64..100.0, gr in 1.0f64..100.0, d in 0.5f64..20.0) {
        // Swapping TX and RX gains leaves the one-way budget unchanged.
        let a = one_way_rx_power(1.0, gt, gr, d, 28e9);
        let b = one_way_rx_power(1.0, gr, gt, d, 28e9);
        prop_assert!((a - b).abs() < 1e-18 * a.max(b));
    }

    #[test]
    fn backscatter_never_exceeds_one_way(g in 1.0f64..100.0, d in 1.0f64..20.0) {
        // Two-way power with unit node gain is the one-way power times
        // another sub-unity path loss.
        let one = one_way_rx_power(1.0, g, 1.0, d, 28e9);
        let two = backscatter_rx_power(1.0, g, 1.0, 1.0, 1.0, d, 28e9);
        prop_assert!(two <= one);
    }

    #[test]
    fn fsa_gain_is_finite_and_nonnegative(deg in -90.0f64..90.0, f_ghz in 26.5f64..29.5) {
        let fsa = DualPortFsa::milback();
        for port in Port::BOTH {
            let g = fsa.gain(port, deg_to_rad(deg), f_ghz * 1e9);
            prop_assert!(g.is_finite() && g >= 0.0);
        }
    }

    #[test]
    fn fsa_ports_are_mirrors(deg in -40.0f64..40.0, f_ghz in 26.5f64..29.5) {
        // G_A(θ, f) == G_B(−θ, f): the two feeds see mirrored worlds.
        let fsa = DualPortFsa::milback();
        let t = deg_to_rad(deg);
        let f = f_ghz * 1e9;
        let ga = fsa.gain(Port::A, t, f);
        let gb = fsa.gain(Port::B, -t, f);
        prop_assert!((ga - gb).abs() < 1e-9 * (ga + gb + 1e-12));
    }

    #[test]
    fn fsa_scan_law_monotone(f1_ghz in 26.5f64..29.4, df in 0.01f64..0.5) {
        let fsa = DualPortFsa::milback();
        let f2 = (f1_ghz + df).min(29.5);
        let a1 = fsa.beam_angle(Port::A, f1_ghz * 1e9).unwrap();
        let a2 = fsa.beam_angle(Port::A, f2 * 1e9).unwrap();
        prop_assert!(a2 > a1);
    }

    #[test]
    fn tone_selection_round_trips(deg in -29.0f64..29.0) {
        let fsa = DualPortFsa::milback();
        let theta = deg_to_rad(deg);
        for port in Port::BOTH {
            let f = fsa.frequency_for_angle(port, theta).unwrap();
            // The beam at the selected frequency is the global gain max
            // over angle (within 0.2°).
            let g_at = fsa.gain_dbi(port, theta, f);
            let peak = fsa.peak_gain_dbi(port, f);
            prop_assert!((peak - g_at).abs() < 0.05, "{peak} vs {g_at}");
        }
    }

    #[test]
    fn horn_pattern_bounded_by_peak(deg in -180.0f64..180.0) {
        let h = Horn::milback_ap();
        prop_assert!(h.gain_dbi(deg_to_rad(deg), 28e9) <= h.peak_dbi + 1e-9);
    }

    #[test]
    fn patch_pattern_bounded(deg in -180.0f64..180.0, q in 1.0f64..4.0) {
        let p = PatchElement { peak_dbi: 6.0, q, floor_db: -20.0 };
        let g = p.gain_dbi(deg_to_rad(deg), 28e9);
        prop_assert!((6.0 - 20.0 - 1e-9..=6.0 + 1e-9).contains(&g));
    }

    #[test]
    fn wrap_angle_idempotent(a in -50.0f64..50.0) {
        let w = wrap_angle(a);
        prop_assert!((-std::f64::consts::PI..=std::f64::consts::PI).contains(&w));
        prop_assert!((wrap_angle(w) - w).abs() < 1e-12);
    }

    #[test]
    fn pose_incidence_inverts_rotation(r in 1.0f64..10.0, phi in -1.0f64..1.0, psi in -1.0f64..1.0) {
        let pose = Pose::facing_ap(r, phi, psi);
        let inc = pose.incidence_from(&Point::origin());
        prop_assert!((inc + psi).abs() < 1e-9);
    }

    #[test]
    fn downlink_tone_gain_decreases_with_distance(d1 in 1.0f64..6.0, extra in 0.5f64..6.0) {
        let scene = Scene::free_space();
        let fsa = DualPortFsa::milback();
        let f = fsa.frequency_for_angle(Port::A, 0.0).unwrap();
        let near = Pose::facing_ap(d1, 0.0, 0.0);
        let far = Pose::facing_ap(d1 + extra, 0.0, 0.0);
        let mut s_near = scene.clone();
        s_near.steer_towards(&near.position);
        let mut s_far = scene.clone();
        s_far.steer_towards(&far.position);
        let g_near = s_near.tone_gain_to_port(&near, &fsa, Port::A, f);
        let g_far = s_far.tone_gain_to_port(&far, &fsa, Port::A, f);
        prop_assert!(g_near > g_far);
    }
}
