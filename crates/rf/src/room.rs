//! Indoor room scene builder: turns a rectangular room description into
//! the discrete clutter reflectors the channel consumes.
//!
//! The paper evaluates "in an indoor environment, with the presence of
//! objects such as tables, chairs, and shelves" (§9). This module builds
//! such environments parametrically — walls sampled as lines of point
//! scatterers plus furniture blobs — so robustness tests can sweep room
//! geometries instead of hand-placing reflectors.

use crate::channel::{Reflector, Scene};
use crate::geometry::Point;
use rand::Rng;

/// A rectangular room with the AP on the left wall, looking in +x.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Room {
    /// Room depth along the AP's boresight (+x), meters.
    pub depth: f64,
    /// Room width (y spans `−width/2 … +width/2`), meters.
    pub width: f64,
    /// RCS per wall scatter point, m².
    pub wall_rcs: f64,
    /// Spacing between wall scatter points, meters.
    pub wall_spacing: f64,
}

impl Room {
    /// A typical office bay: 10 m deep, 6 m wide.
    pub fn office() -> Self {
        Self {
            depth: 10.0,
            width: 6.0,
            wall_rcs: 0.3,
            wall_spacing: 1.0,
        }
    }

    /// Samples the three visible walls (back, left, right) into point
    /// scatterers.
    pub fn wall_reflectors(&self) -> Vec<Reflector> {
        let mut out = Vec::new();
        let half_w = self.width / 2.0;
        // Back wall at x = depth.
        let mut y = -half_w;
        while y <= half_w {
            out.push(Reflector {
                position: Point::new(self.depth, y),
                rcs: self.wall_rcs,
            });
            y += self.wall_spacing;
        }
        // Side walls at y = ±half_w (skip the AP's immediate vicinity).
        let mut x = 1.0;
        while x < self.depth {
            out.push(Reflector {
                position: Point::new(x, half_w),
                rcs: self.wall_rcs,
            });
            out.push(Reflector {
                position: Point::new(x, -half_w),
                rcs: self.wall_rcs,
            });
            x += self.wall_spacing;
        }
        out
    }

    /// Adds `n` pieces of "furniture": random point scatterers inside the
    /// room with RCS drawn from a desk/chair-like range.
    pub fn furniture_reflectors<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Reflector> {
        let half_w = self.width / 2.0;
        (0..n)
            .map(|_| Reflector {
                position: Point::new(
                    rng.gen_range(1.0..self.depth - 0.5),
                    rng.gen_range(-half_w + 0.5..half_w - 0.5),
                ),
                rcs: rng.gen_range(0.05..0.5),
            })
            .collect()
    }

    /// Builds a complete scene: the MilBack AP antenna arrangement with
    /// this room's walls plus `n_furniture` random scatterers,
    /// self-interference and the node mirror model enabled.
    pub fn build_scene<R: Rng + ?Sized>(&self, n_furniture: usize, rng: &mut R) -> Scene {
        let mut scene = Scene::milback_indoor();
        scene.clutter = self.wall_reflectors();
        scene
            .clutter
            .extend(self.furniture_reflectors(n_furniture, rng));
        scene
    }

    /// Whether a point lies inside the room.
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= 0.0 && p.x <= self.depth && p.y.abs() <= self.width / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn walls_cover_three_sides() {
        let room = Room::office();
        let walls = room.wall_reflectors();
        assert!(walls.iter().any(|r| r.position.x == 10.0)); // back
        assert!(walls.iter().any(|r| r.position.y == 3.0)); // left
        assert!(walls.iter().any(|r| r.position.y == -3.0)); // right
                                                             // Rough count: back ≈ 7, sides ≈ 2×9.
        assert!(walls.len() >= 20, "{}", walls.len());
        for r in &walls {
            assert!(room.contains(&r.position));
        }
    }

    #[test]
    fn furniture_stays_inside() {
        let room = Room::office();
        let mut rng = StdRng::seed_from_u64(5);
        let f = room.furniture_reflectors(20, &mut rng);
        assert_eq!(f.len(), 20);
        for r in &f {
            assert!(room.contains(&r.position));
            assert!(r.rcs > 0.0 && r.rcs < 0.5);
        }
    }

    #[test]
    fn scene_build_is_complete() {
        let room = Room::office();
        let mut rng = StdRng::seed_from_u64(6);
        let scene = room.build_scene(5, &mut rng);
        assert!(scene.clutter.len() > 25);
        assert!(scene.self_interference_db.is_some());
        assert!(scene.mirror.is_some());
    }

    #[test]
    fn contains_checks_bounds() {
        let room = Room::office();
        assert!(room.contains(&Point::new(5.0, 0.0)));
        assert!(!room.contains(&Point::new(-1.0, 0.0)));
        assert!(!room.contains(&Point::new(5.0, 4.0)));
        assert!(!room.contains(&Point::new(11.0, 0.0)));
    }
}
